#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts against the spheredec bench schema.

Usage:
    python3 tools/validate_bench_json.py FILE_OR_DIR [FILE_OR_DIR ...]

Directories are scanned (non-recursively) for BENCH_*.json. Every file must
parse as JSON and conform to schema version 1 (see EXPERIMENTS.md):

    {
      "schema": "spheredec.bench",
      "schema_version": 1,
      "name": "<bench name>",            # matches the BENCH_<name>.json filename
      "config": { "<key>": scalar, ... },
      "series": [ { "label": str, "rows": [ { "<col>": scalar, ... } ] } ],
      "tables": [ { "label": str, "headers": [str], "rows": [ [cell, ...] ] } ],
      "counters": { "<name>": number }   # optional
    }

The dispatch artifact (name == "dispatch") is additionally checked against
its documented shape (EXPERIMENTS.md): a "policies" series whose rows carry
"policy", "e2e_p99_s" and "deadline_miss_rate", and the calibration-scenario
counter "dispatch.prediction.mean_rel_error".

The gemm_kernels artifact (name == "gemm_kernels") is checked for a
"kernels" series whose rows carry "kernel", "m", "n", "k" and "seconds",
and — when config.soa_available is true — gated on the SoA kernel being no
slower than 1.05x scalar at the three largest shapes (by m*n*k volume).

The coherent_batch artifact (name == "coherent_batch") is checked for a
"coherent_batch" series whose rows carry "coherence", "batch",
"frames_per_s", "prep_hit_rate" and "fused_frames", and — when
config.gate_speedup is true — gated on the fused L=64/B=8 cell being at
least 1.3x the L=1/B=1 baseline with a >= 90% prep-cache hit rate. It must
also carry a "cross_channel" series ("batch", "same_frames_per_s",
"cross_frames_per_s", "speedup", "fused_frames"); under the same gate the
B=8 row must have decoded fused frames (every frame has a distinct channel
at L=1, so fusion there is the wide cross-channel engine) and show a
>= 1.25x speedup over the same-channel-only runtime. It must also carry a
"cross_lane" series ("lanes", "former", "frames_per_s", "fused_width_p50",
"offered_batch", "former_gathered"); under the same gate the 4-lane
former-on row must have gathered frames, a fused-width p50 >= 0.75x the
offered per-lane batch, and >= 1.15x the former-off pool's throughput.

The ingress artifact (name == "ingress") is checked for a "transport"
series ("transport", "m", "window", "frame_bytes", "frames_per_s",
"mbytes_per_s") covering both uds and tcp, and an "admission" series
("mode", "offered_fps", "hard_offered", "hard_misses",
"hard_deadline_miss_rate", "shed", "completed", "frames_per_s") covering
modes "none" and "shed". When config.gate_admission is true the shed-
before-miss gate applies: at 2x calibrated capacity the no-admission
baseline must actually miss hard deadlines, and admission control must
achieve a strictly lower hard-deadline miss rate.

The quant_kernels artifact (name == "quant_kernels") is checked for a
"kernels" series whose rows carry "kernel", "m", "n", "k" and "seconds",
and — when config.gate_speedup is true (AVX2 int16 and float SoA kernels
both available) — gated on the int16 AVX2 kernel beating the float SoA
kernel by >= 1.5x at the largest shape (by m*n*k volume). The int16 path
stores operands at half the width and fuses each complex MAC pair into one
madd, so losing this margin means the fixed-point kernel regressed.

The ablation_precision artifact (name == "ablation_precision") is checked
for an "int16_ber" series whose rows carry "snr_db", "ber_fp32",
"ber_int16" and "bits". When config.gate_ber is true the quantized-accuracy
gate applies: at every measured SNR above the first, the int16 BER must be
no worse than the float curve evaluated 0.2 dB back (log-linear
interpolation between neighbouring SNR points), within a 2-error
statistical allowance — the ISSUE acceptance criterion that quantization
costs < 0.2 dB across the Fig. 7 operating points.

The massive_mimo artifact (name == "massive_mimo") is checked for
"throughput" rows ("geometry", "detector", "frames_per_s", "us_per_frame",
"frames"), "ber" rows ("geometry", "detector", "snr_db", "ber", "ber_ci95",
"trials") and a "gates" series with one row per 128x8 serving point
("128x8-qpsk" and "128x8-16qam"). When config.gate_massive is true (real
trial counts) the asymmetric fast-path acceptance gates apply to every
gates row: the k=3 MMSE-Neumann tier must serve >= 3x the frames/s of the
best tree-search config, and its BER must be no worse than the exact MMSE
solve rerun 0.2 dB lower — the PR 10 acceptance criteria (DESIGN.md §17).

Exit status is 0 iff every file validates. Stdlib only — no dependencies.
"""

import json
import math
import os
import sys

SCHEMA = "spheredec.bench"
SCHEMA_VERSION = 1
SCALAR = (str, int, float, bool, type(None))


class Problems:
    def __init__(self):
        self.count = 0

    def report(self, path, message):
        self.count += 1
        print(f"{path}: {message}", file=sys.stderr)


def check_scalar(problems, path, where, value):
    if not isinstance(value, SCALAR):
        problems.report(path, f"{where}: expected a scalar, got {type(value).__name__}")


def check_labeled_list(problems, path, key, value, check_entry):
    """Common shape of `series` and `tables`: a list of {label, ...} objects."""
    if not isinstance(value, list):
        problems.report(path, f"'{key}' must be a list, got {type(value).__name__}")
        return
    seen = set()
    for i, entry in enumerate(value):
        where = f"{key}[{i}]"
        if not isinstance(entry, dict):
            problems.report(path, f"{where} must be an object")
            continue
        label = entry.get("label")
        if not isinstance(label, str) or not label:
            problems.report(path, f"{where}: missing or empty 'label'")
        elif label in seen:
            problems.report(path, f"{where}: duplicate label '{label}'")
        else:
            seen.add(label)
        check_entry(problems, path, where, entry)


def check_series_entry(problems, path, where, entry):
    rows = entry.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.report(path, f"{where}: 'rows' must be a non-empty list")
        return
    # Rows need not share one column set (e.g. google-benchmark user counters
    # vary per benchmark), but every cell must be a scalar.
    for j, row in enumerate(rows):
        if not isinstance(row, dict) or not row:
            problems.report(path, f"{where}.rows[{j}] must be a non-empty object")
            continue
        for col, cell in row.items():
            check_scalar(problems, path, f"{where}.rows[{j}].{col}", cell)


def check_table_entry(problems, path, where, entry):
    headers = entry.get("headers")
    if (not isinstance(headers, list) or not headers
            or not all(isinstance(h, str) for h in headers)):
        problems.report(path, f"{where}: 'headers' must be a non-empty string list")
        return
    rows = entry.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.report(path, f"{where}: 'rows' must be a non-empty list")
        return
    for j, row in enumerate(rows):
        if not isinstance(row, list):
            problems.report(path, f"{where}.rows[{j}] must be a list")
            continue
        if len(row) != len(headers):
            problems.report(
                path, f"{where}.rows[{j}]: {len(row)} cells vs {len(headers)} headers")
        for k, cell in enumerate(row):
            check_scalar(problems, path, f"{where}.rows[{j}][{k}]", cell)


def validate_file(problems, path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        problems.report(path, f"unreadable or invalid JSON: {err}")
        return

    if not isinstance(doc, dict):
        problems.report(path, "top level must be an object")
        return
    if doc.get("schema") != SCHEMA:
        problems.report(path, f"'schema' must be \"{SCHEMA}\", got {doc.get('schema')!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.report(path, f"'schema_version' must be {SCHEMA_VERSION}, "
                        f"got {doc.get('schema_version')!r}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.report(path, "'name' must be a non-empty string")
    else:
        expected = f"BENCH_{name}.json"
        if os.path.basename(path) != expected:
            problems.report(path, f"filename should be {expected} for name '{name}'")

    config = doc.get("config")
    if not isinstance(config, dict):
        problems.report(path, "'config' must be an object")
    else:
        for key, value in config.items():
            check_scalar(problems, path, f"config.{key}", value)

    check_labeled_list(problems, path, "series", doc.get("series", []), check_series_entry)
    check_labeled_list(problems, path, "tables", doc.get("tables", []), check_table_entry)

    if not doc.get("series") and not doc.get("tables"):
        problems.report(path, "document has neither series nor tables")

    counters = doc.get("counters")
    if counters is not None:
        if not isinstance(counters, dict):
            problems.report(path, "'counters' must be an object")
        else:
            for key, value in counters.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.report(path, f"counters.{key}: expected a number")

    for key in doc:
        if key not in ("schema", "schema_version", "name", "config", "series",
                       "tables", "counters"):
            problems.report(path, f"unknown top-level key '{key}'")

    if name == "dispatch":
        check_dispatch(problems, path, doc)
    if name == "gemm_kernels":
        check_gemm_kernels(problems, path, doc)
    if name == "coherent_batch":
        check_coherent_batch(problems, path, doc)
    if name == "ingress":
        check_ingress(problems, path, doc)
    if name == "quant_kernels":
        check_quant_kernels(problems, path, doc)
    if name == "ablation_precision":
        check_ablation_precision(problems, path, doc)
    if name == "massive_mimo":
        check_massive_mimo(problems, path, doc)


def check_dispatch(problems, path, doc):
    """Extra shape requirements for BENCH_dispatch.json (EXPERIMENTS.md)."""
    series = doc.get("series")
    policies = None
    if isinstance(series, list):
        for entry in series:
            if isinstance(entry, dict) and entry.get("label") == "policies":
                policies = entry
    if policies is None:
        problems.report(path, "dispatch: missing 'policies' series")
    else:
        rows = policies.get("rows")
        rows = rows if isinstance(rows, list) else []
        for j, row in enumerate(rows):
            if not isinstance(row, dict):
                continue
            for col in ("policy", "e2e_p99_s", "deadline_miss_rate"):
                if col not in row:
                    problems.report(
                        path, f"dispatch: policies.rows[{j}] missing '{col}'")

    counters = doc.get("counters")
    counters = counters if isinstance(counters, dict) else {}
    if "dispatch.prediction.mean_rel_error" not in counters:
        problems.report(
            path, "dispatch: missing counter 'dispatch.prediction.mean_rel_error'")


def check_gemm_kernels(problems, path, doc):
    """Extra shape + perf-gate requirements for BENCH_gemm_kernels.json."""
    series = doc.get("series")
    kernels = None
    if isinstance(series, list):
        for entry in series:
            if isinstance(entry, dict) and entry.get("label") == "kernels":
                kernels = entry
    if kernels is None:
        problems.report(path, "gemm_kernels: missing 'kernels' series")
        return

    rows = kernels.get("rows")
    rows = rows if isinstance(rows, list) else []
    by_shape = {}  # (m, n, k) -> {kernel: seconds}
    for j, row in enumerate(rows):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("kernel", "m", "n", "k", "seconds")
                   if c not in row]
        if missing:
            problems.report(
                path, f"gemm_kernels: kernels.rows[{j}] missing {missing}")
            continue
        shape = (row["m"], row["n"], row["k"])
        by_shape.setdefault(shape, {})[row["kernel"]] = row["seconds"]

    config = doc.get("config")
    config = config if isinstance(config, dict) else {}
    if not config.get("soa_available"):
        return  # scalar-only host: nothing to gate

    # Perf gate: at the three largest full-product shapes, the SoA kernel
    # must not be slower than 1.05x scalar — catches vectorization
    # regressions where the SIMD kernel silently loses to the baseline.
    full = [(m * n * k, (m, n, k), secs)
            for (m, n, k), secs in by_shape.items()
            if "scalar" in secs and "soa" in secs]
    if not full:
        problems.report(
            path, "gemm_kernels: soa_available but no scalar/soa row pairs")
        return
    for _, shape, secs in sorted(full, reverse=True)[:3]:
        if secs["soa"] > secs["scalar"] * 1.05:
            problems.report(
                path,
                f"gemm_kernels: SoA slower than scalar at shape {shape} "
                f"({secs['soa']:.3e}s vs {secs['scalar']:.3e}s)")


def check_coherent_batch(problems, path, doc):
    """Extra shape + perf-gate requirements for BENCH_coherent_batch.json."""
    series = doc.get("series")
    sweep = None
    if isinstance(series, list):
        for entry in series:
            if isinstance(entry, dict) and entry.get("label") == "coherent_batch":
                sweep = entry
    if sweep is None:
        problems.report(path, "coherent_batch: missing 'coherent_batch' series")
        return

    rows = sweep.get("rows")
    rows = rows if isinstance(rows, list) else []
    cells = {}  # (coherence, batch) -> row
    for j, row in enumerate(rows):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("coherence", "batch", "frames_per_s",
                               "prep_hit_rate", "fused_frames")
                   if c not in row]
        if missing:
            problems.report(
                path, f"coherent_batch: rows[{j}] missing {missing}")
            continue
        cells[(row["coherence"], row["batch"])] = row

    config = doc.get("config")
    config = config if isinstance(config, dict) else {}
    if not config.get("gate_speedup"):
        return  # smoke run: nothing was measured

    # Perf gate: at L=64/B=8 the fused coherent path must beat the i.i.d.
    # per-frame baseline by >= 1.3x, with the prep cache actually doing the
    # work (>= 90% hit rate) — catches both a broken cache (misses every
    # frame) and a fused path that lost its speed advantage.
    base = cells.get((1, 1))
    fused = cells.get((64, 8))
    if base is None or fused is None:
        problems.report(
            path, "coherent_batch: gate_speedup set but L=1/B=1 or "
            "L=64/B=8 cell missing")
        return
    if base["frames_per_s"] <= 0:
        problems.report(path, "coherent_batch: non-positive baseline throughput")
        return
    speedup = fused["frames_per_s"] / base["frames_per_s"]
    if speedup < 1.3:
        problems.report(
            path,
            f"coherent_batch: fused L=64/B=8 speedup {speedup:.2f}x < 1.3x "
            f"({fused['frames_per_s']:.0f} vs {base['frames_per_s']:.0f} frames/s)")
    if fused["prep_hit_rate"] < 0.90:
        problems.report(
            path,
            f"coherent_batch: fused L=64/B=8 prep hit rate "
            f"{fused['prep_hit_rate']:.2%} < 90%")
    if fused["fused_frames"] <= 0:
        problems.report(
            path, "coherent_batch: fused L=64/B=8 cell decoded no fused frames")

    # Cross-channel fusion gate: at L=1 every frame carries a distinct
    # channel, so any fused frame proves the wide block-diagonal engine ran,
    # and its best-of-3 throughput must beat the same-channel-only runtime
    # by >= 1.25x at B=8 — catches the wide path silently falling back to
    # sequential decode as much as a performance regression.
    cross = None
    if isinstance(series, list):
        for entry in series:
            if isinstance(entry, dict) and entry.get("label") == "cross_channel":
                cross = entry
    if cross is None:
        problems.report(path, "coherent_batch: missing 'cross_channel' series")
        return
    by_batch = {}
    for j, row in enumerate(cross.get("rows") or []):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("batch", "same_frames_per_s",
                               "cross_frames_per_s", "speedup", "fused_frames")
                   if c not in row]
        if missing:
            problems.report(
                path, f"coherent_batch: cross_channel.rows[{j}] missing {missing}")
            continue
        by_batch[row["batch"]] = row
    wide = by_batch.get(8)
    if wide is None:
        problems.report(
            path, "coherent_batch: gate_speedup set but cross_channel has no "
            "B=8 row")
        return
    if wide["fused_frames"] <= 0:
        problems.report(
            path, "coherent_batch: cross_channel B=8 decoded no fused frames "
            "(wide cross-channel fusion never engaged)")
    if wide["speedup"] < 1.25:
        problems.report(
            path,
            f"coherent_batch: cross-channel fused B=8 speedup "
            f"{wide['speedup']:.2f}x < 1.25x over same-channel-only "
            f"({wide['cross_frames_per_s']:.0f} vs "
            f"{wide['same_frames_per_s']:.0f} frames/s)")

    # Cross-lane former gate: interleaved multi-cell traffic at B=1 means
    # every lane's own pop is a single frame, so wide runs only exist if the
    # former gathered them. At 4 lanes the former must (a) form runs whose
    # median width covers >= 75% of the offered per-lane share (window /
    # lanes), and (b) beat the former-off pool by >= 1.15x — catching both a
    # former that stopped gathering and one that gathers without a payoff.
    lane = None
    if isinstance(series, list):
        for entry in series:
            if isinstance(entry, dict) and entry.get("label") == "cross_lane":
                lane = entry
    if lane is None:
        problems.report(path, "coherent_batch: missing 'cross_lane' series")
        return
    by_cell = {}
    for j, row in enumerate(lane.get("rows") or []):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("lanes", "former", "frames_per_s",
                               "fused_width_p50", "offered_batch",
                               "former_gathered")
                   if c not in row]
        if missing:
            problems.report(
                path, f"coherent_batch: cross_lane.rows[{j}] missing {missing}")
            continue
        by_cell[(row["lanes"], bool(row["former"]))] = row
    on = by_cell.get((4, True))
    off = by_cell.get((4, False))
    if on is None or off is None:
        problems.report(
            path, "coherent_batch: gate_speedup set but cross_lane has no "
            "4-lane former on/off pair")
        return
    if on["former_gathered"] <= 0:
        problems.report(
            path, "coherent_batch: cross_lane former-on 4-lane run gathered "
            "no frames (former never engaged)")
    if on["fused_width_p50"] < 0.75 * on["offered_batch"]:
        problems.report(
            path,
            f"coherent_batch: cross_lane former-on 4-lane fused width p50 "
            f"{on['fused_width_p50']} < 0.75x offered batch "
            f"{on['offered_batch']}")
    if off["frames_per_s"] <= 0:
        problems.report(
            path, "coherent_batch: cross_lane former-off 4-lane throughput "
            "non-positive")
        return
    ratio = on["frames_per_s"] / off["frames_per_s"]
    if ratio < 1.15:
        problems.report(
            path,
            f"coherent_batch: cross_lane former on/off throughput ratio "
            f"{ratio:.2f}x < 1.15x at 4 lanes "
            f"({on['frames_per_s']:.0f} vs {off['frames_per_s']:.0f} "
            f"frames/s)")


def check_ingress(problems, path, doc):
    """Extra shape + shed-before-miss gate for BENCH_ingress.json."""
    series = doc.get("series")
    series = series if isinstance(series, list) else []
    entries = {e.get("label"): e for e in series if isinstance(e, dict)}

    transport = entries.get("transport")
    if transport is None:
        problems.report(path, "ingress: missing 'transport' series")
    else:
        rows = transport.get("rows")
        rows = rows if isinstance(rows, list) else []
        transports = set()
        for j, row in enumerate(rows):
            if not isinstance(row, dict):
                continue
            missing = [c for c in ("transport", "m", "window", "frame_bytes",
                                   "frames_per_s", "mbytes_per_s")
                       if c not in row]
            if missing:
                problems.report(
                    path, f"ingress: transport.rows[{j}] missing {missing}")
                continue
            transports.add(row["transport"])
            if row["frames_per_s"] <= 0:
                problems.report(
                    path, f"ingress: transport.rows[{j}] non-positive throughput")
        for want in ("uds", "tcp"):
            if want not in transports:
                problems.report(path, f"ingress: no '{want}' transport rows")

    admission = entries.get("admission")
    if admission is None:
        problems.report(path, "ingress: missing 'admission' series")
        return
    rows = admission.get("rows")
    rows = rows if isinstance(rows, list) else []
    by_mode = {}
    for j, row in enumerate(rows):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("mode", "offered_fps", "hard_offered",
                               "hard_misses", "hard_deadline_miss_rate",
                               "shed", "completed", "frames_per_s")
                   if c not in row]
        if missing:
            problems.report(
                path, f"ingress: admission.rows[{j}] missing {missing}")
            continue
        by_mode[row["mode"]] = row

    for want in ("none", "shed"):
        if want not in by_mode:
            problems.report(path, f"ingress: no admission mode '{want}' row")

    config = doc.get("config")
    config = config if isinstance(config, dict) else {}
    if not config.get("gate_admission"):
        return  # smoke run: offered load too small to overload the pool

    # Shed-before-miss gate: at 2x calibrated capacity the uncontrolled
    # baseline must be missing hard deadlines (otherwise the experiment did
    # not overload anything), and admission control must yield a strictly
    # lower hard-deadline miss rate — the acceptance criterion of the
    # admission subsystem.
    none = by_mode.get("none")
    shed = by_mode.get("shed")
    if none is None or shed is None:
        return  # already reported above
    if none["hard_misses"] <= 0:
        problems.report(
            path, "ingress: gate_admission set but the no-admission baseline "
            "missed no hard deadlines (not overloaded)")
        return
    if shed["hard_deadline_miss_rate"] >= none["hard_deadline_miss_rate"]:
        problems.report(
            path,
            f"ingress: admission control did not reduce the hard-deadline "
            f"miss rate ({shed['hard_deadline_miss_rate']:.2%} with shed vs "
            f"{none['hard_deadline_miss_rate']:.2%} without)")


def check_quant_kernels(problems, path, doc):
    """Extra shape + perf-gate requirements for BENCH_quant_kernels.json."""
    series = doc.get("series")
    kernels = None
    if isinstance(series, list):
        for entry in series:
            if isinstance(entry, dict) and entry.get("label") == "kernels":
                kernels = entry
    if kernels is None:
        problems.report(path, "quant_kernels: missing 'kernels' series")
        return

    rows = kernels.get("rows")
    rows = rows if isinstance(rows, list) else []
    by_shape = {}  # (m, n, k) -> {kernel: seconds}
    for j, row in enumerate(rows):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("kernel", "m", "n", "k", "seconds")
                   if c not in row]
        if missing:
            problems.report(
                path, f"quant_kernels: kernels.rows[{j}] missing {missing}")
            continue
        shape = (row["m"], row["n"], row["k"])
        by_shape.setdefault(shape, {})[row["kernel"]] = row["seconds"]

    config = doc.get("config")
    config = config if isinstance(config, dict) else {}
    if not config.get("gate_speedup"):
        return  # AVX2 int16 or float SoA kernel unavailable: nothing to gate

    # Perf gate: at the largest row-0 level shape the int16 AVX2 kernel must
    # beat the float SoA kernel by >= 1.5x. Half-width operands plus one madd
    # per complex MAC pair make this the expected margin; losing it means the
    # fixed-point kernel (or its packing layout) regressed.
    paired = [(m * n * k, (m, n, k), secs)
              for (m, n, k), secs in by_shape.items()
              if "int16-avx2" in secs and "fp32-soa" in secs]
    if not paired:
        problems.report(
            path, "quant_kernels: gate_speedup set but no int16-avx2/fp32-soa "
            "row pairs")
        return
    _, shape, secs = max(paired)
    if secs["int16-avx2"] <= 0:
        problems.report(
            path, f"quant_kernels: non-positive int16-avx2 time at {shape}")
        return
    speedup = secs["fp32-soa"] / secs["int16-avx2"]
    if speedup < 1.5:
        problems.report(
            path,
            f"quant_kernels: int16 AVX2 speedup {speedup:.2f}x < 1.5x over "
            f"fp32 SoA at shape {shape} ({secs['int16-avx2']:.3e}s vs "
            f"{secs['fp32-soa']:.3e}s)")


def check_ablation_precision(problems, path, doc):
    """Extra shape + BER-gate requirements for BENCH_ablation_precision.json."""
    series = doc.get("series")
    ber = None
    if isinstance(series, list):
        for entry in series:
            if isinstance(entry, dict) and entry.get("label") == "int16_ber":
                ber = entry
    if ber is None:
        problems.report(path, "ablation_precision: missing 'int16_ber' series")
        return

    points = []
    for j, row in enumerate(ber.get("rows") or []):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("snr_db", "ber_fp32", "ber_int16", "bits")
                   if c not in row]
        if missing:
            problems.report(
                path, f"ablation_precision: int16_ber.rows[{j}] missing "
                f"{missing}")
            continue
        points.append(row)
    points.sort(key=lambda r: r["snr_db"])
    if len(points) < 2:
        problems.report(
            path, "ablation_precision: int16_ber needs >= 2 SNR points")
        return

    config = doc.get("config")
    config = config if isinstance(config, dict) else {}
    if not config.get("gate_ber"):
        return  # smoke run: too few trials for a meaningful BER comparison

    # Accuracy gate: quantization must cost < 0.2 dB. Operationally: at each
    # SNR s (above the first), the int16 BER may be at most the float curve's
    # BER at s - 0.2 dB — i.e. the int16 curve is the float curve shifted
    # right by no more than 0.2 dB. The float curve between grid points is
    # interpolated log-linearly (BER curves are ~exponential in SNR), and a
    # 2-error statistical allowance absorbs binomial noise at high SNR where
    # the measured error counts are small.
    def fp32_at(snr):
        lo = hi = None
        for p in points:
            if p["snr_db"] <= snr:
                lo = p
            if p["snr_db"] >= snr and hi is None:
                hi = p
        if lo is None or hi is None:
            return None
        if lo is hi or hi["snr_db"] == lo["snr_db"]:
            return lo["ber_fp32"]
        t = (snr - lo["snr_db"]) / (hi["snr_db"] - lo["snr_db"])
        floor_ber = 0.5 / max(lo["bits"], 1)  # half an error: log-safe zero
        a = max(lo["ber_fp32"], floor_ber)
        b = max(hi["ber_fp32"], floor_ber)
        return math.exp((1 - t) * math.log(a) + t * math.log(b))

    for p in points[1:]:
        budget = fp32_at(p["snr_db"] - 0.2)
        if budget is None:
            continue
        allowance = 2.0 / max(p["bits"], 1)
        if p["ber_int16"] > budget + allowance:
            problems.report(
                path,
                f"ablation_precision: int16 BER {p['ber_int16']:.3e} at "
                f"{p['snr_db']:g} dB exceeds the float curve 0.2 dB back "
                f"({budget:.3e} + {allowance:.3e} allowance) — quantization "
                f"is costing >= 0.2 dB")


def check_massive_mimo(problems, path, doc):
    """Extra shape + fast-path acceptance gates for BENCH_massive_mimo.json."""
    series = doc.get("series")
    series = series if isinstance(series, list) else []
    entries = {e.get("label"): e for e in series if isinstance(e, dict)}

    for label, cols in (("throughput", ("geometry", "detector", "frames_per_s",
                                        "us_per_frame", "frames")),
                        ("ber", ("geometry", "detector", "snr_db", "ber",
                                 "ber_ci95", "trials"))):
        entry = entries.get(label)
        if entry is None:
            problems.report(path, f"massive_mimo: missing '{label}' series")
            continue
        for j, row in enumerate(entry.get("rows") or []):
            if not isinstance(row, dict):
                continue
            missing = [c for c in cols if c not in row]
            if missing:
                problems.report(
                    path, f"massive_mimo: {label}.rows[{j}] missing {missing}")

    gates = entries.get("gates")
    if gates is None:
        problems.report(path, "massive_mimo: missing 'gates' series")
        return
    by_geometry = {}
    for j, row in enumerate(gates.get("rows") or []):
        if not isinstance(row, dict):
            continue
        missing = [c for c in ("geometry", "mmse_fps", "best_tree_fps",
                               "speedup", "ber_neumann_k3", "ber_exact",
                               "ber_exact_shifted", "throughput_ok", "ber_ok")
                   if c not in row]
        if missing:
            problems.report(
                path, f"massive_mimo: gates.rows[{j}] missing {missing}")
            continue
        by_geometry[row["geometry"]] = row
    for want in ("128x8-qpsk", "128x8-16qam"):
        if want not in by_geometry:
            problems.report(path, f"massive_mimo: no gates row for '{want}'")

    config = doc.get("config")
    config = config if isinstance(config, dict) else {}
    if not config.get("gate_massive"):
        return  # smoke run: trial counts too small for the gates to bind

    # Acceptance gates (ISSUE 10 / DESIGN.md §17): at both 128x8 serving
    # points the k=3 Neumann tier must serve >= 3x the best tree-search
    # config's frames/s, and its BER may be at most the exact MMSE solve's
    # BER rerun 0.2 dB lower (paired trials) — i.e. the series costs < 0.2 dB.
    for geometry, row in sorted(by_geometry.items()):
        if row["speedup"] < 3.0 or not row["throughput_ok"]:
            problems.report(
                path,
                f"massive_mimo: {geometry} MMSE tier speedup "
                f"{row['speedup']:.2f}x < 3.0x over the best tree search "
                f"({row['mmse_fps']:.0f} vs {row['best_tree_fps']:.0f} "
                f"frames/s)")
        if row["ber_neumann_k3"] > row["ber_exact_shifted"] or not row["ber_ok"]:
            problems.report(
                path,
                f"massive_mimo: {geometry} k=3 Neumann BER "
                f"{row['ber_neumann_k3']:.3e} exceeds the exact MMSE curve "
                f"0.2 dB back ({row['ber_exact_shifted']:.3e}) — the series "
                f"is costing >= 0.2 dB")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            found = sorted(
                os.path.join(arg, f) for f in os.listdir(arg)
                if f.startswith("BENCH_") and f.endswith(".json"))
            if not found:
                print(f"{arg}: no BENCH_*.json files found", file=sys.stderr)
                return 1
            files.extend(found)
        else:
            files.append(arg)

    problems = Problems()
    for path in files:
        validate_file(problems, path)
    if problems.count:
        print(f"FAIL: {problems.count} problem(s) across {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"OK: {len(files)} file(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
