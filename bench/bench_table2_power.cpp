// Table II: power and energy, CPU vs FPGA, for {10,15,20}x{..} 4-QAM plus
// 10x10 16-QAM. Decode times come from real decodes at 4 dB (the operating
// point whose CPU times match Table II's Exec row in the paper); power from
// the calibrated platform models. The paper's headline is a 38.1x geo-mean
// energy reduction.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fpga/power.hpp"
#include "platform/cpu_model.hpp"

namespace {

struct Config {
  sd::index_t m;
  sd::Modulation mod;
};

}  // namespace

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(6);
  bench::open_report("table2_power");
  bench::print_banner("Table II: power profile for CPU and FPGA",
                      "operating point SNR 4 dB", trials);

  const std::vector<Config> configs{{10, Modulation::kQam4},
                                    {15, Modulation::kQam4},
                                    {20, Modulation::kQam4},
                                    {10, Modulation::kQam16}};
  const double snr = 4.0;

  Table t({"", "10x10 4-QAM", "15x15 4-QAM", "20x20 4-QAM", "10x10 16-QAM"});
  std::vector<std::string> cpu_power_row{"Power CPU (W)"},
      fpga_power_row{"Power FPGA (W)"}, cpu_exec_row{"Exec CPU (ms)"},
      fpga_exec_row{"Exec FPGA (ms)"}, cpu_energy_row{"Energy CPU (J)"},
      fpga_energy_row{"Energy FPGA (J)"}, reduction_row{"Energy reduction"};
  std::vector<double> reductions;

  for (const Config& cfg : configs) {
    const SystemConfig sys{cfg.m, cfg.m, cfg.mod};
    ExperimentRunner runner(sys, trials, 22);

    DecoderSpec cpu_spec;
    cpu_spec.sd.max_nodes = 1'000'000;
    auto cpu = make_detector(sys, cpu_spec);
    DecoderSpec fpga_spec = cpu_spec;
    fpga_spec.device = TargetDevice::kFpgaOptimized;
    auto fpga = make_detector(sys, fpga_spec);

    const SweepPoint p_cpu = runner.run_point(*cpu, snr);
    const SweepPoint p_fpga = runner.run_point(*fpga, snr);

    const double p_c = cpu_power_watts(cfg.m, cfg.mod);
    const double p_f =
        fpga_power_watts(FpgaConfig::optimized_design(cfg.m, cfg.m, cfg.mod));
    const double e_c = p_c * p_cpu.mean_seconds;
    const double e_f = p_f * p_fpga.mean_seconds;
    reductions.push_back(e_c / e_f);

    cpu_power_row.push_back(fmt(p_c, 0));
    fpga_power_row.push_back(fmt(p_f, 1));
    cpu_exec_row.push_back(fmt(p_cpu.mean_seconds * 1e3, 2));
    fpga_exec_row.push_back(fmt(p_fpga.mean_seconds * 1e3, 2));
    cpu_energy_row.push_back(fmt_sci(e_c, 2));
    fpga_energy_row.push_back(fmt_sci(e_f, 2));
    reduction_row.push_back(fmt_factor(e_c / e_f));
  }

  t.add_row(cpu_power_row);
  t.add_row(fpga_power_row);
  t.add_separator();
  t.add_row(cpu_exec_row);
  t.add_row(fpga_exec_row);
  t.add_separator();
  t.add_row(cpu_energy_row);
  t.add_row(fpga_energy_row);
  t.add_row(reduction_row);
  bench::print_table(t, "power");

  std::printf("geo-mean energy reduction: %s (paper: 38.1x; paper per-config "
              "reductions 35.8x / 36.8x / 38.4x / 41.8x)\n",
              fmt_factor(geomean(reductions)).c_str());
  std::printf("CPU exec is measured single-core wall-clock here vs the "
              "paper's 64-core MKL box, so absolute times and the absolute "
              "reduction differ; the FPGA-power advantage and the >10x "
              "energy gap are the reproduced shape.\n");
  return 0;
}
