// Ablation: per-unit cycle breakdown of the simulated pipeline — the
// quantitative version of the paper's profiling claims (§III): the GEMM
// evaluation dominates, the prefetch unit hides the HBM latency in the
// optimized design, and the sorting overhead is negligible relative to the
// GEMM (§II-B).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "fpga/pipeline.hpp"
#include "mimo/scenario.hpp"

namespace {

sd::FpgaRunReport run_one(const sd::FpgaConfig& cfg, sd::index_t m,
                          sd::Modulation mod, double snr) {
  using namespace sd;
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = 71;
  Scenario scenario(sc);
  const Trial t = scenario.next();
  FpgaPipeline pipeline(cfg);
  return pipeline.run(preprocess(t.h, t.y, false),
                      Constellation::get(mod), t.sigma2);
}

}  // namespace

int main() {
  using namespace sd;
  bench::open_report("ablation_pipeline_breakdown");
  bench::print_banner("Ablation: pipeline cycle breakdown",
                      "one decode each, SNR 8 dB", 1);

  struct Config {
    const char* label;
    index_t m;
    Modulation mod;
    bool optimized;
  };
  const Config configs[] = {
      {"opt 10x10 4-QAM", 10, Modulation::kQam4, true},
      {"base 10x10 4-QAM", 10, Modulation::kQam4, false},
      {"opt 10x10 16-QAM", 10, Modulation::kQam16, true},
      {"opt 15x15 4-QAM", 15, Modulation::kQam4, true},
  };

  Table t({"design", "branch", "prefetch", "GEMM", "NORM", "sort", "MST",
           "total cycles", "GEMM share"});
  for (const Config& cfg : configs) {
    const FpgaConfig hw = cfg.optimized
                              ? FpgaConfig::optimized_design(cfg.m, cfg.m, cfg.mod)
                              : FpgaConfig::baseline(cfg.m, cfg.m, cfg.mod);
    const FpgaRunReport r = run_one(hw, cfg.m, cfg.mod, 8.0);
    const auto& cyc = r.cycles;
    const double total = static_cast<double>(cyc.total());
    auto pct = [&](std::uint64_t v) {
      return fmt_pct(static_cast<double>(v) / total);
    };
    t.add_row({cfg.label, pct(cyc.branch), pct(cyc.prefetch_exposed),
               pct(cyc.gemm), pct(cyc.norm), pct(cyc.sort), pct(cyc.mst),
               fmt(total, 0),
               fmt_pct(static_cast<double>(cyc.gemm) / total)});
  }
  bench::print_table(t, "breakdown");
  std::printf("the GEMM engine dominates the optimized designs (the paper's "
              "premise for attacking it first); in the baseline the exposed "
              "memory latency takes over, which is what the prefetch unit "
              "eliminates. Sorting stays a small slice (SII-B's claim).\n");
  return 0;
}
