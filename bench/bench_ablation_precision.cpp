// Ablation (paper §V future work): reduced-precision datapaths. The paper
// proposes FP16/mixed precision as an extension to cut resources and
// latency; this bench measures the BER impact of (a) an fp16 GEMM/NORM
// datapath in the simulated pipeline plus the resource savings the model
// predicts, and (b) the real int16 fixed-point BFS datapath (DESIGN.md §15)
// against its float twin over the Fig. 7 SNR axis — the series
// validate_bench_json.py gates on the quantized BER staying within 0.2 dB
// of float.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/spec_parse.hpp"
#include "fpga/resources.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(200);
  const SystemConfig sys{10, 10, Modulation::kQam4};
  bench::open_report("ablation_precision");
  bench::print_banner("Ablation: FP16 vs FP32 datapath (paper SV future work)",
                      "10x10 MIMO, 4-QAM, simulated U280", trials);

  ExperimentRunner runner(sys, trials, 44);
  DecoderSpec fp32_spec;
  fp32_spec.device = TargetDevice::kFpgaOptimized;
  auto fp32 = make_detector(sys, fp32_spec);
  DecoderSpec fp16_spec = fp32_spec;
  fp16_spec.fpga_precision = Precision::kFp16;
  auto fp16 = make_detector(sys, fp16_spec);

  Table t({"SNR (dB)", "BER fp32", "BER fp16", "nodes fp32", "nodes fp16",
           "fp16 time (ms)"});
  for (double snr : {4.0, 8.0, 12.0, 16.0}) {
    const SweepPoint p32 = runner.run_point(*fp32, snr);
    const SweepPoint p16 = runner.run_point(*fp16, snr);
    t.add_row({fmt(snr, 0), fmt_sci(p32.ber), fmt_sci(p16.ber),
               fmt(p32.mean_nodes_expanded, 0), fmt(p16.mean_nodes_expanded, 0),
               fmt(p16.mean_seconds * 1e3, 3)});
  }
  bench::print_table(t, "ber");

  FpgaConfig cfg32 = FpgaConfig::optimized_design(10, 10, Modulation::kQam4);
  FpgaConfig cfg16 = cfg32;
  cfg16.precision = Precision::kFp16;
  const auto r32 = estimate_resources(cfg32);
  const auto r16 = estimate_resources(cfg16);
  Table rt({"resource", "fp32", "fp16", "saving"});
  rt.add_row({"DSPs", fmt(r32.dsps, 0), fmt(r16.dsps, 0),
              fmt_pct(1.0 - r16.dsps / r32.dsps)});
  rt.add_row({"BRAMs", fmt(r32.bram18, 0), fmt(r16.bram18, 0),
              fmt_pct(1.0 - r16.bram18 / r32.bram18)});
  rt.add_row({"URAMs", fmt(r32.urams, 0), fmt(r16.urams, 0),
              fmt_pct(1.0 - r16.urams / r32.urams)});
  bench::print_table(rt, "resources");
  std::printf("fp16 rounding perturbs partial distances; near-tied leaf "
              "candidates can flip, so BER may degrade slightly at low SNR "
              "while resources drop ~50%% in the DSP/memory classes.\n");

  // ---- int16 fixed-point BFS datapath vs float (DESIGN.md §15) ------------
  // Paired trials (same seed => byte-identical channels/noise per SNR), so
  // the BER delta is exactly the quantization effect. The CI gate reads the
  // "int16_ber" series and checks the quantized BER against the float curve
  // shifted by 0.2 dB; with few trials the binomial noise swamps that bound,
  // so the gate only binds when the run used >= 100 trials per point.
  bench::report().config("gate_ber", trials >= 100);
  const index_t m = sys.num_tx;
  const auto bits_per_sym = static_cast<usize>(std::lround(
      std::log2(static_cast<double>(Constellation::get(sys.modulation)
                                        .order()))));
  ExperimentRunner qrunner(sys, trials, 7);
  auto bfs32 = make_detector(sys, parse_decoder_spec("bfs"));
  auto bfs16 = make_detector(sys, parse_decoder_spec("bfs:precision=int16"));
  Table qt({"SNR (dB)", "BER fp32", "BER int16", "SER int16", "bits"});
  for (double snr : {4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0}) {
    const SweepPoint q32 = qrunner.run_point(*bfs32, snr);
    const SweepPoint q16 = qrunner.run_point(*bfs16, snr);
    const std::uint64_t bits =
        static_cast<std::uint64_t>(trials) * static_cast<std::uint64_t>(m) *
        bits_per_sym;
    qt.add_row({fmt(snr, 0), fmt_sci(q32.ber), fmt_sci(q16.ber),
                fmt_sci(q16.ser), std::to_string(bits)});
    bench::report().row("int16_ber", {{"snr_db", snr},
                                      {"ber_fp32", q32.ber},
                                      {"ber_int16", q16.ber},
                                      {"ser", q16.ser},
                                      {"bits", bits}});
  }
  bench::print_table(qt, "int16_ber");
  std::printf("int16 rows run the fixed-point BFS datapath end-to-end "
              "(quantized level GEMMs, integer PD comparisons); fp32 rows "
              "are the same traversal on floats over identical trials.\n");
  return 0;
}
