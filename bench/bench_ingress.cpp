// Ingress benchmark, two series:
//
//  transport — b_eff-style loopback sweep: frames streamed by a NetClient
//    through the full wire-protocol + IngressServer + sharded-serving path
//    over UDS and TCP loopback, frame-size (antenna count) x window (frames
//    in flight), reporting frames/s and transported MB/s. A cheap linear
//    detector keeps the decode out of the critical path, so the numbers
//    measure the transport, not the search.
//
//  admission — shed-before-miss at overload: capacity C is calibrated
//    closed-loop, then an open-loop mixed-QoS stream (30% hard 10 ms / 40%
//    soft 50 ms / 30% best-effort) arrives at 2x C with admission control
//    off ("none") vs on ("shed"). The gate: admission yields a strictly
//    lower hard-deadline miss rate (recorded in BENCH_ingress.json;
//    enforced by tools/validate_bench_json.py at real trial counts).
//
//   SD_TRIALS=2000 ./bench_ingress [--m=8] [--madm=10] [--coherence=16]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spec_parse.hpp"
#include "mimo/scenario.hpp"
#include "net/client.hpp"
#include "net/ingress.hpp"
#include "obs/counters.hpp"

using namespace sd;
using Clock = serve::Clock;

namespace {

std::vector<Trial> make_trials(const SystemConfig& sys, usize n,
                               usize coherence, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = sys.num_tx;
  sc.num_rx = sys.num_rx;
  sc.modulation = sys.modulation;
  sc.snr_db = 8.0;
  sc.seed = seed;
  sc.coherence_block = coherence;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  trials.reserve(n);
  for (usize i = 0; i < n; ++i) trials.push_back(scenario.next());
  return trials;
}

struct TransportResult {
  double seconds = 0.0;
  double frames_per_s = 0.0;
  double mbytes_per_s = 0.0;
};

TransportResult run_transport(bool tcp, const SystemConfig& sys, usize frames,
                              usize window, usize coherence) {
  net::ShardedServerOptions so;
  so.num_shards = 1;
  so.server.num_workers = 2;
  so.server.queue_capacity = 1024;
  so.admission.enabled = false;
  net::ShardedServer shards(sys, parse_decoder_spec("zf"), so);

  net::IngressOptions io;
  if (tcp) {
    io.enable_tcp = true;
  } else {
    io.uds_path = "/tmp/sd_bench_ingress." + std::to_string(::getpid()) +
                  ".sock";
  }
  net::IngressServer ingress(shards, io);
  ingress.start();
  net::NetClient client = tcp ? net::NetClient::connect_tcp(ingress.tcp_port())
                              : net::NetClient::connect_uds(ingress.uds_path());

  const std::vector<Trial> trials = make_trials(sys, frames, coherence, 11);
  std::vector<std::uint64_t> fps(frames);
  for (usize i = 0; i < frames; ++i)
    fps[i] = (i % coherence == 0) ? channel_fingerprint(trials[i].h)
                                  : fps[i - 1];

  const usize win = std::min(window, frames);
  usize sent = 0, received = 0;
  const auto send_next = [&] {
    net::WireFrame wf;
    wf.cell_id = 0;
    wf.frame_id = sent;
    wf.qos = net::QosClass::kBestEffort;
    wf.sigma2 = trials[sent].sigma2;
    wf.y = trials[sent].y;
    if (!client.send_frame_auto(wf, trials[sent].h, fps[sent]))
      throw net::net_error("server closed during bench");
    ++sent;
  };
  const Clock::time_point t0 = Clock::now();
  while (sent < win) send_next();
  net::WireResponse resp;
  while (received < frames) {
    if (!client.recv(resp)) throw net::net_error("early EOF during bench");
    ++received;
    if (sent < frames) send_next();
  }
  TransportResult r;
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  const double bytes =
      static_cast<double>(client.bytes_sent() + client.bytes_received());
  r.frames_per_s =
      r.seconds > 0 ? static_cast<double>(frames) / r.seconds : 0.0;
  r.mbytes_per_s = r.seconds > 0 ? bytes / r.seconds / 1e6 : 0.0;
  ingress.stop();
  shards.drain();
  return r;
}

struct AdmissionResult {
  double offered_fps = 0.0;
  usize hard_offered = 0;
  usize hard_misses = 0;
  usize shed = 0;
  usize completed = 0;
  double hard_miss_rate = 0.0;
  double throughput_fps = 0.0;
};

net::QosClass qos_of(usize i) {
  const usize r = i % 10;
  if (r < 3) return net::QosClass::kHard;
  if (r < 7) return net::QosClass::kSoft;
  return net::QosClass::kBestEffort;
}

/// Direct ShardedServer drive (no sockets): isolates the admission decision
/// from transport noise.
AdmissionResult run_admission(bool enabled, double rate_fps,
                              const SystemConfig& sys,
                              const std::vector<Trial>& trials,
                              const std::vector<ChannelHandle>& channels) {
  net::ShardedServerOptions so;
  so.num_shards = 1;
  so.server.num_workers = 2;
  so.server.queue_capacity = 8192;  // overload lives in the queue, not at submit
  so.admission.enabled = enabled;
  so.admission.headroom = 1.0;
  net::ShardedServer shards(sys, parse_decoder_spec("sphere"), so);

  const usize n = trials.size();
  std::atomic<std::uint64_t> hard_misses{0};
  shards.set_completion_tap(
      [&](usize, const serve::FrameResult& r) {
        if (qos_of(r.id) == net::QosClass::kHard && r.deadline_missed)
          hard_misses.fetch_add(1, std::memory_order_relaxed);
      });

  AdmissionResult res;
  const Clock::time_point t0 = Clock::now();
  const auto interval = std::chrono::duration<double>(1.0 / rate_fps);
  for (usize i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(interval) *
                 static_cast<long>(i));
    serve::FrameRequest f;
    f.id = i;
    f.channel = channels[i];
    f.y = trials[i].y;
    f.sigma2 = trials[i].sigma2;
    const net::QosClass q = qos_of(i);
    if (q == net::QosClass::kHard) ++res.hard_offered;
    if (shards.submit(0, std::move(f), q) == net::ShardSubmit::kShed)
      ++res.shed;
  }
  shards.drain();
  const serve::ServerMetrics m = shards.global_metrics();
  res.offered_fps = rate_fps;
  res.hard_misses = static_cast<usize>(hard_misses.load());
  res.completed = static_cast<usize>(m.completed);
  res.hard_miss_rate =
      res.hard_offered > 0
          ? static_cast<double>(res.hard_misses) /
                static_cast<double>(res.hard_offered)
          : 0.0;
  res.throughput_fps = m.throughput_fps;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto m = static_cast<index_t>(cli.get_int_or("m", 8));
  const auto madm = static_cast<index_t>(cli.get_int_or("madm", 10));
  const auto coherence = static_cast<usize>(cli.get_int_or("coherence", 16));
  const usize frames = bench::trials_or(400);
  const bool gate = frames >= 200;  // smoke runs are too short to gate on

  bench::open_report("ingress");
  bench::print_banner(
      "Network ingress: transport throughput and shed-before-miss",
      std::to_string(m) + "x" + std::to_string(m) + " transport / " +
          std::to_string(madm) + "x" + std::to_string(madm) + " admission, " +
          "4QAM @ 8 dB, coherence " + std::to_string(coherence),
      frames);
  bench::report().config("gate_admission", gate);
  bench::report().config("coherence", coherence);

  // --- Series 1: transport -------------------------------------------------
  Table tt({"transport", "m", "window", "frame B", "frames/s", "MB/s"},
           {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
            Align::kRight, Align::kRight});
  for (const bool tcp : {false, true}) {
    for (const index_t mm : {m, static_cast<index_t>(2 * m)}) {
      const SystemConfig sys{mm, mm, Modulation::kQam4};
      for (const usize window : {usize{1}, usize{16}}) {
        const TransportResult r =
            run_transport(tcp, sys, frames, window, coherence);
        const usize fb = net::encoded_frame_bytes(mm, mm, false);
        const std::string name = tcp ? "tcp" : "uds";
        tt.add_row({name, std::to_string(mm), std::to_string(window),
                    std::to_string(fb), fmt(r.frames_per_s, 0),
                    fmt(r.mbytes_per_s, 1)});
        bench::report().row("transport",
                            {{"transport", name},
                             {"m", mm},
                             {"window", window},
                             {"frame_bytes", fb},
                             {"frames_per_s", r.frames_per_s},
                             {"mbytes_per_s", r.mbytes_per_s}});
      }
    }
    tt.add_separator();
  }
  bench::print_table(tt, "transport");

  // --- Series 2: admission control at 2x capacity --------------------------
  const SystemConfig asys{madm, madm, Modulation::kQam4};
  const std::vector<Trial> atrials = make_trials(asys, frames, coherence, 23);
  std::vector<ChannelHandle> channels(frames);
  for (usize i = 0; i < frames; ++i)
    channels[i] = (i % coherence == 0) ? ChannelHandle(atrials[i].h)
                                       : channels[i - 1];

  // Calibrate capacity closed-loop: saturating submit against a small queue.
  double capacity_fps;
  {
    net::ShardedServerOptions so;
    so.num_shards = 1;
    so.server.num_workers = 2;
    so.server.queue_capacity = 4;
    so.admission.enabled = false;
    net::ShardedServer shards(asys, parse_decoder_spec("sphere"), so);
    for (usize i = 0; i < frames; ++i) {
      serve::FrameRequest f;
      f.id = i;
      f.channel = channels[i];
      f.y = atrials[i].y;
      f.sigma2 = atrials[i].sigma2;
      (void)shards.submit(0, std::move(f), net::QosClass::kBestEffort);
    }
    shards.drain();
    capacity_fps = shards.global_metrics().throughput_fps;
  }
  const double offered = std::max(2.0 * capacity_fps, 10.0);
  bench::report().config("capacity_fps", capacity_fps);

  Table at({"mode", "offered f/s", "hard offered", "hard misses",
            "miss rate", "shed", "completed", "f/s"},
           {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
            Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const bool enabled : {false, true}) {
    const AdmissionResult r =
        run_admission(enabled, offered, asys, atrials, channels);
    const std::string mode = enabled ? "shed" : "none";
    at.add_row({mode, fmt(r.offered_fps, 0), std::to_string(r.hard_offered),
                std::to_string(r.hard_misses), fmt_pct(r.hard_miss_rate),
                std::to_string(r.shed), std::to_string(r.completed),
                fmt(r.throughput_fps, 0)});
    bench::report().row("admission",
                        {{"mode", mode},
                         {"offered_fps", r.offered_fps},
                         {"hard_offered", r.hard_offered},
                         {"hard_misses", r.hard_misses},
                         {"hard_deadline_miss_rate", r.hard_miss_rate},
                         {"shed", r.shed},
                         {"completed", r.completed},
                         {"frames_per_s", r.throughput_fps}});
  }
  bench::print_table(at, "admission");
  std::printf("\ncapacity calibrated closed-loop at %.0f f/s; overload "
              "offered at %.0f f/s with 30/40/30 hard/soft/best-effort.\n",
              capacity_fps, offered);
  return 0;
}
