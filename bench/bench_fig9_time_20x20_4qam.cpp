// Figure 9: execution time vs SNR, 20x20 MIMO, 4-QAM.
// Paper: both platforms are slow at 4 dB; at 8 dB the FPGA decodes in
// 9.9 ms (real-time) vs 88.8 ms on the CPU — a 9x speedup.
#include "bench_common.hpp"

int main() {
  sd::bench::open_report("fig9_time_20x20_4qam");
  sd::bench::TimeFigureConfig cfg;
  cfg.figure = "Figure 9";
  cfg.num_antennas = 20;
  cfg.modulation = sd::Modulation::kQam4;
  cfg.default_trials = 10;
  cfg.max_nodes = 1'000'000;
  cfg.seed = 9;
  cfg.paper_note =
      "high decode time @ 4 dB on both platforms; @ 8 dB FPGA 9.9 ms vs CPU "
      "88.8 ms (9x), making 20x20 real-time viable";
  sd::bench::run_time_figure(cfg);
  return 0;
}
