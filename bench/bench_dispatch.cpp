// Dispatch policy comparison: the same overloaded frame stream through a
// mixed cpu+fpga backend pool under round-robin, least-loaded, and
// cost-aware placement.
//
// Two phases. A closed-loop calibration run first measures the pool's
// sustainable capacity (frames/s with every lane busy) and warms the cost
// model with observed node counts and charged seconds. Then each policy
// serves the same seeded open-loop stream offered at ~2x that capacity —
// deliberate overload, because that is where placement quality shows up:
// the cost-aware policy spreads work by predicted seconds (not frame
// counts) and degrades decode tiers (SD -> K-Best -> linear) when no
// placement meets the deadline, so it sheds *work* where the naive
// policies shed frames and blow the tail.
//
//   SD_TRIALS=500 ./bench_dispatch [--m=8] [--mod=4qam] [--snr=6]
//                 [--backends=cpu:2,fpga:2:rtt-ms=0.5] [--rate-x=2]
//                 [--deadline-ms=<auto>]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spec_parse.hpp"
#include "dispatch/dispatcher.hpp"
#include "obs/counters.hpp"
#include "serve/load_generator.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  using namespace sd::serve;
  const Cli cli(argc, argv);
  const auto m = static_cast<index_t>(cli.get_int_or("m", 8));
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const double snr = cli.get_double_or("snr", 6.0);
  const usize frames = bench::trials_or(240);
  const double rate_x = cli.get_double_or("rate-x", 2.0);
  const std::string backends =
      cli.get_or("backends", "cpu:2,fpga:2:rtt-ms=0.5");
  const SystemConfig sys{m, m, mod};
  const DecoderSpec spec = parse_decoder_spec("sphere");

  bench::open_report("dispatch");
  bench::print_banner(
      "Dispatch: placement policies on a mixed pool at " + fmt(rate_x, 1) +
          "x capacity",
      std::to_string(m) + "x" + std::to_string(m) + " MIMO, " +
          std::string(modulation_name(mod)) + " @ " + fmt(snr, 0) +
          " dB | pool " + backends,
      frames);

  ServerOptions base;
  base.backends = backends;
  // Deep enough that the placement signal (queue depth or predicted ETA),
  // not the queue bound, decides where frames go; overload sheds via
  // deadline expiry and tier degradation instead of queue-full rejects.
  base.queue_capacity = 64;
  base.batch_size = 1;

  unsigned lanes = 0;
  {
    dispatch::PoolDefaults defaults;
    defaults.primary = spec;
    for (const dispatch::BackendConfig& cfg :
         dispatch::parse_backend_pool(backends, defaults))
      lanes += cfg.lanes;
  }

  // Phase 1: closed-loop calibration. Window 2x lanes keeps the pool
  // saturated without shedding, so throughput is the pool's capacity and
  // every completion feeds the cost model.
  ServerOptions calib_so = base;
  calib_so.placement = dispatch::PlacementPolicy::kCostAware;
  LoadOptions calib_lo;
  calib_lo.mode = ArrivalMode::kClosedLoop;
  calib_lo.num_frames = frames;
  calib_lo.window = 2 * lanes;
  calib_lo.snr_db = snr;
  calib_lo.seed = 7;
  LoadGenerator calib_gen(sys, spec, calib_so, calib_lo);
  const LoadReport calib = calib_gen.run();
  const double capacity_fps = calib.metrics.throughput_fps;
  const double offered_fps = rate_x * capacity_fps;
  // Deadline: generous next to an unloaded decode, tight once queues grow.
  const double deadline_s =
      cli.get_double_or("deadline-ms", 4.0 * calib.metrics.e2e.p50_s * 1e3) *
      1e-3;
  std::printf("calibration: capacity %.0f frames/s over %u lanes "
              "(e2e p50 %.3f ms) -> offering %.0f frames/s, deadline %.2f ms; "
              "prediction error %s over %llu post-warmup frames\n\n",
              capacity_fps, lanes, calib.metrics.e2e.p50_s * 1e3, offered_fps,
              deadline_s * 1e3,
              fmt_pct(calib.dispatch.mean_rel_error).c_str(),
              static_cast<unsigned long long>(calib.dispatch.prediction_samples));
  bench::report().row("calibration",
                      {{"capacity_fps", capacity_fps},
                       {"offered_fps", offered_fps},
                       {"deadline_s", deadline_s},
                       {"lanes", lanes},
                       {"cost_buckets", calib.dispatch.cost_buckets},
                       {"prediction_mean_rel_error",
                        calib.dispatch.mean_rel_error}});
  {
    // The canonical calibration-scenario counters (DESIGN.md §8): the
    // closed-loop run is the controlled setting where prediction error is
    // a property of the model, not of overload-induced tier mixing.
    obs::CounterRegistry reg;
    calib.dispatch.export_counters(reg);
    bench::report().counters(reg);
  }

  // Phase 2: the same seeded open-loop stream at rate_x the measured
  // capacity, once per policy, each starting from the calibrated model.
  Table t({"policy", "frames/s", "p50 (ms)", "p99 (ms)", "miss rate",
           "shed rate", "degraded", "steals", "pred err"},
          {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
           Align::kRight, Align::kRight, Align::kRight, Align::kRight,
           Align::kRight});
  const std::vector<dispatch::PlacementPolicy> policies = {
      dispatch::PlacementPolicy::kRoundRobin,
      dispatch::PlacementPolicy::kLeastLoaded,
      dispatch::PlacementPolicy::kCostAware,
  };
  for (dispatch::PlacementPolicy policy : policies) {
    ServerOptions so = base;
    so.placement = policy;
    so.policy = BackpressurePolicy::kReject;
    LoadOptions lo;
    lo.mode = ArrivalMode::kOpenLoop;
    lo.num_frames = frames;
    lo.rate_fps = offered_fps;
    lo.deadline_s = deadline_s;
    lo.snr_db = snr;
    lo.seed = 7;
    LoadGenerator gen(sys, spec, so, lo);
    const LoadReport rep =
        gen.run({}, [&](DetectionServer& srv) {
          srv.dispatcher().cost_model().import_json(calib.cost_model_json);
        });
    const ServerMetrics& mx = rep.metrics;
    const double retired = static_cast<double>(mx.retired());
    const double miss_rate =
        retired > 0 ? static_cast<double>(mx.deadline_misses) / retired : 0.0;
    const double shed_rate =
        mx.submitted > 0
            ? static_cast<double>(mx.rejected + mx.evicted + mx.expired_dropped) /
                  static_cast<double>(mx.submitted)
            : 0.0;
    const std::uint64_t degraded =
        rep.dispatch.degraded_kbest + rep.dispatch.degraded_linear;
    const std::string name(dispatch::placement_policy_name(policy));
    t.add_row({name, fmt(mx.throughput_fps, 0), fmt(mx.e2e.p50_s * 1e3, 3),
               fmt(mx.e2e.p99_s * 1e3, 3), fmt_pct(miss_rate),
               fmt_pct(shed_rate), std::to_string(degraded),
               std::to_string(rep.dispatch.steals),
               rep.dispatch.prediction_samples > 0
                   ? fmt_pct(rep.dispatch.mean_rel_error)
                   : std::string("--")});
    bench::report().row("policies",
                        {{"policy", name},
                         {"offered_fps", offered_fps},
                         {"frames_per_s", mx.throughput_fps},
                         {"e2e_p50_s", mx.e2e.p50_s},
                         {"e2e_p99_s", mx.e2e.p99_s},
                         {"deadline_miss_rate", miss_rate},
                         {"shed_rate", shed_rate},
                         {"degraded_kbest", rep.dispatch.degraded_kbest},
                         {"degraded_linear", rep.dispatch.degraded_linear},
                         {"steals", rep.dispatch.steals},
                         {"prediction_mean_rel_error",
                          rep.dispatch.mean_rel_error}});
    if (policy == dispatch::PlacementPolicy::kCostAware) {
      obs::CounterRegistry reg;
      rep.dispatch.export_counters(reg, "dispatch.cost_aware");
      mx.export_counters(reg, "serve");
      bench::report().counters(reg);
      std::printf("cost-aware per-backend:\n");
      for (const dispatch::BackendMetrics& bm : rep.backends) {
        std::printf("  %-12s %u lanes: %llu done, %llu misses, %llu steals, "
                    "e2e p99 %.3f ms\n",
                    bm.label.c_str(), bm.lanes,
                    static_cast<unsigned long long>(bm.metrics.completed),
                    static_cast<unsigned long long>(bm.metrics.deadline_misses),
                    static_cast<unsigned long long>(bm.steals),
                    bm.metrics.e2e.p99_s * 1e3);
      }
      std::printf("\n");
    }
  }
  bench::print_table(t, "policies");
  std::printf("\nopen-loop at %.1fx measured capacity, policy=reject, "
              "queue=16/lane; miss rate is deadline misses / retired frames, "
              "shed rate is (rejected + evicted + dropped) / submitted.\n",
              rate_x);
  return 0;
}
