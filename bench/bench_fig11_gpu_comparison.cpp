// Figure 11: FPGA-optimized (Best-FS) vs the GPU GEMM-BFS baseline of
// Arfaoui et al. [1] reproduced on an A100 model, 10x10 MIMO 4-QAM.
// Paper: average 57x speedup; GPU decodes in 6 ms at 12 dB vs FPGA 0.97 ms
// at 4 dB. The BFS algorithm runs for real here (exact node/GEMM counts);
// only its device time comes from the documented A100 roofline model.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "platform/gpu_model.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(5);
  const SystemConfig sys{10, 10, Modulation::kQam4};
  bench::open_report("fig11_gpu_comparison");
  bench::print_banner("Figure 11: FPGA Best-FS vs GPU GEMM-BFS",
                      "10x10 MIMO, 4-QAM", trials);
  std::printf("paper reports: 57x average speedup vs the GPU GEMM-BFS; the "
              "Best-FS strategy prunes the search space to <1%% of the "
              "explored nodes.\n\n");

  ExperimentRunner runner(sys, trials, 11);

  DecoderSpec fpga_spec;
  fpga_spec.device = TargetDevice::kFpgaOptimized;
  auto fpga = make_detector(sys, fpga_spec);

  DecoderSpec bfs_spec;
  bfs_spec.strategy = Strategy::kGemmBfs;
  bfs_spec.bfs.max_frontier = 1u << 16;
  auto bfs = make_detector(sys, bfs_spec);

  Table t({"SNR (dB)", "FPGA (ms)", "GPU BFS (ms)", "speedup",
           "BestFS nodes", "BFS nodes", "node ratio"});
  std::vector<double> speedups;
  for (double snr : paper_snr_axis()) {
    const SweepPoint p_fpga = runner.run_point(*fpga, snr);
    const SweepPoint p_gpu = runner.run_point(
        *bfs, snr, [](const DecodeResult& r, Detector&) {
          return gpu_decode_seconds(r.stats);
        });
    speedups.push_back(p_gpu.mean_seconds / p_fpga.mean_seconds);
    t.add_row({fmt(snr, 0), fmt(p_fpga.mean_seconds * 1e3, 3),
               fmt(p_gpu.mean_seconds * 1e3, 3),
               fmt_factor(p_gpu.mean_seconds / p_fpga.mean_seconds),
               fmt(p_fpga.mean_nodes_generated, 0),
               fmt(p_gpu.mean_nodes_generated, 0),
               fmt_factor(p_gpu.mean_nodes_generated /
                          p_fpga.mean_nodes_generated)});
  }
  bench::print_table(t, "gpu_comparison");
  std::printf("average speedup: %s (paper: 57x)\n",
              fmt_factor(geomean(speedups)).c_str());
  std::printf("GPU time = A100 roofline + per-level launch/sync cost on the "
              "exact BFS work counters (DESIGN.md section 5).\n");
  return 0;
}
