// Figure 12: decoding-time comparison for 10x10 MIMO 4-QAM between this
// work (FPGA-optimized), the linear detectors ZF and MMSE, and Geosphere on
// the WARP v3 platform. The paper reports Geosphere at 11 ms / 20 dB vs this
// work at ~1 ms / 4 dB (11x faster at 16 dB lower SNR).
//
// For each detector we report (a) the lowest SNR on the grid at which it
// reaches the paper's BER target of 1e-2, and (b) its decode time at that
// operating point. ZF/MMSE run measured on the CPU; Geosphere's traversal
// runs for real (SdDfsDetector) and is charged WARP cycles.
#include <cstdio>
#include <optional>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "platform/warp_model.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(300);
  const SystemConfig sys{10, 10, Modulation::kQam4};
  bench::open_report("fig12_decoder_comparison");
  bench::print_banner("Figure 12: decoding time comparison",
                      "10x10 MIMO, 4-QAM, BER target 1e-2", trials);
  std::printf("paper reports: Geosphere 11 ms @ 20 dB; this work 11x faster "
              "with the operating SNR reduced to 4 dB; ZF/MMSE are fast but "
              "need far higher SNR for acceptable BER.\n\n");

  ExperimentRunner runner(sys, trials, 12);
  const std::vector<double> snr_grid{4,  6,  8,  10, 12, 14, 16,
                                     18, 20, 24, 28, 32, 36, 40};
  constexpr double kBerTarget = 1e-2;

  struct Entry {
    std::string name;
    std::unique_ptr<Detector> det;
    DeviceTimeFn time_fn;
    const char* platform;
  };
  std::vector<Entry> entries;
  {
    DecoderSpec spec;
    spec.device = TargetDevice::kFpgaOptimized;
    entries.push_back(
        {"This work (SD Best-FS)", make_detector(sys, spec), {}, "U280 model"});
  }
  {
    DecoderSpec spec;
    spec.strategy = Strategy::kDfs;
    entries.push_back({"Geosphere (DFS)", make_detector(sys, spec),
                       [](const DecodeResult& r, Detector&) {
                         return warp_decode_seconds(r.stats);
                       },
                       "WARP v3 model"});
  }
  {
    DecoderSpec spec;
    spec.strategy = Strategy::kZf;
    entries.push_back({"ZF", make_detector(sys, spec), {}, "CPU measured"});
  }
  {
    DecoderSpec spec;
    spec.strategy = Strategy::kMmse;
    entries.push_back({"MMSE", make_detector(sys, spec), {}, "CPU measured"});
  }

  Table t({"Detector", "platform", "SNR for BER<1e-2 (dB)", "BER there",
           "decode time (us)"});
  for (Entry& e : entries) {
    std::optional<SweepPoint> operating;
    for (double snr : snr_grid) {
      const SweepPoint p = runner.run_point(*e.det, snr, e.time_fn);
      if (p.ber < kBerTarget) {
        operating = p;
        break;
      }
    }
    if (operating) {
      t.add_row({e.name, e.platform, fmt(operating->snr_db, 0),
                 fmt_sci(operating->ber), fmt(operating->mean_seconds * 1e6, 1)});
    } else {
      t.add_row({e.name, e.platform, ">40", "-", "-"});
    }
  }
  bench::print_table(t, "decoder_comparison");
  std::printf("The exact decoders reach the BER target at the lowest SNR on "
              "the grid; the linear detectors need much higher SNR — the "
              "trade-off the paper's Fig. 12 illustrates.\n");
  return 0;
}
