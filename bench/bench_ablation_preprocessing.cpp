// Ablation: detection preprocessing. The paper detects in natural antenna
// order; this bench quantifies what channel-aware preprocessing adds on
// top of (or instead of) the exact search: SQRD layer ordering for the SD,
// and LLL lattice reduction for the polynomial-time SIC alternative —
// on both i.i.d. and spatially correlated channels.
#include <cstdio>
#include <utility>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "decode/kbest.hpp"
#include "decode/linear.hpp"
#include "decode/lr_sic.hpp"
#include "decode/sd_gemm.hpp"
#include "mimo/metrics.hpp"
#include "mimo/scenario.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(150);
  bench::open_report("ablation_preprocessing");
  bench::print_banner("Ablation: preprocessing (SQRD ordering, LLL reduction)",
                      "8x8 MIMO 4-QAM, iid vs correlated (rho=0.9)", trials);
  const Constellation& c = Constellation::get(Modulation::kQam4);

  for (const auto [rho, snr] : {std::pair{0.0, 12.0}, std::pair{0.0, 20.0},
                                std::pair{0.9, 12.0}, std::pair{0.9, 20.0}}) {
    std::printf("--- rho = %.1f, SNR = %.0f dB ---\n", rho, snr);
    ScenarioConfig sc;
    sc.num_tx = 8;
    sc.num_rx = 8;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = snr;
    sc.seed = 61;
    sc.correlation.tx_rho = rho;

    SdGemmDetector sd_plain(c);
    SdOptions sorted_opts;
    sorted_opts.sorted_qr = true;
    SdGemmDetector sd_sorted(c, sorted_opts);
    LinearDetector zf(LinearKind::kZf, c);
    KBestDetector sic(c, KBestOptions{1, true});
    LrSicDetector lr_sic(c);

    struct Row {
      Detector* det;
      ErrorCounter errors;
      double nodes = 0;
      Row(Detector* d, const Constellation& cc) : det(d), errors(cc) {}
    };
    std::vector<Row> rows;
    rows.emplace_back(&sd_plain, c);
    rows.emplace_back(&sd_sorted, c);
    rows.emplace_back(&zf, c);
    rows.emplace_back(&sic, c);
    rows.emplace_back(&lr_sic, c);

    Scenario scenario(sc);
    for (usize t = 0; t < trials; ++t) {
      const Trial trial = scenario.next();
      for (Row& row : rows) {
        const DecodeResult r =
            row.det->decode(trial.h, trial.y, trial.sigma2);
        row.errors.record(trial.tx.indices, r.indices);
        row.nodes += static_cast<double>(r.stats.nodes_generated);
      }
    }

    Table table({"Detector", "BER", "mean nodes generated"});
    const char* names[] = {"SD (natural order)", "SD + SQRD", "ZF",
                           "SIC (sorted)", "LR-SIC (LLL)"};
    for (usize i = 0; i < rows.size(); ++i) {
      table.add_row({names[i], fmt_sci(rows[i].errors.ber()),
                     fmt(rows[i].nodes / static_cast<double>(trials), 0)});
    }
    bench::print_table(table, "rho_" + fmt(rho, 1) + "_snr_" + fmt(snr, 0));
  }
  std::printf("SQRD does not change the (exact) SD's BER but shrinks its "
              "tree. LR-SIC has the steeper (full-diversity) slope: it "
              "trails ordered SIC at 12 dB but overtakes every linear/SIC "
              "scheme by 20 dB — most visibly on the correlated channel "
              "where ZF collapses.\n");
  return 0;
}
