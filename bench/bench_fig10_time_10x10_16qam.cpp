// Figure 10: execution time vs SNR, 10x10 MIMO, 16-QAM.
// Paper: CPU ~100 ms at 4 dB, reaching real-time only between 16 and 20 dB;
// the FPGA design is ~4x faster, near-real-time at 8 dB. Raising the
// modulation factor hurts more than adding antennas (tree-state matrix
// scales with Modulation^2).
#include "bench_common.hpp"

int main() {
  sd::bench::open_report("fig10_time_10x10_16qam");
  sd::bench::TimeFigureConfig cfg;
  cfg.figure = "Figure 10";
  cfg.num_antennas = 10;
  cfg.modulation = sd::Modulation::kQam16;
  cfg.default_trials = 8;
  cfg.max_nodes = 1'000'000;
  cfg.seed = 10;
  cfg.paper_note =
      "CPU ~100 ms @ 4 dB, real-time only between 16-20 dB; FPGA 4x faster, "
      "almost real-time @ 8 dB";
  sd::bench::run_time_figure(cfg);
  return 0;
}
