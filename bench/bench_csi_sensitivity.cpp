// Extension experiment: sensitivity to channel-state information quality.
// The paper assumes a perfect channel estimate; this bench sweeps the pilot
// budget and shows how estimation error degrades the exact detector's BER
// and inflates its search tree (a worse estimate widens the residual
// sphere, so the decoder works harder AND errs more).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "decode/sd_gemm.hpp"
#include "mimo/estimation.hpp"
#include "mimo/metrics.hpp"
#include "mimo/scenario.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(150);
  bench::open_report("csi_sensitivity");
  bench::print_banner("Extension: CSI quality sensitivity",
                      "8x8 MIMO 4-QAM @ 12 dB, LMMSE channel estimation",
                      trials);
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const index_t m = 8;

  Table t({"pilot slots", "est. MSE", "BER", "mean nodes", "vs perfect CSI"});
  double perfect_nodes = 0;
  for (int slots : {0, 8, 16, 32, 64}) {  // 0 = genie (perfect CSI)
    ScenarioConfig sc;
    sc.num_tx = m;
    sc.num_rx = m;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = 12.0;
    sc.seed = 81;
    Scenario scenario(sc);
    SdGemmDetector det(c);
    GaussianSource pilot_rng(82);

    ErrorCounter errors(c);
    double nodes = 0, mse = 0;
    for (usize tr = 0; tr < trials; ++tr) {
      const Trial trial = scenario.next();
      CMat h_used = trial.h;
      if (slots > 0) {
        const CMat pilots = orthogonal_pilots(slots, m);
        const CMat y_pilot =
            receive_pilots(trial.h, pilots, trial.sigma2, pilot_rng);
        h_used = estimate_lmmse(pilots, y_pilot, trial.sigma2);
        mse += estimation_mse(trial.h, h_used);
      }
      const DecodeResult r = det.decode(h_used, trial.y, trial.sigma2);
      errors.record(trial.tx.indices, r.indices);
      nodes += static_cast<double>(r.stats.nodes_expanded);
    }
    nodes /= static_cast<double>(trials);
    if (slots == 0) perfect_nodes = nodes;
    t.add_row({slots == 0 ? "perfect CSI" : std::to_string(slots),
               slots == 0 ? "-" : fmt_sci(mse / static_cast<double>(trials)),
               fmt_sci(errors.ber()), fmt(nodes, 0),
               fmt_factor(nodes / perfect_nodes, 2)});
  }
  bench::print_table(t, "csi");
  std::printf("short pilot bursts cost both accuracy and decode time; the "
              "search-inflation column is the deployment-relevant coupling "
              "between the estimator and the paper's latency results.\n");
  return 0;
}
