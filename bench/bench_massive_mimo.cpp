// Massive-MIMO asymmetric fast path (DESIGN.md §17): served throughput and
// BER of the Gram-domain MMSE-Neumann detector against the tree-search and
// linear baselines across rectangular N_r x N_t geometries.
//
// Throughput is the serving shape: the channel-only prep (G = H^H H for the
// MMSE family, QR for the tree searches) is built once per coherence block
// and the timed loop runs decode_with() per frame, exactly what the dispatch
// lanes charge. BER points come from the paired ExperimentRunner stream, so
// every detector sees byte-identical trials.
//
// Acceptance gates (validated by tools/validate_bench_json.py when
// gate_massive is set, i.e. at real trial counts): at 128x8 the k=3 Neumann
// tier must serve >= 3x the frames/s of the best tree-search config while
// staying within 0.2 dB of the exact MMSE solve (series BER at SNR no worse
// than the exact solve's BER at SNR - 0.2 dB).
//
// Emits BENCH_massive_mimo.json.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/spec_parse.hpp"
#include "decode/channel_prep.hpp"
#include "mimo/scenario.hpp"

namespace {

using namespace sd;

/// One rectangular operating point. The SNR is chosen so the exact MMSE
/// solve lands in the 1e-3..1e-2 BER band (measurable at SD_TRIALS counts):
/// the post-combining SNR of an N_r x N_t MMSE front end gains roughly
/// (N_r - N_t + 1) / N_t over the per-antenna SNR, so the taller the array
/// the lower the serving point.
struct Geometry {
  const char* label;
  index_t num_rx;
  index_t num_tx;
  Modulation mod;
  double snr_db;
};

constexpr Geometry kGeometries[] = {
    {"32x4-qpsk", 32, 4, Modulation::kQam4, -4.0},
    {"64x8-qpsk", 64, 8, Modulation::kQam4, -4.0},
    {"128x8-qpsk", 128, 8, Modulation::kQam4, -8.0},
    {"128x8-16qam", 128, 8, Modulation::kQam16, 0.0},
};

/// Detector roster: the Neumann ladder (k=0 is the exact Cholesky solve and
/// doubles as the MMSE reference), the fixed-complexity and best-first tree
/// searches, and the ZF floor.
struct Entry {
  const char* label;
  const char* spec;
  bool tree;  ///< counts toward "best tree-search" in the gate
};

constexpr Entry kEntries[] = {
    {"mmse-neumann-k1", "mmse-neumann:k=1", false},
    {"mmse-neumann-k2", "mmse-neumann:k=2", false},
    {"mmse-neumann-k3", "mmse-neumann:k=3", false},
    {"mmse-cholesky", "mmse-neumann:k=0", false},
    {"kbest", "kbest:k=8", true},
    {"sphere", "sphere", true},
    {"zf", "zf", false},
};

/// Coherence blocks per throughput measurement; frames round-robin across
/// them so the loop touches several cached preps like a serving lane does.
constexpr usize kBlocks = 4;

struct Throughput {
  double frames_per_s = 0.0;
  double seconds_per_frame = 0.0;
  usize frames = 0;
};

/// Times decode_with() over pre-built channel preps: best-of-3 passes of
/// `frames` decodes, warm-up pass first (reaches high-water scratch shapes).
Throughput measure_throughput(Detector& det, const std::vector<Trial>& blocks,
                              usize frames) {
  std::vector<std::shared_ptr<const PreprocessedChannel>> preps;
  preps.reserve(blocks.size());
  for (const Trial& t : blocks) {
    preps.push_back(det.preprocess(ChannelHandle{CMat(t.h)}));
  }
  DecodeResult out;
  for (usize b = 0; b < blocks.size(); ++b) {
    det.decode_with(*preps[b], blocks[b].y, blocks[b].sigma2, out);
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    for (usize i = 0; i < frames; ++i) {
      const usize b = i % blocks.size();
      det.decode_with(*preps[b], blocks[b].y, blocks[b].sigma2, out);
    }
    best = std::min(best, timer.elapsed_seconds());
  }
  Throughput r;
  r.frames = frames;
  r.seconds_per_frame = best / static_cast<double>(frames);
  r.frames_per_s = 1.0 / r.seconds_per_frame;
  return r;
}

std::vector<Trial> make_blocks(const Geometry& g, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = g.num_tx;
  sc.num_rx = g.num_rx;
  sc.modulation = g.mod;
  sc.snr_db = g.snr_db;
  sc.seed = seed;
  Scenario s(sc);
  std::vector<Trial> blocks;
  blocks.reserve(kBlocks);
  for (usize b = 0; b < kBlocks; ++b) blocks.push_back(s.next());
  return blocks;
}

}  // namespace

int main() {
  using namespace sd;

  bench::open_report("massive_mimo");
  const usize trials = bench::trials_or(64);
  // Gates only bind at real Monte-Carlo counts; smoke runs record the same
  // rows but the validator skips the thresholds.
  const bool gate = trials >= 400;
  bench::report().config("gate_massive", gate);
  bench::report().config("blocks", static_cast<std::int64_t>(kBlocks));

  bench::print_banner(
      "Massive-MIMO fast path: MMSE-Neumann vs tree search",
      "rectangular geometries, served throughput (cached preps) + paired BER",
      trials);

  struct Cell {
    Throughput thru;
    SweepPoint ber;
  };

  for (const Geometry& g : kGeometries) {
    const SystemConfig sys{g.num_tx, g.num_rx, g.mod};
    const std::vector<Trial> blocks = make_blocks(g, /*seed=*/7);
    ExperimentRunner runner(sys, trials, /*seed=*/1);

    std::vector<Cell> cells;
    cells.reserve(std::size(kEntries));
    double mmse_fps = 0.0, tree_fps = 0.0, ber_k3 = 0.0, ber_exact = 0.0;
    for (const Entry& e : kEntries) {
      auto det = make_detector(sys, parse_decoder_spec(e.spec));
      Cell cell;
      cell.thru = measure_throughput(*det, blocks, std::max<usize>(trials, 32));
      cell.ber = runner.run_point(*det, g.snr_db);
      cells.push_back(cell);

      bench::report().row(
          "throughput",
          {{"geometry", g.label},
           {"detector", e.label},
           {"frames_per_s", cell.thru.frames_per_s},
           {"us_per_frame", cell.thru.seconds_per_frame * 1e6},
           {"frames", static_cast<std::int64_t>(cell.thru.frames)}});
      bench::report().row("ber",
                          {{"geometry", g.label},
                           {"detector", e.label},
                           {"snr_db", g.snr_db},
                           {"ber", cell.ber.ber},
                           {"ber_ci95", cell.ber.ber_ci95},
                           {"trials", static_cast<std::int64_t>(trials)}});

      const std::string label = e.label;
      if (label == "mmse-neumann-k3") {
        mmse_fps = cell.thru.frames_per_s;
        ber_k3 = cell.ber.ber;
      }
      if (label == "mmse-cholesky") ber_exact = cell.ber.ber;
      if (e.tree) tree_fps = std::max(tree_fps, cell.thru.frames_per_s);
    }

    Table t({"detector", "frames/s", "us/frame", "BER@" + fmt(g.snr_db, 1) +
                                                     "dB"});
    for (usize i = 0; i < cells.size(); ++i) {
      t.add_row({kEntries[i].label, fmt(cells[i].thru.frames_per_s, 0),
                 fmt(cells[i].thru.seconds_per_frame * 1e6, 2),
                 fmt_sci(cells[i].ber.ber)});
    }
    bench::print_table(t, std::string("throughput.") + g.label);

    // Gate rows for the 128x8 serving points: the 0.2 dB criterion compares
    // the k=3 series BER at SNR against the exact solve rerun 0.2 dB lower
    // (paired trial streams in both runs).
    if (g.num_rx == 128) {
      auto exact = make_detector(sys, parse_decoder_spec("mmse-neumann:k=0"));
      const SweepPoint shifted = runner.run_point(*exact, g.snr_db - 0.2);
      const double speedup = tree_fps > 0.0 ? mmse_fps / tree_fps : 0.0;
      const bool throughput_ok = speedup >= 3.0;
      const bool ber_ok = ber_k3 <= shifted.ber;
      bench::report().row("gates",
                          {{"geometry", g.label},
                           {"mmse_fps", mmse_fps},
                           {"best_tree_fps", tree_fps},
                           {"speedup", speedup},
                           {"ber_neumann_k3", ber_k3},
                           {"ber_exact", ber_exact},
                           {"ber_exact_shifted", shifted.ber},
                           {"throughput_ok", throughput_ok},
                           {"ber_ok", ber_ok}});
      Table gt({"gate", "value", "ok"});
      gt.add_row({"throughput (k=3 vs best tree)",
                  fmt_factor(speedup) + " (need 3.0x)",
                  throughput_ok ? "yes" : "no"});
      gt.add_row({"BER within 0.2 dB of exact",
                  fmt_sci(ber_k3) + " <= " + fmt_sci(shifted.ber),
                  ber_ok ? "yes" : "no"});
      bench::print_table(gt, std::string("gates.") + g.label);
    }
  }

  return 0;
}
