// Extension experiment: OFDM frame decode latency (the frame semantics of
// the Geosphere comparison). One 802.11-style frame = 64 subcarriers, each
// carrying an independent MIMO vector over a frequency-selective channel.
// Compares per-frame latency of: measured CPU, one simulated U280 pipeline,
// two pipelines (the §III-C4 headroom cashed in), and the WARP model.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "decode/sd_dfs.hpp"
#include "decode/sd_gemm.hpp"
#include "fpga/multi_pipeline.hpp"
#include "mimo/ofdm.hpp"
#include "platform/warp_model.hpp"

int main() {
  using namespace sd;
  const usize frames = bench::trials_or(5);
  OfdmConfig cfg;
  cfg.subcarriers = 64;
  cfg.num_taps = 4;
  cfg.num_tx = 4;
  cfg.num_rx = 4;
  cfg.modulation = Modulation::kQam4;
  bench::open_report("frame_latency");
  bench::print_banner("Extension: OFDM frame decode latency",
                      "64 subcarriers, 4x4 MIMO, 4-QAM, 4-tap channel",
                      frames);

  const Constellation& c = Constellation::get(cfg.modulation);
  const FpgaConfig fpga_cfg =
      FpgaConfig::optimized_design(cfg.num_tx, cfg.num_rx, cfg.modulation);

  Table t({"SNR (dB)", "CPU frame (ms)", "U280 x1 (ms)", "U280 x2 (ms)",
           "WARP model (ms)", "symbol errors"});
  for (double snr : {4.0, 8.0, 12.0, 20.0}) {
    OfdmLink link(cfg, 404);
    double cpu_ms = 0, fpga1_ms = 0, fpga2_ms = 0, warp_ms = 0;
    usize sym_errors = 0;
    for (usize fi = 0; fi < frames; ++fi) {
      const MultipathChannel ch = link.draw_channel();
      const OfdmLink::TxFrame tx = link.random_frame();
      const OfdmLink::RxFrame rx = link.transmit(ch, tx, snr);

      // CPU: measured sequential per-subcarrier decode.
      SdGemmDetector cpu(c);
      Timer timer;
      std::vector<Preprocessed> batch;
      batch.reserve(rx.y.size());
      for (usize f = 0; f < rx.y.size(); ++f) {
        const DecodeResult r = cpu.decode(rx.h[f], rx.y[f], rx.sigma2);
        for (usize a = 0; a < r.indices.size(); ++a) {
          if (r.indices[a] != tx.carriers[f].indices[a]) ++sym_errors;
        }
      }
      cpu_ms += timer.elapsed_ms();

      // FPGA: batch the subcarriers over 1 and 2 pipeline instances.
      for (usize f = 0; f < rx.y.size(); ++f) {
        batch.push_back(preprocess(rx.h[f], rx.y[f], false));
      }
      MultiPipelineFpga one(fpga_cfg, 1), two(fpga_cfg, 2);
      fpga1_ms += one.decode_batch(batch, c, rx.sigma2).makespan_seconds * 1e3;
      fpga2_ms += two.decode_batch(batch, c, rx.sigma2).makespan_seconds * 1e3;

      // WARP: Geosphere traversal per subcarrier, modelled cycles.
      SdDfsDetector dfs(c);
      for (usize f = 0; f < rx.y.size(); ++f) {
        const DecodeResult r = dfs.decode(rx.h[f], rx.y[f], rx.sigma2);
        warp_ms += warp_decode_seconds(r.stats) * 1e3;
      }
    }
    const double inv = 1.0 / static_cast<double>(frames);
    t.add_row({fmt(snr, 0), fmt(cpu_ms * inv, 3), fmt(fpga1_ms * inv, 3),
               fmt(fpga2_ms * inv, 3), fmt(warp_ms * inv, 3),
               fmt(static_cast<double>(sym_errors) / frames, 1)});
  }
  bench::print_table(t, "frame_latency");
  std::printf("the second pipeline instance (which the optimized design's "
              "<50%% footprint allows, Table I) nearly halves frame latency; "
              "the WARP platform's per-frame cost is what the paper's "
              "Fig. 12 is up against.\n");
  return 0;
}
