// CPU GEMM kernel A/B microbenchmark: scalar vs split-complex SoA, plus the
// opt-in row-0 level product, over the shapes the GEMM decoders actually
// issue. The BFS detector's level-wide evaluation product is k x (f*p) x k
// (k = remaining levels, f = frontier width, p = constellation order); the
// LevelGemm::kRow0 mode shrinks that to 1 x (f*p) x k because the PD loop
// only reads row 0. Both packed kernels are entered directly (no small-shape
// dispatch), so this measures exactly what gemm_packed resolves to.
//
// Emits BENCH_gemm_kernels.json; tools/validate_bench_json.py gates on the
// SoA kernel not regressing against scalar at the three largest shapes.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"

namespace {

using namespace sd;

CMat random_mat(index_t r, index_t c, std::uint64_t seed) {
  GaussianSource g(seed);
  CMat m(r, c);
  for (cplx& v : m.flat()) v = g.next_cplx(1.0);
  return m;
}

/// Best-of-`kReps` wall-clock seconds for one call of `fn`, amortized over
/// `iters` back-to-back calls per measurement (plus one warm-up call that
/// also grows the packing workspace to its high-water mark).
template <typename Fn>
double time_best_of(Fn&& fn, usize iters) {
  constexpr int kReps = 5;
  fn();  // warm-up: touch operands, grow the workspace arena
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer t;
    for (usize i = 0; i < iters; ++i) fn();
    best = std::min(best, t.elapsed_seconds() / static_cast<double>(iters));
  }
  return best;
}

std::string us(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e6);
  return buf;
}

std::string ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

}  // namespace

int main() {
  const usize trials = sd::bench::trials_or(32);
  sd::bench::open_report("gemm_kernels");
  sd::bench::print_banner(
      "GEMM kernel A/B: scalar vs split-complex SoA on decoder level shapes",
      "k x (f*p) x k level products + 1 x (f*p) x k row-0 mode", trials);

  const bool soa = gemm_soa_available();
  const char* active =
      active_gemm_kernel() == GemmKernel::kSoa ? "soa" : "scalar";
  sd::bench::report().config("soa_available", soa);
  sd::bench::report().config("active_kernel", active);

  // (k, f*p) level-product shapes: sibling batches for small frontiers up to
  // the full 16-QAM BFS level batch the paper's Fig. 10 configuration hits.
  struct Shape {
    index_t k;
    index_t cols;
  };
  const Shape shapes[] = {{4, 64},  {4, 1024},  {4, 4096},  {6, 4096},
                          {10, 64}, {10, 1024}, {10, 4096}, {10, 16384}};

  Table table({"shape (m x n x k)", "scalar us", "soa us", "soa speedup",
               "row0 us", "row0 vs full"});
  GemmWorkspace ws;

  for (const Shape& sh : shapes) {
    const index_t k = sh.k;
    const index_t n = sh.cols;
    const CMat a = random_mat(k, k, 1000 + static_cast<std::uint64_t>(k));
    const CMat a_row0 = random_mat(1, k, 2000 + static_cast<std::uint64_t>(k));
    const CMat b = random_mat(k, n, 3000 + static_cast<std::uint64_t>(n));
    CMat c(k, n);
    CMat c_row0(1, n);

    // Keep total work roughly constant across shapes so SD_TRIALS=1 smoke
    // runs stay fast and default runs stay stable on small shapes.
    const std::uint64_t vol = static_cast<std::uint64_t>(k) * n * k;
    const usize iters = std::max<usize>(
        1, static_cast<usize>(trials * 200000 / std::max<std::uint64_t>(
                                                    vol, 1)));

    const double scalar_s = time_best_of(
        [&] {
          gemm_packed_scalar(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c, ws);
        },
        iters);
    const double soa_s =
        soa ? time_best_of(
                  [&] {
                    gemm_packed_soa(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0},
                                    c, ws);
                  },
                  iters)
            : 0.0;
    // Row-0 mode runs whatever kernel is active, like the decoders do.
    const double row0_s = time_best_of(
        [&] {
          gemm_packed(Op::kNone, cplx{1, 0}, a_row0, b, cplx{0, 0}, c_row0,
                      ws);
        },
        iters);

    const double full_active_s = soa ? soa_s : scalar_s;
    const double soa_speedup = soa ? scalar_s / soa_s : 0.0;
    const double row0_speedup = full_active_s / row0_s;

    const std::string shape_label = std::to_string(k) + " x " +
                                    std::to_string(n) + " x " +
                                    std::to_string(k);
    table.add_row({shape_label, us(scalar_s), soa ? us(soa_s) : "n/a",
                   soa ? ratio(soa_speedup) : "n/a", us(row0_s),
                   ratio(row0_speedup)});

    const double flops = static_cast<double>(gemm_flops(k, n, k));
    sd::bench::report().row(
        "kernels", {{"kernel", "scalar"},
                    {"m", static_cast<std::int64_t>(k)},
                    {"n", static_cast<std::int64_t>(n)},
                    {"k", static_cast<std::int64_t>(k)},
                    {"seconds", scalar_s},
                    {"gflops", flops / scalar_s / 1e9}});
    if (soa) {
      sd::bench::report().row(
          "kernels", {{"kernel", "soa"},
                      {"m", static_cast<std::int64_t>(k)},
                      {"n", static_cast<std::int64_t>(n)},
                      {"k", static_cast<std::int64_t>(k)},
                      {"seconds", soa_s},
                      {"gflops", flops / soa_s / 1e9},
                      {"speedup_vs_scalar", soa_speedup}});
    }
    const double row0_flops = static_cast<double>(gemm_flops(1, n, k));
    sd::bench::report().row(
        "kernels", {{"kernel", "row0"},
                    {"m", static_cast<std::int64_t>(1)},
                    {"n", static_cast<std::int64_t>(n)},
                    {"k", static_cast<std::int64_t>(k)},
                    {"seconds", row0_s},
                    {"gflops", row0_flops / row0_s / 1e9},
                    {"speedup_vs_full", row0_speedup}});
  }

  sd::bench::print_table(table, "kernels_summary");
  return 0;
}
