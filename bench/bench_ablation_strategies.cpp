// Ablation (paper §II-B / §IV-F): search-strategy comparison. The paper
// claims Best-FS (sorted children + LIFO) prunes the search space to <1% of
// the nodes the BFS strategy explores, at identical (exact) BER. This bench
// quantifies nodes and BER for every strategy in the repository.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(10);
  const SystemConfig sys{10, 10, Modulation::kQam4};
  bench::open_report("ablation_strategies");
  bench::print_banner("Ablation: tree-search strategies",
                      "10x10 MIMO, 4-QAM", trials);

  struct Entry {
    std::string name;
    DecoderSpec spec;
  };
  std::vector<Entry> entries;
  entries.push_back({"Best-FS + GEMM (paper)", DecoderSpec{}});
  {
    DecoderSpec s;
    s.strategy = Strategy::kBestFsScalar;
    entries.push_back({"Best-FS scalar (ablation)", s});
  }
  {
    DecoderSpec s;
    s.strategy = Strategy::kDfs;
    entries.push_back({"SE-DFS (Geosphere traversal)", s});
  }
  {
    DecoderSpec s;
    s.strategy = Strategy::kGemmBfs;
    s.bfs.max_frontier = 1u << 16;
    entries.push_back({"BFS + GEMM ([1])", s});
  }
  {
    DecoderSpec s;
    s.strategy = Strategy::kBestFsGemm;
    s.sd.sorted_qr = true;
    entries.push_back({"Best-FS + SQRD ordering", s});
  }
  {
    DecoderSpec s;
    s.strategy = Strategy::kKBest;
    s.kbest.k = 16;
    entries.push_back({"K-Best (K=16)", s});
  }
  {
    DecoderSpec s;
    s.strategy = Strategy::kFsd;
    s.fsd.full_levels = 1;
    entries.push_back({"FSD (1 full level)", s});
  }

  for (double snr : {4.0, 8.0, 16.0}) {
    std::printf("--- SNR %.0f dB ---\n", snr);
    ExperimentRunner runner(sys, trials, 33);
    Table t({"Strategy", "nodes generated", "vs Best-FS", "GEMM calls",
             "BER", "CPU ms"});
    double best_fs_nodes = 0;
    for (usize i = 0; i < entries.size(); ++i) {
      auto det = make_detector(sys, entries[i].spec);
      const SweepPoint p = runner.run_point(*det, snr);
      if (i == 0) best_fs_nodes = p.mean_nodes_generated;
      t.add_row({entries[i].name, fmt(p.mean_nodes_generated, 0),
                 fmt_factor(p.mean_nodes_generated / best_fs_nodes, 2),
                 fmt(p.mean_gemm_calls, 0), fmt_sci(p.ber),
                 fmt(p.mean_seconds * 1e3, 3)});
    }
    bench::print_table(
        t, "snr_" + std::to_string(static_cast<int>(snr)));
  }
  std::printf("Best-FS, scalar Best-FS and SE-DFS visit identical trees (the "
              "evaluation style differs); BFS explodes at low SNR; K-Best and "
              "FSD have flat complexity but lose exactness.\n");
  return 0;
}
