// Figure 6: execution time vs SNR, 10x10 MIMO, 4-QAM.
// Paper: baseline FPGA ~= CPU (1.4x at 4 dB); optimized FPGA 5x vs CPU at
// 4 dB; all variants meet the 10 ms real-time constraint.
#include "bench_common.hpp"

int main() {
  sd::bench::open_report("fig6_time_10x10_4qam");
  sd::bench::TimeFigureConfig cfg;
  cfg.figure = "Figure 6";
  cfg.num_antennas = 10;
  cfg.modulation = sd::Modulation::kQam4;
  cfg.default_trials = 40;
  cfg.seed = 6;
  cfg.paper_note =
      "CPU 7 ms @ 4 dB; FPGA-baseline ~1.4x faster than CPU; FPGA-optimized "
      "5x faster than CPU; everything within the 10 ms real-time budget";
  sd::bench::run_time_figure(cfg);
  return 0;
}
