// Serving soak: throughput and tail latency of the detection runtime as the
// worker pool grows, per backend. This is the deployment view of the paper's
// per-frame numbers — a base station serves a stream, so what matters is
// frames/s at the pool level and the p99 a subscriber actually experiences.
//
// Closed-loop load (window = 2x workers) with seeded frames, so every cell
// decodes the same trial stream and runs are reproducible. Scale the frame
// count with SD_TRIALS.
//
//   SD_TRIALS=500 ./bench_serve_soak [--m=10] [--mod=4qam] [--snr=8]
//                                    [--coherence=1] [--precision=int16]
//
// With --backends=cpu:2,fpga:2 the sweep runs over a heterogeneous pool
// instead: one row per placement policy at the pool's fixed lane count.
// --coherence=L holds each channel realization for L consecutive frames
// (block fading), exercising the prep cache and fused decode paths.
// --precision=int16 soaks the fixed-point BFS datapath (DESIGN.md §15): the
// worker sweep compares "bfs (fp32)" against "bfs (int16)" lanes, and the
// pool mode maps its primary lanes onto bfs:precision=int16.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spec_parse.hpp"
#include "dispatch/dispatcher.hpp"
#include "serve/load_generator.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  using namespace sd::serve;
  const Cli cli(argc, argv);
  const auto m = static_cast<index_t>(cli.get_int_or("m", 10));
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const double snr = cli.get_double_or("snr", 8.0);
  const usize frames = bench::trials_or(200);
  const auto coherence = static_cast<usize>(cli.get_int_or("coherence", 1));
  // --cells=C interleaves C independent cells round-robin (different
  // channels on consecutive arrivals), feeding the cross-lane former.
  const auto cells = static_cast<usize>(cli.get_int_or("cells", 1));
  const SystemConfig sys{m, m, mod};

  bench::open_report("serve_soak");
  bench::print_banner(
      "Serving soak: throughput scaling vs workers x backend",
      std::to_string(m) + "x" + std::to_string(m) + " MIMO, " +
          std::string(modulation_name(mod)) + " @ " + fmt(snr, 0) + " dB",
      frames);

  // CPU-bound backends scale with physical cores; the emulated-offload
  // series (workers blocked on the FPGA cycle model's device time plus a
  // 1 ms host<->device round trip, like a host thread waiting on the
  // accelerator) scales with workers on any host because the waits
  // overlap — the paper's multi-pipeline argument.
  struct Backend {
    std::string label;
    std::string spec;
    bool emulate_device;
    double rtt_s;
  };
  const std::string precision = cli.get_or("precision", "");
  const std::vector<Backend> backends =
      precision == "int16"
          // Fixed-point soak: same traversal on the float and the quantized
          // datapaths, so any throughput/latency delta is the datapath's.
          ? std::vector<Backend>{
                {"bfs (fp32)", "bfs", false, 0.0},
                {"bfs (int16)", "bfs:precision=int16", false, 0.0},
            }
          : std::vector<Backend>{
                {"sphere (cpu)", "sphere", false, 0.0},
                {"multipe:threads=2", "multipe:threads=2", false, 0.0},
                {"kbest:k=16", "kbest:k=16", false, 0.0},
                {"sphere@fpga (model)", "sphere@fpga", false, 0.0},
                {"sphere@fpga (offload, 1ms rtt)", "sphere@fpga", true, 1e-3},
            };
  const std::string pool = cli.get_or("backends", "");

  if (!pool.empty()) {
    // Heterogeneous-pool mode: the lane count is fixed by the pool spec, so
    // the sweep axis becomes the placement policy.
    // --precision=int16 moves the pool's primary lanes onto the quantized
    // BFS detector; the sweep shape is otherwise unchanged.
    const DecoderSpec primary = parse_decoder_spec(
        precision == "int16" ? "bfs:precision=int16" : "sphere");
    unsigned lanes = 0;
    {
      dispatch::PoolDefaults defaults;
      defaults.primary = primary;
      for (const dispatch::BackendConfig& cfg :
           dispatch::parse_backend_pool(pool, defaults))
        lanes += cfg.lanes;
    }
    Table pt({"pool / policy", "lanes", "frames/s", "p50 (ms)", "p95 (ms)",
              "p99 (ms)", "max (ms)", "steals"},
             {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
              Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    ServerMetrics last_metrics;
    for (dispatch::PlacementPolicy policy :
         {dispatch::PlacementPolicy::kRoundRobin,
          dispatch::PlacementPolicy::kLeastLoaded,
          dispatch::PlacementPolicy::kCostAware}) {
      ServerOptions so;
      so.backends = pool;
      so.placement = policy;
      so.batch_size = 1;
      so.queue_capacity = 64;
      LoadOptions lo;
      lo.mode = ArrivalMode::kClosedLoop;
      lo.num_frames = frames;
      lo.window = 2 * lanes;
      lo.snr_db = snr;
      lo.seed = 7;
      lo.coherence = coherence;
      lo.cells = cells;
      LoadGenerator gen(sys, primary, so, lo);
      const LoadReport rep = gen.run();
      const ServerMetrics& mx = rep.metrics;
      const std::string label(dispatch::placement_policy_name(policy));
      pt.add_row({label, std::to_string(lanes), fmt(mx.throughput_fps, 0),
                  fmt(mx.e2e.p50_s * 1e3, 3), fmt(mx.e2e.p95_s * 1e3, 3),
                  fmt(mx.e2e.p99_s * 1e3, 3), fmt(mx.e2e.max_s * 1e3, 3),
                  std::to_string(rep.dispatch.steals)});
      bench::report().row("soak",
                          {{"backend", "pool:" + pool},
                           {"policy", label},
                           {"workers", lanes},
                           {"frames_per_s", mx.throughput_fps},
                           {"e2e_p50_s", mx.e2e.p50_s},
                           {"e2e_p95_s", mx.e2e.p95_s},
                           {"e2e_p99_s", mx.e2e.p99_s},
                           {"e2e_max_s", mx.e2e.max_s},
                           {"steals", rep.dispatch.steals}});
      last_metrics = mx;
    }
    obs::CounterRegistry reg;
    last_metrics.export_counters(reg);
    bench::report().counters(reg);
    bench::print_table(pt, "soak");
    std::printf("\npool %s, closed-loop, window = 2x lanes, batch = 1; "
                "latencies are end-to-end.\n", pool.c_str());
    return 0;
  }
  const std::vector<unsigned> worker_counts = {1, 2, 4};
  std::printf("host concurrency: %u cores — CPU-backend scaling is bounded "
              "by cores; the offload series overlaps device waits.\n\n",
              std::thread::hardware_concurrency());

  Table t({"backend", "workers", "frames/s", "speedup", "p50 (ms)", "p95 (ms)",
           "p99 (ms)", "max (ms)", "util"},
          {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
           Align::kRight, Align::kRight, Align::kRight, Align::kRight,
           Align::kRight});

  ServerMetrics last_metrics;
  for (const Backend& backend : backends) {
    const DecoderSpec spec = parse_decoder_spec(backend.spec);
    double base_fps = 0.0;
    for (unsigned workers : worker_counts) {
      ServerOptions so;
      so.num_workers = workers;
      so.batch_size = 4;
      so.queue_capacity = 64;
      so.emulate_device_latency = backend.emulate_device;
      so.emulated_rtt_s = backend.rtt_s;
      LoadOptions lo;
      lo.mode = ArrivalMode::kClosedLoop;
      lo.num_frames = frames;
      lo.window = 2 * workers;
      lo.snr_db = snr;
      lo.seed = 7;
      lo.coherence = coherence;
      lo.cells = cells;
      LoadGenerator gen(sys, spec, so, lo);
      const LoadReport rep = gen.run();
      const ServerMetrics& mx = rep.metrics;
      if (workers == worker_counts.front()) base_fps = mx.throughput_fps;
      double util = 0.0;
      for (const WorkerStats& w : mx.workers) util += w.utilization;
      util /= static_cast<double>(mx.workers.size());
      t.add_row({backend.label, std::to_string(workers), fmt(mx.throughput_fps, 0),
                 fmt_factor(base_fps > 0 ? mx.throughput_fps / base_fps : 0.0),
                 fmt(mx.e2e.p50_s * 1e3, 3), fmt(mx.e2e.p95_s * 1e3, 3),
                 fmt(mx.e2e.p99_s * 1e3, 3), fmt(mx.e2e.max_s * 1e3, 3),
                 fmt_pct(util)});
      bench::report().row(
          "soak",
          {{"backend", backend.label},
           {"workers", workers},
           {"frames_per_s", mx.throughput_fps},
           {"speedup", base_fps > 0 ? mx.throughput_fps / base_fps : 0.0},
           {"e2e_p50_s", mx.e2e.p50_s},
           {"e2e_p95_s", mx.e2e.p95_s},
           {"e2e_p99_s", mx.e2e.p99_s},
           {"e2e_max_s", mx.e2e.max_s},
           {"utilization", util}});
      last_metrics = mx;
    }
    t.add_separator();
  }
  {
    // Counter snapshot of the last cell, through the unified registry path.
    obs::CounterRegistry reg;
    last_metrics.export_counters(reg);
    bench::report().counters(reg);
  }
  bench::print_table(t, "soak");
  std::printf("\nclosed-loop, window = 2x workers, batch = 4; latencies are "
              "end-to-end (queue wait + decode).\n");
  return 0;
}
