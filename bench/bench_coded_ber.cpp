// Extension experiment: coded packet performance. The paper evaluates raw
// BER; a deployed link wraps the detector in FEC. This bench measures
// packet/info-bit error rates of the full coded pipeline (conv. K=7 r=1/2 +
// interleaving) with hard SD decisions vs list-SD soft output, quantifying
// the coding gain the detector's soft information buys.
#include <cstdio>

#include "bench_common.hpp"
#include "code/coded_link.hpp"
#include "common/table.hpp"

int main() {
  using namespace sd;
  const usize packets = bench::trials_or(30);
  bench::open_report("coded_ber");
  bench::print_banner("Extension: coded packet error rates",
                      "4x4 MIMO 4-QAM, conv(133,171) r=1/2, 200 info bits",
                      packets);

  Table t({"SNR (dB)", "raw BER (hard SD)", "info BER hard", "info BER soft",
           "PER hard", "PER soft"});
  for (double snr : {4.0, 6.0, 8.0, 10.0, 12.0}) {
    CodedLinkConfig hard_cfg;
    hard_cfg.info_bits = 200;
    hard_cfg.soft_detection = false;
    hard_cfg.seed = 31;
    CodedLinkConfig soft_cfg = hard_cfg;
    soft_cfg.soft_detection = true;
    CodedLink hard_link(hard_cfg);
    CodedLink soft_link(soft_cfg);

    usize raw_hard = 0, info_hard = 0, per_hard = 0;
    usize info_soft = 0, per_soft = 0;
    usize raw_bits = 0, info_bits = 0;
    for (usize p = 0; p < packets; ++p) {
      const PacketResult rh = hard_link.run_packet(snr);
      const PacketResult rs = soft_link.run_packet(snr);
      raw_hard += rh.raw_bit_errors;
      info_hard += rh.info_bit_errors;
      per_hard += rh.packet_ok ? 0 : 1;
      info_soft += rs.info_bit_errors;
      per_soft += rs.packet_ok ? 0 : 1;
      raw_bits += rh.vectors_used * 8;  // 4 antennas x 2 bits
      info_bits += 200;
    }
    t.add_row({fmt(snr, 0),
               fmt_sci(static_cast<double>(raw_hard) / raw_bits),
               fmt_sci(static_cast<double>(info_hard) / info_bits),
               fmt_sci(static_cast<double>(info_soft) / info_bits),
               fmt(static_cast<double>(per_hard) / packets, 2),
               fmt(static_cast<double>(per_soft) / packets, 2)});
  }
  bench::print_table(t, "coded_ber");
  std::printf("soft list-SD output converts the same channel uses into "
              "materially lower post-decoding error rates — the gain an\n"
              "iterative receiver (paper ref. [11]) builds on.\n");
  return 0;
}
