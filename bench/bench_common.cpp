#include "bench_common.hpp"

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace sd::bench {

usize trials_or(usize base) {
  const long env = env_int_or("SD_TRIALS", 0);
  return env > 0 ? static_cast<usize>(env) : base;
}

void print_banner(const std::string& title, const std::string& config_label,
                  usize trials) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("configuration: %s | trials/SNR point: %zu "
              "(set SD_TRIALS to rescale)\n\n",
              config_label.c_str(), trials);
}

void run_time_figure(const TimeFigureConfig& cfg) {
  const usize trials = trials_or(cfg.default_trials);
  const SystemConfig sys{cfg.num_antennas, cfg.num_antennas, cfg.modulation};
  const std::string label =
      std::to_string(cfg.num_antennas) + "x" + std::to_string(cfg.num_antennas) +
      " MIMO, " + std::string(modulation_name(cfg.modulation));
  print_banner(cfg.figure + ": execution time vs SNR (" + label + ")", label,
               trials);
  if (!cfg.paper_note.empty()) {
    std::printf("paper reports: %s\n\n", cfg.paper_note.c_str());
  }

  ExperimentRunner runner(sys, trials, cfg.seed);

  DecoderSpec cpu_spec;
  cpu_spec.sd.max_nodes = cfg.max_nodes;
  auto cpu = make_detector(sys, cpu_spec);

  DecoderSpec base_spec = cpu_spec;
  base_spec.device = TargetDevice::kFpgaBaseline;
  auto fpga_base = make_detector(sys, base_spec);

  DecoderSpec opt_spec = cpu_spec;
  opt_spec.device = TargetDevice::kFpgaOptimized;
  auto fpga_opt = make_detector(sys, opt_spec);

  const std::vector<double> snrs = paper_snr_axis();

  Table table({"SNR (dB)", "CPU (ms)", "FPGA-base (ms)", "FPGA-opt (ms)",
               "opt vs CPU", "opt vs base", "mean nodes", "real-time"});
  bool any_budget_hit = false;
  for (double snr : snrs) {
    const SweepPoint p_cpu = runner.run_point(*cpu, snr);
    const SweepPoint p_base = runner.run_point(*fpga_base, snr);
    const SweepPoint p_opt = runner.run_point(*fpga_opt, snr);
    any_budget_hit |= p_cpu.budget_hit || p_base.budget_hit || p_opt.budget_hit;
    table.add_row({fmt(snr, 0), fmt(p_cpu.mean_seconds * 1e3, 3),
                   fmt(p_base.mean_seconds * 1e3, 3),
                   fmt(p_opt.mean_seconds * 1e3, 3),
                   fmt_factor(p_cpu.mean_seconds / p_opt.mean_seconds),
                   fmt_factor(p_base.mean_seconds / p_opt.mean_seconds),
                   fmt(p_opt.mean_nodes_expanded, 0),
                   p_opt.mean_seconds <= kRealTimeSeconds ? "yes" : "no"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "CPU times are measured wall-clock on this host (single core); FPGA "
      "times are the cycle-model latency of the simulated U280 designs.\n");
  if (any_budget_hit) {
    std::printf("NOTE: some decodes hit the %llu-node budget; their times are "
                "lower bounds.\n",
                static_cast<unsigned long long>(cfg.max_nodes));
  }
}

}  // namespace sd::bench
