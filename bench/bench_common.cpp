#include "bench_common.hpp"

#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace sd::bench {

namespace {
std::unique_ptr<obs::BenchReporter> g_report;  // one per bench process
}  // namespace

usize trials_or(usize base) {
  const long env = env_int_or("SD_TRIALS", 0);
  return env > 0 ? static_cast<usize>(env) : base;
}

obs::BenchReporter& open_report(const std::string& name) {
  g_report = std::make_unique<obs::BenchReporter>(name);
  return *g_report;
}

obs::BenchReporter& report() {
  SD_CHECK(g_report != nullptr, "open_report() must be called before report()");
  return *g_report;
}

bool report_open() { return g_report != nullptr; }

void print_banner(const std::string& title, const std::string& config_label,
                  usize trials) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("configuration: %s | trials/SNR point: %zu "
              "(set SD_TRIALS to rescale)\n\n",
              config_label.c_str(), trials);
  if (g_report) {
    g_report->config("title", title);
    g_report->config("configuration", config_label);
    g_report->config("trials", static_cast<std::uint64_t>(trials));
  }
}

void print_table(const Table& t, const std::string& label) {
  std::fputs(t.render().c_str(), stdout);
  if (g_report) g_report->add_table(label, t);
}

void run_time_figure(const TimeFigureConfig& cfg) {
  const usize trials = trials_or(cfg.default_trials);
  const SystemConfig sys{cfg.num_antennas, cfg.num_antennas, cfg.modulation};
  const std::string label =
      std::to_string(cfg.num_antennas) + "x" + std::to_string(cfg.num_antennas) +
      " MIMO, " + std::string(modulation_name(cfg.modulation));
  print_banner(cfg.figure + ": execution time vs SNR (" + label + ")", label,
               trials);
  if (!cfg.paper_note.empty()) {
    std::printf("paper reports: %s\n\n", cfg.paper_note.c_str());
  }
  if (report_open()) {
    obs::BenchReporter& rep = report();
    rep.config("figure", cfg.figure);
    rep.config("num_antennas", static_cast<std::int64_t>(cfg.num_antennas));
    rep.config("modulation", modulation_name(cfg.modulation));
    rep.config("max_nodes", cfg.max_nodes);
    rep.config("seed", cfg.seed);
  }

  ExperimentRunner runner(sys, trials, cfg.seed);

  DecoderSpec cpu_spec;
  cpu_spec.sd.max_nodes = cfg.max_nodes;
  auto cpu = make_detector(sys, cpu_spec);

  DecoderSpec base_spec = cpu_spec;
  base_spec.device = TargetDevice::kFpgaBaseline;
  auto fpga_base = make_detector(sys, base_spec);

  DecoderSpec opt_spec = cpu_spec;
  opt_spec.device = TargetDevice::kFpgaOptimized;
  auto fpga_opt = make_detector(sys, opt_spec);

  const std::vector<double> snrs = paper_snr_axis();

  Table table({"SNR (dB)", "CPU (ms)", "FPGA-base (ms)", "FPGA-opt (ms)",
               "opt vs CPU", "opt vs base", "mean nodes", "real-time"});
  bool any_budget_hit = false;
  for (double snr : snrs) {
    const SweepPoint p_cpu = runner.run_point(*cpu, snr);
    const SweepPoint p_base = runner.run_point(*fpga_base, snr);
    const SweepPoint p_opt = runner.run_point(*fpga_opt, snr);
    any_budget_hit |= p_cpu.budget_hit || p_base.budget_hit || p_opt.budget_hit;
    table.add_row({fmt(snr, 0), fmt(p_cpu.mean_seconds * 1e3, 3),
                   fmt(p_base.mean_seconds * 1e3, 3),
                   fmt(p_opt.mean_seconds * 1e3, 3),
                   fmt_factor(p_cpu.mean_seconds / p_opt.mean_seconds),
                   fmt_factor(p_base.mean_seconds / p_opt.mean_seconds),
                   fmt(p_opt.mean_nodes_expanded, 0),
                   p_opt.mean_seconds <= kRealTimeSeconds ? "yes" : "no"});
    if (report_open()) {
      report().row(
          "time_vs_snr",
          {{"snr_db", snr},
           {"cpu_s", p_cpu.mean_seconds},
           {"fpga_base_s", p_base.mean_seconds},
           {"fpga_opt_s", p_opt.mean_seconds},
           {"opt_vs_cpu", p_cpu.mean_seconds / p_opt.mean_seconds},
           {"opt_vs_base", p_base.mean_seconds / p_opt.mean_seconds},
           {"mean_nodes_expanded", p_opt.mean_nodes_expanded},
           {"real_time", p_opt.mean_seconds <= kRealTimeSeconds}});
    }
  }
  print_table(table, "time_vs_snr");
  std::printf(
      "CPU times are measured wall-clock on this host (single core); FPGA "
      "times are the cycle-model latency of the simulated U280 designs.\n");
  if (any_budget_hit) {
    std::printf("NOTE: some decodes hit the %llu-node budget; their times are "
                "lower bounds.\n",
                static_cast<unsigned long long>(cfg.max_nodes));
  }
  if (report_open()) report().config("budget_hit", any_budget_hit);
}

}  // namespace sd::bench
