// Coherence-block channel reuse: throughput of the serving runtime as the
// channel coherence block L and the lane batch size B grow.
//
// Under block fading a base station decodes many frames against one channel
// estimate. The runtime exploits that twice: the backend's ChannelPrepCache
// pays the QR factorization once per block instead of once per frame, and a
// lane that pops B consecutive frames sharing a channel decodes them through
// one fused multi-frame level GEMM (decode_batch_with) — bit-identical per
// frame to the sequential path by construction. This bench sweeps L x B on a
// single lane so the speedup is pure reuse + fusion, not parallelism.
//
//   SD_TRIALS=256 ./bench_coherent_batch [--m=10] [--mod=4qam] [--snr=14]
//
// The default operating point is high-SNR (14 dB): under block fading the
// interesting regime is where the tree search is cheap and preprocessing is
// a large share of per-frame cost — exactly where coherence reuse pays. At
// low SNR the BFS search dominates and the same machinery is measurable but
// small; pass --snr=8 to see that regime.
//
// The emitted BENCH_coherent_batch.json carries per-cell prep-cache and
// fused-run counters; at full trial counts the config flag gate_speedup
// turns on the validator's perf gate (fused L=64/B=8 vs L=1/B=1).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/spec_parse.hpp"
#include "dispatch/dispatcher.hpp"
#include "serve/load_generator.hpp"

int main(int argc, char** argv) {
  using namespace sd;
  using namespace sd::serve;
  const Cli cli(argc, argv);
  const auto m = static_cast<index_t>(cli.get_int_or("m", 10));
  const Modulation mod = parse_modulation(cli.get_or("mod", "4qam"));
  const double snr = cli.get_double_or("snr", 14.0);
  const usize frames = bench::trials_or(256);
  const SystemConfig sys{m, m, mod};

  bench::open_report("coherent_batch");
  bench::print_banner(
      "Coherence-block reuse: throughput vs coherence L x batch B",
      std::to_string(m) + "x" + std::to_string(m) + " MIMO, " +
          std::string(modulation_name(mod)) + " @ " + fmt(snr, 0) +
          " dB, 1 lane, BFS decoder",
      frames);

  const std::vector<usize> coherences = {1, 4, 16, 64};
  const std::vector<usize> batches = {1, 4, 8};
  // The perf gate only means something at real trial counts; a smoke run
  // (SD_TRIALS=1) measures nothing.
  const bool gate = frames >= 128;
  bench::report().config("gate_speedup", gate);

  Table t({"coherence L", "batch B", "frames/s", "speedup", "p99 (ms)",
           "prep hit", "fused runs", "fused frames"},
          {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
           Align::kRight, Align::kRight, Align::kRight, Align::kRight});

  // Untimed warm-up at the baseline configuration: the first measured cell
  // is the denominator of every speedup, so it must not also pay the
  // cold-start cost (code paging, allocator growth, branch training).
  {
    ServerOptions so;
    so.num_workers = 1;
    so.batch_size = 1;
    so.queue_capacity = 64;
    LoadOptions lo;
    lo.mode = ArrivalMode::kClosedLoop;
    lo.num_frames = frames;
    lo.window = 4;
    lo.snr_db = snr;
    lo.seed = 7;
    LoadGenerator warm(sys, parse_decoder_spec("bfs"), so, lo);
    (void)warm.run();
  }

  double base_fps = 0.0;
  dispatch::DispatchStats last_stats;
  for (usize coherence : coherences) {
    for (usize batch : batches) {
      ServerOptions so;
      so.num_workers = 1;  // one lane: speedup is reuse + fusion, not cores
      so.batch_size = batch;
      so.queue_capacity = 64;
      LoadOptions lo;
      lo.mode = ArrivalMode::kClosedLoop;
      lo.num_frames = frames;
      lo.window = std::min<usize>(std::max<usize>(2 * batch, 4), 32);
      lo.snr_db = snr;
      lo.seed = 7;
      lo.coherence = coherence;
      LoadGenerator gen(sys, parse_decoder_spec("bfs"), so, lo);
      const LoadReport rep = gen.run();
      const ServerMetrics& mx = rep.metrics;
      const dispatch::DispatchStats& ds = rep.dispatch;
      if (coherence == 1 && batch == 1) base_fps = mx.throughput_fps;
      const double hit_rate =
          ds.prep_hits + ds.prep_misses > 0
              ? static_cast<double>(ds.prep_hits) /
                    static_cast<double>(ds.prep_hits + ds.prep_misses)
              : 0.0;
      const double speedup =
          base_fps > 0.0 ? mx.throughput_fps / base_fps : 0.0;
      t.add_row({std::to_string(coherence), std::to_string(batch),
                 fmt(mx.throughput_fps, 0), fmt_factor(speedup),
                 fmt(mx.e2e.p99_s * 1e3, 3), fmt_pct(hit_rate),
                 std::to_string(ds.fused_runs),
                 std::to_string(ds.fused_frames)});
      bench::report().row("coherent_batch",
                          {{"coherence", coherence},
                           {"batch", batch},
                           {"frames_per_s", mx.throughput_fps},
                           {"speedup", speedup},
                           {"e2e_p99_s", mx.e2e.p99_s},
                           {"prep_hits", ds.prep_hits},
                           {"prep_misses", ds.prep_misses},
                           {"prep_hit_rate", hit_rate},
                           {"fused_runs", ds.fused_runs},
                           {"fused_frames", ds.fused_frames}});
      last_stats = ds;
    }
    t.add_separator();
  }
  {
    obs::CounterRegistry reg;
    last_stats.export_counters(reg);
    bench::report().counters(reg);
  }
  bench::print_table(t, "coherent_batch");

  // Cross-channel fusion ablation at L=1: every frame carries a distinct
  // channel, so the classic same-channel-only runtime cannot fuse anything
  // — the wide block-diagonal decode is the only fusion available. Both
  // sides are best-of-3 (closed-loop e2e throughput is scheduler-noisy;
  // the max is the least contended run of each configuration).
  Table tx({"batch B", "same-only fps", "cross-fuse fps", "speedup",
            "fused frames"},
           {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
            Align::kRight});
  const usize reps = frames >= 128 ? 3 : 1;
  for (usize batch : batches) {
    if (batch == 1) continue;  // identical paths when nothing can batch
    std::uint64_t fused_frames = 0;
    const auto best_fps = [&](bool cross) {
      double best = 0.0;
      for (usize r = 0; r < reps; ++r) {
        ServerOptions so;
        so.num_workers = 1;
        so.batch_size = batch;
        so.queue_capacity = 64;
        so.fuse_cross_channel = cross;
        LoadOptions lo;
        lo.mode = ArrivalMode::kClosedLoop;
        lo.num_frames = frames;
        lo.window = std::min<usize>(std::max<usize>(2 * batch, 4), 32);
        lo.snr_db = snr;
        lo.seed = 7;
        lo.coherence = 1;
        LoadGenerator gen(sys, parse_decoder_spec("bfs"), so, lo);
        const LoadReport rep = gen.run();
        best = std::max(best, rep.metrics.throughput_fps);
        if (cross) fused_frames = rep.dispatch.fused_frames;
      }
      return best;
    };
    const double same_fps = best_fps(false);
    const double cross_fps = best_fps(true);
    const double speedup = same_fps > 0.0 ? cross_fps / same_fps : 0.0;
    tx.add_row({std::to_string(batch), fmt(same_fps, 0), fmt(cross_fps, 0),
                fmt_factor(speedup, 2), std::to_string(fused_frames)});
    bench::report().row("cross_channel",
                        {{"batch", batch},
                         {"same_frames_per_s", same_fps},
                         {"cross_frames_per_s", cross_fps},
                         {"speedup", speedup},
                         {"fused_frames", fused_frames}});
  }
  bench::print_table(tx, "cross_channel (L=1)");

  // Cross-lane former ablation: a multi-lane pool serving interleaved
  // multi-cell traffic (cells = lanes) at batch B = 1 — the adversarial
  // shape for per-lane batching, because each lane's own pop yields exactly
  // one frame. Former off, every decode run is width 1 no matter how deep
  // the backlog; former on, the popping lane gathers its siblings' queue
  // fronts into one wide run, so the fused width tracks the offered batch
  // and the BFS level GEMMs run at material width. Offered batch is the
  // per-lane share of the QUEUED half of the closed-loop window — by
  // Little's law roughly half the outstanding frames are in service at
  // saturation, so window = 2 * lanes * offered is what sustains pops of
  // `offered` width; window / lanes would only offer that width to a cold
  // backlog. Best-of-reps like the cross_channel series, for the same
  // reason.
  Table tl({"lanes", "former", "frames/s", "speedup", "width p50", "offered",
            "former runs", "gathered", "empty"},
           {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
            Align::kRight, Align::kRight, Align::kRight, Align::kRight,
            Align::kRight});
  // Median width over ALL decode runs: the fused histogram (width >= 2)
  // plus the singleton runs it deliberately excludes, reconstructed as
  // completed - fused_frames. Counting singletons keeps the p50 honest —
  // a former that only occasionally forms wide runs cannot hide behind a
  // histogram of its successes.
  const auto width_p50 = [](const dispatch::DispatchStats& ds,
                            std::uint64_t completed) {
    std::vector<std::uint64_t> counts = ds.fused_width_counts;
    if (counts.size() < 2) counts.resize(2, 0);
    counts[1] += completed > ds.fused_frames ? completed - ds.fused_frames : 0;
    std::uint64_t runs = 0;
    for (const std::uint64_t c : counts) runs += c;
    if (runs == 0) return usize{0};
    std::uint64_t seen = 0;
    for (usize w = 0; w < counts.size(); ++w) {
      seen += counts[w];
      if (2 * seen >= runs) return w;
    }
    return counts.size() - 1;
  };
  const std::vector<usize> lane_counts = {2, 4, 8};
  for (const usize lanes : lane_counts) {
    const usize window = lanes * 16;
    const usize offered = window / (2 * lanes);
    double off_fps = 0.0;
    for (const bool former : {false, true}) {
      double best = 0.0;
      dispatch::DispatchStats ds;
      std::uint64_t completed = 0;
      for (usize r = 0; r < reps; ++r) {
        ServerOptions so;
        so.num_workers = static_cast<unsigned>(lanes);
        so.batch_size = 1;
        so.queue_capacity = std::max<usize>(window, 64);
        so.fuse_cross_channel = true;
        so.cross_lane_former = former;
        LoadOptions lo;
        lo.mode = ArrivalMode::kClosedLoop;
        lo.num_frames = frames;
        lo.window = window;
        lo.snr_db = snr;
        lo.seed = 7;
        lo.coherence = 1;
        lo.cells = lanes;
        LoadGenerator gen(sys, parse_decoder_spec("bfs"), so, lo);
        const LoadReport rep = gen.run();
        if (rep.metrics.throughput_fps > best) {
          best = rep.metrics.throughput_fps;
          ds = rep.dispatch;
          completed = rep.metrics.completed;
        }
      }
      if (!former) off_fps = best;
      const double speedup = off_fps > 0.0 ? best / off_fps : 0.0;
      const usize p50 = width_p50(ds, completed);
      tl.add_row({std::to_string(lanes), former ? "on" : "off", fmt(best, 0),
                  fmt_factor(speedup, 2), std::to_string(p50),
                  std::to_string(offered), std::to_string(ds.former_runs),
                  std::to_string(ds.former_gathered),
                  std::to_string(ds.former_empty)});
      bench::report().row("cross_lane",
                          {{"lanes", lanes},
                           {"former", former},
                           {"frames_per_s", best},
                           {"speedup", speedup},
                           {"fused_width_p50", p50},
                           {"offered_batch", offered},
                           {"fused_runs", ds.fused_runs},
                           {"fused_frames", ds.fused_frames},
                           {"former_runs", ds.former_runs},
                           {"former_gathered", ds.former_gathered},
                           {"former_empty", ds.former_empty}});
    }
    tl.add_separator();
  }
  bench::print_table(tl, "cross_lane (cells = lanes, B = 1)");
  std::printf("\nclosed-loop, 1 lane, window = min(max(2B, 4), 32); the L=1 "
              "column is the i.i.d. baseline every other cell is measured "
              "against. Fused decodes are bit-identical to sequential ones "
              "(tests/test_coherent_batch.cpp pins this). The cross_lane "
              "table runs lanes workers over interleaved cells with window = "
              "16x lanes; 'offered' is the per-lane share of the queued half "
              "of the window, window / (2 * lanes) — about half the window "
              "is in service at saturation — which is the width the former "
              "can hope to fuse.\n");
  return 0;
}
