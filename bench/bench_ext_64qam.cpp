// Extension experiment: scaling the modulation one step beyond the paper.
// The paper stops at 16-QAM ("supporting up to 16-QAM modulation") and its
// §IV-E analysis predicts the tree-state matrix — and hence both decode
// time and URAM demand — scales with Modulation^2. This bench runs the
// 4 -> 16 -> 64-QAM ladder at 8x8 and checks the prediction against the
// measured work counters and the resource model.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "fpga/resources.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(8);
  bench::open_report("ext_64qam");
  bench::print_banner("Extension: 64-QAM modulation scaling",
                      "8x8 MIMO @ SNR 12 dB", trials);

  Table t({"modulation", "bits/vector", "CPU (ms)", "FPGA-opt (ms)",
           "mean nodes", "BER", "URAMs", "2nd pipeline fits"});
  for (Modulation mod :
       {Modulation::kQam4, Modulation::kQam16, Modulation::kQam64}) {
    const SystemConfig sys{8, 8, mod};
    ExperimentRunner runner(sys, trials, 91);
    DecoderSpec cpu_spec;
    cpu_spec.sd.max_nodes = 1'000'000;
    auto cpu = make_detector(sys, cpu_spec);
    DecoderSpec fpga_spec = cpu_spec;
    fpga_spec.device = TargetDevice::kFpgaOptimized;
    auto fpga = make_detector(sys, fpga_spec);

    const double snr = 12.0;
    const SweepPoint p_cpu = runner.run_point(*cpu, snr);
    const SweepPoint p_fpga = runner.run_point(*fpga, snr);
    const auto res =
        estimate_resources(FpgaConfig::optimized_design(8, 8, mod));

    t.add_row({std::string(modulation_name(mod)),
               std::to_string(8 * Constellation::get(mod).bits_per_symbol()),
               fmt(p_cpu.mean_seconds * 1e3, 3),
               fmt(p_fpga.mean_seconds * 1e3, 3),
               fmt(p_fpga.mean_nodes_expanded, 0), fmt_sci(p_fpga.ber),
               fmt(res.urams, 0),
               res.second_pipeline_fits() ? "yes" : "NO"});
  }
  bench::print_table(t, "qam_scaling");
  std::printf("the Modulation^2 blow-up the paper's SIV-E predicts: 64-QAM "
              "exhausts the second-pipeline headroom (URAM column) and its "
              "decode time dwarfs the antenna-scaling effect.\n");
  return 0;
}
