// Table I: FPGA resource utilization on the Alveo U280 for the four design
// points (baseline/optimized x 4-QAM/16-QAM), from the calibrated synthesis
// model (src/fpga/resources.*). The paper's measured values are printed
// alongside for comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "fpga/resources.hpp"

namespace {

struct PaperRow {
  const char* metric;
  double base4, base16, opt4, opt16;
};

}  // namespace

int main() {
  using namespace sd;
  bench::open_report("table1_resources");
  bench::print_banner("Table I: FPGA resource utilization",
                      "Alveo U280, baseline vs optimized, 4/16-QAM", 1);

  const auto base4 = estimate_resources(FpgaConfig::baseline(10, 10, Modulation::kQam4));
  const auto base16 = estimate_resources(FpgaConfig::baseline(10, 10, Modulation::kQam16));
  const auto opt4 = estimate_resources(FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  const auto opt16 = estimate_resources(FpgaConfig::optimized_design(10, 10, Modulation::kQam16));

  Table t({"", "Baseline 4-QAM", "Baseline 16-QAM", "Optimized 4-QAM",
           "Optimized 16-QAM"});
  auto row = [&](const char* name, double a, double b, double c, double d,
                 bool pct) {
    if (pct) {
      t.add_row({name, fmt_pct(a), fmt_pct(b), fmt_pct(c), fmt_pct(d)});
    } else {
      t.add_row({name, fmt(a, 0), fmt(b, 0), fmt(c, 0), fmt(d, 0)});
    }
  };
  row("Freq (MHz)", base4.freq_mhz, base16.freq_mhz, opt4.freq_mhz,
      opt16.freq_mhz, false);
  row("LUTs", base4.lut_frac(), base16.lut_frac(), opt4.lut_frac(),
      opt16.lut_frac(), true);
  row("FFs", base4.ff_frac(), base16.ff_frac(), opt4.ff_frac(),
      opt16.ff_frac(), true);
  row("DSPs", base4.dsp_frac(), base16.dsp_frac(), opt4.dsp_frac(),
      opt16.dsp_frac(), true);
  row("BRAMs", base4.bram_frac(), base16.bram_frac(), opt4.bram_frac(),
      opt16.bram_frac(), true);
  row("URAMs", base4.uram_frac(), base16.uram_frac(), opt4.uram_frac(),
      opt16.uram_frac(), true);
  bench::print_table(t, "model");

  Table paper({"paper (measured)", "Baseline 4-QAM", "Baseline 16-QAM",
               "Optimized 4-QAM", "Optimized 16-QAM"});
  const PaperRow rows[] = {
      {"Freq (MHz)", 253, 253, 300, 300}, {"LUTs %", 29, 50, 11, 23},
      {"FFs %", 20, 27, 7, 11},           {"DSPs %", 8, 15, 3, 7},
      {"BRAMs %", 11, 14, 8, 10},         {"URAMs %", 14, 60, 7, 30},
  };
  for (const PaperRow& r : rows) {
    paper.add_row({r.metric, fmt(r.base4, 0), fmt(r.base16, 0), fmt(r.opt4, 0),
                   fmt(r.opt16, 0)});
  }
  bench::print_table(paper, "paper");

  std::printf("second pipeline fits (all classes <= 50%%): base4=%s base16=%s "
              "opt4=%s opt16=%s\n",
              base4.second_pipeline_fits() ? "yes" : "no",
              base16.second_pipeline_fits() ? "yes" : "no",
              opt4.second_pipeline_fits() ? "yes" : "no",
              opt16.second_pipeline_fits() ? "yes" : "no");
  return 0;
}
