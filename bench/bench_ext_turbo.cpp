// Extension experiment: iterative (turbo) detection and decoding — the
// receiver architecture of the paper's ref. [11], assembled from the list
// sphere decoder and the max-log BCJR SISO decoder. The tree search runs
// once per vector; iterations only re-score the stored candidate lists, so
// the extra latency per iteration is trivial compared to the search.
#include <cstdio>

#include "bench_common.hpp"
#include "code/turbo_receiver.hpp"
#include "common/table.hpp"

int main() {
  using namespace sd;
  const usize packets = bench::trials_or(25);
  bench::open_report("ext_turbo");
  bench::print_banner("Extension: iterative (turbo) detection + decoding",
                      "4x4 MIMO 4-QAM, conv(133,171), list size 64, "
                      "4 iterations",
                      packets);

  Table t({"SNR (dB)", "info BER it1", "info BER it2", "info BER it4",
           "PER it1", "PER it4"});
  for (double snr : {4.0, 4.5, 5.0, 5.5, 6.0}) {
    TurboConfig cfg;
    cfg.info_bits = 200;
    cfg.iterations = 4;
    cfg.seed = 17;
    TurboReceiver rx(cfg);

    usize e1 = 0, e2 = 0, e4 = 0, per1 = 0, per4 = 0, bits = 0;
    for (usize p = 0; p < packets; ++p) {
      const TurboPacketResult r = rx.run_packet(snr);
      e1 += r.errors_per_iteration[0];
      e2 += r.errors_per_iteration[1];
      e4 += r.errors_per_iteration[3];
      per1 += r.errors_per_iteration[0] == 0 ? 0 : 1;
      per4 += r.errors_per_iteration[3] == 0 ? 0 : 1;
      bits += 200;
    }
    t.add_row({fmt(snr, 1), fmt_sci(static_cast<double>(e1) / bits),
               fmt_sci(static_cast<double>(e2) / bits),
               fmt_sci(static_cast<double>(e4) / bits),
               fmt(static_cast<double>(per1) / packets, 2),
               fmt(static_cast<double>(per4) / packets, 2)});
  }
  bench::print_table(t, "turbo");
  std::printf("decoder feedback re-scores the detector's candidate lists "
              "(no re-search), buying ~0.5-1 dB at the packet level — the "
              "iterative-receiver payoff ref. [11] describes.\n");
  return 0;
}
