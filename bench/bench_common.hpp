// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every figure/table of the paper's evaluation has one binary under bench/;
// each prints the same rows/series the paper reports, using measured CPU
// wall-clock and the documented device models (see DESIGN.md §1 and §5).
// Trial counts scale with the SD_TRIALS environment variable.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "core/sphere_decoder.hpp"
#include "obs/bench_report.hpp"

namespace sd {
class Table;
}

namespace sd::bench {

/// The paper's real-time constraint: 10 ms ([1] in its intro).
inline constexpr double kRealTimeSeconds = 10e-3;

/// Default Monte-Carlo trials per SNR point, scaled by SD_TRIALS (the env
/// value replaces `base` when set).
[[nodiscard]] usize trials_or(usize base);

/// Opens the process-wide JSON report this binary emits as
/// BENCH_<name>.json (schema "spheredec.bench"; see obs/bench_report.hpp).
/// Call once at the top of main, before any banner/table helper.
obs::BenchReporter& open_report(const std::string& name);

/// The report opened by open_report(). Checked: call open_report first.
obs::BenchReporter& report();

/// True once open_report() has run (helpers capture only when open).
[[nodiscard]] bool report_open();

/// Prints the standard bench banner (figure id, configuration, trials) and
/// records title/config/trials into the open report.
void print_banner(const std::string& title, const std::string& config_label,
                  usize trials);

/// Renders the table to stdout and captures it into the open report under
/// `label` — the one call every bench table goes through so the text and
/// JSON outputs can never diverge.
void print_table(const Table& t, const std::string& label);

/// One decode-time-vs-SNR figure (the template behind Figs. 6, 8, 9, 10):
/// CPU (measured), FPGA-baseline (simulated) and FPGA-optimized (simulated)
/// series over the paper's SNR axis, with speedups and real-time flags.
struct TimeFigureConfig {
  std::string figure;        ///< e.g. "Figure 6"
  index_t num_antennas = 10; ///< M = N
  Modulation modulation = Modulation::kQam4;
  usize default_trials = 20;
  std::uint64_t max_nodes = 2'000'000;  ///< per-decode expansion budget
  std::uint64_t seed = 1;
  std::string paper_note;    ///< the headline the paper reports for this figure
};

void run_time_figure(const TimeFigureConfig& cfg);

}  // namespace sd::bench
