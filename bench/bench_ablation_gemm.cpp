// Ablation (paper §III-C1): GEMM engine micro-benchmarks via
// google-benchmark. Compares the naive reference kernel against the blocked
// CPU kernel on the shapes the decoders actually issue — the small
// (1 x P x k) sibling-batch products and the large BFS level batches — and
// reports the simulated systolic engine's cycle counts for the same shapes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "common/random.hpp"
#include "fpga/systolic_gemm.hpp"
#include "linalg/gemm.hpp"

namespace {

using namespace sd;

CMat random_mat(index_t r, index_t c, std::uint64_t seed) {
  GaussianSource g(seed);
  CMat m(r, c);
  for (cplx& v : m.flat()) v = g.next_cplx(1.0);
  return m;
}

void BM_GemmNaive(benchmark::State& state) {
  const auto m = static_cast<index_t>(state.range(0));
  const auto n = static_cast<index_t>(state.range(1));
  const auto k = static_cast<index_t>(state.range(2));
  const CMat a = random_mat(m, k, 1);
  const CMat b = random_mat(k, n, 2);
  CMat c(m, n);
  for (auto _ : state) {
    gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gemm_flops(m, n, k)));
}

void BM_GemmBlocked(benchmark::State& state) {
  const auto m = static_cast<index_t>(state.range(0));
  const auto n = static_cast<index_t>(state.range(1));
  const auto k = static_cast<index_t>(state.range(2));
  const CMat a = random_mat(m, k, 1);
  const CMat b = random_mat(k, n, 2);
  CMat c(m, n);
  for (auto _ : state) {
    gemm(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gemm_flops(m, n, k)));
}

void BM_SystolicEngineSim(benchmark::State& state) {
  // Functional simulation cost of the engine (host-side), with the modelled
  // device cycles reported as a counter.
  const auto m = static_cast<index_t>(state.range(0));
  const auto n = static_cast<index_t>(state.range(1));
  const auto k = static_cast<index_t>(state.range(2));
  SystolicGemmEngine engine(8, 16, 12);
  const CMat a = random_mat(m, k, 1);
  const CMat b = random_mat(k, n, 2);
  CMat c(m, n);
  for (auto _ : state) {
    engine.run(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["device_cycles"] =
      static_cast<double>(engine.cycles_for(m, n, k));
  state.counters["device_us_at_300MHz"] =
      static_cast<double>(engine.cycles_for(m, n, k)) / 300.0;
}

// Sibling-batch shapes (Best-FS): 1 x P x k.
constexpr std::int64_t kSibling4Qam[] = {1, 4, 10};
constexpr std::int64_t kSibling16Qam[] = {1, 16, 10};
constexpr std::int64_t kSibling16Deep[] = {1, 16, 20};
// BFS level batches: 1 x (F*P) x k.
constexpr std::int64_t kBfsLevel[] = {1, 4096, 10};
// Square shapes for kernel scaling context.
constexpr std::int64_t kSquareSmall[] = {32, 32, 32};
constexpr std::int64_t kSquareBig[] = {128, 128, 128};

}  // namespace

BENCHMARK(BM_GemmNaive)
    ->Args({kSibling4Qam[0], kSibling4Qam[1], kSibling4Qam[2]})
    ->Args({kSibling16Qam[0], kSibling16Qam[1], kSibling16Qam[2]})
    ->Args({kSibling16Deep[0], kSibling16Deep[1], kSibling16Deep[2]})
    ->Args({kBfsLevel[0], kBfsLevel[1], kBfsLevel[2]})
    ->Args({kSquareSmall[0], kSquareSmall[1], kSquareSmall[2]})
    ->Args({kSquareBig[0], kSquareBig[1], kSquareBig[2]});

BENCHMARK(BM_GemmBlocked)
    ->Args({kSibling4Qam[0], kSibling4Qam[1], kSibling4Qam[2]})
    ->Args({kSibling16Qam[0], kSibling16Qam[1], kSibling16Qam[2]})
    ->Args({kSibling16Deep[0], kSibling16Deep[1], kSibling16Deep[2]})
    ->Args({kBfsLevel[0], kBfsLevel[1], kBfsLevel[2]})
    ->Args({kSquareSmall[0], kSquareSmall[1], kSquareSmall[2]})
    ->Args({kSquareBig[0], kSquareBig[1], kSquareBig[2]});

BENCHMARK(BM_SystolicEngineSim)
    ->Args({kSibling4Qam[0], kSibling4Qam[1], kSibling4Qam[2]})
    ->Args({kSibling16Qam[0], kSibling16Qam[1], kSibling16Qam[2]})
    ->Args({kBfsLevel[0], kBfsLevel[1], kBfsLevel[2]});

namespace {

// Console output as usual, plus capture of every finished run into the
// process-wide BENCH_ablation_gemm.json report.
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::vector<std::pair<std::string, sd::obs::Metric>> cells;
      cells.emplace_back("name", run.benchmark_name());
      cells.emplace_back("iterations",
                         static_cast<std::int64_t>(run.iterations));
      cells.emplace_back("real_time", run.GetAdjustedRealTime());
      cells.emplace_back("cpu_time", run.GetAdjustedCPUTime());
      cells.emplace_back("time_unit",
                         benchmark::GetTimeUnitString(run.time_unit));
      for (const auto& [counter_name, counter] : run.counters) {
        cells.emplace_back(counter_name, static_cast<double>(counter));
      }
      sd::bench::report().row("gemm", std::move(cells));
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  sd::bench::open_report("ablation_gemm");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ReportingConsoleReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
