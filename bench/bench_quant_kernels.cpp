// Fixed-point kernel A/B microbenchmark: the int16 split-complex level GEMM
// (scalar reference vs AVX2 _mm256_madd_epi16) against the float SoA/scalar
// kernels on the BFS level shapes the quantized decoder issues. The int16
// path stores operands at half the width and evaluates a complex MAC in one
// madd per 16-bit pair lane, so on AVX2 hosts it should beat the float SoA
// kernel comfortably; validate_bench_json.py gates the largest shape on a
// 1.5x speedup (DESIGN.md §15).
//
// Emits BENCH_quant_kernels.json.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "common/random.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"
#include "quant/quant_gemm.hpp"

namespace {

using namespace sd;

CMat random_mat(index_t r, index_t c, std::uint64_t seed) {
  GaussianSource g(seed);
  CMat m(r, c);
  for (cplx& v : m.flat()) v = g.next_cplx(1.0);
  return m;
}

/// Random int16 values in the amplitude band the calibrated decoder
/// produces (well inside the saturation bound, like a quantized R row).
void random_i16(quant::I16Mat& m, index_t r, index_t c, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  m.reshape(r, c);
  for (std::int16_t& v : m.flat()) {
    v = static_cast<std::int16_t>(static_cast<int>(rng() % 4001u) - 2000);
  }
}

template <typename Fn>
double time_best_of(Fn&& fn, usize iters) {
  constexpr int kReps = 5;
  fn();  // warm-up: touch operands, reach high-water shapes
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer t;
    for (usize i = 0; i < iters; ++i) fn();
    best = std::min(best, t.elapsed_seconds() / static_cast<double>(iters));
  }
  return best;
}

std::string us(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e6);
  return buf;
}

std::string ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

}  // namespace

int main() {
  const usize trials = sd::bench::trials_or(32);
  sd::bench::open_report("quant_kernels");
  sd::bench::print_banner(
      "Fixed-point kernel A/B: int16 level GEMM vs float SoA/scalar",
      "zr x (f*p) x k quantized level products (DESIGN.md §15)", trials);

  const bool avx2 = quant::qgemm_int16_available();
  const bool soa = gemm_soa_available();
  sd::bench::report().config("avx2_int16_available", avx2);
  sd::bench::report().config("soa_available", soa);
  // The 1.5x int16-vs-SoA gate only binds when both vector kernels exist.
  sd::bench::report().config("gate_speedup", avx2 && soa);

  // 1 x (f*p) x k row-0 level shapes — exactly what both datapaths issue per
  // BFS level (the PD loop only consumes row 0) — at three frontier widths
  // up to the largest level batch the Fig. 10 configuration hits.
  struct Shape {
    index_t zr;
    index_t cols;
    index_t k;
  };
  const Shape shapes[] = {{1, 4096, 10}, {1, 8192, 15}, {1, 16384, 20}};

  Table table({"shape (zr x n x k)", "i16 scalar us", "i16 avx2 us",
               "fp32 scalar us", "fp32 soa us", "avx2 vs soa"});
  GemmWorkspace ws;

  for (const Shape& sh : shapes) {
    const index_t k = sh.k;
    const index_t n = sh.cols;
    const auto seed = static_cast<std::uint64_t>(1000 + k);

    quant::I16Mat a_re, a_im, s_ri;
    quant::I32Mat z_re, z_im;
    random_i16(a_re, sh.zr, k, seed);
    random_i16(a_im, sh.zr, k, seed + 1);
    random_i16(s_ri, k, 2 * n, seed + 2);

    const CMat fa = random_mat(sh.zr, k, seed + 3);
    const CMat fb = random_mat(k, n, seed + 4);
    CMat fc(sh.zr, n);

    const std::uint64_t vol =
        static_cast<std::uint64_t>(sh.zr) * static_cast<std::uint64_t>(n) * k;
    const usize iters = std::max<usize>(
        1, static_cast<usize>(trials * 200000 /
                              std::max<std::uint64_t>(vol, 1)));

    const double i16_scalar_s = time_best_of(
        [&] { quant::qgemm_level_scalar(a_re, a_im, s_ri, z_re, z_im); },
        iters);
    const double i16_avx2_s =
        avx2 ? time_best_of(
                   [&] { quant::qgemm_level_avx2(a_re, a_im, s_ri, z_re, z_im); },
                   iters)
             : 0.0;
    const double fp32_scalar_s = time_best_of(
        [&] {
          gemm_packed_scalar(Op::kNone, cplx{1, 0}, fa, fb, cplx{0, 0}, fc, ws);
        },
        iters);
    const double fp32_soa_s =
        soa ? time_best_of(
                  [&] {
                    gemm_packed_soa(Op::kNone, cplx{1, 0}, fa, fb, cplx{0, 0},
                                    fc, ws);
                  },
                  iters)
            : 0.0;

    const double avx2_vs_soa =
        avx2 && soa ? fp32_soa_s / i16_avx2_s : 0.0;
    const std::string shape_label = std::to_string(sh.zr) + " x " +
                                    std::to_string(n) + " x " +
                                    std::to_string(k);
    table.add_row({shape_label, us(i16_scalar_s),
                   avx2 ? us(i16_avx2_s) : "n/a", us(fp32_scalar_s),
                   soa ? us(fp32_soa_s) : "n/a",
                   avx2 && soa ? ratio(avx2_vs_soa) : "n/a"});

    // MAC-equivalent rate so the int16 and float rows share one unit.
    const double flops = static_cast<double>(gemm_flops(sh.zr, n, k));
    sd::bench::report().row("kernels", {{"kernel", "int16-scalar"},
                                        {"m", static_cast<std::int64_t>(sh.zr)},
                                        {"n", static_cast<std::int64_t>(n)},
                                        {"k", static_cast<std::int64_t>(k)},
                                        {"seconds", i16_scalar_s},
                                        {"gops", flops / i16_scalar_s / 1e9}});
    if (avx2) {
      sd::bench::report().row(
          "kernels", {{"kernel", "int16-avx2"},
                      {"m", static_cast<std::int64_t>(sh.zr)},
                      {"n", static_cast<std::int64_t>(n)},
                      {"k", static_cast<std::int64_t>(k)},
                      {"seconds", i16_avx2_s},
                      {"gops", flops / i16_avx2_s / 1e9},
                      {"speedup_vs_scalar", i16_scalar_s / i16_avx2_s}});
    }
    sd::bench::report().row("kernels", {{"kernel", "fp32-scalar"},
                                        {"m", static_cast<std::int64_t>(sh.zr)},
                                        {"n", static_cast<std::int64_t>(n)},
                                        {"k", static_cast<std::int64_t>(k)},
                                        {"seconds", fp32_scalar_s},
                                        {"gops", flops / fp32_scalar_s / 1e9}});
    if (soa) {
      sd::bench::report().row(
          "kernels",
          {{"kernel", "fp32-soa"},
           {"m", static_cast<std::int64_t>(sh.zr)},
           {"n", static_cast<std::int64_t>(n)},
           {"k", static_cast<std::int64_t>(k)},
           {"seconds", fp32_soa_s},
           {"gops", flops / fp32_soa_s / 1e9},
           {"int16_avx2_speedup", avx2 ? avx2_vs_soa : 0.0}});
    }
  }

  sd::bench::print_table(table, "kernels_summary");
  std::printf("int16 operands are half the width of fp32 and one madd "
              "evaluates a whole complex MAC pair, so the AVX2 int16 kernel "
              "should clear the float SoA kernel by >= 1.5x at the largest "
              "shape (gated in CI when both kernels are available).\n");
  return 0;
}
