// Figure 8: execution time vs SNR, 15x15 MIMO, 4-QAM.
// Paper: CPU breaks the 10 ms real-time constraint at 4 dB (>30 ms) and
// recovers near 8 dB; the optimized FPGA is ~6.1x faster (5 ms at 4 dB).
#include "bench_common.hpp"

int main() {
  sd::bench::open_report("fig8_time_15x15_4qam");
  sd::bench::TimeFigureConfig cfg;
  cfg.figure = "Figure 8";
  cfg.num_antennas = 15;
  cfg.modulation = sd::Modulation::kQam4;
  cfg.default_trials = 15;
  cfg.seed = 8;
  cfg.paper_note =
      "CPU >30 ms @ 4 dB (real-time broken); FPGA-optimized 6.1x faster, "
      "decoding in 5 ms and restoring real-time operation";
  sd::bench::run_time_figure(cfg);
  return 0;
}
