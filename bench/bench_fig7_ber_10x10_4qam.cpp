// Figure 7: BER vs SNR for 10x10 MIMO with 4-QAM.
// Paper: BER below 1e-2 across the swept range (lowest SNR 4 dB). All three
// implementations (CPU, FPGA-baseline, FPGA-optimized) produce identical
// BER by construction — the hardware mimics the CPU execution exactly —
// which this bench also demonstrates by decoding the same trials on the
// simulated FPGA.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "decode/linear.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(400);
  const SystemConfig sys{10, 10, Modulation::kQam4};
  bench::open_report("fig7_ber_10x10_4qam");
  bench::print_banner("Figure 7: BER vs SNR", "10x10 MIMO, 4-QAM", trials);
  std::printf(
      "paper reports: BER < 1e-2 even at the lowest tested SNR of 4 dB.\n"
      "NOTE: under this repo's per-receive-antenna SNR definition "
      "(sigma^2 = M/snr) the same curve crosses 1e-2 near 10 dB; the axis "
      "offset is a normalization difference documented in EXPERIMENTS.md.\n\n");

  ExperimentRunner runner(sys, trials, 7);
  auto sd_cpu = make_detector(sys, DecoderSpec{});
  DecoderSpec fpga_spec;
  fpga_spec.device = TargetDevice::kFpgaOptimized;
  auto sd_fpga = make_detector(sys, fpga_spec);
  DecoderSpec mmse_spec;
  mmse_spec.strategy = Strategy::kMmse;
  auto mmse = make_detector(sys, mmse_spec);

  Table t({"SNR (dB)", "SD BER (CPU)", "SD BER (FPGA sim)", "MMSE BER",
           "SD SER", "SD FER"});
  for (double snr : {4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0}) {
    const SweepPoint p_cpu = runner.run_point(*sd_cpu, snr);
    const SweepPoint p_fpga = runner.run_point(*sd_fpga, snr);
    const SweepPoint p_mmse = runner.run_point(*mmse, snr);
    t.add_row({fmt(snr, 0), fmt_sci(p_cpu.ber), fmt_sci(p_fpga.ber),
               fmt_sci(p_mmse.ber), fmt_sci(p_cpu.ser), fmt_sci(p_cpu.fer)});
  }
  bench::print_table(t, "ber_vs_snr");
  std::printf("SD BER is identical on CPU and simulated FPGA (same exact "
              "algorithm); MMSE shows the linear-detector gap the paper's "
              "intro motivates.\n");
  return 0;
}
