// Ablation (paper §V future work): multi-PE tree partitioning. The paper
// proposes parallelizing the SD search over multiple processing entities;
// this bench runs the sub-tree-parallel decoder and reports the work
// overhead (lost pruning context) and wall-clock vs the sequential Best-FS,
// plus the effect of the split depth.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace sd;
  const usize trials = bench::trials_or(10);
  const SystemConfig sys{12, 12, Modulation::kQam4};
  bench::open_report("ablation_multipe");
  bench::print_banner("Ablation: multi-PE sub-tree parallel SD",
                      "12x12 MIMO, 4-QAM, SNR 6 dB", trials);

  ExperimentRunner runner(sys, trials, 55);
  const double snr = 6.0;

  // Baseline: the sequential *scalar* Best-FS, so the comparison isolates
  // parallelization (the multi-PE workers use the same scalar evaluation).
  DecoderSpec seq_spec;
  seq_spec.strategy = Strategy::kBestFsScalar;
  auto sequential = make_detector(sys, seq_spec);
  const SweepPoint p_seq = runner.run_point(*sequential, snr);

  Table t({"configuration", "nodes generated", "work overhead", "BER",
           "wall-clock ms", "vs sequential"});
  t.add_row({"sequential Best-FS (scalar)", fmt(p_seq.mean_nodes_generated, 0),
             "1.00x", fmt_sci(p_seq.ber), fmt(p_seq.mean_seconds * 1e3, 3),
             "1.0x"});

  for (unsigned threads : {1u, 2u, 4u}) {
    for (index_t split : {1, 2}) {
      DecoderSpec spec;
      spec.strategy = Strategy::kMultiPe;
      spec.multi_pe.num_threads = threads;
      spec.multi_pe.split_depth = split;
      auto det = make_detector(sys, spec);
      const SweepPoint p = runner.run_point(*det, snr);
      t.add_row({"multi-PE t=" + std::to_string(threads) +
                     " split=" + std::to_string(split),
                 fmt(p.mean_nodes_generated, 0),
                 fmt_factor(p.mean_nodes_generated / p_seq.mean_nodes_generated,
                            2),
                 fmt_sci(p.ber), fmt(p.mean_seconds * 1e3, 3),
                 fmt_factor(p_seq.mean_seconds / p.mean_seconds, 2)});
    }
  }
  bench::print_table(t, "multipe");
  std::printf("NOTE: this container exposes a single core, so wall-clock "
              "speedup is not expected here; the node-overhead column is the "
              "hardware-relevant result (how much pruning context sub-tree "
              "partitioning sacrifices, cf. Nikitopoulos et al. [4]).\n");
  return 0;
}
