#include "linalg/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  CVec x(8, cplx{0, 0});
  x[0] = cplx{1, 0};
  const CVec spectrum = fft(x);
  for (const cplx& v : spectrum) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(Fft, ConstantTransformsToDelta) {
  CVec x(16, cplx{1, 0});
  const CVec spectrum = fft(x);
  EXPECT_NEAR(spectrum[0].real(), 16.0f, 1e-4f);
  for (usize i = 1; i < 16; ++i) {
    EXPECT_NEAR(std::abs(spectrum[i]), 0.0f, 1e-4f);
  }
}

TEST(Fft, SingleToneLandsOnItsBin) {
  const usize n = 32;
  const usize bin = 5;
  CVec x(n);
  for (usize t = 0; t < n; ++t) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(bin * t) /
                         static_cast<double>(n);
    x[t] = cplx{static_cast<real>(std::cos(angle)),
                static_cast<real>(std::sin(angle))};
  }
  const CVec spectrum = fft(x);
  for (usize f = 0; f < n; ++f) {
    if (f == bin) {
      EXPECT_NEAR(std::abs(spectrum[f]), static_cast<real>(n), 1e-3f);
    } else {
      EXPECT_NEAR(std::abs(spectrum[f]), 0.0f, 1e-3f);
    }
  }
}

TEST(Fft, InverseRoundTrips) {
  for (usize n : {1u, 2u, 8u, 64u, 256u}) {
    const CVec x = testing::random_cvec(static_cast<index_t>(n), n);
    const CVec back = ifft(fft(x));
    EXPECT_LT(max_abs_diff(back, x), 1e-4) << "n=" << n;
  }
}

TEST(Fft, ParsevalHolds) {
  const CVec x = testing::random_cvec(128, 3);
  const CVec spectrum = fft(x);
  EXPECT_NEAR(norm2_sq(spectrum), 128.0 * norm2_sq(x),
              1e-3 * norm2_sq(spectrum));
}

TEST(Fft, LinearityHolds) {
  const CVec a = testing::random_cvec(32, 4);
  const CVec b = testing::random_cvec(32, 5);
  CVec sum(32);
  for (usize i = 0; i < 32; ++i) sum[i] = a[i] + cplx{2, 0} * b[i];
  const CVec fa = fft(a);
  const CVec fb = fft(b);
  const CVec fsum = fft(sum);
  for (usize i = 0; i < 32; ++i) {
    EXPECT_LT(std::abs(fsum[i] - (fa[i] + cplx{2, 0} * fb[i])), 1e-3f);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  CVec x(12);
  EXPECT_THROW(fft_inplace(x), invalid_argument_error);
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
}

}  // namespace
}  // namespace sd
