#include <gtest/gtest.h>

#include "decode/sphere_common.hpp"

namespace sd {
namespace {

struct Entry {
  int id;
  real pd;
};

TEST(TreeList, PopsBestOfSortedBatchFirst) {
  TreeList<Entry> list;
  // Batch sorted ascending by PD, as the decoder produces it.
  const std::vector<Entry> batch{{1, real{0.5}}, {2, real{1.0}}, {3, real{2.0}}};
  list.push_sorted_batch(std::span<const Entry>(batch));
  EXPECT_EQ(list.pop().id, 1);
  EXPECT_EQ(list.pop().id, 2);
  EXPECT_EQ(list.pop().id, 3);
  EXPECT_TRUE(list.empty());
}

TEST(TreeList, LifoAcrossBatchesGivesDepthFirstOrder) {
  // Paper Fig. 3: a batch pushed later (children of the node just expanded)
  // pops before the earlier batch's remaining siblings.
  TreeList<Entry> list;
  const std::vector<Entry> level0{{10, real{1}}, {11, real{2}}};
  list.push_sorted_batch(std::span<const Entry>(level0));
  EXPECT_EQ(list.pop().id, 10);
  const std::vector<Entry> level1{{20, real{1.5}}, {21, real{3}}};
  list.push_sorted_batch(std::span<const Entry>(level1));
  EXPECT_EQ(list.pop().id, 20);  // depth-first: child before sibling 11
  EXPECT_EQ(list.pop().id, 21);
  EXPECT_EQ(list.pop().id, 11);
}

TEST(TreeList, TracksPeakSize) {
  TreeList<Entry> list;
  const std::vector<Entry> batch{{1, real{1}}, {2, real{2}}, {3, real{3}}};
  list.push_sorted_batch(std::span<const Entry>(batch));
  (void)list.pop();
  (void)list.pop();
  list.push_sorted_batch(std::span<const Entry>(batch));
  EXPECT_EQ(list.size(), 4u);
  EXPECT_EQ(list.peak_size(), 4u);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.peak_size(), 0u);
}

TEST(TreeList, EmptyBatchIsNoOp) {
  TreeList<Entry> list;
  list.push_sorted_batch(std::span<const Entry>{});
  EXPECT_TRUE(list.empty());
}

}  // namespace
}  // namespace sd
