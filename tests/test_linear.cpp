#include "decode/linear.hpp"

#include <gtest/gtest.h>

#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial noiseless_trial(index_t m, Modulation mod, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = 300.0;  // effectively noiseless
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

TEST(ZfDetector, RecoversNoiselessTransmission) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  LinearDetector det(LinearKind::kZf, c);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t = noiseless_trial(8, Modulation::kQam16, seed);
    const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(r.indices, t.tx.indices) << "seed " << seed;
  }
}

TEST(MmseDetector, RecoversNoiselessTransmission) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  LinearDetector det(LinearKind::kMmse, c);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t = noiseless_trial(10, Modulation::kQam4, seed);
    const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(r.indices, t.tx.indices) << "seed " << seed;
  }
}

TEST(MrcDetector, RecoversSingleStream) {
  // With one transmitter there is no inter-stream interference, so MRC is
  // optimal and must recover a noiseless symbol.
  const Constellation& c = Constellation::get(Modulation::kQam16);
  LinearDetector det(LinearKind::kMrc, c);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t = noiseless_trial(1, Modulation::kQam16, seed);
    const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(r.indices, t.tx.indices);
  }
}

TEST(MrcDetector, SuffersFromInterferenceWhereZfDoesNot) {
  // The textbook ordering the paper's intro relies on: MRC ignores
  // interference and fails where ZF succeeds, even without noise.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  LinearDetector mrc(LinearKind::kMrc, c);
  LinearDetector zf(LinearKind::kZf, c);
  int mrc_errors = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Trial t = noiseless_trial(10, Modulation::kQam4, seed);
    if (mrc.decode(t.h, t.y, t.sigma2).indices != t.tx.indices) ++mrc_errors;
    EXPECT_EQ(zf.decode(t.h, t.y, t.sigma2).indices, t.tx.indices);
  }
  EXPECT_GT(mrc_errors, 0);
}

TEST(LinearDetector, ReportsResidualMetric) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  LinearDetector det(LinearKind::kZf, c);
  const Trial t = noiseless_trial(4, Modulation::kQam4, 3);
  const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
  EXPECT_LT(r.metric, 1e-6);  // noiseless + exact recovery => ~0 residual
  EXPECT_EQ(r.symbols.size(), 4u);
}

TEST(LinearDetector, NamesAreStable) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  EXPECT_EQ(LinearDetector(LinearKind::kMrc, c).name(), "MRC");
  EXPECT_EQ(LinearDetector(LinearKind::kZf, c).name(), "ZF");
  EXPECT_EQ(LinearDetector(LinearKind::kMmse, c).name(), "MMSE");
}

}  // namespace
}  // namespace sd
