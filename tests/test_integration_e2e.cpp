// End-to-end integration: small-scale versions of the paper's headline
// experiments, run through the public facade exactly as the benches do.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "fpga/fpga_detector.hpp"
#include "fpga/power.hpp"
#include "platform/cpu_model.hpp"
#include "platform/gpu_model.hpp"

namespace sd {
namespace {

TEST(EndToEnd, Fig6ShapeFpgaOptimizedBeatsBaselineAcrossSnr) {
  const SystemConfig sys{8, 8, Modulation::kQam4};
  ExperimentRunner runner(sys, 8, 1);
  DecoderSpec opt_spec;
  opt_spec.device = TargetDevice::kFpgaOptimized;
  DecoderSpec base_spec;
  base_spec.device = TargetDevice::kFpgaBaseline;
  auto opt = make_detector(sys, opt_spec);
  auto base = make_detector(sys, base_spec);
  const std::vector<double> snrs{4.0, 12.0, 20.0};
  const SweepResult r_opt = runner.sweep(*opt, snrs);
  const SweepResult r_base = runner.sweep(*base, snrs);
  for (usize i = 0; i < snrs.size(); ++i) {
    EXPECT_LT(r_opt.points[i].mean_seconds, r_base.points[i].mean_seconds)
        << "SNR " << snrs[i];
  }
  // Decode time falls with SNR for both designs.
  EXPECT_LT(r_opt.points.back().mean_seconds, r_opt.points.front().mean_seconds);
}

TEST(EndToEnd, Fig7ShapeBerBelowThresholdAndFallingWithSnr) {
  // Paper Fig. 7 runs 10x10. Under our per-receive-antenna SNR definition
  // (sigma^2 = M / snr) the exact decoder crosses the paper's 1e-2 BER line
  // at ~10 dB instead of 4 dB — a normalization offset documented in
  // EXPERIMENTS.md. The shape (monotone drop, sub-1e-2 at the crossover) is
  // what this test pins down.
  const SystemConfig sys{10, 10, Modulation::kQam4};
  ExperimentRunner runner(sys, 150, 2);
  auto det = make_detector(sys, DecoderSpec{});
  const SweepPoint p4 = runner.run_point(*det, 4.0);
  const SweepPoint p12 = runner.run_point(*det, 12.0);
  EXPECT_LT(p12.ber, 1e-2);
  EXPECT_LT(p12.ber, p4.ber);
}

TEST(EndToEnd, Fig11ShapeBestFsOrdersOfMagnitudeLessWorkThanBfs) {
  // Fig. 11's regime is low SNR, where BFS's radius-only pruning is weakest
  // relative to the Best-FS radius shrinkage.
  const SystemConfig sys{10, 10, Modulation::kQam4};
  ExperimentRunner runner(sys, 6, 3);
  auto best_fs = make_detector(sys, DecoderSpec{});
  DecoderSpec bfs_spec;
  bfs_spec.strategy = Strategy::kGemmBfs;
  auto bfs = make_detector(sys, bfs_spec);
  const double snr = 4.0;
  const SweepPoint p_best = runner.run_point(*best_fs, snr);
  const SweepPoint p_bfs = runner.run_point(*bfs, snr);
  EXPECT_GT(p_bfs.mean_nodes_generated, 3.0 * p_best.mean_nodes_generated);
  // And the modelled GPU time for BFS exceeds the simulated FPGA time for
  // Best-FS (the Fig. 11 ordering).
  DecoderSpec fpga_spec;
  fpga_spec.device = TargetDevice::kFpgaOptimized;
  auto fpga = make_detector(sys, fpga_spec);
  const SweepPoint p_fpga = runner.run_point(*fpga, snr);
  const SweepPoint p_gpu = runner.run_point(
      *bfs, snr, [](const DecodeResult& r, Detector&) {
        return gpu_decode_seconds(r.stats);
      });
  EXPECT_GT(p_gpu.mean_seconds, p_fpga.mean_seconds);
}

TEST(EndToEnd, TableIIShapeEnergyAdvantage) {
  const SystemConfig sys{8, 8, Modulation::kQam4};
  ExperimentRunner runner(sys, 6, 4);
  DecoderSpec fpga_spec;
  fpga_spec.device = TargetDevice::kFpgaOptimized;
  auto fpga = make_detector(sys, fpga_spec);
  auto cpu = make_detector(sys, DecoderSpec{});
  const SweepPoint p_fpga = runner.run_point(*fpga, 8.0);
  const SweepPoint p_cpu = runner.run_point(*cpu, 8.0);
  const double e_fpga =
      p_fpga.mean_seconds *
      fpga_power_watts(FpgaConfig::optimized_design(8, 8, Modulation::kQam4));
  const double e_cpu =
      p_cpu.mean_seconds * cpu_power_watts(8, Modulation::kQam4);
  EXPECT_LT(e_fpga, e_cpu);
}

TEST(EndToEnd, AllDetectorsAgreeOnBerOrdering) {
  // Exact decoders tie; K-Best with a narrow beam and linear detectors trail.
  const SystemConfig sys{6, 6, Modulation::kQam4};
  ExperimentRunner runner(sys, 200, 5);
  auto exact = make_detector(sys, DecoderSpec{});
  DecoderSpec kbest_spec;
  kbest_spec.strategy = Strategy::kKBest;
  kbest_spec.kbest.k = 2;
  auto kbest = make_detector(sys, kbest_spec);
  DecoderSpec zf_spec;
  zf_spec.strategy = Strategy::kZf;
  auto zf = make_detector(sys, zf_spec);
  const double snr = 6.0;
  const double ber_exact = runner.run_point(*exact, snr).ber;
  const double ber_kbest = runner.run_point(*kbest, snr).ber;
  const double ber_zf = runner.run_point(*zf, snr).ber;
  EXPECT_LE(ber_exact, ber_kbest);
  EXPECT_LT(ber_exact, ber_zf);
}

TEST(EndToEnd, AntennaScalingIncreasesWork) {
  // §IV-D: more antennas, more decode work for the same SNR.
  ExperimentRunner small(SystemConfig{6, 6, Modulation::kQam4}, 10, 6);
  ExperimentRunner large(SystemConfig{12, 12, Modulation::kQam4}, 10, 6);
  auto det6 = make_detector(SystemConfig{6, 6, Modulation::kQam4}, DecoderSpec{});
  auto det12 =
      make_detector(SystemConfig{12, 12, Modulation::kQam4}, DecoderSpec{});
  EXPECT_GT(large.run_point(*det12, 8.0).mean_nodes_generated,
            small.run_point(*det6, 8.0).mean_nodes_generated);
}

}  // namespace
}  // namespace sd
