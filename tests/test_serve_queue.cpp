// BoundedMpmcQueue: backpressure policies, close/drain semantics, and the
// no-lost-items invariant under concurrent producers and consumers (the
// property the serving runtime's frame accounting rests on).
#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace sd::serve {
namespace {

using IntQueue = BoundedMpmcQueue<int>;

TEST(QueueBasics, RejectsZeroCapacity) {
  EXPECT_THROW(IntQueue(0), invalid_argument_error);
}

TEST(QueueBasics, AccessorsReflectConfiguration) {
  IntQueue q(3, BackpressurePolicy::kReject);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_EQ(q.policy(), BackpressurePolicy::kReject);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.closed());
}

TEST(QueueBasics, FifoOrder) {
  IntQueue q(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.push(i).status, PushStatus::kAccepted);
  }
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(QueuePolicies, RejectWhenFull) {
  IntQueue q(2, BackpressurePolicy::kReject);
  EXPECT_EQ(q.push(1).status, PushStatus::kAccepted);
  EXPECT_EQ(q.push(2).status, PushStatus::kAccepted);
  const auto r = q.push(3);
  EXPECT_EQ(r.status, PushStatus::kRejected);
  EXPECT_FALSE(r.displaced.has_value());
  EXPECT_EQ(q.size(), 2u);
}

TEST(QueuePolicies, DropOldestDisplacesFront) {
  IntQueue q(2, BackpressurePolicy::kDropOldest);
  (void)q.push(1);
  (void)q.push(2);
  const auto r = q.push(3);
  EXPECT_EQ(r.status, PushStatus::kDisplacedOldest);
  ASSERT_TRUE(r.displaced.has_value());
  EXPECT_EQ(*r.displaced, 1);
  int out = -1;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);
}

TEST(QueuePolicies, BlockWaitsForSpace) {
  IntQueue q(1, BackpressurePolicy::kBlock);
  (void)q.push(1);
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2).status, PushStatus::kAccepted);
    second_accepted.store(true);
  });
  // The producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_accepted.load());
  int out = -1;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(QueueClose, PopDrainsRemainingItemsThenFails) {
  IntQueue q(4);
  (void)q.push(1);
  (void)q.push(2);
  q.close();
  EXPECT_EQ(q.push(3).status, PushStatus::kClosed);
  int out = -1;
  EXPECT_TRUE(q.pop(out));
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));
}

TEST(QueueClose, WakesBlockedProducer) {
  IntQueue q(1, BackpressurePolicy::kBlock);
  (void)q.push(1);
  std::thread producer([&] {
    EXPECT_EQ(q.push(2).status, PushStatus::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(QueueBatch, PopsUpToMaxItems) {
  IntQueue q(8);
  for (int i = 0; i < 5; ++i) (void)q.push(i);
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 3), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.pop_batch(batch, 3), 2u);
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
  q.close();
  EXPECT_EQ(q.pop_batch(batch, 3), 0u);
}

TEST(QueueBatch, ZeroMaxReturnsNothing) {
  IntQueue q(2);
  (void)q.push(1);
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 0), 0u);
  EXPECT_EQ(q.size(), 1u);
}

// The accounting property the server depends on: with concurrent producers
// and consumers, every pushed item is popped exactly once. Also the TSan
// CI job's main subject.
TEST(QueueConcurrency, NoItemLostOrDuplicated) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  IntQueue q(8, BackpressurePolicy::kBlock);

  std::vector<std::thread> threads;
  std::mutex seen_mu;
  std::vector<int> seen_count(kProducers * kPerProducer, 0);

  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<int> batch;
      while (q.pop_batch(batch, 3) > 0) {
        std::lock_guard<std::mutex> lock(seen_mu);
        for (int v : batch) ++seen_count[static_cast<usize>(v)];
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_EQ(q.push(p * kPerProducer + i).status, PushStatus::kAccepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : threads) t.join();

  for (usize i = 0; i < seen_count.size(); ++i) {
    EXPECT_EQ(seen_count[i], 1) << "item " << i;
  }
}

}  // namespace
}  // namespace sd::serve
