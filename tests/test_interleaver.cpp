#include "code/interleaver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace sd {
namespace {

TEST(Interleaver, RoundTripsBits) {
  Interleaver il(97, 5);
  std::vector<std::uint8_t> bits(97);
  for (usize i = 0; i < bits.size(); ++i) bits[i] = (i * 7 + 3) % 2;
  EXPECT_EQ(il.deinterleave(std::span<const std::uint8_t>(il.interleave(bits))),
            bits);
}

TEST(Interleaver, RoundTripsLlrs) {
  Interleaver il(64, 9);
  std::vector<std::uint8_t> order(64);
  std::iota(order.begin(), order.end(), 0);
  const auto scattered = il.interleave(order);
  std::vector<double> llrs(64);
  for (usize i = 0; i < 64; ++i) llrs[i] = static_cast<double>(scattered[i]);
  const auto restored = il.deinterleave(std::span<const double>(llrs));
  for (usize i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(restored[i], static_cast<double>(i));
  }
}

TEST(Interleaver, IsAPermutation) {
  Interleaver il(128, 2);
  std::vector<std::uint8_t> order(128);
  std::iota(order.begin(), order.end(), 0);
  auto scattered = il.interleave(order);
  std::sort(scattered.begin(), scattered.end());
  EXPECT_EQ(scattered, order);
}

TEST(Interleaver, ActuallyScatters) {
  Interleaver il(256, 3);
  std::vector<std::uint8_t> order(256);
  for (usize i = 0; i < 256; ++i) order[i] = static_cast<std::uint8_t>(i);
  const auto scattered = il.interleave(order);
  usize moved = 0;
  for (usize i = 0; i < 256; ++i) {
    if (scattered[i] != order[i]) ++moved;
  }
  EXPECT_GT(moved, 200u);
}

TEST(Interleaver, DeterministicPerSeedDistinctAcrossSeeds) {
  Interleaver a(64, 7), b(64, 7), c(64, 8);
  std::vector<std::uint8_t> bits(64, 0);
  bits[10] = 1;
  EXPECT_EQ(a.interleave(bits), b.interleave(bits));
  EXPECT_NE(a.interleave(bits), c.interleave(bits));
}

TEST(Interleaver, LengthChecked) {
  Interleaver il(16, 1);
  std::vector<std::uint8_t> wrong(15);
  EXPECT_THROW((void)il.interleave(wrong), invalid_argument_error);
  EXPECT_THROW(Interleaver(0, 1), invalid_argument_error);
}

}  // namespace
}  // namespace sd
