#include "fpga/systolic_gemm.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fpga/half.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

TEST(SystolicGemm, FunctionalEqualityWithNaiveReference) {
  SystolicGemmEngine engine(8, 4, 12);
  const CMat a = testing::random_cmat(3, 7, 1);
  const CMat b = testing::random_cmat(7, 9, 2);
  CMat c_sys(3, 9), c_ref(3, 9);
  engine.run(a, b, c_sys);
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_ref);
  EXPECT_EQ(max_abs_diff(c_sys, c_ref), 0.0);  // bitwise identical
}

TEST(SystolicGemm, CycleModelSingleTile) {
  SystolicGemmEngine engine(8, 16, 12);
  // 1 x 16 output with k=10 fits one tile: k + fill cycles.
  EXPECT_EQ(engine.cycles_for(1, 16, 10), 22u);
}

TEST(SystolicGemm, CycleModelTilesMultiply) {
  SystolicGemmEngine engine(8, 16, 12);
  // 16 rows -> 2 row tiles; 32 cols -> 2 col tiles; 4 tiles total.
  EXPECT_EQ(engine.cycles_for(16, 32, 10), 4u * 22u);
  // Partial tiles round up.
  EXPECT_EQ(engine.cycles_for(9, 17, 10), 4u * 22u);
}

TEST(SystolicGemm, SequentialMacChainModel) {
  SystolicGemmEngine baseline(1, 1, 8);
  // Baseline 1x1 mesh: one MAC per cycle -> m*n*k + fill.
  EXPECT_EQ(baseline.cycles_for(1, 4, 10), 48u);
  EXPECT_EQ(baseline.cycles_for(2, 3, 5), 38u);
}

TEST(SystolicGemm, MeshIsDramaticallyFasterThanMacChain) {
  // The whole point of §III-C1 for the sibling-batch GEMM shape.
  SystolicGemmEngine mesh(8, 16, 12);
  SystolicGemmEngine chain(1, 1, 8);
  const auto mesh_cycles = mesh.cycles_for(1, 16, 20);
  const auto chain_cycles = chain.cycles_for(1, 16, 20);
  EXPECT_LT(mesh_cycles * 5, chain_cycles);
}

TEST(SystolicGemm, CountersAccumulateAndReset) {
  SystolicGemmEngine engine(4, 4, 4);
  const CMat a = testing::random_cmat(2, 3, 3);
  const CMat b = testing::random_cmat(3, 2, 4);
  CMat c(2, 2);
  const auto cycles = engine.run(a, b, c);
  EXPECT_EQ(engine.total_cycles(), cycles);
  EXPECT_EQ(engine.total_macs(), 12u);
  EXPECT_EQ(engine.total_calls(), 1u);
  engine.run(a, b, c);
  EXPECT_EQ(engine.total_calls(), 2u);
  EXPECT_EQ(engine.total_cycles(), 2 * cycles);
  engine.reset_counters();
  EXPECT_EQ(engine.total_cycles(), 0u);
  EXPECT_EQ(engine.total_macs(), 0u);
}

TEST(SystolicGemm, ShapeMismatchThrows) {
  SystolicGemmEngine engine(4, 4, 4);
  CMat a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(engine.run(a, b, c), invalid_argument_error);
}

TEST(SystolicGemm, RejectsDegenerateMesh) {
  EXPECT_THROW(SystolicGemmEngine(0, 4, 4), invalid_argument_error);
}

TEST(SystolicGemm, Fp16ModeRoundsResults) {
  SystolicGemmEngine fp16(4, 4, 4, Precision::kFp16);
  SystolicGemmEngine fp32(4, 4, 4, Precision::kFp32);
  const CMat a = testing::random_cmat(4, 16, 5);
  const CMat b = testing::random_cmat(16, 4, 6);
  CMat c16(4, 4), c32(4, 4);
  fp16.run(a, b, c16);
  fp32.run(a, b, c32);
  // Results differ (rounding happened) but stay within fp16 error bounds.
  EXPECT_GT(max_abs_diff(c16, c32), 0.0);
  EXPECT_LT(max_abs_diff(c16, c32), 0.15);
  // Every fp16 result component is itself representable in half.
  for (const cplx& v : c16.flat()) {
    EXPECT_EQ(round_to_half(v), v);
  }
}

TEST(SystolicGemm, Int16PacksTwoMacsPerDspCycle) {
  // DSP48E2 packing: two int16 MACs share one DSP slice per cycle, so the
  // depth term halves (odd k rounds up). Fill and tiling are unchanged.
  SystolicGemmEngine chain16(1, 1, 8, Precision::kInt16);
  SystolicGemmEngine chain32(1, 1, 8, Precision::kFp32);
  EXPECT_EQ(chain16.cycles_for(1, 4, 10), 1u * 4u * 5u + 8u);
  EXPECT_EQ(chain32.cycles_for(1, 4, 10), 1u * 4u * 10u + 8u);
  EXPECT_EQ(chain16.cycles_for(1, 1, 11), 6u + 8u);  // ceil(11 / 2) = 6

  SystolicGemmEngine mesh16(8, 16, 12, Precision::kInt16);
  SystolicGemmEngine mesh32(8, 16, 12, Precision::kFp32);
  EXPECT_EQ(mesh16.cycles_for(1, 16, 10), 5u + 12u);
  EXPECT_EQ(mesh32.cycles_for(1, 16, 10), 10u + 12u);
  // Partial tiles still round up before the halved depth applies.
  EXPECT_EQ(mesh16.cycles_for(9, 17, 10), 4u * (5u + 12u));
}

TEST(SystolicGemm, Int16FunctionalPathMatchesFp32) {
  // The cycle model charges int16 rates, but the functional arithmetic is
  // shared with fp32 (PR 8 measured the int16 fixed-point decode path
  // BER-indistinguishable at serving SNRs; the systolic engine models
  // timing, not quantization).
  SystolicGemmEngine i16(4, 4, 4, Precision::kInt16);
  const CMat a = testing::random_cmat(4, 16, 5);
  const CMat b = testing::random_cmat(16, 4, 6);
  CMat c16(4, 4), c_ref(4, 4);
  i16.run(a, b, c16);
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_ref);
  EXPECT_EQ(max_abs_diff(c16, c_ref), 0.0);
}

}  // namespace
}  // namespace sd
