#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mimo/frame.hpp"
#include "mimo/metrics.hpp"

namespace sd {
namespace {

TEST(Frame, RandomTxIsConsistent) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  GaussianSource rng(5);
  const TxVector tx = random_tx(c, 12, rng);
  ASSERT_EQ(tx.indices.size(), 12u);
  ASSERT_EQ(tx.symbols.size(), 12u);
  ASSERT_EQ(tx.bits.size(), 48u);
  for (usize i = 0; i < tx.indices.size(); ++i) {
    EXPECT_EQ(tx.symbols[i], c.point(tx.indices[i]));
    EXPECT_EQ(c.slice(tx.symbols[i]), tx.indices[i]);
  }
}

TEST(Frame, ModulateRejectsBadIndex) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  EXPECT_THROW((void)modulate(c, {0, 4}), invalid_argument_error);
}

TEST(Frame, BitsMatchPerSymbolLabels) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const TxVector tx = modulate(c, {0, 3, 1});
  std::vector<std::uint8_t> expected(2);
  for (usize i = 0; i < 3; ++i) {
    c.index_to_bits(tx.indices[i], expected);
    EXPECT_EQ(tx.bits[2 * i], expected[0]);
    EXPECT_EQ(tx.bits[2 * i + 1], expected[1]);
  }
}

TEST(Frame, HardSliceRecoversCleanSymbols) {
  const Constellation& c = Constellation::get(Modulation::kQam64);
  const TxVector tx = modulate(c, {0, 17, 63, 5});
  const auto sliced = hard_slice(c, tx.symbols);
  EXPECT_EQ(sliced, tx.indices);
}

TEST(Frame, IndicesToBitsMatchesModulate) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  const std::vector<index_t> idx{3, 0, 15, 9};
  const TxVector tx = modulate(c, idx);
  EXPECT_EQ(indices_to_bits(c, idx), tx.bits);
}

TEST(ErrorCounter, PerfectDetectionCountsNoErrors) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ErrorCounter ec(c);
  const std::vector<index_t> sent{0, 1, 2, 3};
  ec.record(sent, sent);
  EXPECT_EQ(ec.bit_errors(), 0u);
  EXPECT_EQ(ec.symbol_errors(), 0u);
  EXPECT_EQ(ec.vector_errors(), 0u);
  EXPECT_DOUBLE_EQ(ec.ber(), 0.0);
  EXPECT_EQ(ec.bits_total(), 8u);
  EXPECT_EQ(ec.symbols_total(), 4u);
  EXPECT_EQ(ec.vectors_total(), 1u);
}

TEST(ErrorCounter, CountsBitAndSymbolErrors) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ErrorCounter ec(c);
  // 4-QAM Gray labels: one axis flip = 1 bit, diagonal flip = 2 bits.
  const std::vector<index_t> sent{0, 0};
  const std::vector<index_t> detected{3, 0};  // index 3 is diagonal from 0
  ec.record(sent, detected);
  EXPECT_EQ(ec.symbol_errors(), 1u);
  EXPECT_EQ(ec.bit_errors(), 2u);
  EXPECT_EQ(ec.vector_errors(), 1u);
  EXPECT_DOUBLE_EQ(ec.ber(), 0.5);
  EXPECT_DOUBLE_EQ(ec.ser(), 0.5);
  EXPECT_DOUBLE_EQ(ec.fer(), 1.0);
}

TEST(ErrorCounter, AccumulatesAcrossRecordsAndResets) {
  const Constellation& c = Constellation::get(Modulation::kBpsk);
  ErrorCounter ec(c);
  ec.record(std::vector<index_t>{0, 1}, std::vector<index_t>{0, 1});
  ec.record(std::vector<index_t>{0, 1}, std::vector<index_t>{1, 1});
  EXPECT_EQ(ec.bit_errors(), 1u);
  EXPECT_EQ(ec.bits_total(), 4u);
  EXPECT_EQ(ec.vectors_total(), 2u);
  EXPECT_EQ(ec.vector_errors(), 1u);
  ec.reset();
  EXPECT_EQ(ec.bits_total(), 0u);
  EXPECT_DOUBLE_EQ(ec.ber(), 0.0);
}

TEST(ErrorCounter, LengthMismatchThrows) {
  const Constellation& c = Constellation::get(Modulation::kBpsk);
  ErrorCounter ec(c);
  EXPECT_THROW(ec.record(std::vector<index_t>{0}, std::vector<index_t>{0, 1}),
               invalid_argument_error);
}

}  // namespace
}  // namespace sd
