#include "core/spec_parse.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sd {
namespace {

TEST(SpecParse, PlainNames) {
  EXPECT_EQ(parse_decoder_spec("sphere").strategy, Strategy::kBestFsGemm);
  EXPECT_EQ(parse_decoder_spec("bestfs").strategy, Strategy::kBestFsGemm);
  EXPECT_EQ(parse_decoder_spec("sphere-scalar").strategy,
            Strategy::kBestFsScalar);
  EXPECT_EQ(parse_decoder_spec("dfs").strategy, Strategy::kDfs);
  EXPECT_EQ(parse_decoder_spec("geosphere").strategy, Strategy::kDfs);
  EXPECT_EQ(parse_decoder_spec("bfs").strategy, Strategy::kGemmBfs);
  EXPECT_EQ(parse_decoder_spec("ml").strategy, Strategy::kMl);
  EXPECT_EQ(parse_decoder_spec("zf").strategy, Strategy::kZf);
  EXPECT_EQ(parse_decoder_spec("mmse").strategy, Strategy::kMmse);
  EXPECT_EQ(parse_decoder_spec("mrc").strategy, Strategy::kMrc);
  EXPECT_EQ(parse_decoder_spec("kbest").strategy, Strategy::kKBest);
  EXPECT_EQ(parse_decoder_spec("fsd").strategy, Strategy::kFsd);
  EXPECT_EQ(parse_decoder_spec("multipe").strategy, Strategy::kMultiPe);
  EXPECT_EQ(parse_decoder_spec("mmse-neumann").strategy,
            Strategy::kMmseNeumann);
}

TEST(SpecParse, Devices) {
  EXPECT_EQ(parse_decoder_spec("sphere").device, TargetDevice::kCpu);
  EXPECT_EQ(parse_decoder_spec("sphere@cpu").device, TargetDevice::kCpu);
  EXPECT_EQ(parse_decoder_spec("sphere@fpga").device,
            TargetDevice::kFpgaOptimized);
  EXPECT_EQ(parse_decoder_spec("sphere@fpga-opt").device,
            TargetDevice::kFpgaOptimized);
  EXPECT_EQ(parse_decoder_spec("sphere@fpga-base").device,
            TargetDevice::kFpgaBaseline);
}

TEST(SpecParse, Options) {
  const DecoderSpec kbest = parse_decoder_spec("kbest:k=48");
  EXPECT_EQ(kbest.kbest.k, 48u);

  const DecoderSpec fsd = parse_decoder_spec("fsd:levels=2");
  EXPECT_EQ(fsd.fsd.full_levels, 2);

  const DecoderSpec mp = parse_decoder_spec("multipe:threads=4,split=2");
  EXPECT_EQ(mp.multi_pe.num_threads, 4u);
  EXPECT_EQ(mp.multi_pe.split_depth, 2);

  const DecoderSpec sorted = parse_decoder_spec("sphere:sorted");
  EXPECT_TRUE(sorted.sd.sorted_qr);

  const DecoderSpec budget = parse_decoder_spec("sphere:max-nodes=5000");
  EXPECT_EQ(budget.sd.max_nodes, 5000u);

  const DecoderSpec fp16 = parse_decoder_spec("sphere@fpga:fp16");
  EXPECT_EQ(fp16.fpga_precision, Precision::kFp16);

  const DecoderSpec bfs = parse_decoder_spec("bfs:frontier=1024");
  EXPECT_EQ(bfs.bfs.max_frontier, 1024u);

  const DecoderSpec i16 = parse_decoder_spec("sphere@fpga:int16");
  EXPECT_EQ(i16.fpga_precision, Precision::kInt16);

  const DecoderSpec neumann = parse_decoder_spec("mmse-neumann:k=2,tol=0.5");
  EXPECT_EQ(neumann.mmse_neumann.k, 2u);
  EXPECT_DOUBLE_EQ(neumann.mmse_neumann.residual_tol, 0.5);

  const DecoderSpec scalar = parse_decoder_spec("sphere:scalar");
  EXPECT_EQ(scalar.strategy, Strategy::kBestFsScalar);

  const DecoderSpec alpha = parse_decoder_spec("sphere:alpha=2");
  EXPECT_EQ(alpha.sd.radius_policy, RadiusPolicy::kNoiseScaled);
}

TEST(SpecParse, QuantPrecisionOption) {
  EXPECT_FALSE(parse_decoder_spec("bfs").bfs.quantized);
  EXPECT_TRUE(parse_decoder_spec("bfs:precision=int16").bfs.quantized);
  EXPECT_FALSE(parse_decoder_spec("bfs:precision=fp32").bfs.quantized);
  EXPECT_FALSE(parse_decoder_spec("bfs:precision=float").bfs.quantized);
  const DecoderSpec combo =
      parse_decoder_spec("bfs:precision=int16,frontier=512");
  EXPECT_TRUE(combo.bfs.quantized);
  EXPECT_EQ(combo.bfs.max_frontier, 512u);
  // precision is a bfs-only option in the spec grammar...
  EXPECT_THROW((void)parse_decoder_spec("sphere:precision=int16"),
               invalid_argument_error);
  EXPECT_THROW((void)parse_decoder_spec("bfs:precision=int8"),
               invalid_argument_error);
}

TEST(SpecParse, QuantApplyPrecisionHelper) {
  // ...and apply_precision is the --precision flag's path to the same state.
  DecoderSpec bfs = parse_decoder_spec("bfs");
  apply_precision(bfs, "int16");
  EXPECT_TRUE(bfs.bfs.quantized);
  EXPECT_EQ(decoder_precision_name(bfs), "int16");
  apply_precision(bfs, "fp32");
  EXPECT_FALSE(bfs.bfs.quantized);
  EXPECT_EQ(decoder_precision_name(bfs), "fp32");

  DecoderSpec sphere = parse_decoder_spec("sphere");
  EXPECT_THROW(apply_precision(sphere, "int16"), invalid_argument_error);
  EXPECT_THROW(apply_precision(sphere, "bf16"), invalid_argument_error);
  apply_precision(sphere, "fp32");  // always a valid no-op
  EXPECT_EQ(decoder_precision_name(sphere), "fp32");

  const SystemConfig sys{4, 4, Modulation::kQam4};
  auto det = make_detector(sys, parse_decoder_spec("bfs:precision=int16"));
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->name(), "SD-GEMM-BFS-i16");
}

TEST(SpecParse, CombinedDeviceAndOptions) {
  const DecoderSpec spec =
      parse_decoder_spec("sphere@fpga:sorted,max-nodes=100,fp16");
  EXPECT_EQ(spec.device, TargetDevice::kFpgaOptimized);
  EXPECT_TRUE(spec.sd.sorted_qr);
  EXPECT_EQ(spec.sd.max_nodes, 100u);
  EXPECT_EQ(spec.fpga_precision, Precision::kFp16);
}

TEST(SpecParse, BuildsWorkingDetectors) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  for (const char* text : {"sphere", "sphere@fpga", "zf", "kbest:k=8",
                           "fsd:levels=1", "mmse-neumann:k=3"}) {
    auto det = make_detector(sys, parse_decoder_spec(text));
    EXPECT_NE(det, nullptr) << text;
  }
}

TEST(SpecParse, Rejections) {
  EXPECT_THROW((void)parse_decoder_spec(""), invalid_argument_error);
  EXPECT_THROW((void)parse_decoder_spec("turbo"), invalid_argument_error);
  EXPECT_THROW((void)parse_decoder_spec("sphere@gpu"), invalid_argument_error);
  EXPECT_THROW((void)parse_decoder_spec("sphere:bogus"), invalid_argument_error);
  EXPECT_THROW((void)parse_decoder_spec("zf:k=4"), invalid_argument_error);
  EXPECT_THROW((void)parse_decoder_spec("kbest:k=abc"), invalid_argument_error);
}

TEST(SpecParse, HelpMentionsEveryFamily) {
  const std::string help(decoder_spec_help());
  for (const char* token : {"sphere", "dfs", "bfs", "zf", "mmse", "kbest",
                            "fsd", "multipe", "mmse-neumann", "int16",
                            "@fpga"}) {
    EXPECT_NE(help.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace sd
