// Per-cell sharding and admission control: shard isolation (independent prep
// caches and metrics for identical channel content), deterministic merge of
// per-shard snapshots, and the shed-before-miss decision logic.
#include "net/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "core/spec_parse.hpp"
#include "mimo/scenario.hpp"
#include "net/admission.hpp"
#include "obs/counters.hpp"

namespace sd::net {
namespace {

constexpr index_t kM = 6;

SystemConfig test_system() { return {kM, kM, Modulation::kQam4}; }

std::vector<Trial> make_trials(usize n, std::uint64_t seed = 42) {
  ScenarioConfig sc;
  sc.num_tx = kM;
  sc.num_rx = kM;
  sc.seed = seed;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  for (usize i = 0; i < n; ++i) trials.push_back(scenario.next());
  return trials;
}

serve::FrameRequest make_frame(std::uint64_t id, const ChannelHandle& h,
                               const Trial& t) {
  serve::FrameRequest f;
  f.id = id;
  f.channel = h;
  f.y = t.y;
  f.sigma2 = t.sigma2;
  return f;
}

// --- merge_latency ---

TEST(MergeLatency, EmptySideIsIdentity) {
  serve::LatencySummary a;
  a.count = 10;
  a.mean_s = 2.0;
  a.p99_s = 5.0;
  const serve::LatencySummary l = merge_latency(a, {});
  EXPECT_EQ(l.count, 10u);
  EXPECT_DOUBLE_EQ(l.mean_s, 2.0);
  const serve::LatencySummary r = merge_latency({}, a);
  EXPECT_EQ(r.count, 10u);
  EXPECT_DOUBLE_EQ(r.p99_s, 5.0);
}

TEST(MergeLatency, CountWeightedMeanAndConservativeQuantiles) {
  serve::LatencySummary a, b;
  a.count = 30;
  a.mean_s = 1.0;
  a.p50_s = 0.9;
  a.p95_s = 2.0;
  a.p99_s = 3.0;
  a.max_s = 4.0;
  b.count = 10;
  b.mean_s = 5.0;
  b.p50_s = 4.5;
  b.p95_s = 1.0;
  b.p99_s = 6.0;
  b.max_s = 7.0;
  const serve::LatencySummary m = merge_latency(a, b);
  EXPECT_EQ(m.count, 40u);
  EXPECT_DOUBLE_EQ(m.mean_s, 2.0);  // (30*1 + 10*5) / 40 — exact
  EXPECT_DOUBLE_EQ(m.p50_s, 4.5);   // quantiles: per-shard max (upper bound)
  EXPECT_DOUBLE_EQ(m.p95_s, 2.0);
  EXPECT_DOUBLE_EQ(m.p99_s, 6.0);
  EXPECT_DOUBLE_EQ(m.max_s, 7.0);
}

TEST(MergeLatency, MergeIsCommutativeAndDeterministic) {
  serve::LatencySummary a, b;
  a.count = 7;
  a.mean_s = 0.3;
  b.count = 13;
  b.mean_s = 0.11;
  const serve::LatencySummary ab = merge_latency(a, b);
  const serve::LatencySummary ba = merge_latency(b, a);
  EXPECT_DOUBLE_EQ(ab.mean_s, ba.mean_s);
  EXPECT_EQ(ab.count, ba.count);
}

// --- ShardRouter ---

TEST(ShardRouter, DeterministicModuloRouting) {
  const ShardRouter router(3);
  for (std::uint32_t cell = 0; cell < 30; ++cell) {
    EXPECT_EQ(router.route(cell), cell % 3);
    EXPECT_EQ(router.route(cell), router.route(cell));  // stable
  }
}

// --- AdmissionController ---

struct AdmissionFixture {
  /// A real dispatcher (via a DetectionServer) prices the tiers; the server
  /// itself sees no traffic in the unit tests.
  explicit AdmissionFixture(AdmissionOptions opts, const char* spec = "sphere")
      : server(test_system(), parse_decoder_spec(spec),
               [] {
                 serve::ServerOptions so;
                 so.num_workers = 2;
                 return so;
               }(),
               nullptr),
        controller(opts, server.dispatcher()) {}

  [[nodiscard]] double predicted(serve::DecodeTier tier, const Trial& t) {
    const dispatch::FrameFeatures f = dispatch::FrameFeatures::extract(
        t.h, t.sigma2, Constellation::get(Modulation::kQam4).order());
    double best = std::numeric_limits<double>::infinity();
    auto& cost = server.dispatcher().cost_model();
    for (usize b = 0; b < server.dispatcher().backend_count(); ++b)
      best = std::min(best,
                      cost.predict(f, static_cast<int>(b), tier).seconds);
    return best;
  }

  serve::DetectionServer server;
  AdmissionController controller;
};

TEST(Admission, DisabledModeAdmitsEverythingAtPrimary) {
  AdmissionOptions opts;
  opts.enabled = false;
  AdmissionFixture fx(opts);
  const Trial t = make_trials(1)[0];
  for (int i = 0; i < 5; ++i) {
    const AdmitDecision d =
        fx.controller.decide(t.h, t.sigma2, 1e-12, QosClass::kHard);
    EXPECT_EQ(d.action, AdmitAction::kAdmit);
    EXPECT_EQ(d.tier, serve::DecodeTier::kPrimary);
  }
  const AdmissionStats s = fx.controller.stats();
  EXPECT_EQ(s.considered, 5u);
  EXPECT_EQ(s.admitted, 5u);
  EXPECT_EQ(s.shed, 0u);
}

TEST(Admission, ImpossibleBudgetIsShed) {
  AdmissionFixture fx(AdmissionOptions{});
  const Trial t = make_trials(1)[0];
  // No tier decodes in a femtosecond; shed-before-miss refuses at the door.
  const AdmitDecision d =
      fx.controller.decide(t.h, t.sigma2, 1e-15, QosClass::kHard);
  EXPECT_EQ(d.action, AdmitAction::kShed);
  const AdmissionStats s = fx.controller.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.shed_by_class[static_cast<usize>(QosClass::kHard)], 1u);
}

TEST(Admission, GenerousBudgetAdmitsAtPrimary) {
  AdmissionFixture fx(AdmissionOptions{});
  const Trial t = make_trials(1)[0];
  const AdmitDecision d =
      fx.controller.decide(t.h, t.sigma2, 10.0, QosClass::kSoft);
  EXPECT_EQ(d.action, AdmitAction::kAdmit);
  EXPECT_EQ(d.tier, serve::DecodeTier::kPrimary);
  EXPECT_GT(d.predicted_s, 0.0);
}

TEST(Admission, TightBudgetDegradesBelowPrimary) {
  AdmissionFixture fx(AdmissionOptions{});
  const Trial t = make_trials(1)[0];
  const double primary = fx.predicted(serve::DecodeTier::kPrimary, t);
  const double linear = fx.predicted(serve::DecodeTier::kLinear, t);
  ASSERT_GT(primary, linear) << "cost model must price the ladder downward";
  // A budget between the linear and primary predictions: admissible, but not
  // at the primary tier.
  const double budget = (primary + linear) / 2.0;
  const AdmitDecision d =
      fx.controller.decide(t.h, t.sigma2, budget, QosClass::kHard);
  EXPECT_EQ(d.action, AdmitAction::kAdmit);
  EXPECT_NE(d.tier, serve::DecodeTier::kPrimary);
  const AdmissionStats s = fx.controller.stats();
  EXPECT_EQ(s.degraded_kbest + s.degraded_linear, 1u);
}

TEST(Admission, ClassDefaultBudgetsApplyWhenFrameCarriesNone) {
  AdmissionOptions opts;
  opts.class_deadline_s = {0.020, 0.070, 0.0};
  AdmissionFixture fx(opts);
  const Trial t = make_trials(1)[0];
  const AdmitDecision hard =
      fx.controller.decide(t.h, t.sigma2, 0.0, QosClass::kHard);
  EXPECT_DOUBLE_EQ(hard.budget_s, 0.020);
  const AdmitDecision soft =
      fx.controller.decide(t.h, t.sigma2, 0.0, QosClass::kSoft);
  EXPECT_DOUBLE_EQ(soft.budget_s, 0.070);
  // Best-effort has no default: budget 0 = never shed on budget.
  const AdmitDecision be =
      fx.controller.decide(t.h, t.sigma2, 0.0, QosClass::kBestEffort);
  EXPECT_DOUBLE_EQ(be.budget_s, 0.0);
  EXPECT_EQ(be.action, AdmitAction::kAdmit);
  // An explicit frame deadline overrides the class default.
  const AdmitDecision expl =
      fx.controller.decide(t.h, t.sigma2, 0.5, QosClass::kHard);
  EXPECT_DOUBLE_EQ(expl.budget_s, 0.5);
}

TEST(Admission, NonFiniteBudgetTakesTheDeadlinelessPathAndDegrades) {
  // Regression: an infinite class default used to ride the budgeted walk,
  // where (wait + pred) * headroom <= inf admits at kPrimary no matter how
  // saturated the shard is — the saturation degrade was unreachable. A
  // non-finite budget must normalize to 0 (deadline-less) and degrade to
  // the linear tier once the estimated wait passes the saturation bound.
  AdmissionOptions opts;
  opts.ewma_alpha = 1.0;  // estimate = last observed service time, exactly
  opts.class_deadline_s = {0.010, 0.050,
                           std::numeric_limits<double>::infinity()};
  AdmissionFixture fx(opts);
  const Trial t = make_trials(1)[0];

  // Idle: deadline-less best-effort is admitted at primary, budget 0.
  const AdmitDecision idle =
      fx.controller.decide(t.h, t.sigma2, 0.0, QosClass::kBestEffort);
  EXPECT_EQ(idle.action, AdmitAction::kAdmit);
  EXPECT_EQ(idle.tier, serve::DecodeTier::kPrimary);
  EXPECT_DOUBLE_EQ(idle.budget_s, 0.0);  // inf never leaks downstream

  // Saturate: teach a 1 s service time and pile up outstanding frames until
  // the wait estimate passes saturation_wait_s.
  serve::FrameResult r;
  r.status = serve::FrameStatus::kCompleted;
  r.service_s = 1.0;
  fx.controller.on_complete(r);
  for (int i = 0; i < 8; ++i)
    (void)fx.controller.decide(t.h, t.sigma2, 100.0, QosClass::kSoft);

  const AdmitDecision d =
      fx.controller.decide(t.h, t.sigma2, 0.0, QosClass::kBestEffort);
  EXPECT_EQ(d.action, AdmitAction::kAdmit);  // deadline-less never sheds
  EXPECT_EQ(d.tier, serve::DecodeTier::kLinear)
      << "saturated best-effort must degrade, not admit at primary";
  EXPECT_DOUBLE_EQ(d.budget_s, 0.0);
  EXPECT_GT(d.est_wait_s, fx.controller.options().saturation_wait_s);

  // An explicit non-finite frame deadline normalizes the same way.
  const AdmitDecision inf_frame = fx.controller.decide(
      t.h, t.sigma2, std::numeric_limits<double>::infinity(), QosClass::kHard);
  EXPECT_DOUBLE_EQ(inf_frame.budget_s, 0.0);
  EXPECT_EQ(inf_frame.action, AdmitAction::kAdmit);
}

TEST(Admission, BudgetedWalkIgnoresTiersNoBackendCanServe) {
  // Regression: cheapest() used to take the min over ALL backends at a tier,
  // ignoring Backend::ladder() — a zf-only pool would price kKBest/kLinear
  // it can never place, and a budget met only by those phantom predictions
  // admitted frames the dispatcher then served at the wrong tier. With the
  // ladder filter an unserved tier predicts +infinity, so a budget below the
  // primary prediction sheds instead of banking on an unplaceable pair.
  AdmissionFixture fx(AdmissionOptions{}, "zf");
  const Trial t = make_trials(1)[0];

  // The pool's only backend serves nothing below its primary rung.
  const dispatch::FrameFeatures f = dispatch::FrameFeatures::extract(
      t.h, t.sigma2, Constellation::get(Modulation::kQam4).order());
  auto& disp = fx.server.dispatcher();
  const double primary =
      disp.cheapest_prediction(f, serve::DecodeTier::kPrimary);
  ASSERT_TRUE(std::isfinite(primary));
  ASSERT_GT(primary, 0.0);
  EXPECT_TRUE(
      std::isinf(disp.cheapest_prediction(f, serve::DecodeTier::kKBest)));
  EXPECT_TRUE(
      std::isinf(disp.cheapest_prediction(f, serve::DecodeTier::kLinear)));

  // Affordable at primary: admitted there.
  const AdmitDecision ok =
      fx.controller.decide(t.h, t.sigma2, primary * 4.0, QosClass::kHard);
  EXPECT_EQ(ok.action, AdmitAction::kAdmit);
  EXPECT_EQ(ok.tier, serve::DecodeTier::kPrimary);

  // Below the primary prediction nothing placeable fits: shed — the buggy
  // min over unserved tiers would have admitted at kKBest or kLinear.
  const AdmitDecision shed =
      fx.controller.decide(t.h, t.sigma2, primary * 0.25, QosClass::kHard);
  EXPECT_EQ(shed.action, AdmitAction::kShed);
}

TEST(Admission, OutstandingLedgerDrivesTheWaitEstimate) {
  AdmissionOptions opts;
  opts.ewma_alpha = 1.0;  // estimate = last observed service time, exactly
  AdmissionFixture fx(opts);
  const Trial t = make_trials(1)[0];
  EXPECT_DOUBLE_EQ(fx.controller.estimated_wait_s(), 0.0);

  // Admit one frame, observe its completion at 0.1 s service.
  (void)fx.controller.decide(t.h, t.sigma2, 10.0, QosClass::kSoft);
  serve::FrameResult r;
  r.status = serve::FrameStatus::kCompleted;
  r.service_s = 0.1;
  fx.controller.on_complete(r);
  EXPECT_DOUBLE_EQ(fx.controller.estimated_wait_s(), 0.0);  // nothing queued

  // Two admitted-but-unfinished frames now wait 2 * 0.1 / lanes.
  (void)fx.controller.decide(t.h, t.sigma2, 10.0, QosClass::kSoft);
  (void)fx.controller.decide(t.h, t.sigma2, 10.0, QosClass::kSoft);
  const double lanes = fx.server.dispatcher().total_lanes();
  EXPECT_NEAR(fx.controller.estimated_wait_s(), 2.0 * 0.1 / lanes, 1e-12);

  // Evictions settle the ledger without teaching the service estimate.
  serve::FrameResult ev;
  ev.status = serve::FrameStatus::kEvicted;
  fx.controller.on_complete(ev);
  EXPECT_NEAR(fx.controller.estimated_wait_s(), 1.0 * 0.1 / lanes, 1e-12);
}

TEST(Admission, QueueBacklogShedsFramesAGenerousBudgetWouldAdmit) {
  AdmissionOptions opts;
  opts.ewma_alpha = 1.0;
  AdmissionFixture fx(opts);
  const Trial t = make_trials(1)[0];
  const double budget = 0.050;
  EXPECT_EQ(fx.controller.decide(t.h, t.sigma2, budget, QosClass::kHard).action,
            AdmitAction::kAdmit);
  // Teach a 1 s service time, then pile up admitted frames: the wait estimate
  // alone blows any 50 ms budget at every tier.
  serve::FrameResult r;
  r.status = serve::FrameStatus::kCompleted;
  r.service_s = 1.0;
  fx.controller.on_complete(r);
  for (int i = 0; i < 8; ++i)
    (void)fx.controller.decide(t.h, t.sigma2, 100.0, QosClass::kBestEffort);
  const AdmitDecision d =
      fx.controller.decide(t.h, t.sigma2, budget, QosClass::kHard);
  EXPECT_EQ(d.action, AdmitAction::kShed);
  EXPECT_GT(d.est_wait_s, budget);
}

TEST(Admission, StatsExportUnderNetAdmissionPrefix) {
  AdmissionFixture fx(AdmissionOptions{});
  const Trial t = make_trials(1)[0];
  (void)fx.controller.decide(t.h, t.sigma2, 10.0, QosClass::kHard);
  (void)fx.controller.decide(t.h, t.sigma2, 1e-15, QosClass::kSoft);
  obs::CounterRegistry reg;
  fx.controller.stats().export_counters(reg);
  EXPECT_EQ(reg.get_uint_or("net.admission.considered"), 2u);
  EXPECT_EQ(reg.get_uint_or("net.admission.admitted"), 1u);
  EXPECT_EQ(reg.get_uint_or("net.admission.shed"), 1u);
  EXPECT_EQ(reg.get_uint_or("net.admission.hard.admitted"), 1u);
  EXPECT_EQ(reg.get_uint_or("net.admission.soft.shed"), 1u);
}

// --- ShardedServer ---

ShardedServerOptions two_shards() {
  ShardedServerOptions o;
  o.num_shards = 2;
  o.server.num_workers = 2;
  o.admission.enabled = false;  // isolation tests want every frame served
  return o;
}

// Two cells submit byte-identical channel content. With per-shard prep
// caches each shard must prepare it independently — shard 1 misses even
// though shard 0 already holds the identical factorization.
TEST(ShardedServer, IdenticalChannelContentPrepsIndependentlyPerShard) {
  constexpr usize kPerCell = 12;
  const std::vector<Trial> trials = make_trials(kPerCell);
  const ChannelHandle shared(trials[0].h);  // one content, both cells

  ShardedServer shards(test_system(), parse_decoder_spec("sphere"),
                       two_shards());
  std::uint64_t id = 0;
  for (usize i = 0; i < kPerCell; ++i) {
    for (std::uint32_t cell : {0u, 1u}) {
      EXPECT_EQ(shards.submit(cell, make_frame(id++, shared, trials[i]),
                              QosClass::kBestEffort),
                ShardSubmit::kAccepted);
    }
  }
  shards.drain();

  for (usize s = 0; s < 2; ++s) {
    const serve::ServerMetrics m = shards.shard_metrics(s);
    EXPECT_EQ(m.submitted, kPerCell) << "shard " << s;
    EXPECT_EQ(m.completed, kPerCell) << "shard " << s;
    const dispatch::DispatchStats ds = shards.shard(s).dispatcher().stats();
    // An isolated cache pays its own (at least one) miss; a shared cache
    // would give one shard a free warm start.
    EXPECT_GE(ds.prep_misses, 1u) << "shard " << s;
    EXPECT_EQ(ds.prep_hits + ds.prep_misses, kPerCell) << "shard " << s;
  }
}

TEST(ShardedServer, CompletionTapSeesTheServingShard) {
  constexpr usize kFrames = 8;
  const std::vector<Trial> trials = make_trials(kFrames);
  ShardedServer shards(test_system(), parse_decoder_spec("zf"), two_shards());

  std::mutex mu;
  std::map<std::uint64_t, usize> served_by;
  shards.set_completion_tap([&](usize shard, const serve::FrameResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    served_by[r.id] = shard;
  });
  for (usize i = 0; i < kFrames; ++i) {
    const auto cell = static_cast<std::uint32_t>(i % 4);
    const ChannelHandle h(trials[i].h);
    EXPECT_EQ(shards.submit(cell, make_frame(i, h, trials[i]),
                            QosClass::kBestEffort),
              ShardSubmit::kAccepted);
  }
  shards.drain();
  ASSERT_EQ(served_by.size(), kFrames);
  for (usize i = 0; i < kFrames; ++i) {
    EXPECT_EQ(served_by.at(i), shards.router().route(
                                   static_cast<std::uint32_t>(i % 4)));
  }
}

TEST(ShardedServer, GlobalMetricsMergeIsDeterministic) {
  constexpr usize kFrames = 20;
  const std::vector<Trial> trials = make_trials(kFrames);
  ShardedServer shards(test_system(), parse_decoder_spec("zf"), two_shards());
  for (usize i = 0; i < kFrames; ++i) {
    const ChannelHandle h(trials[i].h);
    EXPECT_EQ(shards.submit(static_cast<std::uint32_t>(i % 3),
                            make_frame(i, h, trials[i]), QosClass::kSoft),
              ShardSubmit::kAccepted);
  }
  shards.drain();

  const serve::ServerMetrics g = shards.global_metrics();
  const serve::ServerMetrics s0 = shards.shard_metrics(0);
  const serve::ServerMetrics s1 = shards.shard_metrics(1);
  EXPECT_EQ(g.submitted, s0.submitted + s1.submitted);
  EXPECT_EQ(g.submitted, kFrames);
  EXPECT_EQ(g.completed, kFrames);
  EXPECT_EQ(g.e2e.count, s0.e2e.count + s1.e2e.count);
  EXPECT_EQ(g.workers.size(), s0.workers.size() + s1.workers.size());
  EXPECT_DOUBLE_EQ(g.wall_seconds,
                   std::max(s0.wall_seconds, s1.wall_seconds));
  EXPECT_GE(g.e2e.p99_s, std::max(s0.e2e.p99_s, s1.e2e.p99_s) - 1e-12);
  // cells 0 and 2 -> shard 0; cell 1 -> shard 1: 13 vs 7 of 20.
  EXPECT_EQ(s0.submitted, 13u);
  EXPECT_EQ(s1.submitted, 7u);
  // Snapshot merging is pure: a second merge reproduces the first.
  const serve::ServerMetrics g2 = shards.global_metrics();
  EXPECT_EQ(g2.submitted, g.submitted);
  EXPECT_DOUBLE_EQ(g2.e2e.mean_s, g.e2e.mean_s);
  EXPECT_DOUBLE_EQ(g2.throughput_fps, g.throughput_fps);
}

TEST(ShardedServer, AdmissionShedIsReportedAndCostsTheShardNothing) {
  ShardedServerOptions o;
  o.num_shards = 1;
  o.server.num_workers = 1;
  o.admission.enabled = true;
  const std::vector<Trial> trials = make_trials(1);
  ShardedServer shards(test_system(), parse_decoder_spec("sphere"), o);
  const ChannelHandle h(trials[0].h);
  serve::FrameRequest f = make_frame(0, h, trials[0]);
  f.deadline_s = 1e-15;  // impossible everywhere
  AdmitDecision d;
  EXPECT_EQ(shards.submit(0, std::move(f), QosClass::kHard, &d),
            ShardSubmit::kShed);
  EXPECT_EQ(d.action, AdmitAction::kShed);
  shards.drain();
  EXPECT_EQ(shards.shard_metrics(0).submitted, 0u);
  EXPECT_EQ(shards.global_admission_stats().shed, 1u);
}

}  // namespace
}  // namespace sd::net
