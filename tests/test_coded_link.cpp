#include "code/coded_link.hpp"

#include <gtest/gtest.h>

namespace sd {
namespace {

CodedLinkConfig base_config() {
  CodedLinkConfig cfg;
  cfg.num_tx = 4;
  cfg.num_rx = 4;
  cfg.modulation = Modulation::kQam4;
  cfg.info_bits = 100;
  cfg.seed = 1;
  return cfg;
}

TEST(CodedLink, PerfectAtHighSnr) {
  CodedLink link(base_config());
  for (int t = 0; t < 5; ++t) {
    const PacketResult r = link.run_packet(30.0);
    EXPECT_TRUE(r.packet_ok);
    EXPECT_EQ(r.info_bit_errors, 0u);
  }
}

TEST(CodedLink, HardDetectionPerfectAtHighSnrToo) {
  CodedLinkConfig cfg = base_config();
  cfg.soft_detection = false;
  CodedLink link(cfg);
  for (int t = 0; t < 5; ++t) {
    EXPECT_TRUE(link.run_packet(30.0).packet_ok);
  }
}

TEST(CodedLink, CodeCorrectsResidualDetectorErrors) {
  // At mid SNR the detector makes raw symbol errors, but the outer code
  // cleans most packets: coded BER << raw BER.
  CodedLink link(base_config());
  usize raw = 0, info = 0, packets_ok = 0;
  const int packets = 20;
  for (int t = 0; t < packets; ++t) {
    const PacketResult r = link.run_packet(10.0);
    raw += r.raw_bit_errors;
    info += r.info_bit_errors;
    packets_ok += r.packet_ok ? 1 : 0;
  }
  EXPECT_GT(raw, 0u);             // detector is not error-free at 10 dB
  EXPECT_LT(info * 5, raw);       // the code removes most of them
  EXPECT_GE(packets_ok, packets / 2);
}

TEST(CodedLink, SoftDetectionBeatsHardAtModerateSnr) {
  CodedLinkConfig soft_cfg = base_config();
  CodedLinkConfig hard_cfg = base_config();
  hard_cfg.soft_detection = false;
  CodedLink soft_link(soft_cfg);
  CodedLink hard_link(hard_cfg);
  usize soft_errors = 0, hard_errors = 0;
  const int packets = 25;
  const double snr = 8.0;
  for (int t = 0; t < packets; ++t) {
    soft_errors += soft_link.run_packet(snr).info_bit_errors;
    hard_errors += hard_link.run_packet(snr).info_bit_errors;
  }
  // Soft information is worth real coding gain; allow equality only if both
  // are already error-free.
  if (hard_errors == 0) {
    EXPECT_EQ(soft_errors, 0u);
  } else {
    EXPECT_LT(soft_errors, hard_errors);
  }
}

TEST(CodedLink, TracksDetectionWork) {
  CodedLink link(base_config());
  const PacketResult r = link.run_packet(12.0);
  EXPECT_GT(r.vectors_used, 0u);
  EXPECT_GT(r.detection.nodes_expanded, 0u);
  // ceil(coded bits / bits per vector): 2*(100+6)=212 bits, 8 bits/vector.
  EXPECT_EQ(r.vectors_used, 27u);
}

TEST(CodedLink, DeterministicPerSeed) {
  CodedLink a(base_config()), b(base_config());
  const PacketResult ra = a.run_packet(9.0);
  const PacketResult rb = b.run_packet(9.0);
  EXPECT_EQ(ra.info_bit_errors, rb.info_bit_errors);
  EXPECT_EQ(ra.raw_bit_errors, rb.raw_bit_errors);
  EXPECT_EQ(ra.detection.nodes_expanded, rb.detection.nodes_expanded);
}

TEST(CodedLink, RejectsEmptyPayload) {
  CodedLinkConfig cfg = base_config();
  cfg.info_bits = 0;
  EXPECT_THROW(CodedLink{cfg}, invalid_argument_error);
}

}  // namespace
}  // namespace sd
