#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

TEST(Matrix, ConstructionZeroInitializes) {
  CMat m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12u);
  for (const cplx& v : m.flat()) {
    EXPECT_EQ(v, (cplx{0, 0}));
  }
}

TEST(Matrix, InitializerListIsRowMajor) {
  CMat m(2, 2, {cplx{1, 0}, cplx{2, 0}, cplx{3, 0}, cplx{4, 0}});
  EXPECT_EQ(m(0, 0), (cplx{1, 0}));
  EXPECT_EQ(m(0, 1), (cplx{2, 0}));
  EXPECT_EQ(m(1, 0), (cplx{3, 0}));
  EXPECT_EQ(m(1, 1), (cplx{4, 0}));
}

TEST(Matrix, InitializerListSizeChecked) {
  EXPECT_THROW(CMat(2, 2, {cplx{1, 0}}), invalid_argument_error);
}

TEST(Matrix, AtBoundsChecked) {
  CMat m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), invalid_argument_error);
  EXPECT_THROW((void)m.at(0, -1), invalid_argument_error);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowSpanViewsUnderlyingStorage) {
  CMat m(2, 3);
  m(1, 2) = cplx{5, 1};
  auto row = m.row(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2], (cplx{5, 1}));
  row[0] = cplx{7, 0};
  EXPECT_EQ(m(1, 0), (cplx{7, 0}));
}

TEST(Matrix, IdentityAndEquality) {
  const CMat i2 = CMat::identity(2);
  EXPECT_EQ(i2(0, 0), (cplx{1, 0}));
  EXPECT_EQ(i2(0, 1), (cplx{0, 0}));
  EXPECT_TRUE(i2 == CMat::identity(2));
  EXPECT_FALSE(i2 == CMat::identity(3));
}

TEST(Matrix, ResetResizesAndZeroes) {
  CMat m(2, 2, cplx{1, 1});
  m.reset(3, 1);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 1);
  for (const cplx& v : m.flat()) EXPECT_EQ(v, (cplx{0, 0}));
}

TEST(Matrix, HermitianConjugatesAndTransposes) {
  CMat m(1, 2, {cplx{1, 2}, cplx{3, -4}});
  const CMat h = hermitian(m);
  EXPECT_EQ(h.rows(), 2);
  EXPECT_EQ(h.cols(), 1);
  EXPECT_EQ(h(0, 0), (cplx{1, -2}));
  EXPECT_EQ(h(1, 0), (cplx{3, 4}));
}

TEST(Matrix, HermitianTwiceIsIdentity) {
  const CMat m = testing::random_cmat(4, 3, 99);
  EXPECT_LT(max_abs_diff(hermitian(hermitian(m)), m), 1e-12);
}

TEST(Matrix, TransposeKeepsValues) {
  CMat m(1, 2, {cplx{1, 2}, cplx{3, -4}});
  const CMat t = transpose(m);
  EXPECT_EQ(t(0, 0), (cplx{1, 2}));
  EXPECT_EQ(t(1, 0), (cplx{3, -4}));
}

TEST(Norms, VectorNorms) {
  const CVec v{cplx{3, 4}, cplx{0, 0}};
  EXPECT_DOUBLE_EQ(norm2_sq(v), 25.0);
  EXPECT_DOUBLE_EQ(norm2(std::span<const cplx>(v)), 5.0);
}

TEST(Norms, FrobeniusOfIdentity) {
  const CMat i3 = CMat::identity(3);
  EXPECT_NEAR(frobenius(i3), std::sqrt(3.0), 1e-6);
}

TEST(Norms, MaxAbsDiffShapeChecked) {
  const CMat a(2, 2), b(2, 3);
  EXPECT_THROW((void)max_abs_diff(a, b), invalid_argument_error);
}

}  // namespace
}  // namespace sd
