// Cycle-model regression pins: the simulated device times in EXPERIMENTS.md
// derive from these cycle formulas; changing any timing constant moves the
// published numbers and must be a conscious decision.
#include <gtest/gtest.h>

#include "fpga/pipeline.hpp"
#include "fpga/power.hpp"
#include "fpga/resources.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

FpgaRunReport run_fixed(const FpgaConfig& cfg, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = cfg.num_tx;
  sc.num_rx = cfg.num_rx;
  sc.modulation = cfg.modulation;
  sc.snr_db = 8.0;
  sc.seed = seed;
  Scenario s(sc);
  const Trial t = s.next();
  FpgaPipeline pipeline(cfg);
  return pipeline.run(preprocess(t.h, t.y, false),
                      Constellation::get(cfg.modulation), t.sigma2);
}

TEST(FpgaRegression, OptimizedCycleCountsPinned) {
  const FpgaRunReport r =
      run_fixed(FpgaConfig::optimized_design(8, 8, Modulation::kQam4), 42);
  // One fixed decode: the traversal and every unit's cycle charge are
  // deterministic functions of the seeded trial.
  EXPECT_EQ(r.result.stats.nodes_expanded, 69u);
  const auto& cyc = r.cycles;
  EXPECT_EQ(cyc.total(), cyc.branch + cyc.prefetch_exposed + cyc.gemm +
                             cyc.norm + cyc.sort + cyc.mst + cyc.radius);
  // Per-expansion averages stay inside the structural envelope:
  // branch = setup(4) + P(4) cycles exactly.
  EXPECT_EQ(cyc.branch, r.result.stats.nodes_expanded * 8);
  // GEMM: one tile per expansion, (k + fill) cycles with k <= 8, fill 12.
  EXPECT_GE(cyc.gemm, r.result.stats.nodes_expanded * (1 + 12));
  EXPECT_LE(cyc.gemm, r.result.stats.nodes_expanded * (8 + 12));
  // Sort: bitonic over 4 elements = 3 stages x 2 + 4 streaming = 10.
  EXPECT_EQ(cyc.sort, r.result.stats.nodes_expanded * 10);
}

TEST(FpgaRegression, BaselineChargesStalledMacChain) {
  const FpgaConfig cfg = FpgaConfig::baseline(8, 8, Modulation::kQam4);
  const FpgaRunReport r = run_fixed(cfg, 42);
  // Same traversal as optimized (seed 42): 69 expansions.
  EXPECT_EQ(r.result.stats.nodes_expanded, 69u);
  // Row evaluation on the 1x1 chain: 1*P*k*mac_ii + fill per expansion,
  // k in [1, 8], mac_ii = 6, fill = 8.
  EXPECT_GE(r.cycles.gemm, 69u * (4 * 1 * 6 + 8));
  EXPECT_LE(r.cycles.gemm, 69u * (4 * 8 * 6 + 8));
  // No prefetch overlap: every staging fetch fully exposed.
  const FpgaRunReport opt =
      run_fixed(FpgaConfig::optimized_design(8, 8, Modulation::kQam4), 42);
  EXPECT_GT(r.cycles.prefetch_exposed, opt.cycles.prefetch_exposed);
}

TEST(FpgaRegression, ClockAndTransferArithmetic) {
  const FpgaConfig cfg = FpgaConfig::optimized_design(8, 8, Modulation::kQam4);
  const FpgaRunReport r = run_fixed(cfg, 7);
  EXPECT_NEAR(r.compute_seconds,
              static_cast<double>(r.cycles.total()) / 300e6, 1e-15);
  EXPECT_NEAR(r.total_seconds, r.compute_seconds + r.transfer_seconds, 1e-15);
  // Transfer = DMA latency + staged bytes at the PCIe rate.
  EXPECT_GT(r.transfer_seconds, cfg.pcie_latency_s);
  EXPECT_LT(r.transfer_seconds, cfg.pcie_latency_s + 1e-6);
}

TEST(FpgaRegression, ResourceModelValuesPinned) {
  const auto opt4 =
      estimate_resources(FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  EXPECT_DOUBLE_EQ(opt4.luts, 65'000 + 10'000 * 4 + 600 * 32);
  EXPECT_DOUBLE_EQ(opt4.dsps, 20 + 4 * 4 + 5 * 32);
  EXPECT_DOUBLE_EQ(opt4.urams, 52 + 0.92 * 16);
  const auto base16 =
      estimate_resources(FpgaConfig::baseline(10, 10, Modulation::kQam16));
  EXPECT_DOUBLE_EQ(base16.luts, 287'000 + 22'800 * 16);
  EXPECT_DOUBLE_EQ(base16.urams, 104 + 1.84 * 256);
}

TEST(FpgaRegression, PowerModelValuesPinned) {
  EXPECT_NEAR(
      fpga_power_watts(FpgaConfig::optimized_design(10, 10, Modulation::kQam4)),
      8.03, 0.05);
  EXPECT_NEAR(
      fpga_power_watts(FpgaConfig::optimized_design(20, 20, Modulation::kQam4)),
      11.07, 0.05);
}

}  // namespace
}  // namespace sd
