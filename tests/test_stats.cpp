#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace sd {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyAndSingletonEdgeCases) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(geomean(empty), 0.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(empty), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.0);
}

TEST(Stats, GeomeanMatchesHandComputation) {
  const std::vector<double> xs{2.0, 8.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  const std::vector<double> paper{35.8, 36.8, 38.4, 41.8};
  // The paper's Table II geo-mean energy reduction: 38.1x.
  EXPECT_NEAR(geomean(paper), 38.1, 0.2);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), invalid_argument_error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileRejectsBadArgs) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -1.0), invalid_argument_error);
  EXPECT_THROW((void)percentile(xs, 101.0), invalid_argument_error);
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), invalid_argument_error);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, 1, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
}

TEST(Series, AccumulatesAndClears) {
  Series s;
  EXPECT_TRUE(s.empty());
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Stats, Ci95ShrinksWithSamples) {
  std::vector<double> few{1, 2, 3, 4};
  std::vector<double> many;
  for (int rep = 0; rep < 64; ++rep) {
    for (double x : few) many.push_back(x);
  }
  EXPECT_LT(ci95_halfwidth(many), ci95_halfwidth(few));
}

TEST(Stats, MinMaxEdgeCases) {
  const std::vector<double> empty;
  EXPECT_THROW((void)min_of(empty), invalid_argument_error);
  EXPECT_THROW((void)max_of(empty), invalid_argument_error);
  const std::vector<double> one{-2.5};
  EXPECT_DOUBLE_EQ(min_of(one), -2.5);
  EXPECT_DOUBLE_EQ(max_of(one), -2.5);
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), -2.5);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), -2.5);
}

TEST(Stats, PercentileEndpointsAreExactExtremes) {
  const std::vector<double> xs{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), min_of(xs));
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), max_of(xs));
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), invalid_argument_error);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), invalid_argument_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), invalid_argument_error);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.num_buckets(), 10u);
  EXPECT_DOUBLE_EQ(h.bucket_width(), 0.1);
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(9), 1.0);
  h.record(0.05);   // bucket 0
  h.record(0.1);    // exactly on a boundary -> upper bucket
  h.record(0.15);   // bucket 1
  h.record(0.999);  // last bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_THROW((void)h.bucket_count(10), invalid_argument_error);
}

TEST(Histogram, OutOfRangeSamplesClampButStayExactInExtremes) {
  Histogram h(0.0, 1.0, 4);
  h.record(-5.0);  // clamps into bucket 0
  h.record(99.0);  // clamps into bucket 3
  h.record(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 3u);
  // min/max/sum track the exact recorded values, not the clamped buckets.
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  EXPECT_DOUBLE_EQ(h.sum(), 94.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
}

TEST(Histogram, EmptyAndBadQuantileArgs) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_THROW((void)h.quantile(0.5), invalid_argument_error);
  EXPECT_THROW((void)h.min(), invalid_argument_error);
  EXPECT_THROW((void)h.max(), invalid_argument_error);
  h.record(0.5);
  EXPECT_THROW((void)h.quantile(-0.1), invalid_argument_error);
  EXPECT_THROW((void)h.quantile(1.1), invalid_argument_error);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);  // single sample: every quantile
}

TEST(Histogram, QuantileInterpolationTracksExactPercentile) {
  // Uniform samples: the interpolated histogram quantile must agree with
  // the exact sorted-series percentile to within one bucket width.
  Histogram h(0.0, 1.0, 100);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = (static_cast<double>(i) + 0.5) / 1000.0;
    xs.push_back(x);
    h.record(x);
  }
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_NEAR(h.quantile(q), percentile(xs, q * 100.0), h.bucket_width())
        << "q=" << q;
  }
  EXPECT_NEAR(h.mean(), mean(xs), 1e-9);
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h(0.0, 1.0, 4);
  h.record(0.3);
  h.record(7.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  h.record(0.9);
  EXPECT_DOUBLE_EQ(h.max(), 0.9);
}

}  // namespace
}  // namespace sd
