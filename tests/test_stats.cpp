#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace sd {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyAndSingletonEdgeCases) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(geomean(empty), 0.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(empty), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.0);
}

TEST(Stats, GeomeanMatchesHandComputation) {
  const std::vector<double> xs{2.0, 8.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  const std::vector<double> paper{35.8, 36.8, 38.4, 41.8};
  // The paper's Table II geo-mean energy reduction: 38.1x.
  EXPECT_NEAR(geomean(paper), 38.1, 0.2);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), invalid_argument_error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileRejectsBadArgs) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -1.0), invalid_argument_error);
  EXPECT_THROW((void)percentile(xs, 101.0), invalid_argument_error);
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), invalid_argument_error);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, 1, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
}

TEST(Series, AccumulatesAndClears) {
  Series s;
  EXPECT_TRUE(s.empty());
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Stats, Ci95ShrinksWithSamples) {
  std::vector<double> few{1, 2, 3, 4};
  std::vector<double> many;
  for (int rep = 0; rep < 64; ++rep) {
    for (double x : few) many.push_back(x);
  }
  EXPECT_LT(ci95_halfwidth(many), ci95_halfwidth(few));
}

}  // namespace
}  // namespace sd
