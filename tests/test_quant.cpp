// The fixed-point datapath's calibration and kernel contracts (DESIGN.md
// §15): the QuantSpec bounds that make int32 accumulation exact, the
// rounding/saturation semantics of the Q(f) <-> Q(2f) conversions, and the
// AVX2-vs-scalar EXACT equality of the int16 level GEMM (integer arithmetic
// has no rounding, so kernel dispatch can never change decode bits).
#include "quant/quant_gemm.hpp"
#include "quant/quant_spec.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"

namespace sd::quant {
namespace {

/// Random upper-triangular R with entries scaled by `amp`, deterministic.
CMat random_r(index_t m, real amp, std::uint64_t seed) {
  GaussianSource g(seed);
  CMat r(m, m);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      r(i, j) = j >= i ? amp * g.next_cplx(1.0) : cplx{0, 0};
    }
  }
  // A dominant diagonal like a real QR factor's.
  for (index_t i = 0; i < m; ++i) r(i, i) += cplx{2 * amp, 0};
  return r;
}

void random_i16(I16Mat& m, index_t r, index_t c, int bound,
                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  m.reshape(r, c);
  for (std::int16_t& v : m.flat()) {
    const auto span = static_cast<std::uint64_t>(2 * bound + 1);
    v = static_cast<std::int16_t>(static_cast<long>(rng() % span) - bound);
  }
}

TEST(QuantSpec, CalibrationRespectsStorageAndAccumulationBounds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const CMat r = random_r(10, real{0.9}, seed);
    const QuantSpec spec = calibrate_quant_spec(r);
    ASSERT_TRUE(spec.valid());
    EXPECT_GE(spec.frac_bits, kQuantMinFracBits);
    EXPECT_LE(spec.frac_bits, kQuantMaxFracBits);
    EXPECT_EQ(spec.scale, static_cast<real>(1u << spec.frac_bits));
    EXPECT_DOUBLE_EQ(spec.inv_scale2,
                     1.0 / (static_cast<double>(spec.scale) *
                            static_cast<double>(spec.scale)));
    // Storage: the worst stored magnitude (with the 3 target headroom bits)
    // still fits int16 without clamping.
    const double bound =
        std::max(static_cast<double>(spec.r_max_comp),
                 static_cast<double>(spec.sym_bound)) *
        8.0;
    EXPECT_LE(std::lround(bound * spec.scale), kQuantMax);
    // Accumulation: the worst level dot product stays under 2^30, so every
    // int32 partial sum is exact with a guard bit to spare.
    const double acc = static_cast<double>(spec.r_row_sum) *
                       static_cast<double>(spec.sym_bound) *
                       static_cast<double>(spec.scale) *
                       static_cast<double>(spec.scale);
    EXPECT_LT(acc, std::ldexp(1.0, 30));
  }
}

TEST(QuantSpec, LargerChannelsGetSmallerScales) {
  const CMat small = random_r(10, real{0.5}, 9);
  const CMat large = random_r(10, real{8.0}, 9);
  const int f_small = calibrate_quant_spec(small).frac_bits;
  const int f_large = calibrate_quant_spec(large).frac_bits;
  EXPECT_LE(f_large, f_small);
}

TEST(QuantSpec, QuantizeSatRoundsHalfAwayFromZeroAndClamps) {
  QuantSpec spec;
  spec.frac_bits = 4;
  spec.scale = 16;
  std::uint64_t clamps = 0;
  EXPECT_EQ(quantize_sat(real{1.0}, spec, clamps), 16);
  EXPECT_EQ(quantize_sat(real{0.03125}, spec, clamps), 1);   // 0.5 -> away
  EXPECT_EQ(quantize_sat(real{-0.03125}, spec, clamps), -1); // -0.5 -> away
  EXPECT_EQ(clamps, 0u);
  EXPECT_EQ(quantize_sat(real{1e6}, spec, clamps), kQuantMax);
  EXPECT_EQ(clamps, 1u);
  EXPECT_EQ(quantize_sat(real{-1e6}, spec, clamps), -kQuantMax);
  EXPECT_EQ(clamps, 2u);
}

TEST(QuantSpec, RequantizeRoundsHalfUpAndSaturates) {
  std::uint64_t clamps = 0;
  // f = 4: half = 8. 24 -> 2, 23 -> 1 (half rounds toward +inf), -8 -> 0.
  EXPECT_EQ(requantize_sat(24, 4, clamps), 2);
  EXPECT_EQ(requantize_sat(23, 4, clamps), 1);
  EXPECT_EQ(requantize_sat(-8, 4, clamps), 0);
  EXPECT_EQ(requantize_sat(-9, 4, clamps), -1);
  EXPECT_EQ(clamps, 0u);
  EXPECT_EQ(requantize_sat(std::int32_t{1} << 30, 4, clamps), kQuantMax);
  EXPECT_EQ(clamps, 1u);
  EXPECT_EQ(requantize_sat(-(std::int32_t{1} << 30), 4, clamps), -kQuantMax);
  EXPECT_EQ(clamps, 2u);
}

TEST(QuantSpec, PdAddSaturatesInsteadOfWrapping) {
  std::uint64_t overflows = 0;
  EXPECT_EQ(pd_add_sat(5, 7, overflows), 12);
  EXPECT_EQ(overflows, 0u);
  EXPECT_EQ(pd_add_sat(kQuantPdMax - 1, 2, overflows), kQuantPdMax);
  EXPECT_EQ(overflows, 1u);
  EXPECT_EQ(pd_add_sat(kQuantPdMax, kQuantPdMax, overflows), kQuantPdMax);
  EXPECT_EQ(overflows, 2u);
}

TEST(QuantPrep, QuantizeChannelPrepMatchesElementwiseQuantization) {
  const CMat r = random_r(8, real{0.8}, 21);
  QuantChannelPrep prep;
  quantize_channel_prep(r, prep);
  ASSERT_TRUE(prep.valid());
  ASSERT_EQ(prep.r_re.rows(), 8);
  ASSERT_EQ(prep.r_re.cols(), 8);
  std::uint64_t clamps = 0;
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      if (j < i) {
        EXPECT_EQ(prep.r_re(i, j), 0) << i << "," << j;
        EXPECT_EQ(prep.r_im(i, j), 0) << i << "," << j;
      } else {
        EXPECT_EQ(prep.r_re(i, j),
                  quantize_sat(r(i, j).real(), prep.spec, clamps));
        EXPECT_EQ(prep.r_im(i, j),
                  quantize_sat(r(i, j).imag(), prep.spec, clamps));
      }
    }
  }
  EXPECT_EQ(clamps, 0u) << "calibration must leave storage headroom";
}

/// Worst-case saturation drill: a max-amplitude alphabet against an R at the
/// storage ceiling. The calibration must still produce clamp-free storage
/// and an exactly-representable (int64 == int32) worst-case dot product.
TEST(QuantKernel, WorstCaseAmplitudesStayExact) {
  const index_t m = 10;
  CMat r(m, m);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      r(i, j) = j >= i ? cplx{4, -4} : cplx{0, 0};  // harsh, uniform R
    }
  }
  QuantChannelPrep prep;
  quantize_channel_prep(r, prep);
  ASSERT_TRUE(prep.valid());
  std::uint64_t clamps = 0;
  const std::int16_t qsym =
      quantize_sat(kQuantSymbolBound, prep.spec, clamps);
  ASSERT_EQ(clamps, 0u);

  // Every symbol at the +-bound corner, worst alignment of signs.
  I16Mat s_ri;
  s_ri.reshape(m, 2);
  for (index_t t = 0; t < m; ++t) {
    s_ri(t, 0) = qsym;
    s_ri(t, 1) = static_cast<std::int16_t>(-qsym);
  }
  I32Mat z_re, z_im;
  qgemm_level_scalar(prep.r_re, prep.r_im, s_ri, z_re, z_im);

  std::int64_t ref_re = 0, ref_im = 0;
  for (index_t t = 0; t < m; ++t) {
    const std::int64_t ar = prep.r_re(0, t), ai = prep.r_im(0, t);
    const std::int64_t br = s_ri(t, 0), bi = s_ri(t, 1);
    ref_re += br * ar + bi * -ai;
    ref_im += br * ai + bi * ar;
  }
  // int64 == int32 proves the accumulation never wrapped.
  EXPECT_EQ(ref_re, static_cast<std::int64_t>(z_re(0, 0)));
  EXPECT_EQ(ref_im, static_cast<std::int64_t>(z_im(0, 0)));
  EXPECT_LT(std::abs(ref_re), std::int64_t{1} << 31);
  EXPECT_LT(std::abs(ref_im), std::int64_t{1} << 31);
}

TEST(QuantKernel, ScalarMatchesInt64Reference) {
  const index_t zr = 3, k = 7, n = 13;
  I16Mat a_re, a_im, s_ri;
  random_i16(a_re, zr, k, 2500, 101);
  random_i16(a_im, zr, k, 2500, 102);
  random_i16(s_ri, k, 2 * n, 3000, 103);
  I32Mat z_re, z_im;
  qgemm_level_scalar(a_re, a_im, s_ri, z_re, z_im);
  for (index_t i = 0; i < zr; ++i) {
    for (index_t j = 0; j < n; ++j) {
      std::int64_t rr = 0, ri = 0;
      for (index_t t = 0; t < k; ++t) {
        const std::int64_t ar = a_re(i, t), ai = a_im(i, t);
        const std::int64_t br = s_ri(t, 2 * j), bi = s_ri(t, 2 * j + 1);
        rr += br * ar - bi * ai;
        ri += br * ai + bi * ar;
      }
      ASSERT_EQ(rr, static_cast<std::int64_t>(z_re(i, j))) << i << "," << j;
      ASSERT_EQ(ri, static_cast<std::int64_t>(z_im(i, j))) << i << "," << j;
    }
  }
}

TEST(QuantKernel, Avx2MatchesScalarExactly) {
  if (!qgemm_int16_available()) {
    GTEST_SKIP() << "AVX2 int16 kernel unavailable on this host";
  }
  struct Shape {
    index_t zr, k, n;
  };
  // Tail coverage: n % 8 in every class, k from 1 to the panel max, multi-row.
  const Shape shapes[] = {{1, 10, 4096}, {1, 1, 7},   {1, 20, 15},
                          {2, 5, 8},     {4, 9, 129}, {1, kQuantGemmMaxK, 33},
                          {3, 3, 1}};
  for (const Shape& sh : shapes) {
    I16Mat a_re, a_im, s_ri;
    const auto seed = static_cast<std::uint64_t>(500 + sh.zr + sh.k + sh.n);
    random_i16(a_re, sh.zr, sh.k, 2800, seed);
    random_i16(a_im, sh.zr, sh.k, 2800, seed + 1);
    random_i16(s_ri, sh.k, 2 * sh.n, 3200, seed + 2);
    I32Mat zs_re, zs_im, zv_re, zv_im;
    qgemm_level_scalar(a_re, a_im, s_ri, zs_re, zs_im);
    qgemm_level_avx2(a_re, a_im, s_ri, zv_re, zv_im);
    for (index_t i = 0; i < sh.zr; ++i) {
      for (index_t j = 0; j < sh.n; ++j) {
        ASSERT_EQ(zs_re(i, j), zv_re(i, j))
            << sh.zr << "x" << sh.n << "x" << sh.k << " at " << i << "," << j;
        ASSERT_EQ(zs_im(i, j), zv_im(i, j))
            << sh.zr << "x" << sh.n << "x" << sh.k << " at " << i << "," << j;
      }
    }
  }
}

TEST(QuantKernel, GroupedMatchesPerGroupSolo) {
  const index_t k = 6;
  // Three frames with distinct A blocks and column widths (complex columns).
  const index_t widths[] = {5, 8, 3};
  const index_t nblocks = 3;
  index_t total = 0;
  for (index_t w : widths) total += w;

  I16Mat a_re, a_im, s_ri;
  random_i16(a_re, 1, nblocks * k, 2000, 301);
  random_i16(a_im, 1, nblocks * k, 2000, 302);
  random_i16(s_ri, k, 2 * total, 2500, 303);

  std::vector<GemmGroup> groups;
  index_t col = 0;
  for (index_t b = 0; b < nblocks; ++b) {
    groups.push_back({b * k, col, widths[b]});
    col += widths[b];
  }

  I32Mat zg_re, zg_im;
  zg_re.reshape(1, total);
  zg_im.reshape(1, total);
  qgemm_level_grouped(a_re, a_im, k, s_ri, zg_re, zg_im, groups);

  // Reference: run each group's block through the solo kernel.
  for (usize g = 0; g < groups.size(); ++g) {
    I16Mat ga_re, ga_im, gs_ri;
    ga_re.reshape(1, k);
    ga_im.reshape(1, k);
    gs_ri.reshape(k, 2 * groups[g].cols);
    for (index_t t = 0; t < k; ++t) {
      ga_re(0, t) = a_re(0, groups[g].a_col + t);
      ga_im(0, t) = a_im(0, groups[g].a_col + t);
      for (index_t j = 0; j < 2 * groups[g].cols; ++j) {
        gs_ri(t, j) = s_ri(t, 2 * groups[g].col + j);
      }
    }
    I32Mat gz_re, gz_im;
    qgemm_level(ga_re, ga_im, gs_ri, gz_re, gz_im);
    for (index_t j = 0; j < groups[g].cols; ++j) {
      ASSERT_EQ(gz_re(0, j), zg_re(0, groups[g].col + j)) << g << "," << j;
      ASSERT_EQ(gz_im(0, j), zg_im(0, groups[g].col + j)) << g << "," << j;
    }
  }
}

TEST(QuantKernel, ShapeMismatchesThrow) {
  I16Mat a_re, a_im, s_ri;
  random_i16(a_re, 1, 4, 100, 401);
  random_i16(a_im, 1, 4, 100, 402);
  random_i16(s_ri, 5, 6, 100, 403);  // k mismatch (5 != 4)
  I32Mat z_re, z_im;
  EXPECT_THROW(qgemm_level(a_re, a_im, s_ri, z_re, z_im),
               invalid_argument_error);
  random_i16(s_ri, 4, 7, 100, 404);  // odd int16 column count
  EXPECT_THROW(qgemm_level(a_re, a_im, s_ri, z_re, z_im),
               invalid_argument_error);
}

}  // namespace
}  // namespace sd::quant
