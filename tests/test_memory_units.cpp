#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fpga/memory_bank.hpp"
#include "fpga/prefetch.hpp"
#include "fpga/sort_unit.hpp"

namespace sd {
namespace {

TEST(MemoryBank, LatencyPlusStreamingModel) {
  MemoryBank hbm("HBM", 1 << 20, 64, 8);
  // 64 bytes = 8 words, streamed 8/cycle -> 64 + 1 cycles.
  EXPECT_EQ(hbm.read(64), 65u);
  // 1 byte still needs one beat.
  EXPECT_EQ(hbm.read(1), 65u);
  // 128 words at 8/cycle -> 64 + 16.
  EXPECT_EQ(hbm.read(1024), 80u);
}

TEST(MemoryBank, SingleCycleBramModel) {
  MemoryBank bram("BRAM", 1 << 16, 1, 1);
  EXPECT_EQ(bram.read(8), 2u);  // 1 latency + 1 word
  EXPECT_EQ(bram.write(16), 3u);
}

TEST(MemoryBank, CountersTrackTraffic) {
  MemoryBank bank("b", 1024, 1, 1);
  bank.read(100);
  bank.write(50);
  bank.read(10);
  EXPECT_EQ(bank.reads(), 2u);
  EXPECT_EQ(bank.writes(), 1u);
  EXPECT_EQ(bank.bytes_read(), 110u);
  EXPECT_EQ(bank.bytes_written(), 50u);
  bank.reset_counters();
  EXPECT_EQ(bank.reads(), 0u);
  EXPECT_EQ(bank.bytes_read(), 0u);
}

TEST(MemoryBank, ResidencyHighWaterAndOverflow) {
  MemoryBank bank("b", 100, 1, 1);
  bank.reserve_bytes(60);
  bank.reserve_bytes(60);
  EXPECT_EQ(bank.bytes_in_use(), 120u);
  EXPECT_EQ(bank.peak_bytes(), 120u);
  EXPECT_TRUE(bank.overflowed());
  bank.release_bytes(80);
  EXPECT_EQ(bank.bytes_in_use(), 40u);
  EXPECT_EQ(bank.peak_bytes(), 120u);  // peak sticks
  bank.release_bytes(1000);            // saturates at zero
  EXPECT_EQ(bank.bytes_in_use(), 0u);
}

TEST(Prefetch, DisabledExposesFullLatency) {
  MemoryBank hbm("HBM", 1 << 20, 64, 8);
  PrefetchUnit unit(/*enabled=*/false, hbm);
  const auto exposed = unit.stage(64, /*overlap_budget=*/1000);
  EXPECT_EQ(exposed, 65u);
  EXPECT_EQ(unit.hidden_cycles(), 0u);
  EXPECT_EQ(unit.exposed_cycles(), 65u);
}

TEST(Prefetch, EnabledHidesBehindComputeBudget) {
  MemoryBank hbm("HBM", 1 << 20, 64, 8);
  PrefetchUnit unit(/*enabled=*/true, hbm);
  // Fetch costs 65 cycles; 100 cycles of compute fully hide it.
  EXPECT_EQ(unit.stage(64, 100), 0u);
  EXPECT_EQ(unit.hidden_cycles(), 65u);
  // Only 40 cycles of compute: 25 exposed.
  EXPECT_EQ(unit.stage(64, 40), 25u);
  EXPECT_EQ(unit.exposed_cycles(), 25u);
  EXPECT_EQ(unit.fetches(), 2u);
}

TEST(Prefetch, ZeroBudgetExposesEverything) {
  MemoryBank hbm("HBM", 1 << 20, 64, 8);
  PrefetchUnit unit(true, hbm);
  EXPECT_EQ(unit.stage(64, 0), 65u);
}

TEST(SortUnit, BitonicStageCount) {
  EXPECT_EQ(SortUnit::stages(1), 0u);
  EXPECT_EQ(SortUnit::stages(2), 1u);
  EXPECT_EQ(SortUnit::stages(4), 3u);
  EXPECT_EQ(SortUnit::stages(16), 10u);
  EXPECT_EQ(SortUnit::stages(64), 21u);
  // Non-powers round up.
  EXPECT_EQ(SortUnit::stages(5), SortUnit::stages(8));
}

TEST(SortUnit, CyclesAndCounters) {
  SortUnit unit(2);
  // 16 elements: 10 stages x 2 + 16 streaming.
  EXPECT_EQ(unit.sort(16), 36u);
  EXPECT_EQ(unit.total_cycles(), 36u);
  EXPECT_EQ(unit.batches(), 1u);
  unit.sort(4);
  EXPECT_EQ(unit.batches(), 2u);
  unit.reset_counters();
  EXPECT_EQ(unit.total_cycles(), 0u);
}

TEST(SortUnit, CostGrowsPolylogarithmically) {
  // The paper's claim that the sort is dominated by the GEMM: cost grows as
  // P log^2 P, far below P^2.
  SortUnit unit(1);
  const auto c4 = unit.sort(4);
  const auto c64 = unit.sort(64);
  EXPECT_LT(c64, 16 * c4);  // quadratic would be 256x
}

}  // namespace
}  // namespace sd
