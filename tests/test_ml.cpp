#include "decode/ml.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

TEST(MlDetector, RecoversNoiselessTransmission) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MlDetector det(c);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trial t = make_trial(5, Modulation::kQam4, 300.0, seed);
    const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(r.indices, t.tx.indices);
  }
}

TEST(MlDetector, MetricIsTrueResidual) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MlDetector det(c);
  const Trial t = make_trial(3, Modulation::kQam16, 10.0, 2);
  const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
  EXPECT_NEAR(r.metric, residual_metric(t.h, t.y, r.symbols),
              1e-3 * (1 + r.metric));
}

TEST(MlDetector, MinimizesOverExplicitEnumeration) {
  // Independent oracle: recompute the minimum with a straightforward
  // recursive enumeration and compare.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MlDetector det(c);
  const index_t m = 4;
  const Trial t = make_trial(m, Modulation::kQam4, 6.0, 5);
  const DecodeResult r = det.decode(t.h, t.y, t.sigma2);

  double best = std::numeric_limits<double>::infinity();
  std::vector<index_t> idx(static_cast<usize>(m), 0);
  std::vector<index_t> best_idx;
  CVec s(static_cast<usize>(m));
  const auto total = static_cast<std::uint64_t>(std::pow(4.0, m));
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t rem = code;
    for (index_t j = 0; j < m; ++j) {
      idx[static_cast<usize>(j)] = static_cast<index_t>(rem % 4);
      s[static_cast<usize>(j)] = c.point(idx[static_cast<usize>(j)]);
      rem /= 4;
    }
    const double metric = residual_metric(t.h, t.y, s);
    if (metric < best) {
      best = metric;
      best_idx = idx;
    }
  }
  EXPECT_EQ(r.indices, best_idx);
  EXPECT_NEAR(r.metric, best, 1e-3 * (1 + best));
}

TEST(MlDetector, CountsEveryLeaf) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MlDetector det(c);
  const Trial t = make_trial(3, Modulation::kQam4, 10.0, 7);
  const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(r.stats.leaves_reached, 64u);  // 4^3
}

TEST(MlDetector, RefusesHugeSearchSpaces) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MlDetector det(c);
  const Trial t = make_trial(10, Modulation::kQam16, 10.0, 1);
  EXPECT_THROW((void)det.decode(t.h, t.y, t.sigma2), invalid_argument_error);
}

}  // namespace
}  // namespace sd
