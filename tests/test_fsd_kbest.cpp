#include <gtest/gtest.h>

#include "common/error.hpp"
#include "decode/fsd.hpp"
#include "decode/kbest.hpp"
#include "decode/ml.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

TEST(Fsd, FullExpansionOfAllLevelsIsMl) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FsdOptions opts;
  opts.full_levels = 4;
  opts.sorted_qr = false;
  FsdDetector fsd(c, opts);
  MlDetector ml(c);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Trial t = make_trial(4, Modulation::kQam4, 6.0, seed);
    EXPECT_EQ(fsd.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(Fsd, DeterministicComplexityIndependentOfSnr) {
  // FSD's selling point: fixed node count regardless of noise.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FsdDetector fsd(c, FsdOptions{2, true});
  const Trial lo = make_trial(8, Modulation::kQam4, 2.0, 1);
  const Trial hi = make_trial(8, Modulation::kQam4, 20.0, 2);
  EXPECT_EQ(fsd.decode(lo.h, lo.y, lo.sigma2).stats.nodes_expanded,
            fsd.decode(hi.h, hi.y, hi.sigma2).stats.nodes_expanded);
  EXPECT_EQ(fsd.decode(lo.h, lo.y, lo.sigma2).stats.leaves_reached, 16u);
}

TEST(Fsd, RecoversNoiselessTransmission) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  FsdDetector fsd(c, FsdOptions{1, true});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Trial t = make_trial(8, Modulation::kQam16, 300.0, seed);
    EXPECT_EQ(fsd.decode(t.h, t.y, t.sigma2).indices, t.tx.indices);
  }
}

TEST(Fsd, RejectsBadOptions) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  EXPECT_THROW(FsdDetector(c, FsdOptions{0, true}), invalid_argument_error);
}

TEST(Fsd, MetricNeverBeatsMl) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FsdDetector fsd(c, FsdOptions{1, true});
  MlDetector ml(c);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trial t = make_trial(5, Modulation::kQam4, 6.0, seed);
    const double fsd_metric = fsd.decode(t.h, t.y, t.sigma2).metric;
    const double ml_metric = ml.decode(t.h, t.y, t.sigma2).metric;
    EXPECT_GE(fsd_metric, ml_metric - 1e-3 * (1 + ml_metric));
  }
}

TEST(KBest, FullWidthEqualsMl) {
  // K >= |Omega|^M keeps every path, which is exhaustive ML.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  KBestDetector kbest(c, KBestOptions{256, false});
  MlDetector ml(c);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Trial t = make_trial(4, Modulation::kQam4, 4.0, seed);
    EXPECT_EQ(kbest.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(KBest, WiderBeamNeverWorsensMetric) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  KBestDetector narrow(c, KBestOptions{2, true});
  KBestDetector wide(c, KBestOptions{32, true});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trial t = make_trial(6, Modulation::kQam16, 8.0, seed);
    const double m_narrow = narrow.decode(t.h, t.y, t.sigma2).metric;
    const double m_wide = wide.decode(t.h, t.y, t.sigma2).metric;
    EXPECT_LE(m_wide, m_narrow + 1e-3 * (1 + m_narrow)) << "seed " << seed;
  }
}

TEST(KBest, FrontierRespectsK) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  KBestDetector kbest(c, KBestOptions{8, true});
  const Trial t = make_trial(8, Modulation::kQam16, 8.0, 3);
  const DecodeResult r = kbest.decode(t.h, t.y, t.sigma2);
  EXPECT_LE(r.stats.peak_list_size, 8u);
  EXPECT_EQ(r.stats.leaves_reached, 8u);
}

TEST(KBest, RejectsZeroK) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  EXPECT_THROW(KBestDetector(c, KBestOptions{0, true}), invalid_argument_error);
}

TEST(KBest, K1IsSuccessiveInterferenceCancellation) {
  // K = 1 keeps only the Babai path; still a valid (if weak) detector.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  KBestDetector kbest(c, KBestOptions{1, false});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trial t = make_trial(6, Modulation::kQam4, 300.0, seed);
    EXPECT_EQ(kbest.decode(t.h, t.y, t.sigma2).indices, t.tx.indices);
  }
}

}  // namespace
}  // namespace sd
