// Coherence-block decoding must be invisible in the bits.
//
// Two equivalences underwrite the whole reuse stack:
//  (1) decode_with(preprocess(H), y) == decode_into(H, y) for every detector
//      with a cacheable channel phase — the cached factorization is the same
//      code on the same bytes, so results AND work counters match exactly.
//  (2) decode_batch_with(prep, items) == sequential decode_with() per frame —
//      the fused BFS stacks B frames' frontier columns into one level GEMM,
//      and each output column depends only on A and its own B-column, so
//      fusion cannot change any frame's numbers.
// Both are pinned bit-for-bit (EXPECT_EQ on doubles is deliberate) across
// detector variants, GEMM kernels, and batch widths.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "decode/kbest.hpp"
#include "decode/linear.hpp"
#include "decode/parallel_sd.hpp"
#include "decode/sd_gemm.hpp"
#include "decode/sd_gemm_bfs.hpp"
#include "linalg/gemm.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

constexpr index_t kM = 6;
constexpr double kSigma2 = 0.08;

void expect_bit_identical(const DecodeResult& a, const DecodeResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.indices, b.indices) << what;
  ASSERT_EQ(a.symbols.size(), b.symbols.size()) << what;
  for (usize i = 0; i < a.symbols.size(); ++i) {
    EXPECT_EQ(a.symbols[i], b.symbols[i]) << what << " symbol " << i;
  }
  EXPECT_EQ(a.metric, b.metric) << what;
  // Every work counter except the measured *_seconds wall times.
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded) << what;
  EXPECT_EQ(a.stats.nodes_generated, b.stats.nodes_generated) << what;
  EXPECT_EQ(a.stats.nodes_pruned, b.stats.nodes_pruned) << what;
  EXPECT_EQ(a.stats.leaves_reached, b.stats.leaves_reached) << what;
  EXPECT_EQ(a.stats.radius_updates, b.stats.radius_updates) << what;
  EXPECT_EQ(a.stats.gemm_calls, b.stats.gemm_calls) << what;
  EXPECT_EQ(a.stats.flops, b.stats.flops) << what;
  EXPECT_EQ(a.stats.sort_ops, b.stats.sort_ops) << what;
  EXPECT_EQ(a.stats.bytes_touched, b.stats.bytes_touched) << what;
  EXPECT_EQ(a.stats.tree_levels, b.stats.tree_levels) << what;
  EXPECT_EQ(a.stats.peak_list_size, b.stats.peak_list_size) << what;
  EXPECT_EQ(a.stats.node_budget_hit, b.stats.node_budget_hit) << what;
}

// ---- (1) cached prep == one-shot, across the detector zoo -----------------

struct NamedDetector {
  std::string label;
  std::unique_ptr<Detector> det;      // drives decode_with (warm)
  std::unique_ptr<Detector> oneshot;  // drives decode_into (fresh)
};

std::vector<NamedDetector> detector_zoo() {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  std::vector<NamedDetector> zoo;
  auto add = [&zoo](std::string label, auto make) {
    zoo.push_back({std::move(label), make(), make()});
  };
  add("bestfs", [&c] { return std::make_unique<SdGemmDetector>(c); });
  add("bestfs-sorted", [&c] {
    SdOptions o;
    o.sorted_qr = true;
    return std::make_unique<SdGemmDetector>(c, o);
  });
  add("bestfs-scalar", [&c] {
    SdOptions o;
    o.gemm_eval = false;
    return std::make_unique<SdGemmDetector>(c, o);
  });
  add("bestfs-row0", [&c] {
    SdOptions o;
    o.level_gemm = LevelGemm::kRow0;
    return std::make_unique<SdGemmDetector>(c, o);
  });
  add("bfs", [&c] { return std::make_unique<SdGemmBfsDetector>(c); });
  add("bfs-row0", [&c] {
    BfsOptions o;
    o.base.level_gemm = LevelGemm::kRow0;
    return std::make_unique<SdGemmBfsDetector>(c, o);
  });
  add("kbest", [&c] { return std::make_unique<KBestDetector>(c); });
  add("zf", [&c] {
    return std::make_unique<LinearDetector>(LinearKind::kZf, c);
  });
  add("multipe", [&c] {
    ParallelSdOptions o;
    o.num_threads = 2;
    return std::make_unique<ParallelSdDetector>(c, o);
  });
  return zoo;
}

TEST(CoherentBatch, CachedPrepMatchesOneShotForEveryDetector) {
  for (NamedDetector& nd : detector_zoo()) {
    const ChannelHandle channel(testing::random_cmat(kM, kM, 501));
    auto prep = nd.det->preprocess(channel);
    ASSERT_EQ(prep->kind, nd.det->prep_kind()) << nd.label;
    // Several frames against one prep: the warm path must keep matching.
    for (std::uint64_t f = 0; f < 4; ++f) {
      const CVec y = testing::random_cvec(kM, 600 + f);
      DecodeResult expect;
      nd.oneshot->decode_into(channel.matrix(), y, kSigma2, expect);
      DecodeResult got;
      nd.det->decode_with(*prep, y, kSigma2, got);
      expect_bit_identical(expect, got, nd.label + " frame " +
                                            std::to_string(f));
    }
  }
}

TEST(CoherentBatch, MismatchedPrepFallsBackToOneShot) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const ChannelHandle channel(testing::random_cmat(kM, kM, 71));
  const CVec y = testing::random_cvec(kM, 72);

  // A sorted-QR prep handed to a plain-QR detector must not be trusted.
  SdOptions sorted;
  sorted.sorted_qr = true;
  SdGemmDetector sorted_det(c, sorted);
  auto sorted_prep = sorted_det.preprocess(channel);
  ASSERT_EQ(sorted_prep->kind, PrepKind::kQrSorted);

  SdGemmDetector plain(c);
  DecodeResult via_mismatch;
  plain.decode_with(*sorted_prep, y, kSigma2, via_mismatch);
  SdGemmDetector fresh(c);
  DecodeResult expect;
  fresh.decode_into(channel.matrix(), y, kSigma2, expect);
  expect_bit_identical(expect, via_mismatch, "mismatched prep fallback");
}

// ---- (2) fused == sequential, across widths, variants, kernels ------------

void run_fused_equivalence(const BfsOptions& options, GemmKernel kernel,
                           const std::string& label) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const GemmKernel saved = gemm_kernel_override();
  set_gemm_kernel_override(kernel);

  const ChannelHandle channel(testing::random_cmat(kM, kM, 900));
  SdGemmBfsDetector seq_det(c, options);
  SdGemmBfsDetector fused_det(c, options);
  auto prep = seq_det.preprocess(channel);

  for (usize width : {usize{1}, usize{2}, usize{4}, usize{8}}) {
    std::vector<CVec> ys;
    for (usize i = 0; i < width; ++i) {
      ys.push_back(testing::random_cvec(kM, 1000 + 16 * width + i));
    }
    std::vector<DecodeResult> expect(width);
    for (usize i = 0; i < width; ++i) {
      seq_det.decode_with(*prep, ys[i], kSigma2, expect[i]);
    }
    std::vector<DecodeResult> got(width);
    std::vector<Detector::BatchItem> items;
    for (usize i = 0; i < width; ++i) {
      items.push_back({ys[i], kSigma2, &got[i]});
    }
    fused_det.decode_batch_with(*prep, items);
    for (usize i = 0; i < width; ++i) {
      expect_bit_identical(expect[i], got[i],
                           label + " B=" + std::to_string(width) + " frame " +
                               std::to_string(i));
    }
  }
  set_gemm_kernel_override(saved);
}

TEST(CoherentBatch, FusedBfsMatchesSequential) {
  run_fused_equivalence(BfsOptions{}, GemmKernel::kAuto, "bfs");
}

TEST(CoherentBatch, FusedBfsRow0MatchesSequential) {
  BfsOptions o;
  o.base.level_gemm = LevelGemm::kRow0;
  run_fused_equivalence(o, GemmKernel::kAuto, "bfs-row0");
}

TEST(CoherentBatch, FusedBfsSortedQrMatchesSequential) {
  BfsOptions o;
  o.base.sorted_qr = true;
  run_fused_equivalence(o, GemmKernel::kAuto, "bfs-sorted");
}

TEST(CoherentBatch, FusedBfsScalarKernelMatchesSequential) {
  run_fused_equivalence(BfsOptions{}, GemmKernel::kScalar, "bfs-scalar-kernel");
}

TEST(CoherentBatch, FusedBfsSoaKernelMatchesSequential) {
  if (!gemm_soa_available()) {
    GTEST_SKIP() << "SoA SIMD kernel not available on this host";
  }
  run_fused_equivalence(BfsOptions{}, GemmKernel::kSoa, "bfs-soa-kernel");
}

TEST(CoherentBatch, BaseBatchLoopsDecodeWith) {
  // Detectors without a fused override get the base loop — same contract.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  KBestDetector seq(c);
  KBestDetector batched(c);
  const ChannelHandle channel(testing::random_cmat(kM, kM, 1300));
  auto prep = seq.preprocess(channel);

  std::vector<CVec> ys;
  for (usize i = 0; i < 3; ++i) ys.push_back(testing::random_cvec(kM, 1400 + i));
  std::vector<DecodeResult> expect(3);
  for (usize i = 0; i < 3; ++i) seq.decode_with(*prep, ys[i], kSigma2, expect[i]);

  std::vector<DecodeResult> got(3);
  std::vector<Detector::BatchItem> items;
  for (usize i = 0; i < 3; ++i) items.push_back({ys[i], kSigma2, &got[i]});
  batched.decode_batch_with(*prep, items);
  for (usize i = 0; i < 3; ++i) {
    expect_bit_identical(expect[i], got[i], "kbest batch frame " +
                                                std::to_string(i));
  }
}

// ---- (3) wide (cross-channel) fused == sequential -------------------------

// decode_wide packs frames with DIFFERENT channels into one block-diagonal
// level GEMM; every frame must still match its own sequential decode_with()
// bit for bit, whatever the batch width or kernel.
void run_wide_equivalence(const BfsOptions& options, GemmKernel kernel,
                          const std::string& label) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const GemmKernel saved = gemm_kernel_override();
  set_gemm_kernel_override(kernel);

  SdGemmBfsDetector seq_det(c, options);
  SdGemmBfsDetector wide_det(c, options);

  for (usize width : {usize{1}, usize{2}, usize{3}, usize{5}, usize{8}}) {
    std::vector<std::shared_ptr<const PreprocessedChannel>> preps;
    std::vector<CVec> ys;
    for (usize i = 0; i < width; ++i) {
      const ChannelHandle channel(
          testing::random_cmat(kM, kM, 2000 + 31 * width + i));
      preps.push_back(seq_det.preprocess(channel));
      ys.push_back(testing::random_cvec(kM, 3000 + 16 * width + i));
    }
    std::vector<DecodeResult> expect(width);
    for (usize i = 0; i < width; ++i) {
      seq_det.decode_with(*preps[i], ys[i], kSigma2, expect[i]);
    }
    std::vector<DecodeResult> got(width);
    std::vector<Detector::WideItem> items;
    for (usize i = 0; i < width; ++i) {
      items.push_back({preps[i].get(), ys[i], kSigma2, &got[i]});
    }
    wide_det.decode_wide(items);
    for (usize i = 0; i < width; ++i) {
      expect_bit_identical(expect[i], got[i],
                           label + " B=" + std::to_string(width) + " frame " +
                               std::to_string(i));
    }
    EXPECT_EQ(wide_det.last_truncated(), seq_det.last_truncated())
        << label << " B=" << width;
  }
  set_gemm_kernel_override(saved);
}

TEST(WideBatch, WideBfsMatchesSequentialAcrossChannels) {
  run_wide_equivalence(BfsOptions{}, GemmKernel::kAuto, "wide");
}

TEST(WideBatch, WideBfsRow0MatchesSequential) {
  BfsOptions o;
  o.base.level_gemm = LevelGemm::kRow0;
  run_wide_equivalence(o, GemmKernel::kAuto, "wide-row0");
}

TEST(WideBatch, WideBfsSortedQrMatchesSequential) {
  BfsOptions o;
  o.base.sorted_qr = true;
  run_wide_equivalence(o, GemmKernel::kAuto, "wide-sorted");
}

TEST(WideBatch, WideBfsScalarKernelMatchesSequential) {
  run_wide_equivalence(BfsOptions{}, GemmKernel::kScalar, "wide-scalar-kernel");
}

TEST(WideBatch, WideBfsSoaKernelMatchesSequential) {
  if (!gemm_soa_available()) {
    GTEST_SKIP() << "SoA SIMD kernel not available on this host";
  }
  run_wide_equivalence(BfsOptions{}, GemmKernel::kSoa, "wide-soa-kernel");
}

TEST(WideBatch, SharedChannelsAndBudgetPeelStayBitIdentical) {
  // Frames sharing a channel inside a mixed batch reuse one R block of the
  // stacked operand, and a tiny frontier cap forces the operand-budget peel
  // to demote frames MID-BATCH to the sequential path — none of which may
  // change a single bit.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  BfsOptions o;
  o.max_frontier = 8;  // small enough that 8 fused frames blow the budget
  SdGemmBfsDetector seq_det(c, o);
  SdGemmBfsDetector wide_det(c, o);

  constexpr usize kWidth = 8;
  // Channel pattern A,A,B,C,C,C,D,A: shared blocks, interleaved re-use.
  const ChannelHandle a(testing::random_cmat(kM, kM, 4100));
  const ChannelHandle b(testing::random_cmat(kM, kM, 4200));
  const ChannelHandle cc(testing::random_cmat(kM, kM, 4300));
  const ChannelHandle d(testing::random_cmat(kM, kM, 4400));
  const ChannelHandle* pattern[kWidth] = {&a, &a, &b, &cc, &cc, &cc, &d, &a};

  std::vector<std::shared_ptr<const PreprocessedChannel>> preps;
  std::vector<CVec> ys;
  for (usize i = 0; i < kWidth; ++i) {
    preps.push_back(seq_det.preprocess(*pattern[i]));
    ys.push_back(testing::random_cvec(kM, 4500 + i));
  }
  std::vector<DecodeResult> expect(kWidth);
  for (usize i = 0; i < kWidth; ++i) {
    seq_det.decode_with(*preps[i], ys[i], kSigma2, expect[i]);
  }
  std::vector<DecodeResult> got(kWidth);
  std::vector<Detector::WideItem> items;
  for (usize i = 0; i < kWidth; ++i) {
    items.push_back({preps[i].get(), ys[i], kSigma2, &got[i]});
  }
  wide_det.decode_wide(items);
  for (usize i = 0; i < kWidth; ++i) {
    expect_bit_identical(expect[i], got[i],
                         "wide-peel frame " + std::to_string(i));
  }
  EXPECT_EQ(wide_det.last_truncated(), seq_det.last_truncated());
}

TEST(WideBatch, MismatchedPrepKindPeelsToSequential) {
  // A frame carrying a foreign prep kind (linear ZF) inside a wide batch is
  // peeled up front and must behave exactly like decode_with() on that prep,
  // which itself falls back to a one-shot decode.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmBfsDetector seq_det(c);
  SdGemmBfsDetector wide_det(c);
  LinearDetector zf(LinearKind::kZf, c);

  const ChannelHandle ca(testing::random_cmat(kM, kM, 5100));
  const ChannelHandle cb(testing::random_cmat(kM, kM, 5200));
  const ChannelHandle cm(testing::random_cmat(kM, kM, 5300));
  auto pa = seq_det.preprocess(ca);
  auto pb = seq_det.preprocess(cb);
  auto pm = zf.preprocess(cm);  // kZf: wrong kind for a BFS detector
  ASSERT_NE(pm->kind, seq_det.prep_kind());

  std::vector<CVec> ys;
  for (usize i = 0; i < 3; ++i) ys.push_back(testing::random_cvec(kM, 5400 + i));
  const PreprocessedChannel* preps[3] = {pa.get(), pm.get(), pb.get()};
  std::vector<DecodeResult> expect(3);
  for (usize i = 0; i < 3; ++i) {
    seq_det.decode_with(*preps[i], ys[i], kSigma2, expect[i]);
  }
  std::vector<DecodeResult> got(3);
  std::vector<Detector::WideItem> items;
  for (usize i = 0; i < 3; ++i) {
    items.push_back({preps[i], ys[i], kSigma2, &got[i]});
  }
  wide_det.decode_wide(items);
  for (usize i = 0; i < 3; ++i) {
    expect_bit_identical(expect[i], got[i],
                         "wide-mismatch frame " + std::to_string(i));
  }
}

TEST(WideBatch, DefaultDecodeWideLoopsDecodeWithAcrossZoo) {
  // Every detector accepts decode_wide(); those without a fused engine get
  // the base per-item loop — the contract the dispatcher's cross-channel
  // fusion relies on when the chosen detector is not the wide BFS.
  //
  // ParallelSd has its own fused wide engine (DESIGN.md §16): the detected
  // indices/symbols/metric stay bit-identical per frame, but its pruning
  // counters are schedule-dependent (each frame's shared radius shrinks
  // while interleaved with other frames' sub-trees), so only the result is
  // pinned for it — the per-worker-count pinning lives in
  // tests/test_parallel_sd.cpp.
  for (NamedDetector& nd : detector_zoo()) {
    std::vector<std::shared_ptr<const PreprocessedChannel>> preps;
    std::vector<CVec> ys;
    for (usize i = 0; i < 3; ++i) {
      const ChannelHandle channel(
          testing::random_cmat(kM, kM, 6000 + 10 * i));
      preps.push_back(nd.det->preprocess(channel));
      ys.push_back(testing::random_cvec(kM, 6100 + i));
    }
    std::vector<DecodeResult> expect(3);
    for (usize i = 0; i < 3; ++i) {
      nd.det->decode_with(*preps[i], ys[i], kSigma2, expect[i]);
    }
    std::vector<DecodeResult> got(3);
    std::vector<Detector::WideItem> items;
    for (usize i = 0; i < 3; ++i) {
      items.push_back({preps[i].get(), ys[i], kSigma2, &got[i]});
    }
    nd.oneshot->decode_wide(items);
    for (usize i = 0; i < 3; ++i) {
      const std::string what = nd.label + " wide frame " + std::to_string(i);
      if (nd.label == "multipe") {
        EXPECT_EQ(expect[i].indices, got[i].indices) << what;
        ASSERT_EQ(expect[i].symbols.size(), got[i].symbols.size()) << what;
        for (usize s = 0; s < expect[i].symbols.size(); ++s) {
          EXPECT_EQ(expect[i].symbols[s], got[i].symbols[s]) << what;
        }
        EXPECT_EQ(expect[i].metric, got[i].metric) << what;
        EXPECT_EQ(expect[i].stats.tree_levels, got[i].stats.tree_levels)
            << what;
        continue;
      }
      expect_bit_identical(expect[i], got[i], what);
    }
  }
}

}  // namespace
}  // namespace sd
