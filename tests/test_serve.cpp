// DetectionServer + LoadGenerator: deterministic frame accounting, result
// fidelity against single-shot decodes, deadline/fallback semantics, and
// metrics sanity. Frame contents are seeded, so counts and decode results
// must reproduce exactly across runs.
#include "serve/load_generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "core/spec_parse.hpp"
#include "decode/linear.hpp"
#include "mimo/scenario.hpp"
#include "serve/server.hpp"

namespace sd::serve {
namespace {

constexpr index_t kM = 6;
constexpr double kSnr = 8.0;
constexpr std::uint64_t kSeed = 42;

SystemConfig test_system() { return {kM, kM, Modulation::kQam4}; }

std::vector<Trial> regenerate_trials(usize n) {
  ScenarioConfig sc;
  sc.num_tx = kM;
  sc.num_rx = kM;
  sc.modulation = Modulation::kQam4;
  sc.snr_db = kSnr;
  sc.seed = kSeed;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  for (usize i = 0; i < n; ++i) trials.push_back(scenario.next());
  return trials;
}

LoadOptions closed_loop_load(usize frames, usize window) {
  LoadOptions lo;
  lo.mode = ArrivalMode::kClosedLoop;
  lo.num_frames = frames;
  lo.window = window;
  lo.snr_db = kSnr;
  lo.seed = kSeed;
  return lo;
}

TEST(ServeOptions, ParseServerOptions) {
  const ServerOptions o = parse_server_options(
      "workers=4,batch=8,queue=32,policy=drop-oldest,deadline-ms=5,no-fallback");
  EXPECT_EQ(o.num_workers, 4u);
  EXPECT_EQ(o.batch_size, 8u);
  EXPECT_EQ(o.queue_capacity, 32u);
  EXPECT_EQ(o.policy, BackpressurePolicy::kDropOldest);
  EXPECT_DOUBLE_EQ(o.default_deadline_s, 5e-3);
  EXPECT_FALSE(o.zf_fallback_on_expiry);
  // Empty text keeps the base untouched.
  EXPECT_EQ(parse_server_options("").num_workers, ServerOptions{}.num_workers);
  const ServerOptions rtt = parse_server_options("rtt-ms=2");
  EXPECT_TRUE(rtt.emulate_device_latency);
  EXPECT_DOUBLE_EQ(rtt.emulated_rtt_s, 2e-3);
  EXPECT_THROW((void)parse_server_options("warp-drive=9"),
               invalid_argument_error);
  EXPECT_THROW((void)parse_server_options("policy=psychic"),
               invalid_argument_error);
}

TEST(ServeOptions, ServerRejectsBadConfigs) {
  const auto cb = [](const FrameResult&) {};
  ServerOptions bad;
  bad.num_workers = 0;
  EXPECT_THROW(DetectionServer(test_system(), DecoderSpec{}, bad, cb),
               invalid_argument_error);
  bad = {};
  bad.batch_size = 0;
  EXPECT_THROW(DetectionServer(test_system(), DecoderSpec{}, bad, cb),
               invalid_argument_error);
  bad = {};
  bad.queue_capacity = 0;
  EXPECT_THROW(DetectionServer(test_system(), DecoderSpec{}, bad, cb),
               invalid_argument_error);
}

TEST(ServeServer, SubmitValidatesFrameShape) {
  DetectionServer srv(test_system(), DecoderSpec{}, {}, nullptr);
  FrameRequest bad;
  bad.channel = ChannelHandle(CMat(kM, kM));
  bad.y.resize(static_cast<usize>(kM) - 1);  // wrong length
  EXPECT_THROW((void)srv.submit(std::move(bad)), invalid_argument_error);
}

TEST(ServeServer, FrameCopiesShareChannelStorage) {
  // The point of ChannelHandle: a FrameRequest hop (queue push, steal,
  // batch pop) copies a shared_ptr, never the dense matrix.
  const Trial t = regenerate_trials(1).front();
  FrameRequest a;
  a.channel = ChannelHandle(t.h);
  a.y = t.y;
  a.sigma2 = t.sigma2;
  EXPECT_EQ(a.channel.use_count(), 1);

  FrameRequest b = a;       // copy: one more reference, zero H copies
  FrameRequest c = b;       // second hop
  EXPECT_TRUE(b.channel.same_storage(a.channel));
  EXPECT_TRUE(c.channel.same_storage(a.channel));
  EXPECT_EQ(&a.h(), &b.h());
  EXPECT_EQ(&a.h(), &c.h());
  EXPECT_EQ(a.channel.use_count(), 3);
  EXPECT_EQ(a.channel.fingerprint(), c.channel.fingerprint());

  FrameRequest moved = std::move(b);  // move: reference transfers
  EXPECT_TRUE(moved.channel.same_storage(a.channel));
  EXPECT_EQ(a.channel.use_count(), 3);
}

TEST(ServeCoherence, CoherentRunReusesPreprocessing) {
  // coherence=L: the load generator hands every frame of a block the SAME
  // handle, and the backend prep cache turns all but the first decode of a
  // block into hits. 32 frames at L=4 -> at most 8 distinct factorizations.
  constexpr usize kFrames = 32;
  ServerOptions so;
  so.num_workers = 2;
  so.batch_size = 2;
  so.queue_capacity = 16;
  LoadOptions lo = closed_loop_load(kFrames, 4);
  lo.coherence = 4;
  LoadGenerator gen(test_system(), DecoderSpec{}, so, lo);
  const LoadReport rep = gen.run();

  EXPECT_EQ(rep.metrics.completed, kFrames);
  EXPECT_EQ(rep.dispatch.prep_hits + rep.dispatch.prep_misses, kFrames);
  // 8 blocks; two lanes racing on a block's first frame can both miss (the
  // cache builds outside the lock), so the bound is 2 misses per block.
  EXPECT_LE(rep.dispatch.prep_misses, 2 * (kFrames / 4));
  EXPECT_GE(rep.dispatch.prep_hits, kFrames - 2 * (kFrames / 4));
  // Quality is unaffected: the cached factorization is the same code on the
  // same bytes, and the scenario's ground truth stays per-frame.
  EXPECT_GT(rep.symbols_checked, 0u);
}

TEST(ServeCoherence, CoherenceOneKeepsTheSeededStream) {
  // L=1 must reproduce the original i.i.d. trial stream byte-for-byte: the
  // scenario draws H fresh every trial through the untouched code path.
  ScenarioConfig base;
  base.num_tx = kM;
  base.num_rx = kM;
  base.modulation = Modulation::kQam4;
  base.snr_db = kSnr;
  base.seed = kSeed;
  ScenarioConfig explicit_one = base;
  explicit_one.coherence_block = 1;
  Scenario s1(base);
  Scenario s2(explicit_one);
  for (int i = 0; i < 8; ++i) {
    const Trial a = s1.next();
    const Trial b = s2.next();
    EXPECT_EQ(a.tx.indices, b.tx.indices);
    for (index_t r = 0; r < a.h.rows(); ++r) {
      for (index_t c = 0; c < a.h.cols(); ++c) {
        EXPECT_EQ(a.h(r, c), b.h(r, c));
      }
    }
    for (usize k = 0; k < a.y.size(); ++k) EXPECT_EQ(a.y[k], b.y[k]);
  }
}

TEST(ServeCoherence, CoherentBlocksShareTheRealization) {
  ScenarioConfig sc;
  sc.num_tx = kM;
  sc.num_rx = kM;
  sc.modulation = Modulation::kQam4;
  sc.snr_db = kSnr;
  sc.seed = kSeed;
  sc.coherence_block = 4;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  for (usize i = 0; i < 8; ++i) trials.push_back(scenario.next());
  // Within a block H is identical; across blocks it changes.
  for (usize i = 1; i < 4; ++i) {
    EXPECT_EQ(channel_fingerprint(trials[0].h), channel_fingerprint(trials[i].h));
  }
  EXPECT_NE(channel_fingerprint(trials[0].h), channel_fingerprint(trials[4].h));
  // Symbols still vary inside a block (only the channel is held).
  EXPECT_NE(trials[0].tx.indices, trials[1].tx.indices);
}

TEST(ServeServer, SubmitAfterDrainIsClosed) {
  DetectionServer srv(test_system(), DecoderSpec{}, {}, nullptr);
  srv.drain();
  const Trial t = regenerate_trials(1).front();
  FrameRequest f;
  f.channel = ChannelHandle(t.h);
  f.y = t.y;
  f.sigma2 = t.sigma2;
  EXPECT_EQ(srv.submit(std::move(f)), SubmitStatus::kClosed);
}

// The acceptance property: a seeded closed-loop run accounts for every
// frame, loses none, and reproduces exactly across runs.
TEST(ServeClosedLoop, ExactConservationAndReproducibility) {
  constexpr usize kFrames = 64;
  ServerOptions so;
  so.num_workers = 4;
  so.batch_size = 4;
  so.queue_capacity = 16;

  auto run_once = [&] {
    LoadGenerator gen(test_system(), DecoderSpec{}, so,
                      closed_loop_load(kFrames, 8));
    return gen.run();
  };
  const LoadReport a = run_once();
  const LoadReport b = run_once();

  for (const LoadReport* rep : {&a, &b}) {
    const ServerMetrics& m = rep->metrics;
    EXPECT_EQ(rep->submitted, kFrames);
    EXPECT_EQ(m.submitted, kFrames);
    EXPECT_EQ(m.completed, kFrames);
    EXPECT_EQ(m.expired_fallback + m.expired_dropped, 0u);
    EXPECT_EQ(m.evicted, 0u);
    EXPECT_EQ(m.rejected, 0u);
    EXPECT_EQ(m.deadline_misses, 0u);
    EXPECT_EQ(m.in_queue, 0u);
    // submitted = completed + dropped + expired; zero lost frames.
    EXPECT_EQ(m.submitted, m.accounted());
    EXPECT_EQ(m.queue_wait.count, kFrames);
    EXPECT_EQ(m.service.count, kFrames);
    EXPECT_EQ(m.e2e.count, kFrames);
  }
  // Deterministic detection: identical frames -> identical symbol errors.
  EXPECT_EQ(a.symbols_checked, b.symbols_checked);
  EXPECT_EQ(a.symbol_errors, b.symbol_errors);
}

// Served results must be byte-identical to single-shot decodes of the same
// seeded trials — per-worker detector clones are interchangeable.
TEST(ServeClosedLoop, ResultsMatchSingleShotDecodes) {
  constexpr usize kFrames = 32;
  ServerOptions so;
  so.num_workers = 3;
  so.batch_size = 2;
  so.queue_capacity = 8;

  std::mutex mu;
  std::map<std::uint64_t, DecodeResult> served;
  const CompletionFn observer = [&](const FrameResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(r.status, FrameStatus::kCompleted);
    served[r.id] = r.result;
  };
  LoadGenerator gen(test_system(), DecoderSpec{}, so,
                    closed_loop_load(kFrames, 4));
  const LoadReport rep = gen.run(observer);
  EXPECT_EQ(rep.metrics.completed, kFrames);
  ASSERT_EQ(served.size(), kFrames);

  auto reference = make_detector(test_system(), DecoderSpec{});
  const std::vector<Trial> trials = regenerate_trials(kFrames);
  for (usize i = 0; i < kFrames; ++i) {
    const DecodeResult expect = reference->decode(trials[i].h, trials[i].y,
                                                  trials[i].sigma2);
    const DecodeResult& got = served.at(i);
    EXPECT_EQ(got.indices, expect.indices) << "frame " << i;
    EXPECT_DOUBLE_EQ(got.metric, expect.metric) << "frame " << i;
  }
}

// With an unmeetably small budget every frame expires in the queue and is
// served by the ZF fallback — graceful degradation, never silence — and the
// counts reproduce across runs.
TEST(ServeDeadlines, ExpiredFramesFallBackToZf) {
  constexpr usize kFrames = 24;
  ServerOptions so;
  so.num_workers = 2;
  so.queue_capacity = 8;
  so.default_deadline_s = 1e-9;  // expires before any worker can dequeue

  std::mutex mu;
  std::map<std::uint64_t, DecodeResult> served;
  const CompletionFn observer = [&](const FrameResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(r.status, FrameStatus::kExpiredFallback);
    EXPECT_TRUE(r.deadline_missed);
    served[r.id] = r.result;
  };
  LoadGenerator gen(test_system(), DecoderSpec{}, so,
                    closed_loop_load(kFrames, 4));
  const LoadReport rep = gen.run(observer);

  const ServerMetrics& m = rep.metrics;
  EXPECT_EQ(m.expired_fallback, kFrames);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(m.deadline_misses, kFrames);
  EXPECT_EQ(m.submitted, m.accounted());

  // The fallback result is exactly what a ZF detector produces.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  LinearDetector zf(LinearKind::kZf, c);
  const std::vector<Trial> trials = regenerate_trials(kFrames);
  for (usize i = 0; i < kFrames; ++i) {
    const DecodeResult expect = zf.decode(trials[i].h, trials[i].y,
                                          trials[i].sigma2);
    EXPECT_EQ(served.at(i).indices, expect.indices) << "frame " << i;
  }
}

TEST(ServeDeadlines, NoFallbackDropsExpiredFrames) {
  constexpr usize kFrames = 12;
  ServerOptions so;
  so.num_workers = 2;
  so.queue_capacity = 8;
  so.default_deadline_s = 1e-9;
  so.zf_fallback_on_expiry = false;

  LoadGenerator gen(test_system(), DecoderSpec{}, so,
                    closed_loop_load(kFrames, 4));
  const LoadReport rep = gen.run();
  const ServerMetrics& m = rep.metrics;
  EXPECT_EQ(m.expired_dropped, kFrames);
  EXPECT_EQ(m.completed, 0u);
  EXPECT_EQ(m.submitted, m.accounted());
  // Dropped frames contribute no symbols to the quality accounting.
  EXPECT_EQ(rep.symbols_checked, 0u);
}

// Overload with load shedding: whatever mix of completions, evictions and
// rejections happens, every submitted frame is accounted for.
TEST(ServeOverload, DropOldestConservesFrames) {
  constexpr usize kFrames = 48;
  ServerOptions so;
  so.num_workers = 1;
  so.queue_capacity = 2;
  so.policy = BackpressurePolicy::kDropOldest;

  LoadOptions lo;
  lo.mode = ArrivalMode::kOpenLoop;
  lo.num_frames = kFrames;
  lo.rate_fps = 50'000.0;  // far beyond one worker's service rate
  lo.snr_db = kSnr;
  lo.seed = kSeed;
  LoadGenerator gen(test_system(), DecoderSpec{}, so, lo);
  const LoadReport rep = gen.run();
  const ServerMetrics& m = rep.metrics;
  EXPECT_EQ(m.submitted, kFrames);
  EXPECT_EQ(m.rejected, 0u);  // drop-oldest always admits the new frame
  EXPECT_EQ(m.submitted, m.accounted());
  EXPECT_EQ(m.completed + m.evicted, kFrames);
}

TEST(ServeOverload, RejectPolicyConservesFrames) {
  constexpr usize kFrames = 48;
  ServerOptions so;
  so.num_workers = 1;
  so.queue_capacity = 2;
  so.policy = BackpressurePolicy::kReject;

  LoadOptions lo;
  lo.mode = ArrivalMode::kOpenLoop;
  lo.num_frames = kFrames;
  lo.rate_fps = 50'000.0;
  lo.snr_db = kSnr;
  lo.seed = kSeed;
  LoadGenerator gen(test_system(), DecoderSpec{}, so, lo);
  const LoadReport rep = gen.run();
  const ServerMetrics& m = rep.metrics;
  EXPECT_EQ(m.submitted, kFrames);
  EXPECT_EQ(m.evicted, 0u);
  EXPECT_EQ(m.submitted, m.accounted());
  EXPECT_EQ(rep.rejected_at_submit, m.rejected);
}

TEST(ServeMetrics, SnapshotIsInternallyConsistent) {
  constexpr usize kFrames = 40;
  ServerOptions so;
  so.num_workers = 2;
  so.batch_size = 4;
  so.queue_capacity = 16;
  LoadGenerator gen(test_system(), DecoderSpec{}, so,
                    closed_loop_load(kFrames, 8));
  const ServerMetrics m = gen.run().metrics;

  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_GT(m.throughput_fps, 0.0);
  EXPECT_LE(m.e2e.p50_s, m.e2e.p95_s);
  EXPECT_LE(m.e2e.p95_s, m.e2e.p99_s);
  EXPECT_LE(m.e2e.p99_s, m.e2e.max_s + 1e-12);
  // Queue wait and service both bound e2e from below.
  EXPECT_LE(m.queue_wait.p50_s, m.e2e.max_s + 1e-12);
  ASSERT_EQ(m.workers.size(), 2u);
  std::uint64_t worker_frames = 0;
  for (const WorkerStats& w : m.workers) {
    worker_frames += w.frames;
    EXPECT_GE(w.utilization, 0.0);
    EXPECT_LE(w.utilization, 1.05);  // busy time cannot exceed wall time
    if (w.batches > 0) {
      EXPECT_GE(w.frames, w.batches);
    }
  }
  EXPECT_EQ(worker_frames, kFrames);
}

// Batching pulls multiple frames per queue pop: with one worker and a batch
// size covering the whole backlog, the number of batches must be well below
// the number of frames.
TEST(ServeBatching, BatchesAmortizeQueuePops) {
  constexpr usize kFrames = 32;
  ServerOptions so;
  so.num_workers = 1;
  so.batch_size = 8;
  so.queue_capacity = 32;
  LoadGenerator gen(test_system(), DecoderSpec{}, so,
                    closed_loop_load(kFrames, 16));
  const ServerMetrics m = gen.run().metrics;
  ASSERT_EQ(m.workers.size(), 1u);
  EXPECT_EQ(m.workers[0].frames, kFrames);
  // A 16-deep window against batch=8 must produce multi-frame pops.
  EXPECT_LT(m.workers[0].batches, kFrames);
}

// The server can front any detector the factory builds; spot-check the FPGA
// multi-pipeline model and K-Best against their single-shot results.
TEST(ServeBackends, FpgaAndKBestBackendsServeCorrectly) {
  for (const char* backend : {"sphere@fpga", "kbest:k=16"}) {
    const DecoderSpec spec = parse_decoder_spec(backend);
    constexpr usize kFrames = 8;
    ServerOptions so;
    so.num_workers = 2;
    so.queue_capacity = 8;
    std::mutex mu;
    std::map<std::uint64_t, DecodeResult> served;
    const CompletionFn observer = [&](const FrameResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      served[r.id] = r.result;
    };
    LoadGenerator gen(test_system(), spec, so, closed_loop_load(kFrames, 4));
    const LoadReport rep = gen.run(observer);
    EXPECT_EQ(rep.metrics.completed, kFrames) << backend;

    auto reference = make_detector(test_system(), spec);
    const std::vector<Trial> trials = regenerate_trials(kFrames);
    for (usize i = 0; i < kFrames; ++i) {
      const DecodeResult expect = reference->decode(trials[i].h, trials[i].y,
                                                    trials[i].sigma2);
      EXPECT_EQ(served.at(i).indices, expect.indices)
          << backend << " frame " << i;
    }
  }
}

// Device-latency emulation paces each completed frame to at least the
// charged cycle-model time — the invariant the offload soak series relies on.
TEST(ServeEmulation, ServiceTimeCoversChargedDeviceTime) {
  const DecoderSpec spec = parse_decoder_spec("sphere@fpga");
  ServerOptions so;
  so.num_workers = 2;
  so.queue_capacity = 8;
  so.emulate_device_latency = true;
  so.emulated_rtt_s = 2e-3;
  std::mutex mu;
  std::vector<FrameResult> results;
  const CompletionFn observer = [&](const FrameResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(r);
  };
  LoadGenerator gen(test_system(), spec, so, closed_loop_load(12, 4));
  const LoadReport rep = gen.run(observer);
  EXPECT_EQ(rep.metrics.completed, 12u);
  for (const FrameResult& r : results) {
    ASSERT_EQ(r.status, FrameStatus::kCompleted);
    EXPECT_GE(r.service_s,
              (r.result.stats.search_seconds + so.emulated_rtt_s) * 0.99)
        << "frame " << r.id;
  }
}

TEST(ServeLoadGen, ValidatesOptions) {
  ServerOptions so;
  so.queue_capacity = 4;
  LoadOptions lo = closed_loop_load(8, 16);  // window > capacity
  EXPECT_THROW(LoadGenerator(test_system(), DecoderSpec{}, so, lo),
               invalid_argument_error);
  lo = closed_loop_load(0, 1);  // no frames
  EXPECT_THROW(LoadGenerator(test_system(), DecoderSpec{}, so, lo),
               invalid_argument_error);
  lo = closed_loop_load(8, 2);
  lo.mode = ArrivalMode::kOpenLoop;
  lo.rate_fps = 0.0;  // open loop needs a rate
  EXPECT_THROW(LoadGenerator(test_system(), DecoderSpec{}, so, lo),
               invalid_argument_error);
}

}  // namespace
}  // namespace sd::serve
