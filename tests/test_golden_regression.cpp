// Golden regression pins: exact work counters and error counts for fixed
// seeds. These values were captured from a verified build; any change to
// the PRNG streams, the channel/noise generation, the QR, or the traversal
// logic will move them. A failure here is not necessarily a bug — but it IS
// a reproducibility break that must be a conscious, documented decision
// (every number in EXPERIMENTS.md depends on these streams).
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace sd {
namespace {

TEST(GoldenRegression, BestFs10x10Qam4) {
  const SystemConfig sys{10, 10, Modulation::kQam4};
  ExperimentRunner runner(sys, 20, 12345);
  auto det = make_detector(sys, DecoderSpec{});
  const SweepPoint p = runner.run_point(*det, 8.0);
  EXPECT_EQ(static_cast<std::uint64_t>(p.mean_nodes_expanded * 20 + 0.5), 4901u);
  EXPECT_EQ(static_cast<std::uint64_t>(p.mean_nodes_generated * 20 + 0.5),
            19604u);
  EXPECT_NEAR(p.ber, 0.0375, 1e-12);
  EXPECT_EQ(static_cast<std::uint64_t>(p.mean_flops * 20 + 0.5), 6961152u);
}

TEST(GoldenRegression, BestFs6x6Qam16) {
  const SystemConfig sys{6, 6, Modulation::kQam16};
  ExperimentRunner runner(sys, 10, 777);
  auto det = make_detector(sys, DecoderSpec{});
  const SweepPoint p = runner.run_point(*det, 10.0);
  EXPECT_EQ(static_cast<std::uint64_t>(p.mean_nodes_expanded * 10 + 0.5), 3238u);
  EXPECT_EQ(static_cast<std::uint64_t>(p.mean_nodes_generated * 10 + 0.5),
            51808u);
  EXPECT_NEAR(p.ber, 0.1958333333, 1e-9);
}

TEST(GoldenRegression, FpgaSimulated8x8) {
  const SystemConfig sys{8, 8, Modulation::kQam4};
  DecoderSpec spec;
  spec.device = TargetDevice::kFpgaOptimized;
  ExperimentRunner runner(sys, 5, 42);
  auto det = make_detector(sys, spec);
  const SweepPoint p = runner.run_point(*det, 8.0);
  EXPECT_EQ(static_cast<std::uint64_t>(p.mean_nodes_expanded * 5 + 0.5), 196u);
  // Simulated device time is cycle-exact, hence pinnable to sub-ns.
  EXPECT_NEAR(p.mean_seconds * 1e6, 19.982, 1e-3);
}

TEST(GoldenRegression, TraversalIdentityAcrossImplementations) {
  // The golden counts above must be produced identically by the scalar
  // Best-FS and the SE-DFS implementation (same traversal).
  const SystemConfig sys{10, 10, Modulation::kQam4};
  ExperimentRunner runner(sys, 20, 12345);
  DecoderSpec scalar_spec;
  scalar_spec.strategy = Strategy::kBestFsScalar;
  DecoderSpec dfs_spec;
  dfs_spec.strategy = Strategy::kDfs;
  auto scalar_det = make_detector(sys, scalar_spec);
  auto dfs_det = make_detector(sys, dfs_spec);
  const SweepPoint ps = runner.run_point(*scalar_det, 8.0);
  const SweepPoint pd = runner.run_point(*dfs_det, 8.0);
  EXPECT_EQ(static_cast<std::uint64_t>(ps.mean_nodes_expanded * 20 + 0.5),
            4901u);
  EXPECT_EQ(static_cast<std::uint64_t>(pd.mean_nodes_expanded * 20 + 0.5),
            4901u);
  EXPECT_NEAR(ps.ber, 0.0375, 1e-12);
  EXPECT_NEAR(pd.ber, 0.0375, 1e-12);
}

}  // namespace
}  // namespace sd
