#include "decode/parallel_sd.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "decode/channel_prep.hpp"
#include "decode/ml.hpp"
#include "decode/sd_dfs.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

class ThreadCounts : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadCounts, MatchesMlForAnyPoolSize) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ParallelSdOptions opts;
  opts.num_threads = GetParam();
  ParallelSdDetector par(c, opts);
  MlDetector ml(c);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trial t = make_trial(5, Modulation::kQam4, 6.0, seed);
    EXPECT_EQ(par.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "threads=" << GetParam() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Pools, ThreadCounts, ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelSd, DeeperSplitStillExact) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ParallelSdOptions opts;
  opts.num_threads = 3;
  opts.split_depth = 2;  // 16 sub-trees
  ParallelSdDetector par(c, opts);
  MlDetector ml(c);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trial t = make_trial(5, Modulation::kQam4, 8.0, seed);
    EXPECT_EQ(par.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices);
  }
}

TEST(ParallelSd, SharedRadiusPrunesAcrossSubtrees) {
  // With best-first dispatch, later sub-trees should be pruned near-wholesale
  // by the radius published from the first: total expansions must stay well
  // under a per-subtree independent bound (P subtrees x full independent SD).
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ParallelSdOptions opts;
  opts.num_threads = 1;  // deterministic schedule
  ParallelSdDetector par(c, opts);
  SdDfsDetector dfs(c);
  double par_nodes = 0, dfs_nodes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t = make_trial(8, Modulation::kQam4, 10.0, seed);
    par_nodes += static_cast<double>(
        par.decode(t.h, t.y, t.sigma2).stats.nodes_expanded);
    dfs_nodes += static_cast<double>(
        dfs.decode(t.h, t.y, t.sigma2).stats.nodes_expanded);
  }
  // Sub-tree partitioning loses some pruning context; allow 3x but not the
  // 4x full-replication blowup.
  EXPECT_LT(par_nodes, 3.0 * dfs_nodes);
}

TEST(ParallelSd, MetricMatchesResidual) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  ParallelSdOptions opts;
  opts.num_threads = 2;
  ParallelSdDetector par(c, opts);
  const Trial t = make_trial(5, Modulation::kQam16, 8.0, 2);
  const DecodeResult r = par.decode(t.h, t.y, t.sigma2);
  EXPECT_NEAR(r.metric, residual_metric(t.h, t.y, r.symbols),
              1e-2 * (1 + r.metric));
}

// The serving runtime clones one detector per worker and treats the clones
// as interchangeable: the decoded indices (and hence the metric) must not
// depend on the pool size, including on systems too large for the ML oracle.
TEST(ParallelSd, ResultsInvariantToNumThreads) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Trial t = make_trial(8, Modulation::kQam4, 8.0, seed);
    ParallelSdOptions base;
    base.num_threads = 1;
    ParallelSdDetector reference(c, base);
    const DecodeResult expect = reference.decode(t.h, t.y, t.sigma2);
    for (unsigned threads : {2u, 8u}) {
      ParallelSdOptions opts;
      opts.num_threads = threads;
      ParallelSdDetector par(c, opts);
      const DecodeResult got = par.decode(t.h, t.y, t.sigma2);
      EXPECT_EQ(got.indices, expect.indices)
          << "threads=" << threads << " seed=" << seed;
      EXPECT_NEAR(got.metric, expect.metric, 1e-9 * (1.0 + expect.metric))
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

// Regression companion to the shrink-safety audit at the radius-publication
// site in parallel_sd.cpp: with many workers racing to publish leaves on a
// wide low-SNR tree, the mutex-serialized monotone store must behave exactly
// like a CAS-min — the published radius can only tighten, so the decode
// stays exact. Runs under the TSan CI job (name matches its -R filter),
// which additionally proves the publication is race-free.
TEST(ParallelSd, RadiusPublicationUnderContention) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ParallelSdOptions contended;
  contended.num_threads = 8;
  contended.split_depth = 2;  // 16 sub-trees over 8 threads
  ParallelSdDetector par(c, contended);
  ParallelSdOptions sequential;
  sequential.num_threads = 1;
  ParallelSdDetector seq(c, sequential);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    // SNR 2 dB: the sphere stays wide, so many sub-trees reach leaves and
    // the radius is republished repeatedly while other workers prune on it.
    const Trial t = make_trial(7, Modulation::kQam4, 2.0, seed);
    const DecodeResult got = par.decode(t.h, t.y, t.sigma2);
    const DecodeResult expect = seq.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(got.indices, expect.indices) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(got.metric, expect.metric) << "seed=" << seed;
    EXPECT_GE(got.stats.radius_updates, 1u) << "seed=" << seed;
  }
}

// ---- wide fused decode (DESIGN.md §16) ------------------------------------

// decode_wide partitions EVERY frame's sub-trees into one global unit list,
// interleaved round-robin in best-first rank order, and assigns unit j to
// worker j mod W statically. Per-frame radii shrink via a publication-only
// CAS-min and the per-worker bests are reduced in worker order after the
// join, so which leaf wins never depends on thread timing: indices, symbols
// and metric must be bit-identical to sequential decode_with() for any W.
// (Work counters are schedule-dependent — a frame's radius tightens while
// interleaved with other frames' sub-trees — and deliberately not pinned.)
TEST(ParallelSd, WideDecodeMatchesSequentialForAnyWorkerCount) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  constexpr usize kWidth = 5;
  ParallelSdOptions seq_opts;
  seq_opts.num_threads = 1;
  ParallelSdDetector seq(c, seq_opts);

  // Mixed channels and SNRs: the 2 dB frames keep their spheres wide, so
  // their radii are republished repeatedly while other frames' units run.
  std::vector<Trial> trials;
  std::vector<std::shared_ptr<const PreprocessedChannel>> preps;
  for (usize i = 0; i < kWidth; ++i) {
    trials.push_back(
        make_trial(7, Modulation::kQam4, i % 2 == 0 ? 8.0 : 2.0, 100 + i));
    preps.push_back(seq.preprocess(ChannelHandle(trials[i].h)));
  }
  std::vector<DecodeResult> expect(kWidth);
  for (usize i = 0; i < kWidth; ++i) {
    seq.decode_with(*preps[i], trials[i].y, trials[i].sigma2, expect[i]);
  }

  for (unsigned threads : {1u, 2u, 4u}) {
    ParallelSdOptions opts;
    opts.num_threads = threads;
    ParallelSdDetector wide(c, opts);
    std::vector<DecodeResult> got(kWidth);
    std::vector<Detector::WideItem> items;
    for (usize i = 0; i < kWidth; ++i) {
      items.push_back(
          {preps[i].get(), trials[i].y, trials[i].sigma2, &got[i]});
    }
    wide.decode_wide(items);
    for (usize i = 0; i < kWidth; ++i) {
      EXPECT_EQ(got[i].indices, expect[i].indices)
          << "threads=" << threads << " frame=" << i;
      ASSERT_EQ(got[i].symbols.size(), expect[i].symbols.size());
      for (usize k = 0; k < expect[i].symbols.size(); ++k) {
        EXPECT_EQ(got[i].symbols[k], expect[i].symbols[k])
            << "threads=" << threads << " frame=" << i << " symbol=" << k;
      }
      EXPECT_EQ(got[i].metric, expect[i].metric)
          << "threads=" << threads << " frame=" << i;
      EXPECT_EQ(got[i].stats.tree_levels, expect[i].stats.tree_levels);
    }
  }
}

TEST(ParallelSd, WideDecodeSingleItemFallsBackToSequential) {
  // A one-frame wide batch takes the decode_with path verbatim, so even the
  // work counters match the sequential decode exactly.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ParallelSdOptions opts;
  opts.num_threads = 4;
  ParallelSdDetector seq(c, opts);
  ParallelSdDetector wide(c, opts);
  const Trial t = make_trial(6, Modulation::kQam4, 8.0, 11);
  auto prep = seq.preprocess(ChannelHandle(t.h));
  DecodeResult expect;
  seq.decode_with(*prep, t.y, t.sigma2, expect);
  DecodeResult got;
  std::vector<Detector::WideItem> items{{prep.get(), t.y, t.sigma2, &got}};
  wide.decode_wide(items);
  EXPECT_EQ(got.indices, expect.indices);
  EXPECT_EQ(got.metric, expect.metric);
  EXPECT_EQ(got.stats.nodes_expanded, expect.stats.nodes_expanded);
  EXPECT_EQ(got.stats.radius_updates, expect.stats.radius_updates);
}

TEST(ParallelSd, RejectsBadSplitDepth) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ParallelSdOptions opts;
  opts.split_depth = 0;
  EXPECT_THROW(ParallelSdDetector(c, opts), invalid_argument_error);
}

}  // namespace
}  // namespace sd
