#include <gtest/gtest.h>

#include "platform/gpu_model.hpp"
#include "platform/warp_model.hpp"

namespace sd {
namespace {

DecodeStats bfs_like_stats() {
  DecodeStats s;
  s.gemm_calls = 10;          // one per tree level
  s.flops = 50'000'000;       // 50 MFLOP of batched GEMM
  s.bytes_touched = 40'000'000;
  s.nodes_expanded = 100'000;
  s.nodes_generated = 400'000;
  return s;
}

TEST(GpuModel, SyncOverheadDominatesTinyWork) {
  DecodeStats s;
  s.gemm_calls = 10;
  s.flops = 1000;
  s.bytes_touched = 1000;
  const GpuModelParams p;
  const double t = gpu_decode_seconds(s, p);
  // ~10 launches x 10 us + staging.
  EXPECT_NEAR(t, 10 * p.per_level_overhead_s + p.pcie_staging_s, 2e-6);
}

TEST(GpuModel, RooflineTakesOverForLargeWork) {
  const GpuModelParams p;
  DecodeStats s = bfs_like_stats();
  const double t1 = gpu_decode_seconds(s, p);
  // Scale the work until it dwarfs the per-level sync floor; the model must
  // then grow linearly with the roofline terms.
  s.flops *= 1000;
  s.bytes_touched *= 1000;
  const double t2 = gpu_decode_seconds(s, p);
  EXPECT_GT(t2, t1);
  const double sync_floor = static_cast<double>(s.gemm_calls) *
                                p.per_level_overhead_s +
                            p.pcie_staging_s;
  EXPECT_GT(t2 - sync_floor, 10.0 * (t1 - sync_floor));
}

TEST(GpuModel, MemoryBoundWhenBytesDominate) {
  GpuModelParams p;
  DecodeStats s;
  s.gemm_calls = 1;
  s.flops = 1;                  // negligible compute
  s.bytes_touched = 544'250'000;  // ~1 ms at effective bandwidth
  const double t = gpu_decode_seconds(s, p);
  const double mem_time = static_cast<double>(s.bytes_touched) /
                          (p.peak_bandwidth * p.bandwidth_efficiency);
  EXPECT_NEAR(t, mem_time + p.per_level_overhead_s + p.pcie_staging_s,
              0.01 * mem_time);
}

TEST(GpuModel, MoreLevelsMoreSyncCost) {
  DecodeStats a = bfs_like_stats();
  DecodeStats b = a;
  b.gemm_calls = 2 * a.gemm_calls;
  EXPECT_GT(gpu_decode_seconds(b), gpu_decode_seconds(a));
}

TEST(GpuModel, PowerIsReasonableForA100) {
  EXPECT_GT(gpu_power_watts(), 100.0);
  EXPECT_LT(gpu_power_watts(), 400.0);
}

TEST(WarpModel, ChargesPerNodeCycles) {
  DecodeStats s;
  s.nodes_expanded = 100;
  s.nodes_generated = 400;
  const WarpModelParams p;
  const double expected_cycles = p.frame_overhead_cycles +
                                 400 * p.cycles_per_child +
                                 100 * p.cycles_per_expansion;
  EXPECT_NEAR(warp_decode_seconds(s, p), expected_cycles / p.clock_hz, 1e-12);
}

TEST(WarpModel, TimeGrowsWithTreeSize) {
  DecodeStats small;
  small.nodes_expanded = 10;
  small.nodes_generated = 40;
  DecodeStats big;
  big.nodes_expanded = 10'000;
  big.nodes_generated = 40'000;
  EXPECT_GT(warp_decode_seconds(big), 10.0 * warp_decode_seconds(small));
}

TEST(WarpModel, SlowerClockThanU280MakesItSlowerPerNode) {
  // Geosphere's platform runs at 160 MHz vs the U280's 300 MHz; for the
  // same tree its scalar datapath must be slower than the simulated
  // pipeline's per-node throughput.
  DecodeStats s;
  s.nodes_expanded = 1000;
  s.nodes_generated = 4000;
  const double warp_time = warp_decode_seconds(s);
  // Pipeline lower bound: ~ (branch+gemm+norm+sort) = tens of cycles per
  // expansion at 300 MHz.
  const double u280_rough = 1000.0 * 50.0 / 300e6;
  EXPECT_GT(warp_time, u280_rough * 0.5);
}

}  // namespace
}  // namespace sd
