// Wire protocol codec: roundtrip fidelity and malformed-input hardening.
//
// The decoder is the network trust boundary — every test in the hardening
// half hands it hostile bytes (truncated, oversized, corrupted, inconsistent)
// and asserts it poisons itself with the right typed error instead of
// crashing, over-buffering, or yielding a bogus message. Offsets below follow
// the layout in DESIGN.md §13: [u32 len][u32 magic][u8 ver][u8 type][payload],
// frame payload = cell u32 @10, frame_id u64 @14, qos @22, flags @23,
// rows u16 @24, cols u16 @26, reserved u16 @28, deadline f64 @30,
// sigma2 f64 @38, fp u64 @46, then optional H, then y.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "decode/channel_prep.hpp"
#include "mimo/scenario.hpp"

namespace sd::net {
namespace {

constexpr index_t kM = 4;

Trial make_trial(std::uint64_t seed = 7) {
  ScenarioConfig sc;
  sc.num_tx = kM;
  sc.num_rx = kM;
  sc.seed = seed;
  Scenario scenario(sc);
  return scenario.next();
}

WireFrame make_frame(const Trial& t, bool with_channel = true) {
  WireFrame f;
  f.cell_id = 3;
  f.frame_id = 42;
  f.qos = QosClass::kHard;
  f.has_channel = with_channel;
  f.deadline_s = 0.01;
  f.sigma2 = t.sigma2;
  f.channel_fp = channel_fingerprint(t.h);
  if (with_channel) f.h = t.h;
  f.y = t.y;
  return f;
}

std::vector<std::uint8_t> encode(const WireFrame& f) {
  std::vector<std::uint8_t> buf;
  encode_frame(f, buf);
  return buf;
}

/// Feeds everything, expects exactly one frame.
WireDecoder::Next decode_one(const std::vector<std::uint8_t>& bytes,
                             WireFrame& f, WireResponse& r, WireDecoder& dec) {
  dec.feed(bytes.data(), bytes.size());
  return dec.next(f, r);
}

TEST(NetWire, FrameRoundtripWithChannel) {
  const Trial t = make_trial();
  const WireFrame sent = make_frame(t);
  const std::vector<std::uint8_t> bytes = encode(sent);
  EXPECT_EQ(bytes.size(), encoded_frame_bytes(kM, kM, true));

  WireDecoder dec;
  WireFrame got;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, got, resp, dec), WireDecoder::Next::kFrame);
  EXPECT_EQ(got.cell_id, sent.cell_id);
  EXPECT_EQ(got.frame_id, sent.frame_id);
  EXPECT_EQ(got.qos, sent.qos);
  EXPECT_TRUE(got.has_channel);
  EXPECT_DOUBLE_EQ(got.deadline_s, sent.deadline_s);
  EXPECT_DOUBLE_EQ(got.sigma2, sent.sigma2);
  EXPECT_EQ(got.channel_fp, sent.channel_fp);
  ASSERT_EQ(got.h.rows(), kM);
  ASSERT_EQ(got.h.cols(), kM);
  for (index_t r = 0; r < kM; ++r)
    for (index_t c = 0; c < kM; ++c) EXPECT_EQ(got.h(r, c), sent.h(r, c));
  EXPECT_EQ(got.y, sent.y);
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_EQ(dec.next(got, resp), WireDecoder::Next::kNeedMore);
}

TEST(NetWire, FrameRoundtripChannelElided) {
  const Trial t = make_trial();
  const WireFrame sent = make_frame(t, /*with_channel=*/false);
  const std::vector<std::uint8_t> bytes = encode(sent);
  EXPECT_EQ(bytes.size(), encoded_frame_bytes(kM, kM, false));
  EXPECT_LT(bytes.size(), encoded_frame_bytes(kM, kM, true));

  WireDecoder dec;
  WireFrame got;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, got, resp, dec), WireDecoder::Next::kFrame);
  EXPECT_FALSE(got.has_channel);
  EXPECT_TRUE(got.h.empty());
  EXPECT_EQ(got.channel_fp, sent.channel_fp);
  EXPECT_EQ(got.y, sent.y);
}

TEST(NetWire, ResponseRoundtrip) {
  WireResponse sent;
  sent.frame_id = 99;
  sent.cell_id = 7;
  sent.status = WireFrameStatus::kExpiredFallback;
  sent.tier = serve::DecodeTier::kKBest;
  sent.qos = QosClass::kSoft;
  sent.metric = 12.75;
  sent.indices = {0, 3, 1, 2};
  std::vector<std::uint8_t> bytes;
  encode_response(sent, bytes);

  WireDecoder dec;
  WireFrame frame;
  WireResponse got;
  dec.feed(bytes.data(), bytes.size());
  ASSERT_EQ(dec.next(frame, got), WireDecoder::Next::kResponse);
  EXPECT_EQ(got.frame_id, sent.frame_id);
  EXPECT_EQ(got.cell_id, sent.cell_id);
  EXPECT_EQ(got.status, sent.status);
  EXPECT_EQ(got.tier, sent.tier);
  EXPECT_EQ(got.qos, sent.qos);
  EXPECT_DOUBLE_EQ(got.metric, sent.metric);
  EXPECT_EQ(got.indices, sent.indices);
}

TEST(NetWire, ResponseWithNoIndicesAndInfiniteMetric) {
  WireResponse sent;
  sent.status = WireFrameStatus::kShed;
  sent.metric = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> bytes;
  encode_response(sent, bytes);
  WireDecoder dec;
  WireFrame frame;
  WireResponse got;
  dec.feed(bytes.data(), bytes.size());
  ASSERT_EQ(dec.next(frame, got), WireDecoder::Next::kResponse);
  EXPECT_TRUE(got.indices.empty());
  EXPECT_TRUE(std::isinf(got.metric));
}

// Partial reads: any read() boundary must be survivable. Byte-at-a-time is
// the worst case and subsumes every other split.
TEST(NetWire, ByteAtATimeFeedYieldsIdenticalMessages) {
  const Trial t = make_trial();
  std::vector<std::uint8_t> bytes = encode(make_frame(t));
  WireResponse r0;
  r0.frame_id = 5;
  r0.indices = {1, 2};
  encode_response(r0, bytes);

  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  usize frames = 0, responses = 0;
  for (const std::uint8_t b : bytes) {
    dec.feed(&b, 1);
    for (;;) {
      const WireDecoder::Next what = dec.next(frame, resp);
      if (what == WireDecoder::Next::kNeedMore) break;
      ASSERT_NE(what, WireDecoder::Next::kError)
          << wire_error_name(dec.error());
      if (what == WireDecoder::Next::kFrame) ++frames;
      if (what == WireDecoder::Next::kResponse) ++responses;
    }
  }
  EXPECT_EQ(frames, 1u);
  EXPECT_EQ(responses, 1u);
  EXPECT_EQ(resp.frame_id, 5u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(NetWire, BackToBackMessagesInOneFeed) {
  const Trial t = make_trial();
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 3; ++i) {
    WireFrame f = make_frame(t, i == 0);  // first ships H, rest reference
    f.frame_id = static_cast<std::uint64_t>(i);
    encode_frame(f, bytes);
  }
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  dec.feed(bytes.data(), bytes.size());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(dec.next(frame, resp), WireDecoder::Next::kFrame);
    EXPECT_EQ(frame.frame_id, i);
  }
  EXPECT_EQ(dec.next(frame, resp), WireDecoder::Next::kNeedMore);
}

// --- hostile input ---

TEST(NetWire, IncompleteMessageIsNeedMoreNotError) {
  const std::vector<std::uint8_t> bytes = encode(make_frame(make_trial()));
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  dec.feed(bytes.data(), bytes.size() - 1);  // everything but the last byte
  EXPECT_EQ(dec.next(frame, resp), WireDecoder::Next::kNeedMore);
  EXPECT_EQ(dec.error(), WireError::kNone);
}

TEST(NetWire, OversizedLengthPrefixPoisonsBeforeBuffering) {
  // A hostile 4 GiB-ish length prefix must fail from the prefix alone.
  const std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF};
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kOversized);
}

TEST(NetWire, LengthSmallerThanEnvelopeIsTruncated) {
  std::vector<std::uint8_t> bytes = {3, 0, 0, 0, 0xAA, 0xBB, 0xCC};
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kTruncated);
}

TEST(NetWire, PayloadShorterThanFixedHeaderIsTruncated) {
  // Valid envelope declaring a kFrame with a 2-byte payload.
  std::vector<std::uint8_t> bytes = encode(make_frame(make_trial()));
  const std::uint32_t len = 6 + 2;  // envelope + 2 payload bytes
  for (int i = 0; i < 4; ++i)
    bytes[static_cast<usize>(i)] = static_cast<std::uint8_t>(len >> (8 * i));
  bytes.resize(4 + len);
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kTruncated);
}

TEST(NetWire, CorruptedMagicVersionType) {
  const std::vector<std::uint8_t> good = encode(make_frame(make_trial()));
  struct Case {
    usize offset;
    std::uint8_t value;
    WireError expect;
  };
  const Case cases[] = {
      {4, 0x00, WireError::kBadMagic},    // magic byte 0
      {8, 99, WireError::kBadVersion},    // version
      {9, 77, WireError::kBadType},       // type
  };
  for (const Case& c : cases) {
    std::vector<std::uint8_t> bytes = good;
    bytes[c.offset] = c.value;
    WireDecoder dec;
    WireFrame frame;
    WireResponse resp;
    ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
    EXPECT_EQ(dec.error(), c.expect) << "offset " << c.offset;
  }
}

TEST(NetWire, OutOfRangeFieldsAreBadField) {
  const std::vector<std::uint8_t> good = encode(make_frame(make_trial()));
  struct Case {
    usize offset;
    std::uint8_t value;
  };
  const Case cases[] = {
      {22, 9},     // qos out of range
      {23, 0x80},  // unknown flag bit
      {24, 0},     // rows = 0 (low byte; high byte already 0)
  };
  for (const Case& c : cases) {
    std::vector<std::uint8_t> bytes = good;
    bytes[c.offset] = c.value;
    WireDecoder dec;
    WireFrame frame;
    WireResponse resp;
    ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
    EXPECT_EQ(dec.error(), WireError::kBadField) << "offset " << c.offset;
  }
}

TEST(NetWire, NaNDeadlineIsBadField) {
  std::vector<std::uint8_t> bytes = encode(make_frame(make_trial()));
  const std::uint64_t nan_bits = 0x7FF8000000000000ull;
  for (int i = 0; i < 8; ++i)
    bytes[30 + static_cast<usize>(i)] =
        static_cast<std::uint8_t>(nan_bits >> (8 * i));
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kBadField);
}

TEST(NetWire, LengthInconsistentWithDimensionsIsBadLength) {
  // Shrink cols from 4 to 3 without re-sizing the payload: the declared
  // dimensions no longer match the message length.
  std::vector<std::uint8_t> bytes = encode(make_frame(make_trial()));
  bytes[26] = 3;
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kBadLength);
}

TEST(NetWire, ForgedFingerprintIsRejected) {
  const Trial t = make_trial();
  WireFrame f = make_frame(t);
  f.channel_fp ^= 0xDEADBEEF;  // encoder ships it unverified — receiver's job
  const std::vector<std::uint8_t> bytes = encode(f);
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kFingerprintMismatch);
}

TEST(NetWire, CorruptedChannelBytesFailTheFingerprint) {
  std::vector<std::uint8_t> bytes = encode(make_frame(make_trial()));
  bytes[60] ^= 0x01;  // one bit inside H
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bytes, frame, resp, dec), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kFingerprintMismatch);
}

TEST(NetWire, PoisonedDecoderStaysPoisoned) {
  const std::vector<std::uint8_t> bad = {0xFF, 0xFF, 0xFF, 0xFF};
  const std::vector<std::uint8_t> good = encode(make_frame(make_trial()));
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  ASSERT_EQ(decode_one(bad, frame, resp, dec), WireDecoder::Next::kError);
  // A stream cannot be resynchronized after a framing error: even perfectly
  // valid bytes fed afterwards must keep returning kError.
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(frame, resp), WireDecoder::Next::kError);
  EXPECT_EQ(dec.next(frame, resp), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kOversized);
}

TEST(NetWire, DecoderHonorsCustomMessageCeiling) {
  const std::vector<std::uint8_t> bytes = encode(make_frame(make_trial()));
  WireDecoder dec(/*max_message_bytes=*/32);  // frame is larger than this
  WireFrame frame;
  WireResponse resp;
  dec.feed(bytes.data(), bytes.size());
  ASSERT_EQ(dec.next(frame, resp), WireDecoder::Next::kError);
  EXPECT_EQ(dec.error(), WireError::kOversized);
}

TEST(NetWire, BufferCompactionKeepsStreamIntact) {
  // Many messages fed in slivers force the consumed-prefix compaction path;
  // every message must still come out intact and in order.
  const Trial t = make_trial();
  std::vector<std::uint8_t> bytes;
  constexpr usize kN = 64;
  for (usize i = 0; i < kN; ++i) {
    WireFrame f = make_frame(t, i % 4 == 0);
    f.frame_id = i;
    encode_frame(f, bytes);
  }
  WireDecoder dec;
  WireFrame frame;
  WireResponse resp;
  usize got = 0;
  usize pos = 0;
  while (pos < bytes.size()) {
    const usize n = std::min<usize>(37, bytes.size() - pos);  // odd stride
    dec.feed(bytes.data() + pos, n);
    pos += n;
    for (;;) {
      const WireDecoder::Next what = dec.next(frame, resp);
      if (what == WireDecoder::Next::kNeedMore) break;
      ASSERT_EQ(what, WireDecoder::Next::kFrame);
      EXPECT_EQ(frame.frame_id, got);
      ++got;
    }
  }
  EXPECT_EQ(got, kN);
}

}  // namespace
}  // namespace sd::net
