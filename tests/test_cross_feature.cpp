// Cross-feature property tests: combinations the single-feature suites do
// not reach — correlated channels through the exact decoders, estimated CSI
// through the FPGA simulation, SQRD + FPGA together, 64-QAM small systems,
// and the BFS decoder on 16-QAM with a forced-tight radius.
#include <gtest/gtest.h>

#include "decode/ml.hpp"
#include "decode/sd_gemm.hpp"
#include "decode/sd_gemm_bfs.hpp"
#include "fpga/fpga_detector.hpp"
#include "mimo/estimation.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(ScenarioConfig sc) {
  Scenario s(sc);
  return s.next();
}

TEST(CrossFeature, ExactDecodersAgreeOnCorrelatedChannels) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MlDetector ml(c);
  SdGemmDetector sd(c);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioConfig sc;
    sc.num_tx = 5;
    sc.num_rx = 5;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = 10.0;
    sc.seed = seed;
    sc.correlation = {0.8, 0.6};
    const Trial t = make_trial(sc);
    EXPECT_EQ(sd.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(CrossFeature, CorrelationInflatesTheSearchTree) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector sd(c);
  auto mean_nodes = [&](double rho) {
    double acc = 0;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      ScenarioConfig sc;
      sc.num_tx = 8;
      sc.num_rx = 8;
      sc.modulation = Modulation::kQam4;
      sc.snr_db = 10.0;
      sc.seed = seed;
      sc.correlation.tx_rho = rho;
      const Trial t = make_trial(sc);
      acc += static_cast<double>(
          sd.decode(t.h, t.y, t.sigma2).stats.nodes_expanded);
    }
    return acc / 15;
  };
  EXPECT_GT(mean_nodes(0.9), 1.5 * mean_nodes(0.0));
}

TEST(CrossFeature, FpgaSimulationWithSqrdMatchesCpu) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdOptions opts;
  opts.sorted_qr = true;
  SdGemmDetector cpu(c, opts);
  FpgaDetector fpga(c, FpgaConfig::optimized_design(6, 6, Modulation::kQam4),
                    opts);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ScenarioConfig sc;
    sc.num_tx = 6;
    sc.num_rx = 6;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = 8.0;
    sc.seed = seed;
    const Trial t = make_trial(sc);
    EXPECT_EQ(fpga.decode(t.h, t.y, t.sigma2).indices,
              cpu.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(CrossFeature, FpgaSimulationWithEstimatedCsiStillMatchesCpu) {
  // Estimation error changes WHAT is decoded, but CPU and simulated FPGA
  // must still agree bit-for-bit on the same (imperfect) inputs.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector cpu(c);
  FpgaDetector fpga(c, FpgaConfig::optimized_design(5, 5, Modulation::kQam4));
  GaussianSource pilot_rng(3);
  const CMat pilots = orthogonal_pilots(8, 5);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ScenarioConfig sc;
    sc.num_tx = 5;
    sc.num_rx = 5;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = 10.0;
    sc.seed = seed;
    const Trial t = make_trial(sc);
    const CMat y_pilot = receive_pilots(t.h, pilots, t.sigma2, pilot_rng);
    const CMat h_est = estimate_lmmse(pilots, y_pilot, t.sigma2);
    EXPECT_EQ(fpga.decode(h_est, t.y, t.sigma2).indices,
              cpu.decode(h_est, t.y, t.sigma2).indices);
  }
}

TEST(CrossFeature, SixtyFourQamSmallSystemStillExact) {
  const Constellation& c = Constellation::get(Modulation::kQam64);
  MlDetector ml(c);
  SdGemmDetector sd(c);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig sc;
    sc.num_tx = 3;
    sc.num_rx = 3;
    sc.modulation = Modulation::kQam64;
    sc.snr_db = 14.0;
    sc.seed = seed;
    const Trial t = make_trial(sc);
    EXPECT_EQ(sd.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(CrossFeature, BfsWithTightRadiusRetriesToExactnessOn16Qam) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MlDetector ml(c);
  BfsOptions opts;
  opts.base.radius_policy = RadiusPolicy::kNoiseScaled;
  opts.base.radius_alpha = 0.05;  // almost always an empty first sphere
  SdGemmBfsDetector bfs(c, opts);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig sc;
    sc.num_tx = 4;
    sc.num_rx = 4;
    sc.modulation = Modulation::kQam16;
    sc.snr_db = 10.0;
    sc.seed = seed;
    const Trial t = make_trial(sc);
    EXPECT_EQ(bfs.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(CrossFeature, ReceiveDiversityShrinksTreeAndBer) {
  // Extra receive antennas (N > M) tighten R's diagonal: fewer nodes AND
  // fewer errors for the same M and SNR.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector sd(c);
  auto run = [&](index_t n) {
    double nodes = 0;
    int errors = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      ScenarioConfig sc;
      sc.num_tx = 6;
      sc.num_rx = n;
      sc.modulation = Modulation::kQam4;
      sc.snr_db = 6.0;
      sc.seed = seed;
      const Trial t = make_trial(sc);
      const DecodeResult r = sd.decode(t.h, t.y, t.sigma2);
      nodes += static_cast<double>(r.stats.nodes_expanded);
      if (r.indices != t.tx.indices) ++errors;
    }
    return std::pair{nodes / 30, errors};
  };
  const auto [nodes_square, errors_square] = run(6);
  const auto [nodes_tall, errors_tall] = run(12);
  EXPECT_LT(nodes_tall, nodes_square);
  EXPECT_LE(errors_tall, errors_square);
}

}  // namespace
}  // namespace sd
