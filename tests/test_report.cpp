#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sd {
namespace {

SweepResult fake_sweep() {
  SweepResult r;
  r.detector = "SD-GEMM-BestFS";
  SweepPoint p;
  p.snr_db = 8.0;
  p.trials = 10;
  p.ber = 0.01;
  p.ber_ci95 = 0.002;
  p.ser = 0.02;
  p.fer = 0.1;
  p.mean_seconds = 1e-4;
  p.p95_seconds = 2e-4;
  p.mean_nodes_expanded = 100;
  p.mean_nodes_generated = 400;
  p.mean_gemm_calls = 100;
  p.mean_flops = 5000;
  r.points.push_back(p);
  p.snr_db = 12.0;
  p.ber = 0.0;
  r.points.push_back(p);
  return r;
}

TEST(Report, CsvHasHeaderAndOneRowPerPoint) {
  std::ostringstream os;
  write_csv(os, fake_sweep());
  const std::string out = os.str();
  usize lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 points
  EXPECT_EQ(out.find("detector,snr_db"), 0u);
  EXPECT_NE(out.find("SD-GEMM-BestFS,8,10,0.01,"), std::string::npos);
}

TEST(Report, MultiSweepSharesOneHeader) {
  std::ostringstream os;
  const std::vector<SweepResult> sweeps{fake_sweep(), fake_sweep()};
  write_csv(os, sweeps);
  const std::string out = os.str();
  // One header only.
  EXPECT_EQ(out.find("detector,snr_db"), 0u);
  EXPECT_EQ(out.find("detector,snr_db", 1), std::string::npos);
  usize lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
}

TEST(Report, CsvIsParseable) {
  std::ostringstream os;
  write_csv(os, fake_sweep());
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);  // header
  std::getline(is, line);  // first row
  usize commas = 0;
  for (char c : line) {
    if (c == ',') ++commas;
  }
  EXPECT_EQ(commas, 12u);  // 13 fields
}

TEST(Report, SummaryMentionsKeyCounters) {
  DecodeStats s;
  s.nodes_expanded = 42;
  s.nodes_generated = 168;
  s.leaves_reached = 3;
  s.gemm_calls = 42;
  s.search_seconds = 1.5e-4;
  const std::string text = summarize(s);
  EXPECT_NE(text.find("42 expanded"), std::string::npos);
  EXPECT_NE(text.find("168 generated"), std::string::npos);
  EXPECT_NE(text.find("3 leaves"), std::string::npos);
  EXPECT_EQ(text.find("budget hit"), std::string::npos);
  DecodeStats capped = s;
  capped.node_budget_hit = true;
  EXPECT_NE(summarize(capped).find("budget hit"), std::string::npos);
}

}  // namespace
}  // namespace sd
