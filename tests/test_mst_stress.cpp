// Randomized stress test of the Meta State Table against a plain reference
// implementation (vectors + maps): thousands of random inserts, path walks
// and resets must agree exactly.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hpp"
#include "decode/mst.hpp"

namespace sd {
namespace {

struct RefNode {
  NodeId parent;
  index_t symbol;
  real pd;
};

TEST(MstStress, RandomizedAgainstReferenceModel) {
  const index_t levels = 12;
  MetaStateTable mst(levels, 64);
  std::map<NodeId, RefNode> reference;
  // Nodes by level so parents can be drawn from level-1.
  std::vector<std::vector<NodeId>> by_level(static_cast<usize>(levels));

  GaussianSource rng(2024);
  for (int op = 0; op < 5000; ++op) {
    const auto action = rng.next_index(100);
    if (action < 2 && !reference.empty()) {
      mst.reset();
      reference.clear();
      for (auto& lvl : by_level) lvl.clear();
      continue;
    }
    // Insert at a level whose parent level is populated (or level 0).
    index_t level = 0;
    for (index_t l = levels - 1; l > 0; --l) {
      if (!by_level[static_cast<usize>(l - 1)].empty() &&
          rng.next_index(3) == 0) {
        level = l;
        break;
      }
    }
    NodeId parent = kRootId;
    if (level > 0) {
      const auto& parents = by_level[static_cast<usize>(level - 1)];
      parent = parents[rng.next_index(static_cast<std::uint32_t>(parents.size()))];
    }
    const auto symbol = static_cast<index_t>(rng.next_index(16));
    const auto pd = static_cast<real>(rng.next_index(1000)) / 10.0f;
    const NodeId id = mst.insert(level, MstNode{parent, symbol, pd});
    ASSERT_EQ(reference.count(id), 0u) << "id reuse without reset";
    reference[id] = RefNode{parent, symbol, pd};
    by_level[static_cast<usize>(level)].push_back(id);

    // Spot-check a random existing node's record and full path.
    const auto it = std::next(reference.begin(),
                              rng.next_index(static_cast<std::uint32_t>(
                                  reference.size())));
    const MstNode& got = mst.get(it->first);
    EXPECT_EQ(got.parent, it->second.parent);
    EXPECT_EQ(got.symbol, it->second.symbol);
    EXPECT_EQ(got.pd, it->second.pd);

    std::vector<index_t> path(static_cast<usize>(levels), -1);
    mst.path_symbols(it->first, path);
    NodeId cursor = it->first;
    while (cursor != kRootId) {
      const RefNode& ref = reference.at(cursor);
      EXPECT_EQ(path[static_cast<usize>(MetaStateTable::level_of(cursor))],
                ref.symbol);
      cursor = ref.parent;
    }
  }
  EXPECT_EQ(mst.total_nodes(), reference.size());
}

TEST(MstStress, DeepChainsWalkCorrectly) {
  const index_t levels = 256;  // the MST's maximum depth
  MetaStateTable mst(levels, 4);
  NodeId parent = kRootId;
  for (index_t d = 0; d < levels; ++d) {
    parent = mst.insert(d, MstNode{parent, d % 7, static_cast<real>(d)});
  }
  std::vector<index_t> path(static_cast<usize>(levels));
  mst.path_symbols(parent, path);
  for (index_t d = 0; d < levels; ++d) {
    EXPECT_EQ(path[static_cast<usize>(d)], d % 7);
  }
}

TEST(MstStress, ManyResetsDoNotLeakIds) {
  MetaStateTable mst(4, 8);
  for (int round = 0; round < 100; ++round) {
    const NodeId a = mst.insert(0, MstNode{kRootId, 1, 0});
    const NodeId b = mst.insert(1, MstNode{a, 2, 0});
    EXPECT_EQ(MetaStateTable::level_of(a), 0);
    EXPECT_EQ(MetaStateTable::level_of(b), 1);
    EXPECT_EQ(mst.total_nodes(), 2u);
    mst.reset();
    EXPECT_EQ(mst.total_nodes(), 0u);
  }
}

}  // namespace
}  // namespace sd
