#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sd {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, KnownFirstValueStableAcrossRuns) {
  // Pin the stream so refactors that silently change sequences are caught —
  // experiment reproducibility depends on this.
  Xoshiro256 a(42);
  const auto v0 = a();
  Xoshiro256 b(42);
  EXPECT_EQ(b(), v0);
  EXPECT_NE(v0, 0u);
}

TEST(Xoshiro256, LongJumpProducesDisjointStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.long_jump();
  std::set<std::uint64_t> head;
  for (int i = 0; i < 1000; ++i) head.insert(a());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(head.count(b()), 0u);
  }
}

TEST(Uniform01, InUnitIntervalWithReasonableMean) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = uniform01(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(GaussianSource, MomentsMatchStandardNormal) {
  GaussianSource g(11);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.next();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(GaussianSource, ComplexVarianceSplitsAcrossComponents) {
  GaussianSource g(13);
  const int n = 50000;
  const double variance = 4.0;
  double re2 = 0.0, im2 = 0.0, cross = 0.0;
  for (int i = 0; i < n; ++i) {
    const cplx z = g.next_cplx(variance);
    re2 += z.real() * z.real();
    im2 += z.imag() * z.imag();
    cross += z.real() * z.imag();
  }
  EXPECT_NEAR(re2 / n, variance / 2, 0.1);
  EXPECT_NEAR(im2 / n, variance / 2, 0.1);
  EXPECT_NEAR(cross / n, 0.0, 0.05);
}

TEST(GaussianSource, NextIndexUniformOverBound) {
  GaussianSource g(17);
  const std::uint32_t bound = 16;
  std::vector<int> counts(bound, 0);
  const int n = 64000;
  for (int i = 0; i < n; ++i) {
    const std::uint32_t v = g.next_index(bound);
    ASSERT_LT(v, bound);
    ++counts[v];
  }
  for (std::uint32_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), 400);
  }
}

}  // namespace
}  // namespace sd
