// Shared helpers for the test suite: random matrix/vector generation from a
// seeded stream, so every test is deterministic.
#pragma once

#include "common/random.hpp"
#include "linalg/matrix.hpp"

namespace sd::testing {

inline CMat random_cmat(index_t rows, index_t cols, std::uint64_t seed) {
  GaussianSource g(seed);
  CMat m(rows, cols);
  for (cplx& v : m.flat()) v = g.next_cplx(1.0);
  return m;
}

inline CVec random_cvec(index_t n, std::uint64_t seed) {
  GaussianSource g(seed);
  CVec v(static_cast<usize>(n));
  for (cplx& x : v) x = g.next_cplx(1.0);
  return v;
}

}  // namespace sd::testing
