#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sd {
namespace {

TEST(Experiment, SweepProducesOnePointPerSnr) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  ExperimentRunner runner(sys, 10, 5);
  auto det = make_detector(sys, DecoderSpec{});
  const std::vector<double> snrs{4.0, 12.0, 20.0};
  const SweepResult r = runner.sweep(*det, snrs);
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_EQ(r.detector, "SD-GEMM-BestFS");
  for (usize i = 0; i < 3; ++i) {
    EXPECT_EQ(r.points[i].snr_db, snrs[i]);
    EXPECT_EQ(r.points[i].trials, 10u);
    EXPECT_GT(r.points[i].mean_nodes_expanded, 0.0);
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  ExperimentRunner a(sys, 8, 99), b(sys, 8, 99);
  auto det = make_detector(sys, DecoderSpec{});
  const SweepPoint pa = a.run_point(*det, 8.0);
  const SweepPoint pb = b.run_point(*det, 8.0);
  EXPECT_EQ(pa.ber, pb.ber);
  EXPECT_EQ(pa.mean_nodes_expanded, pb.mean_nodes_expanded);
  EXPECT_EQ(pa.mean_flops, pb.mean_flops);
}

TEST(Experiment, PairedTrialsAcrossDetectors) {
  // Two exact decoders on the same runner must see identical trials, hence
  // identical BER — not merely statistically close.
  const SystemConfig sys{4, 4, Modulation::kQam4};
  ExperimentRunner runner(sys, 20, 7);
  DecoderSpec gemm_spec;
  DecoderSpec dfs_spec;
  dfs_spec.strategy = Strategy::kDfs;
  auto gemm_det = make_detector(sys, gemm_spec);
  auto dfs_det = make_detector(sys, dfs_spec);
  const SweepPoint pg = runner.run_point(*gemm_det, 6.0);
  const SweepPoint pd = runner.run_point(*dfs_det, 6.0);
  EXPECT_EQ(pg.ber, pd.ber);
  EXPECT_EQ(pg.ser, pd.ser);
}

TEST(Experiment, BerDecreasesWithSnrForExactDecoder) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  ExperimentRunner runner(sys, 150, 21);
  auto det = make_detector(sys, DecoderSpec{});
  const SweepPoint low = runner.run_point(*det, 2.0);
  const SweepPoint high = runner.run_point(*det, 14.0);
  EXPECT_GT(low.ber, high.ber);
}

TEST(Experiment, LinearDetectorWorseThanSphereDecoder) {
  const SystemConfig sys{6, 6, Modulation::kQam4};
  ExperimentRunner runner(sys, 150, 31);
  auto sphere = make_detector(sys, DecoderSpec{});
  DecoderSpec mmse_spec;
  mmse_spec.strategy = Strategy::kMmse;
  auto mmse = make_detector(sys, mmse_spec);
  const double snr = 8.0;
  EXPECT_LT(runner.run_point(*sphere, snr).ber,
            runner.run_point(*mmse, snr).ber);
}

TEST(Experiment, CustomTimeFunctionIsApplied) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  ExperimentRunner runner(sys, 5, 3);
  auto det = make_detector(sys, DecoderSpec{});
  const SweepPoint p = runner.run_point(
      *det, 10.0, [](const DecodeResult&, Detector&) { return 42.0; });
  EXPECT_DOUBLE_EQ(p.mean_seconds, 42.0);
  EXPECT_DOUBLE_EQ(p.p95_seconds, 42.0);
}

TEST(Experiment, RejectsZeroTrials) {
  EXPECT_THROW(ExperimentRunner(SystemConfig{4, 4, Modulation::kQam4}, 0),
               invalid_argument_error);
}

TEST(Experiment, PaperSnrAxis) {
  const auto axis = paper_snr_axis();
  ASSERT_EQ(axis.size(), 5u);
  EXPECT_EQ(axis.front(), 4.0);
  EXPECT_EQ(axis.back(), 20.0);
}

}  // namespace
}  // namespace sd
