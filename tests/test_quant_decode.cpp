// End-to-end contracts of the quantized BFS decode path (DESIGN.md §15):
// high-SNR agreement with the float twin, the decode_with == decode_into
// bit-identity the prep cache relies on, fused (batch/wide) == sequential
// bit-identity, the saturated-radius fallback, and the (fingerprint, kind)
// cache keying that keeps quantized and float preps on one channel apart.
#include "decode/sd_gemm_bfs.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "decode/channel_prep.hpp"
#include "mimo/scenario.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

constexpr double kSigma2 = 0.01;  // ~20 dB for a 10x10 unit-energy system

SdGemmBfsDetector make_bfs(bool quantized, bool sorted = false) {
  BfsOptions opts;
  opts.base.sorted_qr = sorted;
  opts.quantized = quantized;
  return SdGemmBfsDetector(Constellation::get(Modulation::kQam4), opts);
}

void expect_same_decode(const DecodeResult& a, const DecodeResult& b,
                        const char* what) {
  EXPECT_EQ(a.indices, b.indices) << what;
  EXPECT_EQ(a.metric, b.metric) << what;
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded) << what;
  EXPECT_EQ(a.stats.nodes_pruned, b.stats.nodes_pruned) << what;
  EXPECT_EQ(a.stats.gemm_calls, b.stats.gemm_calls) << what;
  EXPECT_EQ(a.stats.flops, b.stats.flops) << what;
  EXPECT_EQ(a.stats.bytes_touched, b.stats.bytes_touched) << what;
  EXPECT_EQ(a.stats.quant_saturations, b.stats.quant_saturations) << what;
  EXPECT_EQ(a.stats.quant_overflows, b.stats.quant_overflows) << what;
  EXPECT_EQ(a.stats.quant_requants, b.stats.quant_requants) << what;
  EXPECT_EQ(a.stats.quant_fallbacks, b.stats.quant_fallbacks) << what;
}

TEST(QuantDecode, HighSnrAgreesWithFloatPath) {
  SdGemmBfsDetector fbfs = make_bfs(false);
  SdGemmBfsDetector qbfs = make_bfs(true);
  EXPECT_EQ(qbfs.name(), "SD-GEMM-BFS-i16");

  usize mismatched = 0, total = 0;
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    const CMat h = testing::random_cmat(10, 10, 100 + trial);
    const CVec y = testing::random_cvec(10, 200 + trial);
    const DecodeResult rf = fbfs.decode(h, y, kSigma2);
    const DecodeResult rq = qbfs.decode(h, y, kSigma2);
    ASSERT_EQ(rf.indices.size(), rq.indices.size());
    for (usize i = 0; i < rf.indices.size(); ++i) {
      mismatched += rf.indices[i] != rq.indices[i] ? 1 : 0;
      ++total;
    }
    // The quantized path really ran: requants are charged per level column.
    EXPECT_GT(rq.stats.quant_requants, 0u);
    EXPECT_EQ(rq.stats.quant_fallbacks, 0u);
    EXPECT_EQ(rf.stats.quant_requants, 0u) << "float path must stay clean";
  }
  // At ~20 dB the Q(f) grid is far finer than the noise; only rare
  // near-ties may flip a symbol.
  EXPECT_LE(mismatched, total / 50) << mismatched << "/" << total;
}

TEST(QuantDecode, DecodeWithMatchesDecodeIntoBitIdentically) {
  for (const bool sorted : {false, true}) {
    SdGemmBfsDetector det = make_bfs(true, sorted);
    const ChannelHandle channel(testing::random_cmat(8, 8, 301));
    const CVec y = testing::random_cvec(8, 302);

    auto prep = det.preprocess(channel);
    ASSERT_EQ(prep->kind, det.prep_kind());
    ASSERT_TRUE(prep->qprep.valid());

    DecodeResult via_into, via_with;
    det.decode_into(channel.matrix(), y, kSigma2, via_into);
    det.decode_with(*prep, y, kSigma2, via_with);
    expect_same_decode(via_with, via_into,
                       sorted ? "sorted cached-vs-direct"
                              : "plain cached-vs-direct");
  }
}

TEST(QuantDecode, BatchFusedMatchesSequentialBitIdentically) {
  SdGemmBfsDetector det = make_bfs(true);
  const ChannelHandle channel(testing::random_cmat(8, 8, 401));
  auto prep = det.preprocess(channel);

  const usize kFrames = 5;
  std::vector<CVec> ys;
  for (usize f = 0; f < kFrames; ++f) {
    ys.push_back(testing::random_cvec(8, 500 + f));
  }

  std::vector<DecodeResult> seq(kFrames);
  for (usize f = 0; f < kFrames; ++f) {
    det.decode_with(*prep, ys[f], kSigma2, seq[f]);
  }

  std::vector<DecodeResult> fused(kFrames);
  std::vector<Detector::BatchItem> items;
  for (usize f = 0; f < kFrames; ++f) {
    items.push_back({ys[f], kSigma2, &fused[f]});
  }
  det.decode_batch_with(*prep, items);

  for (usize f = 0; f < kFrames; ++f) {
    expect_same_decode(fused[f], seq[f], "fused batch frame");
  }
}

TEST(QuantDecode, WideFusedMatchesSequentialBitIdentically) {
  SdGemmBfsDetector det = make_bfs(true);
  const usize kFrames = 6;
  std::vector<ChannelHandle> channels;
  std::vector<std::shared_ptr<const PreprocessedChannel>> preps;
  std::vector<CVec> ys;
  for (usize f = 0; f < kFrames; ++f) {
    // Three distinct channels, each shared by two frames, so the wide path
    // exercises both the distinct-prep blocking and block sharing.
    if (f % 2 == 0) {
      channels.emplace_back(testing::random_cmat(8, 8, 600 + f));
      preps.push_back(det.preprocess(channels.back()));
    }
    ys.push_back(testing::random_cvec(8, 700 + f));
  }

  std::vector<DecodeResult> seq(kFrames);
  for (usize f = 0; f < kFrames; ++f) {
    det.decode_with(*preps[f / 2], ys[f], kSigma2, seq[f]);
  }

  std::vector<DecodeResult> fused(kFrames);
  std::vector<Detector::WideItem> items;
  for (usize f = 0; f < kFrames; ++f) {
    items.push_back({preps[f / 2].get(), ys[f], kSigma2, &fused[f]});
  }
  det.decode_wide(items);

  for (usize f = 0; f < kFrames; ++f) {
    expect_same_decode(fused[f], seq[f], "wide fused frame");
  }
}

TEST(QuantDecode, SaturatedRadiusFallsBackToFloatSearch) {
  SdGemmBfsDetector fbfs = make_bfs(false);
  SdGemmBfsDetector qbfs = make_bfs(true);
  const CMat h = testing::random_cmat(6, 6, 801);
  // A received vector far outside the constellation's image: every quantized
  // target clamps, every child's PD saturates, and no integer radius can
  // admit a leaf — the frame must fall back to the float search.
  CVec y = testing::random_cvec(6, 802);
  for (cplx& v : y) v *= real{1e6};

  const DecodeResult rf = fbfs.decode(h, y, 1.0);
  const DecodeResult rq = qbfs.decode(h, y, 1.0);
  EXPECT_EQ(rq.stats.quant_fallbacks, 1u);
  EXPECT_EQ(rq.indices, rf.indices) << "fallback must produce the float answer";
  EXPECT_EQ(rq.metric, rf.metric);
}

TEST(QuantPrep, CacheKeysForFloatAndQuantKindsNeverCollide) {
  ChannelPrepCache cache;
  const ChannelHandle channel(testing::random_cmat(8, 8, 901));

  bool hit = true;
  auto plain = cache.get_or_build(channel, PrepKind::kQrPlain, &hit);
  EXPECT_FALSE(hit);
  auto quant = cache.get_or_build(channel, PrepKind::kQrPlainQuant, &hit);
  EXPECT_FALSE(hit) << "quant kind must not hit the float entry";
  EXPECT_NE(plain.get(), quant.get());
  EXPECT_FALSE(plain->qprep.valid());
  ASSERT_TRUE(quant->qprep.valid());

  // Both entries stay resident and re-fetchable under one fingerprint.
  auto plain2 = cache.get_or_build(channel, PrepKind::kQrPlain, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(plain.get(), plain2.get());
  auto quant2 = cache.get_or_build(channel, PrepKind::kQrPlainQuant, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(quant.get(), quant2.get());

  const ChannelPrepCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.collisions, 0u)
      << "kind must be part of the key, not a fingerprint collision";

  // The quantized prep carries the identical float factorization: same R
  // bytes as the float prep's, plus the int16 planes.
  ASSERT_EQ(quant->qr.r().rows(), plain->qr.r().rows());
  for (index_t i = 0; i < plain->qr.r().rows(); ++i) {
    for (index_t j = 0; j < plain->qr.r().cols(); ++j) {
      EXPECT_EQ(quant->qr.r()(i, j), plain->qr.r()(i, j)) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace sd
