// Dispatch subsystem: pool-spec parsing, cost-model priors / calibration /
// JSON round-tripping, seeded placement determinism, overload-ladder tier
// degradation, mixed-pool frame conservation, and work-stealing result
// invariance. Frame contents are seeded, so placements and decode results
// must reproduce exactly across runs.
#include "dispatch/dispatcher.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "core/spec_parse.hpp"
#include "dispatch/backend.hpp"
#include "dispatch/cost_model.hpp"
#include "mimo/scenario.hpp"
#include "serve/server.hpp"

namespace sd::dispatch {
namespace {

constexpr index_t kM = 6;
constexpr std::uint64_t kSeed = 42;

SystemConfig test_system() { return {kM, kM, Modulation::kQam4}; }

std::vector<Trial> seeded_trials(usize n, double snr_db,
                                 std::uint64_t seed = kSeed) {
  ScenarioConfig sc;
  sc.num_tx = kM;
  sc.num_rx = kM;
  sc.modulation = Modulation::kQam4;
  sc.snr_db = snr_db;
  sc.seed = seed;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  for (usize i = 0; i < n; ++i) trials.push_back(scenario.next());
  return trials;
}

serve::FrameRequest make_frame(const Trial& t, std::uint64_t id,
                               double deadline_s = 0.0) {
  serve::FrameRequest f;
  f.id = id;
  f.channel = ChannelHandle(t.h);
  f.y = t.y;
  f.sigma2 = t.sigma2;
  f.deadline_s = deadline_s;
  return f;
}

/// Collects completions and lets the producer wait for the nth one, which is
/// how the determinism tests serialize submissions (window = 1).
class Recorder {
 public:
  void add(const serve::FrameResult& r) {
    std::lock_guard<std::mutex> lock(mu_);
    results_.push_back(r);
    cv_.notify_all();
  }
  void wait_for(usize n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return results_.size() >= n; });
  }
  [[nodiscard]] std::vector<serve::FrameResult> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return results_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<serve::FrameResult> results_;
};

// ---------------------------------------------------------------------------
// Pool-spec parsing

TEST(DispatchPool, ParseBackendPool) {
  PoolDefaults pd;
  pd.primary = DecoderSpec{};
  pd.fpga_rtt_s = 2e-3;
  const std::vector<BackendConfig> pool = parse_backend_pool(
      "cpu:4,fpga:2:rtt-ms=1,kbest:2:k=32,multipe:1:threads=2,fpga-base", pd);
  ASSERT_EQ(pool.size(), 5u);

  EXPECT_EQ(pool[0].kind, BackendKind::kCpu);
  EXPECT_EQ(pool[0].label, "cpu");
  EXPECT_EQ(pool[0].lanes, 4u);
  EXPECT_FALSE(pool[0].pace_to_charged);

  EXPECT_EQ(pool[1].kind, BackendKind::kFpga);
  EXPECT_EQ(pool[1].lanes, 2u);
  EXPECT_TRUE(pool[1].pace_to_charged);
  EXPECT_FALSE(pool[1].allow_stealing);
  EXPECT_DOUBLE_EQ(pool[1].rtt_s, 1e-3);  // explicit field beats the default
  EXPECT_EQ(pool[1].decoder.device, TargetDevice::kFpgaOptimized);

  EXPECT_EQ(pool[2].kind, BackendKind::kCpu);
  EXPECT_EQ(pool[2].lanes, 2u);
  EXPECT_EQ(pool[2].decoder.strategy, Strategy::kKBest);
  EXPECT_EQ(pool[2].decoder.kbest.k, 32u);

  EXPECT_EQ(pool[3].kind, BackendKind::kParallelSd);
  EXPECT_EQ(pool[3].decoder.strategy, Strategy::kMultiPe);

  EXPECT_EQ(pool[4].kind, BackendKind::kFpga);
  EXPECT_EQ(pool[4].lanes, 1u);
  EXPECT_DOUBLE_EQ(pool[4].rtt_s, 2e-3);  // inherits the pool default
  EXPECT_EQ(pool[4].decoder.device, TargetDevice::kFpgaBaseline);

  // Repeated names get disambiguated labels (cost model calibrates per
  // backend, keyed by label).
  const std::vector<BackendConfig> twins = parse_backend_pool("cpu:2,cpu:2", pd);
  EXPECT_EQ(twins[0].label, "cpu");
  EXPECT_EQ(twins[1].label, "cpu#1");
}

TEST(DispatchPool, ParseRejectsBadSpecs) {
  const PoolDefaults pd;
  EXPECT_THROW((void)parse_backend_pool("", pd), invalid_argument_error);
  EXPECT_THROW((void)parse_backend_pool("warpdrive:2", pd),
               invalid_argument_error);
  // "cpu" serves the configured primary decoder; decoder options make no
  // sense on it.
  EXPECT_THROW((void)parse_backend_pool("cpu:2:k=9", pd),
               invalid_argument_error);
}

TEST(DispatchPool, LaddersMatchDecoderFamily) {
  PoolDefaults pd;
  const SystemConfig sys = test_system();
  auto ladder_of = [&](std::string_view spec) {
    std::vector<BackendConfig> pool = parse_backend_pool(spec, pd);
    return make_backend(sys, std::move(pool[0]))->ladder();
  };
  // SD: primary > kbest > mmse > linear
  EXPECT_EQ(ladder_of("cpu").size(), 4u);
  // Fixed complexity: no kbest rung, but mmse + linear remain.
  EXPECT_EQ(ladder_of("kbest").size(), 3u);
  // MMSE primary: degrading to the kbest/mmse rungs would be a promotion.
  EXPECT_EQ(ladder_of("mmse-neumann").size(), 2u);
  EXPECT_EQ(ladder_of("zf").size(), 1u);      // nothing cheaper than linear
}

TEST(DispatchOptions, ServerOptionsGainDispatchKeys) {
  const serve::ServerOptions o = serve::parse_server_options(
      "placement=round-robin,fpga-rtt-ms=2,no-degrade,deterministic-cost");
  EXPECT_EQ(o.placement, PlacementPolicy::kRoundRobin);
  EXPECT_DOUBLE_EQ(o.fpga_rtt_s, 2e-3);
  EXPECT_FALSE(o.degrade_on_deadline);
  EXPECT_TRUE(o.deterministic_cost);
  EXPECT_THROW((void)serve::parse_server_options("placement=psychic"),
               invalid_argument_error);
  EXPECT_THROW((void)parse_placement_policy("psychic"),
               invalid_argument_error);
}

TEST(DispatchOptions, WideFormerKeysParseEverywhere) {
  // Server options, pool-entry options, and pool defaults all carry the
  // cross-lane former knobs.
  const serve::ServerOptions o =
      serve::parse_server_options("wide-width=16,no-cross-lane-fuse");
  EXPECT_EQ(o.max_wide_width, 16u);
  EXPECT_FALSE(o.cross_lane_former);
  const serve::ServerOptions d = serve::parse_server_options("cross-lane-fuse");
  EXPECT_TRUE(d.cross_lane_former);
  EXPECT_EQ(d.max_wide_width, 32u);  // default

  PoolDefaults pd;
  pd.primary = DecoderSpec{};
  const std::vector<BackendConfig> pool = parse_backend_pool(
      "cpu:4:wide-width=8:no-cross-lane-fuse,cpu:2:cross-lane-fuse", pd);
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool[0].max_wide_width, 8u);
  EXPECT_FALSE(pool[0].cross_lane_former);
  EXPECT_TRUE(pool[1].cross_lane_former);
  EXPECT_EQ(pool[1].max_wide_width, 32u);
}

// ---------------------------------------------------------------------------
// Cost model

TEST(DispatchCost, PriorCostMonotoneInSnr) {
  // Lower SNR => deeper search => non-decreasing predicted SD cost at fixed
  // geometry. The fixed-complexity tiers are flat in SNR.
  FrameFeatures f;
  f.num_tx = 10;
  f.mod_order = 4;
  f.cond_proxy = 2.0;
  double prev = 0.0;
  for (double snr = 24.0; snr >= -6.0; snr -= 2.0) {
    f.snr_db = snr;
    const double nodes = CostModel::prior_nodes(f, DecodeTier::kPrimary);
    EXPECT_GE(nodes, prev) << "snr " << snr;
    prev = nodes;
    EXPECT_DOUBLE_EQ(CostModel::prior_nodes(f, DecodeTier::kKBest),
                     CostModel::prior_nodes(
                         FrameFeatures{10, 0, 4, 0.0, 12.0, 2.0},
                         DecodeTier::kKBest));
  }

  CostModel cm;
  const int b = cm.register_backend("cpu", 150e-9, 30e-6);
  f.snr_db = 2.0;
  const double low = cm.predict(f, b, DecodeTier::kPrimary).seconds;
  f.snr_db = 18.0;
  const double high = cm.predict(f, b, DecodeTier::kPrimary).seconds;
  EXPECT_GE(low, high);
  EXPECT_FALSE(cm.predict(f, b, DecodeTier::kPrimary).warm);
}

TEST(DispatchCost, ObservationsCalibratePredictions) {
  CostModelOptions co;
  co.ewma_alpha = 0.5;
  CostModel cm(co);
  const int b = cm.register_backend("cpu", 100e-9, 0.0);
  FrameFeatures f;
  f.num_tx = kM;
  f.mod_order = 4;
  f.snr_db = 10.0;
  f.cond_proxy = 1.5;
  cm.observe(f, b, DecodeTier::kPrimary, 1000, 1000 * 100e-9);
  const CostPrediction p1 = cm.predict(f, b, DecodeTier::kPrimary);
  EXPECT_TRUE(p1.warm);
  EXPECT_DOUBLE_EQ(p1.nodes, 1000.0);  // first observation seeds the EWMA
  cm.observe(f, b, DecodeTier::kPrimary, 2000, 2000 * 100e-9);
  const CostPrediction p2 = cm.predict(f, b, DecodeTier::kPrimary);
  // alpha = 0.5 blend in log domain: the geometric mean of 1000 and 2000.
  EXPECT_NEAR(p2.nodes, std::sqrt(1000.0 * 2000.0), 1e-6);
  EXPECT_EQ(cm.observations(), 2u);
  EXPECT_EQ(cm.bucket_count(), 1u);
  // A different SNR bucket stays cold.
  f.snr_db = 20.0;
  EXPECT_FALSE(cm.predict(f, b, DecodeTier::kPrimary).warm);
}

TEST(DispatchCost, JsonRoundTrip) {
  CostModel a;
  const int cpu = a.register_backend("cpu", 150e-9, 30e-6);
  const int fpga = a.register_backend("fpga", 10e-9, 1e-3);
  FrameFeatures f;
  f.num_tx = kM;
  f.mod_order = 4;
  f.cond_proxy = 1.2;
  for (int i = 0; i < 8; ++i) {
    f.snr_db = 4.0 * i;
    a.observe(f, cpu, DecodeTier::kPrimary, 100u * (i + 1), 1e-4 * (i + 1));
    a.observe(f, fpga, DecodeTier::kKBest, 50u * (i + 1), 2e-5 * (i + 1));
  }
  const std::string json = a.export_json();

  CostModel b;
  (void)b.register_backend("cpu", 1.0, 1.0);  // rates overwritten by import
  (void)b.register_backend("fpga", 1.0, 1.0);
  b.import_json(json);
  EXPECT_EQ(b.observations(), a.observations());
  EXPECT_EQ(b.bucket_count(), a.bucket_count());
  for (int i = 0; i < 8; ++i) {
    f.snr_db = 4.0 * i;
    for (int be : {cpu, fpga}) {
      for (DecodeTier t : {DecodeTier::kPrimary, DecodeTier::kKBest,
                           DecodeTier::kLinear}) {
        const CostPrediction pa = a.predict(f, be, t);
        const CostPrediction pb = b.predict(f, be, t);
        EXPECT_DOUBLE_EQ(pa.nodes, pb.nodes);
        EXPECT_DOUBLE_EQ(pa.seconds, pb.seconds);
        EXPECT_EQ(pa.warm, pb.warm);
      }
    }
  }
  // Re-export is byte-identical: the model is a pure function of its inputs.
  EXPECT_EQ(b.export_json(), json);

  EXPECT_THROW(b.import_json("{\"oops\""), invalid_argument_error);
  EXPECT_THROW(b.import_json("not json at all"), invalid_argument_error);
  CostModel c;
  (void)c.register_backend("other", 1.0, 1.0);
  EXPECT_THROW(c.import_json(json), invalid_argument_error);
}

TEST(DispatchCost, PrepHitAndMissBucketsAreSeparate) {
  CostModel cm;
  const int b = cm.register_backend("cpu", 100e-9, 10e-6);
  FrameFeatures f;
  f.num_tx = kM;
  f.mod_order = 4;
  f.snr_db = 10.0;
  f.cond_proxy = 1.2;
  // A prep-cache hit skips the factorization, so the same scenario observes
  // much cheaper decodes; each outcome must calibrate its own bucket.
  cm.observe(f, b, DecodeTier::kPrimary, 1000, 200e-6, /*prep_hit=*/false);
  cm.observe(f, b, DecodeTier::kPrimary, 1000, 120e-6, /*prep_hit=*/true);
  EXPECT_EQ(cm.bucket_count(), 2u);
  const CostPrediction miss = cm.predict(f, b, DecodeTier::kPrimary, false);
  const CostPrediction hit = cm.predict(f, b, DecodeTier::kPrimary, true);
  EXPECT_TRUE(miss.warm);
  EXPECT_TRUE(hit.warm);
  EXPECT_DOUBLE_EQ(miss.seconds, 200e-6);
  EXPECT_DOUBLE_EQ(hit.seconds, 120e-6);
  // Observing one outcome leaves the other cold.
  f.snr_db = 20.0;
  cm.observe(f, b, DecodeTier::kPrimary, 500, 80e-6, /*prep_hit=*/true);
  EXPECT_FALSE(cm.predict(f, b, DecodeTier::kPrimary, false).warm);
  EXPECT_TRUE(cm.predict(f, b, DecodeTier::kPrimary, true).warm);
}

TEST(DispatchCost, ImportsV1DocumentsAsPrepMissBuckets) {
  // A v1 export predates the prep-hit split; its buckets must land on the
  // ".h0" (miss) side and the hit side must stay cold.
  CostModel a;
  const int cpu = a.register_backend("cpu", 150e-9, 30e-6);
  FrameFeatures f;
  f.num_tx = kM;
  f.mod_order = 4;
  f.snr_db = 10.0;
  f.cond_proxy = 1.2;
  a.observe(f, cpu, DecodeTier::kPrimary, 1234, 5e-4, /*prep_hit=*/false);
  std::string v1 = a.export_json();
  // Rewrite the document into its v1 form: version tag 1, bare bucket keys.
  const std::string cur_tag = "\"schema_version\":3";
  const usize tag_at = v1.find(cur_tag);
  ASSERT_NE(tag_at, std::string::npos);
  v1.replace(tag_at, cur_tag.size(), "\"schema_version\":1");
  usize h0;
  while ((h0 = v1.find(".h0\"")) != std::string::npos) v1.erase(h0, 3);

  CostModel b;
  (void)b.register_backend("cpu", 1.0, 1.0);
  b.import_json(v1);
  EXPECT_EQ(b.observations(), 1u);
  EXPECT_EQ(b.bucket_count(), 1u);
  const CostPrediction miss = b.predict(f, cpu, DecodeTier::kPrimary, false);
  EXPECT_TRUE(miss.warm);
  EXPECT_DOUBLE_EQ(miss.nodes, 1234.0);
  EXPECT_FALSE(b.predict(f, cpu, DecodeTier::kPrimary, true).warm);
  // Re-export upgrades the document to the current schema with the same
  // calibration.
  CostModel c;
  (void)c.register_backend("cpu", 1.0, 1.0);
  c.import_json(b.export_json());
  EXPECT_DOUBLE_EQ(c.predict(f, cpu, DecodeTier::kPrimary, false).nodes,
                   1234.0);
}

TEST(DispatchCost, Int16PriorSeedsColdModelCheaperThanFp32) {
  // apply_rate_priors seeds int16 lanes from the fp32 prior scaled by the
  // bench_quant_kernels lane-level ratio, so a FRESH cost model already
  // orders the quantized substrate cheaper instead of treating both as
  // identical until calibration warms up.
  BackendConfig fp32;
  fp32.kind = BackendKind::kCpu;
  fp32.label = "bfs-fp32";
  fp32.decoder = parse_decoder_spec("bfs");
  apply_rate_priors(fp32);
  BackendConfig int16 = fp32;
  int16.label = "bfs-int16";
  int16.decoder = parse_decoder_spec("bfs:precision=int16");
  apply_rate_priors(int16);
  EXPECT_LT(int16.prior_seconds_per_node, fp32.prior_seconds_per_node);
  EXPECT_DOUBLE_EQ(int16.prior_seconds_per_node * 2.5,
                   fp32.prior_seconds_per_node);

  CostModel cm;
  const int bf = cm.register_backend(fp32.label, fp32.prior_seconds_per_node,
                                     fp32.prior_overhead_s);
  const int bq = cm.register_backend(int16.label, int16.prior_seconds_per_node,
                                     int16.prior_overhead_s);
  FrameFeatures f;
  f.num_tx = kM;
  f.mod_order = 4;
  f.snr_db = 8.0;
  f.cond_proxy = 1.5;
  const CostPrediction pf = cm.predict(f, bf, DecodeTier::kPrimary);
  const CostPrediction pq = cm.predict(f, bq, DecodeTier::kPrimary);
  EXPECT_FALSE(pf.warm);  // both predictions are pure prior
  EXPECT_FALSE(pq.warm);
  EXPECT_LT(pq.seconds, pf.seconds);
}

// ---------------------------------------------------------------------------
// Placement

std::vector<serve::FrameResult> run_window1(
    PlacementPolicy policy, const std::vector<serve::FrameRequest>& frames) {
  Recorder rec;
  DispatcherOptions dopts;
  dopts.policy = policy;
  dopts.cost.adapt_rates = false;  // deterministic predictions
  PoolDefaults pd;
  pd.primary = DecoderSpec{};
  std::vector<BackendConfig> pool = parse_backend_pool(
      "cpu:2:no-steal,fpga:1:rtt-ms=0,kbest:1:k=8", pd);
  Dispatcher d(test_system(), std::move(pool), dopts,
               [&rec](const serve::FrameResult& r) { rec.add(r); });
  for (usize i = 0; i < frames.size(); ++i) {
    serve::FrameRequest f = frames[i];
    EXPECT_EQ(d.submit(std::move(f)), serve::SubmitStatus::kAccepted);
    rec.wait_for(i + 1);  // window = 1: fully serialized placements
  }
  d.drain();
  const serve::ServerMetrics m = d.metrics();
  EXPECT_EQ(m.submitted, frames.size());
  EXPECT_EQ(m.completed, frames.size());
  return rec.take();
}

TEST(DispatchPlacement, SeededStreamPlacesAndDecodesIdentically) {
  // Interleave easy (high SNR) and hard (low SNR) frames so the cost model
  // sees distinct buckets and cost-aware placement has real choices to make.
  const std::vector<Trial> easy = seeded_trials(12, 14.0);
  const std::vector<Trial> hard = seeded_trials(12, 2.0, kSeed + 1);
  std::vector<serve::FrameRequest> frames;
  for (usize i = 0; i < 12; ++i) {
    frames.push_back(make_frame(easy[i], 2 * i));
    frames.push_back(make_frame(hard[i], 2 * i + 1));
  }

  for (PlacementPolicy policy :
       {PlacementPolicy::kCostAware, PlacementPolicy::kRoundRobin}) {
    const std::vector<serve::FrameResult> a = run_window1(policy, frames);
    const std::vector<serve::FrameResult> b = run_window1(policy, frames);
    ASSERT_EQ(a.size(), b.size());
    for (usize i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].backend_id, b[i].backend_id) << "frame " << a[i].id;
      EXPECT_EQ(a[i].worker_id, b[i].worker_id) << "frame " << a[i].id;
      EXPECT_EQ(a[i].lane_id, b[i].lane_id);
      EXPECT_EQ(a[i].tier, b[i].tier);
      EXPECT_EQ(a[i].status, b[i].status);
      EXPECT_EQ(a[i].result.indices, b[i].result.indices);  // bit-identical
      EXPECT_DOUBLE_EQ(a[i].result.metric, b[i].result.metric);
    }
  }
}

TEST(DispatchPlacement, RoundRobinCyclesGlobalLanes) {
  const std::vector<Trial> trials = seeded_trials(8, 10.0);
  std::vector<serve::FrameRequest> frames;
  for (usize i = 0; i < trials.size(); ++i) {
    frames.push_back(make_frame(trials[i], i));
  }
  const std::vector<serve::FrameResult> r =
      run_window1(PlacementPolicy::kRoundRobin, frames);
  ASSERT_EQ(r.size(), 8u);
  for (usize i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].worker_id, i % 4u);  // 2 cpu + 1 fpga + 1 kbest lanes
    EXPECT_EQ(r[i].tier, serve::DecodeTier::kPrimary);
  }
}

TEST(DispatchPlacement, MixedPoolConservesEveryFrameUnderOverload) {
  constexpr usize kFrames = 160;
  Recorder rec;
  DispatcherOptions dopts;
  dopts.policy = PlacementPolicy::kRoundRobin;  // guarantees per-lane traffic
  PoolDefaults pd;
  pd.primary = DecoderSpec{};
  pd.lane_queue_capacity = 4;
  pd.policy = serve::BackpressurePolicy::kReject;
  std::vector<BackendConfig> pool =
      parse_backend_pool("cpu:2,fpga:1,kbest:1", pd);
  Dispatcher d(test_system(), std::move(pool), dopts,
               [&rec](const serve::FrameResult& r) { rec.add(r); });
  const std::vector<Trial> trials = seeded_trials(kFrames, 6.0);
  std::uint64_t rejected = 0;
  for (usize i = 0; i < kFrames; ++i) {
    const serve::SubmitStatus st = d.submit(make_frame(trials[i], i));
    ASSERT_NE(st, serve::SubmitStatus::kClosed);
    if (st == serve::SubmitStatus::kRejected) ++rejected;
  }
  d.drain();

  const serve::ServerMetrics m = d.metrics();
  EXPECT_EQ(m.submitted, kFrames);
  EXPECT_EQ(m.rejected, rejected);
  EXPECT_EQ(m.accounted(), kFrames);  // conservation: no frame silently lost
  EXPECT_EQ(m.in_queue, 0u);
  EXPECT_EQ(rec.take().size(), kFrames - rejected);

  // The per-backend breakdown partitions the aggregate exactly.
  const std::vector<BackendMetrics> bms = d.backend_metrics();
  ASSERT_EQ(bms.size(), 3u);
  std::uint64_t sub = 0, acc = 0;
  for (const BackendMetrics& bm : bms) {
    EXPECT_GT(bm.metrics.submitted, 0u);
    sub += bm.metrics.submitted;
    acc += bm.metrics.accounted();
  }
  EXPECT_EQ(sub, kFrames);
  EXPECT_EQ(acc, kFrames);
  EXPECT_EQ(bms[1].kind, BackendKind::kFpga);
}

// ---------------------------------------------------------------------------
// Overload ladder

TEST(DispatchLadder, DegradesTiersAgainstPredictedDeadline) {
  PoolDefaults pd;
  pd.primary = DecoderSpec{};
  const std::vector<BackendConfig> pool = parse_backend_pool("cpu", pd);

  // A hard (low SNR) frame, and the dispatcher's own cold predictions for
  // it, derived from the same priors the pool entry carries — the test pins
  // the ladder walk, not the constants.
  const Trial t = seeded_trials(1, -5.0).front();
  CostModel probe;
  const int b = probe.register_backend(pool[0].label,
                                       pool[0].prior_seconds_per_node,
                                       pool[0].prior_overhead_s);
  const FrameFeatures f = FrameFeatures::extract(t.h, t.sigma2, 4);
  const double p_sd = probe.predict(f, b, DecodeTier::kPrimary).seconds;
  const double p_kb = probe.predict(f, b, DecodeTier::kKBest).seconds;
  const double p_ln = probe.predict(f, b, DecodeTier::kLinear).seconds;
  ASSERT_GT(p_sd, p_kb);  // at -5 dB the SD prior must dominate K-Best
  ASSERT_GT(p_kb, p_ln);

  const auto degrades_for = [&](double deadline_s) {
    Recorder rec;
    DispatcherOptions dopts;
    dopts.policy = PlacementPolicy::kCostAware;
    dopts.cost.adapt_rates = false;
    std::vector<BackendConfig> p = parse_backend_pool("cpu", pd);
    Dispatcher d(test_system(), std::move(p), dopts,
                 [&rec](const serve::FrameResult& r) { rec.add(r); });
    EXPECT_EQ(d.submit(make_frame(t, 0, deadline_s)),
              serve::SubmitStatus::kAccepted);
    rec.wait_for(1);
    d.drain();
    return d.stats();
  };

  const DispatchStats fits = degrades_for(2.0 * p_sd);
  EXPECT_EQ(fits.degraded_kbest, 0u);
  EXPECT_EQ(fits.degraded_linear, 0u);

  const DispatchStats kb = degrades_for(0.5 * (p_sd + p_kb));
  EXPECT_EQ(kb.degraded_kbest, 1u);
  EXPECT_EQ(kb.degraded_linear, 0u);

  const DispatchStats ln = degrades_for(0.5 * (p_kb + p_ln));
  EXPECT_EQ(ln.degraded_kbest, 0u);
  EXPECT_EQ(ln.degraded_linear, 1u);

  // Nothing fits: the ladder still serves the cheapest tier — it sheds
  // work, never frames.
  const DispatchStats none = degrades_for(0.5 * p_ln);
  EXPECT_EQ(none.degraded_linear, 1u);
}

// ---------------------------------------------------------------------------
// Work stealing

class CaptureSink final : public LaneSink {
 public:
  // `wait_for_steal` holds the first retiring lane until a sibling has
  // stolen — only the stealing test wants that; everyone else would eat
  // the 10 s timeout on every retire (single-lane runs never steal).
  explicit CaptureSink(bool wait_for_steal = false)
      : wait_for_steal_(wait_for_steal) {}

  void frame_retired(const PlacedFrame& placed,
                     serve::FrameResult&& result) override {
    std::unique_lock<std::mutex> lock(mu_);
    // The backlog is deep, so the idle lane must steal — the timeout only
    // guards against a hang if stealing is broken.
    if (wait_for_steal_)
      cv_.wait_for(lock, std::chrono::seconds(10), [&] { return stolen_ > 0; });
    retired_.emplace_back(placed, std::move(result));
  }
  void frame_stolen(const PlacedFrame&, unsigned) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++stolen_;
    cv_.notify_all();
  }
  [[nodiscard]] std::vector<std::pair<PlacedFrame, serve::FrameResult>> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return retired_;
  }
  [[nodiscard]] std::uint64_t stolen() {
    std::lock_guard<std::mutex> lock(mu_);
    return stolen_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<PlacedFrame, serve::FrameResult>> retired_;
  std::uint64_t stolen_ = 0;
  bool wait_for_steal_ = false;
};

TEST(DispatchStealing, StolenFramesDecodeBitIdentically) {
  constexpr usize kFrames = 32;
  const SystemConfig sys = test_system();
  BackendConfig cfg;
  cfg.kind = BackendKind::kCpu;
  cfg.label = "cpu";
  cfg.lanes = 2;
  cfg.decoder = DecoderSpec{};
  cfg.lane_queue_capacity = kFrames;
  cfg.allow_stealing = true;
  apply_rate_priors(cfg);
  CpuBackend backend(sys, cfg);

  // Pile every frame onto lane 0 *before* starting the lanes: lane 1 wakes
  // idle against a deep sibling backlog and must steal.
  const std::vector<Trial> trials = seeded_trials(kFrames, 6.0);
  for (usize i = 0; i < kFrames; ++i) {
    PlacedFrame pf;
    pf.frame = make_frame(trials[i], i);
    pf.frame.submit_time = serve::Clock::now();
    pf.lane = 0;
    const Backend::PushResult pr = backend.place(std::move(pf));
    ASSERT_EQ(pr.status, serve::PushStatus::kAccepted);
  }
  CaptureSink sink{/*wait_for_steal=*/true};
  backend.start(sink);
  backend.close();  // lanes drain the backlog, then exit
  backend.join();

  auto retired = sink.take();
  ASSERT_EQ(retired.size(), kFrames);
  EXPECT_GT(backend.snapshot().steals, 0u);
  EXPECT_EQ(backend.snapshot().steals, sink.stolen());

  // Stolen or not, every decode matches the single-shot reference bit for
  // bit: lanes share one DecoderSpec, so rebinding a frame cannot change
  // its result.
  auto reference = make_detector(sys, DecoderSpec{});
  bool saw_stolen = false;
  for (const auto& [placed, result] : retired) {
    saw_stolen = saw_stolen || result.stolen;
    const Trial& t = trials[result.id];
    const DecodeResult want = reference->decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(result.result.indices, want.indices) << "frame " << result.id;
    EXPECT_DOUBLE_EQ(result.result.metric, want.metric);
    if (result.stolen) {
      EXPECT_EQ(result.lane_id, 1u);
    }
  }
  EXPECT_TRUE(saw_stolen);
}

TEST(DispatchCoherent, FusedRunsAreBitIdenticalAndAccounted) {
  // Pre-fill one lane with 4 coherence blocks of 8 frames sharing a handle,
  // then start it: every pop is one maximal same-channel run of 8, so the
  // fused path executes deterministically — one factorization per block, one
  // decode_batch_with per pop.
  constexpr usize kBlock = 8;
  constexpr usize kBlocks = 4;
  constexpr usize kFrames = kBlock * kBlocks;
  const SystemConfig sys = test_system();
  BackendConfig cfg;
  cfg.kind = BackendKind::kCpu;
  cfg.label = "cpu";
  cfg.lanes = 1;
  cfg.decoder = parse_decoder_spec("bfs");
  cfg.lane_queue_capacity = kFrames;
  cfg.batch_size = kBlock;
  apply_rate_priors(cfg);
  CpuBackend backend(sys, cfg);

  ScenarioConfig sc;
  sc.num_tx = kM;
  sc.num_rx = kM;
  sc.modulation = Modulation::kQam4;
  sc.snr_db = 8.0;
  sc.seed = kSeed;
  sc.coherence_block = kBlock;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  for (usize i = 0; i < kFrames; ++i) trials.push_back(scenario.next());

  for (usize block = 0; block < kBlocks; ++block) {
    const ChannelHandle shared(trials[block * kBlock].h);
    for (usize j = 0; j < kBlock; ++j) {
      const usize i = block * kBlock + j;
      PlacedFrame pf;
      pf.frame.id = i;
      pf.frame.channel = shared;
      pf.frame.y = trials[i].y;
      pf.frame.sigma2 = trials[i].sigma2;
      pf.frame.submit_time = serve::Clock::now();
      pf.lane = 0;
      ASSERT_EQ(backend.place(std::move(pf)).status,
                serve::PushStatus::kAccepted);
    }
  }
  CaptureSink sink;
  backend.start(sink);
  backend.close();
  backend.join();

  const Backend::Snapshot snap = backend.snapshot();
  EXPECT_EQ(snap.frames, kFrames);
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_EQ(snap.prep_misses, kBlocks);  // one factorization per block
  EXPECT_EQ(snap.prep_hits, kFrames - kBlocks);
  EXPECT_EQ(snap.fused_runs, kBlocks);
  EXPECT_EQ(snap.fused_frames, kFrames);
  ASSERT_GT(snap.fused_width_counts.size(), kBlock);
  EXPECT_EQ(snap.fused_width_counts[kBlock], kBlocks);

  // Fusion must be invisible in the bits: every frame matches the one-shot
  // decode of its trial.
  auto reference = make_detector(sys, parse_decoder_spec("bfs"));
  auto retired = sink.take();
  ASSERT_EQ(retired.size(), kFrames);
  for (const auto& [placed, result] : retired) {
    EXPECT_EQ(result.status, serve::FrameStatus::kCompleted);
    const Trial& t = trials[result.id];
    const DecodeResult want = reference->decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(result.result.indices, want.indices) << "frame " << result.id;
    EXPECT_EQ(result.result.metric, want.metric) << "frame " << result.id;
    EXPECT_EQ(result.result.stats.nodes_expanded,
              want.stats.nodes_expanded) << "frame " << result.id;
    EXPECT_TRUE(placed.prep_hit || result.id % kBlock == 0)
        << "frame " << result.id;
  }
}

TEST(DispatchCoherent, InterleavedCellsFuseAcrossChannelBoundaries) {
  // Two coherent streams with DIFFERENT channels interleaved frame-by-frame
  // (A,B,A,B,...) on one lane. Runs split on tier only, so every pop of 8 is
  // ONE wide fused run spanning both channels, and each distinct channel is
  // factorized exactly once — the cross-channel generalization of the
  // same-channel fusion above.
  constexpr usize kBatch = 8;
  constexpr usize kPops = 2;
  constexpr usize kFrames = kBatch * kPops;
  const SystemConfig sys = test_system();
  BackendConfig cfg;
  cfg.kind = BackendKind::kCpu;
  cfg.label = "cpu";
  cfg.lanes = 1;
  cfg.decoder = parse_decoder_spec("bfs");
  cfg.lane_queue_capacity = kFrames;
  cfg.batch_size = kBatch;
  apply_rate_priors(cfg);
  CpuBackend backend(sys, cfg);

  // Two scenarios, one coherent channel each: stream A and stream B.
  auto coherent_trials = [](std::uint64_t seed) {
    ScenarioConfig sc;
    sc.num_tx = kM;
    sc.num_rx = kM;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = 8.0;
    sc.seed = seed;
    sc.coherence_block = kFrames / 2;
    Scenario scenario(sc);
    std::vector<Trial> trials;
    for (usize i = 0; i < kFrames / 2; ++i) trials.push_back(scenario.next());
    return trials;
  };
  const std::vector<Trial> stream_a = coherent_trials(kSeed);
  const std::vector<Trial> stream_b = coherent_trials(kSeed + 7);
  const ChannelHandle chan_a(stream_a[0].h);
  const ChannelHandle chan_b(stream_b[0].h);

  std::vector<const Trial*> order(kFrames);
  for (usize i = 0; i < kFrames; ++i) {
    order[i] = (i % 2 == 0) ? &stream_a[i / 2] : &stream_b[i / 2];
    PlacedFrame pf;
    pf.frame.id = i;
    pf.frame.channel = (i % 2 == 0) ? chan_a : chan_b;
    pf.frame.y = order[i]->y;
    pf.frame.sigma2 = order[i]->sigma2;
    pf.frame.submit_time = serve::Clock::now();
    pf.lane = 0;
    ASSERT_EQ(backend.place(std::move(pf)).status,
              serve::PushStatus::kAccepted);
  }
  CaptureSink sink;
  backend.start(sink);
  backend.close();
  backend.join();

  const Backend::Snapshot snap = backend.snapshot();
  EXPECT_EQ(snap.completed, kFrames);
  // The interleaving must NOT split the runs: one fused run per pop at the
  // full batch width, with only two factorizations across the whole stream.
  EXPECT_EQ(snap.fused_runs, kPops);
  EXPECT_EQ(snap.fused_frames, kFrames);
  ASSERT_GT(snap.fused_width_counts.size(), kBatch);
  EXPECT_EQ(snap.fused_width_counts[kBatch], kPops);
  EXPECT_EQ(snap.prep_misses, 2u);  // A and B, once each
  EXPECT_EQ(snap.prep_hits, kFrames - 2);

  auto reference = make_detector(sys, parse_decoder_spec("bfs"));
  auto retired = sink.take();
  ASSERT_EQ(retired.size(), kFrames);
  for (const auto& [placed, result] : retired) {
    EXPECT_EQ(result.status, serve::FrameStatus::kCompleted);
    const Trial& t = *order[result.id];
    const DecodeResult want = reference->decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(result.result.indices, want.indices) << "frame " << result.id;
    EXPECT_EQ(result.result.metric, want.metric) << "frame " << result.id;
    EXPECT_EQ(result.result.stats.nodes_expanded, want.stats.nodes_expanded)
        << "frame " << result.id;
  }
}

// ---------------------------------------------------------------------------
// Cross-lane wide-batch former (DESIGN.md §16)

// Interleaves kCells seeded single-cell streams round-robin: consecutive
// frames carry DIFFERENT channels, the multi-cell traffic shape the former
// is built to fuse across.
std::vector<Trial> interleaved_cell_trials(usize cells, usize per_cell,
                                           double snr_db) {
  std::vector<Trial> trials(cells * per_cell);
  for (usize cell = 0; cell < cells; ++cell) {
    const std::vector<Trial> s = seeded_trials(per_cell, snr_db, kSeed + cell);
    for (usize k = 0; k < per_cell; ++k) trials[cell + k * cells] = s[k];
  }
  return trials;
}

// Pre-loads `trials` round-robin across the backend's lanes, runs the pool
// to drain, and returns every retirement plus the final snapshot.
std::vector<std::pair<PlacedFrame, serve::FrameResult>> run_former_backend(
    const std::string& pool_spec, bool former, const std::vector<Trial>& trials,
    Backend::Snapshot& snap) {
  PoolDefaults pd;
  pd.primary = parse_decoder_spec("bfs");
  pd.batch_size = 1;  // B=1: wide runs exist only if the former gathers them
  pd.lane_queue_capacity = trials.size();
  std::vector<BackendConfig> pool = parse_backend_pool(pool_spec, pd);
  pool[0].cross_lane_former = former;
  const unsigned lanes = pool[0].lanes;
  auto backend = make_backend(test_system(), std::move(pool[0]));
  for (usize i = 0; i < trials.size(); ++i) {
    PlacedFrame pf;
    pf.frame = make_frame(trials[i], i);
    pf.frame.submit_time = serve::Clock::now();
    pf.lane = static_cast<unsigned>(i % lanes);
    EXPECT_EQ(backend->place(std::move(pf)).status,
              serve::PushStatus::kAccepted);
  }
  CaptureSink sink;
  backend->start(sink);
  backend->close();
  backend->join();
  snap = backend->snapshot();
  return sink.take();
}

TEST(DispatchFormer, WideFormationIsBitIdenticalAcrossConfigs) {
  // The acceptance invariant of the whole feature: seeded multi-cell traffic
  // through a 4-lane backend decodes to the same bits with the former off
  // (sequential width-1 runs), the former on (cross-lane wide runs), and a
  // ParallelSd backend whose wide runs are themselves partitioned across
  // 1/2/4 PE workers. Every configuration is compared against the one-shot
  // reference decode of its own detector family.
  constexpr usize kCells = 4;
  constexpr usize kPerCell = 10;
  constexpr usize kFrames = kCells * kPerCell;
  const std::vector<Trial> trials =
      interleaved_cell_trials(kCells, kPerCell, 8.0);
  const SystemConfig sys = test_system();

  struct Config {
    std::string pool;
    bool former;
    std::string reference;
  };
  const std::vector<Config> configs = {
      {"bfs:4", false, "bfs"},
      {"bfs:4", true, "bfs"},
      {"multipe:4:threads=1", true, "multipe:threads=1"},
      {"multipe:4:threads=2", true, "multipe:threads=1"},
      {"multipe:4:threads=4", true, "multipe:threads=1"},
  };
  for (const Config& c : configs) {
    Backend::Snapshot snap;
    auto retired = run_former_backend(c.pool, c.former, trials, snap);
    ASSERT_EQ(retired.size(), kFrames) << c.pool;
    EXPECT_EQ(snap.completed, kFrames) << c.pool;
    if (c.former) {
      // With every lane backlogged and B=1, the former must actually form
      // wide runs — a silently disabled former would still pass the bit
      // checks below.
      EXPECT_GT(snap.former_gathered, 0u) << c.pool;
      EXPECT_GT(snap.fused_frames, 0u) << c.pool;
    } else {
      EXPECT_EQ(snap.former_gathered, 0u) << c.pool;
      EXPECT_EQ(snap.fused_runs, 0u) << c.pool;
    }
    auto reference = make_detector(sys, parse_decoder_spec(c.reference));
    for (const auto& [placed, result] : retired) {
      EXPECT_EQ(result.status, serve::FrameStatus::kCompleted) << c.pool;
      const Trial& t = trials[result.id];
      const DecodeResult want = reference->decode(t.h, t.y, t.sigma2);
      EXPECT_EQ(result.result.indices, want.indices)
          << c.pool << " frame " << result.id;
      EXPECT_DOUBLE_EQ(result.result.metric, want.metric)
          << c.pool << " frame " << result.id;
    }
  }
}

TEST(DispatchFormer, GatherAndStealRetireEveryFrameExactlyOnce) {
  // The claim-window regression for former + work stealing: both mechanisms
  // remove frames under the same lock, so a frame can be claimed exactly
  // once no matter how gathers and steals interleave. Frames pile onto
  // lanes 0 and 1 only: those lanes pop-and-gather from each other while
  // lanes 2 and 3 steal from them concurrently.
  constexpr usize kFrames = 64;
  const SystemConfig sys = test_system();
  BackendConfig cfg;
  cfg.kind = BackendKind::kCpu;
  cfg.label = "cpu";
  cfg.lanes = 4;
  cfg.decoder = parse_decoder_spec("bfs");
  cfg.lane_queue_capacity = kFrames;
  cfg.batch_size = 2;
  cfg.allow_stealing = true;
  cfg.cross_lane_former = true;
  apply_rate_priors(cfg);
  CpuBackend backend(sys, cfg);

  const std::vector<Trial> trials = seeded_trials(kFrames, 6.0);
  for (usize i = 0; i < kFrames; ++i) {
    PlacedFrame pf;
    pf.frame = make_frame(trials[i], i);
    pf.frame.submit_time = serve::Clock::now();
    pf.lane = static_cast<unsigned>(i % 2);
    ASSERT_EQ(backend.place(std::move(pf)).status,
              serve::PushStatus::kAccepted);
  }
  CaptureSink sink;
  backend.start(sink);
  backend.close();
  backend.join();

  auto retired = sink.take();
  ASSERT_EQ(retired.size(), kFrames);
  std::vector<int> seen(kFrames, 0);
  for (const auto& [placed, result] : retired) {
    ASSERT_LT(result.id, kFrames);
    ++seen[result.id];
  }
  for (usize i = 0; i < kFrames; ++i) {
    EXPECT_EQ(seen[i], 1) << "frame " << i;  // no frame dropped or decoded twice
  }
  const Backend::Snapshot snap = backend.snapshot();
  EXPECT_EQ(snap.frames, kFrames);
  EXPECT_EQ(snap.completed, kFrames);
  EXPECT_EQ(snap.in_queue, 0u);
  // Gathered frames are not steals: the counters stay disjoint, and the sink
  // hears about every rebinding through either channel.
  EXPECT_EQ(sink.stolen(), snap.steals + snap.former_gathered);
}

TEST(DispatchPlacement, GeometryRoutesTallToMmseAndSquareToSd) {
  // The massive-MIMO placement pin (PR 10): a mixed pool of a tree-search
  // backend and an MMSE-Neumann backend, fed mixed square + tall traffic
  // under the cost-aware policy with a cold, frozen model. The geometry term
  // in the kMmseApprox prior must send every tall frame to the MMSE backend
  // (diagonally dominant Gram, a couple of GEMVs) and every square frame to
  // the tree search (the Neumann penalty diverges as N_r -> M).
  constexpr usize kEach = 8;
  const std::vector<Trial> square = seeded_trials(kEach, 10.0);
  std::vector<Trial> tall;
  {
    ScenarioConfig sc;
    sc.num_tx = kM;
    sc.num_rx = 4 * kM;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = 10.0;
    sc.seed = kSeed + 99;
    Scenario scenario(sc);
    for (usize i = 0; i < kEach; ++i) tall.push_back(scenario.next());
  }

  Recorder rec;
  DispatcherOptions dopts;
  dopts.policy = PlacementPolicy::kCostAware;
  dopts.cost.adapt_rates = false;  // frozen priors: placement is pure geometry
  PoolDefaults pd;
  pd.primary = DecoderSpec{};
  std::vector<BackendConfig> pool =
      parse_backend_pool("cpu:1:no-steal,mmse-neumann:1:no-steal", pd);
  Dispatcher d(test_system(), std::move(pool), dopts,
               [&rec](const serve::FrameResult& r) { rec.add(r); });
  for (usize i = 0; i < kEach; ++i) {
    EXPECT_EQ(d.submit(make_frame(square[i], i)),
              serve::SubmitStatus::kAccepted);
    EXPECT_EQ(d.submit(make_frame(tall[i], 100 + i)),
              serve::SubmitStatus::kAccepted);
    rec.wait_for(2 * (i + 1));  // window 1: placements see a drained pool
  }
  d.drain();

  for (const serve::FrameResult& r : rec.take()) {
    EXPECT_EQ(r.status, serve::FrameStatus::kCompleted);
    EXPECT_EQ(r.tier, serve::DecodeTier::kPrimary);  // routed, not degraded
    if (r.id < 100) {
      EXPECT_EQ(r.backend_id, 0) << "square frame " << r.id;
    } else {
      EXPECT_EQ(r.backend_id, 1) << "tall frame " << r.id;
    }
  }
  const std::vector<BackendMetrics> bms = d.backend_metrics();
  ASSERT_EQ(bms.size(), 2u);
  EXPECT_EQ(bms[0].label, "cpu");
  EXPECT_EQ(bms[0].metrics.submitted, kEach);
  EXPECT_EQ(bms[1].label, "mmse-neumann");
  EXPECT_EQ(bms[1].metrics.submitted, kEach);
  EXPECT_EQ(d.stats().degraded_mmse, 0u);  // primary routing, not the ladder
}

TEST(DispatchFormer, PacedBackendAmortizesRttAcrossGatheredRuns) {
  // Former-aware pacing (PR 10 satellite): a paced backend's gathered run
  // ships as ONE device round trip, so its pacing sleep charges
  // rtt + sum(search) once per run instead of rtt per frame. With a 40 ms
  // RTT and 8 frames per lane, the per-frame floor is ~320 ms of sleep per
  // lane; the former must land far under it while decoding the same bits.
  constexpr usize kFrames = 16;
  const std::vector<Trial> trials = seeded_trials(kFrames, 10.0);

  const auto timed = [&](bool former, Backend::Snapshot& snap, double& wall) {
    const auto t0 = serve::Clock::now();
    auto retired = run_former_backend("cpu:2:rtt-ms=40", former, trials, snap);
    wall = std::chrono::duration<double>(serve::Clock::now() - t0).count();
    return retired;
  };

  Backend::Snapshot paced_per_frame, paced_fused;
  double wall_per_frame = 0.0, wall_fused = 0.0;
  auto slow = timed(false, paced_per_frame, wall_per_frame);
  auto fast = timed(true, paced_fused, wall_fused);
  ASSERT_EQ(slow.size(), kFrames);
  ASSERT_EQ(fast.size(), kFrames);
  EXPECT_EQ(paced_fused.completed, kFrames);
  EXPECT_GT(paced_fused.former_gathered, 0u);

  // Width-1 runs pay the RTT per frame: 8 frames on each of 2 lanes.
  EXPECT_GE(wall_per_frame, 0.3);
  // Gathered runs pay it per run. Even a conservative gather (several runs
  // per lane) halves the sleep; a full gather needs just one per lane.
  EXPECT_LT(wall_fused, 0.5 * wall_per_frame);

  // Pacing is a timing policy, never a result policy: both configurations
  // decode bit-identically to the one-shot reference.
  auto reference = make_detector(test_system(), parse_decoder_spec("bfs"));
  for (const auto* retired : {&slow, &fast}) {
    for (const auto& [placed, result] : *retired) {
      EXPECT_EQ(result.status, serve::FrameStatus::kCompleted);
      const Trial& t = trials[result.id];
      const DecodeResult want = reference->decode(t.h, t.y, t.sigma2);
      EXPECT_EQ(result.result.indices, want.indices) << "frame " << result.id;
      EXPECT_DOUBLE_EQ(result.result.metric, want.metric);
    }
  }
}

}  // namespace
}  // namespace sd::dispatch
