#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sd {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"SNR (dB)", "CPU (ms)"});
  t.add_row({"4", "7.0"});
  t.add_row({"20", "0.55"});
  const std::string out = t.render();
  EXPECT_NE(out.find("SNR (dB)"), std::string::npos);
  EXPECT_NE(out.find("0.55"), std::string::npos);
  // Every line has the same width.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), invalid_argument_error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), invalid_argument_error);
}

TEST(Table, SeparatorRendersAsRule) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + bottom + inner separator = 4 rules.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Formatting, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Formatting, FmtPct) {
  EXPECT_EQ(fmt_pct(0.29), "29%");
  EXPECT_EQ(fmt_pct(0.075, 1), "7.5%");
}

TEST(Formatting, FmtFactor) {
  EXPECT_EQ(fmt_factor(35.84), "35.8x");
  EXPECT_EQ(fmt_factor(9.0, 0), "9x");
}

TEST(Formatting, FmtSci) {
  EXPECT_EQ(fmt_sci(0.0032, 1), "3.2e-03");
}

}  // namespace
}  // namespace sd
