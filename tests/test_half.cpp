#include "fpga/half.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sd {
namespace {

TEST(Half, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 1024.0f, 0.125f}) {
    EXPECT_EQ(round_to_half(v), v) << v;
  }
}

TEST(Half, SignedZeroPreserved) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half_bits(-2.0f), 0xC000);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7BFF);  // max finite half
  EXPECT_EQ(half_bits_to_float(0x3C00), 1.0f);
  EXPECT_EQ(half_bits_to_float(0x7C00),
            std::numeric_limits<float>::infinity());
}

TEST(Half, OverflowSaturatesToInfinity) {
  EXPECT_EQ(round_to_half(1e6f), std::numeric_limits<float>::infinity());
  EXPECT_EQ(round_to_half(-1e6f), -std::numeric_limits<float>::infinity());
}

TEST(Half, SubnormalsRepresented) {
  const float smallest_subnormal = half_bits_to_float(0x0001);
  EXPECT_NEAR(smallest_subnormal, 5.960464477539063e-08f, 1e-12f);
  EXPECT_EQ(round_to_half(smallest_subnormal), smallest_subnormal);
}

TEST(Half, UnderflowFlushesToZeroBelowHalfSubnormal) {
  EXPECT_EQ(round_to_half(1e-12f), 0.0f);
  EXPECT_EQ(round_to_half(-1e-12f), -0.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
  // round-to-even picks 1.0.
  EXPECT_EQ(round_to_half(1.0f + std::ldexp(1.0f, -11)), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9; even mantissa is 1+2^-9.
  EXPECT_EQ(round_to_half(1.0f + 3 * std::ldexp(1.0f, -11)),
            1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, RelativeErrorBoundedForNormals) {
  // Deterministic scan across magnitudes.
  for (int e = -10; e <= 10; ++e) {
    for (float frac = 1.0f; frac < 2.0f; frac += 0.0437f) {
      const float v = std::ldexp(frac, e);
      const float r = round_to_half(v);
      EXPECT_NEAR(r, v, std::abs(v) * 0.0005f) << v;  // 2^-11 rel error
    }
  }
}

TEST(Half, RoundTripIsIdempotent) {
  for (float v : {3.14159f, -0.007f, 123.456f, 9.9e-5f}) {
    const float once = round_to_half(v);
    EXPECT_EQ(round_to_half(once), once);
  }
}

TEST(Half, NanStaysNan) {
  EXPECT_TRUE(std::isnan(
      half_bits_to_float(float_to_half_bits(std::nanf("")))));
}

TEST(HalfCmadd, MatchesFloatWithinHalfPrecision) {
  const cplx acc{0.5f, -0.25f};
  const cplx a{1.5f, 2.0f};
  const cplx b{-0.75f, 0.125f};
  const cplx exact = acc + a * b;
  const cplx rounded = half_cmadd(acc, a, b);
  EXPECT_NEAR(rounded.real(), exact.real(), 5e-3f);
  EXPECT_NEAR(rounded.imag(), exact.imag(), 5e-3f);
}

TEST(HalfCmadd, ExactForSmallPowersOfTwo) {
  // All intermediates representable in half: the fp16 datapath is exact.
  const cplx acc{1.0f, 2.0f};
  const cplx a{0.5f, 0.0f};
  const cplx b{4.0f, 8.0f};
  EXPECT_EQ(half_cmadd(acc, a, b), acc + a * b);
}

}  // namespace
}  // namespace sd
