#include "core/sphere_decoder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(const SystemConfig& sys, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = sys.num_tx;
  sc.num_rx = sys.num_rx;
  sc.modulation = sys.modulation;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

TEST(Factory, BuildsEveryCpuStrategy) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  const Trial t = make_trial(sys, 10.0, 1);
  for (Strategy strat :
       {Strategy::kMrc, Strategy::kZf, Strategy::kMmse, Strategy::kMl,
        Strategy::kBestFsGemm, Strategy::kBestFsScalar, Strategy::kDfs,
        Strategy::kGemmBfs, Strategy::kFsd, Strategy::kKBest,
        Strategy::kMultiPe}) {
    DecoderSpec spec;
    spec.strategy = strat;
    spec.multi_pe.num_threads = 2;
    auto det = make_detector(sys, spec);
    ASSERT_NE(det, nullptr) << strategy_name(strat);
    EXPECT_EQ(det->name(), strategy_name(strat));
    const DecodeResult r = det->decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(r.indices.size(), 4u) << strategy_name(strat);
  }
}

TEST(Factory, BuildsFpgaTargets) {
  const SystemConfig sys{6, 6, Modulation::kQam4};
  const Trial t = make_trial(sys, 8.0, 2);

  DecoderSpec opt_spec;
  opt_spec.device = TargetDevice::kFpgaOptimized;
  auto opt = make_detector(sys, opt_spec);
  EXPECT_EQ(opt->name(), "FPGA-optimized");

  DecoderSpec base_spec;
  base_spec.device = TargetDevice::kFpgaBaseline;
  auto base = make_detector(sys, base_spec);
  EXPECT_EQ(base->name(), "FPGA-baseline");

  // Both decode to the same (exact) answer as the CPU reference.
  auto cpu = make_detector(sys, DecoderSpec{});
  const auto expected = cpu->decode(t.h, t.y, t.sigma2).indices;
  EXPECT_EQ(opt->decode(t.h, t.y, t.sigma2).indices, expected);
  EXPECT_EQ(base->decode(t.h, t.y, t.sigma2).indices, expected);
}

TEST(Factory, FpgaWithWrongStrategyThrows) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  DecoderSpec spec;
  spec.device = TargetDevice::kFpgaOptimized;
  spec.strategy = Strategy::kDfs;
  EXPECT_THROW((void)make_detector(sys, spec), invalid_argument_error);
}

TEST(Factory, RejectsUnderdeterminedSystem) {
  DecoderSpec spec;
  EXPECT_THROW((void)make_detector(SystemConfig{8, 4, Modulation::kQam4}, spec),
               invalid_argument_error);
  EXPECT_THROW((void)make_detector(SystemConfig{0, 0, Modulation::kQam4}, spec),
               invalid_argument_error);
}

TEST(Factory, RectangularSystemsSupported) {
  // More receivers than transmitters (receive diversity).
  const SystemConfig sys{4, 8, Modulation::kQam16};
  const Trial t = make_trial(sys, 8.0, 3);
  auto det = make_detector(sys, DecoderSpec{});
  const DecodeResult r = det->decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(r.indices.size(), 4u);
  EXPECT_EQ(r.indices, t.tx.indices);  // diversity + moderate SNR: exact
}

TEST(Factory, StrategyAndDeviceNamesAreStable) {
  EXPECT_EQ(strategy_name(Strategy::kBestFsGemm), "SD-GEMM-BestFS");
  EXPECT_EQ(strategy_name(Strategy::kGemmBfs), "SD-GEMM-BFS");
  EXPECT_EQ(device_name(TargetDevice::kCpu), "CPU");
  EXPECT_EQ(device_name(TargetDevice::kFpgaOptimized), "FPGA-optimized");
}

TEST(Factory, Fp16FpgaVariantBuildsAndDecodes) {
  const SystemConfig sys{6, 6, Modulation::kQam4};
  DecoderSpec spec;
  spec.device = TargetDevice::kFpgaOptimized;
  spec.fpga_precision = Precision::kFp16;
  auto det = make_detector(sys, spec);
  const Trial t = make_trial(sys, 12.0, 4);
  const DecodeResult r = det->decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(r.indices.size(), 6u);
}

}  // namespace
}  // namespace sd
