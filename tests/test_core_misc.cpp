#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/version.hpp"
#include "decode/detector.hpp"
#include "decode/ml.hpp"
#include "decode/sd_gemm.hpp"
#include "mimo/scenario.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

TEST(Version, IsConsistent) {
  const std::string v = kVersionString;
  EXPECT_EQ(v, std::to_string(kVersionMajor) + "." +
                   std::to_string(kVersionMinor) + "." +
                   std::to_string(kVersionPatch));
}

TEST(ResidualMetric, MatchesHandComputation) {
  CMat h(2, 1, {cplx{1, 0}, cplx{0, 1}});
  const CVec y{cplx{2, 0}, cplx{0, 0}};
  const CVec s{cplx{1, 0}};
  // y - Hs = (1, -i): norm^2 = 2.
  EXPECT_NEAR(residual_metric(h, y, s), 2.0, 1e-6);
}

TEST(ResidualMetric, ShapeChecked) {
  const CMat h = testing::random_cmat(3, 2, 1);
  EXPECT_THROW((void)residual_metric(h, CVec(2), CVec(2)),
               invalid_argument_error);
  EXPECT_THROW((void)residual_metric(h, CVec(3), CVec(3)),
               invalid_argument_error);
}

TEST(MaterializeSymbols, FillsFromIndices) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  DecodeResult r;
  r.indices = {0, 3, 1};
  materialize_symbols(c, r);
  ASSERT_EQ(r.symbols.size(), 3u);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_EQ(r.symbols[i], c.point(r.indices[i]));
  }
}

TEST(DecodeStats, DefaultsAreZero) {
  const DecodeStats s;
  EXPECT_EQ(s.nodes_expanded, 0u);
  EXPECT_EQ(s.gemm_calls, 0u);
  EXPECT_FALSE(s.node_budget_hit);
  EXPECT_EQ(s.preprocess_seconds, 0.0);
}

/// Rectangular (receive-diversity) systems across the exact decoders.
class RectangularSystems
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RectangularSystems, SphereDecoderStillExact) {
  const auto [m, n] = GetParam();
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MlDetector ml(c);
  SdGemmDetector sd(c);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig sc;
    sc.num_tx = m;
    sc.num_rx = n;
    sc.modulation = Modulation::kQam4;
    sc.snr_db = 6.0;
    sc.seed = seed;
    Scenario scenario(sc);
    const Trial t = scenario.next();
    EXPECT_EQ(sd.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << m << "x" << n << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RectangularSystems,
                         ::testing::Values(std::pair{2, 4}, std::pair{3, 5},
                                           std::pair{4, 8}, std::pair{5, 6},
                                           std::pair{6, 12}),
                         [](const auto& param_info) {
                           return std::to_string(param_info.param.first) + "x" +
                                  std::to_string(param_info.param.second);
                         });

TEST(Experiment, BerConfidenceIntervalBehaves) {
  const SystemConfig sys{4, 4, Modulation::kQam4};
  auto det = make_detector(sys, DecoderSpec{});
  ExperimentRunner few(sys, 20, 5);
  ExperimentRunner many(sys, 200, 5);
  const SweepPoint pf = few.run_point(*det, 6.0);
  const SweepPoint pm = many.run_point(*det, 6.0);
  if (pf.ber > 0 && pm.ber > 0) {
    EXPECT_LT(pm.ber_ci95, pf.ber_ci95);  // more bits, tighter interval
  }
  EXPECT_GE(pf.ber_ci95, 0.0);
}

}  // namespace
}  // namespace sd
