// The split-complex (SoA) kernel's bitwise-identity contract.
//
// The decoders' golden-regression methodology requires that kernel dispatch
// NEVER changes result bits: scalar-packed, SoA-packed, and the gemm()
// small-shape fast path must all agree exactly, with observability compiled
// in or out. These tests pin that across the dispatch boundaries (the
// kGemmKc K-panel depth and the m*n*k <= 4096 volume gate), with random
// alpha/beta, for both Op modes. They run in the ASan/UBSan and TSan CI
// jobs, which build with SPHEREDEC_OBS OFF and ON respectively.
#include "linalg/gemm.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

void expect_bitwise_equal(const CMat& a, const CMat& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a(r, c), b(r, c))
          << what << " diverges at (" << r << "," << c << ")";
    }
  }
}

/// Kernel-override RAII so a failing test cannot leak a forced kernel into
/// later tests.
struct KernelGuard {
  GemmKernel saved = gemm_kernel_override();
  ~KernelGuard() { set_gemm_kernel_override(saved); }
};

// Shapes spanning the dispatch boundaries: K-panel edges (kGemmKc - 1 /
// exact / + 1 / multi-panel), the volume gate (m*n*k around 4096), panel
// remainders in every dimension, and the decoders' real shapes (sibling
// batches, BFS level batches).
struct Shape {
  index_t m, n, k;
};
const Shape kShapes[] = {
    {1, 4, 10},                  // Best-FS sibling batch
    {1, 4096, 10},               // BFS level batch
    {10, 4096, 10},              // BFS level batch, full row block
    {3, 5, 7},                   // odd everything
    {2, 16, kGemmKc - 1},        // just under one K panel
    {2, 16, kGemmKc},            // exactly one K panel
    {2, 16, kGemmKc + 1},        // two panels, partial second
    {4, 8, 2 * kGemmKc + 3},     // multi-panel K
    {1, 1, 4096},                // volume gate edge, deep K
    {64, 128, 128},              // exactly one full blocking tile
    {65, 129, 131},              // remainders in every dimension
    {67, 9, 200},                // odd rows, narrow, multi-panel K
};

class SoaIdentity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!gemm_soa_available()) {
      GTEST_SKIP() << "SoA kernel unavailable on this build/CPU";
    }
  }
  KernelGuard guard_;
};

TEST_F(SoaIdentity, SoaMatchesScalarBitForBitAcrossShapes) {
  std::uint64_t seed = 7001;
  for (const Shape& s : kShapes) {
    for (const Op op : {Op::kNone, Op::kConjTrans}) {
      // A is stored (m x k) for kNone, (k x m) for kConjTrans.
      const index_t ar = op == Op::kNone ? s.m : s.k;
      const index_t ac = op == Op::kNone ? s.k : s.m;
      const CMat a = testing::random_cmat(ar, ac, seed++);
      const CMat b = testing::random_cmat(s.k, s.n, seed++);
      const cplx alpha{0.8f, -0.4f};
      const cplx beta{0.3f, 0.2f};
      CMat c_scalar = testing::random_cmat(s.m, s.n, seed);
      CMat c_soa = c_scalar;
      gemm_packed_scalar(op, alpha, a, b, beta, c_scalar);
      gemm_packed_soa(op, alpha, a, b, beta, c_soa);
      ASSERT_NO_FATAL_FAILURE(expect_bitwise_equal(c_scalar, c_soa, "soa"))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " op=" << static_cast<int>(op);
      ++seed;
    }
  }
}

TEST_F(SoaIdentity, BetaZeroAndOneAgree) {
  for (const cplx beta : {cplx{0, 0}, cplx{1, 0}}) {
    const CMat a = testing::random_cmat(9, 300, 7501);
    const CMat b = testing::random_cmat(300, 33, 7502);
    CMat c_scalar = testing::random_cmat(9, 33, 7503);
    CMat c_soa = c_scalar;
    gemm_packed_scalar(Op::kNone, cplx{1, 0}, a, b, beta, c_scalar);
    gemm_packed_soa(Op::kNone, cplx{1, 0}, a, b, beta, c_soa);
    expect_bitwise_equal(c_scalar, c_soa, "beta variant");
  }
}

TEST_F(SoaIdentity, DispatchedGemmIsKernelInvariant) {
  // gemm() must produce the same bits whichever kernel the override forces —
  // the property that lets the default dispatch prefer SoA while the golden
  // regressions stay untouched.
  for (const Shape& s : kShapes) {
    const CMat a = testing::random_cmat(s.m, s.k, 7601);
    const CMat b = testing::random_cmat(s.k, s.n, 7602);
    CMat c_forced_scalar(s.m, s.n);
    CMat c_forced_soa(s.m, s.n);
    set_gemm_kernel_override(GemmKernel::kScalar);
    gemm(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_forced_scalar);
    set_gemm_kernel_override(GemmKernel::kSoa);
    gemm(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_forced_soa);
    set_gemm_kernel_override(GemmKernel::kAuto);
    ASSERT_NO_FATAL_FAILURE(
        expect_bitwise_equal(c_forced_scalar, c_forced_soa, "gemm dispatch"))
        << "m=" << s.m << " n=" << s.n << " k=" << s.k;
  }
}

TEST_F(SoaIdentity, ExplicitWorkspaceMatchesThreadLocal) {
  GemmWorkspace ws;
  const CMat a = testing::random_cmat(20, 150, 7701);
  const CMat b = testing::random_cmat(150, 70, 7702);
  CMat c_tls(20, 70), c_ws(20, 70);
  gemm_packed_soa(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_tls);
  gemm_packed_soa(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_ws, ws);
  expect_bitwise_equal(c_tls, c_ws, "workspace");
  EXPECT_GT(ws.stats().acquires, 0u);
}

TEST(GemmKernelSelection, OverrideRoundTrips) {
  KernelGuard guard;
  set_gemm_kernel_override(GemmKernel::kScalar);
  EXPECT_EQ(gemm_kernel_override(), GemmKernel::kScalar);
  EXPECT_EQ(active_gemm_kernel(), GemmKernel::kScalar);
  set_gemm_kernel_override(GemmKernel::kAuto);
  EXPECT_EQ(gemm_kernel_override(), GemmKernel::kAuto);
  // kAuto resolves to a concrete kernel consistent with availability.
  const GemmKernel active = active_gemm_kernel();
  if (gemm_soa_available()) {
    EXPECT_EQ(active, GemmKernel::kSoa);
  } else {
    EXPECT_EQ(active, GemmKernel::kScalar);
  }
}

TEST(GemmKernelSelection, ForcedSoaDegradesToScalarWhenUnavailable) {
  KernelGuard guard;
  set_gemm_kernel_override(GemmKernel::kSoa);
  const GemmKernel active = active_gemm_kernel();
  if (gemm_soa_available()) {
    EXPECT_EQ(active, GemmKernel::kSoa);
  } else {
    EXPECT_EQ(active, GemmKernel::kScalar);
    // The unconditional entry point must refuse rather than silently
    // fall back.
    const CMat a = testing::random_cmat(2, 2, 1);
    const CMat b = testing::random_cmat(2, 2, 2);
    CMat c(2, 2);
    EXPECT_THROW(gemm_packed_soa(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c),
                 invalid_argument_error);
  }
}

TEST(GemmWorkspaceStats, SteadyStateStopsGrowing) {
  GemmWorkspace ws;
  const CMat a = testing::random_cmat(30, 200, 7801);
  const CMat b = testing::random_cmat(200, 90, 7802);
  CMat c(30, 90);
  gemm_packed(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c, ws);
  const std::uint64_t grows_after_warmup = ws.stats().grow_events;
  EXPECT_GT(ws.stats().bytes_reserved, 0u);
  for (int rep = 0; rep < 5; ++rep) {
    gemm_packed(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c, ws);
  }
  EXPECT_EQ(ws.stats().grow_events, grows_after_warmup)
      << "packed GEMM grew its workspace after warm-up";
}

}  // namespace
}  // namespace sd
