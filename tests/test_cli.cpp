#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sd {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  const Cli cli = make({"--trials=50", "--snr=12.5"});
  EXPECT_EQ(cli.get_int_or("trials", 0), 50);
  EXPECT_DOUBLE_EQ(cli.get_double_or("snr", 0.0), 12.5);
}

TEST(Cli, ParsesSpaceForm) {
  const Cli cli = make({"--trials", "50"});
  EXPECT_EQ(cli.get_int_or("trials", 0), 50);
}

TEST(Cli, FlagWithoutValue) {
  const Cli cli = make({"--verbose", "--trials=3"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get_or("verbose", "x"), "");
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make({"--a=1", "file1", "file2"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(Cli, FallbacksWhenMissing) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int_or("trials", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double_or("snr", 1.5), 1.5);
  EXPECT_EQ(cli.get_or("mode", "fast"), "fast");
  EXPECT_FALSE(cli.get("mode").has_value());
}

TEST(Env, IntAndDoubleWithFallback) {
  ::setenv("SD_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(env_int_or("SD_TEST_ENV_INT", 0), 123);
  ::unsetenv("SD_TEST_ENV_INT");
  EXPECT_EQ(env_int_or("SD_TEST_ENV_INT", 42), 42);
  ::setenv("SD_TEST_ENV_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double_or("SD_TEST_ENV_DBL", 0.0), 2.5);
  ::unsetenv("SD_TEST_ENV_DBL");
}

}  // namespace
}  // namespace sd
