// The Table I / Table II models: calibration against the paper's reported
// values and structural monotonicity properties.
#include <gtest/gtest.h>

#include "fpga/power.hpp"
#include "fpga/resources.hpp"
#include "platform/cpu_model.hpp"

namespace sd {
namespace {

/// |model - paper| / paper must stay within `tol`.
void expect_close(double model, double paper, double tol,
                  const char* what) {
  EXPECT_LE(std::abs(model - paper) / paper, tol)
      << what << ": model=" << model << " paper=" << paper;
}

TEST(Resources, OptimizedFourQamMatchesTableI) {
  const auto est = estimate_resources(
      FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  EXPECT_EQ(est.freq_mhz, 300.0);
  expect_close(est.lut_frac(), 0.11, 0.25, "LUT");
  expect_close(est.ff_frac(), 0.07, 0.25, "FF");
  expect_close(est.dsp_frac(), 0.03, 0.35, "DSP");
  expect_close(est.bram_frac(), 0.08, 0.25, "BRAM");
  expect_close(est.uram_frac(), 0.07, 0.25, "URAM");
}

TEST(Resources, OptimizedSixteenQamMatchesTableI) {
  const auto est = estimate_resources(
      FpgaConfig::optimized_design(10, 10, Modulation::kQam16));
  expect_close(est.lut_frac(), 0.23, 0.25, "LUT");
  expect_close(est.ff_frac(), 0.11, 0.25, "FF");
  expect_close(est.dsp_frac(), 0.07, 0.35, "DSP");
  expect_close(est.bram_frac(), 0.10, 0.25, "BRAM");
  expect_close(est.uram_frac(), 0.30, 0.25, "URAM");
}

TEST(Resources, BaselineFourQamMatchesTableI) {
  const auto est =
      estimate_resources(FpgaConfig::baseline(10, 10, Modulation::kQam4));
  EXPECT_EQ(est.freq_mhz, 253.0);
  expect_close(est.lut_frac(), 0.29, 0.25, "LUT");
  expect_close(est.ff_frac(), 0.20, 0.25, "FF");
  expect_close(est.dsp_frac(), 0.08, 0.35, "DSP");
  expect_close(est.bram_frac(), 0.11, 0.25, "BRAM");
  expect_close(est.uram_frac(), 0.14, 0.30, "URAM");
}

TEST(Resources, BaselineSixteenQamMatchesTableI) {
  const auto est =
      estimate_resources(FpgaConfig::baseline(10, 10, Modulation::kQam16));
  expect_close(est.lut_frac(), 0.50, 0.25, "LUT");
  expect_close(est.ff_frac(), 0.27, 0.25, "FF");
  expect_close(est.dsp_frac(), 0.15, 0.35, "DSP");
  expect_close(est.bram_frac(), 0.14, 0.30, "BRAM");
  expect_close(est.uram_frac(), 0.60, 0.25, "URAM");
}

TEST(Resources, OptimizationReducesEveryResourceClass) {
  for (Modulation mod : {Modulation::kQam4, Modulation::kQam16}) {
    const auto opt = estimate_resources(FpgaConfig::optimized_design(10, 10, mod));
    const auto base = estimate_resources(FpgaConfig::baseline(10, 10, mod));
    EXPECT_LT(opt.luts, base.luts);
    EXPECT_LT(opt.ffs, base.ffs);
    EXPECT_LT(opt.dsps, base.dsps);
    EXPECT_LT(opt.bram18, base.bram18);
    EXPECT_LT(opt.urams, base.urams);
  }
}

TEST(Resources, HigherModulationCostsMore) {
  const auto q4 = estimate_resources(
      FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  const auto q16 = estimate_resources(
      FpgaConfig::optimized_design(10, 10, Modulation::kQam16));
  const auto q64 = estimate_resources(
      FpgaConfig::optimized_design(10, 10, Modulation::kQam64));
  EXPECT_LT(q4.luts, q16.luts);
  EXPECT_LT(q16.luts, q64.luts);
  // URAM scales with the tree-state matrix ~ Mod^2 (paper §IV-E).
  EXPECT_GT(q64.urams / q16.urams, 3.0);
}

TEST(Resources, SecondPipelineFitsOnlyForOptimizedDesigns) {
  // §III-C4: the baseline's utilization blocks a second pipeline.
  EXPECT_TRUE(
      estimate_resources(FpgaConfig::optimized_design(10, 10, Modulation::kQam4))
          .second_pipeline_fits());
  EXPECT_TRUE(
      estimate_resources(FpgaConfig::optimized_design(10, 10, Modulation::kQam16))
          .second_pipeline_fits());
  EXPECT_FALSE(
      estimate_resources(FpgaConfig::baseline(10, 10, Modulation::kQam16))
          .second_pipeline_fits());
}

TEST(Resources, Fp16ShrinksDspAndMemory) {
  FpgaConfig cfg = FpgaConfig::optimized_design(10, 10, Modulation::kQam16);
  const auto fp32 = estimate_resources(cfg);
  cfg.precision = Precision::kFp16;
  const auto fp16 = estimate_resources(cfg);
  EXPECT_LT(fp16.dsps, fp32.dsps);
  EXPECT_LT(fp16.urams, fp32.urams);
  EXPECT_EQ(fp16.luts, fp32.luts);  // control logic unchanged
}

TEST(Resources, Int16ShrinksDspBelowFp16) {
  // DSP48 packing fits two int16 MACs per slice, beating even fp16's
  // footprint; memory shrinks to half-width operand planes.
  FpgaConfig cfg = FpgaConfig::optimized_design(10, 10, Modulation::kQam16);
  const auto fp32 = estimate_resources(cfg);
  cfg.precision = Precision::kFp16;
  const auto fp16 = estimate_resources(cfg);
  cfg.precision = Precision::kInt16;
  const auto i16 = estimate_resources(cfg);
  EXPECT_LT(i16.dsps, fp16.dsps);
  EXPECT_LT(i16.urams, fp32.urams);
  EXPECT_EQ(i16.luts, fp32.luts);
}

TEST(FpgaPower, MatchesTableIIOperatingPoints) {
  expect_close(
      fpga_power_watts(FpgaConfig::optimized_design(10, 10, Modulation::kQam4)),
      8.0, 0.25, "10x10 4-QAM");
  expect_close(
      fpga_power_watts(FpgaConfig::optimized_design(15, 15, Modulation::kQam4)),
      11.7, 0.25, "15x15 4-QAM");
  expect_close(
      fpga_power_watts(FpgaConfig::optimized_design(20, 20, Modulation::kQam4)),
      12.0, 0.25, "20x20 4-QAM");
  expect_close(
      fpga_power_watts(FpgaConfig::optimized_design(10, 10, Modulation::kQam16)),
      12.8, 0.25, "10x10 16-QAM");
}

TEST(FpgaPower, FarBelowCpuPower) {
  // The core of Table II: an order of magnitude between the platforms.
  for (index_t m : {10, 15, 20}) {
    const double fpga =
        fpga_power_watts(FpgaConfig::optimized_design(m, m, Modulation::kQam4));
    const double cpu = cpu_power_watts(m, Modulation::kQam4);
    EXPECT_GT(cpu / fpga, 5.0) << "M=" << m;
  }
}

TEST(CpuPower, MatchesTableIIOperatingPoints) {
  expect_close(cpu_power_watts(10, Modulation::kQam4), 82.0, 0.20, "10x10 4-QAM");
  expect_close(cpu_power_watts(15, Modulation::kQam4), 93.0, 0.20, "15x15 4-QAM");
  expect_close(cpu_power_watts(20, Modulation::kQam4), 135.0, 0.20, "20x20 4-QAM");
  expect_close(cpu_power_watts(10, Modulation::kQam16), 142.0, 0.20,
               "10x10 16-QAM");
}

TEST(Power, EnergyIsPowerTimesTime) {
  const FpgaConfig cfg = FpgaConfig::optimized_design(10, 10, Modulation::kQam4);
  EXPECT_NEAR(fpga_energy_joules(cfg, 2.0), 2.0 * fpga_power_watts(cfg), 1e-12);
  EXPECT_NEAR(cpu_energy_joules(10, Modulation::kQam4, 0.5),
              0.5 * cpu_power_watts(10, Modulation::kQam4), 1e-12);
}

TEST(Power, GrowsWithSystemSize) {
  EXPECT_LE(fpga_power_watts(FpgaConfig::optimized_design(10, 10, Modulation::kQam4)),
            fpga_power_watts(FpgaConfig::optimized_design(15, 15, Modulation::kQam4)));
  EXPECT_LT(cpu_power_watts(10, Modulation::kQam4),
            cpu_power_watts(20, Modulation::kQam4));
  EXPECT_LT(cpu_power_watts(10, Modulation::kQam4),
            cpu_power_watts(10, Modulation::kQam16));
}

}  // namespace
}  // namespace sd
