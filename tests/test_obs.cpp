// Tests for the observability layer (src/obs): JSON emission, span tracing,
// the unified counter registry, the struct adapters in decode/fpga/serve,
// and the bench reporter's document schema. Everything here must pass with
// SPHEREDEC_OBS both ON and OFF, so span behavior is exercised through the
// SpanGuard class directly; the macro is covered under #if SD_OBS_ENABLED.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "decode/detector.hpp"
#include "fpga/pipeline.hpp"
#include "obs/bench_report.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "serve/metrics.hpp"

namespace sd::obs {
namespace {

// ---------------------------------------------------------------- JSON core

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, WriterProducesValidDocuments) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("he \"said\"");
  w.key("d").value(1.5);
  w.key("i").value(std::int64_t{-3});
  w.key("u").value(std::uint64_t{18446744073709551615ull});
  w.key("b").value(true);
  w.key("n").null();
  w.key("arr").begin_array().value(std::int64_t{1}).value(std::int64_t{2}).end_array();
  w.end_object();
  const std::string doc = w.take();
  EXPECT_TRUE(json_validate(doc)) << doc;
  EXPECT_NE(doc.find("18446744073709551615"), std::string::npos);
}

TEST(Json, WriterEmitsNonFiniteDoublesAsNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  const std::string doc = w.take();
  EXPECT_EQ(doc, "[null,null]");
  EXPECT_TRUE(json_validate(doc));
}

TEST(Json, WriterRejectsStructuralMisuse) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value("no key"), invalid_argument_error);
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.take(), invalid_argument_error);  // unbalanced
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), invalid_argument_error);
  }
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_validate("{}"));
  EXPECT_TRUE(json_validate(" [1, -2.5e3, \"x\\n\", null, true] "));
  EXPECT_TRUE(json_validate("{\"a\": {\"b\": []}}"));
  EXPECT_FALSE(json_validate(""));
  EXPECT_FALSE(json_validate("{"));
  EXPECT_FALSE(json_validate("[1,]"));
  EXPECT_FALSE(json_validate("{\"a\" 1}"));
  EXPECT_FALSE(json_validate("[1] trailing"));
  EXPECT_FALSE(json_validate("nan"));
}

// ------------------------------------------------------------------ tracing

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::instance().disable(); }
  void TearDown() override { Tracer::instance().disable(); }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer& t = Tracer::instance();
  t.enable(16);
  t.disable();
  t.clear();
  { SpanGuard g{"should-not-appear"}; }
  t.record("direct", 0, 1);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST_F(TracerTest, NestedSpansRecordInnerFirstAndContained) {
  Tracer& t = Tracer::instance();
  t.enable(64);
  {
    SpanGuard outer{"outer"};
    {
      SpanGuard inner{"inner"};
    }
  }
  t.disable();
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete (and record) innermost-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  // Same thread, and the inner span nests inside the outer interval.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST_F(TracerTest, RingOverwritesOldestAndCountsDrops) {
  Tracer& t = Tracer::instance();
  t.enable(4);
  for (int i = 0; i < 6; ++i) t.record("e", i, 1);
  t.disable();
  EXPECT_EQ(t.recorded(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().start_ns, 2);  // oldest surviving
  EXPECT_EQ(events.back().start_ns, 5);
}

TEST_F(TracerTest, ChromeTraceJsonIsValidAndComplete) {
  Tracer& t = Tracer::instance();
  t.enable(16);
  { SpanGuard g{"qr"}; }
  t.record("search", 1000, 2000);
  t.disable();
  const std::string doc = t.chrome_trace_json();
  EXPECT_TRUE(json_validate(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"qr\""), std::string::npos);
  EXPECT_NE(doc.find("\"search\""), std::string::npos);
  EXPECT_NE(doc.find("\"X\""), std::string::npos);
}

TEST_F(TracerTest, ThreadsGetDistinctDenseIds) {
  Tracer& t = Tracer::instance();
  t.enable(16);
  { SpanGuard g{"main-thread"}; }
  std::thread([] { SpanGuard g{"other-thread"}; }).join();
  t.disable();
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

#if SD_OBS_ENABLED
TEST_F(TracerTest, MacroRecordsWhenCompiledIn) {
  Tracer& t = Tracer::instance();
  t.enable(16);
  { SD_TRACE_SPAN("macro-span"); }
  t.disable();
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "macro-span");
}
#endif

// ----------------------------------------------------------------- counters

TEST(Counters, SetAddAndKindPromotion) {
  CounterRegistry reg;
  reg.set("n", std::uint64_t{3});
  reg.add("n", std::uint64_t{4});
  EXPECT_EQ(reg.get_uint_or("n"), 7u);
  reg.add("n", 0.5);  // promotes to double
  EXPECT_DOUBLE_EQ(reg.get_or("n"), 7.5);
  EXPECT_FALSE(reg.has("missing"));
  EXPECT_DOUBLE_EQ(reg.get_or("missing", -1.0), -1.0);
}

TEST(Counters, MergeAppliesPrefix) {
  CounterRegistry a;
  a.set("x", std::uint64_t{1});
  CounterRegistry b;
  b.merge(a, "pre");
  EXPECT_TRUE(b.has("pre.x"));
  b.merge(a);
  EXPECT_TRUE(b.has("x"));
}

TEST(Counters, JsonSnapshotRoundTrip) {
  CounterRegistry reg;
  reg.set("decode.flops", std::uint64_t{9007199254740993ull});  // > 2^53
  reg.set("serve.e2e.p99_s", 0.00125);
  const std::string doc = reg.json();
  EXPECT_TRUE(json_validate(doc)) << doc;
  // The uint64 must survive exactly (not via a double round trip).
  EXPECT_NE(doc.find("9007199254740993"), std::string::npos);
  EXPECT_NE(doc.find("\"serve.e2e.p99_s\""), std::string::npos);
}

TEST(Counters, DecodeStatsAdapterExportsEveryField) {
  DecodeStats stats;
  stats.nodes_expanded = 11;
  stats.flops = 1234;
  stats.node_budget_hit = true;
  stats.search_seconds = 0.25;
  CounterRegistry reg;
  stats.export_counters(reg);
  EXPECT_EQ(reg.get_uint_or("decode.nodes_expanded"), 11u);
  EXPECT_EQ(reg.get_uint_or("decode.flops"), 1234u);
  EXPECT_EQ(reg.get_uint_or("decode.node_budget_hit"), 1u);
  EXPECT_DOUBLE_EQ(reg.get_or("decode.search_seconds"), 0.25);
  stats.export_counters(reg, "cpu");
  EXPECT_EQ(reg.get_uint_or("cpu.nodes_expanded"), 11u);
}

TEST(Counters, CycleBreakdownAdapterMatchesTotal) {
  CycleBreakdown cyc;
  cyc.branch = 1;
  cyc.gemm = 20;
  cyc.sort = 300;
  CounterRegistry reg;
  cyc.export_counters(reg);
  EXPECT_EQ(reg.get_uint_or("fpga.cycles.gemm"), 20u);
  EXPECT_EQ(reg.get_uint_or("fpga.cycles.total"), cyc.total());
}

TEST(Counters, ServerMetricsAdapterExportsLatencyAndWorkers) {
  serve::ServerMetrics m;
  m.submitted = 10;
  m.completed = 9;
  m.expired_dropped = 1;
  m.e2e.p99_s = 0.010;
  m.workers.resize(2);
  m.workers[1].frames = 5;
  CounterRegistry reg;
  m.export_counters(reg);
  EXPECT_EQ(reg.get_uint_or("serve.submitted"), 10u);
  EXPECT_EQ(reg.get_uint_or("serve.retired"), 10u);
  EXPECT_DOUBLE_EQ(reg.get_or("serve.e2e.p99_s"), 0.010);
  EXPECT_EQ(reg.get_uint_or("serve.worker.1.frames"), 5u);
}

// ------------------------------------------------------------ bench reports

TEST(BenchReport, DocumentMatchesSchema) {
  BenchReporter rep("unit_test");
  rep.set_directory(::testing::TempDir());
  rep.config("trials", std::uint64_t{3});
  rep.config("label", "10x10");
  rep.row("series_a", {{"snr_db", 4.0}, {"ok", true}});
  rep.row("series_a", {{"snr_db", 8.0}, {"ok", false}});
  Table t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_separator();
  t.add_row({"beta", "not-a-number"});
  rep.add_table("tbl", t);
  CounterRegistry reg;
  reg.set("decode.flops", std::uint64_t{7});
  rep.counters(reg);

  const std::string doc = rep.json();
  EXPECT_TRUE(json_validate(doc)) << doc;
  EXPECT_NE(doc.find("\"schema\":\"spheredec.bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"unit_test\""), std::string::npos);
  // Numeric-looking table cells become numbers; others stay strings.
  EXPECT_NE(doc.find("1.25"), std::string::npos);
  EXPECT_NE(doc.find("\"not-a-number\""), std::string::npos);
  // Separator rows are not captured.
  EXPECT_EQ(doc.find("---"), std::string::npos);
  EXPECT_NE(doc.find("\"decode.flops\":7"), std::string::npos);
}

TEST(BenchReport, WriteProducesValidFileOnce) {
  BenchReporter rep("unit_test_write");
  rep.set_directory(::testing::TempDir());
  rep.row("s", {{"v", std::int64_t{1}}});
  ASSERT_TRUE(rep.write());
  std::FILE* f = std::fopen(rep.path().c_str(), "rb");
  ASSERT_NE(f, nullptr) << rep.path();
  std::string text(1 << 16, '\0');
  const usize n = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  text.resize(n);
  EXPECT_TRUE(json_validate(text)) << text;
  EXPECT_NE(text.find("\"unit_test_write\""), std::string::npos);
}

}  // namespace
}  // namespace sd::obs
