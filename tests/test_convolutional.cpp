#include "code/convolutional.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace sd {
namespace {

std::vector<std::uint8_t> random_bits(usize n, std::uint64_t seed) {
  GaussianSource rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_index(2));
  return bits;
}

TEST(ConvCode, RateAndTermination) {
  ConvolutionalCode code;
  EXPECT_EQ(code.memory(), 6);
  EXPECT_EQ(code.num_states(), 64);
  const auto info = random_bits(40, 1);
  const auto coded = code.encode(info);
  EXPECT_EQ(coded.size(), 2 * (40 + 6));
}

TEST(ConvCode, KnownImpulseResponse) {
  // A single 1 followed by the flush produces the generator taps as output:
  // step 0 register = 1000000 -> g0 = 0o133 top bit, g1 = 0o171 top bit.
  ConvolutionalCode code;
  const std::vector<std::uint8_t> info{1};
  const auto coded = code.encode(info);
  ASSERT_EQ(coded.size(), 14u);
  // First pair: both generators tap the input bit (MSB set in 133 and 171).
  EXPECT_EQ(coded[0], 1);
  EXPECT_EQ(coded[1], 1);
  // The impulse response reads the generator taps off bit by bit as the 1
  // shifts through the register: pairs (g0 bit, g1 bit) from bit 6 to 0.
  const std::vector<std::uint8_t> expected{1, 1, 0, 1, 1, 1, 1,
                                           1, 0, 0, 1, 0, 1, 1};
  EXPECT_EQ(coded, expected);
  // Total impulse weight = popcount(0133) + popcount(0171) = 5 + 5 = 10,
  // which for this code equals its free distance.
  int weight = 0;
  for (std::uint8_t bit : coded) weight += bit;
  EXPECT_EQ(weight, 10);
}

TEST(ConvCode, DecodesCleanCodeword) {
  ConvolutionalCode code;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto info = random_bits(120, seed);
    const auto coded = code.encode(info);
    EXPECT_EQ(code.decode_hard(coded), info) << "seed " << seed;
  }
}

TEST(ConvCode, CorrectsScatteredBitErrors) {
  // Free distance 10: up to 4 well-separated flips are always correctable.
  ConvolutionalCode code;
  const auto info = random_bits(200, 3);
  auto coded = code.encode(info);
  coded[10] ^= 1;
  coded[80] ^= 1;
  coded[150] ^= 1;
  coded[300] ^= 1;
  EXPECT_EQ(code.decode_hard(coded), info);
}

TEST(ConvCode, SoftInformationOutperformsHardDecisions) {
  // Give the decoder LLRs that mark the flipped bits as unreliable: the
  // soft decoder must recover where hard decisions are ambiguous.
  ConvolutionalCode code;
  const auto info = random_bits(100, 4);
  const auto coded = code.encode(info);
  std::vector<double> llrs(coded.size());
  for (usize i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -4.0 : 4.0;
  }
  // Corrupt a dense burst but with tiny confidence.
  for (usize i = 20; i < 30; ++i) {
    llrs[i] = (coded[i] ? 1.0 : -1.0) * 0.1;  // wrong sign, low magnitude
  }
  EXPECT_EQ(code.decode_llr(llrs), info);
}

TEST(ConvCode, HardDecoderFailsOnDenseBurstThatSoftSurvives) {
  ConvolutionalCode code;
  const auto info = random_bits(100, 5);
  const auto coded = code.encode(info);
  // Flip a dense burst of 10 bits.
  auto corrupted = coded;
  for (usize i = 20; i < 30; ++i) corrupted[i] ^= 1;
  const auto hard = code.decode_hard(corrupted);
  EXPECT_NE(hard, info);  // burst exceeds hard-decision correction power
}

TEST(ConvCode, RejectsOddLlrStreams) {
  ConvolutionalCode code;
  std::vector<double> llrs(13, 1.0);
  EXPECT_THROW((void)code.decode_llr(llrs), invalid_argument_error);
}

TEST(ConvCode, RejectsNonBinaryInfoBits) {
  ConvolutionalCode code;
  const std::vector<std::uint8_t> bad{0, 1, 2};
  EXPECT_THROW((void)code.encode(bad), invalid_argument_error);
}

TEST(ConvCode, EncodeIsDeterministic) {
  ConvolutionalCode a, b;
  const auto info = random_bits(64, 6);
  EXPECT_EQ(a.encode(info), b.encode(info));
}

}  // namespace
}  // namespace sd
