#include "decode/lr_sic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "decode/kbest.hpp"
#include "decode/linear.hpp"
#include "decode/ml.hpp"
#include "mimo/metrics.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed,
                 double tx_rho = 0.0) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  sc.correlation.tx_rho = tx_rho;
  Scenario s(sc);
  return s.next();
}

TEST(LrSic, RecoversNoiselessTransmission) {
  for (Modulation mod : {Modulation::kQam4, Modulation::kQam16}) {
    const Constellation& c = Constellation::get(mod);
    LrSicDetector det(c);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Trial t = make_trial(6, mod, 300.0, seed);
      EXPECT_EQ(det.decode(t.h, t.y, t.sigma2).indices, t.tx.indices)
          << modulation_name(mod) << " seed " << seed;
    }
  }
}

TEST(LrSic, RejectsBpsk) {
  EXPECT_THROW(LrSicDetector(Constellation::get(Modulation::kBpsk)),
               invalid_argument_error);
}

TEST(LrSic, BeatsZfOnCorrelatedChannels) {
  // Lattice reduction shines exactly where linear detection collapses:
  // strongly correlated (ill-conditioned) channels.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  LrSicDetector lr(c);
  LinearDetector zf(LinearKind::kZf, c);
  ErrorCounter lr_errors(c), zf_errors(c);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Trial t = make_trial(6, Modulation::kQam4, 16.0, seed, 0.9);
    lr_errors.record(t.tx.indices, lr.decode(t.h, t.y, t.sigma2).indices);
    zf_errors.record(t.tx.indices, zf.decode(t.h, t.y, t.sigma2).indices);
  }
  EXPECT_LT(lr_errors.ber(), 0.7 * zf_errors.ber());
}

TEST(LrSic, BetweenSicAndMlAtModerateSnr) {
  // LR-SIC restores the diversity order plain SIC loses; it stays above ML
  // (it is suboptimal) but must land strictly between the two.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  LrSicDetector lr(c);
  MlDetector ml(c);
  KBestDetector sic(c, KBestOptions{1, true});  // K=1 = sorted SIC
  ErrorCounter lr_errors(c), ml_errors(c), sic_errors(c);
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const Trial t = make_trial(4, Modulation::kQam4, 12.0, seed);
    lr_errors.record(t.tx.indices, lr.decode(t.h, t.y, t.sigma2).indices);
    ml_errors.record(t.tx.indices, ml.decode(t.h, t.y, t.sigma2).indices);
    sic_errors.record(t.tx.indices, sic.decode(t.h, t.y, t.sigma2).indices);
  }
  EXPECT_GE(lr_errors.ber(), ml_errors.ber());
  EXPECT_LT(lr_errors.ber(), sic_errors.ber());
}

TEST(LrSic, MetricMatchesResidual) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  LrSicDetector det(c);
  const Trial t = make_trial(5, Modulation::kQam16, 14.0, 3);
  const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
  EXPECT_NEAR(r.metric, residual_metric(t.h, t.y, r.symbols),
              1e-2 * (1 + r.metric));
  EXPECT_EQ(r.stats.nodes_expanded, 5u);  // one SIC decision per layer
}

TEST(LrSic, NameIsStable) {
  LrSicDetector det(Constellation::get(Modulation::kQam4));
  EXPECT_EQ(det.name(), "LR-SIC");
}

}  // namespace
}  // namespace sd
