#include "code/bcjr.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace sd {
namespace {

std::vector<std::uint8_t> random_bits(usize n, std::uint64_t seed) {
  GaussianSource rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_index(2));
  return bits;
}

std::vector<double> to_llrs(std::span<const std::uint8_t> coded,
                            double magnitude = 4.0) {
  std::vector<double> llrs(coded.size());
  for (usize i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -magnitude : magnitude;
  }
  return llrs;
}

TEST(Bcjr, MatchesViterbiOnCleanCodewords) {
  ConvolutionalCode code;
  BcjrDecoder bcjr(code);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto info = random_bits(80, seed);
    const auto coded = code.encode(info);
    const BcjrResult r = bcjr.decode(to_llrs(coded));
    EXPECT_EQ(r.info_bits, info) << "seed " << seed;
    EXPECT_EQ(r.info_bits, code.decode_hard(coded));
  }
}

TEST(Bcjr, InfoLlrSignsMatchBitsOnCleanInput) {
  ConvolutionalCode code;
  BcjrDecoder bcjr(code);
  const auto info = random_bits(60, 3);
  const BcjrResult r = bcjr.decode(to_llrs(code.encode(info)));
  for (usize i = 0; i < info.size(); ++i) {
    if (info[i] == 0) {
      EXPECT_GT(r.info_llrs[i], 0.0) << i;
    } else {
      EXPECT_LT(r.info_llrs[i], 0.0) << i;
    }
  }
}

TEST(Bcjr, CorrectsNoisyLlrs) {
  ConvolutionalCode code;
  BcjrDecoder bcjr(code);
  const auto info = random_bits(100, 4);
  std::vector<double> llrs = to_llrs(code.encode(info), 2.0);
  // Flip the sign of scattered positions with low confidence.
  for (usize i : {5u, 40u, 77u, 130u}) {
    llrs[i] = -0.3 * llrs[i];
  }
  const BcjrResult r = bcjr.decode(llrs);
  EXPECT_EQ(r.info_bits, info);
}

TEST(Bcjr, ExtrinsicPointsTowardTheTransmittedBit) {
  // On a codeword with one erased coded bit (LLR 0), the code structure
  // must still indicate the erased bit's value via its extrinsic.
  ConvolutionalCode code;
  BcjrDecoder bcjr(code);
  const auto info = random_bits(50, 5);
  const auto coded = code.encode(info);
  std::vector<double> llrs = to_llrs(coded);
  const usize erased = 31;
  llrs[erased] = 0.0;
  const BcjrResult r = bcjr.decode(llrs);
  if (coded[erased] == 0) {
    EXPECT_GT(r.coded_extrinsic[erased], 0.0);
  } else {
    EXPECT_LT(r.coded_extrinsic[erased], 0.0);
  }
}

TEST(Bcjr, PriorsBreakTiesOnErasedInfoBits) {
  // Give the decoder an all-erased observation; the info priors must then
  // fully determine the decisions.
  ConvolutionalCode code;
  BcjrDecoder bcjr(code);
  const auto info = random_bits(30, 6);
  const auto coded = code.encode(info);
  std::vector<double> llrs(coded.size(), 0.0);
  std::vector<double> priors(info.size());
  for (usize i = 0; i < info.size(); ++i) {
    priors[i] = info[i] ? -3.0 : 3.0;
  }
  const BcjrResult r = bcjr.decode(llrs, priors);
  EXPECT_EQ(r.info_bits, info);
}

TEST(Bcjr, RejectsBadInputs) {
  ConvolutionalCode code;
  BcjrDecoder bcjr(code);
  EXPECT_THROW((void)bcjr.decode(std::vector<double>(13, 1.0)),
               invalid_argument_error);
  const auto coded = code.encode(random_bits(20, 7));
  EXPECT_THROW(
      (void)bcjr.decode(to_llrs(coded), std::vector<double>(3, 0.0)),
      invalid_argument_error);
}

}  // namespace
}  // namespace sd
