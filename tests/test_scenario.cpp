#include "mimo/scenario.hpp"

#include <gtest/gtest.h>

#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"

namespace sd {
namespace {

ScenarioConfig config_10x10() {
  ScenarioConfig sc;
  sc.num_tx = 10;
  sc.num_rx = 10;
  sc.modulation = Modulation::kQam4;
  sc.snr_db = 8.0;
  sc.seed = 77;
  return sc;
}

TEST(Scenario, DeterministicForSameSeed) {
  Scenario a(config_10x10()), b(config_10x10());
  for (int t = 0; t < 5; ++t) {
    const Trial ta = a.next();
    const Trial tb = b.next();
    EXPECT_TRUE(ta.h == tb.h);
    EXPECT_EQ(ta.tx.indices, tb.tx.indices);
    EXPECT_EQ(max_abs_diff(ta.y, tb.y), 0.0);
  }
}

TEST(Scenario, DifferentSeedsGiveDifferentTrials) {
  ScenarioConfig sc = config_10x10();
  Scenario a(sc);
  sc.seed = 78;
  Scenario b(sc);
  EXPECT_FALSE(a.next().h == b.next().h);
}

TEST(Scenario, TrialSatisfiesLinkEquationStatistically) {
  Scenario s(config_10x10());
  // y - H s is the noise; its average power must be ~ sigma^2 per antenna.
  double acc = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const Trial trial = s.next();
    CVec r(trial.y.begin(), trial.y.end());
    gemv(Op::kNone, cplx{-1, 0}, trial.h, trial.tx.symbols, cplx{1, 0}, r);
    acc += norm2_sq(r) / 10.0;
  }
  EXPECT_NEAR(acc / trials, s.sigma2(), 0.05 * s.sigma2() + 0.01);
}

TEST(Scenario, Sigma2MatchesSnrDefinition) {
  const Scenario s(config_10x10());
  EXPECT_NEAR(s.sigma2(), snr_db_to_sigma2(8.0, 10), 1e-12);
}

TEST(Scenario, SymbolsAreUniformlySpread) {
  ScenarioConfig sc = config_10x10();
  sc.modulation = Modulation::kQam16;
  Scenario s(sc);
  std::vector<int> counts(16, 0);
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const Trial trial = s.next();
    for (index_t idx : trial.tx.indices) ++counts[static_cast<usize>(idx)];
  }
  const int total = trials * 10;
  for (int count : counts) {
    EXPECT_NEAR(count, total / 16, total / 40);
  }
}

TEST(Scenario, LabelIsHumanReadable) {
  EXPECT_EQ(config_10x10().label().substr(0, 5), "10x10");
  EXPECT_NE(config_10x10().label().find("4-QAM"), std::string::npos);
}

}  // namespace
}  // namespace sd
