#include "fpga/multi_pipeline.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

std::vector<Preprocessed> make_batch(usize n, double snr,
                                     std::uint64_t seed, double& sigma2) {
  ScenarioConfig sc;
  sc.num_tx = 8;
  sc.num_rx = 8;
  sc.modulation = Modulation::kQam4;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  std::vector<Preprocessed> batch;
  for (usize i = 0; i < n; ++i) {
    const Trial t = s.next();
    sigma2 = t.sigma2;
    batch.push_back(preprocess(t.h, t.y, false));
  }
  return batch;
}

TEST(MultiPipeline, SingleLaneMatchesSequentialSum) {
  double sigma2 = 0;
  const auto batch = make_batch(6, 8.0, 1, sigma2);
  const FpgaConfig cfg = FpgaConfig::optimized_design(8, 8, Modulation::kQam4);
  const Constellation& c = Constellation::get(Modulation::kQam4);

  MultiPipelineFpga single(cfg, 1);
  const MultiPipelineReport rep = single.decode_batch(batch, c, sigma2);
  // One lane: makespan == sum of individual decode times.
  FpgaPipeline reference(cfg);
  double total = 0;
  for (const Preprocessed& pre : batch) {
    total += reference.run(pre, c, sigma2).total_seconds;
  }
  EXPECT_NEAR(rep.makespan_seconds, total, 1e-12);
  EXPECT_EQ(rep.pipelines, 1);
  EXPECT_EQ(rep.vectors, 6u);
}

TEST(MultiPipeline, TwoLanesNearlyHalveTheMakespan) {
  double sigma2 = 0;
  const auto batch = make_batch(12, 8.0, 2, sigma2);
  const FpgaConfig cfg = FpgaConfig::optimized_design(8, 8, Modulation::kQam4);
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MultiPipelineFpga one(cfg, 1), two(cfg, 2);
  const double t1 = one.decode_batch(batch, c, sigma2).makespan_seconds;
  const double t2 = two.decode_batch(batch, c, sigma2).makespan_seconds;
  EXPECT_LT(t2, 0.75 * t1);
  EXPECT_GT(t2, 0.40 * t1);  // cannot beat perfect halving by much
}

TEST(MultiPipeline, ThroughputScalesLatencyDoesNot) {
  double sigma2 = 0;
  const auto batch = make_batch(16, 8.0, 3, sigma2);
  const FpgaConfig cfg = FpgaConfig::optimized_design(8, 8, Modulation::kQam4);
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MultiPipelineFpga one(cfg, 1), four(cfg, 4);
  const auto r1 = one.decode_batch(batch, c, sigma2);
  const auto r4 = four.decode_batch(batch, c, sigma2);
  EXPECT_GT(r4.throughput_vps, 3.0 * r1.throughput_vps);
  // Per-vector latency is a property of one pipeline: unchanged.
  EXPECT_NEAR(r4.mean_latency_seconds, r1.mean_latency_seconds, 1e-12);
}

TEST(MultiPipeline, MakespanBounds) {
  // Greedy dispatch is within the classic (2 - 1/P) factor of the lower
  // bound max(total/P, longest job).
  double sigma2 = 0;
  const auto batch = make_batch(10, 6.0, 4, sigma2);
  const FpgaConfig cfg = FpgaConfig::optimized_design(8, 8, Modulation::kQam4);
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MultiPipelineFpga pool(cfg, 3);
  const auto rep = pool.decode_batch(batch, c, sigma2);
  const double busy_total = std::accumulate(rep.lane_busy_seconds.begin(),
                                            rep.lane_busy_seconds.end(), 0.0);
  EXPECT_GE(rep.makespan_seconds, busy_total / 3.0 - 1e-12);
  EXPECT_LE(rep.makespan_seconds, busy_total);
}

TEST(MultiPipeline, ResourceFitChecks) {
  const FpgaConfig opt4 = FpgaConfig::optimized_design(10, 10, Modulation::kQam4);
  const FpgaConfig base16 = FpgaConfig::baseline(10, 10, Modulation::kQam16);
  EXPECT_TRUE(MultiPipelineFpga::fits(opt4, 1));
  EXPECT_TRUE(MultiPipelineFpga::fits(opt4, 2));  // the paper's §III-C4 point
  EXPECT_FALSE(MultiPipelineFpga::fits(opt4, 16));
  EXPECT_FALSE(MultiPipelineFpga::fits(base16, 2));
}

TEST(MultiPipeline, RejectsBadArguments) {
  const FpgaConfig cfg = FpgaConfig::optimized_design(8, 8, Modulation::kQam4);
  EXPECT_THROW(MultiPipelineFpga(cfg, 0), invalid_argument_error);
  MultiPipelineFpga pool(cfg, 2);
  const Constellation& c = Constellation::get(Modulation::kQam4);
  EXPECT_THROW((void)pool.decode_batch({}, c, 1.0), invalid_argument_error);
}

}  // namespace
}  // namespace sd
