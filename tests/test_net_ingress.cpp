// IngressServer end-to-end over real sockets: bit-identical detection vs
// direct decodes of the same seeded trials on both transports, zero loss
// under block backpressure, protocol-error isolation (one hostile connection
// cannot take the server down), channel-elision accounting, and graceful
// shutdown draining in-flight frames.
#include "net/ingress.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/spec_parse.hpp"
#include "core/sphere_decoder.hpp"
#include "mimo/scenario.hpp"
#include "net/client.hpp"

namespace sd::net {
namespace {

constexpr index_t kM = 6;

SystemConfig test_system() { return {kM, kM, Modulation::kQam4}; }

std::vector<Trial> make_trials(usize n, usize coherence = 1,
                               std::uint64_t seed = 42) {
  ScenarioConfig sc;
  sc.num_tx = kM;
  sc.num_rx = kM;
  sc.seed = seed;
  sc.coherence_block = coherence;
  Scenario scenario(sc);
  std::vector<Trial> trials;
  for (usize i = 0; i < n; ++i) trials.push_back(scenario.next());
  return trials;
}

std::string test_uds_path(const char* tag) {
  return "/tmp/sd_test_ingress." + std::to_string(::getpid()) + "." + tag +
         ".sock";
}

struct Harness {
  explicit Harness(ShardedServerOptions sho, IngressOptions io,
                   const char* spec = "sphere")
      : shards(test_system(), parse_decoder_spec(spec), sho),
        ingress(shards, std::move(io)) {
    ingress.start();
  }
  ShardedServer shards;
  IngressServer ingress;
};

ShardedServerOptions default_shards(usize n = 2, bool admission = false) {
  ShardedServerOptions o;
  o.num_shards = n;
  o.server.num_workers = 2;
  o.server.queue_capacity = 16;  // small: block backpressure gets exercised
  o.admission.enabled = admission;
  return o;
}

/// Streams `trials` closed-loop (window-bounded, reader thread) and returns
/// the responses keyed by frame id. Fails the test on any lost frame.
std::map<std::uint64_t, WireResponse> stream_frames(
    NetClient& client, const std::vector<Trial>& trials, usize coherence,
    usize window = 64, usize cells = 2) {
  const usize n = trials.size();
  std::vector<std::uint64_t> fps(n);
  for (usize i = 0; i < n; ++i) {
    fps[i] = (i % coherence == 0) ? channel_fingerprint(trials[i].h)
                                  : fps[i - 1];
  }
  std::map<std::uint64_t, WireResponse> responses;
  std::mutex mu;
  std::condition_variable cv;
  usize outstanding = 0;
  std::atomic<bool> reader_ok{true};
  std::thread reader([&] {
    WireResponse resp;
    usize got = 0;
    try {
      while (got < n && client.recv(resp)) {
        std::lock_guard<std::mutex> lock(mu);
        responses[resp.frame_id] = resp;
        ++got;
        --outstanding;
        cv.notify_all();
      }
    } catch (...) {
      reader_ok.store(false);
    }
    cv.notify_all();
  });
  for (usize i = 0; i < n; ++i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return outstanding < window || !reader_ok; });
      if (!reader_ok) break;
      ++outstanding;
    }
    WireFrame wf;
    wf.cell_id = static_cast<std::uint32_t>((i / coherence) % cells);
    wf.frame_id = i;
    wf.qos = QosClass::kBestEffort;
    wf.sigma2 = trials[i].sigma2;
    wf.y = trials[i].y;
    if (!client.send_frame_auto(wf, trials[i].h, fps[i])) {
      ADD_FAILURE() << "send failed at frame " << i;
      break;
    }
  }
  reader.join();
  EXPECT_TRUE(reader_ok.load());
  return responses;
}

// The tentpole acceptance test: >= 10k frames per transport, decoded results
// byte-identical to direct single-shot decodes of the same seeded trials,
// zero frames lost despite a 16-deep queue (block backpressure stalls the
// sender instead of dropping).
TEST(NetIngress, TenThousandFramesBitIdenticalOverTcpAndUds) {
  constexpr usize kFrames = 10000;
  constexpr usize kCoherence = 8;
  const std::vector<Trial> trials = make_trials(kFrames, kCoherence);
  const auto reference = make_detector(test_system(), parse_decoder_spec("sphere"));
  std::vector<std::vector<index_t>> expect(kFrames);
  for (usize i = 0; i < kFrames; ++i) {
    expect[i] =
        reference->decode(trials[i].h, trials[i].y, trials[i].sigma2).indices;
  }

  for (const bool tcp : {true, false}) {
    const std::string uds = test_uds_path(tcp ? "tcp" : "uds");
    IngressOptions io;
    if (tcp) {
      io.enable_tcp = true;
    } else {
      io.uds_path = uds;
    }
    Harness h(default_shards(), io);
    NetClient client = tcp ? NetClient::connect_tcp(h.ingress.tcp_port())
                           : NetClient::connect_uds(uds);
    const std::map<std::uint64_t, WireResponse> responses =
        stream_frames(client, trials, kCoherence);

    ASSERT_EQ(responses.size(), kFrames) << (tcp ? "tcp" : "uds");
    for (usize i = 0; i < kFrames; ++i) {
      const WireResponse& r = responses.at(i);
      ASSERT_EQ(r.status, WireFrameStatus::kCompleted) << "frame " << i;
      ASSERT_EQ(r.indices, expect[i])
          << (tcp ? "tcp" : "uds") << " frame " << i;
    }
    h.ingress.stop();
    h.shards.drain();
    // Counters are exact only after the IO thread and lanes quiesce.
    const NetStats ns = h.ingress.stats();
    EXPECT_EQ(ns.frames_rx, kFrames);
    EXPECT_EQ(ns.responses_tx, kFrames);
    EXPECT_EQ(ns.protocol_errors, 0u);
    // Coherent traffic ships H once per block; the rest ride the cache.
    EXPECT_EQ(ns.channel_cache_misses, kFrames / kCoherence);
    EXPECT_EQ(ns.channel_cache_hits, kFrames - kFrames / kCoherence);
    // Both cells saw traffic: sharding by cell id actually happened.
    EXPECT_GT(h.shards.shard_metrics(0).submitted, 0u);
    EXPECT_GT(h.shards.shard_metrics(1).submitted, 0u);
    EXPECT_EQ(h.shards.global_metrics().completed, kFrames);
  }
}

// A connection feeding garbage is dropped and counted; the server keeps
// serving well-formed clients. The crash-on-input failure mode this guards
// is the whole point of the trust boundary.
TEST(NetIngress, MalformedBytesDropTheConnectionNotTheServer) {
  IngressOptions io;
  io.enable_tcp = true;
  Harness h(default_shards(1), io);

  {
    Socket hostile = connect_tcp_loopback(h.ingress.tcp_port());
    const std::uint8_t garbage[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x01};
    ASSERT_TRUE(send_all(hostile.fd(), garbage, sizeof(garbage)));
    // Drop is observable as EOF from the server side of the socket.
    std::uint8_t buf[8];
    ssize_t n;
    do {
      n = ::read(hostile.fd(), buf, sizeof(buf));
    } while (n < 0 && errno == EINTR);
    EXPECT_LE(n, 0);
  }

  // A well-formed client on the same server still gets served.
  constexpr usize kFrames = 32;
  const std::vector<Trial> trials = make_trials(kFrames);
  NetClient client = NetClient::connect_tcp(h.ingress.tcp_port());
  const auto responses = stream_frames(client, trials, 1, 8, 1);
  EXPECT_EQ(responses.size(), kFrames);
  h.ingress.stop();
  h.shards.drain();
  const NetStats ns = h.ingress.stats();
  EXPECT_GE(ns.protocol_errors, 1u);
  EXPECT_GE(ns.connections_dropped, 1u);
  EXPECT_EQ(ns.responses_tx, kFrames);
}

// Referencing a fingerprint never sent on this connection is a protocol
// error — the per-connection channel cache is not cross-connection.
TEST(NetIngress, UnknownFingerprintReferenceDropsConnection) {
  IngressOptions io;
  io.enable_tcp = true;
  Harness h(default_shards(1), io);
  const std::vector<Trial> trials = make_trials(1);

  NetClient client = NetClient::connect_tcp(h.ingress.tcp_port());
  WireFrame wf;
  wf.frame_id = 0;
  wf.sigma2 = trials[0].sigma2;
  wf.y = trials[0].y;
  wf.has_channel = false;        // reference ...
  wf.channel_fp = 0xDEAD0001;    // ... something never shipped
  wf.h = trials[0].h;            // only to give the encoder the real cols
  ASSERT_TRUE(client.send(wf));
  WireResponse resp;
  EXPECT_FALSE(client.recv(resp));  // server answers by closing
  // Counter updates race only with this thread's observation; poll briefly.
  for (int i = 0; i < 100 && h.ingress.stats().protocol_errors == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(h.ingress.stats().protocol_errors, 1u);
  EXPECT_EQ(h.ingress.stats().responses_tx, 0u);
}

// Frames whose dimensions do not match the served system must be refused at
// the protocol layer — they would SD_CHECK-throw inside the dispatcher.
TEST(NetIngress, WrongDimensionsAreAProtocolError) {
  IngressOptions io;
  io.enable_tcp = true;
  Harness h(default_shards(1), io);

  ScenarioConfig sc;
  sc.num_tx = kM + 2;  // larger than the served system
  sc.num_rx = kM + 2;
  Scenario scenario(sc);
  const Trial t = scenario.next();
  NetClient client = NetClient::connect_tcp(h.ingress.tcp_port());
  WireFrame wf;
  wf.sigma2 = t.sigma2;
  wf.y = t.y;
  ASSERT_TRUE(client.send_frame_auto(wf, t.h, channel_fingerprint(t.h)));
  WireResponse resp;
  EXPECT_FALSE(client.recv(resp));
  for (int i = 0; i < 100 && h.ingress.stats().protocol_errors == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(h.ingress.stats().protocol_errors, 1u);
}

// Admission shed answers immediately with kShed — no decode, no loss.
TEST(NetIngress, ImpossibleDeadlineIsAnsweredWithShed) {
  IngressOptions io;
  io.enable_tcp = true;
  Harness h(default_shards(1, /*admission=*/true), io);
  const std::vector<Trial> trials = make_trials(1);

  NetClient client = NetClient::connect_tcp(h.ingress.tcp_port());
  WireFrame wf;
  wf.frame_id = 77;
  wf.qos = QosClass::kHard;
  wf.deadline_s = 1e-15;
  wf.sigma2 = trials[0].sigma2;
  wf.y = trials[0].y;
  ASSERT_TRUE(
      client.send_frame_auto(wf, trials[0].h, channel_fingerprint(trials[0].h)));
  WireResponse resp;
  ASSERT_TRUE(client.recv(resp));
  EXPECT_EQ(resp.frame_id, 77u);
  EXPECT_EQ(resp.status, WireFrameStatus::kShed);
  EXPECT_EQ(h.ingress.stats().shed_tx, 1u);
  EXPECT_EQ(h.shards.global_admission_stats().shed, 1u);
}

// A compliant client eliding H for a fingerprint the server's bounded cache
// evicted must NOT be dropped: the server NACKs with kResendChannel and the
// client transparently retransmits with the channel inline — over both
// transports. Referencing a never-sent fingerprint stays a protocol error
// (covered above).
TEST(NetIngress, EvictedFingerprintTriggersTransparentResend) {
  for (const bool tcp : {true, false}) {
    const std::string uds = test_uds_path(tcp ? "resend_tcp" : "resend_uds");
    IngressOptions io;
    if (tcp) {
      io.enable_tcp = true;
    } else {
      io.uds_path = uds;
    }
    io.channel_cache_capacity = 2;  // tiny: C evicts A below
    Harness h(default_shards(1), io);
    const std::vector<Trial> trials = make_trials(3);  // distinct channels
    const auto reference =
        make_detector(test_system(), parse_decoder_spec("sphere"));

    NetClient client = tcp ? NetClient::connect_tcp(h.ingress.tcp_port())
                           : NetClient::connect_uds(uds);
    // Frames 0..2 ship channels A,B,C inline (first sighting of each fp).
    for (usize i = 0; i < 3; ++i) {
      WireFrame wf;
      wf.frame_id = i;
      wf.sigma2 = trials[i].sigma2;
      wf.y = trials[i].y;
      ASSERT_TRUE(client.send_frame_auto(wf, trials[i].h,
                                         channel_fingerprint(trials[i].h)));
    }
    // Frame 3 references A again: elided (fp already shipped once), but the
    // capacity-2 cache evicted A when C arrived. The server NACKs; recv()
    // below retransmits with H inline without surfacing anything.
    WireFrame wf;
    wf.frame_id = 3;
    wf.sigma2 = trials[0].sigma2;
    wf.y = trials[0].y;
    ASSERT_TRUE(client.send_frame_auto(wf, trials[0].h,
                                       channel_fingerprint(trials[0].h)));

    std::map<std::uint64_t, WireResponse> responses;
    WireResponse resp;
    for (usize got = 0; got < 4; ++got) {
      ASSERT_TRUE(client.recv(resp));
      responses[resp.frame_id] = resp;
    }
    ASSERT_EQ(responses.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
      const Trial& t = trials[i < 3 ? i : 0];
      ASSERT_EQ(responses.at(i).status, WireFrameStatus::kCompleted)
          << "frame " << i;
      EXPECT_EQ(responses.at(i).indices,
                reference->decode(t.h, t.y, t.sigma2).indices)
          << "frame " << i;
    }
    EXPECT_EQ(client.resends(), 1u);
    h.ingress.stop();
    h.shards.drain();
    const NetStats ns = h.ingress.stats();
    EXPECT_EQ(ns.protocol_errors, 0u);
    EXPECT_EQ(ns.channel_resend_requests, 1u);
    // 3 first sightings + 1 inline resend = 4 misses; the NACKed elided
    // attempt counts as neither hit nor miss.
    EXPECT_EQ(ns.channel_cache_misses, 4u);
    EXPECT_EQ(ns.channel_cache_hits, 0u);
    EXPECT_EQ(ns.frames_rx, 5u);      // includes the NACKed attempt
    EXPECT_EQ(ns.responses_tx, 5u);   // 4 terminals + 1 NACK
  }
}

// The cache is LRU, not FIFO: an elided hit refreshes its entry, so the next
// eviction takes the coldest channel instead of the oldest.
TEST(NetIngress, ElidedHitRefreshesLruOrder) {
  IngressOptions io;
  io.enable_tcp = true;
  io.channel_cache_capacity = 2;
  Harness h(default_shards(1), io);
  const std::vector<Trial> trials = make_trials(3);
  NetClient client = NetClient::connect_tcp(h.ingress.tcp_port());
  auto send_one = [&](std::uint64_t id, const Trial& t) {
    WireFrame wf;
    wf.frame_id = id;
    wf.sigma2 = t.sigma2;
    wf.y = t.y;
    ASSERT_TRUE(client.send_frame_auto(wf, t.h, channel_fingerprint(t.h)));
  };
  send_one(0, trials[0]);  // A inline             cache [A]
  send_one(1, trials[1]);  // B inline             cache [A,B]
  send_one(2, trials[0]);  // A elided: hit+touch  cache [B,A]
  send_one(3, trials[2]);  // C inline: evicts B   cache [A,C]
  send_one(4, trials[0]);  // A elided: still hot — FIFO would have NACKed
  WireResponse resp;
  for (usize got = 0; got < 5; ++got) ASSERT_TRUE(client.recv(resp));
  EXPECT_EQ(client.resends(), 0u);
  h.ingress.stop();
  h.shards.drain();
  const NetStats ns = h.ingress.stats();
  EXPECT_EQ(ns.channel_resend_requests, 0u);
  EXPECT_EQ(ns.channel_cache_hits, 2u);
  EXPECT_EQ(ns.channel_cache_misses, 3u);
  EXPECT_EQ(ns.protocol_errors, 0u);
}

// stop() must answer every accepted frame before closing connections: a
// client that streamed N frames reads N responses even when the server shuts
// down immediately after ingesting them.
TEST(NetIngress, GracefulStopAnswersEveryAcceptedFrame) {
  constexpr usize kFrames = 64;
  constexpr usize kCoherence = 4;
  const std::vector<Trial> trials = make_trials(kFrames, kCoherence);
  std::vector<std::uint64_t> fps(kFrames);
  for (usize i = 0; i < kFrames; ++i) {
    fps[i] = (i % kCoherence == 0) ? channel_fingerprint(trials[i].h)
                                   : fps[i - 1];
  }
  const std::string uds = test_uds_path("stop");
  IngressOptions io;
  io.uds_path = uds;
  Harness h(default_shards(2), io);
  NetClient client = NetClient::connect_uds(uds);
  for (usize i = 0; i < kFrames; ++i) {
    WireFrame wf;
    wf.cell_id = static_cast<std::uint32_t>(i % 2);
    wf.frame_id = i;
    wf.sigma2 = trials[i].sigma2;
    wf.y = trials[i].y;
    ASSERT_TRUE(client.send_frame_auto(wf, trials[i].h, fps[i]));
  }
  // Stop while frames are in flight: the drain wait inside stop() holds the
  // door until every pending frame has been answered.
  while (h.ingress.stats().frames_rx < kFrames) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.ingress.stop();
  EXPECT_EQ(h.ingress.pending_frames(), 0u);
  h.shards.drain();

  usize got = 0;
  WireResponse resp;
  while (got < kFrames && client.recv(resp)) ++got;
  EXPECT_EQ(got, kFrames);
  EXPECT_EQ(h.ingress.stats().responses_tx, kFrames);
  // Idempotent: a second stop is a no-op.
  h.ingress.stop();
}

}  // namespace
}  // namespace sd::net
