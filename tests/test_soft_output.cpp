#include "decode/soft_output.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "decode/sd_gemm.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

TEST(ListSd, HardOutputMatchesPlainSphereDecoder) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ListSphereDecoder list_sd(c);
  SdGemmDetector plain(c);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trial t = make_trial(6, Modulation::kQam4, 8.0, seed);
    const SoftDecodeResult soft = list_sd.decode_soft(t.h, t.y, t.sigma2);
    const DecodeResult hard = plain.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(soft.hard.indices, hard.indices) << "seed " << seed;
    EXPECT_NEAR(soft.hard.metric, hard.metric, 1e-2 * (1 + hard.metric));
  }
}

TEST(ListSd, LlrSignsMatchTransmittedBitsAtHighSnr) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  ListSphereDecoder list_sd(c);
  const int bits = c.bits_per_symbol();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trial t = make_trial(4, Modulation::kQam16, 25.0, seed);
    const SoftDecodeResult soft = list_sd.decode_soft(t.h, t.y, t.sigma2);
    std::vector<std::uint8_t> bit_buf(static_cast<usize>(bits));
    for (index_t ant = 0; ant < 4; ++ant) {
      c.index_to_bits(t.tx.indices[static_cast<usize>(ant)], bit_buf);
      for (int b = 0; b < bits; ++b) {
        const double llr =
            soft.llrs[static_cast<usize>(ant) * bits + static_cast<usize>(b)];
        if (bit_buf[static_cast<usize>(b)] == 0) {
          EXPECT_GT(llr, 0.0) << "ant " << ant << " bit " << b;
        } else {
          EXPECT_LT(llr, 0.0) << "ant " << ant << " bit " << b;
        }
      }
    }
  }
}

TEST(ListSd, LlrMagnitudeGrowsWithSnr) {
  // M=2, 4-QAM: only 16 leaves, so a 32-deep list enumerates the full
  // hypothesis space — every bit has both hypotheses and no LLR is clamped.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ListSdOptions opts;
  opts.llr_clamp = 1e9;  // effectively disable clamping
  ListSphereDecoder list_sd(c, opts);
  auto mean_abs_llr = [&](double snr) {
    double acc = 0.0;
    int n = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Trial t = make_trial(2, Modulation::kQam4, snr, seed);
      const SoftDecodeResult soft = list_sd.decode_soft(t.h, t.y, t.sigma2);
      for (double l : soft.llrs) {
        acc += std::abs(l);
        ++n;
      }
    }
    return acc / n;
  };
  EXPECT_GT(mean_abs_llr(16.0), mean_abs_llr(4.0));
}

TEST(ListSd, ClampBoundsRespected) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ListSdOptions opts;
  opts.llr_clamp = 5.0;
  ListSphereDecoder list_sd(c, opts);
  const Trial t = make_trial(6, Modulation::kQam4, 20.0, 3);
  const SoftDecodeResult soft = list_sd.decode_soft(t.h, t.y, t.sigma2);
  for (double l : soft.llrs) {
    EXPECT_LE(std::abs(l), 5.0 + 1e-12);
  }
}

TEST(ListSd, ListSizeBoundsCandidates) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ListSdOptions opts;
  opts.list_size = 4;
  ListSphereDecoder list_sd(c, opts);
  const Trial t = make_trial(6, Modulation::kQam4, 6.0, 4);
  const SoftDecodeResult soft = list_sd.decode_soft(t.h, t.y, t.sigma2);
  EXPECT_LE(soft.candidates, 4u);
  EXPECT_GE(soft.candidates, 1u);
}

TEST(ListSd, LargerListExploresMore) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ListSdOptions small_opts;
  small_opts.list_size = 2;
  ListSdOptions big_opts;
  big_opts.list_size = 64;
  ListSphereDecoder small_sd(c, small_opts);
  ListSphereDecoder big_sd(c, big_opts);
  const Trial t = make_trial(8, Modulation::kQam4, 8.0, 5);
  const auto r_small = small_sd.decode_soft(t.h, t.y, t.sigma2);
  const auto r_big = big_sd.decode_soft(t.h, t.y, t.sigma2);
  EXPECT_GT(r_big.hard.stats.nodes_expanded, r_small.hard.stats.nodes_expanded);
  EXPECT_GT(r_big.candidates, r_small.candidates);
}

TEST(ListSd, RejectsBadOptions) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  ListSdOptions opts;
  opts.list_size = 0;
  EXPECT_THROW(ListSphereDecoder(c, opts), invalid_argument_error);
  opts.list_size = 4;
  opts.llr_clamp = 0.0;
  EXPECT_THROW(ListSphereDecoder(c, opts), invalid_argument_error);
}

}  // namespace
}  // namespace sd
