#include "linalg/lll.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

/// |det(T)| for a small square complex matrix via LU.
double abs_det(const CMat& t) {
  const Lu f = lu_decompose(t);
  double log_det = 0.0;
  for (index_t i = 0; i < t.rows(); ++i) {
    log_det += std::log(static_cast<double>(std::abs(f.lu(i, i))));
  }
  return std::exp(log_det);
}

TEST(Lll, ReducedBasisEqualsBTimesT) {
  const CMat b = testing::random_cmat(6, 4, 1);
  const LllResult r = lll_reduce(b);
  CMat bt(6, 4);
  gemm_naive(Op::kNone, cplx{1, 0}, b, r.t, cplx{0, 0}, bt);
  EXPECT_LT(max_abs_diff(bt, r.reduced), 1e-4);
}

TEST(Lll, TransformIsGaussianIntegerUnimodular) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CMat b = testing::random_cmat(5, 5, seed);
    const LllResult r = lll_reduce(b);
    for (const cplx& v : r.t.flat()) {
      EXPECT_NEAR(v.real(), std::lround(v.real()), 1e-4f);
      EXPECT_NEAR(v.imag(), std::lround(v.imag()), 1e-4f);
    }
    EXPECT_NEAR(abs_det(r.t), 1.0, 1e-2) << "seed " << seed;
  }
}

TEST(Lll, InverseTransformIsExact) {
  const CMat b = testing::random_cmat(5, 5, 3);
  const LllResult r = lll_reduce(b);
  CMat prod(5, 5);
  gemm_naive(Op::kNone, cplx{1, 0}, r.t, r.t_inv, cplx{0, 0}, prod);
  EXPECT_LT(max_abs_diff(prod, CMat::identity(5)), 1e-3);
}

TEST(Lll, NeverWorsensOrthogonalityDefect) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CMat b = testing::random_cmat(6, 6, seed + 100);
    const LllResult r = lll_reduce(b);
    EXPECT_LE(orthogonality_defect(r.reduced),
              orthogonality_defect(b) * 1.001)
        << "seed " << seed;
  }
}

TEST(Lll, ImprovesIllConditionedBasis) {
  // Two nearly parallel columns: reduction must improve the defect a lot.
  CMat b = testing::random_cmat(4, 2, 7);
  for (index_t i = 0; i < 4; ++i) {
    b(i, 1) = b(i, 0) * cplx{1, 0} + b(i, 1) * real{0.05};
  }
  const LllResult r = lll_reduce(b);
  EXPECT_GT(r.swaps, 0);
  EXPECT_LT(orthogonality_defect(r.reduced), 0.5 * orthogonality_defect(b));
}

TEST(Lll, SatisfiesSizeReductionAndLovasz) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CMat b = testing::random_cmat(6, 5, seed + 200);
    const LllResult res = lll_reduce(b, 0.75);
    const QrFactorization qr(res.reduced);
    const CMat& r = qr.r();
    for (index_t k = 1; k < 5; ++k) {
      // Size reduction: |Re/Im of R(j,k)/R(j,j)| <= 1/2 (+ float slack).
      for (index_t j = 0; j < k; ++j) {
        const cplx mu = r(j, k) / r(j, j);
        EXPECT_LE(std::abs(mu.real()), 0.5f + 1e-3f) << "seed " << seed;
        EXPECT_LE(std::abs(mu.imag()), 0.5f + 1e-3f);
      }
      // Lovász: delta*|r_{k-1,k-1}|^2 <= |r_{k-1,k}|^2 + |r_{k,k}|^2.
      EXPECT_LE(0.75 * static_cast<double>(norm2(r(k - 1, k - 1))),
                static_cast<double>(norm2(r(k - 1, k)) + norm2(r(k, k))) *
                    1.001);
    }
  }
}

TEST(Lll, OrthogonalBasisIsFixedPoint) {
  const CMat eye = CMat::identity(4);
  const LllResult r = lll_reduce(eye);
  EXPECT_EQ(r.swaps, 0);
  EXPECT_LT(max_abs_diff(r.reduced, eye), 1e-6);
}

TEST(Lll, RejectsBadArguments) {
  const CMat b = testing::random_cmat(4, 4, 1);
  EXPECT_THROW((void)lll_reduce(b, 0.4), invalid_argument_error);
  EXPECT_THROW((void)lll_reduce(b, 1.5), invalid_argument_error);
  const CMat wide = testing::random_cmat(3, 5, 2);
  EXPECT_THROW((void)lll_reduce(wide), invalid_argument_error);
}

TEST(Lll, RoundGaussianRoundsBothAxes) {
  EXPECT_EQ(round_gaussian(cplx{1.4f, -2.6f}), (cplx{1, -3}));
  EXPECT_EQ(round_gaussian(cplx{-0.5f, 0.5f}), (cplx{-1, 1}));  // lround away
}

}  // namespace
}  // namespace sd
