#include "decode/mst.hpp"

#include <gtest/gtest.h>

namespace sd {
namespace {

TEST(Mst, InsertAndGetRoundTrip) {
  MetaStateTable mst(4, 16);
  const NodeId id = mst.insert(0, MstNode{kRootId, 3, real{1.5}});
  const MstNode& node = mst.get(id);
  EXPECT_EQ(node.parent, kRootId);
  EXPECT_EQ(node.symbol, 3);
  EXPECT_FLOAT_EQ(node.pd, 1.5f);
  EXPECT_EQ(MetaStateTable::level_of(id), 0);
}

TEST(Mst, IdsEncodeLevelAndSlot) {
  MetaStateTable mst(8, 16);
  const NodeId a = mst.insert(2, MstNode{kRootId, 0, real{0}});
  const NodeId b = mst.insert(2, MstNode{kRootId, 1, real{0}});
  const NodeId c = mst.insert(5, MstNode{a, 2, real{0}});
  EXPECT_EQ(MetaStateTable::level_of(a), 2);
  EXPECT_EQ(MetaStateTable::level_of(b), 2);
  EXPECT_EQ(MetaStateTable::level_of(c), 5);
  EXPECT_NE(a, b);
  EXPECT_EQ(mst.level_count(2), 2u);
  EXPECT_EQ(mst.level_count(5), 1u);
  EXPECT_EQ(mst.total_nodes(), 3u);
}

TEST(Mst, PathSymbolsWalksParentLinks) {
  MetaStateTable mst(4, 16);
  const NodeId d0 = mst.insert(0, MstNode{kRootId, 7, real{1}});
  const NodeId d1 = mst.insert(1, MstNode{d0, 5, real{2}});
  const NodeId d2 = mst.insert(2, MstNode{d1, 3, real{3}});
  std::vector<index_t> path(3, -1);
  mst.path_symbols(d2, path);
  EXPECT_EQ(path[0], 7);
  EXPECT_EQ(path[1], 5);
  EXPECT_EQ(path[2], 3);
}

TEST(Mst, PathBufferTooSmallThrows) {
  MetaStateTable mst(4, 16);
  const NodeId d0 = mst.insert(0, MstNode{kRootId, 1, real{0}});
  const NodeId d1 = mst.insert(1, MstNode{d0, 2, real{0}});
  std::vector<index_t> path(1);
  EXPECT_THROW(mst.path_symbols(d1, path), invalid_argument_error);
}

TEST(Mst, FixedCapacityOverflowThrows) {
  MetaStateTable mst(2, 2, /*fixed_capacity=*/true);
  mst.insert(0, MstNode{});
  mst.insert(0, MstNode{});
  EXPECT_THROW(mst.insert(0, MstNode{}), capacity_error);
}

TEST(Mst, SoftCapacityGrowsAndTracksPeak) {
  MetaStateTable mst(2, 2, /*fixed_capacity=*/false);
  for (int i = 0; i < 5; ++i) mst.insert(0, MstNode{});
  EXPECT_EQ(mst.level_count(0), 5u);
  EXPECT_EQ(mst.peak_level_count(), 5u);
}

TEST(Mst, ResetClearsNodesKeepsShape) {
  MetaStateTable mst(3, 8);
  mst.insert(0, MstNode{});
  mst.insert(1, MstNode{});
  mst.reset();
  EXPECT_EQ(mst.total_nodes(), 0u);
  EXPECT_EQ(mst.level_count(0), 0u);
  EXPECT_EQ(mst.levels(), 3);
  // Table is reusable after reset.
  const NodeId id = mst.insert(1, MstNode{kRootId, 9, real{4}});
  EXPECT_EQ(mst.get(id).symbol, 9);
}

TEST(Mst, RejectsBadLevels) {
  MetaStateTable mst(3, 8);
  EXPECT_THROW(mst.insert(3, MstNode{}), invalid_argument_error);
  EXPECT_THROW(mst.insert(-1, MstNode{}), invalid_argument_error);
  EXPECT_THROW((void)mst.level_count(4), invalid_argument_error);
}

TEST(Mst, RejectsBadConstruction) {
  EXPECT_THROW(MetaStateTable(0, 8), invalid_argument_error);
  EXPECT_THROW(MetaStateTable(300, 8), invalid_argument_error);
  EXPECT_THROW(MetaStateTable(4, 0), invalid_argument_error);
}

TEST(Mst, GetRejectsDanglingIds) {
  MetaStateTable mst(4, 8);
  const NodeId id = mst.insert(1, MstNode{});
  mst.reset();
  EXPECT_THROW((void)mst.get(id), invalid_argument_error);
}

}  // namespace
}  // namespace sd
