// Gram-domain MMSE with Neumann-series inversion (PR 10).
//
// Pins the massive-MIMO fast path's contracts: the detector recovers
// noiseless transmissions on tall channels, the Jacobi/Neumann series agrees
// with the exact Cholesky solve when the Gram matrix is diagonally dominant,
// the residual guard falls back to the exact solve (never to wrong bits)
// when it is not, the cached two-phase path is bit-identical to the one-shot
// path, and the kGramMmse prep is a distinct cache entry from the tree-search
// factorizations.
#include "decode/mmse_neumann.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "decode/channel_prep.hpp"
#include "decode/linear.hpp"
#include "mimo/scenario.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

Trial rect_trial(index_t num_rx, index_t num_tx, Modulation mod, double snr_db,
                 std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = num_tx;
  sc.num_rx = num_rx;
  sc.modulation = mod;
  sc.snr_db = snr_db;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

bool same_result_bits(const DecodeResult& a, const DecodeResult& b) {
  return a.indices == b.indices && a.symbols.size() == b.symbols.size() &&
         std::memcmp(a.symbols.data(), b.symbols.data(),
                     sizeof(cplx) * a.symbols.size()) == 0 &&
         std::memcmp(&a.metric, &b.metric, sizeof(double)) == 0;
}

TEST(MmseNeumann, RecoversNoiselessTallTransmission) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MmseNeumannDetector det(MmseNeumannOptions{}, c);
  EXPECT_EQ(det.name(), "MMSE-Neumann");
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t = rect_trial(32, 4, Modulation::kQam16, 300.0, seed);
    const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(r.indices, t.tx.indices) << "seed " << seed;
  }
}

TEST(MmseNeumann, ExactSolveMatchesLinearMmse) {
  // k=0 requests the exact Cholesky solve of (G + sigma2 I) x = H^H y —
  // the same estimate the linear MMSE detector computes — so the sliced
  // decisions must agree.
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MmseNeumannDetector exact(MmseNeumannOptions{.k = 0}, c);
  LinearDetector mmse(LinearKind::kMmse, c);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Trial t = rect_trial(16, 4, Modulation::kQam16, 14.0, seed);
    EXPECT_EQ(exact.decode(t.h, t.y, t.sigma2).indices,
              mmse.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(MmseNeumann, SeriesMatchesExactOnTallChannels) {
  // 32x4: the Gram matrix is strongly diagonally dominant, so a short
  // Neumann series converges and the decisions match the exact solve
  // without ever tripping the residual guard.
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MmseNeumannDetector exact(MmseNeumannOptions{.k = 0}, c);
  MmseNeumannDetector series(MmseNeumannOptions{.k = 3}, c);
  std::uint64_t fallbacks = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Trial t = rect_trial(32, 4, Modulation::kQam16, 12.0, seed);
    const DecodeResult re = exact.decode(t.h, t.y, t.sigma2);
    const DecodeResult rs = series.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(rs.indices, re.indices) << "seed " << seed;
    EXPECT_GT(rs.stats.neumann_terms, 0u);
    fallbacks += rs.stats.neumann_fallbacks;
  }
  EXPECT_EQ(fallbacks, 0u);
}

TEST(MmseNeumann, ResidualGuardFallsBackOnSquareChannels) {
  // On square i.i.d. channels the series has no dominance to work with and
  // routinely diverges; the guard must detect that via the residual and
  // re-solve exactly, making the answer identical to k=0 anyway.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MmseNeumannDetector exact(MmseNeumannOptions{.k = 0}, c);
  MmseNeumannDetector series(MmseNeumannOptions{.k = 3}, c);
  std::uint64_t fallbacks = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Trial t = rect_trial(6, 6, Modulation::kQam4, 16.0, seed);
    const DecodeResult rs = series.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(rs.stats.neumann_fallbacks, rs.stats.neumann_exact_solves);
    fallbacks += rs.stats.neumann_fallbacks;
    if (rs.stats.neumann_fallbacks > 0) {
      // A guarded frame re-solved exactly, so it must equal the k=0 answer.
      const DecodeResult re = exact.decode(t.h, t.y, t.sigma2);
      EXPECT_EQ(rs.indices, re.indices) << "seed " << seed;
    }
  }
  EXPECT_GT(fallbacks, 0u);
}

TEST(MmseNeumann, CachedPathBitIdenticalToOneShot) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  for (usize k : {usize{0}, usize{2}, usize{3}}) {
    MmseNeumannDetector det(MmseNeumannOptions{.k = k}, c);
    EXPECT_EQ(det.prep_kind(), PrepKind::kGramMmse);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Trial t = rect_trial(24, 6, Modulation::kQam16, 10.0, seed);
      ChannelHandle handle{CMat(t.h)};
      const auto prep = det.preprocess(handle);
      ASSERT_NE(prep, nullptr);
      EXPECT_EQ(prep->g.rows(), 6);
      EXPECT_EQ(prep->g.cols(), 6);

      DecodeResult one_shot, cached;
      det.decode_into(t.h, t.y, t.sigma2, one_shot);
      det.decode_with(*prep, t.y, t.sigma2, cached);
      EXPECT_TRUE(same_result_bits(one_shot, cached))
          << "k " << k << " seed " << seed;
    }
  }
}

TEST(MmseNeumann, CachedSystemReusedAcrossFramesOfOneBlock) {
  // Consecutive decode_with calls against the same prep and sigma2 must not
  // re-factor: with k=0 the Cholesky happens once, so the exact-solve
  // counter still climbs once per frame while results stay per-frame
  // correct. (The reuse itself is observable through the alloc-free audit;
  // here we pin correctness across the reuse path.)
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MmseNeumannDetector det(MmseNeumannOptions{.k = 0}, c);
  ScenarioConfig sc;
  sc.num_tx = 4;
  sc.num_rx = 32;
  sc.modulation = Modulation::kQam16;
  sc.snr_db = 300.0;
  sc.seed = 77;
  Scenario s(sc);
  const Trial t0 = s.next();
  ChannelHandle handle{CMat(t0.h)};
  const auto prep = det.preprocess(handle);

  DecodeResult r;
  for (int rep = 0; rep < 4; ++rep) {
    det.decode_with(*prep, t0.y, t0.sigma2, r);
    EXPECT_EQ(r.indices, t0.tx.indices) << "rep " << rep;
  }
}

TEST(MmseNeumann, GramPrepIsADistinctCacheEntry) {
  ChannelPrepCache cache(ChannelPrepCache::Options{8, 2});
  ChannelHandle channel(testing::random_cmat(12, 4, 19));

  bool hit = true;
  const auto gram = cache.get_or_build(channel, PrepKind::kGramMmse, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(gram, nullptr);
  EXPECT_EQ(gram->kind, PrepKind::kGramMmse);
  EXPECT_EQ(gram->g.rows(), 4);
  EXPECT_EQ(gram->g.cols(), 4);

  const auto again = cache.get_or_build(channel, PrepKind::kGramMmse, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(gram.get(), again.get());

  // Same channel, tree-search prep: a distinct entry, not a collision.
  const auto qr = cache.get_or_build(channel, PrepKind::kZf, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(static_cast<const void*>(qr.get()),
            static_cast<const void*>(gram.get()));
  EXPECT_EQ(cache.stats().collisions, 0u);
}

TEST(MmseNeumann, RejectsUndeterminedSystems) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MmseNeumannDetector det(MmseNeumannOptions{}, c);
  const Trial t = rect_trial(4, 4, Modulation::kQam4, 20.0, 5);
  CMat fat(2, 4);  // rows < cols: G is singular by construction
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 0; j < 4; ++j) fat(i, j) = t.h(i, j);
  EXPECT_THROW((void)det.decode(fat, std::span<const cplx>(t.y).first(2),
                                t.sigma2),
               invalid_argument_error);
}

TEST(MmseNeumann, CountersReportSeriesAndFallbackActivity) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  MmseNeumannDetector series(MmseNeumannOptions{.k = 2}, c);
  const Trial t = rect_trial(32, 4, Modulation::kQam16, 12.0, 3);
  const DecodeResult r = series.decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(r.stats.neumann_terms, 2u);
  EXPECT_EQ(r.stats.neumann_fallbacks, 0u);
  EXPECT_EQ(r.stats.neumann_exact_solves, 0u);

  MmseNeumannDetector exact(MmseNeumannOptions{.k = 0}, c);
  const DecodeResult re = exact.decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(re.stats.neumann_terms, 0u);
  EXPECT_EQ(re.stats.neumann_exact_solves, 1u);
}

}  // namespace
}  // namespace sd
