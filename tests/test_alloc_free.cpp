// Steady-state decode must not touch the heap.
//
// This is the acceptance test for the detector-owned DecodeScratch + the
// GEMM workspace arena: after a warm-up that grows every buffer to its
// high-water mark, repeated decode_into() calls on the same problem shape
// must perform ZERO heap allocations. The binary links sd_alloc_count, whose
// global operator new/delete replacements feed the counters read here; when
// observability is compiled out (SPHEREDEC_OBS=OFF) the hooks vanish and the
// test skips.
//
// The guarded region includes preprocessing (Householder QR), the full tree
// search, and result materialization — the entire per-frame path the serve
// and dispatch runtimes execute per lane.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "decode/mmse_neumann.hpp"
#include "decode/sd_gemm.hpp"
#include "decode/sd_gemm_bfs.hpp"
#include "linalg/gemm.hpp"
#include "obs/alloc_count.hpp"
#include "obs/counters.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

constexpr index_t kM = 6;
constexpr double kSigma2 = 0.05;

class AllocFree : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::alloc_counting_available()) {
      GTEST_SKIP() << "allocation counting not linked (SPHEREDEC_OBS=OFF)";
    }
  }
};

/// Runs `detector` on a fixed problem: warm-up decodes grow every scratch
/// buffer, then a measured window of decodes must not allocate.
void expect_steady_state_alloc_free(Detector& detector, const char* what) {
  const CMat h = testing::random_cmat(kM, kM, 9001);
  const CVec y = testing::random_cvec(kM, 9002);
  DecodeResult result;
  for (int warm = 0; warm < 3; ++warm) {
    detector.decode_into(h, y, kSigma2, result);
  }
  const DecodeResult warm_result = result;

  const obs::AllocCounts before = obs::alloc_counts();
  for (int rep = 0; rep < 10; ++rep) {
    detector.decode_into(h, y, kSigma2, result);
  }
  const obs::AllocCounts after = obs::alloc_counts();

  EXPECT_EQ(after.allocations, before.allocations)
      << what << ": steady-state decode_into allocated ("
      << (after.allocations - before.allocations) << " allocations, "
      << (after.bytes - before.bytes) << " bytes over 10 decodes)";
  EXPECT_EQ(after.deallocations, before.deallocations)
      << what << ": steady-state decode_into freed heap memory";

  // Reuse must not change the answer.
  EXPECT_EQ(result.indices, warm_result.indices);
  EXPECT_EQ(result.metric, warm_result.metric);
}

TEST_F(AllocFree, CountersMoveWhenTheHeapIsUsed) {
  // Sanity: the hooks really are interposed in this binary.
  const obs::AllocCounts before = obs::alloc_counts();
  {
    std::vector<int> v(1024, 7);
    ASSERT_EQ(v.back(), 7);
  }
  const obs::AllocCounts after = obs::alloc_counts();
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GT(after.deallocations, before.deallocations);
  EXPECT_GE(after.bytes - before.bytes, 1024u * sizeof(int));
}

TEST_F(AllocFree, BestFsDecodeIsAllocationFreeAfterWarmup) {
  SdGemmDetector det(Constellation::get(Modulation::kQam16));
  expect_steady_state_alloc_free(det, "SD-GEMM-BestFS");
}

TEST_F(AllocFree, BestFsRow0DecodeIsAllocationFreeAfterWarmup) {
  SdOptions opts;
  opts.level_gemm = LevelGemm::kRow0;
  SdGemmDetector det(Constellation::get(Modulation::kQam16), opts);
  expect_steady_state_alloc_free(det, "SD-GEMM-BestFS/row0");
}

TEST_F(AllocFree, BfsDecodeIsAllocationFreeAfterWarmup) {
  SdGemmBfsDetector det(Constellation::get(Modulation::kQam16));
  expect_steady_state_alloc_free(det, "SD-GEMM-BFS");
}

TEST_F(AllocFree, ScalarAblationDecodeIsAllocationFreeAfterWarmup) {
  SdOptions opts;
  opts.gemm_eval = false;
  SdGemmDetector det(Constellation::get(Modulation::kQam16), opts);
  expect_steady_state_alloc_free(det, "SD-Scalar-BestFS");
}

/// Same contract for the cached-prep path: once the prep is built and the
/// detector is warm, repeated decode_with() calls must not allocate — the
/// serving hot loop under coherent traffic is prep-cache hit + decode_with.
void expect_cached_prep_alloc_free(Detector& detector, const char* what) {
  const ChannelHandle channel(testing::random_cmat(kM, kM, 9001));
  const CVec y = testing::random_cvec(kM, 9002);
  auto prep = detector.preprocess(channel);
  DecodeResult result;
  for (int warm = 0; warm < 3; ++warm) {
    detector.decode_with(*prep, y, kSigma2, result);
  }
  const DecodeResult warm_result = result;

  const obs::AllocCounts before = obs::alloc_counts();
  for (int rep = 0; rep < 10; ++rep) {
    detector.decode_with(*prep, y, kSigma2, result);
  }
  const obs::AllocCounts after = obs::alloc_counts();

  EXPECT_EQ(after.allocations, before.allocations)
      << what << ": steady-state decode_with allocated ("
      << (after.allocations - before.allocations) << " allocations over 10 "
      << "decodes)";

  EXPECT_EQ(result.indices, warm_result.indices);
  EXPECT_EQ(result.metric, warm_result.metric);
}

TEST_F(AllocFree, BestFsCachedPrepDecodeIsAllocationFreeAfterWarmup) {
  SdGemmDetector det(Constellation::get(Modulation::kQam16));
  expect_cached_prep_alloc_free(det, "SD-GEMM-BestFS/decode_with");
}

TEST_F(AllocFree, BfsCachedPrepDecodeIsAllocationFreeAfterWarmup) {
  SdGemmBfsDetector det(Constellation::get(Modulation::kQam16));
  expect_cached_prep_alloc_free(det, "SD-GEMM-BFS/decode_with");
}

TEST_F(AllocFree, QuantBfsDecodeIsAllocationFreeAfterWarmup) {
  BfsOptions opts;
  opts.quantized = true;
  SdGemmBfsDetector det(Constellation::get(Modulation::kQam16), opts);
  expect_steady_state_alloc_free(det, "SD-GEMM-BFS-i16");
}

TEST_F(AllocFree, QuantBfsCachedPrepDecodeIsAllocationFreeAfterWarmup) {
  BfsOptions opts;
  opts.quantized = true;
  SdGemmBfsDetector det(Constellation::get(Modulation::kQam16), opts);
  expect_cached_prep_alloc_free(det, "SD-GEMM-BFS-i16/decode_with");
}

TEST_F(AllocFree, BfsWideDecodeIsAllocationFreeAfterWarmup) {
  // The cross-lane former's product (DESIGN.md §16) is a wide run over
  // DISTINCT channels; once warm, the block-diagonal wide engine must hold
  // the same zero-allocation contract as the single-frame paths.
  constexpr usize kWidth = 4;
  SdGemmBfsDetector det(Constellation::get(Modulation::kQam16));
  std::vector<std::shared_ptr<const PreprocessedChannel>> preps;
  std::vector<CVec> ys;
  std::vector<DecodeResult> results(kWidth);
  for (usize i = 0; i < kWidth; ++i) {
    preps.push_back(det.preprocess(
        ChannelHandle(testing::random_cmat(kM, kM, 9100 + static_cast<int>(i)))));
    ys.push_back(testing::random_cvec(kM, 9200 + static_cast<int>(i)));
  }
  std::vector<Detector::WideItem> items(kWidth);
  const auto run = [&] {
    for (usize i = 0; i < kWidth; ++i) {
      items[i] = {preps[i].get(), ys[i], kSigma2, &results[i]};
    }
    det.decode_wide(items);
  };
  for (int warm = 0; warm < 3; ++warm) run();
  const std::vector<DecodeResult> warm_results = results;

  const obs::AllocCounts before = obs::alloc_counts();
  for (int rep = 0; rep < 10; ++rep) run();
  const obs::AllocCounts after = obs::alloc_counts();

  EXPECT_EQ(after.allocations, before.allocations)
      << "SD-GEMM-BFS/decode_wide: steady-state wide decode allocated ("
      << (after.allocations - before.allocations) << " allocations over 10 "
      << "wide runs)";
  for (usize i = 0; i < kWidth; ++i) {
    EXPECT_EQ(results[i].indices, warm_results[i].indices);
    EXPECT_EQ(results[i].metric, warm_results[i].metric);
  }
}

TEST_F(AllocFree, MmseNeumannDecodeIsAllocationFreeAfterWarmup) {
  // Tall channel: the series path (matched filter + Jacobi sweeps). The
  // guard never trips here, so this pins the pure-Neumann hot loop.
  MmseNeumannDetector det(MmseNeumannOptions{}, Constellation::get(Modulation::kQam16));
  const CMat h = testing::random_cmat(4 * kM, kM, 9001);
  const CVec y = testing::random_cvec(4 * kM, 9002);
  DecodeResult result;
  for (int warm = 0; warm < 3; ++warm) det.decode_into(h, y, kSigma2, result);
  const DecodeResult warm_result = result;

  const obs::AllocCounts before = obs::alloc_counts();
  for (int rep = 0; rep < 10; ++rep) det.decode_into(h, y, kSigma2, result);
  const obs::AllocCounts after = obs::alloc_counts();

  EXPECT_EQ(after.allocations, before.allocations)
      << "MMSE-Neumann: steady-state decode_into allocated ("
      << (after.allocations - before.allocations) << " allocations over 10 "
      << "decodes)";
  EXPECT_EQ(result.indices, warm_result.indices);
  EXPECT_EQ(result.metric, warm_result.metric);
  EXPECT_EQ(result.stats.neumann_fallbacks, 0u);
}

TEST_F(AllocFree, MmseNeumannFallbackDecodeIsAllocationFreeAfterWarmup) {
  // Square channel: the residual guard trips and the frame re-solves via
  // Cholesky — the fallback path must hold the same contract (l_ and the
  // solve run entirely in the scratch arena).
  MmseNeumannDetector det(MmseNeumannOptions{}, Constellation::get(Modulation::kQam16));
  const CMat h = testing::random_cmat(kM, kM, 9001);
  const CVec y = testing::random_cvec(kM, 9002);
  DecodeResult result;
  for (int warm = 0; warm < 3; ++warm) det.decode_into(h, y, kSigma2, result);
  ASSERT_GT(result.stats.neumann_fallbacks, 0u)
      << "fixture no longer exercises the fallback path";
  const DecodeResult warm_result = result;

  const obs::AllocCounts before = obs::alloc_counts();
  for (int rep = 0; rep < 10; ++rep) det.decode_into(h, y, kSigma2, result);
  const obs::AllocCounts after = obs::alloc_counts();

  EXPECT_EQ(after.allocations, before.allocations)
      << "MMSE-Neumann/fallback: steady-state decode_into allocated ("
      << (after.allocations - before.allocations) << " allocations over 10 "
      << "decodes)";
  EXPECT_EQ(result.indices, warm_result.indices);
  EXPECT_EQ(result.metric, warm_result.metric);
}

TEST_F(AllocFree, MmseNeumannCachedPrepDecodeIsAllocationFreeAfterWarmup) {
  // The serving hot loop at a massive-MIMO cell: prep-cache hit on the Gram
  // matrix, then decode_with per frame. The (channel, sigma2) system cache
  // makes repeat frames skip even the A-assembly; none of it may allocate.
  MmseNeumannDetector det(MmseNeumannOptions{}, Constellation::get(Modulation::kQam16));
  const ChannelHandle channel(testing::random_cmat(4 * kM, kM, 9001));
  const CVec y = testing::random_cvec(4 * kM, 9002);
  auto prep = det.preprocess(channel);
  DecodeResult result;
  for (int warm = 0; warm < 3; ++warm)
    det.decode_with(*prep, y, kSigma2, result);
  const DecodeResult warm_result = result;

  const obs::AllocCounts before = obs::alloc_counts();
  for (int rep = 0; rep < 10; ++rep) det.decode_with(*prep, y, kSigma2, result);
  const obs::AllocCounts after = obs::alloc_counts();

  EXPECT_EQ(after.allocations, before.allocations)
      << "MMSE-Neumann/decode_with: steady-state decode allocated ("
      << (after.allocations - before.allocations) << " allocations over 10 "
      << "decodes)";
  EXPECT_EQ(result.indices, warm_result.indices);
  EXPECT_EQ(result.metric, warm_result.metric);
}

TEST_F(AllocFree, ExportedCountersReflectTraffic) {
  obs::CounterRegistry reg;
  obs::export_alloc_counters(reg);
  EXPECT_EQ(reg.get_uint_or("alloc.available", 0), 1u);
  const std::uint64_t reported = reg.get_uint_or("alloc.allocations", 0);
  EXPECT_LE(reported, obs::alloc_counts().allocations);
  EXPECT_GT(reported, 0u);
}

}  // namespace
}  // namespace sd
