#include "code/turbo_receiver.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sd {
namespace {

TurboConfig base_config() {
  TurboConfig cfg;
  cfg.num_tx = 4;
  cfg.num_rx = 4;
  cfg.modulation = Modulation::kQam4;
  cfg.info_bits = 100;
  cfg.iterations = 3;
  cfg.seed = 1;
  return cfg;
}

TEST(TurboReceiver, PerfectAtHighSnr) {
  TurboReceiver rx(base_config());
  for (int p = 0; p < 4; ++p) {
    const TurboPacketResult r = rx.run_packet(25.0);
    EXPECT_TRUE(r.packet_ok);
    EXPECT_EQ(r.errors_per_iteration.size(), 3u);
  }
}

TEST(TurboReceiver, IterationsNeverHurtOnAverage) {
  TurboReceiver rx(base_config());
  usize first = 0, last = 0;
  const int packets = 20;
  for (int p = 0; p < packets; ++p) {
    const TurboPacketResult r = rx.run_packet(7.0);
    first += r.errors_per_iteration.front();
    last += r.errors_per_iteration.back();
  }
  EXPECT_LE(last, first);
}

TEST(TurboReceiver, IterationsRecoverPacketsAtModerateSnr) {
  // The headline property of [11]-style receivers: feedback from the code
  // fixes residual detection errors. Count packets that fail at iteration 1
  // but succeed by the last iteration; require that some exist and that no
  // packet goes the other way unrecovered-from-recovered.
  TurboConfig cfg = base_config();
  cfg.iterations = 4;
  TurboReceiver rx(cfg);
  int recovered = 0, regressed = 0;
  for (int p = 0; p < 30; ++p) {
    const TurboPacketResult r = rx.run_packet(5.0);
    const bool ok_first = r.errors_per_iteration.front() == 0;
    const bool ok_last = r.errors_per_iteration.back() == 0;
    if (!ok_first && ok_last) ++recovered;
    if (ok_first && !ok_last) ++regressed;
  }
  EXPECT_GT(recovered, 0);
  EXPECT_EQ(regressed, 0);
}

TEST(TurboReceiver, SingleIterationMatchesNonIterativeStructure) {
  TurboConfig cfg = base_config();
  cfg.iterations = 1;
  TurboReceiver rx(cfg);
  const TurboPacketResult r = rx.run_packet(10.0);
  EXPECT_EQ(r.errors_per_iteration.size(), 1u);
  EXPECT_EQ(r.info_bit_errors, r.errors_per_iteration.back());
  EXPECT_GT(r.vectors_used, 0u);
}

TEST(TurboReceiver, DeterministicPerSeed) {
  TurboReceiver a(base_config()), b(base_config());
  const TurboPacketResult ra = a.run_packet(7.0);
  const TurboPacketResult rb = b.run_packet(7.0);
  EXPECT_EQ(ra.errors_per_iteration, rb.errors_per_iteration);
}

TEST(TurboReceiver, RejectsBadConfig) {
  TurboConfig cfg = base_config();
  cfg.iterations = 0;
  EXPECT_THROW(TurboReceiver{cfg}, invalid_argument_error);
  cfg = base_config();
  cfg.info_bits = 0;
  EXPECT_THROW(TurboReceiver{cfg}, invalid_argument_error);
}

}  // namespace
}  // namespace sd
