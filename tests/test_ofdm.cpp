#include "mimo/ofdm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "core/sphere_decoder.hpp"
#include "linalg/norms.hpp"

namespace sd {
namespace {

OfdmConfig small_config() {
  OfdmConfig cfg;
  cfg.subcarriers = 16;
  cfg.num_taps = 3;
  cfg.num_tx = 2;
  cfg.num_rx = 2;
  cfg.modulation = Modulation::kQam4;
  return cfg;
}

TEST(Ofdm, SingleTapChannelIsFlat) {
  OfdmConfig cfg = small_config();
  cfg.num_taps = 1;
  OfdmLink link(cfg, 1);
  const MultipathChannel ch = link.draw_channel();
  const auto freq = ch.frequency_response(cfg.subcarriers);
  ASSERT_EQ(freq.size(), 16u);
  for (const CMat& h : freq) {
    EXPECT_LT(max_abs_diff(h, ch.taps[0]), 1e-4);
  }
}

TEST(Ofdm, FrequencyResponseMatchesDirectDft) {
  OfdmLink link(small_config(), 2);
  const MultipathChannel ch = link.draw_channel();
  const auto freq = ch.frequency_response(16);
  for (index_t f = 0; f < 16; ++f) {
    for (index_t i = 0; i < 2; ++i) {
      for (index_t j = 0; j < 2; ++j) {
        cplx expected{0, 0};
        for (usize t = 0; t < ch.taps.size(); ++t) {
          const double angle = -2.0 * std::numbers::pi * static_cast<double>(f) *
                               static_cast<double>(t) / 16.0;
          expected += ch.taps[t](i, j) *
                      cplx{static_cast<real>(std::cos(angle)),
                           static_cast<real>(std::sin(angle))};
        }
        EXPECT_LT(std::abs(freq[static_cast<usize>(f)](i, j) - expected), 1e-4f);
      }
    }
  }
}

TEST(Ofdm, TapPowersAreNormalized) {
  // E[|H[f]_ij|^2] == 1 so per-subcarrier statistics match the flat model.
  OfdmLink link(small_config(), 3);
  double acc = 0.0;
  const int draws = 300;
  for (int d = 0; d < draws; ++d) {
    const MultipathChannel ch = link.draw_channel();
    const auto freq = ch.frequency_response(16);
    for (const CMat& h : freq) acc += frobenius_sq(h);
  }
  // 16 subcarriers x 4 entries of unit average power.
  EXPECT_NEAR(acc / (draws * 16.0 * 4.0), 1.0, 0.07);
}

TEST(Ofdm, NoiselessFrameDecodesPerfectlyPerSubcarrier) {
  OfdmLink link(small_config(), 4);
  const MultipathChannel ch = link.draw_channel();
  const OfdmLink::TxFrame tx = link.random_frame();
  const OfdmLink::RxFrame rx = link.transmit(ch, tx, 300.0);

  const SystemConfig sys{2, 2, Modulation::kQam4};
  auto det = make_detector(sys, DecoderSpec{});
  for (usize f = 0; f < rx.y.size(); ++f) {
    const DecodeResult r = det->decode(rx.h[f], rx.y[f], rx.sigma2);
    EXPECT_EQ(r.indices, tx.carriers[f].indices) << "subcarrier " << f;
  }
}

TEST(Ofdm, FrameHasIndependentPayloads) {
  OfdmLink link(small_config(), 5);
  const OfdmLink::TxFrame tx = link.random_frame();
  // Not all subcarriers carry the same symbols.
  bool any_different = false;
  for (usize f = 1; f < tx.carriers.size(); ++f) {
    if (tx.carriers[f].indices != tx.carriers[0].indices) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Ofdm, RejectsBadConfigs) {
  OfdmConfig cfg = small_config();
  cfg.subcarriers = 12;  // not a power of two
  EXPECT_THROW(OfdmLink(cfg, 1), invalid_argument_error);
  cfg = small_config();
  cfg.num_taps = 0;
  EXPECT_THROW(OfdmLink(cfg, 1), invalid_argument_error);
  cfg = small_config();
  cfg.num_taps = 32;  // exceeds subcarriers
  EXPECT_THROW(OfdmLink(cfg, 1), invalid_argument_error);
  cfg = small_config();
  cfg.tap_decay = 0.0;
  EXPECT_THROW(OfdmLink(cfg, 1), invalid_argument_error);
}

TEST(Ofdm, FrequencySelectivityVariesAcrossSubcarriers) {
  OfdmLink link(small_config(), 6);
  const MultipathChannel ch = link.draw_channel();
  const auto freq = ch.frequency_response(16);
  // With 3 taps, per-subcarrier gains must differ materially.
  double min_gain = 1e30, max_gain = 0;
  for (const CMat& h : freq) {
    const double g = frobenius_sq(h);
    min_gain = std::min(min_gain, g);
    max_gain = std::max(max_gain, g);
  }
  EXPECT_GT(max_gain, 1.5 * min_gain);
}

}  // namespace
}  // namespace sd
