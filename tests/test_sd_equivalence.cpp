// The verification backbone of the reproduction: every exact sphere decoder
// (GEMM/Best-FS, scalar Best-FS, classic DFS, GEMM-BFS, multi-PE) must
// return exactly the ML solution, across a parameterized grid of system
// sizes, modulations, SNRs and seeds. The paper's claim that its hardware
// optimizations "improve compute complexity without impacting BER
// performance" rests on this property.
#include <gtest/gtest.h>

#include <tuple>

#include "decode/ml.hpp"
#include "decode/parallel_sd.hpp"
#include "decode/sd_dfs.hpp"
#include "decode/sd_gemm.hpp"
#include "decode/sd_gemm_bfs.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

struct Case {
  index_t m;
  Modulation mod;
  double snr_db;
  std::uint64_t seed;
};

Trial make_trial(const Case& cs) {
  ScenarioConfig sc;
  sc.num_tx = cs.m;
  sc.num_rx = cs.m;
  sc.modulation = cs.mod;
  sc.snr_db = cs.snr_db;
  sc.seed = cs.seed;
  Scenario s(sc);
  return s.next();
}

class SdVsMl
    : public ::testing::TestWithParam<std::tuple<int, Modulation, double>> {};

TEST_P(SdVsMl, AllExactDecodersMatchMlSolution) {
  const auto [m, mod, snr] = GetParam();
  const Constellation& c = Constellation::get(mod);
  MlDetector ml(c);
  SdGemmDetector sd_gemm(c);
  SdOptions scalar_opts;
  scalar_opts.gemm_eval = false;
  SdGemmDetector sd_scalar(c, scalar_opts);
  SdDfsDetector sd_dfs(c);
  SdGemmBfsDetector sd_bfs(c);
  ParallelSdOptions par_opts;
  par_opts.num_threads = 2;
  ParallelSdDetector sd_par(c, par_opts);

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Trial t = make_trial({static_cast<index_t>(m), mod, snr, seed});
    const DecodeResult r_ml = ml.decode(t.h, t.y, t.sigma2);
    const DecodeResult r_gemm = sd_gemm.decode(t.h, t.y, t.sigma2);
    const DecodeResult r_scalar = sd_scalar.decode(t.h, t.y, t.sigma2);
    const DecodeResult r_dfs = sd_dfs.decode(t.h, t.y, t.sigma2);
    const DecodeResult r_bfs = sd_bfs.decode(t.h, t.y, t.sigma2);
    const DecodeResult r_par = sd_par.decode(t.h, t.y, t.sigma2);

    EXPECT_EQ(r_gemm.indices, r_ml.indices) << "GEMM/BestFS seed " << seed;
    EXPECT_EQ(r_scalar.indices, r_ml.indices) << "scalar seed " << seed;
    EXPECT_EQ(r_dfs.indices, r_ml.indices) << "DFS seed " << seed;
    EXPECT_EQ(r_bfs.indices, r_ml.indices) << "BFS seed " << seed;
    EXPECT_EQ(r_par.indices, r_ml.indices) << "MultiPE seed " << seed;

    // The achieved metrics must agree with ML's to float tolerance.
    EXPECT_NEAR(r_gemm.metric, r_ml.metric, 1e-2 * (1 + r_ml.metric));
    EXPECT_NEAR(r_dfs.metric, r_ml.metric, 1e-2 * (1 + r_ml.metric));
  }
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<int, Modulation, double>>& info) {
  const int m = std::get<0>(info.param);
  const Modulation mod = std::get<1>(info.param);
  const double snr = std::get<2>(info.param);
  std::string name = "M" + std::to_string(m) + "_";
  name += std::string(modulation_name(mod)) == "BPSK"
              ? "BPSK"
              : std::to_string(Constellation::get(mod).order()) + "QAM";
  name += "_SNR" + std::to_string(static_cast<int>(snr));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SdVsMl,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(Modulation::kBpsk, Modulation::kQam4,
                                         Modulation::kQam16),
                       ::testing::Values(2.0, 8.0, 16.0)),
    case_name);

TEST(SdEquivalence, SortedQrDoesNotChangeTheSolution) {
  // SQRD permutes detection order; the returned (antenna-ordered) vector
  // must still be the ML solution.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MlDetector ml(c);
  SdOptions opts;
  opts.sorted_qr = true;
  SdGemmDetector sd(c, opts);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t = make_trial({5, Modulation::kQam4, 6.0, seed});
    EXPECT_EQ(sd.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(SdEquivalence, NoiseScaledRadiusStillExact) {
  // A finite initial radius (with enlarge-and-retry) must not change the
  // solution, only the work.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  MlDetector ml(c);
  SdOptions opts;
  opts.radius_policy = RadiusPolicy::kNoiseScaled;
  opts.radius_alpha = 0.5;  // deliberately tight to force retries
  SdGemmDetector sd(c, opts);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t = make_trial({4, Modulation::kQam4, 8.0, seed});
    EXPECT_EQ(sd.decode(t.h, t.y, t.sigma2).indices,
              ml.decode(t.h, t.y, t.sigma2).indices)
        << "seed " << seed;
  }
}

TEST(SdEquivalence, LargerSystemsGemmVsDfsAgree) {
  // ML is infeasible at 10x10, but the two exact decoders must still agree
  // with each other (same traversal by construction).
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector sd_gemm(c);
  SdDfsDetector sd_dfs(c);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trial t = make_trial({10, Modulation::kQam4, 8.0, seed});
    const DecodeResult a = sd_gemm.decode(t.h, t.y, t.sigma2);
    const DecodeResult b = sd_dfs.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(a.indices, b.indices) << "seed " << seed;
    EXPECT_NEAR(a.metric, b.metric, 1e-2 * (1 + a.metric));
  }
}

TEST(SdEquivalence, DecodedMetricMatchesResidual) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  SdGemmDetector sd(c);
  const Trial t = make_trial({6, Modulation::kQam16, 10.0, 3});
  const DecodeResult r = sd.decode(t.h, t.y, t.sigma2);
  EXPECT_NEAR(r.metric, residual_metric(t.h, t.y, r.symbols),
              1e-2 * (1 + r.metric));
}

}  // namespace
}  // namespace sd
