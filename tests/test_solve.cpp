#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

CMat random_upper(index_t m, std::uint64_t seed) {
  CMat r = testing::random_cmat(m, m, seed);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < i; ++j) r(i, j) = cplx{0, 0};
    r(i, i) += cplx{3, 0};  // keep it well conditioned
  }
  return r;
}

CMat random_hpd(index_t m, std::uint64_t seed) {
  // A = B^H B + m*I is Hermitian positive definite.
  const CMat b = testing::random_cmat(m, m, seed);
  CMat a(m, m);
  gemm_naive(Op::kConjTrans, cplx{1, 0}, b, b, cplx{0, 0}, a);
  for (index_t i = 0; i < m; ++i) a(i, i) += cplx{static_cast<real>(m), 0};
  return a;
}

TEST(BackSubstitute, SolvesUpperTriangularSystem) {
  const index_t m = 6;
  const CMat r = random_upper(m, 1);
  const CVec x_true = testing::random_cvec(m, 2);
  CVec b(static_cast<usize>(m), cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, r, x_true, cplx{0, 0}, b);
  const CVec x = back_substitute(r, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-4);
}

TEST(BackSubstitute, ThrowsOnZeroPivot) {
  CMat r = random_upper(3, 3);
  r(1, 1) = cplx{0, 0};
  const CVec b = testing::random_cvec(3, 4);
  EXPECT_THROW((void)back_substitute(r, b), invalid_argument_error);
}

TEST(ForwardSubstitute, SolvesLowerTriangularSystem) {
  const index_t m = 5;
  CMat l = hermitian(random_upper(m, 5));
  const CVec x_true = testing::random_cvec(m, 6);
  CVec b(static_cast<usize>(m), cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, l, x_true, cplx{0, 0}, b);
  const CVec x = forward_substitute(l, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-4);
}

TEST(Cholesky, FactorReconstructsMatrix) {
  const index_t m = 7;
  const CMat a = random_hpd(m, 7);
  const CMat l = cholesky(a);
  const CMat lh = hermitian(l);
  CMat llh(m, m);
  gemm_naive(Op::kNone, cplx{1, 0}, l, lh, cplx{0, 0}, llh);
  EXPECT_LT(max_abs_diff(llh, a), 1e-3);
}

TEST(Cholesky, SolveMatchesDirectSolution) {
  const index_t m = 5;
  const CMat a = random_hpd(m, 9);
  const CVec x_true = testing::random_cvec(m, 10);
  CVec b(static_cast<usize>(m), cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, a, x_true, cplx{0, 0}, b);
  const CMat l = cholesky(a);
  const CVec x = cholesky_solve(l, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-3);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  CMat a = CMat::identity(2);
  a(1, 1) = cplx{-1, 0};
  EXPECT_THROW((void)cholesky(a), invalid_argument_error);
}

TEST(Lu, SolveRecoversKnownSolution) {
  const index_t m = 8;
  const CMat a = testing::random_cmat(m, m, 11);
  const CVec x_true = testing::random_cvec(m, 12);
  CVec b(static_cast<usize>(m), cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, a, x_true, cplx{0, 0}, b);
  const Lu f = lu_decompose(a);
  const CVec x = lu_solve(f, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-3);
}

TEST(Lu, SingularMatrixThrows) {
  CMat a(2, 2);  // all zeros
  EXPECT_THROW((void)lu_decompose(a), invalid_argument_error);
}

TEST(Inverse, TimesOriginalIsIdentity) {
  const index_t m = 6;
  const CMat a = testing::random_cmat(m, m, 13);
  const CMat a_inv = inverse(a);
  CMat prod(m, m);
  gemm_naive(Op::kNone, cplx{1, 0}, a, a_inv, cplx{0, 0}, prod);
  EXPECT_LT(max_abs_diff(prod, CMat::identity(m)), 1e-3);
}

TEST(Gram, IsHermitianPsd) {
  const CMat h = testing::random_cmat(8, 5, 14);
  const CMat g = gram(h);
  ASSERT_EQ(g.rows(), 5);
  ASSERT_EQ(g.cols(), 5);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_GE(g(i, i).real(), 0.0f);
    for (index_t j = 0; j < 5; ++j) {
      EXPECT_LT(std::abs(g(i, j) - std::conj(g(j, i))), 1e-4f);
    }
  }
}

TEST(ZfEqualizer, InvertsChannelExactly) {
  // W H = I for full-column-rank H: the ZF detector removes all
  // inter-stream interference in the noiseless case.
  const CMat h = testing::random_cmat(10, 6, 15);
  const CMat w = zf_equalizer(h);
  CMat wh(6, 6);
  gemm_naive(Op::kNone, cplx{1, 0}, w, h, cplx{0, 0}, wh);
  EXPECT_LT(max_abs_diff(wh, CMat::identity(6)), 1e-3);
}

TEST(MmseEqualizer, ApproachesZfAsNoiseVanishes) {
  const CMat h = testing::random_cmat(8, 5, 16);
  const CMat w_zf = zf_equalizer(h);
  const CMat w_mmse = mmse_equalizer(h, real{1e-6});
  EXPECT_LT(max_abs_diff(w_zf, w_mmse), 1e-3);
}

TEST(MmseEqualizer, ShrinksGainWithNoise) {
  // With large noise the MMSE solution is biased toward zero: Frobenius
  // norm strictly below the ZF equalizer's.
  const CMat h = testing::random_cmat(8, 5, 17);
  const CMat w_zf = zf_equalizer(h);
  const CMat w_mmse = mmse_equalizer(h, real{10});
  EXPECT_LT(frobenius(w_mmse), frobenius(w_zf));
}

TEST(MmseEqualizer, RejectsNegativeVariance) {
  const CMat h = testing::random_cmat(4, 3, 18);
  EXPECT_THROW((void)mmse_equalizer(h, real{-1}), invalid_argument_error);
}

}  // namespace
}  // namespace sd
