// The FPGA pipeline simulator must (a) decode exactly like the CPU Best-FS
// decoder — the paper mimics the CPU execution profile in hardware — and
// (b) produce cycle accounting consistent with the design points' structure
// (optimized beats baseline, prefetch hides HBM latency, etc.).
#include "fpga/pipeline.hpp"

#include <gtest/gtest.h>

#include "decode/sd_gemm.hpp"
#include "fpga/fpga_detector.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

TEST(FpgaPipeline, DecodesIdenticallyToCpuBestFs) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector cpu(c);
  FpgaPipeline fpga(FpgaConfig::optimized_design(8, 8, Modulation::kQam4));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trial t = make_trial(8, Modulation::kQam4, 8.0, seed);
    const Preprocessed pre = preprocess(t.h, t.y, false);
    DecodeResult cpu_result;
    cpu.search(pre, t.sigma2, cpu_result);
    const FpgaRunReport report = fpga.run(pre, c, t.sigma2);
    EXPECT_EQ(report.result.indices, cpu_result.indices) << "seed " << seed;
    EXPECT_EQ(report.result.stats.nodes_expanded,
              cpu_result.stats.nodes_expanded);
    EXPECT_EQ(report.result.stats.leaves_reached,
              cpu_result.stats.leaves_reached);
  }
}

TEST(FpgaPipeline, BaselineDecodesIdenticallyToo) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  SdGemmDetector cpu(c);
  FpgaPipeline fpga(FpgaConfig::baseline(5, 5, Modulation::kQam16));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Trial t = make_trial(5, Modulation::kQam16, 8.0, seed);
    const Preprocessed pre = preprocess(t.h, t.y, false);
    DecodeResult cpu_result;
    cpu.search(pre, t.sigma2, cpu_result);
    const FpgaRunReport report = fpga.run(pre, c, t.sigma2);
    EXPECT_EQ(report.result.indices, cpu_result.indices) << "seed " << seed;
  }
}

TEST(FpgaPipeline, OptimizedFasterThanBaselineOnSameWork) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaPipeline opt(FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  FpgaPipeline base(FpgaConfig::baseline(10, 10, Modulation::kQam4));
  double opt_time = 0, base_time = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trial t = make_trial(10, Modulation::kQam4, 8.0, seed);
    const Preprocessed pre = preprocess(t.h, t.y, false);
    opt_time += opt.run(pre, c, t.sigma2).total_seconds;
    base_time += base.run(pre, c, t.sigma2).total_seconds;
  }
  EXPECT_LT(opt_time * 2.0, base_time);  // at least 2x; paper shows ~3-5x
}

TEST(FpgaPipeline, CycleBreakdownSumsToTotal) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaPipeline fpga(FpgaConfig::optimized_design(6, 6, Modulation::kQam4));
  const Trial t = make_trial(6, Modulation::kQam4, 8.0, 1);
  const Preprocessed pre = preprocess(t.h, t.y, false);
  const FpgaRunReport r = fpga.run(pre, c, t.sigma2);
  const auto& cyc = r.cycles;
  EXPECT_EQ(cyc.total(), cyc.branch + cyc.prefetch_exposed + cyc.gemm +
                             cyc.norm + cyc.sort + cyc.mst + cyc.radius);
  EXPECT_GT(cyc.gemm, 0u);
  EXPECT_GT(cyc.branch, 0u);
  EXPECT_GT(cyc.sort, 0u);
  EXPECT_NEAR(r.compute_seconds,
              static_cast<double>(cyc.total()) / (300e6), 1e-12);
  EXPECT_GT(r.total_seconds, r.compute_seconds);  // + PCIe staging
}

TEST(FpgaPipeline, PrefetchHidesMemoryInOptimizedDesign) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaPipeline opt(FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  FpgaPipeline base(FpgaConfig::baseline(10, 10, Modulation::kQam4));
  const Trial t = make_trial(10, Modulation::kQam4, 8.0, 2);
  const Preprocessed pre = preprocess(t.h, t.y, false);
  const FpgaRunReport r_opt = opt.run(pre, c, t.sigma2);
  const FpgaRunReport r_base = base.run(pre, c, t.sigma2);
  // Same traversal -> same fetch demand, but the optimized design exposes a
  // small fraction of it.
  EXPECT_LT(r_opt.cycles.prefetch_exposed * 2,
            r_base.cycles.prefetch_exposed);
}

TEST(FpgaPipeline, TransferTimeIsSmallFraction) {
  // The paper: PCIe staging is under 3% of overall execution (measured on
  // their ms-scale decodes). Reproduce that on a comparably heavy decode
  // (15x15 at low SNR); on light decodes the fixed DMA latency may be a
  // somewhat larger share, but never dominant.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaPipeline heavy(FpgaConfig::optimized_design(15, 15, Modulation::kQam4));
  const Trial t15 = make_trial(15, Modulation::kQam4, 4.0, 3);
  const Preprocessed pre15 = preprocess(t15.h, t15.y, false);
  const FpgaRunReport r15 = heavy.run(pre15, c, t15.sigma2);
  EXPECT_LT(r15.transfer_seconds, 0.03 * r15.total_seconds);

  FpgaPipeline light(FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  const Trial t10 = make_trial(10, Modulation::kQam4, 4.0, 3);
  const Preprocessed pre10 = preprocess(t10.h, t10.y, false);
  const FpgaRunReport r10 = light.run(pre10, c, t10.sigma2);
  EXPECT_LT(r10.transfer_seconds, 0.25 * r10.total_seconds);
}

TEST(FpgaPipeline, MstPeakTrackedAndNoOverflowAtModerateSize) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaPipeline fpga(FpgaConfig::optimized_design(8, 8, Modulation::kQam4));
  const Trial t = make_trial(8, Modulation::kQam4, 8.0, 4);
  const Preprocessed pre = preprocess(t.h, t.y, false);
  const FpgaRunReport r = fpga.run(pre, c, t.sigma2);
  EXPECT_GT(r.mst_peak_nodes, 0u);
  EXPECT_FALSE(r.mst_overflow);
}

TEST(FpgaPipeline, TinyMstCapacityReportsOverflow) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaConfig cfg = FpgaConfig::optimized_design(8, 8, Modulation::kQam4);
  cfg.mst_capacity_per_level = 2;
  FpgaPipeline fpga(cfg);
  const Trial t = make_trial(8, Modulation::kQam4, 4.0, 5);
  const Preprocessed pre = preprocess(t.h, t.y, false);
  EXPECT_TRUE(fpga.run(pre, c, t.sigma2).mst_overflow);
}

TEST(FpgaDetector, DecodeWrapsPipelineWithSimulatedTime) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaDetector det(c, FpgaConfig::optimized_design(8, 8, Modulation::kQam4));
  SdGemmDetector cpu(c);
  const Trial t = make_trial(8, Modulation::kQam4, 8.0, 6);
  const DecodeResult r = det.decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(r.indices, cpu.decode(t.h, t.y, t.sigma2).indices);
  EXPECT_NEAR(r.stats.search_seconds, det.last_report().total_seconds, 1e-15);
  EXPECT_EQ(det.name(), "FPGA-optimized");
}

TEST(FpgaDetector, RejectsModulationMismatch) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  EXPECT_THROW(
      FpgaDetector(c, FpgaConfig::optimized_design(8, 8, Modulation::kQam16)),
      invalid_argument_error);
}

TEST(FpgaPipeline, SimulatedTimeScalesWithWork) {
  // Low SNR -> more nodes -> more cycles. Averaged over seeds.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  FpgaPipeline fpga(FpgaConfig::optimized_design(10, 10, Modulation::kQam4));
  auto mean_time = [&](double snr) {
    double acc = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Trial t = make_trial(10, Modulation::kQam4, snr, seed);
      const Preprocessed pre = preprocess(t.h, t.y, false);
      acc += fpga.run(pre, c, t.sigma2).total_seconds;
    }
    return acc / 10;
  };
  EXPECT_LT(mean_time(16.0), mean_time(4.0));
}

}  // namespace
}  // namespace sd
