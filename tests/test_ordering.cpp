#include "linalg/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

TEST(SortedQr, ReconstructsPermutedChannel) {
  const index_t n = 8, m = 6;
  const CMat h = testing::random_cmat(n, m, 1);
  const SortedQr sq = qr_sorted(h);

  // Build H * P from the permutation and compare with Q * R.
  CMat hp(n, m);
  for (index_t k = 0; k < m; ++k) {
    const index_t src = sq.perm[static_cast<usize>(k)];
    for (index_t i = 0; i < n; ++i) hp(i, k) = h(i, src);
  }
  CMat qr(n, m);
  gemm_naive(Op::kNone, cplx{1, 0}, sq.q, sq.r, cplx{0, 0}, qr);
  EXPECT_LT(max_abs_diff(qr, hp), 5e-5);
}

TEST(SortedQr, PermIsAPermutation) {
  const CMat h = testing::random_cmat(10, 10, 2);
  const SortedQr sq = qr_sorted(h);
  std::vector<index_t> sorted = sq.perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t k = 0; k < 10; ++k) {
    EXPECT_EQ(sorted[static_cast<usize>(k)], k);
  }
}

TEST(SortedQr, QIsOrthonormal) {
  const CMat h = testing::random_cmat(12, 8, 3);
  const SortedQr sq = qr_sorted(h);
  CMat g(8, 8);
  gemm_naive(Op::kConjTrans, cplx{1, 0}, sq.q, sq.q, cplx{0, 0}, g);
  EXPECT_LT(max_abs_diff(g, CMat::identity(8)), 5e-5);
}

TEST(SortedQr, FirstPivotIsMinNormColumn) {
  const index_t n = 6, m = 4;
  CMat h = testing::random_cmat(n, m, 4);
  // Make column 2 tiny so the SQRD min-norm rule must pick it first.
  for (index_t i = 0; i < n; ++i) h(i, 2) *= real{0.01};
  const SortedQr sq = qr_sorted(h);
  EXPECT_EQ(sq.perm[0], 2);
}

TEST(SortedQr, DiagonalRealNonNegative) {
  const CMat h = testing::random_cmat(9, 7, 5);
  const SortedQr sq = qr_sorted(h);
  for (index_t i = 0; i < 7; ++i) {
    EXPECT_GT(sq.r(i, i).real(), 0.0f);
    EXPECT_EQ(sq.r(i, i).imag(), 0.0f);
  }
}

TEST(Unpermute, InvertsPermutation) {
  const std::vector<index_t> perm{2, 0, 1};
  const CVec layered{cplx{10, 0}, cplx{20, 0}, cplx{30, 0}};
  const CVec original = unpermute(perm, layered);
  // layered[k] belongs to antenna perm[k].
  EXPECT_EQ(original[2], (cplx{10, 0}));
  EXPECT_EQ(original[0], (cplx{20, 0}));
  EXPECT_EQ(original[1], (cplx{30, 0}));
}

TEST(Unpermute, LengthMismatchThrows) {
  EXPECT_THROW((void)unpermute({0, 1}, CVec(3)), invalid_argument_error);
}

}  // namespace
}  // namespace sd
