// Work-counter semantics of the sphere decoders: node accounting identities,
// traversal equality between Best-FS (GEMM) and SE-DFS, budget handling, and
// the complexity trends the paper's evaluation is built on.
#include <gtest/gtest.h>

#include "decode/ml.hpp"
#include "decode/sd_dfs.hpp"
#include "decode/sd_gemm.hpp"
#include "decode/sd_gemm_bfs.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

TEST(SdStats, GeneratedEqualsExpandedTimesOrder) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector sd(c);
  const Trial t = make_trial(8, Modulation::kQam4, 8.0, 1);
  const DecodeResult r = sd.decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(r.stats.nodes_generated, r.stats.nodes_expanded * 4);
  EXPECT_EQ(r.stats.gemm_calls, r.stats.nodes_expanded);
  EXPECT_GT(r.stats.flops, 0u);
}

TEST(SdStats, BestFsAndDfsVisitIdenticalNodeCounts) {
  // Sorted children + LIFO pop == depth-first best-child descent, so the
  // two implementations must expand exactly the same nodes.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector best_fs(c);
  SdDfsDetector dfs(c);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trial t = make_trial(8, Modulation::kQam4, 6.0, seed);
    const DecodeResult a = best_fs.decode(t.h, t.y, t.sigma2);
    const DecodeResult b = dfs.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded) << "seed " << seed;
    EXPECT_EQ(a.stats.nodes_generated, b.stats.nodes_generated);
    EXPECT_EQ(a.stats.leaves_reached, b.stats.leaves_reached);
    EXPECT_EQ(a.stats.radius_updates, b.stats.radius_updates);
  }
}

TEST(SdStats, GemmAndScalarEvaluationVisitIdenticalNodes) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  SdGemmDetector gemm_eval(c);
  SdOptions scalar_opts;
  scalar_opts.gemm_eval = false;
  SdGemmDetector scalar_eval(c, scalar_opts);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Trial t = make_trial(5, Modulation::kQam16, 8.0, seed);
    const DecodeResult a = gemm_eval.decode(t.h, t.y, t.sigma2);
    const DecodeResult b = scalar_eval.decode(t.h, t.y, t.sigma2);
    EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
    EXPECT_EQ(a.indices, b.indices);
    // Only the GEMM path issues GEMMs.
    EXPECT_GT(a.stats.gemm_calls, 0u);
    EXPECT_EQ(b.stats.gemm_calls, 0u);
  }
}

TEST(SdStats, PruningBeatsExhaustiveSearch) {
  // The whole point of Eq. 3: far fewer leaves than |Omega|^M are touched.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector sd(c);
  const index_t m = 10;
  const Trial t = make_trial(m, Modulation::kQam4, 12.0, 3);
  const DecodeResult r = sd.decode(t.h, t.y, t.sigma2);
  const double exhaustive = std::pow(4.0, m);
  EXPECT_LT(static_cast<double>(r.stats.nodes_generated), 0.01 * exhaustive);
}

TEST(SdStats, WorkDecreasesWithSnr) {
  // Less noise -> received point closer to a lattice point -> tighter first
  // radius -> fewer expansions. Averaged over seeds to avoid flakiness.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector sd(c);
  auto mean_nodes = [&](double snr) {
    double acc = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const Trial t = make_trial(10, Modulation::kQam4, snr, seed);
      acc += static_cast<double>(
          sd.decode(t.h, t.y, t.sigma2).stats.nodes_expanded);
    }
    return acc / 20;
  };
  const double low = mean_nodes(4.0);
  const double high = mean_nodes(16.0);
  EXPECT_LT(high, low);
}

TEST(SdStats, BfsExploresFarMoreThanBestFs) {
  // §IV-F: Best-FS prunes the search space to a small fraction of what the
  // level-synchronous BFS touches.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector best_fs(c);
  SdGemmBfsDetector bfs(c);
  double bfs_nodes = 0, best_nodes = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trial t = make_trial(8, Modulation::kQam4, 8.0, seed);
    best_nodes += static_cast<double>(
        best_fs.decode(t.h, t.y, t.sigma2).stats.nodes_generated);
    bfs_nodes += static_cast<double>(
        bfs.decode(t.h, t.y, t.sigma2).stats.nodes_generated);
  }
  EXPECT_GT(bfs_nodes, 3.0 * best_nodes);
}

TEST(SdStats, BfsIssuesOneGemmPerLevel) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmBfsDetector bfs(c);
  const Trial t = make_trial(6, Modulation::kQam4, 14.0, 2);
  const DecodeResult r = bfs.decode(t.h, t.y, t.sigma2);
  // gemm_calls is a multiple of the tree depth (retries add full passes).
  EXPECT_GE(r.stats.gemm_calls, 6u);
  EXPECT_EQ(r.stats.gemm_calls % 6, 0u);
}

TEST(SdStats, NodeBudgetStopsSearchAndStillAnswers) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  SdOptions opts;
  opts.max_nodes = 3;
  SdGemmDetector sd(c, opts);
  const Trial t = make_trial(8, Modulation::kQam16, 4.0, 1);
  const DecodeResult r = sd.decode(t.h, t.y, t.sigma2);
  EXPECT_TRUE(r.stats.node_budget_hit);
  EXPECT_EQ(r.indices.size(), 8u);
  EXPECT_TRUE(std::isfinite(r.metric));
  // The Babai fallback's metric must equal the residual of its answer.
  EXPECT_NEAR(r.metric, residual_metric(t.h, t.y, r.symbols),
              1e-2 * (1 + r.metric));
}

TEST(SdStats, TightRadiusForcesRetryButCountsAccumulate) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdOptions tight;
  tight.radius_policy = RadiusPolicy::kNoiseScaled;
  tight.radius_alpha = 0.01;
  SdGemmDetector sd_tight(c, tight);
  SdGemmDetector sd_inf(c);
  const Trial t = make_trial(6, Modulation::kQam4, 10.0, 4);
  const DecodeResult rt = sd_tight.decode(t.h, t.y, t.sigma2);
  const DecodeResult ri = sd_inf.decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(rt.indices, ri.indices);
}

TEST(SdStats, DeterministicAcrossRepeatedDecodes) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector sd(c);
  const Trial t = make_trial(8, Modulation::kQam4, 8.0, 9);
  const DecodeResult a = sd.decode(t.h, t.y, t.sigma2);
  const DecodeResult b = sd.decode(t.h, t.y, t.sigma2);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
  EXPECT_EQ(a.stats.flops, b.stats.flops);
}

TEST(SdStats, SixteenQamGeneratesMoreWorkThanFourQam) {
  // §IV-E: modulation scaling dominates antenna scaling.
  const Constellation& c4 = Constellation::get(Modulation::kQam4);
  const Constellation& c16 = Constellation::get(Modulation::kQam16);
  SdGemmDetector sd4(c4);
  SdGemmDetector sd16(c16);
  double w4 = 0, w16 = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Trial t4 = make_trial(6, Modulation::kQam4, 8.0, seed);
    const Trial t16 = make_trial(6, Modulation::kQam16, 8.0, seed);
    w4 += static_cast<double>(sd4.decode(t4.h, t4.y, t4.sigma2).stats.flops);
    w16 += static_cast<double>(sd16.decode(t16.h, t16.y, t16.sigma2).stats.flops);
  }
  EXPECT_GT(w16, 2.0 * w4);
}

}  // namespace
}  // namespace sd
