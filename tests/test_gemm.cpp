#include "linalg/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "common/error.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

// Bitwise equality, not tolerance: the dispatch contract is that which
// kernel runs must never change the bits of the result.
void expect_bitwise_equal(const CMat& a, const CMat& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c), b(r, c)) << "(" << r << "," << c << ")";
    }
  }
}

TEST(GemmNaive, MatchesHandComputed2x2) {
  CMat a(2, 2, {cplx{1, 0}, cplx{0, 1}, cplx{2, 0}, cplx{0, 0}});
  CMat b(2, 2, {cplx{1, 0}, cplx{1, 0}, cplx{0, 0}, cplx{0, 2}});
  CMat c(2, 2);
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c);
  EXPECT_EQ(c(0, 0), (cplx{1, 0}));   // 1*1 + i*0
  EXPECT_EQ(c(0, 1), (cplx{-1, 0}));  // 1*1 + i*2i = 1 - 2
  EXPECT_EQ(c(1, 0), (cplx{2, 0}));
  EXPECT_EQ(c(1, 1), (cplx{2, 0}));
}

TEST(GemmNaive, ConjTransposeMatchesExplicitHermitian) {
  const CMat a = testing::random_cmat(5, 3, 1);
  const CMat b = testing::random_cmat(5, 4, 2);
  CMat c1(3, 4), c2(3, 4);
  gemm_naive(Op::kConjTrans, cplx{1, 0}, a, b, cplx{0, 0}, c1);
  const CMat ah = hermitian(a);
  gemm_naive(Op::kNone, cplx{1, 0}, ah, b, cplx{0, 0}, c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-5);
}

TEST(GemmNaive, AlphaBetaSemantics) {
  const CMat a = testing::random_cmat(3, 3, 3);
  const CMat b = testing::random_cmat(3, 3, 4);
  CMat c = testing::random_cmat(3, 3, 5);
  const CMat c0 = c;
  CMat ab(3, 3);
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, ab);
  gemm_naive(Op::kNone, cplx{2, 0}, a, b, cplx{0.5, 0}, c);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      const cplx expected = cplx{2, 0} * ab(i, j) + cplx{0.5, 0} * c0(i, j);
      EXPECT_LT(std::abs(c(i, j) - expected), 1e-4f);
    }
  }
}

TEST(GemmNaive, ShapeMismatchThrows) {
  CMat a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c),
               invalid_argument_error);
}

/// Property sweep: the blocked kernel must match the naive oracle on a grid
/// of shapes including ones that exercise partial blocks and leftover lanes.
class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const CMat a = testing::random_cmat(m, k, static_cast<std::uint64_t>(m * 31 + n * 7 + k));
  const CMat b = testing::random_cmat(k, n, static_cast<std::uint64_t>(m + n + k * 13));
  CMat c_ref(m, n), c_opt(m, n);
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_ref);
  gemm(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_opt);
  EXPECT_LT(max_abs_diff(c_ref, c_opt), 1e-3 * k)
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(GemmShapes, BlockedConjTransMatchesNaive) {
  const auto [m, n, k] = GetParam();
  // A stored as (k x m); op(A) = A^H is (m x k).
  const CMat a = testing::random_cmat(k, m, static_cast<std::uint64_t>(m * 17 + n + k));
  const CMat b = testing::random_cmat(k, n, static_cast<std::uint64_t>(m + n * 5 + k));
  CMat c_ref(m, n), c_opt(m, n);
  gemm_naive(Op::kConjTrans, cplx{1, 0}, a, b, cplx{0, 0}, c_ref);
  gemm(Op::kConjTrans, cplx{1, 0}, a, b, cplx{0, 0}, c_opt);
  EXPECT_LT(max_abs_diff(c_ref, c_opt), 1e-3 * k);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 4, 10},
                      std::tuple{2, 2, 2}, std::tuple{3, 5, 7},
                      std::tuple{16, 16, 16}, std::tuple{1, 16, 20},
                      std::tuple{65, 3, 129}, std::tuple{64, 128, 128},
                      std::tuple{67, 130, 131}, std::tuple{5, 1, 200}));

TEST(Gemm, BetaZeroOverwritesNanContents) {
  // BLAS semantics: beta == 0 means C is OUTPUT-ONLY. The old kernels
  // computed `alpha*acc + beta*c` / `v *= beta`, which propagates NaN/Inf
  // from stale C contents — the classic beta-zero bug. The decoders hand
  // freshly reused scratch matrices to gemm with beta = 0, so stale bits
  // must never leak into the product.
  // Big enough for the packed path (m*n*k > 4096) but within one K panel
  // (k <= kGemmKc), so the naive oracle is bitwise comparable to the packed
  // kernels.
  const index_t m = 6, n = 70, k = 120;
  const CMat a = testing::random_cmat(m, k, 91);
  const CMat b = testing::random_cmat(k, n, 92);
  const real nan = std::numeric_limits<real>::quiet_NaN();
  const real inf = std::numeric_limits<real>::infinity();

  CMat expected(m, n);
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, expected);

  const auto poisoned = [&] {
    CMat c(m, n);
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) {
        c(i, j) = (i + j) % 2 == 0 ? cplx{nan, nan} : cplx{inf, -inf};
      }
    }
    return c;
  };

  CMat c_naive = poisoned();
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_naive);
  expect_bitwise_equal(c_naive, expected);

  CMat c_packed = poisoned();
  gemm_packed_scalar(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_packed);
  expect_bitwise_equal(c_packed, expected);

  CMat c_dispatch = poisoned();
  gemm(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_dispatch);
  expect_bitwise_equal(c_dispatch, expected);

  if (gemm_soa_available()) {
    CMat c_soa = poisoned();
    gemm_packed_soa(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_soa);
    expect_bitwise_equal(c_soa, expected);
  }

  // gemv, both op modes.
  const CVec x = testing::random_cvec(static_cast<usize>(k), 93);
  CVec y(static_cast<usize>(m), cplx{nan, nan});
  CMat xmat(k, 1);
  for (index_t i = 0; i < k; ++i) xmat(i, 0) = x[static_cast<usize>(i)];
  CMat yref(m, 1);
  gemm_naive(Op::kNone, cplx{1, 0}, a, xmat, cplx{0, 0}, yref);
  gemv(Op::kNone, cplx{1, 0}, a, x, cplx{0, 0}, y);
  for (index_t i = 0; i < m; ++i) {
    EXPECT_EQ(y[static_cast<usize>(i)], yref(i, 0));
  }
  const CVec x2 = testing::random_cvec(static_cast<usize>(m), 94);
  CVec y2(static_cast<usize>(k), cplx{inf, nan});
  gemv(Op::kConjTrans, cplx{1, 0}, a, x2, cplx{0, 0}, y2);
  for (const cplx& v : y2) {
    EXPECT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  }
}

TEST(Gemm, AccumulatesWithBetaOne) {
  const CMat a = testing::random_cmat(4, 4, 21);
  const CMat b = testing::random_cmat(4, 4, 22);
  CMat c_ref = testing::random_cmat(4, 4, 23);
  CMat c_opt = c_ref;
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{1, 0}, c_ref);
  gemm(Op::kNone, cplx{1, 0}, a, b, cplx{1, 0}, c_opt);
  EXPECT_LT(max_abs_diff(c_ref, c_opt), 1e-4);
}

TEST(Gemv, MatchesGemmWithSingleColumn) {
  const CMat a = testing::random_cmat(6, 4, 31);
  const CVec x = testing::random_cvec(4, 32);
  CVec y(6, cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, a, x, cplx{0, 0}, y);

  CMat xb(4, 1);
  for (index_t i = 0; i < 4; ++i) xb(i, 0) = x[static_cast<usize>(i)];
  CMat yb(6, 1);
  gemm_naive(Op::kNone, cplx{1, 0}, a, xb, cplx{0, 0}, yb);
  for (index_t i = 0; i < 6; ++i) {
    EXPECT_LT(std::abs(y[static_cast<usize>(i)] - yb(i, 0)), 1e-5f);
  }
}

TEST(Gemv, ConjTransMatchesHermitianGemv) {
  const CMat a = testing::random_cmat(6, 4, 41);
  const CVec x = testing::random_cvec(6, 42);
  CVec y1(4, cplx{0, 0}), y2(4, cplx{0, 0});
  gemv(Op::kConjTrans, cplx{1, 0}, a, x, cplx{0, 0}, y1);
  const CMat ah = hermitian(a);
  gemv(Op::kNone, cplx{1, 0}, ah, x, cplx{0, 0}, y2);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-5);
}

TEST(Gemv, LengthMismatchThrows) {
  const CMat a = testing::random_cmat(3, 2, 51);
  CVec x(3), y(3);
  EXPECT_THROW(gemv(Op::kNone, cplx{1, 0}, a, x, cplx{0, 0}, y),
               invalid_argument_error);
}

TEST(GemmFlops, CountsComplexMacs) {
  EXPECT_EQ(gemm_flops(1, 4, 10), 8ull * 40);
  EXPECT_EQ(gemm_flops(0, 4, 10), 0u);
}

// ---- dispatch determinism (regression for the k > kGemmKc fast-path leak)

TEST(GemmDispatch, NaiveAndPackedBitwiseIdenticalWithinOneKPanel) {
  // For k <= kGemmKc both kernels accumulate each output element over the
  // same ascending-k order, so they agree bitwise — the property the small-
  // product fast path relies on.
  const struct {
    index_t m, n, k;
  } shapes[] = {
      {1, 4, 10},          // sibling batch (Best-FS)
      {3, 5, 7},           // odd everything
      {4, 8, kGemmKc},     // exactly one full K panel
      {65, 129, 1},        // M/N panel boundaries, trivial K
  };
  for (const auto& s : shapes) {
    const CMat a = testing::random_cmat(s.m, s.k, 81);
    const CMat b = testing::random_cmat(s.k, s.n, 82);
    CMat c_naive = testing::random_cmat(s.m, s.n, 83);
    CMat c_packed = c_naive;
    gemm_naive(Op::kNone, cplx{0.7, -0.3}, a, b, cplx{0.2, 0.1}, c_naive);
    gemm_packed(Op::kNone, cplx{0.7, -0.3}, a, b, cplx{0.2, 0.1}, c_packed);
    expect_bitwise_equal(c_naive, c_packed);
  }
}

TEST(GemmDispatch, DeepKSmallProductTakesThePackedPath) {
  // Regression: 1x1x4096 has m*n*k <= 4096, so the old volume-only gate sent
  // it to gemm_naive — whose accumulation order differs from the packed
  // kernel's once k spans multiple K panels. The gate now also requires
  // k <= kGemmKc, so gemm() must agree bitwise with gemm_packed here.
  const struct {
    index_t m, n, k;
  } shapes[] = {
      {1, 1, 4096},             // the original offender
      {1, 31, kGemmKc + 1},     // just past one panel, volume under the gate
      {2, 2, 1000},             // multi-panel, small m*n
  };
  for (const auto& s : shapes) {
    const CMat a = testing::random_cmat(s.m, s.k, 84);
    const CMat b = testing::random_cmat(s.k, s.n, 85);
    CMat c_dispatch(s.m, s.n);
    CMat c_packed(s.m, s.n);
    gemm(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_dispatch);
    gemm_packed(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_packed);
    expect_bitwise_equal(c_dispatch, c_packed);
  }
}

TEST(GemmDispatch, FastPathShapesStillAgreeWithBothKernels) {
  // On fast-path shapes (small volume AND k within one panel) the dispatch
  // result must equal the naive kernel — and, by the one-panel identity,
  // the packed kernel too.
  const CMat a = testing::random_cmat(4, 16, 86);
  const CMat b = testing::random_cmat(16, 8, 87);
  CMat c_dispatch(4, 8), c_naive(4, 8), c_packed(4, 8);
  gemm(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_dispatch);
  gemm_naive(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_naive);
  gemm_packed(Op::kNone, cplx{1, 0}, a, b, cplx{0, 0}, c_packed);
  expect_bitwise_equal(c_dispatch, c_naive);
  expect_bitwise_equal(c_dispatch, c_packed);
}

}  // namespace
}  // namespace sd
