#include "mimo/estimation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/sphere_decoder.hpp"
#include "linalg/norms.hpp"
#include "mimo/scenario.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

TEST(Pilots, ColumnsAreOrthogonalWithNormL) {
  const CMat p = orthogonal_pilots(8, 4);
  for (index_t a = 0; a < 4; ++a) {
    for (index_t b = 0; b < 4; ++b) {
      cplx dot{0, 0};
      for (index_t l = 0; l < 8; ++l) dot += std::conj(p(l, a)) * p(l, b);
      if (a == b) {
        EXPECT_NEAR(dot.real(), 8.0f, 1e-3f);
        EXPECT_NEAR(dot.imag(), 0.0f, 1e-3f);
      } else {
        EXPECT_NEAR(std::abs(dot), 0.0f, 1e-3f);
      }
    }
  }
}

TEST(Pilots, UnitEnergySymbols) {
  const CMat p = orthogonal_pilots(6, 3);
  for (const cplx& v : p.flat()) {
    EXPECT_NEAR(norm2(v), 1.0f, 1e-5f);
  }
}

TEST(Pilots, RejectsTooFewSlots) {
  EXPECT_THROW((void)orthogonal_pilots(3, 4), invalid_argument_error);
}

TEST(Estimation, LsIsExactWithoutNoise) {
  const CMat h = testing::random_cmat(4, 3, 1);
  const CMat p = orthogonal_pilots(6, 3);
  GaussianSource rng(2);
  const CMat y = receive_pilots(h, p, 0.0, rng);
  const CMat h_ls = estimate_ls(p, y);
  EXPECT_LT(max_abs_diff(h_ls, h), 1e-4);
}

TEST(Estimation, LsMseMatchesTheory) {
  // Var of each LS entry = sigma2 / L.
  const index_t slots = 8;
  const double sigma2 = 0.5;
  const CMat p = orthogonal_pilots(slots, 4);
  GaussianSource rng(3);
  double acc = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const CMat h = testing::random_cmat(4, 4, static_cast<std::uint64_t>(t + 10));
    const CMat y = receive_pilots(h, p, sigma2, rng);
    acc += estimation_mse(h, estimate_ls(p, y));
  }
  EXPECT_NEAR(acc / trials, sigma2 / slots, 0.15 * sigma2 / slots);
}

TEST(Estimation, LmmseBeatsLsAtLowPilotSnr) {
  const index_t slots = 4;
  const double sigma2 = 4.0;  // very noisy pilots
  const CMat p = orthogonal_pilots(slots, 4);
  GaussianSource rng(4);
  double mse_ls = 0.0, mse_lmmse = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const CMat h = testing::random_cmat(4, 4, static_cast<std::uint64_t>(t + 50));
    const CMat y = receive_pilots(h, p, sigma2, rng);
    mse_ls += estimation_mse(h, estimate_ls(p, y));
    mse_lmmse += estimation_mse(h, estimate_lmmse(p, y, sigma2));
  }
  EXPECT_LT(mse_lmmse, mse_ls);
}

TEST(Estimation, LmmseConvergesToLsAtHighPilotSnr) {
  const CMat h = testing::random_cmat(3, 3, 7);
  const CMat p = orthogonal_pilots(6, 3);
  GaussianSource rng(8);
  const CMat y = receive_pilots(h, p, 1e-9, rng);
  EXPECT_LT(max_abs_diff(estimate_ls(p, y), estimate_lmmse(p, y, 1e-9)), 1e-5);
}

TEST(Estimation, SphereDecoderToleratesGoodEstimates) {
  // Detection with an estimated channel still recovers the payload when the
  // pilot SNR is decent — the end-to-end property a deployment cares about.
  ScenarioConfig sc;
  sc.num_tx = 4;
  sc.num_rx = 4;
  sc.modulation = Modulation::kQam4;
  sc.snr_db = 14.0;
  sc.seed = 11;
  Scenario scenario(sc);
  const SystemConfig sys{4, 4, Modulation::kQam4};
  auto det = make_detector(sys, DecoderSpec{});
  const CMat p = orthogonal_pilots(16, 4);
  GaussianSource rng(12);

  int exact = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const Trial trial = scenario.next();
    const CMat y_pilot = receive_pilots(trial.h, p, trial.sigma2, rng);
    const CMat h_est = estimate_lmmse(p, y_pilot, trial.sigma2);
    const DecodeResult r = det->decode(h_est, trial.y, trial.sigma2);
    if (r.indices == trial.tx.indices) ++exact;
  }
  EXPECT_GE(exact, trials * 8 / 10);
}

TEST(Estimation, MseShapeChecked) {
  const CMat a = testing::random_cmat(2, 2, 1);
  const CMat b = testing::random_cmat(3, 2, 2);
  EXPECT_THROW((void)estimation_mse(a, b), invalid_argument_error);
}

}  // namespace
}  // namespace sd
