#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

/// ||Q R - H||_max helper.
double reconstruction_error(const CMat& q, const CMat& r, const CMat& h) {
  CMat qr(h.rows(), h.cols());
  gemm_naive(Op::kNone, cplx{1, 0}, q, r, cplx{0, 0}, qr);
  return max_abs_diff(qr, h);
}

/// ||Q^H Q - I||_max helper.
double orthonormality_error(const CMat& q) {
  CMat g(q.cols(), q.cols());
  gemm_naive(Op::kConjTrans, cplx{1, 0}, q, q, cplx{0, 0}, g);
  double worst = 0.0;
  for (index_t i = 0; i < g.rows(); ++i) {
    for (index_t j = 0; j < g.cols(); ++j) {
      const cplx expected = (i == j) ? cplx{1, 0} : cplx{0, 0};
      worst = std::max(worst, static_cast<double>(std::abs(g(i, j) - expected)));
    }
  }
  return worst;
}

class QrShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QrShapes, HouseholderReconstructsH) {
  const auto [n, m] = GetParam();
  const CMat h = testing::random_cmat(n, m, static_cast<std::uint64_t>(n * 101 + m));
  const QrFactorization qr(h);
  EXPECT_LT(reconstruction_error(qr.thin_q(), qr.r(), h), 5e-5) << n << "x" << m;
}

TEST_P(QrShapes, HouseholderQIsOrthonormal) {
  const auto [n, m] = GetParam();
  const CMat h = testing::random_cmat(n, m, static_cast<std::uint64_t>(n * 13 + m * 7));
  const QrFactorization qr(h);
  EXPECT_LT(orthonormality_error(qr.thin_q()), 5e-5);
}

TEST_P(QrShapes, RIsUpperTriangularWithRealNonNegativeDiagonal) {
  const auto [n, m] = GetParam();
  const CMat h = testing::random_cmat(n, m, static_cast<std::uint64_t>(n + m * 23));
  const QrFactorization qr(h);
  const CMat& r = qr.r();
  for (index_t i = 0; i < r.rows(); ++i) {
    EXPECT_GE(r(i, i).real(), 0.0f);
    EXPECT_EQ(r(i, i).imag(), 0.0f);
    for (index_t j = 0; j < i; ++j) {
      EXPECT_EQ(r(i, j), (cplx{0, 0}));
    }
  }
}

TEST_P(QrShapes, ApplyQhMatchesExplicitQ) {
  const auto [n, m] = GetParam();
  const CMat h = testing::random_cmat(n, m, static_cast<std::uint64_t>(n * 3 + m * 77));
  const CVec y = testing::random_cvec(n, static_cast<std::uint64_t>(n + m));
  const QrFactorization qr(h);
  const CVec ybar = qr.apply_qh(y);
  ASSERT_EQ(ybar.size(), static_cast<usize>(m));

  const CMat q = qr.thin_q();
  CVec expected(static_cast<usize>(m), cplx{0, 0});
  gemv(Op::kConjTrans, cplx{1, 0}, q, y, cplx{0, 0}, expected);
  EXPECT_LT(max_abs_diff(ybar, expected), 1e-4);
}

TEST_P(QrShapes, MgsReconstructsH) {
  const auto [n, m] = GetParam();
  const CMat h = testing::random_cmat(n, m, static_cast<std::uint64_t>(n * 7 + m * 3));
  const QrPair qr = qr_mgs(h);
  EXPECT_LT(reconstruction_error(qr.q, qr.r, h), 5e-5);
  EXPECT_LT(orthonormality_error(qr.q), 5e-5);
}

TEST_P(QrShapes, HouseholderAndMgsAgreeOnR) {
  // Both produce R with real non-negative diagonal, and QR factorization
  // with that normalization is unique for full-rank H.
  const auto [n, m] = GetParam();
  const CMat h = testing::random_cmat(n, m, static_cast<std::uint64_t>(n * 9 + m * 31));
  const QrFactorization house(h);
  const QrPair mgs = qr_mgs(h);
  EXPECT_LT(max_abs_diff(house.r(), mgs.r), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, QrShapes,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{2, 2},
                                           std::tuple{4, 4}, std::tuple{6, 4},
                                           std::tuple{10, 10},
                                           std::tuple{16, 10},
                                           std::tuple{20, 20},
                                           std::tuple{32, 24}));

TEST(Qr, InvariantMetricUnderTransform) {
  // ||y - H s||^2 == ||ybar - R s||^2 (paper Eq. 4) for arbitrary s.
  const index_t n = 8, m = 6;
  const CMat h = testing::random_cmat(n, m, 555);
  const CVec y = testing::random_cvec(n, 556);
  const CVec s = testing::random_cvec(m, 557);

  CVec lhs(y.begin(), y.end());
  gemv(Op::kNone, cplx{-1, 0}, h, s, cplx{1, 0}, lhs);

  const QrFactorization qr(h);
  CVec rhs = qr.apply_qh(y);
  gemv(Op::kNone, cplx{-1, 0}, qr.r(), s, cplx{1, 0}, rhs);

  // ||y - Hs||^2 = ||Q^H(y - Hs)||^2 + (residual outside range(Q)); for the
  // *difference* of two candidates the residual term cancels, so here we
  // check the weaker but sufficient property: metric differences match.
  const CVec s2 = testing::random_cvec(m, 558);
  CVec lhs2(y.begin(), y.end());
  gemv(Op::kNone, cplx{-1, 0}, h, s2, cplx{1, 0}, lhs2);
  CVec rhs2 = qr.apply_qh(y);
  gemv(Op::kNone, cplx{-1, 0}, qr.r(), s2, cplx{1, 0}, rhs2);

  const double diff_full = norm2_sq(lhs) - norm2_sq(lhs2);
  const double diff_tri = norm2_sq(rhs) - norm2_sq(rhs2);
  EXPECT_NEAR(diff_full, diff_tri, 1e-3 * (1.0 + std::abs(diff_full)));
}

TEST(Qr, RejectsWideMatrix) {
  const CMat h = testing::random_cmat(3, 5, 1);
  EXPECT_THROW(QrFactorization{h}, invalid_argument_error);
  EXPECT_THROW((void)qr_mgs(h), invalid_argument_error);
}

TEST(Qr, RefactorReusesStorageBitIdentically) {
  // factor() recycling the internal working copy must produce exactly the
  // same factorization as a fresh object — the decoders' preprocess scratch
  // depends on it.
  QrFactorization reused;
  CVec ybar;
  CVec work;
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    // Vary the shape to exercise reshrink/regrow of the internal buffers.
    const index_t n = 4 + static_cast<index_t>(trial % 3) * 2;
    const index_t m = n - static_cast<index_t>(trial % 2);
    const CMat h = testing::random_cmat(n, m, 4100 + trial);
    const CVec y = testing::random_cvec(n, 4200 + trial);
    const QrFactorization fresh(h);
    reused.factor(h);
    ASSERT_EQ(reused.r(), fresh.r());
    reused.apply_qh_into(y, ybar, work);
    ASSERT_EQ(ybar, fresh.apply_qh(y));
  }
}

TEST(Qr, ApplyQhChecksLength) {
  const CMat h = testing::random_cmat(5, 3, 2);
  const QrFactorization qr(h);
  const CVec y = testing::random_cvec(4, 3);
  EXPECT_THROW((void)qr.apply_qh(y), invalid_argument_error);
}

}  // namespace
}  // namespace sd
