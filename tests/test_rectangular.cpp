// Rectangular (N_r > N_t) geometry coverage across the detector zoo (PR 10).
//
// Massive-MIMO traffic is tall by construction, and a detector that silently
// truncates rows would pass square tests while corrupting every tall frame.
// Every strategy must either decode tall channels correctly (receive
// diversity makes moderate-SNR recovery exact) or reject the geometry with a
// clean error at construction — never produce wrong dimensions or wrong bits.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/sphere_decoder.hpp"
#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(const SystemConfig& sys, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = sys.num_tx;
  sc.num_rx = sys.num_rx;
  sc.modulation = sys.modulation;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

constexpr Strategy kZoo[] = {
    Strategy::kZf,           Strategy::kMmse,       Strategy::kMl,
    Strategy::kBestFsGemm,   Strategy::kBestFsScalar, Strategy::kDfs,
    Strategy::kGemmBfs,      Strategy::kFsd,        Strategy::kKBest,
    Strategy::kMultiPe,      Strategy::kMmseNeumann,
};

TEST(Rectangular, ZooDecodesTallChannelsExactly) {
  // Both cases run at N_r/N_t = 8: the zoo includes the k=3 Neumann tier,
  // whose truncation error is signal-proportional (more SNR does not shrink
  // it), and 16-QAM's quarter-size decision cells need the strong diagonal
  // dominance of the 8x ratio for the series to land every seed exactly.
  // Narrower ratios are covered by the FPGA-target test below (N_r/N_t = 4)
  // and by tests/test_mmse_neumann.cpp, which pins the guarded-fallback
  // behavior the series relies on there.
  for (const SystemConfig sys : {SystemConfig{4, 32, Modulation::kQam4},
                                 SystemConfig{4, 32, Modulation::kQam16}}) {
    for (Strategy strat : kZoo) {
      DecoderSpec spec;
      spec.strategy = strat;
      spec.multi_pe.num_threads = 2;
      auto det = make_detector(sys, spec);
      ASSERT_NE(det, nullptr) << strategy_name(strat);
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Trial t = make_trial(sys, 18.0, seed);
        ASSERT_EQ(t.h.rows(), sys.num_rx);
        ASSERT_EQ(t.h.cols(), sys.num_tx);
        const DecodeResult r = det->decode(t.h, t.y, t.sigma2);
        ASSERT_EQ(r.indices.size(), static_cast<usize>(sys.num_tx))
            << strategy_name(strat);
        ASSERT_EQ(r.symbols.size(), static_cast<usize>(sys.num_tx))
            << strategy_name(strat);
        EXPECT_EQ(r.indices, t.tx.indices)
            << strategy_name(strat) << " seed " << seed;
      }
    }
  }
}

TEST(Rectangular, FpgaTargetsDecodeTallChannels) {
  const SystemConfig sys{4, 16, Modulation::kQam4};
  const Trial t = make_trial(sys, 14.0, 2);
  for (TargetDevice dev :
       {TargetDevice::kFpgaBaseline, TargetDevice::kFpgaOptimized}) {
    DecoderSpec spec;
    spec.device = dev;
    auto det = make_detector(sys, spec);
    const DecodeResult r = det->decode(t.h, t.y, t.sigma2);
    ASSERT_EQ(r.indices.size(), 4u) << device_name(dev);
    EXPECT_EQ(r.indices, t.tx.indices) << device_name(dev);
  }
}

TEST(Rectangular, FullResidualDetectorsMatchTheOracleMetric) {
  // The linear family and MMSE-Neumann report the FULL residual
  // ||y - H s||^2 over all N_r rows (the tree searches report the
  // QR-reduced metric, which legitimately drops the out-of-column-space
  // energy ||Q2^H y||^2 on tall channels). Recompute with the oracle so a
  // row-truncation bug cannot hide in the diversity gain. MMSE-Neumann
  // evaluates the residual through the Gram identity
  // ||y||^2 - 2 Re(s^H y_mf) + s^H G s (O(M^2), DESIGN.md §17), so its
  // agreement is limited by the float-rounded Gram entries rather than by
  // double accumulation — hence the looser band.
  const SystemConfig sys{4, 32, Modulation::kQam16};
  const Trial t = make_trial(sys, 10.0, 9);
  for (Strategy strat :
       {Strategy::kZf, Strategy::kMmse, Strategy::kMmseNeumann}) {
    DecoderSpec spec;
    spec.strategy = strat;
    auto det = make_detector(sys, spec);
    const double tol = strat == Strategy::kMmseNeumann ? 1e-3 : 1e-6;
    const DecodeResult r = det->decode(t.h, t.y, t.sigma2);
    const double oracle = residual_metric(t.h, t.y, r.symbols);
    EXPECT_NEAR(r.metric, oracle, tol * (1.0 + oracle))
        << strategy_name(strat);
  }
}

TEST(Rectangular, UnderdeterminedIsRejectedEverywhere) {
  // rows < cols has no unique solution; every build path must refuse it
  // rather than decode garbage.
  DecoderSpec spec;
  for (Strategy strat : kZoo) {
    spec.strategy = strat;
    EXPECT_THROW(
        (void)make_detector(SystemConfig{8, 4, Modulation::kQam4}, spec),
        invalid_argument_error)
        << strategy_name(strat);
  }
}

}  // namespace
}  // namespace sd
