// Regression tests for the BFS frontier-truncation determinism fix
// (src/decode/sd_gemm_bfs.cpp): the memory-guard cut now uses a total
// (pd, NodeId) order via partial_sort, so a truncated decode — the one code
// path whose result used to depend on how the stdlib's nth_element resolved
// PD ties — is bit-identical across repeated runs and detector instances.
#include "decode/sd_gemm_bfs.hpp"

#include <gtest/gtest.h>

#include "mimo/scenario.hpp"

namespace sd {
namespace {

Trial make_trial(index_t m, Modulation mod, double snr, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.num_tx = m;
  sc.num_rx = m;
  sc.modulation = mod;
  sc.snr_db = snr;
  sc.seed = seed;
  Scenario s(sc);
  return s.next();
}

BfsOptions tiny_frontier() {
  BfsOptions opts;
  opts.max_frontier = 8;  // far below 4^8: every level past ~2 truncates
  return opts;
}

TEST(BfsTruncation, TinyFrontierActuallyTruncates) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmBfsDetector det(c, tiny_frontier());
  const Trial t = make_trial(8, Modulation::kQam4, 4.0, 1);
  (void)det.decode(t.h, t.y, t.sigma2);
  ASSERT_TRUE(det.last_truncated())
      << "max_frontier=8 on an 8x8 QPSK tree must hit the memory guard; if "
         "it stops doing so this test no longer covers the truncation path";
}

TEST(BfsTruncation, TruncatedDecodeIsBitIdenticalAcrossRuns) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmBfsDetector det(c, tiny_frontier());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    // Low SNR widens the sphere so ties and deep frontiers are common.
    const Trial t = make_trial(8, Modulation::kQam4, 4.0, seed);
    const DecodeResult first = det.decode(t.h, t.y, t.sigma2);
    for (int run = 0; run < 3; ++run) {
      const DecodeResult again = det.decode(t.h, t.y, t.sigma2);
      EXPECT_EQ(again.indices, first.indices) << "seed=" << seed;
      // Bitwise, not NEAR: the traversal is fully deterministic.
      EXPECT_EQ(again.metric, first.metric) << "seed=" << seed;
      EXPECT_EQ(again.stats.nodes_expanded, first.stats.nodes_expanded);
      EXPECT_EQ(again.stats.nodes_generated, first.stats.nodes_generated);
      EXPECT_EQ(again.stats.nodes_pruned, first.stats.nodes_pruned);
      EXPECT_EQ(again.stats.leaves_reached, first.stats.leaves_reached);
      EXPECT_EQ(again.stats.peak_list_size, first.stats.peak_list_size);
    }
  }
}

TEST(BfsTruncation, FreshDetectorInstanceReproducesTheCut) {
  // A fresh instance shares no state with the first; identical results mean
  // the cut depends only on (pd, NodeId), not on allocator or stdlib
  // internals that could differ between instances.
  const Constellation& c = Constellation::get(Modulation::kQam16);
  const Trial t = make_trial(6, Modulation::kQam16, 8.0, 3);
  BfsOptions opts;
  opts.max_frontier = 16;
  SdGemmBfsDetector a(c, opts);
  SdGemmBfsDetector b(c, opts);
  const DecodeResult ra = a.decode(t.h, t.y, t.sigma2);
  const DecodeResult rb = b.decode(t.h, t.y, t.sigma2);
  ASSERT_TRUE(a.last_truncated());
  EXPECT_EQ(ra.indices, rb.indices);
  EXPECT_EQ(ra.metric, rb.metric);
  EXPECT_EQ(ra.stats.nodes_generated, rb.stats.nodes_generated);
}

TEST(BfsTruncation, UntruncatedSearchUnaffectedByFrontierCap) {
  // With a cap the search never reaches, the fix must change nothing: the
  // default-capped and effectively-uncapped decoders agree bitwise.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const Trial t = make_trial(6, Modulation::kQam4, 12.0, 5);
  SdGemmBfsDetector capped(c, BfsOptions{});  // default 2^18
  BfsOptions huge;
  huge.max_frontier = 1u << 20;
  SdGemmBfsDetector uncapped(c, huge);
  const DecodeResult rc = capped.decode(t.h, t.y, t.sigma2);
  const DecodeResult ru = uncapped.decode(t.h, t.y, t.sigma2);
  EXPECT_FALSE(capped.last_truncated());
  EXPECT_EQ(rc.indices, ru.indices);
  EXPECT_EQ(rc.metric, ru.metric);
  EXPECT_EQ(rc.stats.nodes_generated, ru.stats.nodes_generated);
}

}  // namespace
}  // namespace sd
