#include "mimo/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"

namespace sd {
namespace {

TEST(Snr, RoundTripsWithSigma2) {
  for (double snr : {0.0, 4.0, 12.0, 20.0}) {
    for (index_t m : {1, 4, 10, 20}) {
      const double sigma2 = snr_db_to_sigma2(snr, m);
      EXPECT_NEAR(sigma2_to_snr_db(sigma2, m), snr, 1e-9);
    }
  }
}

TEST(Snr, HigherSnrMeansLessNoise) {
  EXPECT_GT(snr_db_to_sigma2(4.0, 10), snr_db_to_sigma2(8.0, 10));
}

TEST(Snr, ScalesWithTransmitterCount) {
  // Per-receive-antenna signal power is M, so sigma^2 at fixed SNR grows
  // linearly in M.
  EXPECT_NEAR(snr_db_to_sigma2(10.0, 20) / snr_db_to_sigma2(10.0, 10), 2.0,
              1e-9);
}

TEST(ChannelModel, ShapeAndDeterminism) {
  ChannelModel a(6, 4, 42), b(6, 4, 42);
  const CMat ha = a.draw_channel();
  const CMat hb = b.draw_channel();
  EXPECT_EQ(ha.rows(), 6);
  EXPECT_EQ(ha.cols(), 4);
  EXPECT_TRUE(ha == hb);
}

TEST(ChannelModel, EntriesHaveUnitVarianceZeroMean) {
  ChannelModel model(16, 16, 7);
  double sum_re = 0, sum_im = 0, sum_sq = 0;
  const int draws = 100;
  for (int d = 0; d < draws; ++d) {
    const CMat h = model.draw_channel();
    for (const cplx& v : h.flat()) {
      sum_re += v.real();
      sum_im += v.imag();
      sum_sq += norm2(v);
    }
  }
  const double n = draws * 16.0 * 16.0;
  EXPECT_NEAR(sum_re / n, 0.0, 0.02);
  EXPECT_NEAR(sum_im / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(ChannelModel, NoiselessTransmitIsExactlyHs) {
  ChannelModel model(5, 3, 9);
  const CMat h = model.draw_channel();
  const CVec s{cplx{1, 0}, cplx{0, 1}, cplx{-1, 0}};
  const CVec y = model.transmit(h, s, 0.0);
  CVec expected(5, cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, h, s, cplx{0, 0}, expected);
  EXPECT_LT(max_abs_diff(y, expected), 1e-6);
}

TEST(ChannelModel, NoisePowerMatchesSigma2) {
  ChannelModel model(8, 4, 11);
  const CMat h = model.draw_channel();
  const CVec s(4, cplx{0, 0});  // all-zero signal isolates the noise
  const double sigma2 = 0.5;
  double acc = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const CVec y = model.transmit(h, s, sigma2);
    acc += norm2_sq(y);
  }
  EXPECT_NEAR(acc / (trials * 8.0), sigma2, 0.02);
}

TEST(ChannelModel, RejectsBadShapes) {
  EXPECT_THROW(ChannelModel(3, 5, 1), invalid_argument_error);  // N < M
  EXPECT_THROW(ChannelModel(0, 0, 1), invalid_argument_error);
  ChannelModel model(4, 2, 1);
  const CMat h = model.draw_channel();
  EXPECT_THROW((void)model.transmit(h, CVec(3), 0.1), invalid_argument_error);
}

TEST(ChannelModel, CorrelatedChannelIncreasesColumnCoupling) {
  // With strong transmit correlation, adjacent columns of H are visibly
  // correlated; estimate E[h_i^H h_j] over many draws.
  ChannelModel iid(8, 4, 21);
  ChannelModel corr(8, 4, 21, ChannelCorrelation{0.9, 0.0});
  auto column_coupling = [](ChannelModel& model) {
    double acc = 0.0;
    const int draws = 200;
    for (int d = 0; d < draws; ++d) {
      const CMat h = model.draw_channel();
      cplx dot{0, 0};
      for (index_t i = 0; i < 8; ++i) dot += std::conj(h(i, 0)) * h(i, 1);
      acc += std::abs(dot);
    }
    return acc / draws;
  };
  EXPECT_GT(column_coupling(corr), 1.5 * column_coupling(iid));
}

TEST(ChannelModel, CorrelatedChannelKeepsUnitAveragePower) {
  ChannelModel corr(8, 8, 23, ChannelCorrelation{0.6, 0.6});
  double sum_sq = 0.0;
  const int draws = 200;
  for (int d = 0; d < draws; ++d) {
    sum_sq += frobenius_sq(corr.draw_channel());
  }
  EXPECT_NEAR(sum_sq / (draws * 64.0), 1.0, 0.06);
}

TEST(ChannelModel, RejectsInvalidCorrelation) {
  EXPECT_THROW(ChannelModel(4, 4, 1, ChannelCorrelation{1.0, 0.0}),
               invalid_argument_error);
  EXPECT_THROW(ChannelModel(4, 4, 1, ChannelCorrelation{0.0, -0.1}),
               invalid_argument_error);
}

}  // namespace
}  // namespace sd
