#include "mimo/constellation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace sd {
namespace {

class AllModulations : public ::testing::TestWithParam<Modulation> {};

TEST_P(AllModulations, OrderMatchesBitsPerSymbol) {
  const Constellation& c = Constellation::get(GetParam());
  EXPECT_EQ(c.order(), 1 << c.bits_per_symbol());
}

TEST_P(AllModulations, UnitAverageEnergy) {
  const Constellation& c = Constellation::get(GetParam());
  EXPECT_NEAR(c.average_energy(), 1.0, 1e-5);
}

TEST_P(AllModulations, PointsAreDistinct) {
  const Constellation& c = Constellation::get(GetParam());
  std::set<std::pair<real, real>> seen;
  for (index_t i = 0; i < c.order(); ++i) {
    const cplx pt = c.point(i);
    EXPECT_TRUE(seen.insert({pt.real(), pt.imag()}).second);
  }
}

TEST_P(AllModulations, SliceRecoversEveryPoint) {
  const Constellation& c = Constellation::get(GetParam());
  for (index_t i = 0; i < c.order(); ++i) {
    EXPECT_EQ(c.slice(c.point(i)), i);
  }
}

TEST_P(AllModulations, SliceMatchesExhaustiveNearestOnRandomInputs) {
  const Constellation& c = Constellation::get(GetParam());
  // Deterministic grid of probe points covering the constellation footprint.
  for (int xi = -12; xi <= 12; ++xi) {
    for (int yi = -12; yi <= 12; ++yi) {
      const cplx z{static_cast<real>(xi) * real{0.17},
                   static_cast<real>(yi) * real{0.17}};
      real best = std::numeric_limits<real>::max();
      for (index_t i = 0; i < c.order(); ++i) {
        best = std::min(best, norm2(z - c.point(i)));
      }
      const index_t sliced = c.slice(z);
      // Ties on the Voronoi boundary may break either way; require the
      // sliced point to be exactly as close as the exhaustive winner.
      EXPECT_LE(norm2(z - c.point(sliced)), best + real{1e-6});
    }
  }
}

TEST_P(AllModulations, BitsRoundTrip) {
  const Constellation& c = Constellation::get(GetParam());
  std::vector<std::uint8_t> bits(static_cast<usize>(c.bits_per_symbol()));
  for (index_t i = 0; i < c.order(); ++i) {
    c.index_to_bits(i, bits);
    EXPECT_EQ(c.bits_to_index(bits), i);
  }
}

TEST_P(AllModulations, BitLabelsAreDistinct) {
  const Constellation& c = Constellation::get(GetParam());
  std::set<std::vector<std::uint8_t>> seen;
  std::vector<std::uint8_t> bits(static_cast<usize>(c.bits_per_symbol()));
  for (index_t i = 0; i < c.order(); ++i) {
    c.index_to_bits(i, bits);
    EXPECT_TRUE(seen.insert(bits).second);
  }
}

TEST_P(AllModulations, GrayPropertyAdjacentPointsDifferInOneBit) {
  // For square QAM with per-axis Gray labels, horizontally or vertically
  // adjacent points differ in exactly one label bit. (BPSK trivially too.)
  const Constellation& c = Constellation::get(GetParam());
  const real min_dist = [&] {
    real best = std::numeric_limits<real>::max();
    for (index_t i = 0; i < c.order(); ++i) {
      for (index_t j = 0; j < c.order(); ++j) {
        if (i != j) best = std::min(best, norm2(c.point(i) - c.point(j)));
      }
    }
    return best;
  }();
  for (index_t i = 0; i < c.order(); ++i) {
    for (index_t j = 0; j < c.order(); ++j) {
      if (i == j) continue;
      if (norm2(c.point(i) - c.point(j)) < min_dist * real{1.01}) {
        EXPECT_EQ(c.bit_errors(i, j), 1)
            << "points " << i << " and " << j << " are nearest neighbours";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, AllModulations,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQam4,
                                           Modulation::kQam16,
                                           Modulation::kQam64),
                         [](const auto& param_info) {
                           return std::string(modulation_name(param_info.param))
                                      .substr(0, 2) == "BP"
                                      ? "BPSK"
                                      : "QAM" + std::to_string(
                                            Constellation::get(param_info.param).order());
                         });

TEST(Constellation, KnownQam4Points) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const real s = real{1} / std::sqrt(real{2});
  // All four corners present.
  std::set<std::pair<real, real>> expected{
      {-s, -s}, {-s, s}, {s, -s}, {s, s}};
  for (index_t i = 0; i < 4; ++i) {
    const cplx pt = c.point(i);
    EXPECT_EQ(expected.count({pt.real(), pt.imag()}), 1u);
  }
}

TEST(Constellation, ParseNames) {
  EXPECT_EQ(parse_modulation("bpsk"), Modulation::kBpsk);
  EXPECT_EQ(parse_modulation("qpsk"), Modulation::kQam4);
  EXPECT_EQ(parse_modulation("4qam"), Modulation::kQam4);
  EXPECT_EQ(parse_modulation("16qam"), Modulation::kQam16);
  EXPECT_EQ(parse_modulation("64qam"), Modulation::kQam64);
  EXPECT_THROW((void)parse_modulation("256qam"), invalid_argument_error);
}

TEST(Constellation, BitErrorsCountsLabelHamming) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  for (index_t i = 0; i < c.order(); ++i) {
    EXPECT_EQ(c.bit_errors(i, i), 0);
  }
}

TEST(Constellation, IndexToBitsBoundsChecked) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  std::vector<std::uint8_t> bits(2);
  EXPECT_THROW(c.index_to_bits(4, bits), invalid_argument_error);
  std::vector<std::uint8_t> small(1);
  EXPECT_THROW(c.index_to_bits(0, small), invalid_argument_error);
}

}  // namespace
}  // namespace sd
