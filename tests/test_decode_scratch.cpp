// Scratch reuse must be invisible in the results.
//
// The detectors now carry a DecodeScratch whose buffers persist across
// decode_into() calls. These tests pin the two properties that make that
// safe: (1) a warm detector produces bit-identical results to a fresh one —
// on the same problem, on different problems in sequence, and across problem
// SHAPE changes (which exercise the Mat::reshape and MST-rebuild paths);
// (2) LevelGemm::kRow0 — the opt-in 1 x k evaluation product — matches the
// full k x k product decode bit-for-bit while charging fewer flops.
//
// The ScratchIsolation suite drives concurrent per-thread detector clones
// and runs under the TSan CI job.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "decode/sd_gemm.hpp"
#include "decode/sd_gemm_bfs.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

constexpr double kSigma2 = 0.08;

void expect_same_result(const DecodeResult& a, const DecodeResult& b,
                        const char* what) {
  EXPECT_EQ(a.indices, b.indices) << what;
  EXPECT_EQ(a.metric, b.metric) << what;  // bitwise: both paths must agree
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded) << what;
  EXPECT_EQ(a.stats.nodes_generated, b.stats.nodes_generated) << what;
  EXPECT_EQ(a.stats.nodes_pruned, b.stats.nodes_pruned) << what;
  EXPECT_EQ(a.stats.leaves_reached, b.stats.leaves_reached) << what;
  EXPECT_EQ(a.stats.gemm_calls, b.stats.gemm_calls) << what;
}

TEST(DecodeScratch, WarmDetectorMatchesFreshDetector) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  SdGemmDetector warm(c);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const CMat h = testing::random_cmat(5, 5, 100 + trial);
    const CVec y = testing::random_cvec(5, 200 + trial);
    SdGemmDetector fresh(c);
    const DecodeResult expect = fresh.decode(h, y, kSigma2);
    DecodeResult got;
    warm.decode_into(h, y, kSigma2, got);
    expect_same_result(expect, got, "warm Best-FS");
    EXPECT_EQ(expect.stats.flops, got.stats.flops);
  }
}

TEST(DecodeScratch, DecodeAndDecodeIntoAgree) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmBfsDetector det(c);
  const CMat h = testing::random_cmat(6, 6, 301);
  const CVec y = testing::random_cvec(6, 302);
  const DecodeResult by_value = det.decode(h, y, kSigma2);
  DecodeResult into;
  into.metric = 123.0;  // stale contents must be fully reset
  into.indices.assign(9, 9);
  det.decode_into(h, y, kSigma2, into);
  expect_same_result(by_value, into, "decode vs decode_into");
  EXPECT_EQ(by_value.symbols, into.symbols);
}

TEST(DecodeScratch, ShapeChangesRecycleCleanly) {
  // Alternating problem sizes exercises reshape-shrink, reshape-grow, and
  // the MST rebuild (level count changes). Every decode is checked against
  // a fresh-detector oracle.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  SdGemmDetector warm_bestfs(c);
  SdGemmBfsDetector warm_bfs(c);
  const index_t sizes[] = {6, 2, 4, 6, 3, 5, 2, 6};
  std::uint64_t seed = 400;
  for (const index_t m : sizes) {
    const CMat h = testing::random_cmat(m, m, seed++);
    const CVec y = testing::random_cvec(m, seed++);
    {
      SdGemmDetector fresh(c);
      DecodeResult got;
      warm_bestfs.decode_into(h, y, kSigma2, got);
      expect_same_result(fresh.decode(h, y, kSigma2), got, "Best-FS reshape");
    }
    {
      SdGemmBfsDetector fresh(c);
      DecodeResult got;
      warm_bfs.decode_into(h, y, kSigma2, got);
      expect_same_result(fresh.decode(h, y, kSigma2), got, "BFS reshape");
    }
  }
}

TEST(DecodeScratch, Row0MatchesFullLevelGemmBestFs) {
  const Constellation& c = Constellation::get(Modulation::kQam16);
  SdOptions row0_opts;
  row0_opts.level_gemm = LevelGemm::kRow0;
  SdGemmDetector full(c);
  SdGemmDetector row0(c, row0_opts);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const CMat h = testing::random_cmat(6, 6, 500 + trial);
    const CVec y = testing::random_cvec(6, 600 + trial);
    const DecodeResult rf = full.decode(h, y, kSigma2);
    const DecodeResult r0 = row0.decode(h, y, kSigma2);
    expect_same_result(rf, r0, "row0 Best-FS");
    // Same GEMM count, strictly less arithmetic: only row 0 is formed.
    EXPECT_LT(r0.stats.flops, rf.stats.flops);
    EXPECT_LT(r0.stats.bytes_touched, rf.stats.bytes_touched);
  }
}

TEST(DecodeScratch, Row0MatchesFullLevelGemmBfs) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  BfsOptions row0_opts;
  row0_opts.base.level_gemm = LevelGemm::kRow0;
  SdGemmBfsDetector full(c);
  SdGemmBfsDetector row0(c, row0_opts);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const CMat h = testing::random_cmat(6, 6, 700 + trial);
    const CVec y = testing::random_cvec(6, 800 + trial);
    const DecodeResult rf = full.decode(h, y, kSigma2);
    const DecodeResult r0 = row0.decode(h, y, kSigma2);
    expect_same_result(rf, r0, "row0 BFS");
    EXPECT_LT(r0.stats.flops, rf.stats.flops);
  }
}

// Runs in the TSan CI job: per-thread detector clones share NOTHING, so
// concurrent decodes on separate instances must be race-free — the contract
// the serve/dispatch per-lane cloning relies on now that detectors own
// mutable scratch.
TEST(ScratchIsolation, ConcurrentDetectorClonesAreRaceFree) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  constexpr unsigned kThreads = 4;
  constexpr int kDecodesPerThread = 8;

  // Single-threaded oracle results first.
  std::vector<DecodeResult> expected;
  for (unsigned t = 0; t < kThreads; ++t) {
    SdGemmDetector det(c);
    const CMat h = testing::random_cmat(5, 5, 900 + t);
    const CVec y = testing::random_cvec(5, 950 + t);
    expected.push_back(det.decode(h, y, kSigma2));
  }

  std::vector<DecodeResult> got(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      SdGemmDetector det(c);  // per-thread clone, as serve/dispatch lanes do
      const CMat h = testing::random_cmat(5, 5, 900 + t);
      const CVec y = testing::random_cvec(5, 950 + t);
      DecodeResult r;
      for (int i = 0; i < kDecodesPerThread; ++i) {
        det.decode_into(h, y, kSigma2, r);
      }
      got[t] = r;
    });
  }
  for (auto& th : pool) th.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    expect_same_result(expected[t], got[t], "concurrent clone");
  }
}

}  // namespace
}  // namespace sd
