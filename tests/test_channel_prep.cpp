// Channel handles and the preprocessing cache.
//
// Pins the invariants the coherence-block machinery leans on: fingerprints
// are deterministic and content-derived; handles share storage instead of
// copying H; the cache reuses factorizations on hit, evicts LRU at capacity,
// and survives fingerprint collisions by content verification (a collision
// degrades to a rebuild, never to wrong bits). The Concurrent* suites drive
// the sharded cache and shared read-only preps from many threads and run
// under the TSan CI job.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "decode/channel_prep.hpp"
#include "decode/parallel_sd.hpp"
#include "decode/sd_gemm.hpp"
#include "test_util.hpp"

namespace sd {
namespace {

bool same_bits(const CMat& a, const CMat& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(cplx) * static_cast<usize>(a.rows()) *
                         static_cast<usize>(a.cols())) == 0;
}

TEST(ChannelPrep, FingerprintIsContentDerived) {
  const CMat h = testing::random_cmat(6, 6, 41);
  CMat same = h;
  EXPECT_EQ(channel_fingerprint(h), channel_fingerprint(same));

  CMat other = h;
  other(2, 3) = -other(2, 3);  // any bit flip must change the fingerprint
  EXPECT_NE(channel_fingerprint(h), channel_fingerprint(other));

  // Dimensions participate: a 1x4 and a 4x1 with identical bytes differ.
  CMat wide(1, 4);
  CMat tall(4, 1);
  for (index_t i = 0; i < 4; ++i) {
    wide(0, i) = cplx{static_cast<double>(i), 0.0};
    tall(i, 0) = cplx{static_cast<double>(i), 0.0};
  }
  EXPECT_NE(channel_fingerprint(wide), channel_fingerprint(tall));
}

TEST(ChannelPrep, HandleSharesStorage) {
  ChannelHandle a(testing::random_cmat(5, 5, 7));
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.use_count(), 1);

  ChannelHandle b = a;  // copy shares the allocation, not the bytes
  EXPECT_TRUE(b.same_storage(a));
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(&a.matrix(), &b.matrix());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  ChannelHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.same_storage(a));
}

TEST(ChannelPrep, CacheHitsReuseTheFactorization) {
  ChannelPrepCache cache(ChannelPrepCache::Options{8, 2});
  ChannelHandle channel(testing::random_cmat(6, 6, 11));

  bool hit = true;
  auto first = cache.get_or_build(channel, PrepKind::kQrSorted, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->kind, PrepKind::kQrSorted);

  auto second = cache.get_or_build(channel, PrepKind::kQrSorted, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // the same object, not a rebuild

  // A different kind for the same channel is a distinct entry.
  auto zf = cache.get_or_build(channel, PrepKind::kZf, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(zf->kind, PrepKind::kZf);

  const ChannelPrepCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.collisions, 0u);
}

TEST(ChannelPrep, CacheEvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic.
  ChannelPrepCache cache(ChannelPrepCache::Options{2, 1});
  ChannelHandle a(testing::random_cmat(5, 5, 1));
  ChannelHandle b(testing::random_cmat(5, 5, 2));
  ChannelHandle c(testing::random_cmat(5, 5, 3));

  bool hit = false;
  (void)cache.get_or_build(a, PrepKind::kQrPlain, &hit);
  (void)cache.get_or_build(b, PrepKind::kQrPlain, &hit);
  (void)cache.get_or_build(a, PrepKind::kQrPlain, &hit);  // a is now MRU
  EXPECT_TRUE(hit);

  (void)cache.get_or_build(c, PrepKind::kQrPlain, &hit);  // evicts b (LRU)
  EXPECT_FALSE(hit);
  EXPECT_GE(cache.stats().evictions, 1u);

  (void)cache.get_or_build(a, PrepKind::kQrPlain, &hit);
  EXPECT_TRUE(hit) << "the recently-used entry must survive the eviction";
  (void)cache.get_or_build(b, PrepKind::kQrPlain, &hit);
  EXPECT_FALSE(hit) << "the evicted entry must rebuild";
}

TEST(ChannelPrep, FingerprintCollisionRebuildsInsteadOfLying) {
  ChannelPrepCache cache(ChannelPrepCache::Options{8, 1});
  const CMat ha = testing::random_cmat(5, 5, 21);
  const CMat hb = testing::random_cmat(5, 5, 22);
  // Force both distinct matrices onto one cache key.
  ChannelHandle a(ha, /*fingerprint=*/0xDEADBEEFull);
  ChannelHandle b(hb, /*fingerprint=*/0xDEADBEEFull);

  bool hit = false;
  auto prep_a = cache.get_or_build(a, PrepKind::kQrSorted, &hit);
  EXPECT_FALSE(hit);
  auto prep_b = cache.get_or_build(b, PrepKind::kQrSorted, &hit);
  EXPECT_FALSE(hit) << "colliding content must not be served as a hit";
  EXPECT_GE(cache.stats().collisions, 1u);

  // Each prep was built from its own matrix despite the shared key.
  EXPECT_TRUE(same_bits(prep_a->channel.matrix(), ha));
  EXPECT_TRUE(same_bits(prep_b->channel.matrix(), hb));
}

TEST(ChannelPrep, BuildMatchesDirectPreprocess) {
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const CMat h = testing::random_cmat(6, 6, 55);
  const CVec y = testing::random_cvec(6, 56);
  ChannelHandle channel(h);

  // decode_with on a freshly built prep must equal the one-shot path for a
  // detector of the matching kind (the cache inserts via the same builder).
  SdGemmDetector det(c);
  auto prep = det.preprocess(channel);
  ASSERT_EQ(prep->kind, det.prep_kind());
  DecodeResult cached;
  det.decode_with(*prep, y, 0.08, cached);
  SdGemmDetector fresh(c);
  DecodeResult oneshot;
  fresh.decode_into(h, y, 0.08, oneshot);
  EXPECT_EQ(cached.indices, oneshot.indices);
  EXPECT_EQ(cached.metric, oneshot.metric);
}

TEST(ChannelPrepConcurrent, GetOrBuildRace) {
  // Many threads hammer a small channel set through all shards; every
  // returned prep must be content-correct no matter who won the insert race.
  ChannelPrepCache cache(ChannelPrepCache::Options{16, 4});
  std::vector<ChannelHandle> channels;
  for (std::uint64_t s = 0; s < 4; ++s) {
    channels.emplace_back(testing::random_cmat(5, 5, 100 + s));
  }

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &channels, t] {
      for (int iter = 0; iter < 50; ++iter) {
        const ChannelHandle& ch = channels[(t + iter) % channels.size()];
        auto prep = cache.get_or_build(ch, PrepKind::kQrSorted);
        ASSERT_NE(prep, nullptr);
        EXPECT_EQ(prep->kind, PrepKind::kQrSorted);
        EXPECT_TRUE(same_bits(prep->channel.matrix(), ch.matrix()));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const ChannelPrepCache::Stats st = cache.stats();
  EXPECT_EQ(st.collisions, 0u);
  EXPECT_GE(st.hits + st.misses, 200u);
}

TEST(ChannelPrepConcurrent, SharedPrepIsReadOnlyAcrossDetectors) {
  // One cached prep, one detector clone per thread (detectors themselves are
  // single-threaded): every thread must read the shared factorization
  // without synchronization and produce the sequential result. ParallelSd
  // additionally fans its own workers out over the same shared prep.
  const Constellation& c = Constellation::get(Modulation::kQam4);
  const CMat h = testing::random_cmat(6, 6, 77);
  ChannelHandle channel(h);
  SdGemmDetector proto(c);
  auto prep = proto.preprocess(channel);

  std::vector<CVec> ys;
  std::vector<DecodeResult> expected(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ys.push_back(testing::random_cvec(6, 200 + i));
    SdGemmDetector seq(c);
    seq.decode_with(*prep, ys.back(), 0.08, expected[i]);
  }

  std::vector<DecodeResult> got(4);
  std::vector<std::thread> threads;
  for (usize i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      SdGemmDetector det(c);
      det.decode_with(*prep, ys[i], 0.08, got[i]);
    });
  }
  for (std::thread& th : threads) th.join();
  for (usize i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].indices, expected[i].indices);
    EXPECT_EQ(got[i].metric, expected[i].metric);
  }

  ParallelSdDetector multi(c, {});
  DecodeResult via_parallel;
  multi.decode_with(*prep, ys[0], 0.08, via_parallel);
  EXPECT_EQ(via_parallel.indices, expected[0].indices);
}

}  // namespace
}  // namespace sd
