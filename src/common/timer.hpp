// Wall-clock timing for the measured (CPU) side of the evaluation.
#pragma once

#include <chrono>

namespace sd {

/// Monotonic stopwatch. start() on construction; elapsed_*() reads since the
/// last reset without stopping the clock.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

  [[nodiscard]] double elapsed_us() const noexcept {
    return elapsed_seconds() * 1e6;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sd
