// Small statistics helpers for the experiment harness: the paper reports
// means, geometric means (energy reduction, GPU speedup), and we additionally
// report percentiles and confidence intervals for measured series.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sd {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Geometric mean of strictly positive samples; 0 for an empty span.
/// Throws sd::invalid_argument_error if any sample is <= 0.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> xs);

[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Half-width of the normal-approximation 95% confidence interval on the
/// mean. 0 for fewer than two samples.
[[nodiscard]] double ci95_halfwidth(std::span<const double> xs) noexcept;

/// Accumulates a running series and exposes the summary statistics above.
class Series {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] std::span<const double> values() const noexcept { return xs_; }

  [[nodiscard]] double mean() const noexcept { return sd::mean(xs_); }
  [[nodiscard]] double stddev() const noexcept { return sd::stddev(xs_); }
  [[nodiscard]] double geomean() const { return sd::geomean(xs_); }
  [[nodiscard]] double median() const { return sd::median(xs_); }
  [[nodiscard]] double percentile(double p) const { return sd::percentile(xs_, p); }
  [[nodiscard]] double min() const { return sd::min_of(xs_); }
  [[nodiscard]] double max() const { return sd::max_of(xs_); }
  [[nodiscard]] double ci95() const noexcept { return sd::ci95_halfwidth(xs_); }

  void clear() noexcept { xs_.clear(); }

 private:
  std::vector<double> xs_;
};

}  // namespace sd
