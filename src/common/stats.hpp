// Small statistics helpers for the experiment harness: the paper reports
// means, geometric means (energy reduction, GPU speedup), and we additionally
// report percentiles and confidence intervals for measured series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace sd {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Geometric mean of strictly positive samples; 0 for an empty span.
/// Throws sd::invalid_argument_error if any sample is <= 0.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> xs);

[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Half-width of the normal-approximation 95% confidence interval on the
/// mean. 0 for fewer than two samples.
[[nodiscard]] double ci95_halfwidth(std::span<const double> xs) noexcept;

/// Fixed-bucket histogram for latency aggregation in the serving runtime,
/// where retaining every sample (as Series does) would grow without bound.
/// Buckets are `num_buckets` equal-width intervals covering [lower, upper);
/// out-of-range samples are clamped into the first/last bucket (and counted
/// as underflow/overflow), while the exact min/max/sum are tracked so the
/// extreme quantiles stay exact.
class Histogram {
 public:
  /// Throws sd::invalid_argument_error unless lower < upper, num_buckets > 0.
  Histogram(double lower, double upper, usize num_buckets);

  void record(double x) noexcept;

  [[nodiscard]] usize count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Exact extremes of everything recorded (including clamped samples).
  [[nodiscard]] double min() const;  ///< throws if empty
  [[nodiscard]] double max() const;  ///< throws if empty

  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// containing bucket, clamped to the exact [min, max] so quantile(0) and
  /// quantile(1) are exact. Error is bounded by one bucket width elsewhere.
  /// Throws sd::invalid_argument_error if empty or q outside [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] usize num_buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] double bucket_width() const noexcept { return width_; }
  [[nodiscard]] double bucket_lower(usize i) const;
  [[nodiscard]] double bucket_upper(usize i) const;
  [[nodiscard]] std::uint64_t bucket_count(usize i) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  void clear() noexcept;

 private:
  double lower_, upper_, width_;
  std::vector<std::uint64_t> counts_;
  usize count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
  std::uint64_t underflow_ = 0, overflow_ = 0;
};

/// Accumulates a running series and exposes the summary statistics above.
class Series {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] std::span<const double> values() const noexcept { return xs_; }

  [[nodiscard]] double mean() const noexcept { return sd::mean(xs_); }
  [[nodiscard]] double stddev() const noexcept { return sd::stddev(xs_); }
  [[nodiscard]] double geomean() const { return sd::geomean(xs_); }
  [[nodiscard]] double median() const { return sd::median(xs_); }
  [[nodiscard]] double percentile(double p) const { return sd::percentile(xs_, p); }
  [[nodiscard]] double min() const { return sd::min_of(xs_); }
  [[nodiscard]] double max() const { return sd::max_of(xs_); }
  [[nodiscard]] double ci95() const noexcept { return sd::ci95_halfwidth(xs_); }

  void clear() noexcept { xs_.clear(); }

 private:
  std::vector<double> xs_;
};

}  // namespace sd
