#include "common/random.hpp"

#include <cmath>

namespace sd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFull, 0xC5004E441C522FB3ull, 0x77710069854EE241ull,
      0x39109BB02ACBE635ull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

double uniform01(Xoshiro256& rng) noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double GaussianSource::next() noexcept {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Marsaglia polar method.
  double u, v, r2;
  do {
    u = 2.0 * uniform01(rng_) - 1.0;
    v = 2.0 * uniform01(rng_) - 1.0;
    r2 = u * u + v * v;
  } while (r2 >= 1.0 || r2 == 0.0);
  const double f = std::sqrt(-2.0 * std::log(r2) / r2);
  cached_ = v * f;
  has_cached_ = true;
  return u * f;
}

cplx GaussianSource::next_cplx(double variance) noexcept {
  const double sigma = std::sqrt(variance / 2.0);
  return {static_cast<real>(sigma * next()), static_cast<real>(sigma * next())};
}

std::uint32_t GaussianSource::next_index(std::uint32_t bound) noexcept {
  // Lemire's multiply-shift rejection-free reduction is fine here: the bias
  // for bound << 2^32 is negligible for Monte-Carlo symbol draws.
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rng_())) * bound) >> 32);
}

}  // namespace sd
