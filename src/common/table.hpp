// ASCII table rendering for the benchmark harness. Every bench binary prints
// the same rows/series the paper's tables and figures report; this gives them
// one consistent, aligned format.
#pragma once

#include <string>
#include <vector>

namespace sd {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// Fixed-column ASCII table. Usage:
///   Table t({"SNR (dB)", "CPU (ms)", "FPGA (ms)"});
///   t.add_row({"4", "7.0", "2.0"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> aligns = {});

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Column headers, in order.
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }

  /// All non-separator rows' cells, in insertion order. Used by the
  /// observability layer to export rendered tables as machine-readable JSON.
  [[nodiscard]] std::vector<std::vector<std::string>> data_rows() const;

  /// Renders with a header rule and outer borders.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Formats a double with the given precision, trimming to fixed notation.
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Formats a value as a percentage string, e.g. 0.29 -> "29%".
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 0);

/// Formats "x<value>" speedup/reduction factors, e.g. 35.84 -> "35.8x".
[[nodiscard]] std::string fmt_factor(double value, int precision = 1);

/// Formats a value in scientific notation, e.g. 3.2e-03.
[[nodiscard]] std::string fmt_sci(double value, int precision = 2);

}  // namespace sd
