// Minimal command-line / environment option parsing used by the benchmark
// harness and the examples. Options come as "--key=value" or "--key value";
// environment variables (e.g. SD_TRIALS) provide defaults so the whole bench
// directory can be scaled with one knob.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sd {

/// Parsed command line: named options plus positional arguments.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --key was present (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] long get_int_or(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key,
                                     double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Integer environment variable with fallback (e.g. SD_TRIALS).
[[nodiscard]] long env_int_or(const char* name, long fallback);

/// Floating-point environment variable with fallback.
[[nodiscard]] double env_double_or(const char* name, double fallback);

}  // namespace sd
