#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace sd {

Cli::Cli(int argc, const char* const* argv) {
  SD_CHECK(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long Cli::get_int_or(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::strtol(v->c_str(), nullptr, 10);
}

double Cli::get_double_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

long env_int_or(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtol(v, nullptr, 10);
}

double env_double_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

}  // namespace sd
