// Fundamental scalar/complex type aliases shared across the library.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace sd {

/// Real scalar used throughout the signal chain. The paper's FPGA design is
/// single-precision (fp32 MAC units built from DSP slices), so float is the
/// faithful choice; double is used only inside test oracles.
using real = float;

/// Complex baseband sample.
using cplx = std::complex<real>;

/// Double-precision complex, used by reference/oracle code in tests.
using cplxd = std::complex<double>;

/// Index type for matrix dimensions and tree levels.
using index_t = std::int32_t;

/// Unsigned size type for container sizes.
using usize = std::size_t;

/// Squared magnitude |z|^2 without the sqrt of std::abs.
[[nodiscard]] constexpr real norm2(cplx z) noexcept {
  return z.real() * z.real() + z.imag() * z.imag();
}

}  // namespace sd
