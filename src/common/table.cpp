#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace sd {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  SD_CHECK(!headers_.empty(), "table needs at least one column");
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kRight);
    aligns_.front() = Align::kLeft;
  }
  SD_CHECK(aligns_.size() == headers_.size(),
           "alignment count must match header count");
}

void Table::add_row(std::vector<std::string> cells) {
  SD_CHECK(cells.size() == headers_.size(),
           "row cell count must match header count");
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::vector<std::vector<std::string>> Table::data_rows() const {
  std::vector<std::vector<std::string>> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    if (!row.separator) out.push_back(row.cells);
  }
  return out;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      line += " ";
      if (aligns_[c] == Align::kRight) line += std::string(pad, ' ');
      line += cells[c];
      if (aligns_[c] == Align::kLeft) line += std::string(pad, ' ');
      line += " |";
    }
    return line + "\n";
  };

  std::string out = rule();
  out += emit_row(headers_);
  out += rule();
  for (const Row& row : rows_) {
    out += row.separator ? rule() : emit_row(row.cells);
  }
  out += rule();
  return out;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_factor(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, value);
  return buf;
}

}  // namespace sd
