// Seedable PRNG used by the Monte-Carlo link simulator.
//
// We implement xoshiro256++ (Blackman & Vigna) rather than using
// std::mt19937 so that stream contents are identical across standard-library
// implementations — reproducibility of the paper's Monte-Carlo experiments
// must not depend on the host toolchain.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace sd {

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from a single seed value using
  /// splitmix64, as recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// streams for parallel Monte-Carlo workers.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Draws a double uniformly in [0, 1).
[[nodiscard]] double uniform01(Xoshiro256& rng) noexcept;

/// Draws a standard normal via the Box-Muller transform (polar form).
class GaussianSource {
 public:
  explicit GaussianSource(std::uint64_t seed) noexcept : rng_(seed) {}

  /// One sample of N(0, 1).
  [[nodiscard]] double next() noexcept;

  /// One sample of circularly-symmetric complex Gaussian CN(0, variance):
  /// real and imaginary parts are independent N(0, variance/2).
  [[nodiscard]] cplx next_cplx(double variance) noexcept;

  /// Uniform integer in [0, bound).
  [[nodiscard]] std::uint32_t next_index(std::uint32_t bound) noexcept;

  Xoshiro256& engine() noexcept { return rng_; }

 private:
  Xoshiro256 rng_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace sd
