#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sd {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SD_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace sd
