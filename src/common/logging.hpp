// Tiny leveled logger. The decoders are hot-path code, so logging is kept out
// of inner loops entirely; this exists for the harness and examples.
#pragma once

#include <sstream>
#include <string>

namespace sd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kInfo, or the
/// level named by the SD_LOG environment variable (debug/info/warn/error/off).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line to stderr as "[level] message" if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style one-shot logger: flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sd

#define SD_LOG_DEBUG ::sd::detail::LogLine(::sd::LogLevel::kDebug)
#define SD_LOG_INFO ::sd::detail::LogLine(::sd::LogLevel::kInfo)
#define SD_LOG_WARN ::sd::detail::LogLine(::sd::LogLevel::kWarn)
#define SD_LOG_ERROR ::sd::detail::LogLine(::sd::LogLevel::kError)
