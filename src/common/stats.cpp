#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sd {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_acc = 0.0;
  for (double x : xs) {
    SD_CHECK(x > 0.0, "geomean requires strictly positive samples");
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  SD_CHECK(!xs.empty(), "percentile of empty series");
  SD_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) {
  SD_CHECK(!xs.empty(), "min of empty series");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  SD_CHECK(!xs.empty(), "max of empty series");
  return *std::max_element(xs.begin(), xs.end());
}

Histogram::Histogram(double lower, double upper, usize num_buckets)
    : lower_(lower), upper_(upper) {
  SD_CHECK(lower < upper, "histogram needs lower < upper");
  SD_CHECK(num_buckets > 0, "histogram needs at least one bucket");
  counts_.assign(num_buckets, 0);
  width_ = (upper_ - lower_) / static_cast<double>(num_buckets);
}

void Histogram::record(double x) noexcept {
  usize idx = 0;
  if (x < lower_) {
    ++underflow_;
  } else if (x >= upper_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<usize>((x - lower_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp rounding at upper
  }
  ++counts_[idx];
  sum_ += x;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
}

double Histogram::min() const {
  SD_CHECK(count_ > 0, "min of empty histogram");
  return min_;
}

double Histogram::max() const {
  SD_CHECK(count_ > 0, "max of empty histogram");
  return max_;
}

double Histogram::quantile(double q) const {
  SD_CHECK(count_ > 0, "quantile of empty histogram");
  SD_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (usize i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      const double frac = c == 0.0 ? 0.0 : (target - cum) / c;
      const double est = bucket_lower(i) + frac * width_;
      return std::clamp(est, min_, max_);
    }
    cum += c;
  }
  return max_;
}

double Histogram::bucket_lower(usize i) const {
  SD_CHECK(i < counts_.size(), "bucket index out of range");
  return lower_ + static_cast<double>(i) * width_;
}

double Histogram::bucket_upper(usize i) const {
  SD_CHECK(i < counts_.size(), "bucket index out of range");
  return i + 1 == counts_.size() ? upper_ : lower_ + static_cast<double>(i + 1) * width_;
}

std::uint64_t Histogram::bucket_count(usize i) const {
  SD_CHECK(i < counts_.size(), "bucket index out of range");
  return counts_[i];
}

void Histogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
  underflow_ = overflow_ = 0;
}

double ci95_halfwidth(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

}  // namespace sd
