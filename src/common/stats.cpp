#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sd {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_acc = 0.0;
  for (double x : xs) {
    SD_CHECK(x > 0.0, "geomean requires strictly positive samples");
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  SD_CHECK(!xs.empty(), "percentile of empty series");
  SD_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) {
  SD_CHECK(!xs.empty(), "min of empty series");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  SD_CHECK(!xs.empty(), "max of empty series");
  return *std::max_element(xs.begin(), xs.end());
}

double ci95_halfwidth(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

}  // namespace sd
