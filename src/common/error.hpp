// Error handling: precondition checks that throw, used at API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace sd {

/// Exception thrown when a public-API precondition is violated.
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant fails (indicates a bug).
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Exception thrown when a fixed-capacity hardware-style structure overflows
/// (e.g. the Meta State Table); mirrors what would be a synthesis-time sizing
/// failure on the real FPGA.
class capacity_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw invalid_argument_error(std::string("check failed: ") + expr + " at " +
                               file + ":" + std::to_string(line) +
                               (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace sd

/// Precondition check for public entry points; throws sd::invalid_argument_error.
#define SD_CHECK(expr, msg)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::sd::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg);  \
    }                                                                     \
  } while (false)

/// Internal invariant; violations indicate a bug in the library itself.
#define SD_ASSERT(expr)                                                       \
  do {                                                                        \
    if (!(expr)) {                                                            \
      throw ::sd::internal_error(std::string("invariant failed: ") + #expr + \
                                 " at " + __FILE__ + ":" +                    \
                                 std::to_string(__LINE__));                   \
    }                                                                         \
  } while (false)
