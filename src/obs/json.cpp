#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace sd::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  SD_CHECK(!done_, "JsonWriter: document already finished");
  if (!stack_.empty() && stack_.back() == '{') {
    SD_CHECK(after_key_, "JsonWriter: value inside an object requires key()");
  }
  if (need_comma_ && !after_key_) out_ += ',';
  after_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SD_CHECK(!stack_.empty() && stack_.back() == '{' && !after_key_,
           "JsonWriter: unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SD_CHECK(!stack_.empty() && stack_.back() == '[' && !after_key_,
           "JsonWriter: unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  SD_CHECK(!stack_.empty() && stack_.back() == '{' && !after_key_,
           "JsonWriter: key() outside an object");
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  need_comma_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::take() {
  SD_CHECK(done_ && stack_.empty(), "JsonWriter: document not finished");
  done_ = false;
  need_comma_ = false;
  return std::move(out_);
}

namespace {

/// Recursive-descent JSON syntax checker (no value materialization).
class Validator {
 public:
  explicit Validator(std::string_view s) : s_(s) {}

  [[nodiscard]] bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (depth_ > 256 || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  [[nodiscard]] bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  [[nodiscard]] bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<usize>(i) >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<usize>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  [[nodiscard]] bool number() {
    const usize start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] char peek() const noexcept {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  void skip_ws() noexcept {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  usize pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_validate(std::string_view text) { return Validator(text).run(); }

bool write_text_file(const std::string& path, std::string_view text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace sd::obs
