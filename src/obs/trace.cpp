#include "obs/trace.hpp"

#include <algorithm>

#include "common/cli.hpp"
#include "obs/json.hpp"

namespace sd::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(usize capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(std::max<usize>(capacity, 1), TraceEvent{});
  total_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::int64_t Tracer::now_ns() const noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(const char* name, std::int64_t start_ns,
                    std::int64_t dur_ns) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed) || ring_.empty()) return;
  ring_[total_ % ring_.size()] =
      TraceEvent{name, thread_id(), start_ns, dur_ns};
  ++total_;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const usize n = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(n);
  // Oldest first: the ring wraps at total_ % size.
  const usize start = total_ > ring_.size() ? total_ % ring_.size() : 0;
  for (usize i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(ring_.begin(), ring_.end(), TraceEvent{});
  total_ = 0;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> events = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name != nullptr ? e.name : "?");
    w.key("cat").value("sd");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(e.start_ns) * 1e-3);
    w.key("dur").value(static_cast<double>(e.dur_ns) * 1e-3);
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  return write_text_file(path, chrome_trace_json());
}

std::uint32_t Tracer::thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool init_tracing_from_env() {
  const long v = env_int_or("SD_TRACE", 0);
  if (v == 0) return false;
  Tracer::instance().enable(v > 1 ? static_cast<usize>(v) : usize{1} << 16);
  return true;
}

}  // namespace sd::obs
