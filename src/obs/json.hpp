// Minimal JSON emission/validation for the observability layer.
//
// Everything src/obs exports — counter snapshots, chrome://tracing dumps,
// BENCH_*.json bench reports — goes through this one writer so escaping and
// number formatting are uniform and the emitted documents are syntactically
// valid by construction. The validator is a full-syntax checker (not a
// parser): tests and tools use it to assert that exported documents are
// well-formed JSON without pulling in an external dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sd::obs {

/// Escapes a string for embedding inside a JSON string literal (quotes not
/// included): ", \, control characters -> \uXXXX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Streaming JSON writer with structural checking. Usage:
///   JsonWriter w;
///   w.begin_object().key("name").value("fig6").key("rows").begin_array();
///   ...
///   w.end_array().end_object();
///   std::string doc = w.take();
/// Misuse (value without key inside an object, unbalanced end_*) throws
/// sd::invalid_argument_error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);  ///< non-finite values are emitted as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finishes and returns the document. Throws if containers are unbalanced
  /// or nothing was written.
  [[nodiscard]] std::string take();

 private:
  void before_value();

  std::string out_;
  std::vector<char> stack_;   // '{' or '['
  bool need_comma_ = false;
  bool after_key_ = false;
  bool done_ = false;
};

/// True iff `text` is one complete, syntactically valid JSON value
/// (RFC 8259 grammar; numbers, strings with escapes, nesting).
[[nodiscard]] bool json_validate(std::string_view text);

/// Writes `text` to `path`, returning false on any I/O failure.
bool write_text_file(const std::string& path, std::string_view text);

}  // namespace sd::obs
