#include "obs/alloc_count.hpp"

#include <atomic>
#include <string>

#include "obs/counters.hpp"

namespace sd::obs {

namespace {

// Constant-initialized so counting is valid even for allocations made during
// static initialization, before any user code runs.
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_deallocations{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_hooks_linked{false};

}  // namespace

bool alloc_counting_available() noexcept {
  return g_hooks_linked.load(std::memory_order_relaxed);
}

AllocCounts alloc_counts() noexcept {
  AllocCounts c;
  c.allocations = g_allocations.load(std::memory_order_relaxed);
  c.deallocations = g_deallocations.load(std::memory_order_relaxed);
  c.bytes = g_bytes.load(std::memory_order_relaxed);
  return c;
}

void reset_alloc_counts() noexcept {
  g_allocations.store(0, std::memory_order_relaxed);
  g_deallocations.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

void export_alloc_counters(CounterRegistry& registry,
                           std::string_view prefix) {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  const AllocCounts c = alloc_counts();
  registry.set(p + "available",
               std::uint64_t{alloc_counting_available() ? 1u : 0u});
  registry.set(p + "allocations", c.allocations);
  registry.set(p + "deallocations", c.deallocations);
  registry.set(p + "bytes", c.bytes);
}

namespace detail {

void count_allocation(std::uint64_t bytes) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void count_deallocation() noexcept {
  g_deallocations.fetch_add(1, std::memory_order_relaxed);
}

void mark_alloc_hooks_linked() noexcept {
  g_hooks_linked.store(true, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace sd::obs
