// Span-based tracing for the decode / FPGA-model / serve hot paths.
//
// Usage at an instrumentation site:
//
//   void SdGemmDetector::search(...) {
//     SD_TRACE_SPAN("search");
//     ...
//   }
//
// The macro plants an RAII guard that records a {name, thread, start, dur}
// event into a process-wide fixed-capacity ring buffer when tracing is
// enabled. Cost model, in line with the repo's golden-regression methodology
// (instrumentation must never perturb what it measures):
//
//   - compiled out (SD_OBS_ENABLED=0, cmake -DSPHEREDEC_OBS=OFF): the macro
//     expands to nothing — zero code, zero data;
//   - compiled in but disabled (the default at runtime): one relaxed atomic
//     load and a predictable branch per span — no clock reads, no locks;
//   - enabled: two steady_clock reads plus a short critical section on the
//     ring mutex. Tracing is a capture tool, not an always-on profiler.
//
// The ring never reallocates while recording; once full, the oldest events
// are overwritten and counted in dropped(). Export is chrome://tracing's
// "Trace Event Format" (a JSON object with a traceEvents array of complete
// "X" events), loadable in chrome://tracing or Perfetto.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

#ifndef SD_OBS_ENABLED
#define SD_OBS_ENABLED 1
#endif

namespace sd::obs {

/// One completed span. `name` must point to a string with static storage
/// duration (the macro passes literals); only the pointer is stored.
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;       ///< small dense id assigned per thread
  std::int64_t start_ns = 0;   ///< steady-clock time since the tracer epoch
  std::int64_t dur_ns = 0;
};

/// Process-wide span collector. All methods are thread-safe.
class Tracer {
 public:
  /// The singleton every SD_TRACE_SPAN records into.
  [[nodiscard]] static Tracer& instance();

  /// Allocates (or resizes) the ring and starts recording. Idempotent;
  /// re-enabling with a different capacity clears previously captured events.
  void enable(usize capacity = 1u << 16);

  /// Stops recording; captured events stay readable until clear()/enable().
  void disable();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer epoch (first instance() call).
  [[nodiscard]] std::int64_t now_ns() const noexcept;

  /// Records one completed span. No-op when disabled.
  void record(const char* name, std::int64_t start_ns,
              std::int64_t dur_ns) noexcept;

  /// Events currently in the ring, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Total events offered to the ring since enable().
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

  /// Serializes the ring in chrome://tracing JSON ("ts"/"dur" microseconds).
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Small dense id of the calling thread (assigned on first use).
  [[nodiscard]] static std::uint32_t thread_id() noexcept;

 private:
  Tracer();

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;     // guarded by mu_
  std::uint64_t total_ = 0;          // guarded by mu_
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: samples the clock on construction iff tracing is enabled, and
/// records on destruction. Prefer the SD_TRACE_SPAN macro, which compiles
/// away entirely when the observability layer is disabled at build time.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) noexcept {
    Tracer& t = Tracer::instance();
    if (t.enabled()) {
      tracer_ = &t;
      name_ = name;
      start_ns_ = t.now_ns();
    }
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, start_ns_, tracer_->now_ns() - start_ns_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

/// Enables tracing iff the SD_TRACE environment variable is set to a nonzero
/// value (its integer value, when > 1, overrides the ring capacity). Returns
/// true if tracing was enabled.
bool init_tracing_from_env();

}  // namespace sd::obs

#if SD_OBS_ENABLED
#define SD_OBS_CONCAT_IMPL(a, b) a##b
#define SD_OBS_CONCAT(a, b) SD_OBS_CONCAT_IMPL(a, b)
#define SD_TRACE_SPAN(name) \
  ::sd::obs::SpanGuard SD_OBS_CONCAT(sd_obs_span_, __LINE__) { name }
#else
#define SD_TRACE_SPAN(name) static_cast<void>(0)
#endif
