// BenchReporter: machine-readable bench output.
//
// Every binary under bench/ (and the servable examples) routes its results
// through one of these so that, alongside the human-oriented ASCII tables,
// the run leaves a schema-versioned BENCH_<name>.json on disk. Future perf
// PRs diff those files mechanically instead of eyeballing text tables — the
// repo's perf trajectory becomes data.
//
// Document schema "spheredec.bench", version 1:
//
//   {
//     "schema": "spheredec.bench",
//     "schema_version": 1,
//     "name": "fig6_time_10x10_4qam",
//     "config":  { "trials": 20, "m": 10, ... },          // flat object
//     "series":  [ { "label": "cpu-vs-fpga",
//                    "rows": [ { "snr_db": 0, "cpu_ms": 7.1, ... } ] } ],
//     "tables":  [ { "label": "results",
//                    "headers": [ "SNR (dB)", ... ],
//                    "rows": [ [ 0, "35.8x", ... ] ] } ],  // numeric cells
//                                                          // emitted as numbers
//     "counters": { "decode.nodes_expanded": 4901, ... }   // optional
//   }
//
// `series` carries typed rows for the figures whose values the binary
// computes directly; `add_table` captures an already-built ASCII Table
// (cells that parse fully as numbers are emitted as numbers). Either may be
// empty, but a valid report has at least one of the two non-empty.
// tools/validate_bench_json.py checks this schema in CI.
//
// Output location: $SD_BENCH_JSON_DIR (default: the working directory);
// SD_BENCH_JSON=0 disables emission entirely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/counters.hpp"

namespace sd {
class Table;
}

namespace sd::obs {

/// Tagged scalar for config entries and series cells.
struct Metric {
  enum class Kind : std::uint8_t { kDouble, kInt, kUint, kBool, kString };
  Kind kind = Kind::kDouble;
  double d = 0.0;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  bool b = false;
  std::string s;

  Metric(double v) : kind(Kind::kDouble), d(v) {}                 // NOLINT
  Metric(int v) : kind(Kind::kInt), i(v) {}                       // NOLINT
  Metric(long v) : kind(Kind::kInt), i(v) {}                      // NOLINT
  Metric(long long v) : kind(Kind::kInt), i(v) {}                 // NOLINT
  Metric(unsigned v) : kind(Kind::kUint), u(v) {}                 // NOLINT
  Metric(unsigned long v) : kind(Kind::kUint), u(v) {}            // NOLINT
  Metric(unsigned long long v) : kind(Kind::kUint), u(v) {}       // NOLINT
  Metric(bool v) : kind(Kind::kBool), b(v) {}                     // NOLINT
  Metric(const char* v) : kind(Kind::kString), s(v) {}            // NOLINT
  Metric(std::string_view v) : kind(Kind::kString), s(v) {}       // NOLINT
  Metric(std::string v) : kind(Kind::kString), s(std::move(v)) {} // NOLINT
};

class BenchReporter {
 public:
  /// `name` is the report id, e.g. "fig6_time_10x10_4qam"; the file becomes
  /// BENCH_<name>.json.
  explicit BenchReporter(std::string name);

  /// Writes the report if write() was not already called (best effort; the
  /// destructor swallows I/O errors — call write() to observe them).
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Records one configuration entry (trials, system shape, flags, ...).
  void config(std::string_view key, Metric value);

  /// Appends one typed row to the series named `label` (created on first
  /// use, preserving first-use order).
  void row(std::string_view label,
           std::vector<std::pair<std::string, Metric>> cells);

  /// Captures a rendered ASCII table: headers plus all non-separator rows.
  /// Cells that parse completely as finite numbers are emitted as numbers.
  void add_table(std::string_view label, const Table& table);

  /// Merges a counter snapshot into the report's "counters" object.
  void counters(const CounterRegistry& registry, std::string_view prefix = "");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Full output path under the effective output directory.
  [[nodiscard]] std::string path() const;

  /// Overrides the output directory (tests; default $SD_BENCH_JSON_DIR or ".").
  void set_directory(std::string dir) { dir_ = std::move(dir); }

  /// False iff SD_BENCH_JSON=0 suppresses emission process-wide.
  [[nodiscard]] static bool enabled();

  /// The full report document (always available, even when disabled).
  [[nodiscard]] std::string json() const;

  /// Emits the report and prints a one-line note. Returns true on success or
  /// when emission is disabled; subsequent destructor writes are suppressed.
  bool write();

 private:
  struct Series {
    std::string label;
    std::vector<std::vector<std::pair<std::string, Metric>>> rows;
  };
  struct CapturedTable {
    std::string label;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::string dir_;
  std::vector<std::pair<std::string, Metric>> config_;
  std::vector<Series> series_;
  std::vector<CapturedTable> tables_;
  CounterRegistry counters_;
  bool written_ = false;
};

}  // namespace sd::obs
