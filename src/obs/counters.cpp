#include "obs/counters.hpp"

#include "obs/json.hpp"

namespace sd::obs {

void CounterRegistry::set(std::string name, std::uint64_t v) {
  CounterValue cv;
  cv.kind = CounterValue::Kind::kUint;
  cv.u = v;
  counters_[std::move(name)] = cv;
}

void CounterRegistry::set(std::string name, double v) {
  CounterValue cv;
  cv.kind = CounterValue::Kind::kDouble;
  cv.d = v;
  counters_[std::move(name)] = cv;
}

void CounterRegistry::add(std::string name, std::uint64_t v) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    set(std::move(name), v);
  } else if (it->second.kind == CounterValue::Kind::kUint) {
    it->second.u += v;
  } else {
    it->second.d += static_cast<double>(v);
  }
}

void CounterRegistry::add(std::string name, double v) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    set(std::move(name), v);
  } else {
    if (it->second.kind == CounterValue::Kind::kUint) {
      it->second.d = static_cast<double>(it->second.u) + v;
      it->second.kind = CounterValue::Kind::kDouble;
    } else {
      it->second.d += v;
    }
  }
}

bool CounterRegistry::has(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

double CounterRegistry::get_or(std::string_view name, double fallback) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? fallback : it->second.as_double();
}

std::uint64_t CounterRegistry::get_uint_or(std::string_view name,
                                           std::uint64_t fallback) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return fallback;
  return it->second.kind == CounterValue::Kind::kUint
             ? it->second.u
             : static_cast<std::uint64_t>(it->second.d);
}

void CounterRegistry::merge(const CounterRegistry& other,
                            std::string_view prefix) {
  for (const auto& [name, value] : other.entries()) {
    std::string key = prefix.empty() ? name : std::string(prefix) + "." + name;
    counters_[std::move(key)] = value;
  }
}

std::string CounterRegistry::json() const {
  JsonWriter w;
  w.begin_object();
  for (const auto& [name, value] : counters_) {
    w.key(name);
    if (value.kind == CounterValue::Kind::kUint) {
      w.value(value.u);
    } else {
      w.value(value.d);
    }
  }
  w.end_object();
  return w.take();
}

bool CounterRegistry::write_json(const std::string& path) const {
  return write_text_file(path, json());
}

}  // namespace sd::obs
