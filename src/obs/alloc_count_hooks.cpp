// Counting replacements for the global allocation functions.
//
// This translation unit is deliberately NOT part of sd_obs: replacing
// operator new/delete is a whole-binary decision, so the hooks live in their
// own static library (sd_alloc_count) that only allocation-auditing binaries
// link. Linking it flips sd::obs::alloc_counting_available() to true.
//
// The replacements must themselves be allocation-free: they only touch
// malloc/free and the relaxed atomics in alloc_count.cpp.
#include "obs/alloc_count.hpp"

#ifndef SD_OBS_ENABLED
#define SD_OBS_ENABLED 1
#endif

#if SD_OBS_ENABLED

#include <cstdlib>
#include <new>

namespace {

void* counted_alloc(std::size_t size) {
  const std::size_t request = size == 0 ? 1 : size;
  for (;;) {
    if (void* p = std::malloc(request)) {
      sd::obs::detail::count_allocation(static_cast<std::uint64_t>(size));
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  const std::size_t request = size == 0 ? align : size;
  for (;;) {
    void* p = nullptr;
    if (::posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                         request) == 0) {
      sd::obs::detail::count_allocation(static_cast<std::uint64_t>(size));
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  sd::obs::detail::count_deallocation();
  std::free(p);
}

/// Static-init side effect that tells alloc_count.cpp the hooks are present.
struct HookRegistrar {
  HookRegistrar() noexcept { sd::obs::detail::mark_alloc_hooks_linked(); }
};
[[maybe_unused]] const HookRegistrar g_hook_registrar;

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return counted_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return counted_alloc_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // SD_OBS_ENABLED
