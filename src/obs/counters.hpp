// CounterRegistry: one named-counter interface behind which the repo's
// previously disconnected accounting structs — DecodeStats (src/decode),
// the FPGA cycle ledger (src/fpga CycleBreakdown / FpgaRunReport), and the
// serving runtime's ServerMetrics (src/serve) — are unified.
//
// Each struct keeps its typed form for hot-path accumulation (counters are
// bumped millions of times per decode; a map lookup there would be absurd)
// and gains an `export_counters(registry, prefix)` adapter that pours a
// snapshot into the registry at reporting time. The registry then renders
// one flat, dotted-name JSON object ("decode.nodes_expanded",
// "fpga.cycles.gemm", "serve.e2e.p99_s", ...) so dashboards, the bench
// reporter, and --metrics-json dumps all speak the same schema.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace sd::obs {

/// A counter value: exact 64-bit for event counts (flops overflow a double's
/// 53-bit mantissa), floating point for seconds/ratios.
struct CounterValue {
  enum class Kind : std::uint8_t { kUint, kDouble };
  Kind kind = Kind::kUint;
  std::uint64_t u = 0;
  double d = 0.0;

  [[nodiscard]] double as_double() const noexcept {
    return kind == Kind::kUint ? static_cast<double>(u) : d;
  }
};

/// Ordered name -> value snapshot store. Not thread-safe: fill it from one
/// thread at reporting time (the hot-path structs it snapshots have their own
/// synchronization story).
class CounterRegistry {
 public:
  void set(std::string name, std::uint64_t v);
  void set(std::string name, double v);
  /// Adds onto an existing counter (creating it at zero). Mixing kinds
  /// promotes the counter to double.
  void add(std::string name, std::uint64_t v);
  void add(std::string name, double v);

  [[nodiscard]] bool has(std::string_view name) const;
  /// Numeric read regardless of kind; `fallback` when absent.
  [[nodiscard]] double get_or(std::string_view name,
                              double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t get_uint_or(std::string_view name,
                                          std::uint64_t fallback = 0) const;

  [[nodiscard]] usize size() const noexcept { return counters_.size(); }
  [[nodiscard]] bool empty() const noexcept { return counters_.empty(); }
  [[nodiscard]] const std::map<std::string, CounterValue, std::less<>>&
  entries() const noexcept {
    return counters_;
  }

  /// Copies every counter of `other` into this registry under
  /// "<prefix>.<name>" (or verbatim with an empty prefix).
  void merge(const CounterRegistry& other, std::string_view prefix = "");

  void clear() noexcept { counters_.clear(); }

  /// One flat JSON object, keys in sorted order.
  [[nodiscard]] std::string json() const;
  /// Writes json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  std::map<std::string, CounterValue, std::less<>> counters_;
};

}  // namespace sd::obs
