#include "obs/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace sd::obs {

namespace {

void emit_metric(JsonWriter& w, const Metric& m) {
  switch (m.kind) {
    case Metric::Kind::kDouble: w.value(m.d); break;
    case Metric::Kind::kInt: w.value(m.i); break;
    case Metric::Kind::kUint: w.value(m.u); break;
    case Metric::Kind::kBool: w.value(m.b); break;
    case Metric::Kind::kString: w.value(m.s); break;
  }
}

/// Emits a table cell: a cell that parses completely as a finite number goes
/// out as a number so diffs of captured tables stay numeric; everything else
/// ("35.8x", "yes", "") stays a string.
void emit_cell(JsonWriter& w, const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0' && std::isfinite(v)) {
      w.value(v);
      return;
    }
  }
  w.value(cell);
}

}  // namespace

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {
  SD_CHECK(!name_.empty(), "bench report needs a name");
  const char* dir = std::getenv("SD_BENCH_JSON_DIR");
  dir_ = (dir != nullptr && *dir != '\0') ? dir : ".";
}

BenchReporter::~BenchReporter() {
  if (!written_) {
    try {
      write();
    } catch (...) {  // NOLINT(bugprone-empty-catch) best-effort on teardown
    }
  }
}

void BenchReporter::config(std::string_view key, Metric value) {
  config_.emplace_back(std::string(key), std::move(value));
}

void BenchReporter::row(std::string_view label,
                        std::vector<std::pair<std::string, Metric>> cells) {
  for (Series& s : series_) {
    if (s.label == label) {
      s.rows.push_back(std::move(cells));
      return;
    }
  }
  Series s;
  s.label = std::string(label);
  s.rows.push_back(std::move(cells));
  series_.push_back(std::move(s));
}

void BenchReporter::add_table(std::string_view label, const Table& table) {
  CapturedTable ct;
  ct.label = std::string(label);
  ct.headers = table.headers();
  ct.rows = table.data_rows();
  tables_.push_back(std::move(ct));
}

void BenchReporter::counters(const CounterRegistry& registry,
                             std::string_view prefix) {
  counters_.merge(registry, prefix);
}

std::string BenchReporter::path() const {
  return dir_ + "/BENCH_" + name_ + ".json";
}

bool BenchReporter::enabled() { return env_int_or("SD_BENCH_JSON", 1) != 0; }

std::string BenchReporter::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("spheredec.bench");
  w.key("schema_version").value(std::int64_t{1});
  w.key("name").value(name_);
  w.key("config").begin_object();
  for (const auto& [key, value] : config_) {
    w.key(key);
    emit_metric(w, value);
  }
  w.end_object();
  w.key("series").begin_array();
  for (const Series& s : series_) {
    w.begin_object();
    w.key("label").value(s.label);
    w.key("rows").begin_array();
    for (const auto& cells : s.rows) {
      w.begin_object();
      for (const auto& [key, value] : cells) {
        w.key(key);
        emit_metric(w, value);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("tables").begin_array();
  for (const CapturedTable& t : tables_) {
    w.begin_object();
    w.key("label").value(t.label);
    w.key("headers").begin_array();
    for (const std::string& h : t.headers) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& cells : t.rows) {
      w.begin_array();
      for (const std::string& cell : cells) emit_cell(w, cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (!counters_.empty()) {
    w.key("counters").begin_object();
    for (const auto& [cname, value] : counters_.entries()) {
      w.key(cname);
      if (value.kind == CounterValue::Kind::kUint) {
        w.value(value.u);
      } else {
        w.value(value.d);
      }
    }
    w.end_object();
  }
  w.end_object();
  return w.take();
}

bool BenchReporter::write() {
  written_ = true;
  if (!enabled()) return true;
  const std::string out_path = path();
  const bool ok = write_text_file(out_path, json());
  if (ok) {
    std::printf("bench report: %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "bench report: failed to write %s\n",
                 out_path.c_str());
  }
  return ok;
}

}  // namespace sd::obs
