// Opt-in global heap-allocation counting.
//
// The allocation-free decode hot path (decode/decode_scratch.hpp) is a
// load-bearing property: the serve/dispatch latency tails regress silently if
// a per-frame allocation sneaks back in. These counters make the property
// testable. The atomic counters themselves always exist (cheap, zero when
// unused); the operator new/delete replacements that feed them live in the
// SEPARATE static library `sd_alloc_count`, which only binaries that want
// counting (tests/test_alloc_free) link — nothing else in the project pays
// for interposed allocation, and the replacement is gated on SPHEREDEC_OBS
// like the rest of the observability layer.
#pragma once

#include <cstdint>
#include <string_view>

namespace sd::obs {

class CounterRegistry;

/// Snapshot of global heap traffic since start (or the last reset).
struct AllocCounts {
  std::uint64_t allocations = 0;    ///< operator new / new[] calls
  std::uint64_t deallocations = 0;  ///< operator delete / delete[] calls
  std::uint64_t bytes = 0;          ///< total bytes requested from new
};

/// True when the counting operator new/delete replacements are linked into
/// this binary (target sd_alloc_count) and observability is compiled in.
/// When false, alloc_counts() stays all-zero.
[[nodiscard]] bool alloc_counting_available() noexcept;

[[nodiscard]] AllocCounts alloc_counts() noexcept;

/// Zeroes the counters (test-scoped measurement windows).
void reset_alloc_counts() noexcept;

/// Pours a snapshot into the registry as "<prefix>.allocations" etc., plus
/// "<prefix>.available" so consumers can tell zero-traffic from not-linked.
void export_alloc_counters(CounterRegistry& registry,
                           std::string_view prefix = "alloc");

namespace detail {
/// Called by the sd_alloc_count hooks; not for direct use.
void count_allocation(std::uint64_t bytes) noexcept;
void count_deallocation() noexcept;
void mark_alloc_hooks_linked() noexcept;
}  // namespace detail

}  // namespace sd::obs
