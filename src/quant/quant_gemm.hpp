// Int16 split-complex level-GEMM kernel family for the quantized BFS.
//
// Computes the quantized analogue of the BFS level product z = A * S:
//
//   A — the zr x k level slice of quantized R, as SEPARATE int16 SoA planes
//       (a_re, a_im), both Q(f);
//   S — the k x n batched symbol matrix, as INTERLEAVED (re, im) int16
//       pairs: s_ri is k x 2n with row t = [re(t,0), im(t,0), re(t,1), ...].
//       The pairing is what lets _mm256_madd_epi16 form a full complex
//       multiply half (br*x + bi*y) in ONE instruction;
//   Z — zr x n int32 SoA planes (z_re, z_im), exact Q(2f) products.
//
// The AVX2 path broadcasts, per (output row, k-step), a 32-bit coefficient
// packing (ar, -ai) for the real half and (ai, ar) for the imag half, then
// madd-accumulates 8 complex columns per 256-bit lane. The scalar reference
// performs the identical integer arithmetic, so AVX2 vs scalar is EXACTLY
// equal (integer math has no rounding), pinned by tests/test_quant.cpp.
//
// Overflow contract: operands are Q(f) produced under a QuantSpec whose
// accumulation bound keeps every dot product under 2^30 (quant_spec.hpp);
// madd's internal pair-sum is bounded by 2 * kQuantMax^2 < 2^31 regardless.
// Inputs respecting the calibration can never wrap. See DESIGN.md §15.
#pragma once

#include <span>

#include "linalg/gemm.hpp"
#include "quant/quant_spec.hpp"

namespace sd::quant {

/// Max K depth of one level product, mirroring kGemmKc for the float
/// kernels; the AVX2 path packs per-row coefficient arrays of this length.
inline constexpr index_t kQuantGemmMaxK = kGemmKc;

/// True iff the AVX2 int16 kernel is compiled in AND the CPU supports it.
[[nodiscard]] bool qgemm_int16_available() noexcept;

/// The kernel qgemm_level resolves to right now: kScalar or kSoa (= the
/// AVX2 madd path). Honors the same process-wide override as the float
/// kernels (set_gemm_kernel_override / SD_GEMM_KERNEL): a forced kScalar
/// forces the scalar reference; anything else takes AVX2 when available.
/// The choice never changes results — both kernels are exact.
[[nodiscard]] GemmKernel active_quant_kernel() noexcept;

/// z = A * S (shapes and layouts in the header comment). z_re/z_im are
/// reshaped by the callee (allocation-free at high-water capacity) and
/// OVERWRITTEN. Dispatches per active_quant_kernel().
void qgemm_level(const I16Mat& a_re, const I16Mat& a_im, const I16Mat& s_ri,
                 I32Mat& z_re, I32Mat& z_im);

/// The scalar reference, unconditionally.
void qgemm_level_scalar(const I16Mat& a_re, const I16Mat& a_im,
                        const I16Mat& s_ri, I32Mat& z_re, I32Mat& z_im);

/// The AVX2 madd kernel, unconditionally. Throws sd::invalid_argument_error
/// when !qgemm_int16_available(); use qgemm_level for graceful dispatch.
void qgemm_level_avx2(const I16Mat& a_re, const I16Mat& a_im,
                      const I16Mat& s_ri, I32Mat& z_re, I32Mat& z_im);

/// Grouped (block-diagonal) variant — the quantized wide-BFS primitive,
/// sharing GemmGroup with the float path. a_re/a_im stack per-frame zr x k
/// blocks side by side (group g's block starts at column g.a_col); group g
/// covers COMPLEX columns [g.col, g.col + g.cols) of Z, i.e. int16 columns
/// [2*g.col, ...) of s_ri. Groups must be pairwise disjoint in Z; uncovered
/// columns are left untouched. Requires k <= kQuantGemmMaxK.
void qgemm_level_grouped(const I16Mat& a_re, const I16Mat& a_im, index_t k,
                         const I16Mat& s_ri, I32Mat& z_re, I32Mat& z_im,
                         std::span<const GemmGroup> groups);

/// Bytes touched by one zr x n x k quantized level product (int16 operands,
/// int32 outputs) — the cost-model/bandwidth analogue of the float path's
/// sizeof(cplx) accounting.
[[nodiscard]] constexpr std::uint64_t qgemm_bytes(index_t zr, index_t n,
                                                  index_t k) noexcept {
  return 4ull * static_cast<std::uint64_t>(zr) * static_cast<std::uint64_t>(k) +
         4ull * static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(n) +
         8ull * static_cast<std::uint64_t>(zr) * static_cast<std::uint64_t>(n);
}

namespace detail {
[[nodiscard]] bool qgemm_avx2_compiled() noexcept;
[[nodiscard]] bool qgemm_avx2_runtime_ok() noexcept;

/// Raw-pointer block kernel (AVX2 TU): computes one zr x n block given row
/// strides in ELEMENTS (int16 for a/s, int32 for z). s points at the first
/// (re, im) pair of the block's first column; n is complex columns.
void qgemm_block_avx2(const std::int16_t* a_re, const std::int16_t* a_im,
                      usize a_stride, const std::int16_t* s, usize s_stride,
                      std::int32_t* z_re, std::int32_t* z_im, usize z_stride,
                      index_t zr, index_t k, index_t n);
/// Scalar twin of qgemm_block_avx2 — identical integer arithmetic.
void qgemm_block_scalar(const std::int16_t* a_re, const std::int16_t* a_im,
                        usize a_stride, const std::int16_t* s, usize s_stride,
                        std::int32_t* z_re, std::int32_t* z_im, usize z_stride,
                        index_t zr, index_t k, index_t n);
}  // namespace detail

}  // namespace sd::quant
