// AVX2 int16 split-complex level-GEMM micro-kernel.
//
// Layout recap (quant_gemm.hpp): A is int16 SoA planes, S interleaves
// (re, im) int16 pairs, Z is int32 SoA planes. Per output row i the kernel
// pre-packs two int32 coefficient arrays over the K depth:
//
//   coef_re[t] = pack16(ar,  -ai)   // low half ar, high half -ai
//   coef_im[t] = pack16(ai,   ar)
//
// One 256-bit load of S row t covers 8 complex columns as [re, im] 16-bit
// pairs; _mm256_madd_epi16 against the broadcast coefficient then yields,
// per 32-bit lane,
//
//   re half: br*ar + bi*(-ai) = Re(a * b)
//   im half: br*ai + bi*ar    = Im(a * b)
//
// i.e. a full complex MAC half per instruction — 2 int16 MACs per 32-bit
// lane, double the lane width of the float SoA kernel. Integer arithmetic
// is exact, so this kernel EQUALS the scalar reference bit-for-bit (no
// determinism caveats about contraction or reduction order). The symmetric
// quantization range (|q| <= 32767, quant_spec.hpp) makes -ai always
// representable; the QuantSpec accumulation bound keeps every dot product,
// and hence every madd pair-sum, inside int32.
//
// The TU is compiled with -mavx2 only where the compiler supports it; on
// other targets it degrades to stubs reporting the kernel unavailable.
#include "quant/quant_gemm.hpp"

#include "common/error.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace sd::quant::detail {

bool qgemm_avx2_compiled() noexcept {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

bool qgemm_avx2_runtime_ok() noexcept {
#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if !defined(__AVX2__)

void qgemm_block_avx2(const std::int16_t*, const std::int16_t*, usize,
                      const std::int16_t*, usize, std::int32_t*, std::int32_t*,
                      usize, index_t, index_t, index_t) {
  SD_CHECK(false, "AVX2 int16 kernel not compiled into this binary");
}

#else

void qgemm_block_avx2(const std::int16_t* a_re, const std::int16_t* a_im,
                      usize a_stride, const std::int16_t* s, usize s_stride,
                      std::int32_t* z_re, std::int32_t* z_im, usize z_stride,
                      index_t zr, index_t k, index_t n) {
  SD_CHECK(k <= kQuantGemmMaxK, "quant GEMM K depth exceeds panel");
  // Stack-resident coefficient panels (<= 1 KiB): allocation-free always.
  alignas(32) std::int32_t coef_re[kQuantGemmMaxK];
  alignas(32) std::int32_t coef_im[kQuantGemmMaxK];

  for (index_t i = 0; i < zr; ++i) {
    const std::int16_t* ar_row = a_re + static_cast<usize>(i) * a_stride;
    const std::int16_t* ai_row = a_im + static_cast<usize>(i) * a_stride;
    for (index_t t = 0; t < k; ++t) {
      const std::uint16_t ar = static_cast<std::uint16_t>(ar_row[t]);
      const std::uint16_t ai = static_cast<std::uint16_t>(ai_row[t]);
      const std::uint16_t nai =
          static_cast<std::uint16_t>(-static_cast<std::int16_t>(ai));
      coef_re[t] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ar) |
          (static_cast<std::uint32_t>(nai) << 16));
      coef_im[t] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(ai) |
          (static_cast<std::uint32_t>(ar) << 16));
    }
    std::int32_t* zr_row = z_re + static_cast<usize>(i) * z_stride;
    std::int32_t* zi_row = z_im + static_cast<usize>(i) * z_stride;
    index_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256i acc_re = _mm256_setzero_si256();
      __m256i acc_im = _mm256_setzero_si256();
      const std::int16_t* sp = s + 2 * static_cast<usize>(j);
      for (index_t t = 0; t < k; ++t, sp += s_stride) {
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sp));
        acc_re = _mm256_add_epi32(
            acc_re, _mm256_madd_epi16(b, _mm256_set1_epi32(coef_re[t])));
        acc_im = _mm256_add_epi32(
            acc_im, _mm256_madd_epi16(b, _mm256_set1_epi32(coef_im[t])));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(zr_row + j), acc_re);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(zi_row + j), acc_im);
    }
    // Column tail: the same integer ops, scalar lanes.
    for (; j < n; ++j) {
      std::int32_t acc_re = 0;
      std::int32_t acc_im = 0;
      const std::int16_t* sp = s + 2 * static_cast<usize>(j);
      for (index_t t = 0; t < k; ++t, sp += s_stride) {
        const std::int32_t ar = ar_row[t];
        const std::int32_t ai = ai_row[t];
        const std::int32_t br = sp[0];
        const std::int32_t bi = sp[1];
        acc_re += br * ar + bi * -ai;
        acc_im += br * ai + bi * ar;
      }
      zr_row[j] = acc_re;
      zi_row[j] = acc_im;
    }
  }
}

#endif  // __AVX2__

}  // namespace sd::quant::detail
