#include "quant/quant_spec.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sd::quant {

namespace detail {

std::atomic<std::uint64_t>& prep_saturation_slot() noexcept {
  static std::atomic<std::uint64_t> slot{0};
  return slot;
}

}  // namespace detail

std::uint64_t prep_saturation_count() noexcept {
  return detail::prep_saturation_slot().load(std::memory_order_relaxed);
}

QuantSpec calibrate_quant_spec(const CMat& r, real sym_bound) {
  SD_CHECK(r.rows() == r.cols(), "quant calibration expects a square R");
  SD_CHECK(sym_bound > 0, "symbol bound must be positive");

  const index_t m = r.rows();
  real max_comp = 0;
  real max_row_sum = 0;
  for (index_t i = 0; i < m; ++i) {
    real row_sum = 0;
    for (index_t j = i; j < m; ++j) {
      const real re = std::abs(r(i, j).real());
      const real im = std::abs(r(i, j).imag());
      max_comp = std::max(max_comp, std::max(re, im));
      row_sum += re + im;
    }
    max_row_sum = std::max(max_row_sum, row_sum);
  }

  // Storage: the largest component we ever quantize with this scale is a
  // frame target ybar = R s + n; 8x (3 bits) headroom over max(R, symbol)
  // components covers it at every operating SNR this repo benchmarks.
  const double bound_store =
      std::max(static_cast<double>(max_comp), static_cast<double>(sym_bound)) *
      8.0;
  const int f_store = static_cast<int>(
      std::floor(std::log2(static_cast<double>(kQuantMax) / bound_store)));

  // Accumulation: a level dot product is bounded by row_sum * sym_bound in
  // real value, i.e. that * 2^(2f) in Q(2f); keep it under 2^30 so the
  // int32 accumulator has a guard bit (and madd pair-sums never wrap).
  const double accum_bound = std::max(
      static_cast<double>(max_row_sum) * static_cast<double>(sym_bound), 1e-6);
  const int f_accum =
      static_cast<int>(std::floor((30.0 - std::log2(accum_bound)) / 2.0));

  QuantSpec spec;
  spec.frac_bits =
      std::clamp(std::min(f_store, f_accum), kQuantMinFracBits, kQuantMaxFracBits);
  spec.scale = static_cast<real>(1u << spec.frac_bits);
  spec.inv_scale = real{1} / spec.scale;
  spec.inv_scale2 = 1.0 / static_cast<double>(1u << spec.frac_bits) /
                    static_cast<double>(1u << spec.frac_bits);
  spec.r_max_comp = max_comp;
  spec.r_row_sum = max_row_sum;
  spec.sym_bound = sym_bound;
  return spec;
}

void quantize_channel_prep(const CMat& r, QuantChannelPrep& out) {
  out.spec = calibrate_quant_spec(r);
  const index_t m = r.rows();
  out.r_re.reshape(m, m);
  out.r_im.reshape(m, m);
  std::uint64_t clamps = 0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < m; ++j) {
      if (j < i) {
        // reshape does not clear: the lower triangle must be written too.
        out.r_re(i, j) = 0;
        out.r_im(i, j) = 0;
      } else {
        out.r_re(i, j) = quantize_sat(r(i, j).real(), out.spec, clamps);
        out.r_im(i, j) = quantize_sat(r(i, j).imag(), out.spec, clamps);
      }
    }
  }
  if (clamps != 0) {
    detail::prep_saturation_slot().fetch_add(clamps, std::memory_order_relaxed);
  }
}

}  // namespace sd::quant
