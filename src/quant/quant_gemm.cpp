#include "quant/quant_gemm.hpp"

#include "common/error.hpp"

namespace sd::quant {

bool qgemm_int16_available() noexcept {
  // Same availability shape as gemm_soa_available(): compiled-in AND the
  // executing CPU has AVX2, probed once.
  static const bool ok =
      detail::qgemm_avx2_compiled() && detail::qgemm_avx2_runtime_ok();
  return ok;
}

GemmKernel active_quant_kernel() noexcept {
  if (gemm_kernel_override() == GemmKernel::kScalar) return GemmKernel::kScalar;
  return qgemm_int16_available() ? GemmKernel::kSoa : GemmKernel::kScalar;
}

namespace detail {

void qgemm_block_scalar(const std::int16_t* a_re, const std::int16_t* a_im,
                        usize a_stride, const std::int16_t* s, usize s_stride,
                        std::int32_t* z_re, std::int32_t* z_im, usize z_stride,
                        index_t zr, index_t k, index_t n) {
  for (index_t i = 0; i < zr; ++i) {
    const std::int16_t* ar_row = a_re + static_cast<usize>(i) * a_stride;
    const std::int16_t* ai_row = a_im + static_cast<usize>(i) * a_stride;
    std::int32_t* zr_row = z_re + static_cast<usize>(i) * z_stride;
    std::int32_t* zi_row = z_im + static_cast<usize>(i) * z_stride;
    for (index_t j = 0; j < n; ++j) {
      std::int32_t acc_re = 0;
      std::int32_t acc_im = 0;
      const std::int16_t* sp = s + 2 * static_cast<usize>(j);
      for (index_t t = 0; t < k; ++t, sp += s_stride) {
        // The madd decomposition: (br, bi) dotted against (ar, -ai) for the
        // real half and (ai, ar) for the imag half — same integer ops the
        // AVX2 kernel performs, hence exact equality.
        const std::int32_t ar = ar_row[t];
        const std::int32_t ai = ai_row[t];
        const std::int32_t br = sp[0];
        const std::int32_t bi = sp[1];
        acc_re += br * ar + bi * -ai;
        acc_im += br * ai + bi * ar;
      }
      zr_row[j] = acc_re;
      zi_row[j] = acc_im;
    }
  }
}

}  // namespace detail

namespace {

struct QgemmShape {
  index_t zr;
  index_t k;
  index_t n;
};

QgemmShape check_shapes(const I16Mat& a_re, const I16Mat& a_im,
                        const I16Mat& s_ri) {
  SD_CHECK(a_re.rows() == a_im.rows() && a_re.cols() == a_im.cols(),
           "quant GEMM A planes must agree in shape");
  SD_CHECK(s_ri.cols() % 2 == 0,
           "quant GEMM S operand must interleave (re, im) pairs");
  SD_CHECK(a_re.cols() == s_ri.rows(),
           "quant GEMM inner dimensions must agree");
  SD_CHECK(a_re.cols() <= kQuantGemmMaxK, "quant GEMM K depth exceeds panel");
  return {a_re.rows(), a_re.cols(), s_ri.cols() / 2};
}

}  // namespace

void qgemm_level_scalar(const I16Mat& a_re, const I16Mat& a_im,
                        const I16Mat& s_ri, I32Mat& z_re, I32Mat& z_im) {
  const QgemmShape sh = check_shapes(a_re, a_im, s_ri);
  z_re.reshape(sh.zr, sh.n);
  z_im.reshape(sh.zr, sh.n);
  detail::qgemm_block_scalar(a_re.data(), a_im.data(),
                             static_cast<usize>(a_re.cols()), s_ri.data(),
                             static_cast<usize>(s_ri.cols()), z_re.data(),
                             z_im.data(), static_cast<usize>(sh.n), sh.zr,
                             sh.k, sh.n);
}

void qgemm_level_avx2(const I16Mat& a_re, const I16Mat& a_im,
                      const I16Mat& s_ri, I32Mat& z_re, I32Mat& z_im) {
  SD_CHECK(qgemm_int16_available(),
           "AVX2 int16 kernel unavailable on this CPU/build");
  const QgemmShape sh = check_shapes(a_re, a_im, s_ri);
  z_re.reshape(sh.zr, sh.n);
  z_im.reshape(sh.zr, sh.n);
  detail::qgemm_block_avx2(a_re.data(), a_im.data(),
                           static_cast<usize>(a_re.cols()), s_ri.data(),
                           static_cast<usize>(s_ri.cols()), z_re.data(),
                           z_im.data(), static_cast<usize>(sh.n), sh.zr, sh.k,
                           sh.n);
}

void qgemm_level(const I16Mat& a_re, const I16Mat& a_im, const I16Mat& s_ri,
                 I32Mat& z_re, I32Mat& z_im) {
  if (active_quant_kernel() == GemmKernel::kSoa) {
    qgemm_level_avx2(a_re, a_im, s_ri, z_re, z_im);
  } else {
    qgemm_level_scalar(a_re, a_im, s_ri, z_re, z_im);
  }
}

void qgemm_level_grouped(const I16Mat& a_re, const I16Mat& a_im, index_t k,
                         const I16Mat& s_ri, I32Mat& z_re, I32Mat& z_im,
                         std::span<const GemmGroup> groups) {
  SD_CHECK(a_re.rows() == a_im.rows() && a_re.cols() == a_im.cols(),
           "quant GEMM A planes must agree in shape");
  SD_CHECK(k > 0 && k <= kQuantGemmMaxK, "quant GEMM K depth exceeds panel");
  SD_CHECK(s_ri.rows() == k, "quant GEMM inner dimensions must agree");
  SD_CHECK(s_ri.cols() % 2 == 0,
           "quant GEMM S operand must interleave (re, im) pairs");
  const index_t n = s_ri.cols() / 2;
  SD_CHECK(z_re.rows() == a_re.rows() && z_re.cols() == n &&
               z_im.rows() == a_re.rows() && z_im.cols() == n,
           "quant grouped GEMM output shape mismatch");

  const bool avx2 = active_quant_kernel() == GemmKernel::kSoa;
  const usize a_stride = static_cast<usize>(a_re.cols());
  const usize s_stride = static_cast<usize>(s_ri.cols());
  const usize z_stride = static_cast<usize>(n);
  for (const GemmGroup& g : groups) {
    if (g.cols <= 0) continue;
    SD_CHECK(g.col >= 0 && g.col + g.cols <= n &&
                 g.a_col >= 0 && g.a_col + k <= a_re.cols(),
             "quant grouped GEMM group out of range");
    const std::int16_t* ar = a_re.data() + static_cast<usize>(g.a_col);
    const std::int16_t* ai = a_im.data() + static_cast<usize>(g.a_col);
    const std::int16_t* s = s_ri.data() + 2 * static_cast<usize>(g.col);
    std::int32_t* zr_p = z_re.data() + static_cast<usize>(g.col);
    std::int32_t* zi_p = z_im.data() + static_cast<usize>(g.col);
    if (avx2) {
      detail::qgemm_block_avx2(ar, ai, a_stride, s, s_stride, zr_p, zi_p,
                               z_stride, z_re.rows(), k, g.cols);
    } else {
      detail::qgemm_block_scalar(ar, ai, a_stride, s, s_stride, zr_p, zi_p,
                                 z_stride, z_re.rows(), k, g.cols);
    }
  }
}

}  // namespace sd::quant
