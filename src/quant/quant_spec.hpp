// Fixed-point calibration for the quantized (int16/int32) decode path.
//
// The paper's FPGA datapath is fixed-point end to end; the CPU decoders were
// float-complex. This module gives every channel a QuantSpec — a per-channel
// POWER-OF-TWO scale 2^f with int16 storage and int32 accumulation — derived
// at preprocess time from the triangular factor R and a universal
// constellation amplitude bound, so the quantized search can:
//
//   - store R, the constellation, and the per-frame targets as Q(f) int16
//     (value v -> round(v * 2^f), saturated to the symmetric range
//     [-kQuantMax, kQuantMax]; -32768 is never produced, which keeps the
//     AVX2 kernel's negated-imag trick overflow-free),
//   - accumulate level products exactly in Q(2f) int32 (the calibration
//     bounds the worst-case dot product under 2^30, one guard bit), and
//   - requantize the per-level residual back to Q(f) int16 between BFS
//     levels (round-half-up shift, saturating) — the narrowing a hardware
//     datapath performs at every pipeline register.
//
// The scale is derived from R alone plus kQuantSymbolBound (a component
// bound covering every unit-energy square QAM this repo ships), NOT from the
// live constellation — so a (fingerprint, kind) prep-cache key fully
// determines the quantized prep. See DESIGN.md §15.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

#include "linalg/matrix.hpp"

namespace sd::quant {

using I16Mat = Mat<std::int16_t>;
using I32Mat = Mat<std::int32_t>;

/// Symmetric int16 range: quantized magnitudes never exceed kQuantMax, so
/// negation (the kernel's conjugate trick) can never overflow.
inline constexpr std::int16_t kQuantMax = 32767;

/// Saturation value for int32 partial distances.
inline constexpr std::int32_t kQuantPdMax = 2147483647;

/// Component (per-axis) amplitude bound for unit-average-energy square QAM.
/// The worst shipped alphabet (64-QAM) peaks at ~1.08 per axis; 1.5 leaves
/// headroom for denser alphabets without wasting a full storage bit.
inline constexpr real kQuantSymbolBound = real{1.5};

inline constexpr int kQuantMinFracBits = 2;
inline constexpr int kQuantMaxFracBits = 14;

/// Per-channel fixed-point format: one power-of-two scale shared by R, the
/// constellation, and the frame targets.
struct QuantSpec {
  int frac_bits = 0;        ///< f: Q(f) storage, Q(2f) accumulation
  real scale = 1;           ///< 2^f
  real inv_scale = 1;       ///< 2^-f
  double inv_scale2 = 1.0;  ///< 2^-2f, dequantizes Q(2f) products/PDs
  // Calibration record (what bounded f), kept for tests and introspection.
  real r_max_comp = 0;   ///< max |Re/Im| over R's upper triangle
  real r_row_sum = 0;    ///< max over rows of sum(|Re| + |Im|)
  real sym_bound = 0;    ///< the component bound the calibration assumed

  [[nodiscard]] bool valid() const noexcept { return frac_bits > 0; }
};

/// Derives the Q(f) format for a triangular factor R:
///   storage:      max(r_max_comp, sym_bound) * 8 * 2^f <= kQuantMax
///                 (3 headroom bits cover the frame targets ybar = R s + n,
///                 which are quantized with the same scale per frame), and
///   accumulation: r_row_sum * sym_bound * 2^(2f) < 2^30
///                 (every level dot product, hence every madd partial sum,
///                 stays an exact int32 with one guard bit).
/// f is clamped to [kQuantMinFracBits, kQuantMaxFracBits].
[[nodiscard]] QuantSpec calibrate_quant_spec(const CMat& r,
                                             real sym_bound = kQuantSymbolBound);

/// Quantizes one real component to Q(f) int16, round-half-away-from-zero,
/// saturating to +-kQuantMax. `clamps` is incremented when saturation fires.
[[nodiscard]] inline std::int16_t quantize_sat(real v, const QuantSpec& spec,
                                               std::uint64_t& clamps) noexcept {
  const long q = std::lround(static_cast<double>(v) * spec.scale);
  if (q > kQuantMax) {
    ++clamps;
    return kQuantMax;
  }
  if (q < -kQuantMax) {
    ++clamps;
    return static_cast<std::int16_t>(-kQuantMax);
  }
  return static_cast<std::int16_t>(q);
}

/// Saturating requantize Q(2f) -> Q(f): round-half-up arithmetic shift by
/// frac_bits, then saturate to the symmetric int16 range. This is the
/// between-levels narrowing of the quantized BFS.
[[nodiscard]] inline std::int16_t requantize_sat(std::int32_t v, int frac_bits,
                                                 std::uint64_t& clamps) noexcept {
  const std::int32_t half = std::int32_t{1} << (frac_bits - 1);
  // v + half cannot overflow: |v| <= 2^30 by the accumulation bound.
  const std::int32_t shifted = (v + half) >> frac_bits;
  if (shifted > kQuantMax) {
    ++clamps;
    return kQuantMax;
  }
  if (shifted < -kQuantMax) {
    ++clamps;
    return static_cast<std::int16_t>(-kQuantMax);
  }
  return static_cast<std::int16_t>(shifted);
}

/// Saturating int32 partial-distance accumulate. `overflows` counts clamps;
/// a saturated PD compares as worst-possible and is pruned by any finite
/// radius.
[[nodiscard]] inline std::int32_t pd_add_sat(std::int32_t pd, std::int32_t inc,
                                             std::uint64_t& overflows) noexcept {
  const std::int64_t sum =
      static_cast<std::int64_t>(pd) + static_cast<std::int64_t>(inc);
  if (sum > kQuantPdMax) {
    ++overflows;
    return kQuantPdMax;
  }
  return static_cast<std::int32_t>(sum);
}

/// The int16-quantized channel half of a quantized prep: the calibration
/// plus R quantized into SoA (separate re/im) planes. Cached alongside the
/// float factorization in PreprocessedChannel for the quant PrepKinds.
struct QuantChannelPrep {
  QuantSpec spec;
  I16Mat r_re;  ///< m x m, Q(frac_bits); lower triangle explicitly zero
  I16Mat r_im;

  [[nodiscard]] bool valid() const noexcept { return spec.valid(); }
};

/// Calibrates and quantizes R into `out`, recycling its storage (reshape +
/// full overwrite: allocation-free once at high-water capacity). Saturation
/// here is counted process-wide (prep builds are shared across lanes); read
/// it back with prep_saturation_count().
void quantize_channel_prep(const CMat& r, QuantChannelPrep& out);

/// Process-wide count of int16 clamps during channel-prep quantization.
[[nodiscard]] std::uint64_t prep_saturation_count() noexcept;

namespace detail {
[[nodiscard]] std::atomic<std::uint64_t>& prep_saturation_slot() noexcept;
}  // namespace detail

}  // namespace sd::quant
