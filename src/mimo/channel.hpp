// Channel and noise models (the paper's System Model, §II-A).
//
// y = H s + n with H an N x M small-scale Rayleigh fading matrix (i.i.d.
// CN(0,1) entries) and n i.i.d. CN(0, sigma^2). SNR is defined per receive
// antenna: with unit-energy symbols each receive antenna collects average
// signal power M, so snr = M / sigma^2.
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "linalg/matrix.hpp"

namespace sd {

/// SNR (dB) -> noise variance sigma^2 for M transmit antennas and
/// unit-energy symbols.
[[nodiscard]] double snr_db_to_sigma2(double snr_db, index_t num_tx);

/// Inverse of snr_db_to_sigma2.
[[nodiscard]] double sigma2_to_snr_db(double sigma2, index_t num_tx);

/// Spatial correlation applied to the i.i.d. Rayleigh channel. The paper uses
/// the uncorrelated model; the exponential Kronecker model is an extension
/// for stress-testing detector robustness.
struct ChannelCorrelation {
  double tx_rho = 0.0;  ///< exponential correlation coefficient at the transmitter
  double rx_rho = 0.0;  ///< at the receiver
};

/// Generates channel realizations and noise from a seeded stream.
class ChannelModel {
 public:
  ChannelModel(index_t num_rx, index_t num_tx, std::uint64_t seed,
               ChannelCorrelation correlation = {});

  [[nodiscard]] index_t num_rx() const noexcept { return n_; }
  [[nodiscard]] index_t num_tx() const noexcept { return m_; }

  /// One small-scale fading realization H (N x M).
  [[nodiscard]] CMat draw_channel();

  /// Receive: y = H s + n with n ~ CN(0, sigma2 I).
  [[nodiscard]] CVec transmit(const CMat& h, std::span<const cplx> s,
                              double sigma2);

  /// Direct access to the underlying Gaussian stream (for tests).
  [[nodiscard]] GaussianSource& noise_source() noexcept { return gauss_; }

 private:
  index_t n_;
  index_t m_;
  ChannelCorrelation corr_;
  GaussianSource gauss_;
  CMat rx_root_;  ///< matrix square root of the receive correlation (or empty)
  CMat tx_root_;  ///< of the transmit correlation
};

}  // namespace sd
