// Pilot-based channel estimation.
//
// The paper (like most detection papers) assumes the channel estimate H is
// given; a deployed system must estimate it from pilots. This module
// provides least-squares and linear-MMSE estimators from orthogonal pilot
// bursts, so the experiments can quantify how estimation error degrades the
// sphere decoder's BER and inflates its search (imperfect CSI widens the
// residual sphere).
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "linalg/matrix.hpp"

namespace sd {

/// An orthogonal pilot burst: P (L x M) with L >= M and P^H P = L * I.
/// Rows are time slots, columns are transmit antennas.
[[nodiscard]] CMat orthogonal_pilots(index_t slots, index_t num_tx);

/// Received pilot burst Y = P H^T + N ... stored as received matrix
/// (L x N): each pilot slot's received vector is a row.
[[nodiscard]] CMat receive_pilots(const CMat& h, const CMat& pilots,
                                  double sigma2, GaussianSource& rng);

/// Least-squares estimate: H_ls = (P^+ Y)^T = (Y^T P*) / L for orthogonal P.
[[nodiscard]] CMat estimate_ls(const CMat& pilots, const CMat& received);

/// Linear-MMSE estimate assuming i.i.d. CN(0,1) channel entries:
/// a per-entry Wiener shrinkage of the LS estimate,
/// H_mmse = L / (L + sigma2) * H_ls.
[[nodiscard]] CMat estimate_lmmse(const CMat& pilots, const CMat& received,
                                  double sigma2);

/// Mean squared error between an estimate and the true channel, per entry.
[[nodiscard]] double estimation_mse(const CMat& h_true, const CMat& h_est);

}  // namespace sd
