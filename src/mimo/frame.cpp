#include "mimo/frame.hpp"

#include "common/error.hpp"

namespace sd {

TxVector random_tx(const Constellation& c, index_t num_tx,
                   GaussianSource& rng) {
  SD_CHECK(num_tx > 0, "num_tx must be positive");
  std::vector<index_t> indices(static_cast<usize>(num_tx));
  for (index_t& idx : indices) {
    idx = static_cast<index_t>(
        rng.next_index(static_cast<std::uint32_t>(c.order())));
  }
  return modulate(c, indices);
}

TxVector modulate(const Constellation& c, const std::vector<index_t>& indices) {
  TxVector tx;
  tx.indices = indices;
  tx.symbols.resize(indices.size());
  tx.bits.resize(indices.size() * static_cast<usize>(c.bits_per_symbol()));
  for (usize i = 0; i < indices.size(); ++i) {
    SD_CHECK(indices[i] >= 0 && indices[i] < c.order(),
             "symbol index out of range");
    tx.symbols[i] = c.point(indices[i]);
    c.index_to_bits(indices[i],
                    std::span<std::uint8_t>(tx.bits).subspan(
                        i * static_cast<usize>(c.bits_per_symbol())));
  }
  return tx;
}

std::vector<index_t> hard_slice(const Constellation& c,
                                std::span<const cplx> symbols) {
  std::vector<index_t> out(symbols.size());
  for (usize i = 0; i < symbols.size(); ++i) {
    out[i] = c.slice(symbols[i]);
  }
  return out;
}

std::vector<std::uint8_t> indices_to_bits(const Constellation& c,
                                          const std::vector<index_t>& indices) {
  std::vector<std::uint8_t> bits(indices.size() *
                                 static_cast<usize>(c.bits_per_symbol()));
  for (usize i = 0; i < indices.size(); ++i) {
    c.index_to_bits(indices[i],
                    std::span<std::uint8_t>(bits).subspan(
                        i * static_cast<usize>(c.bits_per_symbol())));
  }
  return bits;
}

}  // namespace sd
