#include "mimo/channel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/solve.hpp"

namespace sd {

double snr_db_to_sigma2(double snr_db, index_t num_tx) {
  SD_CHECK(num_tx > 0, "num_tx must be positive");
  const double snr_linear = std::pow(10.0, snr_db / 10.0);
  return static_cast<double>(num_tx) / snr_linear;
}

double sigma2_to_snr_db(double sigma2, index_t num_tx) {
  SD_CHECK(num_tx > 0 && sigma2 > 0.0, "invalid sigma2 or num_tx");
  return 10.0 * std::log10(static_cast<double>(num_tx) / sigma2);
}

namespace {

/// Exponential correlation matrix R_ij = rho^|i-j| and its Cholesky root.
CMat correlation_root(index_t n, double rho) {
  CMat r(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      r(i, j) = cplx{static_cast<real>(std::pow(rho, std::abs(i - j))), 0};
    }
  }
  return cholesky(r);
}

}  // namespace

ChannelModel::ChannelModel(index_t num_rx, index_t num_tx, std::uint64_t seed,
                           ChannelCorrelation correlation)
    : n_(num_rx), m_(num_tx), corr_(correlation), gauss_(seed) {
  SD_CHECK(n_ > 0 && m_ > 0, "antenna counts must be positive");
  SD_CHECK(n_ >= m_, "this system targets N >= M (at least as many receivers)");
  SD_CHECK(corr_.tx_rho >= 0.0 && corr_.tx_rho < 1.0 &&
               corr_.rx_rho >= 0.0 && corr_.rx_rho < 1.0,
           "correlation coefficients must be in [0, 1)");
  if (corr_.rx_rho > 0.0) rx_root_ = correlation_root(n_, corr_.rx_rho);
  if (corr_.tx_rho > 0.0) tx_root_ = correlation_root(m_, corr_.tx_rho);
}

CMat ChannelModel::draw_channel() {
  CMat h(n_, m_);
  for (cplx& v : h.flat()) {
    v = gauss_.next_cplx(1.0);
  }
  if (rx_root_.empty() && tx_root_.empty()) return h;

  // Kronecker model: H = Rr^{1/2} Hw (Rt^{1/2})^H.
  CMat tmp = h;
  if (!rx_root_.empty()) {
    gemm_naive(Op::kNone, cplx{1, 0}, rx_root_, h, cplx{0, 0}, tmp);
  }
  if (tx_root_.empty()) return tmp;
  const CMat tx_root_h = hermitian(tx_root_);
  CMat out(n_, m_);
  gemm_naive(Op::kNone, cplx{1, 0}, tmp, tx_root_h, cplx{0, 0}, out);
  return out;
}

CVec ChannelModel::transmit(const CMat& h, std::span<const cplx> s,
                            double sigma2) {
  SD_CHECK(h.rows() == n_ && h.cols() == m_, "channel shape mismatch");
  SD_CHECK(static_cast<index_t>(s.size()) == m_, "symbol vector length mismatch");
  SD_CHECK(sigma2 >= 0.0, "noise variance must be non-negative");
  CVec y(static_cast<usize>(n_), cplx{0, 0});
  gemv(Op::kNone, cplx{1, 0}, h, s, cplx{0, 0}, y);
  for (cplx& v : y) {
    v += gauss_.next_cplx(sigma2);
  }
  return y;
}

}  // namespace sd
