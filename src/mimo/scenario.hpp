// Monte-Carlo scenario generation: the paper's "testing data set is randomly
// generated using Monte Carlo simulations to emulate the MIMO system".
// A Scenario deterministically produces (H, s, y, sigma2) trial tuples from
// a seed, so every decoder sees byte-identical inputs.
#pragma once

#include <cstdint>

#include "mimo/channel.hpp"
#include "mimo/constellation.hpp"
#include "mimo/frame.hpp"

namespace sd {

/// Static description of one experimental configuration, e.g.
/// "10x10 MIMO, 4-QAM, SNR 8 dB".
struct ScenarioConfig {
  index_t num_tx = 10;                       ///< M (paper writes MxN as MxM)
  index_t num_rx = 10;                       ///< N
  Modulation modulation = Modulation::kQam4;
  double snr_db = 8.0;
  std::uint64_t seed = 1;
  ChannelCorrelation correlation = {};
  /// Channel coherence block: one channel realization is held for this many
  /// consecutive trials (block fading). 1 = i.i.d. per trial, reproducing
  /// the original stream byte-for-byte; symbols and noise still advance
  /// every trial either way.
  usize coherence_block = 1;

  [[nodiscard]] std::string label() const;
};

/// One Monte-Carlo trial: everything a detector needs plus the ground truth.
struct Trial {
  CMat h;                      ///< channel realization (N x M)
  TxVector tx;                 ///< transmitted ground truth
  CVec y;                      ///< received vector (length N)
  double sigma2 = 0.0;         ///< noise variance used
};

/// Deterministic trial stream for a configuration.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Constellation& constellation() const noexcept {
    return *constellation_;
  }
  [[nodiscard]] double sigma2() const noexcept { return sigma2_; }

  /// Generates the next trial in the stream.
  [[nodiscard]] Trial next();

 private:
  ScenarioConfig config_;
  const Constellation* constellation_;
  double sigma2_;
  ChannelModel channel_;
  GaussianSource symbol_rng_;
  usize trial_index_ = 0;
  CMat block_h_;  ///< current coherence block's realization (coherence > 1)
};

}  // namespace sd
