#include "mimo/ofdm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/fft.hpp"
#include "linalg/gemm.hpp"
#include "mimo/channel.hpp"

namespace sd {

std::vector<CMat> MultipathChannel::frequency_response(
    index_t subcarriers) const {
  SD_CHECK(is_pow2(static_cast<usize>(subcarriers)),
           "subcarrier count must be a power of two");
  SD_CHECK(!taps.empty(), "channel has no taps");
  SD_CHECK(static_cast<index_t>(taps.size()) <= subcarriers,
           "delay spread exceeds the FFT length");
  const index_t n = taps.front().rows();
  const index_t m = taps.front().cols();

  std::vector<CMat> response(static_cast<usize>(subcarriers), CMat(n, m));
  CVec impulse(static_cast<usize>(subcarriers));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < m; ++j) {
      std::fill(impulse.begin(), impulse.end(), cplx{0, 0});
      for (usize t = 0; t < taps.size(); ++t) {
        impulse[t] = taps[t](i, j);
      }
      fft_inplace(impulse);
      for (index_t f = 0; f < subcarriers; ++f) {
        response[static_cast<usize>(f)](i, j) = impulse[static_cast<usize>(f)];
      }
    }
  }
  return response;
}

OfdmLink::OfdmLink(OfdmConfig config, std::uint64_t seed)
    : config_(config),
      constellation_(&Constellation::get(config.modulation)),
      gauss_(seed) {
  SD_CHECK(is_pow2(static_cast<usize>(config_.subcarriers)),
           "subcarrier count must be a power of two");
  SD_CHECK(config_.num_taps >= 1 && config_.num_taps <= config_.subcarriers,
           "tap count must be in [1, subcarriers]");
  SD_CHECK(config_.tap_decay > 0.0 && config_.tap_decay <= 1.0,
           "tap decay must be in (0, 1]");
  SD_CHECK(config_.num_rx >= config_.num_tx && config_.num_tx > 0,
           "antenna counts must satisfy N >= M > 0");
}

MultipathChannel OfdmLink::draw_channel() {
  // Exponential power-delay profile p_t = decay^t, normalized to sum 1 so
  // per-subcarrier fading statistics match the flat CN(0,1) model.
  std::vector<double> powers(static_cast<usize>(config_.num_taps));
  double total = 0.0;
  for (usize t = 0; t < powers.size(); ++t) {
    powers[t] = std::pow(config_.tap_decay, static_cast<double>(t));
    total += powers[t];
  }
  MultipathChannel ch;
  ch.taps.reserve(powers.size());
  for (usize t = 0; t < powers.size(); ++t) {
    CMat tap(config_.num_rx, config_.num_tx);
    const double tap_var = powers[t] / total;
    for (cplx& v : tap.flat()) {
      v = gauss_.next_cplx(tap_var);
    }
    ch.taps.push_back(std::move(tap));
  }
  return ch;
}

OfdmLink::TxFrame OfdmLink::random_frame() {
  TxFrame frame;
  frame.carriers.reserve(static_cast<usize>(config_.subcarriers));
  for (index_t f = 0; f < config_.subcarriers; ++f) {
    frame.carriers.push_back(random_tx(*constellation_, config_.num_tx, gauss_));
  }
  return frame;
}

OfdmLink::RxFrame OfdmLink::transmit(const MultipathChannel& channel,
                                     const TxFrame& frame, double snr_db) {
  SD_CHECK(static_cast<index_t>(frame.carriers.size()) == config_.subcarriers,
           "frame subcarrier count mismatch");
  RxFrame rx;
  rx.h = channel.frequency_response(config_.subcarriers);
  rx.sigma2 = snr_db_to_sigma2(snr_db, config_.num_tx);
  rx.y.reserve(rx.h.size());
  for (usize f = 0; f < rx.h.size(); ++f) {
    CVec y(static_cast<usize>(config_.num_rx), cplx{0, 0});
    gemv(Op::kNone, cplx{1, 0}, rx.h[f], frame.carriers[f].symbols,
         cplx{0, 0}, y);
    for (cplx& v : y) {
      v += gauss_.next_cplx(rx.sigma2);
    }
    rx.y.push_back(std::move(y));
  }
  return rx;
}

}  // namespace sd
