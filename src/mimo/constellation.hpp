// Constellation alphabets (the paper's Ω): BPSK plus square Gray-mapped QAM
// up to 64-QAM. All constellations are normalized to unit average symbol
// energy so the SNR definition is modulation-independent.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sd {

/// Supported modulation schemes. The paper evaluates 4-QAM and 16-QAM;
/// BPSK appears in its Fig. 2 example and 64-QAM is the scaling extension.
enum class Modulation : std::uint8_t { kBpsk, kQam4, kQam16, kQam64 };

[[nodiscard]] std::string_view modulation_name(Modulation m) noexcept;

/// Parses "bpsk" / "4qam" / "qpsk" / "16qam" / "64qam"; throws on others.
[[nodiscard]] Modulation parse_modulation(std::string_view name);

/// An immutable constellation: the point set, Gray bit labels, and a fast
/// minimum-distance slicer.
class Constellation {
 public:
  /// Cached singleton per modulation; cheap to call repeatedly.
  [[nodiscard]] static const Constellation& get(Modulation m);

  [[nodiscard]] Modulation modulation() const noexcept { return mod_; }
  [[nodiscard]] std::string_view name() const noexcept {
    return modulation_name(mod_);
  }

  /// Alphabet size |Ω| — the paper's modulation/branching factor P.
  [[nodiscard]] index_t order() const noexcept {
    return static_cast<index_t>(points_.size());
  }

  [[nodiscard]] int bits_per_symbol() const noexcept { return bits_per_symbol_; }

  [[nodiscard]] cplx point(index_t idx) const noexcept {
    return points_[static_cast<usize>(idx)];
  }

  [[nodiscard]] std::span<const cplx> points() const noexcept { return points_; }

  /// Index of the constellation point nearest to z (ML slicing). Axis-wise
  /// O(1) for QAM, exhaustive only for BPSK's trivial alphabet.
  [[nodiscard]] index_t slice(cplx z) const noexcept;

  /// Writes the Gray-coded bit label of a symbol index;
  /// bits.size() must be >= bits_per_symbol().
  void index_to_bits(index_t idx, std::span<std::uint8_t> bits) const;

  /// Inverse of index_to_bits.
  [[nodiscard]] index_t bits_to_index(std::span<const std::uint8_t> bits) const;

  /// Number of differing label bits between two symbol indices — the
  /// Hamming distance the BER counter accumulates.
  [[nodiscard]] int bit_errors(index_t sent, index_t detected) const noexcept;

  /// Average symbol energy (== 1 by construction; exposed for tests).
  [[nodiscard]] double average_energy() const noexcept;

 private:
  explicit Constellation(Modulation m);

  Modulation mod_;
  int bits_per_symbol_ = 0;
  int bits_per_axis_ = 0;       ///< per I/Q axis for square QAM, 0 for BPSK
  real axis_scale_ = 1;         ///< normalization divisor for axis levels
  std::vector<cplx> points_;    ///< points_[i] = symbol with index i
  std::vector<std::uint16_t> labels_;  ///< Gray bit label for each index
};

}  // namespace sd
