#include "mimo/estimation.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"

namespace sd {

CMat orthogonal_pilots(index_t slots, index_t num_tx) {
  SD_CHECK(slots >= num_tx && num_tx > 0,
           "need at least as many pilot slots as transmit antennas");
  // DFT pilot matrix: P(l, j) = e^{-j 2 pi l j / L}. Columns are exactly
  // orthogonal with norm^2 = L, and every symbol has unit energy.
  CMat p(slots, num_tx);
  for (index_t l = 0; l < slots; ++l) {
    for (index_t j = 0; j < num_tx; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(l) * static_cast<double>(j) /
                           static_cast<double>(slots);
      p(l, j) = cplx{static_cast<real>(std::cos(angle)),
                     static_cast<real>(std::sin(angle))};
    }
  }
  return p;
}

CMat receive_pilots(const CMat& h, const CMat& pilots, double sigma2,
                    GaussianSource& rng) {
  SD_CHECK(pilots.cols() == h.cols(), "pilot/channel antenna mismatch");
  // Slot l: y_l = H p_l + n_l. Stored as rows of Y (L x N): Y = P H^T + N.
  const CMat ht = transpose(h);
  CMat y(pilots.rows(), h.rows());
  gemm_naive(Op::kNone, cplx{1, 0}, pilots, ht, cplx{0, 0}, y);
  for (cplx& v : y.flat()) {
    v += rng.next_cplx(sigma2);
  }
  return y;
}

CMat estimate_ls(const CMat& pilots, const CMat& received) {
  SD_CHECK(pilots.rows() == received.rows(), "pilot/observation slot mismatch");
  // With orthogonal pilots, P^+ = P^H / L; H^T_ls = P^H Y / L.
  const index_t slots = pilots.rows();
  CMat ht(pilots.cols(), received.cols());
  gemm_naive(Op::kConjTrans,
             cplx{real{1} / static_cast<real>(slots), 0}, pilots, received,
             cplx{0, 0}, ht);
  return transpose(ht);
}

CMat estimate_lmmse(const CMat& pilots, const CMat& received, double sigma2) {
  CMat h_ls = estimate_ls(pilots, received);
  // Per-entry Wiener filter for unit-variance entries observed through L
  // orthogonal pilots: E[h | h_ls] = L/(L + sigma2) * h_ls.
  const double slots = static_cast<double>(pilots.rows());
  const real gain = static_cast<real>(slots / (slots + sigma2));
  for (cplx& v : h_ls.flat()) v *= gain;
  return h_ls;
}

double estimation_mse(const CMat& h_true, const CMat& h_est) {
  SD_CHECK(h_true.rows() == h_est.rows() && h_true.cols() == h_est.cols(),
           "estimate shape mismatch");
  double acc = 0.0;
  for (usize i = 0; i < h_true.size(); ++i) {
    acc += static_cast<double>(norm2(h_true.flat()[i] - h_est.flat()[i]));
  }
  return acc / static_cast<double>(h_true.size());
}

}  // namespace sd
