#include "mimo/scenario.hpp"

#include <sstream>

#include "common/error.hpp"

namespace sd {

std::string ScenarioConfig::label() const {
  std::ostringstream os;
  os << num_tx << "x" << num_rx << " "
     << modulation_name(modulation) << " @ " << snr_db << " dB";
  if (coherence_block > 1) os << " L=" << coherence_block;
  return os.str();
}

Scenario::Scenario(ScenarioConfig config)
    : config_(config),
      constellation_(&Constellation::get(config.modulation)),
      sigma2_(snr_db_to_sigma2(config.snr_db, config.num_tx)),
      channel_(config.num_rx, config.num_tx, config.seed, config.correlation),
      // Decorrelate the symbol stream from the channel/noise stream.
      symbol_rng_(config.seed ^ 0xA5A5A5A5DEADBEEFull) {}

Trial Scenario::next() {
  Trial t;
  // Block fading: one channel realization per coherence block. The <= 1
  // path is untouched so the default stream stays byte-identical.
  if (config_.coherence_block <= 1) {
    t.h = channel_.draw_channel();
  } else {
    if (trial_index_ % config_.coherence_block == 0) {
      block_h_ = channel_.draw_channel();
    }
    t.h = block_h_;
  }
  ++trial_index_;
  t.tx = random_tx(*constellation_, config_.num_tx, symbol_rng_);
  t.sigma2 = sigma2_;
  t.y = channel_.transmit(t.h, t.tx.symbols, sigma2_);
  return t;
}

}  // namespace sd
