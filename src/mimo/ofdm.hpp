// OFDM frame layer.
//
// Real MIMO deployments (802.11 / LTE, the systems the paper's intro and
// the Geosphere comparison target) run the detector once per *subcarrier*
// per OFDM symbol: a frequency-selective channel is turned into S parallel
// flat-fading MIMO channels. This module provides
//   * a tapped-delay-line MIMO channel with an exponential power-delay
//     profile, and its per-subcarrier frequency response H[f] via FFT;
//   * an OFDM frame abstraction (S subcarriers x M streams) with
//     modulation, transmission, and per-subcarrier detection hooks.
// Frame-level decode latency (S sequential vector decodes) is what the
// Geosphere Fig. 12 comparison reports; bench_frame_latency uses this.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "mimo/constellation.hpp"
#include "mimo/frame.hpp"

namespace sd {

/// A multipath MIMO channel: `taps[t]` is the N x M matrix of tap t.
struct MultipathChannel {
  std::vector<CMat> taps;

  /// Per-subcarrier frequency response: H[f] = sum_t taps[t] e^{-j2pi f t/S}.
  /// Computed with one length-S FFT per (i, j) antenna pair; S must be a
  /// power of two.
  [[nodiscard]] std::vector<CMat> frequency_response(index_t subcarriers) const;
};

/// Configuration of the OFDM layer.
struct OfdmConfig {
  index_t subcarriers = 64;      ///< S (power of two)
  index_t num_taps = 4;          ///< channel delay spread in taps (<= S)
  double tap_decay = 0.5;        ///< exponential power-delay profile ratio
  index_t num_tx = 4;            ///< M
  index_t num_rx = 4;            ///< N
  Modulation modulation = Modulation::kQam4;
};

/// Draws multipath channels and assembles OFDM frames.
class OfdmLink {
 public:
  OfdmLink(OfdmConfig config, std::uint64_t seed);

  [[nodiscard]] const OfdmConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Constellation& constellation() const noexcept {
    return *constellation_;
  }

  /// One multipath channel realization. Tap powers follow the exponential
  /// profile and are normalized so that E[||H[f]||_F^2] matches the flat
  /// i.i.d. model (sum of tap powers == 1 per antenna pair).
  [[nodiscard]] MultipathChannel draw_channel();

  /// One transmitted frame: independent random payload per subcarrier.
  struct TxFrame {
    std::vector<TxVector> carriers;  ///< size S
  };
  [[nodiscard]] TxFrame random_frame();

  /// Received frame: y[f] = H[f] s[f] + n[f] per subcarrier (the cyclic
  /// prefix is assumed long enough that subcarriers do not interfere).
  struct RxFrame {
    std::vector<CMat> h;   ///< per-subcarrier channel (S entries)
    std::vector<CVec> y;   ///< per-subcarrier received vector
    double sigma2 = 0.0;
  };
  [[nodiscard]] RxFrame transmit(const MultipathChannel& channel,
                                 const TxFrame& frame, double snr_db);

 private:
  OfdmConfig config_;
  const Constellation* constellation_;
  GaussianSource gauss_;
};

}  // namespace sd
