// Transmit-side bit/symbol handling: random payload generation, modulation,
// and demapping back to bits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "linalg/matrix.hpp"
#include "mimo/constellation.hpp"

namespace sd {

/// One transmitted MIMO vector: the payload bits, the symbol indices chosen
/// per transmit antenna, and the modulated complex symbols.
struct TxVector {
  std::vector<std::uint8_t> bits;     ///< M * bits_per_symbol payload bits
  std::vector<index_t> indices;       ///< symbol index per transmit antenna
  CVec symbols;                       ///< modulated constellation points
};

/// Draws a uniformly random payload for M transmit antennas.
[[nodiscard]] TxVector random_tx(const Constellation& c, index_t num_tx,
                                 GaussianSource& rng);

/// Modulates explicit symbol indices.
[[nodiscard]] TxVector modulate(const Constellation& c,
                                const std::vector<index_t>& indices);

/// Maps detected symbols (arbitrary complex values) to the nearest
/// constellation indices — the hard-decision demapper applied to linear
/// detector outputs.
[[nodiscard]] std::vector<index_t> hard_slice(const Constellation& c,
                                              std::span<const cplx> symbols);

/// Expands symbol indices to their Gray bit labels.
[[nodiscard]] std::vector<std::uint8_t> indices_to_bits(
    const Constellation& c, const std::vector<index_t>& indices);

}  // namespace sd
