// Link-quality metrics: bit / symbol / vector ("frame") error accumulation.
// The paper's Fig. 7 reports BER vs SNR; these counters feed that bench.
#pragma once

#include <cstdint>

#include "mimo/constellation.hpp"

namespace sd {

/// Accumulates detection errors across Monte-Carlo trials.
class ErrorCounter {
 public:
  explicit ErrorCounter(const Constellation& c) : c_(&c) {}

  /// Compares one detected vector with the transmitted one; both are symbol
  /// indices of equal length.
  void record(std::span<const index_t> sent, std::span<const index_t> detected);

  [[nodiscard]] std::uint64_t bit_errors() const noexcept { return bit_errors_; }
  [[nodiscard]] std::uint64_t bits_total() const noexcept { return bits_total_; }
  [[nodiscard]] std::uint64_t symbol_errors() const noexcept { return symbol_errors_; }
  [[nodiscard]] std::uint64_t symbols_total() const noexcept { return symbols_total_; }
  [[nodiscard]] std::uint64_t vector_errors() const noexcept { return vector_errors_; }
  [[nodiscard]] std::uint64_t vectors_total() const noexcept { return vectors_total_; }

  /// Bit error rate; 0 when nothing has been recorded.
  [[nodiscard]] double ber() const noexcept;
  /// Symbol error rate.
  [[nodiscard]] double ser() const noexcept;
  /// Vector (frame) error rate.
  [[nodiscard]] double fer() const noexcept;

  void reset() noexcept;

 private:
  const Constellation* c_;
  std::uint64_t bit_errors_ = 0;
  std::uint64_t bits_total_ = 0;
  std::uint64_t symbol_errors_ = 0;
  std::uint64_t symbols_total_ = 0;
  std::uint64_t vector_errors_ = 0;
  std::uint64_t vectors_total_ = 0;
};

}  // namespace sd
