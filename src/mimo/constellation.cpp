#include "mimo/constellation.hpp"

#include <bit>
#include <cmath>
#include <mutex>

#include "common/error.hpp"

namespace sd {

namespace {

/// Binary-reflected Gray code.
constexpr std::uint16_t gray(std::uint16_t k) noexcept {
  return static_cast<std::uint16_t>(k ^ (k >> 1));
}

}  // namespace

std::string_view modulation_name(Modulation m) noexcept {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQam4: return "4-QAM";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

Modulation parse_modulation(std::string_view name) {
  if (name == "bpsk" || name == "BPSK") return Modulation::kBpsk;
  if (name == "4qam" || name == "qpsk" || name == "4-QAM" || name == "QPSK") {
    return Modulation::kQam4;
  }
  if (name == "16qam" || name == "16-QAM") return Modulation::kQam16;
  if (name == "64qam" || name == "64-QAM") return Modulation::kQam64;
  throw invalid_argument_error("unknown modulation: " + std::string(name));
}

Constellation::Constellation(Modulation m) : mod_(m) {
  if (m == Modulation::kBpsk) {
    bits_per_symbol_ = 1;
    bits_per_axis_ = 0;
    axis_scale_ = 1;
    points_ = {cplx{-1, 0}, cplx{1, 0}};
    labels_ = {0, 1};
    return;
  }

  switch (m) {
    case Modulation::kQam4: bits_per_axis_ = 1; break;
    case Modulation::kQam16: bits_per_axis_ = 2; break;
    case Modulation::kQam64: bits_per_axis_ = 3; break;
    case Modulation::kBpsk: break;  // handled above
  }
  bits_per_symbol_ = 2 * bits_per_axis_;
  const int levels = 1 << bits_per_axis_;

  // Unit average energy: E[|s|^2] = 2 * (L^2 - 1) / 3 * scale^2 == 1.
  axis_scale_ = static_cast<real>(
      std::sqrt(3.0 / (2.0 * (static_cast<double>(levels) * levels - 1.0))));

  points_.resize(static_cast<usize>(levels) * levels);
  labels_.resize(points_.size());
  for (int ki = 0; ki < levels; ++ki) {
    const real amp_i = static_cast<real>(2 * ki - (levels - 1)) * axis_scale_;
    for (int kq = 0; kq < levels; ++kq) {
      const real amp_q = static_cast<real>(2 * kq - (levels - 1)) * axis_scale_;
      const auto idx = static_cast<usize>(ki * levels + kq);
      points_[idx] = cplx{amp_i, amp_q};
      labels_[idx] = static_cast<std::uint16_t>(
          (gray(static_cast<std::uint16_t>(ki)) << bits_per_axis_) |
          gray(static_cast<std::uint16_t>(kq)));
    }
  }
}

const Constellation& Constellation::get(Modulation m) {
  static std::once_flag flags[4];
  static const Constellation* cache[4] = {};
  const auto slot = static_cast<usize>(m);
  std::call_once(flags[slot], [&] { cache[slot] = new Constellation(m); });
  return *cache[slot];
}

index_t Constellation::slice(cplx z) const noexcept {
  if (mod_ == Modulation::kBpsk) {
    return z.real() >= real{0} ? 1 : 0;
  }
  const int levels = 1 << bits_per_axis_;
  // Map each axis back to the nearest odd-integer amplitude level index.
  auto axis_level = [&](real v) {
    const real unscaled = v / axis_scale_;
    int k = static_cast<int>(std::lround((unscaled + static_cast<real>(levels - 1)) / 2));
    if (k < 0) k = 0;
    if (k >= levels) k = levels - 1;
    return k;
  };
  const int ki = axis_level(z.real());
  const int kq = axis_level(z.imag());
  return static_cast<index_t>(ki * levels + kq);
}

void Constellation::index_to_bits(index_t idx, std::span<std::uint8_t> bits) const {
  SD_CHECK(idx >= 0 && idx < order(), "symbol index out of range");
  SD_CHECK(bits.size() >= static_cast<usize>(bits_per_symbol_),
           "bit buffer too small");
  const std::uint16_t label = labels_[static_cast<usize>(idx)];
  for (int b = 0; b < bits_per_symbol_; ++b) {
    bits[static_cast<usize>(b)] =
        static_cast<std::uint8_t>((label >> (bits_per_symbol_ - 1 - b)) & 1u);
  }
}

index_t Constellation::bits_to_index(std::span<const std::uint8_t> bits) const {
  SD_CHECK(bits.size() >= static_cast<usize>(bits_per_symbol_),
           "bit buffer too small");
  std::uint16_t label = 0;
  for (int b = 0; b < bits_per_symbol_; ++b) {
    label = static_cast<std::uint16_t>((label << 1) | (bits[static_cast<usize>(b)] & 1u));
  }
  for (usize i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return static_cast<index_t>(i);
  }
  throw invalid_argument_error("bit pattern does not map to a symbol");
}

int Constellation::bit_errors(index_t sent, index_t detected) const noexcept {
  const std::uint16_t diff = static_cast<std::uint16_t>(
      labels_[static_cast<usize>(sent)] ^ labels_[static_cast<usize>(detected)]);
  return std::popcount(diff);
}

double Constellation::average_energy() const noexcept {
  double acc = 0.0;
  for (cplx p : points_) acc += static_cast<double>(norm2(p));
  return acc / static_cast<double>(points_.size());
}

}  // namespace sd
