#include "mimo/metrics.hpp"

#include "common/error.hpp"

namespace sd {

void ErrorCounter::record(std::span<const index_t> sent,
                          std::span<const index_t> detected) {
  SD_CHECK(sent.size() == detected.size(), "vector length mismatch");
  bool any_error = false;
  for (usize i = 0; i < sent.size(); ++i) {
    const int be = c_->bit_errors(sent[i], detected[i]);
    bit_errors_ += static_cast<std::uint64_t>(be);
    if (sent[i] != detected[i]) {
      ++symbol_errors_;
      any_error = true;
    }
  }
  bits_total_ += sent.size() * static_cast<std::uint64_t>(c_->bits_per_symbol());
  symbols_total_ += sent.size();
  vectors_total_ += 1;
  if (any_error) ++vector_errors_;
}

double ErrorCounter::ber() const noexcept {
  return bits_total_ == 0
             ? 0.0
             : static_cast<double>(bit_errors_) / static_cast<double>(bits_total_);
}

double ErrorCounter::ser() const noexcept {
  return symbols_total_ == 0 ? 0.0
                             : static_cast<double>(symbol_errors_) /
                                   static_cast<double>(symbols_total_);
}

double ErrorCounter::fer() const noexcept {
  return vectors_total_ == 0 ? 0.0
                             : static_cast<double>(vector_errors_) /
                                   static_cast<double>(vectors_total_);
}

void ErrorCounter::reset() noexcept {
  bit_errors_ = bits_total_ = 0;
  symbol_errors_ = symbols_total_ = 0;
  vector_errors_ = vectors_total_ = 0;
}

}  // namespace sd
