// Machine-readable experiment output: CSV serialization of sweep results
// (for plotting the figures outside this repo) and a human summary of
// decode statistics.
#pragma once

#include <iosfwd>
#include <string>

#include "core/experiment.hpp"

namespace sd {

/// Writes one detector's sweep as CSV with a header row:
/// detector,snr_db,trials,ber,ber_ci95,ser,fer,mean_seconds,p95_seconds,
/// mean_nodes_expanded,mean_nodes_generated,mean_gemm_calls,mean_flops
void write_csv(std::ostream& os, const SweepResult& result);

/// Appends rows for several sweeps into one CSV (single header).
void write_csv(std::ostream& os, std::span<const SweepResult> results);

/// One-line human summary of a decode's work counters.
[[nodiscard]] std::string summarize(const DecodeStats& stats);

}  // namespace sd
