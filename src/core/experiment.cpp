#include "core/experiment.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace sd {

ExperimentRunner::ExperimentRunner(SystemConfig system, usize trials,
                                   std::uint64_t seed)
    : system_(system), trials_(trials), seed_(seed) {
  SD_CHECK(trials > 0, "at least one trial per point");
}

SweepResult ExperimentRunner::sweep(Detector& detector,
                                    std::span<const double> snr_list,
                                    const DeviceTimeFn& time_fn) {
  SweepResult result;
  result.detector = std::string(detector.name());
  result.points.reserve(snr_list.size());
  for (double snr : snr_list) {
    result.points.push_back(run_point(detector, snr, time_fn));
  }
  return result;
}

SweepPoint ExperimentRunner::run_point(Detector& detector, double snr_db,
                                       const DeviceTimeFn& time_fn) {
  ScenarioConfig sc;
  sc.num_tx = system_.num_tx;
  sc.num_rx = system_.num_rx;
  sc.modulation = system_.modulation;
  sc.snr_db = snr_db;
  // Same seed for every detector at this (system, SNR) cell -> paired trials.
  sc.seed = seed_ ^ (static_cast<std::uint64_t>(snr_db * 1024.0) * 0x9E3779B9ull);
  Scenario scenario(sc);
  const Constellation& c = scenario.constellation();

  ErrorCounter errors(c);
  Series seconds;
  Series nodes_exp, nodes_gen, gemms, flops, metrics;
  bool budget_hit = false;

  for (usize t = 0; t < trials_; ++t) {
    const Trial trial = scenario.next();
    const DecodeResult r = detector.decode(trial.h, trial.y, trial.sigma2);
    errors.record(trial.tx.indices, r.indices);
    const double secs = time_fn ? time_fn(r, detector)
                                : r.stats.search_seconds;
    seconds.add(secs);
    nodes_exp.add(static_cast<double>(r.stats.nodes_expanded));
    nodes_gen.add(static_cast<double>(r.stats.nodes_generated));
    gemms.add(static_cast<double>(r.stats.gemm_calls));
    flops.add(static_cast<double>(r.stats.flops));
    metrics.add(r.metric);
    budget_hit |= r.stats.node_budget_hit;
  }

  SweepPoint point;
  point.snr_db = snr_db;
  point.trials = trials_;
  point.ber = errors.ber();
  // Normal-approximation binomial interval on the bit-error estimate.
  point.ber_ci95 =
      1.96 * std::sqrt(std::max(point.ber * (1.0 - point.ber), 0.0) /
                       static_cast<double>(errors.bits_total()));
  point.ser = errors.ser();
  point.fer = errors.fer();
  point.mean_seconds = seconds.mean();
  point.p95_seconds = seconds.percentile(95.0);
  point.mean_nodes_expanded = nodes_exp.mean();
  point.mean_nodes_generated = nodes_gen.mean();
  point.mean_gemm_calls = gemms.mean();
  point.mean_flops = flops.mean();
  point.mean_metric = metrics.mean();
  point.budget_hit = budget_hit;
  return point;
}

std::vector<double> paper_snr_axis() { return {4.0, 8.0, 12.0, 16.0, 20.0}; }

}  // namespace sd
