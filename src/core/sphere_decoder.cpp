#include "core/sphere_decoder.hpp"

#include "common/error.hpp"
#include "decode/linear.hpp"
#include "decode/ml.hpp"
#include "decode/sd_dfs.hpp"
#include "decode/sd_gemm.hpp"
#include "fpga/fpga_detector.hpp"

namespace sd {

std::string_view strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::kMrc: return "MRC";
    case Strategy::kZf: return "ZF";
    case Strategy::kMmse: return "MMSE";
    case Strategy::kMl: return "ML";
    case Strategy::kBestFsGemm: return "SD-GEMM-BestFS";
    case Strategy::kBestFsScalar: return "SD-Scalar-BestFS";
    case Strategy::kDfs: return "SD-DFS";
    case Strategy::kGemmBfs: return "SD-GEMM-BFS";
    case Strategy::kFsd: return "FSD";
    case Strategy::kKBest: return "K-Best";
    case Strategy::kMultiPe: return "SD-MultiPE";
    case Strategy::kMmseNeumann: return "MMSE-Neumann";
  }
  return "?";
}

std::string_view device_name(TargetDevice d) noexcept {
  switch (d) {
    case TargetDevice::kCpu: return "CPU";
    case TargetDevice::kFpgaBaseline: return "FPGA-baseline";
    case TargetDevice::kFpgaOptimized: return "FPGA-optimized";
  }
  return "?";
}

std::unique_ptr<Detector> make_detector(const SystemConfig& sys,
                                        const DecoderSpec& spec) {
  SD_CHECK(sys.num_tx > 0 && sys.num_rx >= sys.num_tx,
           "system requires N >= M > 0");
  const Constellation& c = Constellation::get(sys.modulation);

  if (spec.device != TargetDevice::kCpu) {
    SD_CHECK(spec.strategy == Strategy::kBestFsGemm,
             "the FPGA design implements the GEMM/Best-FS strategy; other "
             "strategies run on the CPU target");
    FpgaConfig cfg =
        spec.device == TargetDevice::kFpgaOptimized
            ? FpgaConfig::optimized_design(sys.num_tx, sys.num_rx,
                                           sys.modulation)
            : FpgaConfig::baseline(sys.num_tx, sys.num_rx, sys.modulation);
    cfg.precision = spec.fpga_precision;
    return std::make_unique<FpgaDetector>(c, cfg, spec.sd);
  }

  switch (spec.strategy) {
    case Strategy::kMrc:
      return std::make_unique<LinearDetector>(LinearKind::kMrc, c);
    case Strategy::kZf:
      return std::make_unique<LinearDetector>(LinearKind::kZf, c);
    case Strategy::kMmse:
      return std::make_unique<LinearDetector>(LinearKind::kMmse, c);
    case Strategy::kMl:
      return std::make_unique<MlDetector>(c);
    case Strategy::kBestFsGemm: {
      SdOptions opts = spec.sd;
      opts.gemm_eval = true;
      return std::make_unique<SdGemmDetector>(c, opts);
    }
    case Strategy::kBestFsScalar: {
      SdOptions opts = spec.sd;
      opts.gemm_eval = false;
      return std::make_unique<SdGemmDetector>(c, opts);
    }
    case Strategy::kDfs:
      return std::make_unique<SdDfsDetector>(c, spec.sd);
    case Strategy::kGemmBfs:
      return std::make_unique<SdGemmBfsDetector>(c, spec.bfs);
    case Strategy::kFsd:
      return std::make_unique<FsdDetector>(c, spec.fsd);
    case Strategy::kKBest:
      return std::make_unique<KBestDetector>(c, spec.kbest);
    case Strategy::kMultiPe:
      return std::make_unique<ParallelSdDetector>(c, spec.multi_pe);
    case Strategy::kMmseNeumann:
      return std::make_unique<MmseNeumannDetector>(spec.mmse_neumann, c);
  }
  throw invalid_argument_error("unknown strategy");
}

}  // namespace sd
