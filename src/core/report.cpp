#include "core/report.hpp"

#include <ostream>
#include <sstream>

namespace sd {

namespace {

constexpr const char* kHeader =
    "detector,snr_db,trials,ber,ber_ci95,ser,fer,mean_seconds,p95_seconds,"
    "mean_nodes_expanded,mean_nodes_generated,mean_gemm_calls,mean_flops\n";

void write_rows(std::ostream& os, const SweepResult& result) {
  for (const SweepPoint& p : result.points) {
    os << result.detector << ',' << p.snr_db << ',' << p.trials << ','
       << p.ber << ',' << p.ber_ci95 << ',' << p.ser << ',' << p.fer << ','
       << p.mean_seconds << ',' << p.p95_seconds << ','
       << p.mean_nodes_expanded << ',' << p.mean_nodes_generated << ','
       << p.mean_gemm_calls << ',' << p.mean_flops << '\n';
  }
}

}  // namespace

void write_csv(std::ostream& os, const SweepResult& result) {
  os << kHeader;
  write_rows(os, result);
}

void write_csv(std::ostream& os, std::span<const SweepResult> results) {
  os << kHeader;
  for (const SweepResult& r : results) {
    write_rows(os, r);
  }
}

std::string summarize(const DecodeStats& stats) {
  std::ostringstream os;
  os << stats.nodes_expanded << " expanded / " << stats.nodes_generated
     << " generated / " << stats.nodes_pruned << " pruned, "
     << stats.leaves_reached << " leaves, " << stats.gemm_calls << " GEMMs ("
     << stats.flops << " flops), search "
     << stats.search_seconds * 1e6 << " us";
  if (stats.node_budget_hit) os << " [budget hit]";
  return os.str();
}

}  // namespace sd
