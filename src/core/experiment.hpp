// Experiment harness: Monte-Carlo SNR sweeps producing exactly the series
// the paper's figures plot (decode time vs SNR, BER vs SNR) plus the work
// counters the device models consume.
//
// Determinism: every detector evaluated at the same (system, seed, SNR) sees
// byte-identical trials, so cross-detector comparisons are paired.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/sphere_decoder.hpp"
#include "mimo/metrics.hpp"
#include "mimo/scenario.hpp"

namespace sd {

/// Aggregated results of one (detector, SNR) cell.
struct SweepPoint {
  double snr_db = 0;
  usize trials = 0;
  double ber = 0;
  double ber_ci95 = 0;  ///< binomial 95% half-width on the BER estimate
  double ser = 0;
  double fer = 0;
  double mean_seconds = 0;   ///< mean device decode time per received vector
  double p95_seconds = 0;
  double mean_nodes_expanded = 0;
  double mean_nodes_generated = 0;
  double mean_gemm_calls = 0;
  double mean_flops = 0;
  double mean_metric = 0;    ///< mean achieved ||y - Hs||^2
  bool budget_hit = false;   ///< any trial stopped by the node budget
};

/// One detector's series across the SNR axis.
struct SweepResult {
  std::string detector;
  std::vector<SweepPoint> points;
};

/// Maps a finished trial to the device time charged for it. The default
/// reads stats.search_seconds (measured wall time for CPU detectors,
/// simulated device time for the FPGA detector); the GPU/WARP benches pass
/// their model here instead.
using DeviceTimeFn = std::function<double(const DecodeResult&, Detector&)>;

class ExperimentRunner {
 public:
  /// `trials` = Monte-Carlo vectors per SNR point.
  ExperimentRunner(SystemConfig system, usize trials, std::uint64_t seed = 1);

  [[nodiscard]] const SystemConfig& system() const noexcept { return system_; }
  [[nodiscard]] usize trials() const noexcept { return trials_; }

  /// Runs `detector` over every SNR in `snr_list`.
  [[nodiscard]] SweepResult sweep(Detector& detector,
                                  std::span<const double> snr_list,
                                  const DeviceTimeFn& time_fn = {});

  /// Single-point convenience.
  [[nodiscard]] SweepPoint run_point(Detector& detector, double snr_db,
                                     const DeviceTimeFn& time_fn = {});

 private:
  SystemConfig system_;
  usize trials_;
  std::uint64_t seed_;
};

/// Default SNR axis of the paper's figures: 4, 8, 12, 16, 20 dB.
[[nodiscard]] std::vector<double> paper_snr_axis();

}  // namespace sd
