// Public facade: one entry point that builds any detector the paper
// evaluates — the linear baselines, the ML oracle, the sphere-decoder
// family, and the simulated FPGA design points — from a declarative spec.
//
// Quickstart:
//   sd::SystemConfig sys{10, 10, sd::Modulation::kQam4};
//   auto det = sd::make_detector(sys, {sd::Strategy::kBestFsGemm});
//   sd::DecodeResult r = det->decode(h, y, sigma2);
#pragma once

#include <memory>

#include "decode/detector.hpp"
#include "decode/fsd.hpp"
#include "decode/kbest.hpp"
#include "decode/mmse_neumann.hpp"
#include "decode/parallel_sd.hpp"
#include "decode/sd_gemm_bfs.hpp"
#include "decode/sphere_common.hpp"
#include "fpga/hw_config.hpp"

namespace sd {

/// Antenna/modulation description of the MIMO system being decoded.
struct SystemConfig {
  index_t num_tx = 10;
  index_t num_rx = 10;
  Modulation modulation = Modulation::kQam4;
};

/// Which detection algorithm to build.
enum class Strategy : std::uint8_t {
  kMrc,           ///< maximum ratio combining (linear)
  kZf,            ///< zero forcing (linear)
  kMmse,          ///< minimum mean square error (linear)
  kMl,            ///< exhaustive maximum likelihood (oracle, small systems)
  kBestFsGemm,    ///< the paper: GEMM evaluation + Best-FS traversal
  kBestFsScalar,  ///< ablation: same traversal, scalar evaluation
  kDfs,           ///< classic SE depth-first SD (Geosphere traversal)
  kGemmBfs,       ///< GEMM + breadth-first (the GPU baseline of [1])
  kFsd,           ///< fixed-complexity SD (related work)
  kKBest,         ///< K-Best (related work)
  kMultiPe,       ///< multi-threaded sub-tree SD (paper §V future work)
  kMmseNeumann,   ///< Gram-domain MMSE, Neumann-series inverse (massive MIMO)
};

[[nodiscard]] std::string_view strategy_name(Strategy s) noexcept;

/// Where the detector "runs": on the host for real, or on a simulated U280
/// design point (only meaningful for the Best-FS strategy, which is what the
/// paper maps to hardware).
enum class TargetDevice : std::uint8_t {
  kCpu,
  kFpgaBaseline,
  kFpgaOptimized,
};

[[nodiscard]] std::string_view device_name(TargetDevice d) noexcept;

/// Full detector specification. Only the sub-options matching `strategy`
/// are consulted.
struct DecoderSpec {
  Strategy strategy = Strategy::kBestFsGemm;
  TargetDevice device = TargetDevice::kCpu;
  SdOptions sd = {};
  BfsOptions bfs = {};
  FsdOptions fsd = {};
  KBestOptions kbest = {};
  ParallelSdOptions multi_pe = {};
  MmseNeumannOptions mmse_neumann = {};
  Precision fpga_precision = Precision::kFp32;
};

/// Builds a detector. Throws sd::invalid_argument_error on inconsistent
/// specs (e.g. an FPGA device with a non-Best-FS strategy).
[[nodiscard]] std::unique_ptr<Detector> make_detector(const SystemConfig& sys,
                                                      const DecoderSpec& spec);

}  // namespace sd
