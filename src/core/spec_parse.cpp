#include "core/spec_parse.hpp"

#include <charconv>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sd {

namespace {

[[noreturn]] void unknown_option(std::string_view name, const SpecOption& opt) {
  throw invalid_argument_error("detector '" + std::string(name) +
                               "' does not accept option '" + opt.key + "'");
}

}  // namespace

std::vector<SpecOption> parse_spec_options(std::string_view text) {
  std::vector<SpecOption> out;
  while (!text.empty()) {
    const auto comma = text.find(',');
    std::string_view item =
        comma == std::string_view::npos ? text : text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos) {
      out.push_back({std::string(item), ""});
    } else {
      out.push_back({std::string(item.substr(0, eq)),
                     std::string(item.substr(eq + 1))});
    }
  }
  return out;
}

long spec_option_int(const SpecOption& opt) {
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(opt.value.data(), opt.value.data() + opt.value.size(),
                      value);
  SD_CHECK(ec == std::errc{} && ptr == opt.value.data() + opt.value.size(),
           "option '" + opt.key + "' needs an integer value");
  return value;
}

double spec_option_double(const SpecOption& opt) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(opt.value.data(), opt.value.data() + opt.value.size(),
                      value);
  SD_CHECK(ec == std::errc{} && ptr == opt.value.data() + opt.value.size(),
           "option '" + opt.key + "' needs a numeric value");
  return value;
}

DecoderSpec parse_decoder_spec(std::string_view text) {
  SD_CHECK(!text.empty(), "empty detector spec");

  // Split name[@device][:options].
  std::string_view rest = text;
  const auto colon = rest.find(':');
  std::string_view options_text;
  if (colon != std::string_view::npos) {
    options_text = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  std::string_view device_text;
  const auto at = rest.find('@');
  if (at != std::string_view::npos) {
    device_text = rest.substr(at + 1);
    rest = rest.substr(0, at);
  }
  const std::string_view name = rest;

  DecoderSpec spec;
  if (name == "sphere" || name == "bestfs") {
    spec.strategy = Strategy::kBestFsGemm;
  } else if (name == "sphere-scalar") {
    spec.strategy = Strategy::kBestFsScalar;
  } else if (name == "dfs" || name == "geosphere") {
    spec.strategy = Strategy::kDfs;
  } else if (name == "bfs") {
    spec.strategy = Strategy::kGemmBfs;
  } else if (name == "ml") {
    spec.strategy = Strategy::kMl;
  } else if (name == "zf") {
    spec.strategy = Strategy::kZf;
  } else if (name == "mmse") {
    spec.strategy = Strategy::kMmse;
  } else if (name == "mrc") {
    spec.strategy = Strategy::kMrc;
  } else if (name == "kbest") {
    spec.strategy = Strategy::kKBest;
  } else if (name == "fsd") {
    spec.strategy = Strategy::kFsd;
  } else if (name == "multipe") {
    spec.strategy = Strategy::kMultiPe;
  } else if (name == "mmse-neumann") {
    spec.strategy = Strategy::kMmseNeumann;
  } else {
    throw invalid_argument_error("unknown detector '" + std::string(name) +
                                 "'; " + std::string(decoder_spec_help()));
  }

  if (!device_text.empty()) {
    if (device_text == "cpu") {
      spec.device = TargetDevice::kCpu;
    } else if (device_text == "fpga" || device_text == "fpga-opt") {
      spec.device = TargetDevice::kFpgaOptimized;
    } else if (device_text == "fpga-base") {
      spec.device = TargetDevice::kFpgaBaseline;
    } else {
      throw invalid_argument_error("unknown device '" +
                                   std::string(device_text) +
                                   "' (cpu, fpga, fpga-base)");
    }
  }

  for (const SpecOption& opt : parse_spec_options(options_text)) {
    if (opt.key == "sorted") {
      spec.sd.sorted_qr = true;
    } else if (opt.key == "scalar" &&
               spec.strategy == Strategy::kBestFsGemm) {
      spec.strategy = Strategy::kBestFsScalar;
    } else if (opt.key == "max-nodes") {
      spec.sd.max_nodes = static_cast<std::uint64_t>(spec_option_int(opt));
    } else if (opt.key == "fp16") {
      spec.fpga_precision = Precision::kFp16;
    } else if (opt.key == "int16" && opt.value.empty()) {
      spec.fpga_precision = Precision::kInt16;
    } else if (opt.key == "k" && spec.strategy == Strategy::kKBest) {
      spec.kbest.k = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "k" && spec.strategy == Strategy::kMmseNeumann) {
      spec.mmse_neumann.k = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "tol" && spec.strategy == Strategy::kMmseNeumann) {
      spec.mmse_neumann.residual_tol = spec_option_double(opt);
    } else if (opt.key == "levels" && spec.strategy == Strategy::kFsd) {
      spec.fsd.full_levels = static_cast<index_t>(spec_option_int(opt));
    } else if (opt.key == "threads" && spec.strategy == Strategy::kMultiPe) {
      spec.multi_pe.num_threads = static_cast<unsigned>(spec_option_int(opt));
    } else if (opt.key == "split" && spec.strategy == Strategy::kMultiPe) {
      spec.multi_pe.split_depth = static_cast<index_t>(spec_option_int(opt));
    } else if (opt.key == "frontier" && spec.strategy == Strategy::kGemmBfs) {
      spec.bfs.max_frontier = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "precision" &&
               spec.strategy == Strategy::kGemmBfs) {
      apply_precision(spec, opt.value);
    } else if (opt.key == "alpha") {
      spec.sd.radius_policy = RadiusPolicy::kNoiseScaled;
      spec.sd.radius_alpha = static_cast<double>(spec_option_int(opt));
    } else {
      unknown_option(name, opt);
    }
  }
  return spec;
}

void apply_precision(DecoderSpec& spec, std::string_view precision) {
  if (precision == "fp32" || precision == "float") {
    spec.bfs.quantized = false;
    return;
  }
  if (precision == "int16") {
    SD_CHECK(spec.strategy == Strategy::kGemmBfs,
             "precision 'int16' selects the fixed-point BFS datapath and "
             "requires the bfs detector");
    spec.bfs.quantized = true;
    return;
  }
  throw invalid_argument_error("unknown precision '" + std::string(precision) +
                               "' (int16, fp32)");
}

std::string_view decoder_precision_name(const DecoderSpec& spec) noexcept {
  return spec.strategy == Strategy::kGemmBfs && spec.bfs.quantized ? "int16"
                                                                   : "fp32";
}

std::string_view decoder_spec_help() noexcept {
  return "known detectors: sphere sphere-scalar dfs bfs ml zf mmse mrc "
         "kbest:k=N fsd:levels=N multipe:threads=N,split=N "
         "mmse-neumann:k=N,tol=X; devices: "
         "@cpu @fpga @fpga-base; common options: sorted, max-nodes=N, fp16, "
         "int16, bfs:precision=int16|fp32";
}

}  // namespace sd
