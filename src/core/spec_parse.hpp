// Textual detector specifications, so tools, examples and scripts can pick
// detectors without recompiling:
//
//   "sphere"                  -> GEMM/Best-FS on CPU (the paper's algorithm)
//   "sphere@fpga"             -> ... on the simulated optimized U280 design
//   "sphere@fpga-base"        -> ... on the baseline design point
//   "dfs" "bfs" "ml"          -> other tree searches
//   "zf" "mmse" "mrc"         -> linear detectors
//   "kbest:k=32"              -> K-Best with options
//   "fsd:levels=2"            -> FSD with two full levels
//   "multipe:threads=4,split=2"
//   "sphere:sorted"           -> SQRD layer ordering
//
// Grammar: name[@device][:opt[=value][,opt[=value]]*]
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/sphere_decoder.hpp"

namespace sd {

/// One "key" or "key=value" element of a comma-separated option list. The
/// detector grammar above and the server-option grammar (src/serve) share
/// this building block.
struct SpecOption {
  std::string key;
  std::string value;  ///< empty for bare flags
};

/// Splits "a=1,b,c=x" into SpecOptions. Empty elements are skipped.
[[nodiscard]] std::vector<SpecOption> parse_spec_options(std::string_view text);

/// Integer/float value of an option; throws sd::invalid_argument_error with
/// the option's key in the message when the value does not parse fully.
[[nodiscard]] long spec_option_int(const SpecOption& opt);
[[nodiscard]] double spec_option_double(const SpecOption& opt);

/// Parses a detector spec string. Throws sd::invalid_argument_error with a
/// pointed message on unknown names/devices/options.
[[nodiscard]] DecoderSpec parse_decoder_spec(std::string_view text);

/// Applies a datapath precision ("int16", "fp32"/"float") to an already
/// parsed spec — the command-line `--precision` knob of the serve tools.
/// "int16" selects the fixed-point BFS datapath and therefore requires the
/// bfs strategy; other strategies throw sd::invalid_argument_error.
/// "fp32"/"float" resets any quantized selection and is valid everywhere.
void apply_precision(DecoderSpec& spec, std::string_view precision);

/// Datapath precision of a spec ("int16" or "fp32"), used to key cost-model
/// buckets and to label per-lane backends.
[[nodiscard]] std::string_view decoder_precision_name(
    const DecoderSpec& spec) noexcept;

/// Human-readable list of accepted spec names (for --help output).
[[nodiscard]] std::string_view decoder_spec_help() noexcept;

}  // namespace sd
