// Split-complex (SoA) packed GEMM kernel, vectorized with AVX2.
//
// Strategy: identical cache blocking to the scalar packed kernel (kGemmMc /
// kGemmKc / kGemmNc panels), but the panels are packed into separate
// real/imag float planes and the micro-kernel vectorizes ACROSS OUTPUT
// COLUMNS: one AVX2 lane owns one output element, with its own independent
// (re, im) accumulator pair. Each element's k-reduction therefore runs in
// exactly the scalar kernel's ascending-p order within each K panel, and the
// complex multiply-accumulate is decomposed into the same primitive float
// ops (mul, mul, sub / mul, mul, add) the scalar std::complex kernel
// performs — which is what makes the two kernels BIT-IDENTICAL, not merely
// close.
//
// Determinism contract (pinned by tests/test_gemm_soa.cpp):
//   1. Same blocking constants => same per-panel partial-sum structure for
//      k > kGemmKc.
//   2. Per element, products accumulate in ascending p; fp addition is
//      commutative, so `ar*bi + ai*br` matches std::complex's imag part
//      bit-for-bit regardless of operand order.
//   3. NO FMA: this translation unit is compiled with -ffp-contract=off
//      (see src/linalg/CMakeLists.txt) and uses no fmadd intrinsics, so a
//      mul+add pair is never contracted into a single-rounding FMA. The
//      scalar kernel targets baseline x86-64 (no FMA instructions exist
//      there), so both kernels round every product and every sum once.
//
// The TU is compiled with -mavx2 only where the compiler supports it; on
// other targets it degrades to stubs reporting the kernel unavailable.
#include "linalg/gemm_detail.hpp"

#include "common/error.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace sd::detail {

bool gemm_soa_compiled() noexcept {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

bool gemm_soa_runtime_ok() noexcept {
#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if !defined(__AVX2__)

void gemm_packed_soa_impl(Op, cplx, const CMat&, const CMat&, cplx, CMat&,
                          GemmWorkspace&) {
  SD_CHECK(false, "SoA GEMM kernel not compiled into this binary");
}

void gemm_grouped_soa_impl(cplx, const CMat&, index_t, const CMat&, cplx,
                           CMat&, std::span<const GemmGroup>,
                           GemmWorkspace&) {
  SD_CHECK(false, "SoA GEMM kernel not compiled into this binary");
}

#else

void gemm_packed_soa_impl(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                          cplx beta, CMat& c, GemmWorkspace& ws) {
  const auto [m, k] = op_shape(op_a, a);
  const index_t n = b.cols();

  constexpr index_t kMC = kGemmMc;
  constexpr index_t kKC = kGemmKc;
  constexpr index_t kNC = kGemmNc;
  constexpr usize kAPlane = static_cast<usize>(kMC) * kKC;
  constexpr usize kBPlane = static_cast<usize>(kKC) * kNC;

  // Split-complex panel planes: [0, plane) real, [plane, 2*plane) imag.
  const auto a_buf = ws.a_planes(kAPlane);
  const auto b_buf = ws.b_planes(kBPlane);
  real* const a_re = a_buf.data();
  real* const a_im = a_buf.data() + kAPlane;
  real* const b_re = b_buf.data();
  real* const b_im = b_buf.data() + kBPlane;

  gemm_apply_beta(beta, c);

  const real alpha_re = alpha.real();
  const real alpha_im = alpha.imag();
  const __m256 v_alpha_re = _mm256_set1_ps(alpha_re);
  const __m256 v_alpha_im = _mm256_set1_ps(alpha_im);

  for (index_t pc = 0; pc < k; pc += kKC) {
    const index_t kb = std::min(kKC, k - pc);
    for (index_t jc = 0; jc < n; jc += kNC) {
      const index_t nb = std::min(kNC, n - jc);
      // Pack (deinterleave) the B block (kb x nb), row-major planes.
      for (index_t p = 0; p < kb; ++p) {
        const cplx* src = &b(pc + p, jc);
        real* dr = b_re + static_cast<usize>(p) * nb;
        real* di = b_im + static_cast<usize>(p) * nb;
        for (index_t j = 0; j < nb; ++j) {
          dr[j] = src[j].real();
          di[j] = src[j].imag();
        }
      }
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mb = std::min(kMC, m - ic);
        // Pack op(A) block (mb x kb) planes.
        for (index_t i = 0; i < mb; ++i) {
          real* dr = a_re + static_cast<usize>(i) * kb;
          real* di = a_im + static_cast<usize>(i) * kb;
          for (index_t p = 0; p < kb; ++p) {
            const cplx v = gemm_op_at(op_a, a, ic + i, pc + p);
            dr[p] = v.real();
            di[p] = v.imag();
          }
        }
        // Micro-kernel: one output row at a time, 8 output columns per
        // iteration; per-lane independent accumulators keep each element's
        // reduction order equal to the scalar kernel's.
        for (index_t i = 0; i < mb; ++i) {
          const real* ar_row = a_re + static_cast<usize>(i) * kb;
          const real* ai_row = a_im + static_cast<usize>(i) * kb;
          index_t j = 0;
          for (; j + 8 <= nb; j += 8) {
            __m256 acc_re = _mm256_setzero_ps();
            __m256 acc_im = _mm256_setzero_ps();
            const real* brp = b_re + j;
            const real* bip = b_im + j;
            for (index_t p = 0; p < kb; ++p, brp += nb, bip += nb) {
              const __m256 ar = _mm256_broadcast_ss(ar_row + p);
              const __m256 ai = _mm256_broadcast_ss(ai_row + p);
              const __m256 br = _mm256_loadu_ps(brp);
              const __m256 bi = _mm256_loadu_ps(bip);
              acc_re = _mm256_add_ps(
                  acc_re, _mm256_sub_ps(_mm256_mul_ps(ar, br),
                                        _mm256_mul_ps(ai, bi)));
              acc_im = _mm256_add_ps(
                  acc_im, _mm256_add_ps(_mm256_mul_ps(ar, bi),
                                        _mm256_mul_ps(ai, br)));
            }
            // c(i, j..j+7) += alpha * acc, as in the scalar epilogue.
            const __m256 out_re =
                _mm256_sub_ps(_mm256_mul_ps(v_alpha_re, acc_re),
                              _mm256_mul_ps(v_alpha_im, acc_im));
            const __m256 out_im =
                _mm256_add_ps(_mm256_mul_ps(v_alpha_re, acc_im),
                              _mm256_mul_ps(v_alpha_im, acc_re));
            // Re-interleave (r,i) lane pairs and accumulate into C.
            const __m256 lo = _mm256_unpacklo_ps(out_re, out_im);
            const __m256 hi = _mm256_unpackhi_ps(out_re, out_im);
            const __m256 first = _mm256_permute2f128_ps(lo, hi, 0x20);
            const __m256 second = _mm256_permute2f128_ps(lo, hi, 0x31);
            real* cp = reinterpret_cast<real*>(&c(ic + i, jc + j));
            _mm256_storeu_ps(cp,
                             _mm256_add_ps(_mm256_loadu_ps(cp), first));
            _mm256_storeu_ps(
                cp + 8, _mm256_add_ps(_mm256_loadu_ps(cp + 8), second));
          }
          // Column tail: same primitive op sequence, scalar lanes.
          for (; j < nb; ++j) {
            real acc_re = 0, acc_im = 0;
            const real* brp = b_re + j;
            const real* bip = b_im + j;
            for (index_t p = 0; p < kb; ++p, brp += nb, bip += nb) {
              const real ar = ar_row[p];
              const real ai = ai_row[p];
              const real br = *brp;
              const real bi = *bip;
              acc_re += ar * br - ai * bi;
              acc_im += ar * bi + ai * br;
            }
            const real out_re = alpha_re * acc_re - alpha_im * acc_im;
            const real out_im = alpha_re * acc_im + alpha_im * acc_re;
            cplx& dst = c(ic + i, jc + j);
            dst = cplx{dst.real() + out_re, dst.imag() + out_im};
          }
        }
      }
    }
  }
}

// Grouped block-diagonal kernel for the wide-BFS level product. Same
// determinism contract as the packed kernel above: k fits one K panel (the
// caller checked k <= kGemmKc), each output element owns an independent
// (re, im) accumulator pair reduced in ascending p, and the complex MAC is
// decomposed into the same mul/mul/sub + mul/mul/add primitive float ops,
// never FMA-contracted (-ffp-contract=off on this TU). Each group's columns
// are therefore bit-identical to a solo gemm() on its own (A block, B slice).
void gemm_grouped_soa_impl(cplx alpha, const CMat& a_stack, index_t k,
                           const CMat& b, cplx beta, CMat& c,
                           std::span<const GemmGroup> groups,
                           GemmWorkspace& ws) {
  const index_t zr = c.rows();
  constexpr index_t kNC = kGemmNc;

  // A planes hold one zr x k block at a time; B planes hold one k x kNC
  // column panel. Both are served from the workspace high-water capacity.
  const usize a_plane = static_cast<usize>(zr) * static_cast<usize>(k);
  const usize b_plane = static_cast<usize>(k) * static_cast<usize>(kNC);
  const auto a_buf = ws.a_planes(a_plane);
  const auto b_buf = ws.b_planes(b_plane);
  real* const a_re = a_buf.data();
  real* const a_im = a_buf.data() + a_plane;
  real* const b_re = b_buf.data();
  real* const b_im = b_buf.data() + b_plane;

  const real alpha_re = alpha.real();
  const real alpha_im = alpha.imag();
  const __m256 v_alpha_re = _mm256_set1_ps(alpha_re);
  const __m256 v_alpha_im = _mm256_set1_ps(alpha_im);

  // beta pre-step on the group-covered regions only (groups are disjoint);
  // after this the micro-kernel accumulates with +=.
  for (const GemmGroup& g : groups) {
    if (beta == cplx{0, 0}) {
      for (index_t i = 0; i < zr; ++i) {
        cplx* row = &c(i, g.col);
        for (index_t j = 0; j < g.cols; ++j) row[j] = cplx{0, 0};
      }
    } else if (beta != cplx{1, 0}) {
      for (index_t i = 0; i < zr; ++i) {
        cplx* row = &c(i, g.col);
        for (index_t j = 0; j < g.cols; ++j) row[j] *= beta;
      }
    }
  }

  index_t packed_a_col = -1;  // consecutive groups often share an A block
  for (const GemmGroup& g : groups) {
    if (g.cols <= 0) continue;
    if (g.a_col != packed_a_col) {
      // Deinterleave this group's zr x k A block into planes.
      for (index_t i = 0; i < zr; ++i) {
        const cplx* src = &a_stack(i, g.a_col);
        real* dr = a_re + static_cast<usize>(i) * k;
        real* di = a_im + static_cast<usize>(i) * k;
        for (index_t p = 0; p < k; ++p) {
          dr[p] = src[p].real();
          di[p] = src[p].imag();
        }
      }
      packed_a_col = g.a_col;
    }
    for (index_t jc = 0; jc < g.cols; jc += kNC) {
      const index_t nb = std::min(kNC, g.cols - jc);
      // Deinterleave the k x nb B panel of this group's column slice.
      for (index_t p = 0; p < k; ++p) {
        const cplx* src = &b(p, g.col + jc);
        real* dr = b_re + static_cast<usize>(p) * nb;
        real* di = b_im + static_cast<usize>(p) * nb;
        for (index_t j = 0; j < nb; ++j) {
          dr[j] = src[j].real();
          di[j] = src[j].imag();
        }
      }
      for (index_t i = 0; i < zr; ++i) {
        const real* ar_row = a_re + static_cast<usize>(i) * k;
        const real* ai_row = a_im + static_cast<usize>(i) * k;
        index_t j = 0;
        for (; j + 8 <= nb; j += 8) {
          __m256 acc_re = _mm256_setzero_ps();
          __m256 acc_im = _mm256_setzero_ps();
          const real* brp = b_re + j;
          const real* bip = b_im + j;
          for (index_t p = 0; p < k; ++p, brp += nb, bip += nb) {
            const __m256 ar = _mm256_broadcast_ss(ar_row + p);
            const __m256 ai = _mm256_broadcast_ss(ai_row + p);
            const __m256 br = _mm256_loadu_ps(brp);
            const __m256 bi = _mm256_loadu_ps(bip);
            acc_re = _mm256_add_ps(
                acc_re, _mm256_sub_ps(_mm256_mul_ps(ar, br),
                                      _mm256_mul_ps(ai, bi)));
            acc_im = _mm256_add_ps(
                acc_im, _mm256_add_ps(_mm256_mul_ps(ar, bi),
                                      _mm256_mul_ps(ai, br)));
          }
          const __m256 out_re =
              _mm256_sub_ps(_mm256_mul_ps(v_alpha_re, acc_re),
                            _mm256_mul_ps(v_alpha_im, acc_im));
          const __m256 out_im =
              _mm256_add_ps(_mm256_mul_ps(v_alpha_re, acc_im),
                            _mm256_mul_ps(v_alpha_im, acc_re));
          const __m256 lo = _mm256_unpacklo_ps(out_re, out_im);
          const __m256 hi = _mm256_unpackhi_ps(out_re, out_im);
          const __m256 first = _mm256_permute2f128_ps(lo, hi, 0x20);
          const __m256 second = _mm256_permute2f128_ps(lo, hi, 0x31);
          real* cp = reinterpret_cast<real*>(&c(i, g.col + jc + j));
          _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), first));
          _mm256_storeu_ps(cp + 8,
                           _mm256_add_ps(_mm256_loadu_ps(cp + 8), second));
        }
        for (; j < nb; ++j) {
          real acc_re = 0, acc_im = 0;
          const real* brp = b_re + j;
          const real* bip = b_im + j;
          for (index_t p = 0; p < k; ++p, brp += nb, bip += nb) {
            const real ar = ar_row[p];
            const real ai = ai_row[p];
            const real br = *brp;
            const real bi = *bip;
            acc_re += ar * br - ai * bi;
            acc_im += ar * bi + ai * br;
          }
          const real out_re = alpha_re * acc_re - alpha_im * acc_im;
          const real out_im = alpha_re * acc_im + alpha_im * acc_re;
          cplx& dst = c(i, g.col + jc + j);
          dst = cplx{dst.real() + out_re, dst.imag() + out_im};
        }
      }
    }
  }
}

#endif  // __AVX2__

}  // namespace sd::detail
