// Dense row-major matrix over an arbitrary scalar, sized at runtime.
//
// This is the storage type for the channel matrix H, the triangular factor R,
// and the batched "tree state" matrices of the GEMM-based sphere decoder.
// Deliberately small: owning storage + element access + a few structural
// helpers. All numerics live in gemm/qr/solve.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sd {

template <typename T>
class Mat {
 public:
  using value_type = T;

  Mat() = default;

  /// rows x cols matrix, zero-initialized.
  Mat(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols)) {}

  /// rows x cols matrix filled with `fill`.
  Mat(index_t rows, index_t cols, T fill)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), fill) {}

  /// Row-major construction from a flat initializer list.
  Mat(index_t rows, index_t cols, std::initializer_list<T> values)
      : rows_(rows), cols_(cols), data_(values) {
    SD_CHECK(data_.size() == checked_size(rows, cols),
             "initializer size must equal rows*cols");
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] usize size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(index_t r, index_t c) noexcept {
    return data_[static_cast<usize>(r) * static_cast<usize>(cols_) + static_cast<usize>(c)];
  }
  [[nodiscard]] const T& operator()(index_t r, index_t c) const noexcept {
    return data_[static_cast<usize>(r) * static_cast<usize>(cols_) + static_cast<usize>(c)];
  }

  /// Bounds-checked access, for tests and non-hot-path code.
  [[nodiscard]] T& at(index_t r, index_t c) {
    SD_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index out of range");
    return (*this)(r, c);
  }
  [[nodiscard]] const T& at(index_t r, index_t c) const {
    SD_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index out of range");
    return (*this)(r, c);
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<T> row(index_t r) noexcept {
    return {data_.data() + static_cast<usize>(r) * static_cast<usize>(cols_),
            static_cast<usize>(cols_)};
  }
  [[nodiscard]] std::span<const T> row(index_t r) const noexcept {
    return {data_.data() + static_cast<usize>(r) * static_cast<usize>(cols_),
            static_cast<usize>(cols_)};
  }

  [[nodiscard]] std::span<T> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const T> flat() const noexcept { return data_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Resizes and zero-fills (contents are not preserved).
  void reset(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(checked_size(rows, cols), T{});
  }

  /// Resizes WITHOUT clearing: surviving elements keep their (reinterpreted)
  /// values, so the caller must overwrite every element it reads. This is
  /// the scratch-reuse primitive — once the backing vector reaches its
  /// high-water capacity, reshape never allocates again.
  void reshape(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(checked_size(rows, cols));
  }

  /// Identity matrix of dimension n.
  [[nodiscard]] static Mat identity(index_t n) {
    Mat m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  friend bool operator==(const Mat& a, const Mat& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  static usize checked_size(index_t rows, index_t cols) {
    SD_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    return static_cast<usize>(rows) * static_cast<usize>(cols);
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> data_;
};

/// Complex single-precision matrix — the signal-chain workhorse.
using CMat = Mat<cplx>;
/// Real single-precision matrix.
using RMat = Mat<real>;
/// Complex double-precision matrix, for test oracles.
using CMatD = Mat<cplxd>;

/// Complex vectors are stored as std::vector; spans are the in-API currency.
using CVec = std::vector<cplx>;

/// Conjugate transpose (out-of-place).
template <typename T>
[[nodiscard]] Mat<T> hermitian(const Mat<T>& a) {
  Mat<T> out(a.cols(), a.rows());
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t c = 0; c < a.cols(); ++c) {
      out(c, r) = std::conj(a(r, c));
    }
  }
  return out;
}

/// Plain transpose (out-of-place).
template <typename T>
[[nodiscard]] Mat<T> transpose(const Mat<T>& a) {
  Mat<T> out(a.cols(), a.rows());
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t c = 0; c < a.cols(); ++c) {
      out(c, r) = a(r, c);
    }
  }
  return out;
}

}  // namespace sd
