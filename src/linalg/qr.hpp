// QR decomposition of the channel matrix.
//
// Sphere decoding rewrites ||y - Hs||^2 as ||ybar - Rs||^2 with H = QR and
// ybar = Q^H y (paper Eq. 4). This module provides a Householder QR (primary,
// numerically robust) and a Modified Gram-Schmidt QR (used as a cross-check
// oracle in tests). R is normalized to a non-negative real diagonal, which
// the Schnorr-Euchner child enumeration in the decoders relies on.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace sd {

/// Householder QR factorization of an N x M matrix with N >= M.
///
/// Stores the compact reflector representation so Q^H can be applied to
/// received vectors in O(N*M) without forming Q, exactly the way the
/// preprocessing step runs on the host in the paper's system.
class QrFactorization {
 public:
  /// Empty factorization; call factor() before any query.
  QrFactorization() = default;

  /// Factorizes H (N x M, N >= M). Throws on shape violations.
  explicit QrFactorization(const CMat& h) { factor(h); }

  /// (Re)factorizes H in place, recycling all internal storage. After the
  /// first call with a given shape, refactoring performs no heap allocation —
  /// this is what lets the decoders' preprocess step run allocation-free in
  /// steady state.
  void factor(const CMat& h);

  [[nodiscard]] index_t rows() const noexcept { return n_; }
  [[nodiscard]] index_t cols() const noexcept { return m_; }

  /// Upper-triangular M x M factor with real non-negative diagonal.
  [[nodiscard]] const CMat& r() const noexcept { return r_; }

  /// Computes ybar = (Q^H y) truncated to the first M entries — the only part
  /// the triangular search needs. y must have length N.
  [[nodiscard]] CVec apply_qh(std::span<const cplx> y) const;

  /// Allocation-free apply_qh: writes ybar (resized to M) using `work` as the
  /// length-N intermediate. Bitwise-identical to apply_qh().
  void apply_qh_into(std::span<const cplx> y, CVec& ybar, CVec& work) const;

  /// Reconstructs the thin N x M Q factor (orthonormal columns). Used by
  /// tests and by code that needs explicit Q; O(N*M^2).
  [[nodiscard]] CMat thin_q() const;

 private:
  index_t n_ = 0;
  index_t m_ = 0;
  CMat work_;                  ///< factor() working copy of H
  CMat reflectors_;            ///< Householder vectors, column k in rows k..N-1
  std::vector<real> v_norm2_;  ///< squared norms of each reflector
  std::vector<cplx> row_phase_;  ///< per-row phase applied to make diag(R) real
  CMat r_;
};

/// Result of a one-shot (Q, R) factorization.
struct QrPair {
  CMat q;  ///< thin N x M with orthonormal columns
  CMat r;  ///< upper-triangular M x M, real non-negative diagonal
};

/// Modified Gram-Schmidt QR. Simple and independent of the Householder path;
/// tests require both to reconstruct H to tolerance.
[[nodiscard]] QrPair qr_mgs(const CMat& h);

}  // namespace sd
