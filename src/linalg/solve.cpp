#include "linalg/solve.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/gemm.hpp"

namespace sd {

namespace {
constexpr real kPivotEps = real{1e-20};
}

CVec back_substitute(const CMat& r, std::span<const cplx> b) {
  const index_t m = r.rows();
  SD_CHECK(r.cols() == m, "back substitution needs a square matrix");
  SD_CHECK(static_cast<index_t>(b.size()) == m, "rhs length mismatch");
  CVec x(b.begin(), b.end());
  for (index_t i = m - 1; i >= 0; --i) {
    cplx acc = x[static_cast<usize>(i)];
    for (index_t j = i + 1; j < m; ++j) {
      acc -= r(i, j) * x[static_cast<usize>(j)];
    }
    SD_CHECK(norm2(r(i, i)) > kPivotEps, "zero pivot in back substitution");
    x[static_cast<usize>(i)] = acc / r(i, i);
  }
  return x;
}

CVec forward_substitute(const CMat& l, std::span<const cplx> b) {
  const index_t m = l.rows();
  SD_CHECK(l.cols() == m, "forward substitution needs a square matrix");
  SD_CHECK(static_cast<index_t>(b.size()) == m, "rhs length mismatch");
  CVec x(static_cast<usize>(m));
  for (index_t i = 0; i < m; ++i) {
    cplx acc = b[static_cast<usize>(i)];
    for (index_t j = 0; j < i; ++j) {
      acc -= l(i, j) * x[static_cast<usize>(j)];
    }
    SD_CHECK(norm2(l(i, i)) > kPivotEps, "zero pivot in forward substitution");
    x[static_cast<usize>(i)] = acc / l(i, i);
  }
  return x;
}

CMat cholesky(const CMat& a) {
  const index_t m = a.rows();
  SD_CHECK(a.cols() == m, "Cholesky needs a square matrix");
  CMat l(m, m);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      cplx acc = a(i, j);
      for (index_t k = 0; k < j; ++k) {
        acc -= l(i, k) * std::conj(l(j, k));
      }
      if (i == j) {
        SD_CHECK(acc.real() > real{0} &&
                     std::abs(acc.imag()) < real{1e-3} * (real{1} + acc.real()),
                 "matrix is not Hermitian positive definite");
        l(i, i) = cplx{std::sqrt(acc.real()), 0};
      } else {
        l(i, j) = acc / l(j, j).real();
      }
    }
  }
  return l;
}

CVec cholesky_solve(const CMat& l, std::span<const cplx> b) {
  // A x = b with A = L L^H: forward solve L w = b, then back solve L^H x = w.
  CVec w = forward_substitute(l, b);
  const CMat lh = hermitian(l);
  return back_substitute(lh, w);
}

void cholesky_into(const CMat& a, CMat& l) {
  const index_t m = a.rows();
  SD_CHECK(a.cols() == m, "Cholesky needs a square matrix");
  l.reshape(m, m);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      cplx acc = a(i, j);
      for (index_t k = 0; k < j; ++k) {
        acc -= l(i, k) * std::conj(l(j, k));
      }
      if (i == j) {
        SD_CHECK(acc.real() > real{0} &&
                     std::abs(acc.imag()) < real{1e-3} * (real{1} + acc.real()),
                 "matrix is not Hermitian positive definite");
        l(i, i) = cplx{std::sqrt(acc.real()), 0};
      } else {
        l(i, j) = acc / l(j, j).real();
      }
    }
  }
}

void cholesky_solve_in_place(const CMat& l, std::span<cplx> x) {
  const index_t m = l.rows();
  SD_CHECK(l.cols() == m, "Cholesky solve needs a square factor");
  SD_CHECK(static_cast<index_t>(x.size()) == m, "rhs length mismatch");
  // Forward solve L w = b in place.
  for (index_t i = 0; i < m; ++i) {
    cplx acc = x[static_cast<usize>(i)];
    for (index_t j = 0; j < i; ++j) {
      acc -= l(i, j) * x[static_cast<usize>(j)];
    }
    SD_CHECK(norm2(l(i, i)) > kPivotEps, "zero pivot in forward substitution");
    x[static_cast<usize>(i)] = acc / l(i, i);
  }
  // Back solve L^H x = w in place; L^H(i, j) = conj(L(j, i)).
  for (index_t i = m - 1; i >= 0; --i) {
    cplx acc = x[static_cast<usize>(i)];
    for (index_t j = i + 1; j < m; ++j) {
      acc -= std::conj(l(j, i)) * x[static_cast<usize>(j)];
    }
    x[static_cast<usize>(i)] = acc / std::conj(l(i, i));
  }
}

Lu lu_decompose(const CMat& a) {
  const index_t m = a.rows();
  SD_CHECK(a.cols() == m, "LU needs a square matrix");
  Lu f{a, std::vector<index_t>(static_cast<usize>(m))};
  for (index_t k = 0; k < m; ++k) {
    // Partial pivoting: pick the largest-magnitude element in column k.
    index_t pivot_row = k;
    real best = norm2(f.lu(k, k));
    for (index_t i = k + 1; i < m; ++i) {
      const real mag = norm2(f.lu(i, k));
      if (mag > best) {
        best = mag;
        pivot_row = i;
      }
    }
    SD_CHECK(best > kPivotEps, "singular matrix in LU decomposition");
    f.pivot[static_cast<usize>(k)] = pivot_row;
    if (pivot_row != k) {
      for (index_t j = 0; j < m; ++j) {
        std::swap(f.lu(k, j), f.lu(pivot_row, j));
      }
    }
    const cplx inv_pivot = cplx{1, 0} / f.lu(k, k);
    for (index_t i = k + 1; i < m; ++i) {
      const cplx factor = f.lu(i, k) * inv_pivot;
      f.lu(i, k) = factor;
      for (index_t j = k + 1; j < m; ++j) {
        f.lu(i, j) -= factor * f.lu(k, j);
      }
    }
  }
  return f;
}

CVec lu_solve(const Lu& f, std::span<const cplx> b) {
  const index_t m = f.lu.rows();
  SD_CHECK(static_cast<index_t>(b.size()) == m, "rhs length mismatch");
  CVec x(b.begin(), b.end());
  // Apply the recorded row swaps, then unit-lower forward solve.
  for (index_t k = 0; k < m; ++k) {
    std::swap(x[static_cast<usize>(k)],
              x[static_cast<usize>(f.pivot[static_cast<usize>(k)])]);
  }
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < i; ++j) {
      x[static_cast<usize>(i)] -= f.lu(i, j) * x[static_cast<usize>(j)];
    }
  }
  for (index_t i = m - 1; i >= 0; --i) {
    for (index_t j = i + 1; j < m; ++j) {
      x[static_cast<usize>(i)] -= f.lu(i, j) * x[static_cast<usize>(j)];
    }
    x[static_cast<usize>(i)] /= f.lu(i, i);
  }
  return x;
}

CMat inverse(const CMat& a) {
  const index_t m = a.rows();
  const Lu f = lu_decompose(a);
  CMat inv(m, m);
  CVec e(static_cast<usize>(m));
  for (index_t col = 0; col < m; ++col) {
    std::fill(e.begin(), e.end(), cplx{0, 0});
    e[static_cast<usize>(col)] = cplx{1, 0};
    const CVec x = lu_solve(f, e);
    for (index_t i = 0; i < m; ++i) {
      inv(i, col) = x[static_cast<usize>(i)];
    }
  }
  return inv;
}

CMat gram(const CMat& h) {
  CMat g(h.cols(), h.cols());
  gemm_naive(Op::kConjTrans, cplx{1, 0}, h, h, cplx{0, 0}, g);
  return g;
}

CMat zf_equalizer(const CMat& h) {
  const CMat g = gram(h);
  const CMat g_inv = inverse(g);
  const CMat hh = hermitian(h);
  CMat w(h.cols(), h.rows());
  gemm_naive(Op::kNone, cplx{1, 0}, g_inv, hh, cplx{0, 0}, w);
  return w;
}

CMat mmse_equalizer(const CMat& h, real sigma2) {
  SD_CHECK(sigma2 >= real{0}, "noise variance must be non-negative");
  CMat g = gram(h);
  for (index_t i = 0; i < g.rows(); ++i) {
    g(i, i) += cplx{sigma2, 0};
  }
  const CMat g_inv = inverse(g);
  const CMat hh = hermitian(h);
  CMat w(h.cols(), h.rows());
  gemm_naive(Op::kNone, cplx{1, 0}, g_inv, hh, cplx{0, 0}, w);
  return w;
}

}  // namespace sd
