// Internal machinery shared by the GEMM kernel translation units
// (gemm.cpp and gemm_soa_avx2.cpp). Not part of the public linalg API.
#pragma once

#include "linalg/gemm.hpp"
#include "linalg/gemm_workspace.hpp"
#include "linalg/matrix.hpp"

namespace sd::detail {

/// Element of op(A) at logical position (r, c).
[[nodiscard]] inline cplx gemm_op_at(Op op, const CMat& a, index_t r,
                                     index_t c) noexcept {
  return op == Op::kNone ? a(r, c) : std::conj(a(c, r));
}

/// The common beta pre-step of the packed kernels: beta == 0 OVERWRITES C
/// (BLAS semantics — stale NaN/Inf contents must not propagate), beta == 1
/// leaves it, anything else scales it. After this the kernels accumulate
/// with +=.
inline void gemm_apply_beta(cplx beta, CMat& c) {
  if (beta == cplx{0, 0}) {
    c.fill(cplx{0, 0});
  } else if (beta != cplx{1, 0}) {
    for (cplx& v : c.flat()) v *= beta;
  }
}

/// True iff this binary contains the AVX2 split-complex kernel (the TU was
/// compiled with AVX2 support).
[[nodiscard]] bool gemm_soa_compiled() noexcept;

/// True iff the executing CPU supports the instructions the SoA kernel uses.
[[nodiscard]] bool gemm_soa_runtime_ok() noexcept;

/// The split-complex (SoA) packed kernel. Preconditions: shapes checked,
/// gemm_soa_compiled() && gemm_soa_runtime_ok(). Bit-identical to the scalar
/// packed kernel by construction (same blocking, same per-element reduction
/// order, no FMA contraction — see DESIGN.md).
void gemm_packed_soa_impl(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                          cplx beta, CMat& c, GemmWorkspace& ws);

/// The split-complex (SoA) grouped block-diagonal kernel behind
/// gemm_grouped. Preconditions: shapes and group ranges checked,
/// k <= kGemmKc, gemm_soa_compiled() && gemm_soa_runtime_ok(). Every output
/// element reduces in ascending-p order from its own independent
/// accumulator pair with no FMA, so each group's columns are bit-identical
/// to a solo gemm() on that group's (A block, B slice).
void gemm_grouped_soa_impl(cplx alpha, const CMat& a_stack, index_t k,
                           const CMat& b, cplx beta, CMat& c,
                           std::span<const GemmGroup> groups,
                           GemmWorkspace& ws);

}  // namespace sd::detail
