// Triangular and general linear solves used by the linear detectors
// (ZF / MMSE) and by the decoders' preprocessing.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace sd {

/// Solves R x = b for upper-triangular R (M x M). Throws on a (near-)zero
/// diagonal pivot.
[[nodiscard]] CVec back_substitute(const CMat& r, std::span<const cplx> b);

/// Solves L x = b for lower-triangular L (M x M).
[[nodiscard]] CVec forward_substitute(const CMat& l, std::span<const cplx> b);

/// Cholesky factorization A = L L^H of a Hermitian positive-definite matrix.
/// Throws sd::invalid_argument_error if A is not positive definite.
[[nodiscard]] CMat cholesky(const CMat& a);

/// Solves A x = b with A Hermitian positive definite via Cholesky.
[[nodiscard]] CVec cholesky_solve(const CMat& l, std::span<const cplx> b);

/// Allocation-free Cholesky: factors A = L L^H into caller-owned `l`
/// (reshape()d to A's shape; only the lower triangle and diagonal are
/// written). Same arithmetic and the same PD check as cholesky(). Intended
/// for per-frame factorization in detector scratch arenas.
void cholesky_into(const CMat& a, CMat& l);

/// Allocation-free Cholesky solve: overwrites `x` (initially b) with the
/// solution of L L^H x = b. The L^H back substitution reads the stored L
/// conjugate-transposed instead of materializing hermitian(l).
void cholesky_solve_in_place(const CMat& l, std::span<cplx> x);

/// In-place partial-pivoting LU of a square matrix; returns the pivot
/// permutation. Throws on singularity.
struct Lu {
  CMat lu;                     ///< combined L (unit diag) and U factors
  std::vector<index_t> pivot;  ///< row swaps applied, pivot[k] = row swapped with k
};
[[nodiscard]] Lu lu_decompose(const CMat& a);

/// Solves A x = b given an LU factorization.
[[nodiscard]] CVec lu_solve(const Lu& f, std::span<const cplx> b);

/// Dense inverse via LU; intended for the small (M x M) equalizer matrices of
/// the linear detectors, not for large systems.
[[nodiscard]] CMat inverse(const CMat& a);

/// Gram matrix H^H H (M x M, Hermitian PSD).
[[nodiscard]] CMat gram(const CMat& h);

/// Zero-Forcing equalizer W = (H^H H)^{-1} H^H, so that s_hat = W y.
[[nodiscard]] CMat zf_equalizer(const CMat& h);

/// MMSE equalizer W = (H^H H + sigma2 I)^{-1} H^H.
[[nodiscard]] CMat mmse_equalizer(const CMat& h, real sigma2);

}  // namespace sd
