#include "linalg/ordering.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/norms.hpp"

namespace sd {

SortedQr qr_sorted(const CMat& h) {
  const index_t n = h.rows();
  const index_t m = h.cols();
  SD_CHECK(n >= m && m > 0, "sorted QR requires N >= M > 0");

  SortedQr out{CMat(n, m), CMat(m, m),
               std::vector<index_t>(static_cast<usize>(m))};
  std::iota(out.perm.begin(), out.perm.end(), index_t{0});

  CMat v = h;  // residual columns, permuted in place
  std::vector<double> col_norm_sq(static_cast<usize>(m), 0.0);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i < n; ++i) col_norm_sq[static_cast<usize>(j)] += norm2(v(i, j));
  }

  auto swap_cols = [&](index_t a, index_t b) {
    if (a == b) return;
    for (index_t i = 0; i < n; ++i) std::swap(v(i, a), v(i, b));
    // R columns already produced for steps < current also permute.
    for (index_t i = 0; i < m; ++i) std::swap(out.r(i, a), out.r(i, b));
    std::swap(col_norm_sq[static_cast<usize>(a)], col_norm_sq[static_cast<usize>(b)]);
    std::swap(out.perm[static_cast<usize>(a)], out.perm[static_cast<usize>(b)]);
  };

  for (index_t k = 0; k < m; ++k) {
    // Pick the remaining column with minimum residual norm (SQRD rule).
    index_t best = k;
    for (index_t j = k + 1; j < m; ++j) {
      if (col_norm_sq[static_cast<usize>(j)] < col_norm_sq[static_cast<usize>(best)]) {
        best = j;
      }
    }
    swap_cols(k, best);

    // The running downdate of col_norm_sq loses precision on ill-conditioned
    // channels (it can underflow to zero while the true residual is small
    // but nonzero); recompute the pivot's exact residual norm before use.
    double exact_norm_sq = 0.0;
    for (index_t i = 0; i < n; ++i) exact_norm_sq += norm2(v(i, k));
    col_norm_sq[static_cast<usize>(k)] = exact_norm_sq;
    const real nrm = static_cast<real>(std::sqrt(exact_norm_sq));
    SD_CHECK(nrm > real{0}, "rank-deficient matrix in sorted QR");
    out.r(k, k) = cplx{nrm, 0};
    for (index_t i = 0; i < n; ++i) out.q(i, k) = v(i, k) / nrm;

    for (index_t j = k + 1; j < m; ++j) {
      cplx dot{0, 0};
      for (index_t i = 0; i < n; ++i) dot += std::conj(out.q(i, k)) * v(i, j);
      out.r(k, j) = dot;
      for (index_t i = 0; i < n; ++i) v(i, j) -= dot * out.q(i, k);
      col_norm_sq[static_cast<usize>(j)] -= static_cast<double>(norm2(dot));
      if (col_norm_sq[static_cast<usize>(j)] < 0.0) col_norm_sq[static_cast<usize>(j)] = 0.0;
    }
  }
  return out;
}

CVec unpermute(const std::vector<index_t>& perm, const CVec& layered) {
  SD_CHECK(perm.size() == layered.size(), "permutation length mismatch");
  CVec out(layered.size());
  for (usize k = 0; k < perm.size(); ++k) {
    out[static_cast<usize>(perm[k])] = layered[k];
  }
  return out;
}

}  // namespace sd
