// Radix-2 FFT for the OFDM frame layer.
//
// The frequency-selective channel model converts a tapped-delay-line
// impulse response into per-subcarrier flat-fading matrices via an FFT of
// the taps; the OFDM modulator/demodulator uses the transform directly.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace sd {

/// In-place iterative radix-2 decimation-in-time FFT.
/// data.size() must be a power of two. Forward transform (no scaling).
void fft_inplace(std::span<cplx> data);

/// In-place inverse FFT, scaled by 1/N so ifft(fft(x)) == x.
void ifft_inplace(std::span<cplx> data);

/// Out-of-place convenience wrappers.
[[nodiscard]] CVec fft(std::span<const cplx> data);
[[nodiscard]] CVec ifft(std::span<const cplx> data);

/// True if n is a power of two (and positive).
[[nodiscard]] constexpr bool is_pow2(usize n) noexcept {
  return n > 0 && (n & (n - 1)) == 0;
}

}  // namespace sd
