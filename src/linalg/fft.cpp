#include "linalg/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace sd {

namespace {

/// Bit-reversal permutation.
void bit_reverse(std::span<cplx> data) {
  const usize n = data.size();
  usize j = 0;
  for (usize i = 1; i < n; ++i) {
    usize bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void transform(std::span<cplx> data, bool inverse) {
  const usize n = data.size();
  SD_CHECK(is_pow2(n), "FFT length must be a power of two");
  bit_reverse(data);
  for (usize len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cplx wlen{static_cast<real>(std::cos(angle)),
                    static_cast<real>(std::sin(angle))};
    for (usize i = 0; i < n; i += len) {
      cplx w{1, 0};
      for (usize k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const real scale = real{1} / static_cast<real>(n);
    for (cplx& x : data) x *= scale;
  }
}

}  // namespace

void fft_inplace(std::span<cplx> data) { transform(data, false); }

void ifft_inplace(std::span<cplx> data) { transform(data, true); }

CVec fft(std::span<const cplx> data) {
  CVec out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

CVec ifft(std::span<const cplx> data) {
  CVec out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

}  // namespace sd
