#include "linalg/lll.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"

namespace sd {

LllResult lll_reduce(const CMat& b, double delta) {
  SD_CHECK(delta > 0.5 && delta <= 1.0, "LLL delta must be in (0.5, 1]");
  const index_t m = b.cols();
  SD_CHECK(b.rows() >= m && m > 0, "basis must be N x M with N >= M");

  // Work on the R factor; column operations on R mirror into T.
  const QrFactorization qr(b);
  CMat r = qr.r();
  CMat t = CMat::identity(m);

  // Size-reduces column k against column j (j < k).
  auto size_reduce = [&](index_t k, index_t j) {
    const cplx mu = r(j, k) / r(j, j);
    const cplx c = round_gaussian(mu);
    if (c == cplx{0, 0}) return;
    for (index_t i = 0; i <= j; ++i) {
      r(i, k) -= c * r(i, j);
    }
    for (index_t i = 0; i < m; ++i) {
      t(i, k) -= c * t(i, j);
    }
  };

  LllResult out;
  index_t k = 1;
  int guard = 0;
  while (k < m) {
    SD_ASSERT(++guard < 100000);  // termination safety net
    size_reduce(k, k - 1);
    const double lhs = delta * static_cast<double>(norm2(r(k - 1, k - 1)));
    const double rhs = static_cast<double>(norm2(r(k - 1, k)) + norm2(r(k, k)));
    if (lhs > rhs) {
      // Lovász condition violated: swap columns k-1 and k...
      for (index_t i = 0; i < m; ++i) {
        std::swap(r(i, k - 1), r(i, k));
        std::swap(t(i, k - 1), t(i, k));
      }
      ++out.swaps;
      // ...and restore triangularity with a Givens rotation on the two rows.
      const cplx a = r(k - 1, k - 1);
      const cplx bb = r(k, k - 1);
      const real rho = static_cast<real>(
          std::sqrt(static_cast<double>(norm2(a) + norm2(bb))));
      if (rho > real{0}) {
        const cplx c0 = std::conj(a) / rho;
        const cplx c1 = std::conj(bb) / rho;
        for (index_t col = k - 1; col < m; ++col) {
          const cplx top = r(k - 1, col);
          const cplx bot = r(k, col);
          r(k - 1, col) = c0 * top + c1 * bot;
          r(k, col) = -bb / rho * top + a / rho * bot;
        }
        r(k, k - 1) = cplx{0, 0};
      }
      k = std::max<index_t>(1, k - 1);
    } else {
      for (index_t j = k - 1; j >= 0; --j) {
        size_reduce(k, j);
      }
      ++k;
    }
  }

  out.t = t;
  out.reduced.reset(b.rows(), m);
  gemm_naive(Op::kNone, cplx{1, 0}, b, t, cplx{0, 0}, out.reduced);
  // T is unimodular over Z[j]; its inverse is computed numerically and
  // snapped back onto the Gaussian integers.
  out.t_inv = inverse(t);
  for (cplx& v : out.t_inv.flat()) {
    const cplx snapped = round_gaussian(v);
    SD_ASSERT(std::abs(v - snapped) < real{1e-2});
    v = snapped;
  }
  return out;
}

double orthogonality_defect(const CMat& b) {
  const QrFactorization qr(b);
  const CMat& r = qr.r();
  double log_defect = 0.0;
  for (index_t j = 0; j < b.cols(); ++j) {
    double col_norm_sq = 0.0;
    for (index_t i = 0; i <= j; ++i) {
      col_norm_sq += static_cast<double>(norm2(r(i, j)));
    }
    log_defect += 0.5 * std::log(col_norm_sq) -
                  std::log(static_cast<double>(r(j, j).real()));
  }
  return std::exp(log_defect);
}

}  // namespace sd
