// Complex GEMM kernels.
//
// The paper refactors sphere decoding from memory-bound matrix-vector work
// (BLAS-2) to compute-bound matrix-matrix work (BLAS-3) so it can exploit a
// systolic GEMM engine. This module provides the CPU-side GEMM used by the
// optimized CPU decoder (the paper used MKL; we implement a blocked, packed
// kernel from scratch) plus a naive reference used as the correctness oracle
// and as the "direct port" cost model for the baseline FPGA design.
#pragma once

#include <cstdint>
#include <span>

#include "linalg/gemm_workspace.hpp"
#include "linalg/matrix.hpp"

namespace sd {

/// Operation applied to the A operand of a GEMM/GEMV.
enum class Op : std::uint8_t {
  kNone,       ///< use A as stored
  kConjTrans,  ///< use A^H (conjugate transpose)
};

/// Which micro-kernel backs gemm_packed. The scalar and SoA kernels are
/// bit-identical by construction (same blocking, same per-element reduction
/// order, no FMA contraction — DESIGN.md §on CPU GEMM kernels), so the
/// selection is a pure performance choice and never changes results.
enum class GemmKernel : std::uint8_t {
  kAuto,    ///< SoA where compiled in and the CPU supports it, else scalar
  kScalar,  ///< force the scalar (interleaved std::complex) packed kernel
  kSoa,     ///< force the split-complex SIMD kernel (scalar if unavailable)
};

/// True iff the split-complex SIMD kernel is compiled into this binary AND
/// the executing CPU supports it (AVX2).
[[nodiscard]] bool gemm_soa_available() noexcept;

/// Overrides kernel selection process-wide (A/B testing; also settable via
/// the SD_GEMM_KERNEL environment variable: "auto" | "scalar" | "soa").
/// The programmatic override wins over the environment.
void set_gemm_kernel_override(GemmKernel kernel) noexcept;
[[nodiscard]] GemmKernel gemm_kernel_override() noexcept;

/// The kernel gemm_packed resolves to right now: kScalar or kSoa. A forced
/// kSoa degrades to kScalar when the SoA kernel is unavailable, so callers
/// (benchmarks) can label series with what actually ran.
[[nodiscard]] GemmKernel active_gemm_kernel() noexcept;

/// Panel blocking constants of the packed kernel. kGemmKc is the K-dimension
/// panel depth: within one K-panel the packed kernel accumulates in plain
/// ascending-p order, which is why the naive kernel is bitwise identical to
/// it for k <= kGemmKc (and only then — beyond one panel the packed kernel
/// splits the reduction into per-panel partial sums).
inline constexpr index_t kGemmMc = 64;
inline constexpr index_t kGemmKc = 128;
inline constexpr index_t kGemmNc = 128;

/// C = alpha * op(A) * B + beta * C. Reference implementation, used as the
/// test oracle and by the un-optimized "baseline" device models.
/// Shapes: op(A) is m x k, B is k x n, C is m x n.
/// beta == 0 OVERWRITES C (BLAS semantics: stale NaN/Inf never propagate).
void gemm_naive(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                CMat& c);

/// C = alpha * op(A) * B + beta * C. The cache-blocked, operand-packed path,
/// always (no small-shape dispatch), backed by the scalar or the SoA kernel
/// per active_gemm_kernel() — a choice that never changes the result bits.
/// Exposed so tests can pin the fast path's bitwise-identity claim against
/// it on boundary shapes. The overload without a workspace uses the calling
/// thread's default (GemmWorkspace::thread_local_instance()).
void gemm_packed(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                 CMat& c);
void gemm_packed(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                 CMat& c, GemmWorkspace& ws);

/// The scalar (interleaved std::complex) packed kernel, unconditionally —
/// the A/B baseline the SoA kernel is pinned against.
void gemm_packed_scalar(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                        cplx beta, CMat& c);
void gemm_packed_scalar(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                        cplx beta, CMat& c, GemmWorkspace& ws);

/// The split-complex (SoA planes, SIMD-across-columns) packed kernel,
/// unconditionally. Throws sd::invalid_argument_error when
/// !gemm_soa_available(); use gemm_packed for graceful dispatch.
void gemm_packed_soa(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                     cplx beta, CMat& c);
void gemm_packed_soa(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                     cplx beta, CMat& c, GemmWorkspace& ws);

/// C = alpha * op(A) * B + beta * C. Cache-blocked, operand-packed kernel —
/// the "optimized CPU" implementation. Small shapes (m*n*k <= 4096 AND
/// k <= kGemmKc) dispatch to gemm_naive, whose accumulation order is bitwise
/// identical within a single K-panel; results are therefore independent of
/// the dispatch decision.
void gemm(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
          CMat& c);
void gemm(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
          CMat& c, GemmWorkspace& ws);

/// One slice of a grouped (block-diagonal) GEMM. The group's A block is the
/// zr x k sub-matrix of the stacked operand starting at column `a_col`; it
/// applies to the `cols` B/C columns starting at `col`.
struct GemmGroup {
  index_t a_col = 0;  ///< first column of this group's A block in a_stack
  index_t col = 0;    ///< first B/C column this group covers
  index_t cols = 0;   ///< number of B/C columns in this group
};

/// Grouped (block-diagonal) GEMM:
///   C[:, g] = alpha * A_g * B[:, g] + beta * C[:, g]   for every group g,
/// in one kernel invocation. This is the wide-BFS primitive: frames with
/// DIFFERENT channels stack their level products side by side, each group
/// reading its own zr x k A block out of `a_stack` (groups may share an
/// a_col). Groups must cover pairwise-disjoint column ranges of C; columns
/// no group covers are left untouched (beta is applied per group region).
///
/// Requires k <= kGemmKc: every output element's reduction is then a single
/// ascending-p panel with no FMA contraction, i.e. exactly the order both
/// gemm_naive and the packed kernels use — which makes each group's columns
/// bit-identical to a solo gemm() call on its own (A_g, B-slice) pair. The
/// kernel behind it follows active_gemm_kernel(), a choice that never
/// changes the result bits.
void gemm_grouped(cplx alpha, const CMat& a_stack, index_t k, const CMat& b,
                  cplx beta, CMat& c, std::span<const GemmGroup> groups);
void gemm_grouped(cplx alpha, const CMat& a_stack, index_t k, const CMat& b,
                  cplx beta, CMat& c, std::span<const GemmGroup> groups,
                  GemmWorkspace& ws);

/// y = alpha * op(A) * x + beta * y (BLAS-2). Shapes: op(A) is m x k, x has
/// length k, y has length m. The conjugate-transpose path accumulates in a
/// workspace buffer (thread-local default when none is given).
void gemv(Op op_a, cplx alpha, const CMat& a, std::span<const cplx> x,
          cplx beta, std::span<cplx> y);
void gemv(Op op_a, cplx alpha, const CMat& a, std::span<const cplx> x,
          cplx beta, std::span<cplx> y, GemmWorkspace& ws);

/// Complex multiply-add FLOP count of one m x n x k GEMM. One complex MAC is
/// 8 real FLOPs (4 mul + 4 add); used by the device timing models.
[[nodiscard]] constexpr std::uint64_t gemm_flops(index_t m, index_t n,
                                                 index_t k) noexcept {
  return 8ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

namespace detail {
/// Resolves the (rows, cols) of op(A) given the stored shape of A.
struct OpShape {
  index_t rows;
  index_t cols;
};
[[nodiscard]] inline OpShape op_shape(Op op, const CMat& a) noexcept {
  return op == Op::kNone ? OpShape{a.rows(), a.cols()}
                         : OpShape{a.cols(), a.rows()};
}
}  // namespace detail

}  // namespace sd
