// Complex GEMM kernels.
//
// The paper refactors sphere decoding from memory-bound matrix-vector work
// (BLAS-2) to compute-bound matrix-matrix work (BLAS-3) so it can exploit a
// systolic GEMM engine. This module provides the CPU-side GEMM used by the
// optimized CPU decoder (the paper used MKL; we implement a blocked, packed
// kernel from scratch) plus a naive reference used as the correctness oracle
// and as the "direct port" cost model for the baseline FPGA design.
#pragma once

#include <cstdint>
#include <span>

#include "linalg/matrix.hpp"

namespace sd {

/// Operation applied to the A operand of a GEMM/GEMV.
enum class Op : std::uint8_t {
  kNone,       ///< use A as stored
  kConjTrans,  ///< use A^H (conjugate transpose)
};

/// Panel blocking constants of the packed kernel. kGemmKc is the K-dimension
/// panel depth: within one K-panel the packed kernel accumulates in plain
/// ascending-p order, which is why the naive kernel is bitwise identical to
/// it for k <= kGemmKc (and only then — beyond one panel the packed kernel
/// splits the reduction into per-panel partial sums).
inline constexpr index_t kGemmMc = 64;
inline constexpr index_t kGemmKc = 128;
inline constexpr index_t kGemmNc = 128;

/// C = alpha * op(A) * B + beta * C. Reference implementation, used as the
/// test oracle and by the un-optimized "baseline" device models.
/// Shapes: op(A) is m x k, B is k x n, C is m x n.
void gemm_naive(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                CMat& c);

/// C = alpha * op(A) * B + beta * C. The cache-blocked, operand-packed
/// kernel, always (no small-shape dispatch). Exposed so tests can pin the
/// fast path's bitwise-identity claim against it on boundary shapes.
void gemm_packed(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                 CMat& c);

/// C = alpha * op(A) * B + beta * C. Cache-blocked, operand-packed kernel —
/// the "optimized CPU" implementation. Small shapes (m*n*k <= 4096 AND
/// k <= kGemmKc) dispatch to gemm_naive, whose accumulation order is bitwise
/// identical within a single K-panel; results are therefore independent of
/// the dispatch decision.
void gemm(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
          CMat& c);

/// y = alpha * op(A) * x + beta * y (BLAS-2). Shapes: op(A) is m x k, x has
/// length k, y has length m.
void gemv(Op op_a, cplx alpha, const CMat& a, std::span<const cplx> x,
          cplx beta, std::span<cplx> y);

/// Complex multiply-add FLOP count of one m x n x k GEMM. One complex MAC is
/// 8 real FLOPs (4 mul + 4 add); used by the device timing models.
[[nodiscard]] constexpr std::uint64_t gemm_flops(index_t m, index_t n,
                                                 index_t k) noexcept {
  return 8ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

namespace detail {
/// Resolves the (rows, cols) of op(A) given the stored shape of A.
struct OpShape {
  index_t rows;
  index_t cols;
};
[[nodiscard]] inline OpShape op_shape(Op op, const CMat& a) noexcept {
  return op == Op::kNone ? OpShape{a.rows(), a.cols()}
                         : OpShape{a.cols(), a.rows()};
}
}  // namespace detail

}  // namespace sd
