#include "linalg/qr.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/norms.hpp"

namespace sd {

namespace {

/// z / |z|, or 1 when z == 0. Defines the Householder reflection phase.
cplx unit_phase(cplx z) noexcept {
  const real mag = std::abs(z);
  if (mag == real{0}) return cplx{1, 0};
  return z / mag;
}

}  // namespace

void QrFactorization::factor(const CMat& h) {
  n_ = h.rows();
  m_ = h.cols();
  SD_CHECK(n_ >= m_ && m_ > 0, "QR requires an N x M matrix with N >= M > 0");

  // Work on a copy that is progressively triangularized in place. Copy
  // assignment reuses the previous factorization's storage.
  work_ = h;
  CMat& a = work_;
  reflectors_.reset(n_, m_);
  v_norm2_.assign(static_cast<usize>(m_), real{0});
  row_phase_.assign(static_cast<usize>(m_), cplx{1, 0});

  for (index_t k = 0; k < m_; ++k) {
    // Build the reflector from the trailing column a[k:, k].
    double col_norm_sq = 0.0;
    for (index_t i = k; i < n_; ++i) col_norm_sq += norm2(a(i, k));
    const real col_norm = static_cast<real>(std::sqrt(col_norm_sq));

    const cplx x0 = a(k, k);
    // alpha = -phase(x0) * ||x||: choosing the sign away from x0 avoids
    // catastrophic cancellation in v[0] = x0 - alpha.
    const cplx alpha = -unit_phase(x0) * col_norm;

    real vnorm2 = real{0};
    if (col_norm > real{0}) {
      reflectors_(k, k) = x0 - alpha;
      vnorm2 += norm2(reflectors_(k, k));
      for (index_t i = k + 1; i < n_; ++i) {
        reflectors_(i, k) = a(i, k);
        vnorm2 += norm2(a(i, k));
      }
    }
    v_norm2_[static_cast<usize>(k)] = vnorm2;

    if (vnorm2 > real{0}) {
      // Apply (I - 2 v v^H / ||v||^2) to the trailing block a[k:, k:].
      const real scale = real{2} / vnorm2;
      for (index_t j = k; j < m_; ++j) {
        cplx dot{0, 0};
        for (index_t i = k; i < n_; ++i) {
          dot += std::conj(reflectors_(i, k)) * a(i, j);
        }
        dot *= scale;
        for (index_t i = k; i < n_; ++i) {
          a(i, j) -= dot * reflectors_(i, k);
        }
      }
    }
    // The reflection maps the column onto alpha * e_k exactly; store that to
    // avoid the rounding noise left in a(k, k).
    a(k, k) = alpha;
    for (index_t i = k + 1; i < n_; ++i) a(i, k) = cplx{0, 0};
  }

  // Extract R and rotate each row so the diagonal is real non-negative.
  // ||ybar - Rs|| is invariant under per-row unit phases as long as the same
  // phase is applied to ybar (done in apply_qh).
  r_.reset(m_, m_);
  for (index_t k = 0; k < m_; ++k) {
    const cplx d = a(k, k);
    const cplx phase = std::conj(unit_phase(d));
    row_phase_[static_cast<usize>(k)] = phase;
    for (index_t j = k; j < m_; ++j) {
      r_(k, j) = phase * a(k, j);
    }
    // Clamp the diagonal's residual imaginary part (exactly zero in exact
    // arithmetic).
    r_(k, k) = cplx{r_(k, k).real(), 0};
  }
}

CVec QrFactorization::apply_qh(std::span<const cplx> y) const {
  CVec ybar;
  CVec work;
  apply_qh_into(y, ybar, work);
  return ybar;
}

void QrFactorization::apply_qh_into(std::span<const cplx> y, CVec& ybar,
                                    CVec& work) const {
  SD_CHECK(static_cast<index_t>(y.size()) == n_, "y length must equal N");
  work.assign(y.begin(), y.end());
  CVec& w = work;
  for (index_t k = 0; k < m_; ++k) {
    const real vnorm2 = v_norm2_[static_cast<usize>(k)];
    if (vnorm2 <= real{0}) continue;
    const real scale = real{2} / vnorm2;
    cplx dot{0, 0};
    for (index_t i = k; i < n_; ++i) {
      dot += std::conj(reflectors_(i, k)) * w[static_cast<usize>(i)];
    }
    dot *= scale;
    for (index_t i = k; i < n_; ++i) {
      w[static_cast<usize>(i)] -= dot * reflectors_(i, k);
    }
  }
  ybar.resize(static_cast<usize>(m_));
  for (index_t k = 0; k < m_; ++k) {
    ybar[static_cast<usize>(k)] =
        row_phase_[static_cast<usize>(k)] * w[static_cast<usize>(k)];
  }
}

CMat QrFactorization::thin_q() const {
  // Q = H_0 H_1 ... H_{M-1} applied to the first M columns of I, then each
  // column k scaled by conj(row_phase_k) so that Q * R == H still holds.
  CMat q(n_, m_);
  for (index_t col = 0; col < m_; ++col) {
    CVec e(static_cast<usize>(n_), cplx{0, 0});
    e[static_cast<usize>(col)] = cplx{1, 0};
    // Apply reflectors in reverse order (building Q rather than Q^H).
    for (index_t k = m_ - 1; k >= 0; --k) {
      const real vnorm2 = v_norm2_[static_cast<usize>(k)];
      if (vnorm2 <= real{0}) continue;
      const real scale = real{2} / vnorm2;
      cplx dot{0, 0};
      for (index_t i = k; i < n_; ++i) {
        dot += std::conj(reflectors_(i, k)) * e[static_cast<usize>(i)];
      }
      dot *= scale;
      for (index_t i = k; i < n_; ++i) {
        e[static_cast<usize>(i)] -= dot * reflectors_(i, k);
      }
    }
    const cplx col_phase = std::conj(row_phase_[static_cast<usize>(col)]);
    for (index_t i = 0; i < n_; ++i) {
      q(i, col) = col_phase * e[static_cast<usize>(i)];
    }
  }
  return q;
}

QrPair qr_mgs(const CMat& h) {
  const index_t n = h.rows();
  const index_t m = h.cols();
  SD_CHECK(n >= m && m > 0, "QR requires an N x M matrix with N >= M > 0");

  QrPair out{CMat(n, m), CMat(m, m)};
  CMat v = h;  // working columns

  for (index_t k = 0; k < m; ++k) {
    double nrm_sq = 0.0;
    for (index_t i = 0; i < n; ++i) nrm_sq += norm2(v(i, k));
    const real nrm = static_cast<real>(std::sqrt(nrm_sq));
    SD_CHECK(nrm > real{0}, "rank-deficient matrix in MGS QR");
    out.r(k, k) = cplx{nrm, 0};
    for (index_t i = 0; i < n; ++i) out.q(i, k) = v(i, k) / nrm;
    for (index_t j = k + 1; j < m; ++j) {
      cplx dot{0, 0};
      for (index_t i = 0; i < n; ++i) dot += std::conj(out.q(i, k)) * v(i, j);
      out.r(k, j) = dot;
      for (index_t i = 0; i < n; ++i) v(i, j) -= dot * out.q(i, k);
    }
  }
  return out;
}

}  // namespace sd
