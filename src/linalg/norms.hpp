// Vector/matrix norms and elementwise helpers.
#pragma once

#include <cmath>
#include <span>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace sd {

/// Squared Euclidean norm of a complex vector: sum |x_i|^2.
[[nodiscard]] inline double norm2_sq(std::span<const cplx> x) noexcept {
  double acc = 0.0;
  for (cplx v : x) acc += static_cast<double>(norm2(v));
  return acc;
}

/// Euclidean norm.
[[nodiscard]] inline double norm2(std::span<const cplx> x) noexcept {
  return std::sqrt(norm2_sq(x));
}

/// Squared Frobenius norm of a complex matrix.
[[nodiscard]] inline double frobenius_sq(const CMat& a) noexcept {
  return norm2_sq(a.flat());
}

/// Frobenius norm.
[[nodiscard]] inline double frobenius(const CMat& a) noexcept {
  return std::sqrt(frobenius_sq(a));
}

/// Max elementwise |a - b| over two equally-sized matrices.
[[nodiscard]] inline double max_abs_diff(const CMat& a, const CMat& b) {
  SD_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
           "shape mismatch in max_abs_diff");
  double worst = 0.0;
  for (usize i = 0; i < a.size(); ++i) {
    worst = std::max(worst, static_cast<double>(std::abs(a.flat()[i] - b.flat()[i])));
  }
  return worst;
}

/// Max elementwise |a - b| over two vectors.
[[nodiscard]] inline double max_abs_diff(std::span<const cplx> a,
                                         std::span<const cplx> b) {
  SD_CHECK(a.size() == b.size(), "length mismatch in max_abs_diff");
  double worst = 0.0;
  for (usize i = 0; i < a.size(); ++i) {
    worst = std::max(worst, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return worst;
}

}  // namespace sd
