// Detection-order preprocessing (SQRD).
//
// Sorted QR decomposition (Wubben et al.) permutes the channel columns so
// that the layer detected first (tree level M-1) is the most reliable one.
// The paper's decoder detects in natural antenna order; this module is the
// ablation knob that lets benches quantify how much ordering shrinks the
// search tree on top of the Best-FS strategy.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace sd {

/// Result of a sorted QR: H * P = Q * R where P is the column permutation.
struct SortedQr {
  CMat q;                    ///< thin N x M, orthonormal columns
  CMat r;                    ///< upper-triangular M x M, real non-neg diagonal
  std::vector<index_t> perm; ///< perm[k] = original antenna index of layer k
};

/// Sorted QR via MGS with min-norm column pivoting: at step k the remaining
/// column with the smallest residual norm is factored next, which pushes
/// reliable layers to the bottom of the tree (detected first).
[[nodiscard]] SortedQr qr_sorted(const CMat& h);

/// Undoes the permutation: given symbols in layer order, returns them in
/// original antenna order.
[[nodiscard]] CVec unpermute(const std::vector<index_t>& perm,
                             const CVec& layered);

}  // namespace sd
