// GemmWorkspace: reusable packing/accumulation scratch for the GEMM kernels.
//
// The packed kernels stream both operands through small panel buffers.
// Allocating those buffers inside every gemm_packed call — as the original
// implementation did — puts two heap round-trips on the decoder's innermost
// hot path, which the serve/dispatch layers traverse millions of times per
// soak. A GemmWorkspace owns those buffers and recycles them: every request
// is served from the high-water-mark capacity, so a warmed workspace makes
// the kernels allocation-free.
//
// Threading model: a workspace is NOT thread-safe; each thread uses its own.
// Call sites that do not thread one through explicitly (the overloads without
// a workspace parameter) fall back to a thread-local default instance, so
// concurrent decoders on different threads never contend or share buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sd::obs {
class CounterRegistry;
}

namespace sd {

/// Allocation/usage accounting of one workspace. `grow_events` counts the
/// requests that had to enlarge a buffer (zero in steady state), and
/// `bytes_reserved` the current high-water capacity across all buffers.
struct GemmWorkspaceStats {
  std::uint64_t acquires = 0;     ///< buffer requests served
  std::uint64_t grow_events = 0;  ///< requests that enlarged a buffer
  std::uint64_t bytes_reserved = 0;  ///< current capacity across buffers
};

class GemmWorkspace {
 public:
  /// Packed-A / packed-B panel buffers of the scalar (interleaved) kernel.
  [[nodiscard]] std::span<cplx> a_pack(usize n) { return ensure(a_pack_, n); }
  [[nodiscard]] std::span<cplx> b_pack(usize n) { return ensure(b_pack_, n); }

  /// Split-complex panel planes of the SoA kernel. A request of n elements
  /// returns 2*n floats: the real plane in [0, n), the imag plane in [n, 2n).
  [[nodiscard]] std::span<real> a_planes(usize n) {
    return ensure(a_planes_, 2 * n);
  }
  [[nodiscard]] std::span<real> b_planes(usize n) {
    return ensure(b_planes_, 2 * n);
  }

  /// Column accumulator of the conjugate-transpose gemv path.
  [[nodiscard]] std::span<cplx> gemv_acc(usize n) { return ensure(acc_, n); }

  [[nodiscard]] const GemmWorkspaceStats& stats() const noexcept {
    return stats_;
  }
  void reset_stats() noexcept {
    stats_.acquires = 0;
    stats_.grow_events = 0;
  }

  /// Pours a stats snapshot into the unified counter registry under
  /// "<prefix>.<counter>" names (e.g. "gemm.workspace.grow_events").
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "gemm.workspace") const;

  /// The calling thread's default workspace — what the workspace-less GEMM
  /// overloads use. One instance per thread, created on first use.
  [[nodiscard]] static GemmWorkspace& thread_local_instance();

 private:
  template <typename T>
  [[nodiscard]] std::span<T> ensure(std::vector<T>& v, usize n) {
    ++stats_.acquires;
    if (v.size() < n) {
      const usize old_cap = v.capacity();
      v.resize(n);
      if (v.capacity() != old_cap) {
        ++stats_.grow_events;
        stats_.bytes_reserved += (v.capacity() - old_cap) * sizeof(T);
      }
    }
    return {v.data(), n};
  }

  std::vector<cplx> a_pack_;
  std::vector<cplx> b_pack_;
  std::vector<cplx> acc_;
  std::vector<real> a_planes_;
  std::vector<real> b_planes_;
  GemmWorkspaceStats stats_;
};

}  // namespace sd
