// Complex LLL lattice-basis reduction (CLLL, Gan-Ling-Mow).
//
// Lattice-reduction-aided detection is the classic preprocessing that lets
// low-complexity detectors approach ML diversity: reduce the channel basis
// H -> H T (T unimodular over the Gaussian integers), detect in the reduced
// basis with simple rounding, and map back. Included as the preprocessing
// ablation counterpart to the paper's SQRD ordering.
#pragma once

#include "linalg/matrix.hpp"

namespace sd {

/// Result of a CLLL reduction of the columns of B.
struct LllResult {
  CMat reduced;     ///< B * T, the reduced basis (N x M)
  CMat t;           ///< unimodular Gaussian-integer transform (M x M)
  CMat t_inv;       ///< exact inverse of T (also Gaussian-integer)
  int swaps = 0;    ///< basis swaps performed (effort indicator)
};

/// Runs CLLL with parameter delta in (0.5, 1]; larger = stronger reduction.
/// B must have full column rank.
[[nodiscard]] LllResult lll_reduce(const CMat& b, double delta = 0.75);

/// Orthogonality defect of a basis: prod ||b_i|| / |det(B^H B)|^{1/2}.
/// 1 for orthogonal bases; LLL must not increase it.
[[nodiscard]] double orthogonality_defect(const CMat& b);

/// Rounds both components to the nearest integer (Gaussian-integer round).
[[nodiscard]] inline cplx round_gaussian(cplx z) noexcept {
  return {static_cast<real>(std::lround(z.real())),
          static_cast<real>(std::lround(z.imag()))};
}

}  // namespace sd
