#include "linalg/gemm.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "linalg/gemm_detail.hpp"
#include "obs/counters.hpp"

namespace sd {

namespace {

void check_gemm_shapes(Op op_a, const CMat& a, const CMat& b, const CMat& c) {
  const auto [am, ak] = detail::op_shape(op_a, a);
  SD_CHECK(ak == b.rows(), "GEMM inner dimensions must agree");
  SD_CHECK(am == c.rows() && b.cols() == c.cols(),
           "GEMM output shape must be m x n");
}

/// Element of op(A) at logical position (r, c).
inline cplx op_at(Op op, const CMat& a, index_t r, index_t c) noexcept {
  return detail::gemm_op_at(op, a, r, c);
}

GemmKernel parse_kernel_env() noexcept {
  const char* v = std::getenv("SD_GEMM_KERNEL");
  if (v == nullptr) return GemmKernel::kAuto;
  if (std::strcmp(v, "scalar") == 0 || std::strcmp(v, "packed") == 0) {
    return GemmKernel::kScalar;
  }
  if (std::strcmp(v, "soa") == 0) return GemmKernel::kSoa;
  return GemmKernel::kAuto;  // unknown values mean "no override"
}

std::atomic<GemmKernel>& kernel_override_slot() noexcept {
  static std::atomic<GemmKernel> slot{parse_kernel_env()};
  return slot;
}

}  // namespace

bool gemm_soa_available() noexcept {
  static const bool ok =
      detail::gemm_soa_compiled() && detail::gemm_soa_runtime_ok();
  return ok;
}

void set_gemm_kernel_override(GemmKernel kernel) noexcept {
  kernel_override_slot().store(kernel, std::memory_order_relaxed);
}

GemmKernel gemm_kernel_override() noexcept {
  return kernel_override_slot().load(std::memory_order_relaxed);
}

GemmKernel active_gemm_kernel() noexcept {
  switch (gemm_kernel_override()) {
    case GemmKernel::kScalar:
      return GemmKernel::kScalar;
    case GemmKernel::kSoa:
    case GemmKernel::kAuto:
      break;
  }
  return gemm_soa_available() ? GemmKernel::kSoa : GemmKernel::kScalar;
}

GemmWorkspace& GemmWorkspace::thread_local_instance() {
  thread_local GemmWorkspace ws;
  return ws;
}

void GemmWorkspace::export_counters(obs::CounterRegistry& registry,
                                    std::string_view prefix) const {
  const std::string p(prefix);
  registry.set(p + ".acquires", stats_.acquires);
  registry.set(p + ".grow_events", stats_.grow_events);
  registry.set(p + ".bytes_reserved", stats_.bytes_reserved);
}

void gemm_naive(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                CMat& c) {
  check_gemm_shapes(op_a, a, b, c);
  const auto [m, k] = detail::op_shape(op_a, a);
  const index_t n = b.cols();
  // beta == 0 must overwrite C: `alpha*acc + beta*c` would propagate stale
  // NaN/Inf from uninitialized C contents (the classic BLAS beta-zero bug).
  const bool overwrite = beta == cplx{0, 0};
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      cplx acc{0, 0};
      for (index_t p = 0; p < k; ++p) {
        acc += op_at(op_a, a, i, p) * b(p, j);
      }
      c(i, j) = overwrite ? alpha * acc : alpha * acc + beta * c(i, j);
    }
  }
}

void gemm(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
          CMat& c) {
  gemm(op_a, alpha, a, b, beta, c, GemmWorkspace::thread_local_instance());
}

void gemm(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
          CMat& c, GemmWorkspace& ws) {
  check_gemm_shapes(op_a, a, b, c);
  const auto [m, k] = detail::op_shape(op_a, a);
  const index_t n = b.cols();

  // Small-shape fast path: the sphere decoder issues millions of tiny
  // (1 x P x k) sibling-batch products, where the packed path's buffer
  // management dominates. The naive kernel accumulates in the same order as
  // the packed kernel ONLY while the whole reduction fits one K-panel
  // (k <= kGemmKc); beyond that the packed kernel forms per-panel partial
  // sums and the two orders — hence the rounded results — diverge. The
  // volume gate alone admitted shapes like 1 x 1 x 4096, silently breaking
  // the bitwise-identity contract the decoders rely on, so the k gate is
  // part of the dispatch, not just the comment.
  if (static_cast<std::uint64_t>(m) * n * k <= 4096 && k <= kGemmKc) {
    gemm_naive(op_a, alpha, a, b, beta, c);
    return;
  }
  gemm_packed(op_a, alpha, a, b, beta, c, ws);
}

void gemm_packed(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                 CMat& c) {
  gemm_packed(op_a, alpha, a, b, beta, c,
              GemmWorkspace::thread_local_instance());
}

void gemm_packed(Op op_a, cplx alpha, const CMat& a, const CMat& b, cplx beta,
                 CMat& c, GemmWorkspace& ws) {
  if (active_gemm_kernel() == GemmKernel::kSoa) {
    check_gemm_shapes(op_a, a, b, c);
    detail::gemm_packed_soa_impl(op_a, alpha, a, b, beta, c, ws);
    return;
  }
  gemm_packed_scalar(op_a, alpha, a, b, beta, c, ws);
}

void gemm_packed_soa(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                     cplx beta, CMat& c) {
  gemm_packed_soa(op_a, alpha, a, b, beta, c,
                  GemmWorkspace::thread_local_instance());
}

void gemm_packed_soa(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                     cplx beta, CMat& c, GemmWorkspace& ws) {
  SD_CHECK(gemm_soa_available(),
           "SoA GEMM kernel not available on this build/CPU");
  check_gemm_shapes(op_a, a, b, c);
  detail::gemm_packed_soa_impl(op_a, alpha, a, b, beta, c, ws);
}

void gemm_packed_scalar(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                        cplx beta, CMat& c) {
  gemm_packed_scalar(op_a, alpha, a, b, beta, c,
                     GemmWorkspace::thread_local_instance());
}

void gemm_packed_scalar(Op op_a, cplx alpha, const CMat& a, const CMat& b,
                        cplx beta, CMat& c, GemmWorkspace& ws) {
  check_gemm_shapes(op_a, a, b, c);
  const auto [m, k] = detail::op_shape(op_a, a);
  const index_t n = b.cols();

  // Block sizes chosen so one (MC x KC) A-panel plus a (KC x NC) B-panel fit
  // comfortably in L1/L2 for 8-byte complex<float>.
  constexpr index_t kMC = kGemmMc;
  constexpr index_t kKC = kGemmKc;
  constexpr index_t kNC = kGemmNc;

  // Pack op(A) block rows contiguously once per (i-block, p-block) so the
  // micro-kernel streams both operands with unit stride; this is the CPU
  // analogue of the FPGA design's prefetch/double-buffer unit. The panel
  // buffers come from the workspace, so a warmed call allocates nothing.
  const auto a_pack = ws.a_pack(static_cast<usize>(kMC) * kKC);
  const auto b_pack = ws.b_pack(static_cast<usize>(kKC) * kNC);

  // beta pre-step (overwrite / keep / scale) so the kernel accumulates +=.
  detail::gemm_apply_beta(beta, c);

  for (index_t pc = 0; pc < k; pc += kKC) {
    const index_t kb = std::min(kKC, k - pc);
    for (index_t jc = 0; jc < n; jc += kNC) {
      const index_t nb = std::min(kNC, n - jc);
      // Pack B block (kb x nb), row-major.
      for (index_t p = 0; p < kb; ++p) {
        const cplx* src = &b(pc + p, jc);
        cplx* dst = &b_pack[static_cast<usize>(p) * nb];
        for (index_t j = 0; j < nb; ++j) dst[j] = src[j];
      }
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mb = std::min(kMC, m - ic);
        // Pack op(A) block (mb x kb), row-major.
        for (index_t i = 0; i < mb; ++i) {
          cplx* dst = &a_pack[static_cast<usize>(i) * kb];
          for (index_t p = 0; p < kb; ++p) {
            dst[p] = op_at(op_a, a, ic + i, pc + p);
          }
        }
        // Micro-kernel: 2x2 register tile over the packed panels.
        index_t i = 0;
        for (; i + 1 < mb; i += 2) {
          const cplx* a0 = &a_pack[static_cast<usize>(i) * kb];
          const cplx* a1 = &a_pack[static_cast<usize>(i + 1) * kb];
          index_t j = 0;
          for (; j + 1 < nb; j += 2) {
            cplx c00{0, 0}, c01{0, 0}, c10{0, 0}, c11{0, 0};
            const cplx* bp = &b_pack[j];
            for (index_t p = 0; p < kb; ++p, bp += nb) {
              const cplx b0 = bp[0];
              const cplx b1 = bp[1];
              c00 += a0[p] * b0;
              c01 += a0[p] * b1;
              c10 += a1[p] * b0;
              c11 += a1[p] * b1;
            }
            c(ic + i, jc + j) += alpha * c00;
            c(ic + i, jc + j + 1) += alpha * c01;
            c(ic + i + 1, jc + j) += alpha * c10;
            c(ic + i + 1, jc + j + 1) += alpha * c11;
          }
          for (; j < nb; ++j) {
            cplx c0{0, 0}, c1{0, 0};
            const cplx* bp = &b_pack[j];
            for (index_t p = 0; p < kb; ++p, bp += nb) {
              c0 += a0[p] * *bp;
              c1 += a1[p] * *bp;
            }
            c(ic + i, jc + j) += alpha * c0;
            c(ic + i + 1, jc + j) += alpha * c1;
          }
        }
        for (; i < mb; ++i) {
          const cplx* a0 = &a_pack[static_cast<usize>(i) * kb];
          for (index_t j = 0; j < nb; ++j) {
            cplx acc{0, 0};
            const cplx* bp = &b_pack[j];
            for (index_t p = 0; p < kb; ++p, bp += nb) {
              acc += a0[p] * *bp;
            }
            c(ic + i, jc + j) += alpha * acc;
          }
        }
      }
    }
  }
}

namespace {

void check_grouped_shapes(const CMat& a_stack, index_t k, const CMat& b,
                          const CMat& c, std::span<const GemmGroup> groups) {
  SD_CHECK(k >= 0 && k <= kGemmKc,
           "grouped GEMM requires k <= kGemmKc (single-panel reduction)");
  SD_CHECK(b.rows() == k, "grouped GEMM inner dimensions must agree");
  SD_CHECK(a_stack.rows() == c.rows() && b.cols() == c.cols(),
           "grouped GEMM output shape must match operands");
  for (const GemmGroup& g : groups) {
    SD_CHECK(g.cols >= 0 && g.col >= 0 && g.col + g.cols <= c.cols(),
             "grouped GEMM group exceeds the B/C column range");
    SD_CHECK(g.a_col >= 0 && g.a_col + k <= a_stack.cols(),
             "grouped GEMM group exceeds the stacked-A column range");
  }
}

// Scalar grouped kernel: per-element ascending-p reduction, the exact order
// of gemm_naive (and of the packed kernels within one K panel).
void gemm_grouped_scalar(cplx alpha, const CMat& a_stack, index_t k,
                         const CMat& b, cplx beta, CMat& c,
                         std::span<const GemmGroup> groups) {
  const index_t zr = c.rows();
  const bool overwrite = beta == cplx{0, 0};
  for (const GemmGroup& g : groups) {
    for (index_t i = 0; i < zr; ++i) {
      for (index_t j = 0; j < g.cols; ++j) {
        cplx acc{0, 0};
        for (index_t p = 0; p < k; ++p) {
          acc += a_stack(i, g.a_col + p) * b(p, g.col + j);
        }
        cplx& dst = c(i, g.col + j);
        dst = overwrite ? alpha * acc : alpha * acc + beta * dst;
      }
    }
  }
}

}  // namespace

void gemm_grouped(cplx alpha, const CMat& a_stack, index_t k, const CMat& b,
                  cplx beta, CMat& c, std::span<const GemmGroup> groups) {
  gemm_grouped(alpha, a_stack, k, b, beta, c, groups,
               GemmWorkspace::thread_local_instance());
}

void gemm_grouped(cplx alpha, const CMat& a_stack, index_t k, const CMat& b,
                  cplx beta, CMat& c, std::span<const GemmGroup> groups,
                  GemmWorkspace& ws) {
  check_grouped_shapes(a_stack, k, b, c, groups);
  if (active_gemm_kernel() == GemmKernel::kSoa) {
    detail::gemm_grouped_soa_impl(alpha, a_stack, k, b, beta, c, groups, ws);
    return;
  }
  gemm_grouped_scalar(alpha, a_stack, k, b, beta, c, groups);
}

void gemv(Op op_a, cplx alpha, const CMat& a, std::span<const cplx> x,
          cplx beta, std::span<cplx> y) {
  gemv(op_a, alpha, a, x, beta, y, GemmWorkspace::thread_local_instance());
}

void gemv(Op op_a, cplx alpha, const CMat& a, std::span<const cplx> x,
          cplx beta, std::span<cplx> y, GemmWorkspace& ws) {
  const auto [m, k] = detail::op_shape(op_a, a);
  SD_CHECK(static_cast<index_t>(x.size()) == k, "GEMV x length must equal k");
  SD_CHECK(static_cast<index_t>(y.size()) == m, "GEMV y length must equal m");
  const bool overwrite = beta == cplx{0, 0};
  if (op_a == Op::kNone) {
    for (index_t i = 0; i < m; ++i) {
      cplx acc{0, 0};
      const auto row = a.row(i);
      for (index_t p = 0; p < k; ++p) acc += row[p] * x[p];
      y[i] = overwrite ? alpha * acc : alpha * acc + beta * y[i];
    }
  } else {
    // y = alpha * A^H x: accumulate column-wise to keep A row-major friendly.
    // The accumulator lives in the workspace, not on the heap per call.
    const auto acc = ws.gemv_acc(static_cast<usize>(m));
    std::fill(acc.begin(), acc.end(), cplx{0, 0});
    for (index_t r = 0; r < a.rows(); ++r) {
      const auto row = a.row(r);
      const cplx xr = x[r];
      for (index_t i = 0; i < m; ++i) {
        acc[i] += std::conj(row[i]) * xr;
      }
    }
    for (index_t i = 0; i < m; ++i) {
      y[i] = overwrite ? alpha * acc[i] : alpha * acc[i] + beta * y[i];
    }
  }
}

}  // namespace sd
