// Per-cell sharding of the detection runtime.
//
// A cell's channel structure never crosses cell boundaries — users of cell A
// and cell B see independent channels, so one shared ChannelPrepCache (and
// one shared lane pool) mixes two working sets for zero reuse. ShardedServer
// gives every shard its own full serving stack:
//
//   shard = DetectionServer (Dispatcher + backend pool + ChannelPrepCaches)
//         + AdmissionController (shed-before-miss, per-shard load estimate)
//         + its own ServerMetrics / DispatchStats
//
// and a ShardRouter maps cell id -> shard (cell % shards: deterministic,
// stateless, and stable across runs — the property the bit-identity e2e test
// pins). Admission runs per shard *before* submit: a kShed decision costs the
// shard nothing, and an admitted frame enters pre-degraded through
// FrameRequest::start_tier. Global reporting is a deterministic merge of the
// per-shard snapshots (counter sums, count-weighted latency summaries), so
// the operator view stays one report regardless of shard count.
// See DESIGN.md §13.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/admission.hpp"
#include "net/qos.hpp"
#include "serve/server.hpp"

namespace sd::net {

/// Deterministic cell -> shard map.
class ShardRouter {
 public:
  explicit ShardRouter(usize num_shards) : num_shards_(num_shards) {}
  [[nodiscard]] usize route(std::uint32_t cell_id) const noexcept {
    return cell_id % num_shards_;
  }
  [[nodiscard]] usize num_shards() const noexcept { return num_shards_; }

 private:
  usize num_shards_;
};

struct ShardedServerOptions {
  usize num_shards = 1;
  serve::ServerOptions server;      ///< replicated per shard
  AdmissionOptions admission;
};

/// Outcome of ShardedServer::submit — SubmitStatus plus the admission shed.
enum class ShardSubmit : std::uint8_t {
  kAccepted,
  kShed,      ///< admission refused (shed-before-miss)
  kRejected,  ///< backpressure refused at the shard queue
  kClosed,
};

class ShardedServer {
 public:
  /// Builds `num_shards` independent serving stacks. The completion path of
  /// every shard notifies that shard's admission controller, then the tap
  /// (set_completion_tap), tagging each result with its shard.
  ShardedServer(SystemConfig system, DecoderSpec spec,
                ShardedServerOptions options);
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Observer for every terminal FrameResult, with the shard that served it.
  /// Must be installed before the first submit (the ingress server does this
  /// at start): lane threads read it unlocked after that point.
  using TapFn = std::function<void(usize shard, const serve::FrameResult&)>;
  void set_completion_tap(TapFn tap);

  /// Routes by cell, runs admission, and submits on acceptance. The frame's
  /// start_tier is overwritten with the admission decision. Blocks iff the
  /// shard's lane queue is full under kBlock. Thread-safe.
  ShardSubmit submit(std::uint32_t cell_id, serve::FrameRequest frame,
                     QosClass qos, AdmitDecision* decision = nullptr);

  /// Drains every shard (all in-flight frames terminal). Idempotent.
  void drain();

  [[nodiscard]] usize num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }

  [[nodiscard]] serve::DetectionServer& shard(usize i) {
    return *shards_[i]->server;
  }
  [[nodiscard]] AdmissionController& admission(usize i) {
    return *shards_[i]->admission;
  }

  /// Per-shard snapshot.
  [[nodiscard]] serve::ServerMetrics shard_metrics(usize i) const;

  /// Deterministic merge across shards: counters and worker lists sum /
  /// concatenate in shard order; wall time is the max; latency summaries are
  /// merged count-weighted (means exact; quantiles and max conservative —
  /// per-shard maxima of the quantile, documented in DESIGN.md §13).
  [[nodiscard]] serve::ServerMetrics global_metrics() const;

  /// Aggregate admission stats across shards (field-wise sums).
  [[nodiscard]] AdmissionStats global_admission_stats() const;

 private:
  struct Shard {
    std::unique_ptr<serve::DetectionServer> server;
    std::unique_ptr<AdmissionController> admission;
  };

  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  TapFn tap_;  ///< written before traffic, read by lane threads
  std::mutex drain_mu_;
  bool drained_ = false;
};

/// Count-weighted merge of two latency summaries (exposed for tests).
[[nodiscard]] serve::LatencySummary merge_latency(
    const serve::LatencySummary& a, const serve::LatencySummary& b);

}  // namespace sd::net
