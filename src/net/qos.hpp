// QoS classes for network-ingress traffic.
//
// A base station does not serve one traffic class: URLLC-style frames carry
// hard deadlines measured in milliseconds, mobile-broadband frames tolerate
// tens of milliseconds, and background traffic has no budget at all. The
// wire header tags every frame with one of these classes; the admission
// controller keys its shed/degrade policy on them (see net/admission.hpp).
#pragma once

#include <cstdint>
#include <string_view>

namespace sd::net {

enum class QosClass : std::uint8_t {
  kHard = 0,        ///< hard deadline: degrade tiers, shed only as last resort
  kSoft = 1,        ///< soft deadline: degrade or shed under overload
  kBestEffort = 2,  ///< no deadline unless the frame carries one
};

inline constexpr std::uint8_t kQosClassCount = 3;

[[nodiscard]] constexpr std::string_view qos_class_name(QosClass q) noexcept {
  switch (q) {
    case QosClass::kHard: return "hard";
    case QosClass::kSoft: return "soft";
    case QosClass::kBestEffort: return "best-effort";
  }
  return "?";
}

/// True iff `v` is a valid QosClass wire value.
[[nodiscard]] constexpr bool qos_class_valid(std::uint8_t v) noexcept {
  return v < kQosClassCount;
}

}  // namespace sd::net
