#include "net/shard.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace sd::net {

serve::LatencySummary merge_latency(const serve::LatencySummary& a,
                                    const serve::LatencySummary& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  serve::LatencySummary m;
  m.count = a.count + b.count;
  m.mean_s = (a.mean_s * static_cast<double>(a.count) +
              b.mean_s * static_cast<double>(b.count)) /
             static_cast<double>(m.count);
  // Quantiles of a merged distribution are not recoverable from per-shard
  // summaries; the max across shards is a deterministic conservative upper
  // bound (DESIGN.md §13).
  m.p50_s = std::max(a.p50_s, b.p50_s);
  m.p95_s = std::max(a.p95_s, b.p95_s);
  m.p99_s = std::max(a.p99_s, b.p99_s);
  m.max_s = std::max(a.max_s, b.max_s);
  return m;
}

ShardedServer::ShardedServer(SystemConfig system, DecoderSpec spec,
                             ShardedServerOptions options)
    : router_(options.num_shards) {
  SD_CHECK(options.num_shards >= 1, "sharded server needs at least one shard");
  shards_.reserve(options.num_shards);
  for (usize s = 0; s < options.num_shards; ++s) {
    auto sh = std::make_unique<Shard>();
    Shard* raw = sh.get();
    // The completion chain: shard admission first (it owns the outstanding
    // count), then the tap. `raw` and `this` outlive every lane thread —
    // ~ShardedServer drains before members die.
    auto on_complete = [this, raw, s](const serve::FrameResult& r) {
      raw->admission->on_complete(r);
      if (tap_) tap_(s, r);
    };
    sh->server = std::make_unique<serve::DetectionServer>(
        system, spec, options.server, std::move(on_complete));
    sh->admission = std::make_unique<AdmissionController>(
        options.admission, sh->server->dispatcher());
    shards_.push_back(std::move(sh));
  }
}

ShardedServer::~ShardedServer() { drain(); }

void ShardedServer::set_completion_tap(TapFn tap) { tap_ = std::move(tap); }

ShardSubmit ShardedServer::submit(std::uint32_t cell_id,
                                  serve::FrameRequest frame, QosClass qos,
                                  AdmitDecision* decision) {
  Shard& sh = *shards_[router_.route(cell_id)];
  const AdmitDecision d =
      sh.admission->decide(frame.h(), frame.sigma2, frame.deadline_s, qos);
  if (decision != nullptr) *decision = d;
  if (d.action == AdmitAction::kShed) return ShardSubmit::kShed;
  frame.start_tier = d.tier;
  frame.deadline_s = d.budget_s;  // class default now binds server-side too
  const serve::SubmitStatus st = sh.server->submit(std::move(frame));
  switch (st) {
    case serve::SubmitStatus::kAccepted:
      return ShardSubmit::kAccepted;
    case serve::SubmitStatus::kRejected: {
      // No completion callback fires for a synchronous rejection; settle the
      // admission ledger here so `outstanding` stays truthful.
      serve::FrameResult r;
      r.status = serve::FrameStatus::kEvicted;
      sh.admission->on_complete(r);
      return ShardSubmit::kRejected;
    }
    case serve::SubmitStatus::kClosed: {
      serve::FrameResult r;
      r.status = serve::FrameStatus::kEvicted;
      sh.admission->on_complete(r);
      return ShardSubmit::kClosed;
    }
  }
  return ShardSubmit::kClosed;
}

void ShardedServer::drain() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (drained_) return;
    drained_ = true;
  }
  for (auto& sh : shards_) sh->server->drain();
}

serve::ServerMetrics ShardedServer::shard_metrics(usize i) const {
  return shards_[i]->server->metrics();
}

serve::ServerMetrics ShardedServer::global_metrics() const {
  serve::ServerMetrics g;
  for (const auto& sh : shards_) {
    const serve::ServerMetrics m = sh->server->metrics();
    g.submitted += m.submitted;
    g.completed += m.completed;
    g.expired_fallback += m.expired_fallback;
    g.expired_dropped += m.expired_dropped;
    g.evicted += m.evicted;
    g.rejected += m.rejected;
    g.deadline_misses += m.deadline_misses;
    g.in_queue += m.in_queue;
    g.wall_seconds = std::max(g.wall_seconds, m.wall_seconds);
    g.queue_wait = merge_latency(g.queue_wait, m.queue_wait);
    g.service = merge_latency(g.service, m.service);
    g.e2e = merge_latency(g.e2e, m.e2e);
    g.workers.insert(g.workers.end(), m.workers.begin(), m.workers.end());
  }
  g.throughput_fps = g.wall_seconds > 0.0
                         ? static_cast<double>(g.retired()) / g.wall_seconds
                         : 0.0;
  return g;
}

AdmissionStats ShardedServer::global_admission_stats() const {
  AdmissionStats g;
  for (const auto& sh : shards_) {
    const AdmissionStats s = sh->admission->stats();
    g.considered += s.considered;
    g.admitted += s.admitted;
    g.shed += s.shed;
    g.degraded_kbest += s.degraded_kbest;
    g.degraded_linear += s.degraded_linear;
    for (std::uint8_t q = 0; q < kQosClassCount; ++q) {
      g.admitted_by_class[q] += s.admitted_by_class[q];
      g.shed_by_class[q] += s.shed_by_class[q];
    }
  }
  return g;
}

}  // namespace sd::net
