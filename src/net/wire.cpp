#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"
#include "decode/channel_prep.hpp"

namespace sd::net {

namespace {

// Explicit little-endian serialization: the wire format is defined, not
// "whatever this host's memcpy does", so heterogeneous peers interoperate.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] float get_f32(const std::uint8_t* p) noexcept {
  return std::bit_cast<float>(get_u32(p));
}

[[nodiscard]] double get_f64(const std::uint8_t* p) noexcept {
  return std::bit_cast<double>(get_u64(p));
}

// Message envelope: [u32 magic][u8 version][u8 type] after the length field.
constexpr usize kEnvelopeBytes = 4 + 1 + 1;
// kFrame fixed part after the envelope:
//   u32 cell, u64 frame_id, u8 qos, u8 flags, u16 rows, u16 cols,
//   u16 reserved, f64 deadline, f64 sigma2, u64 fp
constexpr usize kFrameFixedBytes = 4 + 8 + 1 + 1 + 2 + 2 + 2 + 8 + 8 + 8;
// kResponse fixed part after the envelope:
//   u64 frame_id, u32 cell, u8 status, u8 tier, u8 qos, u8 reserved,
//   f64 metric, u16 count
constexpr usize kResponseFixedBytes = 8 + 4 + 1 + 1 + 1 + 1 + 8 + 2;

constexpr std::uint8_t kFlagHasChannel = 0x01;
constexpr std::uint8_t kKnownFlags = kFlagHasChannel;

void put_envelope(std::vector<std::uint8_t>& out, WireType type) {
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
}

}  // namespace

std::string_view wire_error_name(WireError e) noexcept {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kOversized: return "oversized";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadType: return "bad-type";
    case WireError::kBadField: return "bad-field";
    case WireError::kBadLength: return "bad-length";
    case WireError::kFingerprintMismatch: return "fingerprint-mismatch";
  }
  return "?";
}

std::string_view wire_frame_status_name(WireFrameStatus s) noexcept {
  switch (s) {
    case WireFrameStatus::kCompleted: return "completed";
    case WireFrameStatus::kExpiredFallback: return "expired-fallback";
    case WireFrameStatus::kExpiredDropped: return "expired-dropped";
    case WireFrameStatus::kEvicted: return "evicted";
    case WireFrameStatus::kShed: return "shed";
    case WireFrameStatus::kRejected: return "rejected";
    case WireFrameStatus::kResendChannel: return "resend-channel";
  }
  return "?";
}

WireFrameStatus wire_status_from(serve::FrameStatus s) noexcept {
  switch (s) {
    case serve::FrameStatus::kCompleted: return WireFrameStatus::kCompleted;
    case serve::FrameStatus::kExpiredFallback:
      return WireFrameStatus::kExpiredFallback;
    case serve::FrameStatus::kExpiredDropped:
      return WireFrameStatus::kExpiredDropped;
    case serve::FrameStatus::kEvicted: return WireFrameStatus::kEvicted;
  }
  return WireFrameStatus::kEvicted;
}

usize encoded_frame_bytes(index_t rows, index_t cols,
                          bool with_channel) noexcept {
  usize n = 4 + kEnvelopeBytes + kFrameFixedBytes;
  if (with_channel) {
    n += static_cast<usize>(rows) * static_cast<usize>(cols) * 2 * sizeof(float);
  }
  n += static_cast<usize>(rows) * 2 * sizeof(float);
  return n;
}

void encode_frame(const WireFrame& frame, std::vector<std::uint8_t>& out) {
  SD_CHECK(!frame.y.empty(), "wire frame carries no received vector");
  const auto rows = static_cast<index_t>(frame.y.size());
  index_t cols = 0;
  if (frame.has_channel) {
    SD_CHECK(!frame.h.empty(), "has_channel set but channel matrix is empty");
    SD_CHECK(frame.h.rows() == rows, "channel rows must match y length");
    cols = frame.h.cols();
  } else {
    // Channel rides by reference: cols still travels so the receiver can
    // sanity-check the referenced channel's shape.
    cols = frame.h.empty() ? rows : frame.h.cols();
  }
  SD_CHECK(rows >= 1 && rows <= static_cast<index_t>(kMaxWireDim) &&
               cols >= 1 && cols <= static_cast<index_t>(kMaxWireDim),
           "wire frame dimensions out of range");

  const usize start = out.size();
  put_u32(out, 0);  // length back-patched below
  put_envelope(out, WireType::kFrame);
  put_u32(out, frame.cell_id);
  put_u64(out, frame.frame_id);
  out.push_back(static_cast<std::uint8_t>(frame.qos));
  out.push_back(frame.has_channel ? kFlagHasChannel : 0);
  put_u16(out, static_cast<std::uint16_t>(rows));
  put_u16(out, static_cast<std::uint16_t>(cols));
  put_u16(out, 0);  // reserved
  put_f64(out, frame.deadline_s);
  put_f64(out, frame.sigma2);
  put_u64(out, frame.channel_fp);
  if (frame.has_channel) {
    for (index_t r = 0; r < rows; ++r) {
      for (index_t c = 0; c < cols; ++c) {
        put_f32(out, frame.h(r, c).real());
        put_f32(out, frame.h(r, c).imag());
      }
    }
  }
  for (const cplx& v : frame.y) {
    put_f32(out, v.real());
    put_f32(out, v.imag());
  }
  const auto len = static_cast<std::uint32_t>(out.size() - start - 4);
  for (int i = 0; i < 4; ++i)
    out[start + static_cast<usize>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
}

void encode_response(const WireResponse& resp, std::vector<std::uint8_t>& out) {
  SD_CHECK(resp.indices.size() <= kMaxWireDim,
           "wire response carries too many indices");
  const usize start = out.size();
  put_u32(out, 0);
  put_envelope(out, WireType::kResponse);
  put_u64(out, resp.frame_id);
  put_u32(out, resp.cell_id);
  out.push_back(static_cast<std::uint8_t>(resp.status));
  out.push_back(static_cast<std::uint8_t>(resp.tier));
  out.push_back(static_cast<std::uint8_t>(resp.qos));
  out.push_back(0);  // reserved
  put_f64(out, resp.metric);
  put_u16(out, static_cast<std::uint16_t>(resp.indices.size()));
  for (index_t idx : resp.indices)
    put_u32(out, static_cast<std::uint32_t>(idx));
  const auto len = static_cast<std::uint32_t>(out.size() - start - 4);
  for (int i = 0; i < 4; ++i)
    out[start + static_cast<usize>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
}

WireDecoder::WireDecoder(usize max_message_bytes)
    : max_message_(max_message_bytes) {}

void WireDecoder::feed(const std::uint8_t* data, usize n) {
  if (error_ != WireError::kNone || n == 0) return;
  // Compact once the consumed prefix dominates, so the buffer stays bounded
  // by one message plus one read chunk instead of growing with the stream.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

WireDecoder::Next WireDecoder::fail(WireError e) noexcept {
  error_ = e;
  return Next::kError;
}

WireDecoder::Next WireDecoder::next(WireFrame& frame, WireResponse& resp) {
  if (error_ != WireError::kNone) return Next::kError;
  const usize avail = buf_.size() - pos_;
  if (avail < 4) return Next::kNeedMore;
  const std::uint8_t* base = buf_.data() + pos_;
  const std::uint32_t len = get_u32(base);
  // The length check runs BEFORE waiting for the payload: a hostile 4 GiB
  // prefix must not make the server buffer anything.
  if (len > max_message_) return fail(WireError::kOversized);
  if (len < kEnvelopeBytes) return fail(WireError::kTruncated);
  if (avail < 4 + static_cast<usize>(len)) return Next::kNeedMore;

  const std::uint8_t* p = base + 4;
  if (get_u32(p) != kWireMagic) return fail(WireError::kBadMagic);
  if (p[4] != kWireVersion) return fail(WireError::kBadVersion);
  const std::uint8_t type = p[5];
  const std::uint8_t* payload = p + kEnvelopeBytes;
  const usize payload_len = len - kEnvelopeBytes;

  Next result = Next::kError;
  switch (type) {
    case static_cast<std::uint8_t>(WireType::kFrame):
      result = parse_frame(payload, payload_len, frame);
      break;
    case static_cast<std::uint8_t>(WireType::kResponse):
      result = parse_response(payload, payload_len, resp);
      break;
    default:
      return fail(WireError::kBadType);
  }
  if (result != Next::kError) pos_ += 4 + static_cast<usize>(len);
  return result;
}

WireDecoder::Next WireDecoder::parse_frame(const std::uint8_t* p, usize n,
                                           WireFrame& frame) {
  if (n < kFrameFixedBytes) return fail(WireError::kTruncated);
  frame.cell_id = get_u32(p);
  frame.frame_id = get_u64(p + 4);
  const std::uint8_t qos = p[12];
  const std::uint8_t flags = p[13];
  const std::uint16_t rows = get_u16(p + 14);
  const std::uint16_t cols = get_u16(p + 16);
  if (!qos_class_valid(qos)) return fail(WireError::kBadField);
  if ((flags & ~kKnownFlags) != 0) return fail(WireError::kBadField);
  if (rows < 1 || rows > kMaxWireDim || cols < 1 || cols > kMaxWireDim)
    return fail(WireError::kBadField);
  frame.qos = static_cast<QosClass>(qos);
  frame.has_channel = (flags & kFlagHasChannel) != 0;
  frame.deadline_s = get_f64(p + 20);
  frame.sigma2 = get_f64(p + 28);
  frame.channel_fp = get_u64(p + 36);
  if (!(frame.deadline_s >= 0.0) || !(frame.sigma2 >= 0.0))
    return fail(WireError::kBadField);  // also rejects NaN

  const usize h_bytes = frame.has_channel
                            ? usize{rows} * usize{cols} * 2 * sizeof(float)
                            : 0;
  const usize y_bytes = usize{rows} * 2 * sizeof(float);
  if (n != kFrameFixedBytes + h_bytes + y_bytes)
    return fail(WireError::kBadLength);

  const std::uint8_t* q = p + kFrameFixedBytes;
  if (frame.has_channel) {
    frame.h.reshape(rows, cols);
    for (index_t r = 0; r < rows; ++r) {
      for (index_t c = 0; c < cols; ++c) {
        frame.h(r, c) = cplx(get_f32(q), get_f32(q + 4));
        q += 8;
      }
    }
    // The declared fingerprint must be the content hash of the shipped
    // bytes; otherwise later by-reference frames would silently bind to the
    // wrong channel. Verified here, at the protocol boundary.
    if (channel_fingerprint(frame.h) != frame.channel_fp)
      return fail(WireError::kFingerprintMismatch);
  } else {
    frame.h.reshape(0, 0);
  }
  frame.y.resize(rows);
  for (std::uint16_t r = 0; r < rows; ++r) {
    frame.y[r] = cplx(get_f32(q), get_f32(q + 4));
    q += 8;
  }
  return Next::kFrame;
}

WireDecoder::Next WireDecoder::parse_response(const std::uint8_t* p, usize n,
                                              WireResponse& resp) {
  if (n < kResponseFixedBytes) return fail(WireError::kTruncated);
  resp.frame_id = get_u64(p);
  resp.cell_id = get_u32(p + 8);
  const std::uint8_t status = p[12];
  const std::uint8_t tier = p[13];
  const std::uint8_t qos = p[14];
  if (status > static_cast<std::uint8_t>(WireFrameStatus::kResendChannel))
    return fail(WireError::kBadField);
  if (tier > static_cast<std::uint8_t>(serve::DecodeTier::kLinear))
    return fail(WireError::kBadField);
  if (!qos_class_valid(qos)) return fail(WireError::kBadField);
  resp.status = static_cast<WireFrameStatus>(status);
  resp.tier = static_cast<serve::DecodeTier>(tier);
  resp.qos = static_cast<QosClass>(qos);
  resp.metric = get_f64(p + 16);
  const std::uint16_t count = get_u16(p + 24);
  if (count > kMaxWireDim) return fail(WireError::kBadField);
  if (n != kResponseFixedBytes + usize{count} * 4)
    return fail(WireError::kBadLength);
  const std::uint8_t* q = p + kResponseFixedBytes;
  resp.indices.resize(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    resp.indices[i] = static_cast<index_t>(get_u32(q));
    q += 4;
  }
  return Next::kResponse;
}

}  // namespace sd::net
