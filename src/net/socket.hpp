// Thin RAII layer over the POSIX sockets the ingress path needs: TCP
// loopback and Unix-domain stream sockets, listeners and connectors, and a
// send_all that survives partial writes. Everything else (framing, polling,
// connection state) lives in wire.hpp / ingress.hpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace sd::net {

/// Transport-level failure (connect refused, send on closed peer, ...).
class net_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only owner of one file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Releases ownership without closing.
  [[nodiscard]] int release() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;
  /// shutdown(SHUT_RDWR): wakes a peer blocked in recv without closing the
  /// descriptor (safe while another thread still holds the fd).
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port); the
/// actually bound port is written to `*bound_port`.
[[nodiscard]] Socket listen_tcp_loopback(std::uint16_t port,
                                         std::uint16_t* bound_port);

/// Listens on a Unix-domain stream socket at `path` (unlinked first; path
/// must fit sockaddr_un, i.e. < ~107 chars).
[[nodiscard]] Socket listen_uds(const std::string& path);

[[nodiscard]] Socket connect_tcp_loopback(std::uint16_t port);
[[nodiscard]] Socket connect_uds(const std::string& path);

/// accept() on a listener; returns an invalid Socket on transient failure
/// (EAGAIN/EINTR/ECONNABORTED), throws on real errors. TCP connections get
/// TCP_NODELAY — frames are latency-sensitive and self-batched.
[[nodiscard]] Socket accept_connection(const Socket& listener);

/// Puts the descriptor in non-blocking mode (the ingress read loop's mode;
/// send_all remains logically blocking by polling for writability).
void set_nonblocking(int fd);

/// Writes all `n` bytes, looping over partial writes (and over EAGAIN on
/// non-blocking fds); returns false if the peer is gone (EPIPE/ECONNRESET),
/// throws on other errors. SIGPIPE is suppressed via MSG_NOSIGNAL.
bool send_all(int fd, const void* data, usize n);

}  // namespace sd::net
