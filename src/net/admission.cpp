#include "net/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "mimo/constellation.hpp"
#include "obs/counters.hpp"

namespace sd::net {

void AdmissionStats::export_counters(obs::CounterRegistry& registry,
                                     std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  registry.set(p + "considered", considered);
  registry.set(p + "admitted", admitted);
  registry.set(p + "shed", shed);
  registry.set(p + "degraded.kbest", degraded_kbest);
  registry.set(p + "degraded.mmse", degraded_mmse);
  registry.set(p + "degraded.linear", degraded_linear);
  for (std::uint8_t q = 0; q < kQosClassCount; ++q) {
    const std::string cls(qos_class_name(static_cast<QosClass>(q)));
    registry.set(p + cls + ".admitted", admitted_by_class[q]);
    registry.set(p + cls + ".shed", shed_by_class[q]);
  }
}

AdmissionController::AdmissionController(AdmissionOptions opts,
                                         dispatch::Dispatcher& dispatcher)
    : opts_(opts), dispatcher_(dispatcher) {
  SD_CHECK(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0,
           "admission ewma_alpha must be in (0, 1]");
  SD_CHECK(opts_.headroom > 0.0, "admission headroom must be positive");
  mod_order_ =
      Constellation::get(dispatcher_.system().modulation).order();
}

AdmitDecision AdmissionController::decide(const CMat& h, double sigma2,
                                          double deadline_s, QosClass qos) {
  AdmitDecision d;
  const auto q = static_cast<usize>(qos);
  d.budget_s = deadline_s > 0.0 ? deadline_s : opts_.class_deadline_s[q];
  // A non-finite budget means "no deadline", not "any completion time
  // passes". Routed through the budgeted walk below it would admit every
  // frame at kPrimary ((wait + pred) * headroom <= inf always holds) and
  // make the saturation degrade unreachable; normalized to 0 it takes the
  // deadline-less path and never leaks into FrameRequest::deadline_s.
  if (!std::isfinite(d.budget_s)) d.budget_s = 0.0;

  const dispatch::FrameFeatures f =
      dispatch::FrameFeatures::extract(h, sigma2, mod_order_);
  const unsigned lanes = std::max(1u, dispatcher_.total_lanes());

  // Cheapest predicted service time at a tier, across the backends whose
  // ladder can actually serve it (dispatcher-filtered): a budget met only by
  // an unplaceable (backend, tier) pair must not admit. An unserved tier
  // predicts +infinity and never satisfies the walk below.
  const auto cheapest = [&](serve::DecodeTier tier) {
    return dispatcher_.cheapest_prediction(f, tier);
  };

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.considered;
  d.est_wait_s = static_cast<double>(outstanding_) * service_ewma_s_ /
                 static_cast<double>(lanes);

  if (opts_.enabled && d.budget_s > 0.0 && std::isfinite(d.budget_s)) {
    static constexpr serve::DecodeTier kTiers[] = {
        serve::DecodeTier::kPrimary, serve::DecodeTier::kKBest,
        serve::DecodeTier::kMmseApprox, serve::DecodeTier::kLinear};
    d.action = AdmitAction::kShed;
    for (serve::DecodeTier tier : kTiers) {
      const double pred = cheapest(tier);
      if ((d.est_wait_s + pred) * opts_.headroom <= d.budget_s) {
        d.action = AdmitAction::kAdmit;
        d.tier = tier;
        d.predicted_s = pred;
        break;
      }
    }
  } else if (opts_.enabled && d.est_wait_s > opts_.saturation_wait_s) {
    // Deadline-less traffic never sheds, but past saturation it stops
    // competing with budgeted frames for search depth.
    d.tier = serve::DecodeTier::kLinear;
    d.predicted_s = cheapest(d.tier);
  } else {
    d.predicted_s = cheapest(serve::DecodeTier::kPrimary);
  }

  if (d.action == AdmitAction::kAdmit) {
    ++stats_.admitted;
    ++stats_.admitted_by_class[q];
    if (d.tier == serve::DecodeTier::kKBest) ++stats_.degraded_kbest;
    if (d.tier == serve::DecodeTier::kMmseApprox) ++stats_.degraded_mmse;
    if (d.tier == serve::DecodeTier::kLinear) ++stats_.degraded_linear;
    ++outstanding_;
  } else {
    ++stats_.shed;
    ++stats_.shed_by_class[q];
  }
  return d;
}

void AdmissionController::on_complete(const serve::FrameResult& r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  // Only real decodes teach the service estimate; evictions and queue-expiry
  // drops would drag it toward zero exactly when the queue is longest.
  if (r.status == serve::FrameStatus::kCompleted && r.service_s > 0.0) {
    if (!ewma_primed_) {
      service_ewma_s_ = r.service_s;
      ewma_primed_ = true;
    } else {
      service_ewma_s_ = opts_.ewma_alpha * r.service_s +
                        (1.0 - opts_.ewma_alpha) * service_ewma_s_;
    }
  }
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double AdmissionController::estimated_wait_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(outstanding_) * service_ewma_s_ /
         static_cast<double>(std::max(1u, dispatcher_.total_lanes()));
}

}  // namespace sd::net
