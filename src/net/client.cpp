#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <utility>

namespace sd::net {

bool NetClient::send_locked(const WireFrame& frame) {
  send_buf_.clear();
  encode_frame(frame, send_buf_);
  if (!send_all(sock_.fd(), send_buf_.data(), send_buf_.size())) return false;
  bytes_sent_ += send_buf_.size();
  if (frame.has_channel) last_fp_sent_ = frame.channel_fp;
  return true;
}

bool NetClient::send(const WireFrame& frame) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return send_locked(frame);
}

bool NetClient::send_frame_auto(WireFrame& frame, const CMat& h,
                                std::uint64_t fp) {
  frame.channel_fp = fp;
  // Elide only when this connection's previous channel is the same one: the
  // server's per-connection cache is then guaranteed to hold it, whatever
  // its eviction policy.
  std::lock_guard<std::mutex> lock(send_mu_);
  frame.has_channel = fp != last_fp_sent_;
  if (frame.has_channel) frame.h = h;
  return send_locked(frame);
}

bool NetClient::recv(WireResponse& resp) {
  std::lock_guard<std::mutex> lock(recv_mu_);
  WireFrame unused;
  for (;;) {
    switch (decoder_.next(unused, resp)) {
      case WireDecoder::Next::kResponse:
        return true;
      case WireDecoder::Next::kFrame:
        throw net_error("server sent a frame message to a client");
      case WireDecoder::Next::kError:
        throw net_error(std::string("malformed response stream: ") +
                        std::string(wire_error_name(decoder_.error())));
      case WireDecoder::Next::kNeedMore:
        break;
    }
    std::uint8_t chunk[16 * 1024];
    ssize_t n;
    do {
      n = ::read(sock_.fd(), chunk, sizeof(chunk));
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw net_error("recv failed");
    if (n == 0) return false;  // clean EOF
    bytes_received_ += static_cast<usize>(n);
    decoder_.feed(chunk, static_cast<usize>(n));
  }
}

void NetClient::finish_sending() { ::shutdown(sock_.fd(), SHUT_WR); }

}  // namespace sd::net
