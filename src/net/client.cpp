#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <utility>

namespace sd::net {

bool NetClient::send_locked(const WireFrame& frame) {
  send_buf_.clear();
  encode_frame(frame, send_buf_);
  if (!send_all(sock_.fd(), send_buf_.data(), send_buf_.size())) return false;
  bytes_sent_ += send_buf_.size();
  if (frame.has_channel) sent_fps_.insert(frame.channel_fp);
  return true;
}

bool NetClient::send(const WireFrame& frame) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return send_locked(frame);
}

bool NetClient::send_frame_auto(WireFrame& frame, const CMat& h,
                                std::uint64_t fp) {
  frame.channel_fp = fp;
  std::lock_guard<std::mutex> lock(send_mu_);
  // Elide whenever fp has ever been shipped on this connection. The server
  // may have evicted it (bounded LRU cache) — that case comes back as a
  // kResendChannel NACK, answered from the retained copy below.
  frame.has_channel = sent_fps_.find(fp) == sent_fps_.end();
  if (frame.has_channel) {
    frame.h = h;
  } else {
    WireFrame retained = frame;  // y, ids, budget — and the channel,
    retained.h = h;              // in case the server asks for a resend
    elided_.insert_or_assign(frame.frame_id, std::move(retained));
  }
  return send_locked(frame);
}

bool NetClient::recv(WireResponse& resp) {
  std::lock_guard<std::mutex> lock(recv_mu_);
  WireFrame unused;
  for (;;) {
    switch (decoder_.next(unused, resp)) {
      case WireDecoder::Next::kResponse: {
        std::lock_guard<std::mutex> send_lock(send_mu_);
        if (resp.status != WireFrameStatus::kResendChannel) {
          elided_.erase(resp.frame_id);  // terminal: drop the retained copy
          return true;
        }
        // Server evicted the referenced channel: retransmit the retained
        // frame with H inline and keep waiting — invisible to the caller.
        // A NACK for a frame sent via raw send() has no retained copy and
        // is the caller's problem.
        const auto it = elided_.find(resp.frame_id);
        if (it == elided_.end()) return true;
        WireFrame again = std::move(it->second);
        elided_.erase(it);
        again.has_channel = true;
        resends_.fetch_add(1, std::memory_order_relaxed);
        if (!send_locked(again)) return false;
        break;
      }
      case WireDecoder::Next::kFrame:
        throw net_error("server sent a frame message to a client");
      case WireDecoder::Next::kError:
        throw net_error(std::string("malformed response stream: ") +
                        std::string(wire_error_name(decoder_.error())));
      case WireDecoder::Next::kNeedMore:
        break;
    }
    std::uint8_t chunk[16 * 1024];
    ssize_t n;
    do {
      n = ::read(sock_.fd(), chunk, sizeof(chunk));
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw net_error("recv failed");
    if (n == 0) return false;  // clean EOF
    bytes_received_ += static_cast<usize>(n);
    decoder_.feed(chunk, static_cast<usize>(n));
  }
}

void NetClient::finish_sending() { ::shutdown(sock_.fd(), SHUT_WR); }

}  // namespace sd::net
