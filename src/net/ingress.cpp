#include "net/ingress.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "obs/counters.hpp"

namespace sd::net {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}

void NetStats::export_counters(obs::CounterRegistry& registry,
                               std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  registry.set(p + "connections.accepted", connections_accepted);
  registry.set(p + "connections.dropped", connections_dropped);
  registry.set(p + "protocol_error", protocol_errors);
  registry.set(p + "frames_rx", frames_rx);
  registry.set(p + "responses_tx", responses_tx);
  registry.set(p + "shed_tx", shed_tx);
  registry.set(p + "bytes_rx", bytes_rx);
  registry.set(p + "bytes_tx", bytes_tx);
  registry.set(p + "channel_cache.hit", channel_cache_hits);
  registry.set(p + "channel_cache.miss", channel_cache_misses);
  registry.set(p + "channel_cache.resend", channel_resend_requests);
}

IngressServer::IngressServer(ShardedServer& shards, IngressOptions options)
    : shards_(shards), opts_(std::move(options)) {
  SD_CHECK(opts_.read_chunk_bytes >= 64, "ingress read chunk too small");
  if (!opts_.uds_path.empty()) uds_listener_ = listen_uds(opts_.uds_path);
  if (opts_.enable_tcp)
    tcp_listener_ = listen_tcp_loopback(opts_.tcp_port, &tcp_port_);
  if (!uds_listener_.valid() && !tcp_listener_.valid())
    throw net_error("ingress server has no listener configured");
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw net_error("pipe(wakeup) failed");
  wake_rd_ = Socket(pipe_fds[0]);
  wake_wr_ = Socket(pipe_fds[1]);
  shards_.set_completion_tap(
      [this](usize /*shard*/, const serve::FrameResult& r) { on_result(r); });
}

IngressServer::~IngressServer() {
  stop();
  // The completion tap points at this object; the shards must be quiesced
  // before it dies. drain() is idempotent — the caller usually already did.
  shards_.drain();
}

void IngressServer::start() {
  SD_CHECK(!started_, "ingress server already started");
  started_ = true;
  io_thread_ = std::thread([this] { io_loop(); });
}

void IngressServer::wake() {
  const char b = 1;
  (void)!::write(wake_wr_.fd(), &b, 1);
}

void IngressServer::io_loop() {
  std::vector<pollfd> pfds;
  // Index map rebuilt per iteration: [wake][listeners...][conns...].
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_rd_.fd(), POLLIN, 0});
    const usize first_listener = pfds.size();
    if (tcp_listener_.valid()) pfds.push_back({tcp_listener_.fd(), POLLIN, 0});
    if (uds_listener_.valid()) pfds.push_back({uds_listener_.fd(), POLLIN, 0});
    const usize first_conn = pfds.size();
    for (const auto& c : conns_)
      pfds.push_back({c->sock.fd(), POLLIN, 0});

    const int rc = ::poll(pfds.data(), pfds.size(), 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: shut down rather than spin
    }
    if (rc == 0) continue;

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      (void)!::read(wake_rd_.fd(), buf, sizeof(buf));
    }
    for (usize i = first_listener; i < first_conn; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const Socket& listener =
          pfds[i].fd == tcp_listener_.fd() ? tcp_listener_ : uds_listener_;
      Socket accepted = accept_connection(listener);
      if (!accepted.valid()) continue;
      set_nonblocking(accepted.fd());
      connections_accepted_.fetch_add(1, kRelaxed);
      conns_.push_back(std::make_shared<Connection>(std::move(accepted),
                                                    opts_.max_message_bytes));
    }
    // Snapshot: handle_readable may drop connections out of conns_.
    std::vector<std::shared_ptr<Connection>> readable;
    for (usize i = first_conn; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        readable.push_back(conns_[i - first_conn]);
    }
    for (const auto& c : readable) handle_readable(c);
  }
  // Stop accepting; close the read side of every connection. Responses for
  // frames already in the pool still flow on lane threads.
  tcp_listener_.close();
  uds_listener_.close();
}

void IngressServer::handle_readable(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> chunk(opts_.read_chunk_bytes);
  for (;;) {
    const ssize_t n = ::read(conn->sock.fd(), chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      drop_connection(conn, false);
      return;
    }
    if (n == 0) {  // clean EOF
      drop_connection(conn, false);
      return;
    }
    bytes_rx_.fetch_add(static_cast<std::uint64_t>(n), kRelaxed);
    conn->decoder.feed(chunk.data(), static_cast<usize>(n));
    WireFrame wf;
    WireResponse wr;
    for (;;) {
      const WireDecoder::Next what = conn->decoder.next(wf, wr);
      if (what == WireDecoder::Next::kNeedMore) break;
      if (what == WireDecoder::Next::kFrame) {
        if (!handle_frame(conn, std::move(wf))) {
          drop_connection(conn, true);
          return;
        }
        continue;
      }
      // kResponse from a client, or a poisoned decoder: protocol error.
      drop_connection(conn, true);
      return;
    }
    // One read that filled the whole chunk may have left more in the socket
    // buffer; loop. A short read means the buffer is drained — back to poll.
    if (static_cast<usize>(n) < chunk.size()) return;
  }
}

bool IngressServer::handle_frame(const std::shared_ptr<Connection>& conn,
                                 WireFrame&& wf) {
  frames_rx_.fetch_add(1, kRelaxed);
  // Resolve the channel: shipped inline, or referenced by fingerprint from
  // this connection's cache.
  // LRU touch: move fp to the back of the recency order.
  const auto touch = [&conn](std::uint64_t fp) {
    auto& order = conn->channel_order;
    const auto it = std::find(order.begin(), order.end(), fp);
    if (it != order.end()) order.erase(it);
    order.push_back(fp);
  };
  ChannelHandle channel;
  if (wf.has_channel) {
    cache_misses_.fetch_add(1, kRelaxed);
    channel = ChannelHandle(std::move(wf.h));
    SD_ASSERT(channel.fingerprint() == wf.channel_fp);  // decoder verified
    conn->seen_fps.insert(wf.channel_fp);
    if (conn->channels.find(wf.channel_fp) == conn->channels.end() &&
        conn->channel_order.size() >= opts_.channel_cache_capacity) {
      conn->channels.erase(conn->channel_order.front());
      conn->channel_order.erase(conn->channel_order.begin());
    }
    conn->channels.insert_or_assign(wf.channel_fp, channel);
    touch(wf.channel_fp);
  } else {
    const auto it = conn->channels.find(wf.channel_fp);
    if (it == conn->channels.end()) {
      // Never carried inline on this connection: the client is broken —
      // protocol error. Carried once but since evicted: the client followed
      // the protocol and only the server's bounded cache lost the entry, so
      // NACK with kResendChannel and keep the connection; the client
      // retransmits the frame with H inline.
      if (conn->seen_fps.find(wf.channel_fp) == conn->seen_fps.end())
        return false;
      resend_requests_.fetch_add(1, kRelaxed);
      WireResponse resp;
      resp.frame_id = wf.frame_id;
      resp.cell_id = wf.cell_id;
      resp.qos = wf.qos;
      resp.status = WireFrameStatus::kResendChannel;
      send_response(*conn, resp);
      return true;
    }
    cache_hits_.fetch_add(1, kRelaxed);
    touch(wf.channel_fp);
    channel = it->second;
  }
  // Dimension agreement with the served system is a protocol matter: the
  // dispatcher SD_CHECKs these and a throw on the IO thread would kill the
  // server — exactly what hostile input must not be able to do. The stream
  // count (cols) must match the served system; the antenna count (rows) may
  // exceed it — a massive-MIMO cell sends tall channels — but must stay
  // determined (rows >= cols) and agree with the observation length.
  const SystemConfig& sys = shards_.shard(0).system();
  const index_t rows = channel.matrix().rows();
  if (channel.matrix().cols() != sys.num_tx || rows < sys.num_tx ||
      static_cast<index_t>(wf.y.size()) != rows)
    return false;

  serve::FrameRequest frame;
  frame.channel = std::move(channel);
  frame.y = std::move(wf.y);
  frame.sigma2 = wf.sigma2;
  frame.deadline_s = wf.deadline_s;

  std::uint64_t server_id = 0;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    server_id = next_id_++;
    pending_.emplace(server_id,
                     Pending{conn, wf.frame_id, wf.cell_id, wf.qos});
  }
  frame.id = server_id;

  // May block under kBlock backpressure — that stall propagates through the
  // TCP window to the client, which is the design (zero frames lost).
  const ShardSubmit st =
      shards_.submit(wf.cell_id, std::move(frame), wf.qos);
  if (st == ShardSubmit::kAccepted) return true;

  // Refused synchronously: answer now and settle the pending entry.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(server_id);
  }
  pending_cv_.notify_all();
  WireResponse resp;
  resp.frame_id = wf.frame_id;
  resp.cell_id = wf.cell_id;
  resp.qos = wf.qos;
  resp.status = st == ShardSubmit::kShed ? WireFrameStatus::kShed
                                         : WireFrameStatus::kRejected;
  shed_tx_.fetch_add(1, kRelaxed);
  send_response(*conn, resp);
  return true;
}

void IngressServer::on_result(const serve::FrameResult& r) {
  Pending p;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = pending_.find(r.id);
    if (it == pending_.end()) return;  // not a network frame
    p = it->second;
  }
  WireResponse resp;
  resp.frame_id = p.client_frame_id;
  resp.cell_id = p.cell_id;
  resp.qos = p.qos;
  resp.status = wire_status_from(r.status);
  resp.tier = r.tier;
  resp.metric = r.result.metric;
  resp.indices = r.result.indices;
  send_response(*p.conn, resp);
  // Settle only after the response bytes are in the socket: stop()'s drain
  // predicate is `pending_ empty`, and it must not pass while a lane thread
  // is still mid-write — shutdown would close the connection under it.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(r.id);
  }
  pending_cv_.notify_all();
}

void IngressServer::send_response(Connection& conn, const WireResponse& resp) {
  std::vector<std::uint8_t> buf;
  encode_response(resp, buf);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!conn.open) return;
  if (send_all(conn.sock.fd(), buf.data(), buf.size())) {
    responses_tx_.fetch_add(1, kRelaxed);
    bytes_tx_.fetch_add(buf.size(), kRelaxed);
  }
}

void IngressServer::drop_connection(const std::shared_ptr<Connection>& conn,
                                    bool protocol_error) {
  if (protocol_error) protocol_errors_.fetch_add(1, kRelaxed);
  connections_dropped_.fetch_add(1, kRelaxed);
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->open = false;
    conn->sock.shutdown_both();
  }
  // The fd itself stays alive until the last pending response releases its
  // shared_ptr (sends to a closed conn are skipped via `open`).
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == conn.get()) {
      conns_.erase(it);
      break;
    }
  }
}

void IngressServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  wake();
  io_thread_.join();
  // Listeners are closed; wait for every accepted frame to be answered.
  {
    std::unique_lock<std::mutex> lock(pending_mu_);
    pending_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(opts_.drain_timeout_s)),
        [this] { return pending_.empty(); });
  }
  for (const auto& c : conns_) {
    std::lock_guard<std::mutex> lock(c->write_mu);
    c->open = false;
    c->sock.shutdown_both();
  }
  conns_.clear();
  if (!opts_.uds_path.empty()) ::unlink(opts_.uds_path.c_str());
}

NetStats IngressServer::stats() const {
  NetStats s;
  s.connections_accepted = connections_accepted_.load(kRelaxed);
  s.connections_dropped = connections_dropped_.load(kRelaxed);
  s.protocol_errors = protocol_errors_.load(kRelaxed);
  s.frames_rx = frames_rx_.load(kRelaxed);
  s.responses_tx = responses_tx_.load(kRelaxed);
  s.shed_tx = shed_tx_.load(kRelaxed);
  s.bytes_rx = bytes_rx_.load(kRelaxed);
  s.bytes_tx = bytes_tx_.load(kRelaxed);
  s.channel_cache_hits = cache_hits_.load(kRelaxed);
  s.channel_cache_misses = cache_misses_.load(kRelaxed);
  s.channel_resend_requests = resend_requests_.load(kRelaxed);
  return s;
}

usize IngressServer::pending_frames() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

}  // namespace sd::net
