#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sd::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw net_error(std::string(what) + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  // Best effort: fails harmlessly on non-TCP sockets.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(tcp)");
  int one = 1;
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw_errno("bind(tcp)");
  if (::listen(s.fd(), 128) != 0) throw_errno("listen(tcp)");
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&got), &len) != 0)
      throw_errno("getsockname");
    *bound_port = ntohs(got.sin_port);
  }
  return s;
}

Socket listen_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw net_error("uds path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(uds)");
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw_errno(("bind(uds " + path + ")").c_str());
  if (::listen(s.fd(), 128) != 0) throw_errno("listen(uds)");
  return s;
}

Socket connect_tcp_loopback(std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(tcp)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("connect(tcp)");
  set_nodelay(s.fd());
  return s;
}

Socket connect_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw net_error("uds path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(uds)");
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno(("connect(uds " + path + ")").c_str());
  return s;
}

Socket accept_connection(const Socket& listener) {
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
      return Socket();
    throw_errno("accept");
  }
  Socket s(fd);
  set_nodelay(fd);
  return s;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

bool send_all(int fd, const void* data, usize n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  usize sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full send buffer: wait for writability so
        // the call stays logically blocking for every caller.
        pollfd pfd{fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 1000);
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("send");
    }
    sent += static_cast<usize>(rc);
  }
  return true;
}

}  // namespace sd::net
