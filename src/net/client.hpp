// NetClient: the out-of-process counterpart of IngressServer.
//
// One connection, two halves: send() encodes frames (the caller decides when
// to elide the channel — see send_frame_auto for the last-fingerprint
// policy), recv() blocks until the next complete WireResponse arrives.
// Sends and receives are independently thread-safe, so a driver can stream
// from one thread while a reader thread matches responses by frame id —
// the shape examples/uplink_client uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace sd::net {

class NetClient {
 public:
  [[nodiscard]] static NetClient connect_tcp(std::uint16_t port) {
    return NetClient(connect_tcp_loopback(port));
  }
  [[nodiscard]] static NetClient connect_uds(const std::string& path) {
    return NetClient(sd::net::connect_uds(path));
  }

  // Pinned in place (mutex members); factories rely on C++17 copy elision.
  NetClient(NetClient&&) = delete;
  NetClient& operator=(NetClient&&) = delete;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Encodes and writes one frame as given (has_channel untouched).
  /// Returns false if the server closed the connection.
  bool send(const WireFrame& frame);

  /// Channel-elision policy: ships H the first time `fp` travels on this
  /// connection and elides it afterwards — so interleaved coherence blocks
  /// (A,B,A,B) pay for each channel once, not once per switch. Elided frames
  /// are retained (with their channel) until their response arrives, so a
  /// kResendChannel NACK — the server's bounded cache evicted fp — can be
  /// answered transparently inside recv(). The caller fills everything but
  /// has_channel/channel_fp.
  bool send_frame_auto(WireFrame& frame, const CMat& h, std::uint64_t fp);

  /// Blocks until one complete response arrives. Returns false on clean EOF
  /// (server closed); throws net_error if the stream is malformed.
  /// kResendChannel NACKs for frames sent via send_frame_auto are handled
  /// internally (the frame is retransmitted with H inline and the wait
  /// continues); a NACK for a frame this client cannot retransmit — sent
  /// via raw send() — is surfaced to the caller instead.
  bool recv(WireResponse& resp);

  /// Frames retransmitted with an inline channel after a kResendChannel.
  [[nodiscard]] std::uint64_t resends() const noexcept {
    return resends_.load(std::memory_order_relaxed);
  }

  /// Half-close the send direction: the server sees EOF after the last
  /// frame, while responses keep flowing back.
  void finish_sending();

  [[nodiscard]] usize bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] usize bytes_received() const noexcept {
    return bytes_received_;
  }

 private:
  explicit NetClient(Socket sock) : sock_(std::move(sock)) {}

  bool send_locked(const WireFrame& frame);

  Socket sock_;
  std::mutex send_mu_;
  std::vector<std::uint8_t> send_buf_;
  /// Every fingerprint shipped inline on this connection (elision key).
  std::unordered_set<std::uint64_t> sent_fps_;
  /// In-flight elided frames by client frame id, channel included — the
  /// retransmit source for kResendChannel. Erased on the frame's response.
  std::unordered_map<std::uint64_t, WireFrame> elided_;
  usize bytes_sent_ = 0;
  std::atomic<std::uint64_t> resends_{0};

  std::mutex recv_mu_;
  WireDecoder decoder_;
  usize bytes_received_ = 0;
};

}  // namespace sd::net
