// IngressServer: the real network front door of the sharded detection
// runtime.
//
// One poll()-driven IO thread owns every listener (TCP loopback and/or a
// Unix-domain socket) and every accepted connection. Reads are batched — one
// read() drains up to a chunk of the socket buffer into the connection's
// WireDecoder, which then yields every complete frame in it — so a client
// streaming back-to-back frames costs one syscall per chunk, not per frame.
// Each complete frame is routed through the ShardedServer: admission may
// shed it (answered immediately with kShed), backpressure may block the IO
// thread (that *is* the transport-level backpressure under kBlock — the TCP
// window fills and the client's send stalls; completions flow on lane
// threads, so no deadlock), and accepted frames are answered from the
// completion tap when their FrameResult retires.
//
// Channel elision: a frame with has_channel=0 references a previously sent
// channel by fingerprint, resolved from the per-connection fingerprint ->
// ChannelHandle cache. Coherent traffic therefore ships H once per
// coherence block — the wire-level analogue of the PR 5 prep-cache reuse.
//
// Any protocol violation (malformed bytes, unknown fingerprint, dimensions
// that do not match the served system) counts net.protocol_error and drops
// that connection; the server never crashes on input. See DESIGN.md §13.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "decode/channel_prep.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace sd::obs {
class CounterRegistry;
}

namespace sd::net {

struct IngressOptions {
  /// Unix-domain listener path; empty = no UDS listener.
  std::string uds_path;
  /// TCP loopback listener; port 0 = kernel-assigned (read back via
  /// tcp_port()). enable_tcp=false = no TCP listener.
  bool enable_tcp = false;
  std::uint16_t tcp_port = 0;
  usize max_message_bytes = kMaxMessageBytes;
  usize read_chunk_bytes = 64 * 1024;
  /// Per-connection channel-cache entries (LRU). Referencing a fingerprint
  /// that was never sent is a protocol error; referencing one the cache
  /// evicted is answered with a kResendChannel NACK instead — the client
  /// retransmits with the channel inline.
  usize channel_cache_capacity = 1024;
  /// stop() waits this long for in-flight frames to answer before closing
  /// connections anyway.
  double drain_timeout_s = 30.0;
};

/// Transport counters. Snapshot struct — all loads relaxed; exact after the
/// IO thread and all lanes have quiesced.
struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< EOF + protocol errors
  std::uint64_t protocol_errors = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t responses_tx = 0;
  std::uint64_t shed_tx = 0;  ///< responses carrying kShed/kRejected
  std::uint64_t bytes_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t channel_cache_hits = 0;    ///< frames that elided H
  std::uint64_t channel_cache_misses = 0;  ///< frames that shipped H
  /// Elided frames whose fingerprint was evicted: answered kResendChannel.
  std::uint64_t channel_resend_requests = 0;

  /// "net.protocol_error", "net.frames_rx", ... into the unified registry.
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "net") const;
};

class IngressServer {
 public:
  /// Binds the configured listeners and installs itself as `shards`'
  /// completion tap. `shards` must outlive the server. Throws net_error if
  /// no listener is configured or a bind fails.
  IngressServer(ShardedServer& shards, IngressOptions options);

  /// stop()s if still running.
  ~IngressServer();

  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  /// Starts the IO thread. Call once.
  void start();

  /// Graceful shutdown: closes listeners, stops reading, waits (bounded by
  /// drain_timeout_s) for every accepted frame to be answered, then closes
  /// all connections and joins the IO thread. Idempotent. The caller drains
  /// the ShardedServer afterwards.
  void stop();

  /// Actual TCP port (after an ephemeral bind). 0 if TCP is disabled.
  [[nodiscard]] std::uint16_t tcp_port() const noexcept { return tcp_port_; }
  [[nodiscard]] const std::string& uds_path() const noexcept {
    return opts_.uds_path;
  }

  [[nodiscard]] NetStats stats() const;
  /// Frames accepted into the pool whose response has not been sent yet.
  [[nodiscard]] usize pending_frames() const;

 private:
  struct Connection {
    explicit Connection(Socket s, usize max_message)
        : sock(std::move(s)), decoder(max_message) {}
    Socket sock;
    WireDecoder decoder;
    /// Fingerprint -> channel; channel_order is recency-ordered (front =
    /// least recently used) so eviction drops the coldest entry, not the
    /// oldest — an interleaved A,B,A,B stream keeps both alive.
    std::unordered_map<std::uint64_t, ChannelHandle> channels;
    std::vector<std::uint64_t> channel_order;
    /// Every fingerprint ever carried inline on this connection: the line
    /// between "evicted, ask for a resend" and "never sent, protocol error".
    std::unordered_set<std::uint64_t> seen_fps;
    std::mutex write_mu;   ///< serializes response sends
    bool open = true;      ///< guarded by write_mu
  };

  struct Pending {
    std::shared_ptr<Connection> conn;
    std::uint64_t client_frame_id = 0;
    std::uint32_t cell_id = 0;
    QosClass qos = QosClass::kBestEffort;
  };

  void io_loop();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  /// False = protocol error; caller drops the connection.
  bool handle_frame(const std::shared_ptr<Connection>& conn, WireFrame&& wf);
  void drop_connection(const std::shared_ptr<Connection>& conn,
                       bool protocol_error);
  void on_result(const serve::FrameResult& r);
  void send_response(Connection& conn, const WireResponse& resp);
  void wake();

  ShardedServer& shards_;
  IngressOptions opts_;
  Socket tcp_listener_;
  Socket uds_listener_;
  std::uint16_t tcp_port_ = 0;
  Socket wake_rd_, wake_wr_;  ///< self-pipe: stop() interrupts poll()

  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::vector<std::shared_ptr<Connection>> conns_;  ///< IO thread only

  /// Server-assigned frame id -> response routing. Lane threads erase.
  mutable std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 1;

  // Counters: IO thread and lane threads both write.
  std::atomic<std::uint64_t> connections_accepted_{0}, connections_dropped_{0},
      protocol_errors_{0}, frames_rx_{0}, responses_tx_{0}, shed_tx_{0},
      bytes_rx_{0}, bytes_tx_{0}, cache_hits_{0}, cache_misses_{0},
      resend_requests_{0};
};

}  // namespace sd::net
