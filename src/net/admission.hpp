// Load-aware admission control: shed-before-miss.
//
// The dispatcher's overload ladder (PR 3) degrades the decode tier when its
// *own* queues cannot meet a deadline, but it only sees frames it has already
// accepted — under sustained overload every queue is deep by the time the
// ladder reacts, and hard-deadline frames expire in line behind work that
// was doomed anyway. The admission controller sits in front of submit() and
// makes the call per frame, before it costs anything:
//
//   budget  = frame deadline (or the QoS class default)
//   wait    = outstanding * EWMA(service seconds) / lanes   (queueing delay)
//   pred(t) = min over backends of CostModel::predict at tier t
//
// The first tier t with (wait + pred(t)) * headroom <= budget is admitted —
// the frame enters the pool pre-degraded via FrameRequest::start_tier, so
// the dispatcher never places it above a rung it cannot afford. If even the
// linear tier cannot make the budget the frame is shed: a frame that would
// miss anyway is refused at the door, and the capacity it would have burned
// goes to frames that can still make their deadlines. Deadline-less
// best-effort frames are admitted at primary until the estimated wait passes
// a saturation bound, then ride the linear tier.
//
// Every decision is counted per QoS class and exported through the PR 2
// counter registry under "net.admission.*". One controller per shard — the
// estimate must see only its own cell's queue. See DESIGN.md §13.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "dispatch/dispatcher.hpp"
#include "net/qos.hpp"
#include "serve/frame.hpp"

namespace sd::obs {
class CounterRegistry;
}

namespace sd::net {

struct AdmissionOptions {
  /// Off = every frame admitted at primary (the no-admission baseline the
  /// bench compares against); decisions are still counted.
  bool enabled = true;
  /// Weight of the newest observed service time in the wait estimate.
  double ewma_alpha = 0.2;
  /// Multiplier on the completion estimate before comparing to the budget;
  /// > 1 sheds earlier (conservative), < 1 later (optimistic).
  double headroom = 1.0;
  /// Per-class deadline defaults for frames that carry none, indexed by
  /// QosClass. 0 = no deadline (never shed on budget); non-finite values
  /// (inf/NaN) are normalized to 0 — an infinite budget would otherwise
  /// trivially satisfy the budgeted walk at kPrimary and bypass the
  /// saturation degrade.
  std::array<double, kQosClassCount> class_deadline_s = {0.010, 0.050, 0.0};
  /// Estimated wait above which deadline-less frames degrade to linear.
  double saturation_wait_s = 0.25;
};

enum class AdmitAction : std::uint8_t {
  kAdmit,  ///< submit at `tier`
  kShed,   ///< refuse: predicted to miss its budget at every tier
};

/// One admission decision, with the estimates that produced it.
struct AdmitDecision {
  AdmitAction action = AdmitAction::kAdmit;
  serve::DecodeTier tier = serve::DecodeTier::kPrimary;
  double budget_s = 0.0;     ///< effective deadline used (0 = none)
  double est_wait_s = 0.0;   ///< queueing-delay estimate at decision time
  double predicted_s = 0.0;  ///< cheapest backend's predicted service time
};

struct AdmissionStats {
  std::uint64_t considered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded_kbest = 0;   ///< admitted with a K-Best floor
  std::uint64_t degraded_mmse = 0;    ///< admitted with an MMSE floor
  std::uint64_t degraded_linear = 0;  ///< admitted with a linear floor
  std::array<std::uint64_t, kQosClassCount> admitted_by_class = {};
  std::array<std::uint64_t, kQosClassCount> shed_by_class = {};

  /// Pours the stats into the registry under "<prefix>.*", e.g.
  /// "net.admission.shed" and "net.admission.hard.shed".
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "net.admission") const;
};

class AdmissionController {
 public:
  /// `dispatcher` is the shard's placement layer: its cost model prices the
  /// tiers and its lane count scales the wait estimate. Must outlive the
  /// controller.
  AdmissionController(AdmissionOptions opts, dispatch::Dispatcher& dispatcher);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decides one frame. On kAdmit the caller must submit it (with
  /// FrameRequest::start_tier = decision.tier) and later report its terminal
  /// FrameResult via on_complete — the outstanding count and service EWMA
  /// depend on that contract. Thread-safe.
  [[nodiscard]] AdmitDecision decide(const CMat& h, double sigma2,
                                     double deadline_s, QosClass qos);

  /// Terminal-state hook for every admitted frame.
  void on_complete(const serve::FrameResult& r);

  [[nodiscard]] AdmissionStats stats() const;
  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return opts_;
  }
  /// Current queueing-delay estimate (test introspection).
  [[nodiscard]] double estimated_wait_s() const;

 private:
  AdmissionOptions opts_;
  dispatch::Dispatcher& dispatcher_;
  index_t mod_order_ = 0;

  mutable std::mutex mu_;
  std::uint64_t outstanding_ = 0;
  double service_ewma_s_ = 0.0;
  bool ewma_primed_ = false;
  AdmissionStats stats_;
};

}  // namespace sd::net
