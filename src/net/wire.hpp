// spheredec wire protocol: length-prefixed binary frames for the uplink
// ingress path.
//
// Every message on a connection is [u32 length][u32 magic][u8 version]
// [u8 type][payload], all little-endian, where `length` counts the bytes
// after the length field itself. Two message types flow:
//
//   kFrame    client -> server: one received MIMO vector. The header carries
//             cell id, frame id, QoS class, deadline budget, sigma2, and the
//             channel's content fingerprint; the channel matrix itself is
//             OPTIONAL (flag bit) — coherent frames of one block send H once
//             and later frames reference it by fingerprint, which the
//             server resolves from its per-connection channel cache.
//   kResponse server -> client: the detection outcome for one frame id —
//             terminal status (completed / expired / shed / ...), the decode
//             tier served, the achieved metric, and the detected symbol
//             indices. Responses may arrive out of submission order (lanes
//             decode in parallel); clients match on frame id.
//
// Decoding is incremental: WireDecoder accumulates bytes across arbitrary
// read() boundaries and yields complete messages, so the ingress loop can
// feed it whatever a socket returns. Any malformed input (bad magic/version,
// oversized or inconsistent lengths, out-of-range fields, a channel whose
// content does not hash to its declared fingerprint) poisons the decoder
// with a typed WireError — the server drops the connection and counts a
// protocol error, never crashes. See DESIGN.md §13.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "net/qos.hpp"
#include "serve/frame.hpp"

namespace sd::net {

inline constexpr std::uint32_t kWireMagic = 0x53444E46u;  // "SDNF"
inline constexpr std::uint8_t kWireVersion = 1;
/// Hard ceiling on one message (length prefix); anything larger is a
/// protocol error before a single payload byte is buffered.
inline constexpr usize kMaxMessageBytes = 1u << 24;  // 16 MiB
/// Dimension sanity bound for rows/cols fields.
inline constexpr std::uint16_t kMaxWireDim = 4096;

enum class WireType : std::uint8_t {
  kFrame = 1,
  kResponse = 2,
};

/// Why a decoder poisoned itself. kNone means healthy.
enum class WireError : std::uint8_t {
  kNone,
  kOversized,            ///< length prefix exceeds the message ceiling
  kTruncated,            ///< message shorter than its fixed header
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadField,             ///< out-of-range qos / flags / dimensions
  kBadLength,            ///< length inconsistent with the declared payload
  kFingerprintMismatch,  ///< channel bytes do not hash to the declared fp
};

[[nodiscard]] std::string_view wire_error_name(WireError e) noexcept;

/// One uplink frame as it travels on the wire.
struct WireFrame {
  std::uint32_t cell_id = 0;
  std::uint64_t frame_id = 0;   ///< client-chosen, echoed in the response
  QosClass qos = QosClass::kBestEffort;
  bool has_channel = false;     ///< H payload present (else fp references it)
  double deadline_s = 0.0;      ///< per-frame budget; 0 = class default/none
  double sigma2 = 0.0;
  std::uint64_t channel_fp = 0; ///< content fingerprint of H
  CMat h;                       ///< valid iff has_channel
  CVec y;                       ///< received vector (rows entries)
};

/// Terminal outcome on the wire: serve::FrameStatus plus the two states only
/// the network front-end can produce (admission shed, submit rejection).
enum class WireFrameStatus : std::uint8_t {
  kCompleted = 0,
  kExpiredFallback = 1,
  kExpiredDropped = 2,
  kEvicted = 3,
  kShed = 4,      ///< admission control refused before placement
  kRejected = 5,  ///< backpressure rejected at submit
  /// NACK, not a terminal outcome: the frame elided H by fingerprint but the
  /// server's per-connection cache no longer holds it (bounded LRU eviction).
  /// The client must retransmit the same frame with the channel inline.
  /// Referencing a fingerprint that was NEVER sent on the connection is
  /// still a protocol error — only eviction of a once-valid entry NACKs.
  kResendChannel = 6,
};

[[nodiscard]] std::string_view wire_frame_status_name(
    WireFrameStatus s) noexcept;
[[nodiscard]] WireFrameStatus wire_status_from(serve::FrameStatus s) noexcept;

/// Detection outcome for one frame id.
struct WireResponse {
  std::uint64_t frame_id = 0;
  std::uint32_t cell_id = 0;
  WireFrameStatus status = WireFrameStatus::kCompleted;
  serve::DecodeTier tier = serve::DecodeTier::kPrimary;
  QosClass qos = QosClass::kBestEffort;
  double metric = 0.0;
  std::vector<index_t> indices;  ///< detected symbol index per tx antenna
};

/// Appends one encoded kFrame message to `out` (length prefix included).
/// When `frame.has_channel`, frame.h must be non-empty and is shipped; the
/// encoder does NOT verify frame.channel_fp against the matrix — that is the
/// receiver's job (and what the fingerprint-mismatch tests forge).
void encode_frame(const WireFrame& frame, std::vector<std::uint8_t>& out);

/// Appends one encoded kResponse message to `out`.
void encode_response(const WireResponse& resp, std::vector<std::uint8_t>& out);

/// Incremental message decoder: feed() arbitrary byte chunks, then pull
/// complete messages with next(). One instance per connection — it owns the
/// partial-message buffer (the per-connection decode state).
class WireDecoder {
 public:
  explicit WireDecoder(usize max_message_bytes = kMaxMessageBytes);

  /// Appends received bytes to the internal buffer.
  void feed(const std::uint8_t* data, usize n);

  enum class Next : std::uint8_t {
    kNeedMore,  ///< no complete message buffered yet
    kFrame,     ///< `frame` filled
    kResponse,  ///< `resp` filled
    kError,     ///< poisoned; see error(). Connection must be dropped.
  };

  /// Extracts the next complete message. After kError every further call
  /// returns kError (the stream cannot be resynchronized).
  [[nodiscard]] Next next(WireFrame& frame, WireResponse& resp);

  [[nodiscard]] WireError error() const noexcept { return error_; }
  /// Bytes currently buffered but not yet consumed (test introspection).
  [[nodiscard]] usize buffered() const noexcept { return buf_.size() - pos_; }

 private:
  [[nodiscard]] Next fail(WireError e) noexcept;
  [[nodiscard]] Next parse_frame(const std::uint8_t* p, usize n,
                                 WireFrame& frame);
  [[nodiscard]] Next parse_response(const std::uint8_t* p, usize n,
                                    WireResponse& resp);

  usize max_message_;
  std::vector<std::uint8_t> buf_;
  usize pos_ = 0;  ///< consumed prefix of buf_
  WireError error_ = WireError::kNone;
};

/// Byte size of the encoded kFrame message for a rows x cols system (length
/// prefix included) — the bench's bytes-per-frame accounting.
[[nodiscard]] usize encoded_frame_bytes(index_t rows, index_t cols,
                                        bool with_channel) noexcept;

}  // namespace sd::net
