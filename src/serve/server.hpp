// DetectionServer: the batched, deadline-aware runtime that turns the
// single-shot detectors into a served workload.
//
// Architecture (DESIGN.md §6):
//
//   submit() ──> FrameQueue (bounded, backpressure policy)
//                   │  pop_batch(batch_size)
//                   ▼
//             worker 0..N-1, each owning a private Detector built from the
//             same DecoderSpec (CPU SD, MultiPE, K-Best, FPGA model, ...)
//                   │  per frame: deadline check -> decode or ZF fallback
//                   ▼
//             completion callback (any worker thread) + ServerMetrics
//
// Deadline semantics: a frame's budget starts when submit() stamps it. If
// the budget is already exhausted when a worker dequeues the frame, decoding
// it would waste capacity on an answer nobody is waiting for — the worker
// instead serves a ZF fallback (graceful degradation, never silence) or
// drops it, per ServerOptions. Frames that finish late still count as
// deadline misses.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "core/sphere_decoder.hpp"
#include "serve/frame.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"

namespace sd::serve {

struct ServerOptions {
  unsigned num_workers = 1;        ///< detector threads (>= 1)
  usize batch_size = 1;            ///< max frames per queue pop (>= 1)
  usize queue_capacity = 64;       ///< bounded queue depth (>= 1)
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  double default_deadline_s = 0.0; ///< applied when a frame carries none; 0 = none
  bool zf_fallback_on_expiry = true;
  /// Hardware-in-the-loop pacing: after a decode, the worker sleeps until
  /// the frame's charged device time (stats.search_seconds — simulated
  /// cycle-model time for the @fpga backends) has elapsed, emulating a host
  /// thread blocked on an accelerator round trip. Workers then overlap
  /// waits like real pipelines, so pool scaling is visible even when the
  /// host has fewer cores than workers. Meaningless for CPU backends,
  /// whose search_seconds is the measured wall time itself.
  bool emulate_device_latency = false;
  /// With emulate_device_latency, a fixed host<->device round-trip latency
  /// added on top of the charged device time — the PCIe / network transfer
  /// an offloaded decode pays per frame regardless of device occupancy.
  /// The RTT usually dwarfs device compute, so this is what the worker
  /// pool actually overlaps.
  double emulated_rtt_s = 0.0;
  /// Histogram range for latency recording; values above clamp into the last
  /// bucket but max stays exact. 0.1 ms resolution over [0, 1 s] by default.
  double histogram_max_s = 1.0;
  usize histogram_buckets = 10'000;
};

/// Parses "workers=4,batch=8,queue=64,policy=drop-oldest,deadline-ms=10,
/// no-fallback,emulate-device,rtt-ms=1" (any subset, any order) on top of
/// `base`.
/// Throws sd::invalid_argument_error on unknown keys or bad values.
[[nodiscard]] ServerOptions parse_server_options(std::string_view text,
                                                 ServerOptions base = {});

/// Outcome of DetectionServer::submit.
enum class SubmitStatus : std::uint8_t {
  kAccepted,  ///< enqueued (a drop-oldest displacement still accepts)
  kRejected,  ///< refused: reject policy with a full queue
  kClosed,    ///< server already drained
};

/// Invoked on a worker thread (or, for evicted frames, on the submitting
/// thread) once per frame reaching a terminal state other than kRejected.
/// Must be thread-safe; keep it cheap — it runs on the decode path.
using CompletionFn = std::function<void(const FrameResult&)>;

class DetectionServer {
 public:
  /// Spawns the worker pool. Each worker builds its own detector from
  /// (system, spec) via make_detector, so any spec the factory accepts can
  /// be served. Throws sd::invalid_argument_error on bad options.
  DetectionServer(SystemConfig system, DecoderSpec spec, ServerOptions options,
                  CompletionFn on_complete);

  /// Drains and joins.
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  /// Submits one frame. Stamps frame.submit_time and applies the default
  /// deadline if the frame carries none. Blocks iff the queue is full under
  /// kBlock. Thread-safe.
  SubmitStatus submit(FrameRequest frame);

  /// Closes the queue, lets workers drain every queued frame, joins them.
  /// Idempotent. After drain() submits fail with kClosed.
  void drain();

  /// Point-in-time metrics snapshot. Thread-safe.
  [[nodiscard]] ServerMetrics metrics() const;

  [[nodiscard]] const ServerOptions& options() const noexcept { return opts_; }
  [[nodiscard]] const SystemConfig& system() const noexcept { return system_; }

 private:
  void worker_main(unsigned worker_id);
  void process_frame(unsigned worker_id, Detector& detector, Detector& fallback,
                     FrameRequest& frame);
  void finish_frame(const FrameResult& r);

  SystemConfig system_;
  DecoderSpec spec_;
  ServerOptions opts_;
  CompletionFn on_complete_;

  FrameQueue queue_;
  std::vector<std::thread> workers_;
  Clock::time_point start_;

  // All mutable accounting below is guarded by metrics_mu_. Histograms and
  // counters are cheap to update relative to a decode, so one lock suffices.
  mutable std::mutex metrics_mu_;
  std::uint64_t submitted_ = 0, completed_ = 0, expired_fallback_ = 0,
                expired_dropped_ = 0, evicted_ = 0, rejected_ = 0,
                deadline_misses_ = 0;
  Histogram queue_wait_h_, service_h_, e2e_h_;
  struct WorkerAccounting {
    std::uint64_t frames = 0, batches = 0;
    double busy_seconds = 0.0;
  };
  std::vector<WorkerAccounting> worker_acct_;
  double drained_wall_s_ = -1.0;  ///< wall time frozen at drain; <0 = running
  bool drained_ = false;
};

}  // namespace sd::serve
