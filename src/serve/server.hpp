// DetectionServer: the batched, deadline-aware runtime that turns the
// single-shot detectors into a served workload.
//
// Architecture (DESIGN.md §6, §8):
//
//   submit() ──> Dispatcher (src/dispatch)
//                   │  feature extraction -> cost model -> placement policy
//                   ▼
//             Backend pool: CPU / FPGA / parallel-SD backends, each with
//             N lanes owning private detector ladders and bounded queues
//                   │  per frame: deadline check -> decode or ZF fallback
//                   ▼
//             completion callback (any lane thread) + ServerMetrics
//
// The classic homogeneous worker pool is the degenerate case: with no
// `backends` spec the server builds a single CPU backend whose lane count is
// num_workers, which behaves exactly like the original pop-batch pool. A
// `backends` spec ("cpu:4,fpga:2,...") turns on the heterogeneous pool and
// cost-aware placement.
//
// Deadline semantics: a frame's budget starts when submit() stamps it. If
// the budget is already exhausted when a lane dequeues the frame, decoding
// it would waste capacity on an answer nobody is waiting for — the lane
// instead serves a ZF fallback (graceful degradation, never silence) or
// drops it, per ServerOptions. Frames that finish late still count as
// deadline misses. Under predicted overload the dispatcher additionally
// degrades the decode *tier* (SD -> K-Best -> linear) before frames ever
// expire: shed work, not frames.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/sphere_decoder.hpp"
#include "dispatch/dispatcher.hpp"
#include "serve/frame.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"

namespace sd::serve {

struct ServerOptions {
  unsigned num_workers = 1;        ///< lanes of the degenerate CPU pool (>= 1)
  usize batch_size = 1;            ///< max frames per queue pop (>= 1)
  usize queue_capacity = 64;       ///< bounded queue depth per lane (>= 1)
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  double default_deadline_s = 0.0; ///< applied when a frame carries none; 0 = none
  /// Fuse popped same-tier frames with different channels into one wide
  /// block-diagonal decode. Off restores the classic same-channel-only
  /// fusion (ablation baseline); results are bit-identical either way.
  bool fuse_cross_channel = true;
  /// Wide-batch former: lanes extend their pops with compatible frames from
  /// sibling lanes' queues, so fused width tracks system load (DESIGN.md
  /// §16). Results are bit-identical either way; off = per-lane fusion only.
  bool cross_lane_former = true;
  /// Hard cap on frames per formed wide run.
  usize max_wide_width = 32;
  bool zf_fallback_on_expiry = true;
  /// DEPRECATED: use a `backends` pool spec with an fpga entry (or an
  /// `rtt-ms=` backend field) instead; FpgaBackend paces itself. Still
  /// honored on the degenerate pool — the server logs a one-line warning and
  /// paces its CPU lanes to the charged device time.
  bool emulate_device_latency = false;
  /// DEPRECATED alongside emulate_device_latency: the fixed host<->device
  /// round trip added to the charged time when emulating.
  double emulated_rtt_s = 0.0;
  /// Heterogeneous pool spec for parse_backend_pool, e.g.
  /// "cpu:4,fpga:2:rtt-ms=1". Empty = degenerate single-CPU-backend pool
  /// with num_workers lanes.
  std::string backends;
  /// How the dispatcher places frames onto lanes.
  dispatch::PlacementPolicy placement = dispatch::PlacementPolicy::kCostAware;
  /// Default host<->device RTT for fpga pool entries without an rtt-ms field.
  double fpga_rtt_s = 1e-3;
  /// Degrade decode tiers when no placement meets a frame's deadline
  /// (cost-aware placement only).
  bool degrade_on_deadline = true;
  /// Freeze the cost model's measured-rate calibration so placement depends
  /// only on deterministic node counts (reproducible placement sequences).
  bool deterministic_cost = false;
  /// Histogram range for latency recording; values above clamp into the last
  /// bucket but max stays exact. 0.1 ms resolution over [0, 1 s] by default.
  double histogram_max_s = 1.0;
  usize histogram_buckets = 10'000;
};

/// Parses "workers=4,batch=8,queue=64,policy=drop-oldest,deadline-ms=10,
/// no-fallback,no-cross-lane-fuse,wide-width=32,placement=cost-aware,
/// fpga-rtt-ms=1,no-degrade,
/// deterministic-cost,emulate-device,rtt-ms=1" (any subset, any order) on
/// top of `base`. The `backends` pool spec is itself comma-separated, so it
/// cannot ride in this option string — set it directly or via a dedicated
/// CLI flag. Throws sd::invalid_argument_error on unknown keys or bad values.
[[nodiscard]] ServerOptions parse_server_options(std::string_view text,
                                                 ServerOptions base = {});

class DetectionServer {
 public:
  /// Builds the backend pool (from options.backends, or the degenerate
  /// single CPU backend) and starts every lane. Each lane builds its own
  /// detector, so any spec the factory accepts can be served. Throws
  /// sd::invalid_argument_error on bad options.
  DetectionServer(SystemConfig system, DecoderSpec spec, ServerOptions options,
                  CompletionFn on_complete);

  /// Drains and joins.
  ~DetectionServer();

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  /// Submits one frame. Stamps frame.submit_time and applies the default
  /// deadline if the frame carries none. Blocks iff the chosen lane queue is
  /// full under kBlock. Thread-safe.
  SubmitStatus submit(FrameRequest frame);

  /// Closes the pool, lets lanes drain every queued frame, joins them.
  /// Idempotent. After drain() submits fail with kClosed.
  void drain();

  /// Point-in-time metrics snapshot (aggregate across the pool; `workers`
  /// holds one entry per lane). Thread-safe.
  [[nodiscard]] ServerMetrics metrics() const;

  [[nodiscard]] const ServerOptions& options() const noexcept { return opts_; }
  [[nodiscard]] const SystemConfig& system() const noexcept { return system_; }

  /// The placement layer, for per-backend metrics, dispatch stats, and cost
  /// model import/export. Valid for the server's lifetime.
  [[nodiscard]] dispatch::Dispatcher& dispatcher() noexcept {
    return *dispatcher_;
  }
  [[nodiscard]] const dispatch::Dispatcher& dispatcher() const noexcept {
    return *dispatcher_;
  }

 private:
  SystemConfig system_;
  DecoderSpec spec_;
  ServerOptions opts_;
  std::unique_ptr<dispatch::Dispatcher> dispatcher_;
};

}  // namespace sd::serve
