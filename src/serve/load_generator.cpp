#include "serve/load_generator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace sd::serve {

std::string_view arrival_mode_name(ArrivalMode m) noexcept {
  switch (m) {
    case ArrivalMode::kClosedLoop: return "closed-loop";
    case ArrivalMode::kOpenLoop: return "open-loop";
  }
  return "?";
}

LoadGenerator::LoadGenerator(SystemConfig system, DecoderSpec spec,
                             ServerOptions server, LoadOptions load)
    : system_(system), spec_(spec), server_opts_(server), load_(load) {
  SD_CHECK(load_.num_frames > 0, "load needs at least one frame");
  if (load_.mode == ArrivalMode::kClosedLoop) {
    SD_CHECK(load_.window >= 1, "closed-loop window must be positive");
    // With window <= capacity a closed-loop producer can never find the
    // queue full, so submits from completion callbacks cannot block a
    // worker thread (or trigger shedding) — the no-deadlock invariant.
    SD_CHECK(load_.window <= server_opts_.queue_capacity,
             "closed-loop window must fit in the queue");
  } else {
    SD_CHECK(load_.rate_fps > 0.0, "open-loop rate must be positive");
  }
  SD_CHECK(load_.coherence >= 1, "coherence block must be positive");
  SD_CHECK(load_.cells >= 1, "cell count must be positive");
}

LoadReport LoadGenerator::run(const CompletionFn& observer,
                              const ServerHook& before_traffic) {
  // Pre-generate every frame from the seeded scenario(s): identical runs see
  // identical (h, y, sigma2) streams, and ground truth stays available for
  // symbol-error accounting. With cells > 1, each cell owns an independent
  // scenario (seed + cell) and the cells are multiplexed round-robin into
  // the submission order — consecutive arrivals then carry different
  // channels, the interleaved traffic shape the wide engine fuses across.
  // One shared ChannelHandle per (cell, coherence block): every frame of a
  // block points at the same immutable storage (and carries the same
  // fingerprint), so nothing downstream ever copies or re-fingerprints H.
  const usize n_total = load_.num_frames;
  std::vector<Trial> trials(n_total);
  std::vector<ChannelHandle> channels(n_total);
  for (usize cell = 0; cell < load_.cells; ++cell) {
    ScenarioConfig sc;
    sc.num_tx = system_.num_tx;
    sc.num_rx = system_.num_rx;
    sc.modulation = system_.modulation;
    sc.snr_db = load_.snr_db;
    sc.seed = load_.seed + cell;
    sc.coherence_block = load_.coherence;
    Scenario scenario(sc);
    usize k = 0;  // per-cell frame index, for the cell's coherence blocks
    for (usize i = cell; i < n_total; i += load_.cells, ++k) {
      trials[i] = scenario.next();
      channels[i] = (k % load_.coherence == 0)
                        ? ChannelHandle(trials[i].h)
                        : channels[i - load_.cells];
    }
  }

  struct Shared {
    std::mutex mu;
    std::condition_variable all_done;
    usize next = 0;        // next frame index to submit (closed loop)
    usize outstanding = 0; // frames in flight (closed loop)
    usize terminal = 0;    // frames that reached a terminal state
    usize submitted = 0;
    usize rejected = 0;
    std::uint64_t symbol_errors = 0;
    std::uint64_t symbols_checked = 0;
  } sh;
  const usize n = load_.num_frames;

  // Cooperative stop: once this reads true no further frames are submitted;
  // frames already in flight still run to a terminal state below.
  const auto stopped = [this] {
    return load_.stop != nullptr &&
           load_.stop->load(std::memory_order_relaxed);
  };

  DetectionServer* server = nullptr;  // set before any submit below

  auto make_frame = [&](usize i) {
    FrameRequest f;
    f.id = i;
    f.channel = channels[i];
    f.y = trials[i].y;
    f.sigma2 = trials[i].sigma2;
    f.deadline_s = load_.deadline_s;
    return f;
  };

  // Submits frames while the closed-loop window has room. Called from run()
  // to prime the window and from the completion callback to refill it.
  std::function<void()> pump = [&] {
    for (;;) {
      usize i = 0;
      {
        std::lock_guard<std::mutex> lock(sh.mu);
        if (stopped() || sh.next >= n || sh.outstanding >= load_.window)
          return;
        i = sh.next++;
        ++sh.outstanding;
      }
      const SubmitStatus st = server->submit(make_frame(i));
      std::lock_guard<std::mutex> lock(sh.mu);
      ++sh.submitted;
      if (st != SubmitStatus::kAccepted) {
        ++sh.rejected;
        ++sh.terminal;
        --sh.outstanding;
        if (sh.terminal == n) sh.all_done.notify_all();
      }
    }
  };

  auto on_complete = [&](const FrameResult& r) {
    if (observer) observer(r);
    bool refill = false;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if ((r.status == FrameStatus::kCompleted ||
           r.status == FrameStatus::kExpiredFallback) &&
          r.id < trials.size()) {
        const std::vector<index_t>& truth = trials[r.id].tx.indices;
        const std::vector<index_t>& got = r.result.indices;
        for (usize k = 0; k < truth.size(); ++k) {
          ++sh.symbols_checked;
          if (k >= got.size() || got[k] != truth[k]) ++sh.symbol_errors;
        }
      }
      ++sh.terminal;
      if (sh.outstanding > 0) --sh.outstanding;
      refill = load_.mode == ArrivalMode::kClosedLoop && sh.next < n;
      if (sh.terminal == n) sh.all_done.notify_all();
    }
    if (refill) pump();
  };

  DetectionServer srv(system_, spec_, server_opts_, on_complete);
  server = &srv;
  if (before_traffic) before_traffic(srv);

  if (load_.mode == ArrivalMode::kClosedLoop) {
    pump();
  } else {
    // Fixed-rate open loop: arrival i fires at start + i/rate, regardless
    // of how the pool is keeping up — the backpressure policy absorbs any
    // mismatch.
    const Clock::time_point t0 = Clock::now();
    const auto interval = std::chrono::duration<double>(1.0 / load_.rate_fps);
    for (usize i = 0; i < n && !stopped(); ++i) {
      // Chunked sleep so a stop request interrupts even a slow arrival rate
      // within ~10 ms instead of waiting out the full inter-arrival gap.
      const Clock::time_point due =
          t0 + std::chrono::duration_cast<Clock::duration>(interval) *
                   static_cast<long>(i);
      while (Clock::now() < due && !stopped()) {
        std::this_thread::sleep_until(
            std::min(due, Clock::now() + std::chrono::milliseconds(10)));
      }
      if (stopped()) break;
      {
        std::lock_guard<std::mutex> lock(sh.mu);
        ++sh.outstanding;
      }
      const SubmitStatus st = server->submit(make_frame(i));
      std::lock_guard<std::mutex> lock(sh.mu);
      ++sh.submitted;
      if (st != SubmitStatus::kAccepted) {
        ++sh.rejected;
        ++sh.terminal;
        if (sh.outstanding > 0) --sh.outstanding;
        if (sh.terminal == n) sh.all_done.notify_all();
      }
    }
  }

  {
    // Normal completion is notified; the stop path is polled, because the
    // flag flips from a signal handler that cannot touch the condvar.
    std::unique_lock<std::mutex> lock(sh.mu);
    const auto done = [&] {
      return sh.terminal == n || (stopped() && sh.outstanding == 0);
    };
    while (!done()) {
      sh.all_done.wait_for(lock, std::chrono::milliseconds(50), done);
    }
  }
  srv.drain();

  LoadReport report;
  report.submitted = sh.submitted;
  report.rejected_at_submit = sh.rejected;
  report.symbol_errors = sh.symbol_errors;
  report.symbols_checked = sh.symbols_checked;
  report.metrics = srv.metrics();
  report.backends = srv.dispatcher().backend_metrics();
  report.dispatch = srv.dispatcher().stats();
  report.cost_model_json = srv.dispatcher().cost_model().export_json();
  return report;
}

}  // namespace sd::serve
