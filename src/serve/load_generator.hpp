// Deterministic synthetic load for the serving runtime.
//
// Frame contents come from the seeded Monte-Carlo Scenario (mimo/scenario),
// so every run of the same configuration submits byte-identical frames in
// the same order — tests can assert exact frame accounting and compare the
// served results against single-shot decodes of the same trials.
//
// Two arrival processes:
//  - closed-loop: `window` frames stay outstanding; each completion submits
//    the next. Arrival adapts to service rate, so counts are exact and the
//    run is reproducible — the mode tests and the soak bench use.
//  - open-loop: frames are paced at a fixed rate regardless of completions
//    (the real base-station arrival model). Submission count is exact;
//    which frames expire or shed under overload depends on wall-clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "core/sphere_decoder.hpp"
#include "mimo/scenario.hpp"
#include "serve/server.hpp"

namespace sd::serve {

enum class ArrivalMode : std::uint8_t {
  kClosedLoop,  ///< fixed number of outstanding frames
  kOpenLoop,    ///< fixed arrival rate
};

[[nodiscard]] std::string_view arrival_mode_name(ArrivalMode m) noexcept;

struct LoadOptions {
  ArrivalMode mode = ArrivalMode::kClosedLoop;
  usize num_frames = 64;     ///< total frames to submit
  usize window = 4;          ///< closed-loop outstanding frames (>= 1)
  double rate_fps = 1000.0;  ///< open-loop arrival rate (> 0)
  double deadline_s = 0.0;   ///< per-frame budget; 0 = server default
  double snr_db = 8.0;
  std::uint64_t seed = 1;    ///< scenario seed (frame contents)
  /// Channel coherence block: H is drawn once per `coherence` consecutive
  /// frames, and frames of one block share one ChannelHandle (one storage
  /// allocation, one fingerprint). 1 = i.i.d. channels, the original
  /// byte-identical stream.
  usize coherence = 1;
  /// Independent cells multiplexed round-robin into one submission stream:
  /// frame i belongs to cell i % cells, and each cell draws from its own
  /// seeded scenario (seed + cell) with its own coherence blocks. With
  /// cells > 1 consecutive arrivals carry DIFFERENT channels — the
  /// interleaved multi-cell traffic the cross-channel wide engine and the
  /// cross-lane former are built for. 1 = the original single-cell stream.
  usize cells = 1;
  /// Optional cooperative stop flag (e.g. wired to a SIGINT handler). When
  /// it flips true, no further frames are submitted; run() still waits for
  /// every in-flight frame to reach a terminal state, drains the server,
  /// and returns a complete report — graceful shutdown, not abandonment.
  const std::atomic<bool>* stop = nullptr;
};

/// Result of one generated run. Detection quality is measured against the
/// scenario's ground truth for every frame that produced symbols.
struct LoadReport {
  usize submitted = 0;          ///< submit() calls made
  usize rejected_at_submit = 0; ///< synchronous rejections observed
  std::uint64_t symbol_errors = 0;  ///< vs ground truth (completed + fallback)
  std::uint64_t symbols_checked = 0;
  ServerMetrics metrics;        ///< snapshot after drain
  /// Per-backend breakdown and dispatcher counters, captured after drain.
  std::vector<dispatch::BackendMetrics> backends;
  dispatch::DispatchStats dispatch;
  /// Cost model state after the run (CostModel::export_json), so one run's
  /// calibration can warm-start the next.
  std::string cost_model_json;
};

class LoadGenerator {
 public:
  /// The generator owns the server for the duration of run(): closed-loop
  /// arrivals are driven from the completion callback, so the callback
  /// chain must be wired before the first submit.
  LoadGenerator(SystemConfig system, DecoderSpec spec, ServerOptions server,
                LoadOptions load);

  /// Called with the freshly built server before the first submit — the
  /// window for importing a warm cost model or other pre-traffic setup.
  using ServerHook = std::function<void(DetectionServer&)>;

  /// Runs the configured load to completion (every frame terminal), drains
  /// the server, and reports. `observer`, when set, sees every FrameResult
  /// (called from worker threads; must be thread-safe).
  [[nodiscard]] LoadReport run(const CompletionFn& observer = {},
                               const ServerHook& before_traffic = {});

 private:
  SystemConfig system_;
  DecoderSpec spec_;
  ServerOptions server_opts_;
  LoadOptions load_;
};

}  // namespace sd::serve
