#include "serve/metrics.hpp"

#include <string>

#include "obs/counters.hpp"
#include "serve/frame.hpp"

namespace sd::serve {

// Defined here (not in server.cpp) so the dispatch layer, which sits below
// the server facade, can link them without pulling in the server.
std::string_view frame_status_name(FrameStatus s) noexcept {
  switch (s) {
    case FrameStatus::kCompleted: return "completed";
    case FrameStatus::kExpiredFallback: return "expired-fallback";
    case FrameStatus::kExpiredDropped: return "expired-dropped";
    case FrameStatus::kEvicted: return "evicted";
  }
  return "?";
}

std::string_view decode_tier_name(DecodeTier t) noexcept {
  switch (t) {
    case DecodeTier::kPrimary: return "primary";
    case DecodeTier::kKBest: return "kbest";
    case DecodeTier::kMmseApprox: return "mmse";
    case DecodeTier::kLinear: return "linear";
  }
  return "?";
}

LatencySummary summarize_latency(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  if (h.empty()) return s;
  s.mean_s = h.mean();
  s.p50_s = h.quantile(0.50);
  s.p95_s = h.quantile(0.95);
  s.p99_s = h.quantile(0.99);
  s.max_s = h.max();
  return s;
}

namespace {

void export_latency(obs::CounterRegistry& registry, const std::string& prefix,
                    const LatencySummary& s) {
  registry.set(prefix + ".count", static_cast<std::uint64_t>(s.count));
  registry.set(prefix + ".mean_s", s.mean_s);
  registry.set(prefix + ".p50_s", s.p50_s);
  registry.set(prefix + ".p95_s", s.p95_s);
  registry.set(prefix + ".p99_s", s.p99_s);
  registry.set(prefix + ".max_s", s.max_s);
}

}  // namespace

void ServerMetrics::export_counters(obs::CounterRegistry& registry,
                                    std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  registry.set(p + "submitted", submitted);
  registry.set(p + "completed", completed);
  registry.set(p + "expired_fallback", expired_fallback);
  registry.set(p + "expired_dropped", expired_dropped);
  registry.set(p + "evicted", evicted);
  registry.set(p + "rejected", rejected);
  registry.set(p + "deadline_misses", deadline_misses);
  registry.set(p + "in_queue", in_queue);
  registry.set(p + "retired", retired());
  registry.set(p + "accounted", accounted());
  registry.set(p + "wall_seconds", wall_seconds);
  registry.set(p + "throughput_fps", throughput_fps);
  export_latency(registry, p + "queue_wait", queue_wait);
  export_latency(registry, p + "service", service);
  export_latency(registry, p + "e2e", e2e);
  for (usize w = 0; w < workers.size(); ++w) {
    const std::string wp = p + "worker." + std::to_string(w);
    registry.set(wp + ".frames", workers[w].frames);
    registry.set(wp + ".batches", workers[w].batches);
    registry.set(wp + ".busy_seconds", workers[w].busy_seconds);
    registry.set(wp + ".utilization", workers[w].utilization);
  }
}

}  // namespace sd::serve
