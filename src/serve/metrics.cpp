#include "serve/metrics.hpp"

#include <string>

#include "obs/counters.hpp"

namespace sd::serve {

namespace {

void export_latency(obs::CounterRegistry& registry, const std::string& prefix,
                    const LatencySummary& s) {
  registry.set(prefix + ".count", static_cast<std::uint64_t>(s.count));
  registry.set(prefix + ".mean_s", s.mean_s);
  registry.set(prefix + ".p50_s", s.p50_s);
  registry.set(prefix + ".p95_s", s.p95_s);
  registry.set(prefix + ".p99_s", s.p99_s);
  registry.set(prefix + ".max_s", s.max_s);
}

}  // namespace

void ServerMetrics::export_counters(obs::CounterRegistry& registry,
                                    std::string_view prefix) const {
  const std::string p = prefix.empty() ? "" : std::string(prefix) + ".";
  registry.set(p + "submitted", submitted);
  registry.set(p + "completed", completed);
  registry.set(p + "expired_fallback", expired_fallback);
  registry.set(p + "expired_dropped", expired_dropped);
  registry.set(p + "evicted", evicted);
  registry.set(p + "rejected", rejected);
  registry.set(p + "deadline_misses", deadline_misses);
  registry.set(p + "in_queue", in_queue);
  registry.set(p + "retired", retired());
  registry.set(p + "accounted", accounted());
  registry.set(p + "wall_seconds", wall_seconds);
  registry.set(p + "throughput_fps", throughput_fps);
  export_latency(registry, p + "queue_wait", queue_wait);
  export_latency(registry, p + "service", service);
  export_latency(registry, p + "e2e", e2e);
  for (usize w = 0; w < workers.size(); ++w) {
    const std::string wp = p + "worker." + std::to_string(w);
    registry.set(wp + ".frames", workers[w].frames);
    registry.set(wp + ".batches", workers[w].batches);
    registry.set(wp + ".busy_seconds", workers[w].busy_seconds);
    registry.set(wp + ".utilization", workers[w].utilization);
  }
}

}  // namespace sd::serve
