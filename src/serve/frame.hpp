// Frame-level request/response types for the serving runtime.
//
// A FrameRequest is one received MIMO vector plus its channel estimate —
// exactly the (h, y, sigma2) triple Detector::decode consumes — wrapped
// with the bookkeeping the server needs: an id, a per-frame latency budget,
// and the submit timestamp stamped when the server accepts the frame.
//
// These types sit at the bottom of the serving stack: both the dispatch
// layer (src/dispatch — backend pool, cost model, placement) and the server
// facade (src/serve) speak them.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>

#include "decode/detector.hpp"
#include "linalg/matrix.hpp"

namespace sd::serve {

/// Monotonic clock used for all serving timestamps.
using Clock = std::chrono::steady_clock;

/// Which rung of the overload ladder decoded a frame. The dispatcher degrades
/// placement along primary -> K-Best -> MMSE-Neumann -> linear when the
/// predicted completion time exceeds the frame's deadline — shedding *work*,
/// not frames. kPrimary is whatever the backend's configured decoder is; the
/// lower tiers are the progressively cheaper approximations every lane keeps
/// on standby. Values are wire-visible (src/net) and must stay dense and
/// ordered cheapest-last.
enum class DecodeTier : std::uint8_t {
  kPrimary = 0,     ///< the backend's configured decoder
  kKBest = 1,       ///< breadth-limited search (fixed complexity)
  kMmseApprox = 2,  ///< Gram-domain MMSE with Neumann-series inverse
  kLinear = 3,      ///< equalize-and-slice (cheapest)
};

[[nodiscard]] std::string_view decode_tier_name(DecodeTier t) noexcept;

/// One frame submitted for detection.
///
/// The channel estimate travels as a shared immutable ChannelHandle: frames
/// of one coherence block reference a single H allocation through every
/// queue hop (submit -> lane queue -> steal -> decode), instead of the dense
/// matrix being deep-copied per frame per hop. The handle's fingerprint also
/// keys the backends' preprocessing cache.
struct FrameRequest {
  std::uint64_t id = 0;        ///< caller-chosen identifier, echoed back
  ChannelHandle channel;       ///< shared channel estimate (N x M)
  CVec y;                      ///< received vector (length N)
  double sigma2 = 0.0;         ///< noise variance
  double deadline_s = 0.0;     ///< end-to-end budget from accept; 0 = none
  Clock::time_point submit_time{};  ///< stamped by DetectionServer::submit
  /// Highest decode-ladder rung this frame may be served at. Admission
  /// control (src/net) pre-degrades overloaded frames by lowering this; the
  /// dispatcher never places the frame above it. kPrimary = no restriction.
  DecodeTier start_tier = DecodeTier::kPrimary;

  /// The channel matrix. Requires a valid handle (submit enforces this).
  [[nodiscard]] const CMat& h() const { return channel.matrix(); }
};

/// Terminal state of a frame.
enum class FrameStatus : std::uint8_t {
  kCompleted,        ///< decoded by the configured backend
  kExpiredFallback,  ///< deadline passed in queue; ZF fallback result attached
  kExpiredDropped,   ///< deadline passed in queue; no fallback configured
  kEvicted,          ///< displaced by drop-oldest backpressure, never decoded
};

[[nodiscard]] std::string_view frame_status_name(FrameStatus s) noexcept;

/// Outcome of DetectionServer::submit / Dispatcher::submit.
enum class SubmitStatus : std::uint8_t {
  kAccepted,  ///< enqueued (a drop-oldest displacement still accepts)
  kRejected,  ///< refused: reject policy with a full queue
  kClosed,    ///< server already drained
};

/// Completion record delivered to the server's callback. `result` holds the
/// backend decode for kCompleted, the ZF fallback for kExpiredFallback, and
/// is default-constructed (empty indices, infinite metric) otherwise.
struct FrameResult {
  std::uint64_t id = 0;
  FrameStatus status = FrameStatus::kCompleted;
  unsigned worker_id = 0;       ///< global lane index that retired the frame
  int backend_id = 0;           ///< backend within the pool (0 when degenerate)
  unsigned lane_id = 0;         ///< lane within the backend that decoded it
  DecodeTier tier = DecodeTier::kPrimary;  ///< overload-ladder rung served
  bool stolen = false;          ///< decoded by a lane other than the placed one
  DecodeResult result;
  double queue_wait_s = 0.0;    ///< submit -> dequeue
  double service_s = 0.0;       ///< dequeue -> done (0 for kEvicted)
  double e2e_s = 0.0;           ///< submit -> done
  bool deadline_missed = false; ///< had a deadline and e2e exceeded it
};

/// Invoked on a worker thread (or, for evicted frames, on the submitting
/// thread) once per frame reaching a terminal state other than kRejected.
/// Must be thread-safe; keep it cheap — it runs on the decode path.
using CompletionFn = std::function<void(const FrameResult&)>;

}  // namespace sd::serve
