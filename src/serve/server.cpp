#include "serve/server.hpp"

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/spec_parse.hpp"
#include "dispatch/backend.hpp"
#include "obs/trace.hpp"

namespace sd::serve {

ServerOptions parse_server_options(std::string_view text, ServerOptions base) {
  for (const SpecOption& opt : parse_spec_options(text)) {
    if (opt.key == "workers") {
      base.num_workers = static_cast<unsigned>(spec_option_int(opt));
    } else if (opt.key == "batch") {
      base.batch_size = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "queue") {
      base.queue_capacity = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "policy") {
      base.policy = parse_backpressure_policy(opt.value);
    } else if (opt.key == "deadline-ms") {
      base.default_deadline_s = spec_option_double(opt) * 1e-3;
    } else if (opt.key == "no-fallback") {
      base.zf_fallback_on_expiry = false;
    } else if (opt.key == "fallback") {
      base.zf_fallback_on_expiry = true;
    } else if (opt.key == "no-cross-fuse") {
      base.fuse_cross_channel = false;
    } else if (opt.key == "cross-fuse") {
      base.fuse_cross_channel = true;
    } else if (opt.key == "no-cross-lane-fuse") {
      base.cross_lane_former = false;
    } else if (opt.key == "cross-lane-fuse") {
      base.cross_lane_former = true;
    } else if (opt.key == "wide-width") {
      base.max_wide_width = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "placement") {
      base.placement = dispatch::parse_placement_policy(opt.value);
    } else if (opt.key == "fpga-rtt-ms") {
      base.fpga_rtt_s = spec_option_double(opt) * 1e-3;
    } else if (opt.key == "no-degrade") {
      base.degrade_on_deadline = false;
    } else if (opt.key == "degrade") {
      base.degrade_on_deadline = true;
    } else if (opt.key == "deterministic-cost") {
      base.deterministic_cost = true;
    } else if (opt.key == "emulate-device") {
      base.emulate_device_latency = true;
    } else if (opt.key == "rtt-ms") {
      base.emulated_rtt_s = spec_option_double(opt) * 1e-3;
      base.emulate_device_latency = true;
    } else {
      throw invalid_argument_error(
          "unknown server option '" + opt.key +
          "' (workers, batch, queue, policy, deadline-ms, no-fallback, "
          "no-cross-fuse, no-cross-lane-fuse, wide-width, placement, "
          "fpga-rtt-ms, no-degrade, "
          "deterministic-cost, emulate-device, rtt-ms)");
    }
  }
  return base;
}

DetectionServer::DetectionServer(SystemConfig system, DecoderSpec spec,
                                 ServerOptions options, CompletionFn on_complete)
    : system_(system), spec_(spec), opts_(std::move(options)) {
  SD_CHECK(opts_.num_workers >= 1, "server needs at least one worker");
  SD_CHECK(opts_.batch_size >= 1, "batch size must be positive");
  SD_CHECK(opts_.queue_capacity >= 1, "queue capacity must be positive");
  SD_CHECK(opts_.max_wide_width >= 1, "wide width must be positive");
  SD_CHECK(opts_.default_deadline_s >= 0.0, "deadline must be non-negative");
  SD_CHECK(opts_.emulated_rtt_s >= 0.0, "emulated RTT must be non-negative");
  SD_CHECK(opts_.fpga_rtt_s >= 0.0, "FPGA RTT must be non-negative");

  if (opts_.emulate_device_latency || opts_.emulated_rtt_s > 0.0) {
    SD_LOG_WARN << "ServerOptions::emulate_device_latency/emulated_rtt_s are "
                   "deprecated; use a backends pool spec with an fpga entry "
                   "(or an rtt-ms= backend field) instead";
  }

  std::vector<dispatch::BackendConfig> configs;
  if (opts_.backends.empty()) {
    // Degenerate pool: one CPU backend whose lanes are the classic worker
    // pool. Each lane gets the full configured queue depth so closed-loop
    // producers sized against queue_capacity never deadlock on a lane.
    dispatch::BackendConfig cfg;
    cfg.kind = dispatch::BackendKind::kCpu;
    cfg.label = "cpu";
    cfg.lanes = opts_.num_workers;
    cfg.decoder = spec_;
    cfg.pace_to_charged = opts_.emulate_device_latency;
    cfg.rtt_s = opts_.emulated_rtt_s;
    cfg.lane_queue_capacity = opts_.queue_capacity;
    cfg.policy = opts_.policy;
    cfg.batch_size = opts_.batch_size;
    cfg.fuse_cross_channel = opts_.fuse_cross_channel;
    cfg.cross_lane_former = opts_.cross_lane_former;
    cfg.max_wide_width = opts_.max_wide_width;
    cfg.zf_fallback_on_expiry = opts_.zf_fallback_on_expiry;
    dispatch::apply_rate_priors(cfg);
    configs.push_back(std::move(cfg));
  } else {
    dispatch::PoolDefaults defaults;
    defaults.primary = spec_;
    defaults.lane_queue_capacity = opts_.queue_capacity;
    defaults.policy = opts_.policy;
    defaults.batch_size = opts_.batch_size;
    defaults.fuse_cross_channel = opts_.fuse_cross_channel;
    defaults.cross_lane_former = opts_.cross_lane_former;
    defaults.max_wide_width = opts_.max_wide_width;
    defaults.zf_fallback_on_expiry = opts_.zf_fallback_on_expiry;
    defaults.fpga_rtt_s = opts_.fpga_rtt_s;
    configs = dispatch::parse_backend_pool(opts_.backends, defaults);
  }

  dispatch::DispatcherOptions dopts;
  dopts.policy = opts_.placement;
  dopts.degrade_on_deadline = opts_.degrade_on_deadline;
  dopts.cost.adapt_rates = !opts_.deterministic_cost;
  dopts.histogram_max_s = opts_.histogram_max_s;
  dopts.histogram_buckets = opts_.histogram_buckets;
  dispatcher_ = std::make_unique<dispatch::Dispatcher>(
      system_, std::move(configs), dopts, std::move(on_complete));
}

DetectionServer::~DetectionServer() { drain(); }

SubmitStatus DetectionServer::submit(FrameRequest frame) {
  SD_TRACE_SPAN("serve.submit");
  SD_CHECK(frame.channel.valid(), "frame carries no channel estimate");
  SD_CHECK(frame.h().rows() == static_cast<index_t>(frame.y.size()),
           "frame y length does not match channel rows");
  SD_CHECK(frame.h().cols() == system_.num_tx,
           "frame channel columns do not match the served system");
  if (frame.deadline_s <= 0.0) frame.deadline_s = opts_.default_deadline_s;
  frame.submit_time = Clock::now();
  return dispatcher_->submit(std::move(frame));
}

void DetectionServer::drain() { dispatcher_->drain(); }

ServerMetrics DetectionServer::metrics() const { return dispatcher_->metrics(); }

}  // namespace sd::serve
