#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/spec_parse.hpp"
#include "decode/linear.hpp"
#include "obs/trace.hpp"

namespace sd::serve {

std::string_view frame_status_name(FrameStatus s) noexcept {
  switch (s) {
    case FrameStatus::kCompleted: return "completed";
    case FrameStatus::kExpiredFallback: return "expired-fallback";
    case FrameStatus::kExpiredDropped: return "expired-dropped";
    case FrameStatus::kEvicted: return "evicted";
  }
  return "?";
}

LatencySummary summarize_latency(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  if (h.empty()) return s;
  s.mean_s = h.mean();
  s.p50_s = h.quantile(0.50);
  s.p95_s = h.quantile(0.95);
  s.p99_s = h.quantile(0.99);
  s.max_s = h.max();
  return s;
}

ServerOptions parse_server_options(std::string_view text, ServerOptions base) {
  for (const SpecOption& opt : parse_spec_options(text)) {
    if (opt.key == "workers") {
      base.num_workers = static_cast<unsigned>(spec_option_int(opt));
    } else if (opt.key == "batch") {
      base.batch_size = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "queue") {
      base.queue_capacity = static_cast<usize>(spec_option_int(opt));
    } else if (opt.key == "policy") {
      base.policy = parse_backpressure_policy(opt.value);
    } else if (opt.key == "deadline-ms") {
      base.default_deadline_s = spec_option_double(opt) * 1e-3;
    } else if (opt.key == "no-fallback") {
      base.zf_fallback_on_expiry = false;
    } else if (opt.key == "fallback") {
      base.zf_fallback_on_expiry = true;
    } else if (opt.key == "emulate-device") {
      base.emulate_device_latency = true;
    } else if (opt.key == "rtt-ms") {
      base.emulated_rtt_s = spec_option_double(opt) * 1e-3;
      base.emulate_device_latency = true;
    } else {
      throw invalid_argument_error(
          "unknown server option '" + opt.key +
          "' (workers, batch, queue, policy, deadline-ms, no-fallback, "
          "emulate-device, rtt-ms)");
    }
  }
  return base;
}

DetectionServer::DetectionServer(SystemConfig system, DecoderSpec spec,
                                 ServerOptions options, CompletionFn on_complete)
    : system_(system),
      spec_(spec),
      opts_(options),
      on_complete_(std::move(on_complete)),
      queue_(options.queue_capacity, options.policy),
      queue_wait_h_(0.0, options.histogram_max_s, options.histogram_buckets),
      service_h_(0.0, options.histogram_max_s, options.histogram_buckets),
      e2e_h_(0.0, options.histogram_max_s, options.histogram_buckets) {
  SD_CHECK(opts_.num_workers >= 1, "server needs at least one worker");
  SD_CHECK(opts_.batch_size >= 1, "batch size must be positive");
  SD_CHECK(opts_.default_deadline_s >= 0.0, "deadline must be non-negative");
  SD_CHECK(opts_.emulated_rtt_s >= 0.0, "emulated RTT must be non-negative");
  // Fail fast on an unbuildable spec in the constructing thread instead of
  // from inside a worker: build (and discard) one detector eagerly.
  (void)make_detector(system_, spec_);
  worker_acct_.resize(opts_.num_workers);
  start_ = Clock::now();
  workers_.reserve(opts_.num_workers);
  for (unsigned w = 0; w < opts_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

DetectionServer::~DetectionServer() { drain(); }

SubmitStatus DetectionServer::submit(FrameRequest frame) {
  SD_TRACE_SPAN("serve.submit");
  SD_CHECK(frame.h.rows() == static_cast<index_t>(frame.y.size()),
           "frame y length does not match channel rows");
  SD_CHECK(frame.h.cols() == system_.num_tx,
           "frame channel columns do not match the served system");
  if (frame.deadline_s <= 0.0) frame.deadline_s = opts_.default_deadline_s;
  frame.submit_time = Clock::now();

  FrameQueue::PushResult pushed = queue_.push(std::move(frame));
  if (pushed.status == PushStatus::kClosed) return SubmitStatus::kClosed;

  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++submitted_;
    if (pushed.status == PushStatus::kRejected) ++rejected_;
    if (pushed.status == PushStatus::kDisplacedOldest) ++evicted_;
  }
  if (pushed.status == PushStatus::kRejected) return SubmitStatus::kRejected;

  if (pushed.status == PushStatus::kDisplacedOldest) {
    // The displaced frame reaches its terminal state here, on the submitting
    // thread: report it so the producer can account for every frame.
    const FrameRequest& old = *pushed.displaced;
    FrameResult r;
    r.id = old.id;
    r.status = FrameStatus::kEvicted;
    r.queue_wait_s = std::chrono::duration<double>(Clock::now() - old.submit_time).count();
    r.e2e_s = r.queue_wait_s;
    if (on_complete_) on_complete_(r);
  }
  return SubmitStatus::kAccepted;
}

void DetectionServer::worker_main(unsigned worker_id) {
  // Each worker owns a private detector clone plus a ZF fallback, so decodes
  // never share mutable state across threads.
  auto detector = make_detector(system_, spec_);
  LinearDetector fallback(LinearKind::kZf, Constellation::get(system_.modulation));

  std::vector<FrameRequest> batch;
  batch.reserve(opts_.batch_size);
  while (queue_.pop_batch(batch, opts_.batch_size) > 0) {
    SD_TRACE_SPAN("serve.batch");
    Timer busy;
    for (FrameRequest& frame : batch) {
      process_frame(worker_id, *detector, fallback, frame);
    }
    std::lock_guard<std::mutex> lock(metrics_mu_);
    WorkerAccounting& acct = worker_acct_[worker_id];
    acct.frames += batch.size();
    acct.batches += 1;
    acct.busy_seconds += busy.elapsed_seconds();
  }
}

void DetectionServer::process_frame(unsigned worker_id, Detector& detector,
                                    Detector& fallback, FrameRequest& frame) {
  SD_TRACE_SPAN("serve.frame");
  const Clock::time_point dequeued = Clock::now();
  FrameResult r;
  r.id = frame.id;
  r.worker_id = worker_id;
  r.queue_wait_s =
      std::chrono::duration<double>(dequeued - frame.submit_time).count();

  const bool has_deadline = frame.deadline_s > 0.0;
  const bool expired_in_queue = has_deadline && r.queue_wait_s > frame.deadline_s;
  if (expired_in_queue) {
    if (opts_.zf_fallback_on_expiry) {
      SD_TRACE_SPAN("serve.zf_fallback");
      r.status = FrameStatus::kExpiredFallback;
      r.result = fallback.decode(frame.h, frame.y, frame.sigma2);
    } else {
      r.status = FrameStatus::kExpiredDropped;
    }
  } else {
    r.status = FrameStatus::kCompleted;
    {
      SD_TRACE_SPAN("serve.decode");
      r.result = detector.decode(frame.h, frame.y, frame.sigma2);
    }
    if (opts_.emulate_device_latency) {
      // Pace the worker to the charged device time plus the transfer RTT:
      // the remainder of the simulated accelerator round trip beyond what
      // the model evaluation itself consumed on the host.
      const double charged =
          r.result.stats.search_seconds + opts_.emulated_rtt_s;
      const double spent =
          std::chrono::duration<double>(Clock::now() - dequeued).count();
      if (charged > spent) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(charged - spent));
      }
    }
  }

  const Clock::time_point done = Clock::now();
  r.service_s = std::chrono::duration<double>(done - dequeued).count();
  r.e2e_s = std::chrono::duration<double>(done - frame.submit_time).count();
  r.deadline_missed = has_deadline && r.e2e_s > frame.deadline_s;

  finish_frame(r);
  if (on_complete_) on_complete_(r);
}

void DetectionServer::finish_frame(const FrameResult& r) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  switch (r.status) {
    case FrameStatus::kCompleted: ++completed_; break;
    case FrameStatus::kExpiredFallback: ++expired_fallback_; break;
    case FrameStatus::kExpiredDropped: ++expired_dropped_; break;
    case FrameStatus::kEvicted: break;  // counted at submit
  }
  if (r.deadline_missed) ++deadline_misses_;
  queue_wait_h_.record(r.queue_wait_s);
  service_h_.record(r.service_s);
  e2e_h_.record(r.e2e_s);
}

void DetectionServer::drain() {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (drained_) return;
    drained_ = true;
  }
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  drained_wall_s_ = std::chrono::duration<double>(Clock::now() - start_).count();
}

ServerMetrics DetectionServer::metrics() const {
  const usize queued_now = queue_.size();
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ServerMetrics m;
  m.submitted = submitted_;
  m.completed = completed_;
  m.expired_fallback = expired_fallback_;
  m.expired_dropped = expired_dropped_;
  m.evicted = evicted_;
  m.rejected = rejected_;
  m.deadline_misses = deadline_misses_;
  m.in_queue = queued_now;
  m.wall_seconds =
      drained_wall_s_ >= 0.0
          ? drained_wall_s_
          : std::chrono::duration<double>(Clock::now() - start_).count();
  m.throughput_fps = m.wall_seconds > 0.0
                         ? static_cast<double>(m.retired()) / m.wall_seconds
                         : 0.0;
  m.queue_wait = summarize_latency(queue_wait_h_);
  m.service = summarize_latency(service_h_);
  m.e2e = summarize_latency(e2e_h_);
  m.workers.resize(worker_acct_.size());
  for (usize w = 0; w < worker_acct_.size(); ++w) {
    m.workers[w].frames = worker_acct_[w].frames;
    m.workers[w].batches = worker_acct_[w].batches;
    m.workers[w].busy_seconds = worker_acct_[w].busy_seconds;
    m.workers[w].utilization = m.wall_seconds > 0.0
                                   ? worker_acct_[w].busy_seconds / m.wall_seconds
                                   : 0.0;
  }
  return m;
}

}  // namespace sd::serve
