// Serving metrics: the counters and latency distributions a base-station
// operator would watch. All latencies are recorded into fixed-bucket
// Histograms (common/stats.hpp) so the server's memory footprint does not
// grow with uptime; the summary carries the interpolated tail quantiles.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace sd::obs {
class CounterRegistry;
}

namespace sd::serve {

/// Five-number latency summary derived from a Histogram, in seconds.
struct LatencySummary {
  usize count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Builds a summary; all-zero for an empty histogram.
[[nodiscard]] LatencySummary summarize_latency(const Histogram& h);

/// Per-worker accounting.
struct WorkerStats {
  std::uint64_t frames = 0;       ///< frames retired (completed + expired)
  std::uint64_t batches = 0;      ///< queue pops (frames/batches = mean batch)
  double busy_seconds = 0.0;      ///< wall time spent outside the queue wait
  double utilization = 0.0;       ///< busy_seconds / server wall time
};

/// Point-in-time snapshot of a DetectionServer.
///
/// Conservation invariant (checked by tests): after drain(),
///   submitted == completed + expired_fallback + expired_dropped
///              + evicted + rejected
/// and in_queue == 0. No frame is ever silently lost.
struct ServerMetrics {
  std::uint64_t submitted = 0;         ///< submit() calls observed
  std::uint64_t completed = 0;         ///< decoded by the backend
  std::uint64_t expired_fallback = 0;  ///< expired in queue, ZF fallback served
  std::uint64_t expired_dropped = 0;   ///< expired in queue, no fallback
  std::uint64_t evicted = 0;           ///< displaced by drop-oldest
  std::uint64_t rejected = 0;          ///< refused at submit (reject policy)
  std::uint64_t deadline_misses = 0;   ///< frames whose e2e exceeded deadline
  std::uint64_t in_queue = 0;          ///< waiting at snapshot time

  double wall_seconds = 0.0;           ///< server start -> snapshot (or drain)
  double throughput_fps = 0.0;         ///< frames retired per wall second

  LatencySummary queue_wait;           ///< submit -> dequeue
  LatencySummary service;              ///< dequeue -> done
  LatencySummary e2e;                  ///< submit -> done

  std::vector<WorkerStats> workers;

  /// Frames that reached a terminal state through a worker.
  [[nodiscard]] std::uint64_t retired() const noexcept {
    return completed + expired_fallback + expired_dropped;
  }
  /// Every frame the server has finished handling, one way or another.
  [[nodiscard]] std::uint64_t accounted() const noexcept {
    return retired() + evicted + rejected;
  }

  /// Pours a snapshot into the unified counter registry (src/obs): frame
  /// counters and throughput under "<prefix>.*", latency summaries under
  /// "<prefix>.{queue_wait,service,e2e}.*", and per-worker accounting under
  /// "<prefix>.worker.<i>.*".
  void export_counters(obs::CounterRegistry& registry,
                       std::string_view prefix = "serve") const;
};

}  // namespace sd::serve
