// Bounded lock-based MPMC queue with pluggable backpressure.
//
// This is the admission-control point of the serving runtime: when the
// detector pool falls behind the arrival rate, the configured policy decides
// whether producers wait (closed-loop senders), get an immediate rejection
// (load shedding at the edge), or displace the stalest queued frame (fresh
// data is worth more than stale data under a real-time budget).
//
// Design notes: a mutex + two condition variables is deliberately boring —
// frames are milliseconds of decode work, so queue synchronization is noise
// in the profile, and the simple implementation is easy to prove correct
// under TSan (no frame is ever lost: every push either enters the deque,
// returns kRejected, or hands the displaced frame back to the caller).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "serve/frame.hpp"

namespace sd::serve {

/// What push() does when the queue is at capacity.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,       ///< wait for space (closed-loop producers)
  kReject,      ///< fail the push immediately (shed load at the edge)
  kDropOldest,  ///< displace the stalest queued item to admit the new one
};

[[nodiscard]] constexpr std::string_view backpressure_policy_name(
    BackpressurePolicy p) noexcept {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kReject: return "reject";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

/// Parses "block" / "reject" / "drop-oldest"; throws on anything else.
[[nodiscard]] inline BackpressurePolicy parse_backpressure_policy(
    std::string_view text) {
  if (text == "block") return BackpressurePolicy::kBlock;
  if (text == "reject") return BackpressurePolicy::kReject;
  if (text == "drop-oldest") return BackpressurePolicy::kDropOldest;
  throw invalid_argument_error("unknown backpressure policy '" +
                               std::string(text) +
                               "' (block, reject, drop-oldest)");
}

/// Outcome of a push under the queue's policy.
enum class PushStatus : std::uint8_t {
  kAccepted,         ///< item enqueued (possibly after blocking)
  kRejected,         ///< kReject policy and the queue was full
  kDisplacedOldest,  ///< item enqueued; the oldest item was handed back
  kClosed,           ///< queue already closed; item not enqueued
};

template <typename T>
class BoundedMpmcQueue {
 public:
  struct PushResult {
    PushStatus status = PushStatus::kAccepted;
    std::optional<T> displaced;  ///< set iff status == kDisplacedOldest
  };

  explicit BoundedMpmcQueue(usize capacity,
                            BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    SD_CHECK(capacity_ > 0, "queue capacity must be positive");
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Admits `item` under the configured policy. Never silently loses an
  /// item: a displaced one is returned to the caller for accounting.
  PushResult push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return {PushStatus::kClosed, std::nullopt};
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case BackpressurePolicy::kBlock:
          not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
          if (closed_) return {PushStatus::kClosed, std::nullopt};
          break;
        case BackpressurePolicy::kReject:
          return {PushStatus::kRejected, std::nullopt};
        case BackpressurePolicy::kDropOldest: {
          T oldest = std::move(items_.front());
          items_.pop_front();
          items_.push_back(std::move(item));
          not_empty_.notify_one();
          return {PushStatus::kDisplacedOldest, std::move(oldest)};
        }
      }
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return {PushStatus::kAccepted, std::nullopt};
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Pops up to `max_items` in one critical section (the batching that
  /// amortizes wakeups across a coherence block of frames). Blocks for the
  /// first item like pop(); never returns an empty batch unless the queue
  /// is closed and drained (in which case it returns 0).
  usize pop_batch(std::vector<T>& out, usize max_items) {
    out.clear();
    if (max_items == 0) return 0;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    while (!items_.empty() && out.size() < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (!out.empty()) not_full_.notify_all();
    return out.size();
  }

  /// Closes the queue: subsequent pushes fail with kClosed; consumers drain
  /// the remaining items and then see pop() return false.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] usize size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] usize capacity() const noexcept { return capacity_; }
  [[nodiscard]] BackpressurePolicy policy() const noexcept { return policy_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const usize capacity_;
  const BackpressurePolicy policy_;
  bool closed_ = false;
};

/// The queue the DetectionServer actually runs on.
using FrameQueue = BoundedMpmcQueue<FrameRequest>;

}  // namespace sd::serve
