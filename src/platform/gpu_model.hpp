// GPU timing model for the GEMM-BFS baseline (paper Fig. 11).
//
// The paper reproduces Arfaoui et al. [1] on an NVIDIA A100 and compares
// against it. Here the *algorithm* runs for real (SdGemmBfsDetector produces
// exact node/GEMM/byte counts); this model converts those counts into A100
// time. Structure of the model, mirroring §IV-F's analysis:
//   * every tree level is one kernel launch plus one device-wide
//     synchronization (the radius/frontier handoff the paper identifies as
//     the GPU's fundamental cost),
//   * each level's GEMM runs at a small-matrix-efficiency-derated fp32
//     roofline: time = max(flops / eff_flops, bytes / eff_bandwidth).
// Constants are documented below and in DESIGN.md §5.
#pragma once

#include "decode/detector.hpp"

namespace sd {

struct GpuModelParams {
  double peak_fp32_flops = 19.5e12;   ///< A100 fp32 (non-tensor-core)
  double gemm_efficiency = 0.04;      ///< tall-skinny 1 x k x n batches
  double peak_bandwidth = 1.555e12;   ///< HBM2e bytes/s
  double bandwidth_efficiency = 0.35;
  /// Per-tree-level host-synchronized processing in the style of [1]:
  /// several kernel launches (branch, GEMM, norm), a device-wide frontier
  /// compaction/sort, and a host round trip for the radius logic. The
  /// paper's reproduction measures ~6 ms for a ~12-level decode, i.e.
  /// roughly half a millisecond per level — that measurement calibrates
  /// this constant (see EXPERIMENTS.md).
  double per_level_overhead_s = 450e-6;
  double pcie_staging_s = 20e-6;        ///< one-time host -> device copy
};

/// Modelled A100 decode latency for a BFS decode with the given exact
/// work counters.
[[nodiscard]] double gpu_decode_seconds(const DecodeStats& stats,
                                        const GpuModelParams& params = {});

/// A100 board power while decoding (for energy comparisons; the paper's
/// Table II covers CPU vs FPGA, GPU power is an extension).
[[nodiscard]] double gpu_power_watts();

}  // namespace sd
