#include "platform/gpu_model.hpp"

#include <algorithm>

namespace sd {

double gpu_decode_seconds(const DecodeStats& stats,
                          const GpuModelParams& params) {
  // One launch+sync per GEMM issued (the BFS decoder issues exactly one per
  // tree level, plus one per retry level when the radius had to grow).
  const double sync_time =
      static_cast<double>(stats.gemm_calls) * params.per_level_overhead_s;
  const double compute_time =
      static_cast<double>(stats.flops) /
      (params.peak_fp32_flops * params.gemm_efficiency);
  const double memory_time =
      static_cast<double>(stats.bytes_touched) /
      (params.peak_bandwidth * params.bandwidth_efficiency);
  return params.pcie_staging_s + sync_time + std::max(compute_time, memory_time);
}

double gpu_power_watts() {
  // A100 SXM4 board power under a launch-bound, low-occupancy workload sits
  // well below TDP (400 W); 180 W is representative.
  return 180.0;
}

}  // namespace sd
