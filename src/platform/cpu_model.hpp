// CPU power model (the CPU rows of the paper's Table II).
//
// Decode *time* on the CPU is measured for real in this repository; only
// power is modelled, because AMD uProf is not available here. The model is
// package power of the paper's 64-core part under the SD workload:
// idle/uncore power plus terms growing with the working-set (antenna count
// squared — the tree-state matrices) and the constellation order (wider
// batched GEMMs keep more cores busy). Calibrated to the four operating
// points in Table II; see DESIGN.md §5.
#pragma once

#include "common/types.hpp"
#include "mimo/constellation.hpp"

namespace sd {

/// Average package power (Watts) of the optimized multi-core CPU
/// implementation while decoding an M x M system.
[[nodiscard]] double cpu_power_watts(index_t num_tx, Modulation modulation);

/// Energy (Joules) for a decode of the given duration.
[[nodiscard]] inline double cpu_energy_joules(index_t num_tx,
                                              Modulation modulation,
                                              double seconds) {
  return cpu_power_watts(num_tx, modulation) * seconds;
}

}  // namespace sd
