// WARP v3 timing model for the Geosphere comparison (paper Fig. 12).
//
// Geosphere [14] is an exact depth-first sphere decoder deployed on the Rice
// WARP v3 radio platform (Virtex-6 fabric, 160 MHz). Its traversal is what
// our SdDfsDetector executes for real; this model charges WARP cycles per
// visited node: the PED datapath retires one child evaluation per cycle and
// each expansion pays an enumeration/traversal overhead.
#pragma once

#include "decode/detector.hpp"

namespace sd {

struct WarpModelParams {
  double clock_hz = 160e6;
  /// Scalar PED datapath: Geosphere evaluates children sequentially with
  /// its geometric enumeration (no GEMM batching), several cycles each.
  double cycles_per_child = 20.0;
  /// Per-node enumeration-order computation + traversal control.
  double cycles_per_expansion = 80.0;
  /// Per-vector platform overhead: WARP's host interface, buffer handoff
  /// and preprocessing load. Geosphere's reported times are end-to-end on
  /// the radio platform, which is what Fig. 12 compares against.
  double frame_overhead_cycles = 30000;
};

/// Modelled WARP decode latency for a DFS decode with exact work counters.
[[nodiscard]] double warp_decode_seconds(const DecodeStats& stats,
                                         const WarpModelParams& params = {});

}  // namespace sd
