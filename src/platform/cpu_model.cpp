#include "platform/cpu_model.hpp"

namespace sd {

namespace {
constexpr double kIdleWatts = 70.0;     ///< package idle + uncore
constexpr double kPerTx2 = 0.16;        ///< W per (antenna count)^2
constexpr double kPerOrder = 5.0;       ///< W per constellation point above 4
}  // namespace

double cpu_power_watts(index_t num_tx, Modulation modulation) {
  const double m = static_cast<double>(num_tx);
  const double p =
      static_cast<double>(Constellation::get(modulation).order());
  return kIdleWatts + kPerTx2 * m * m + kPerOrder * (p - 4.0);
}

}  // namespace sd
