#include "platform/warp_model.hpp"

namespace sd {

double warp_decode_seconds(const DecodeStats& stats,
                           const WarpModelParams& params) {
  const double cycles =
      params.frame_overhead_cycles +
      static_cast<double>(stats.nodes_generated) * params.cycles_per_child +
      static_cast<double>(stats.nodes_expanded) * params.cycles_per_expansion;
  return cycles / params.clock_hz;
}

}  // namespace sd
